#!/usr/bin/env python3
"""Perf-trajectory bookkeeping for CI.

Each CI run produces BENCH_micro.json (bsp) and BENCH_micro.async.json for
the seeded smoke workload. This script condenses both into one JSON line —
label, schedule, wall clock, modelled parallel time, and the run totals —
and appends it to a trajectory file (one line per run, oldest first), so
the artifact accumulates a per-commit performance history that plots with
a one-liner. It also refreshes a full snapshot of the bsp run
(BENCH_micro.latest.json at the repo root) as the browsable "current
numbers" document.

Usage:
  append_trajectory.py --trajectory ci/BENCH_trajectory.jsonl
      [--latest BENCH_micro.latest.json] [--commit SHA]
      BENCH_micro.json [BENCH_micro.async.json ...]
"""

import argparse
import json
import os
import shutil
import sys


def summarize(path, commit):
    with open(path) as f:
        doc = json.load(f)
    totals = doc.get("totals", {})
    entry = {
        "commit": commit,
        "label": doc.get("label", os.path.basename(path)),
        "schema_version": doc.get("schema_version"),
        "wall_clock_ns": doc.get("wall_clock_ns", 0),
        "modelled_parallel_ns": doc.get("modelled_parallel_ns", 0),
        "num_partitions": doc.get("num_partitions", 0),
        "num_timesteps": doc.get("num_timesteps", 0),
        "supersteps": totals.get("supersteps", 0),
        "delivered_messages": totals.get("delivered_messages", 0),
        "cross_partition_bytes": totals.get("cross_partition_bytes", 0),
    }
    return entry


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--trajectory", required=True,
                        help="JSONL file to append run summaries to")
    parser.add_argument("--latest", default=None,
                        help="copy the first run document here verbatim")
    parser.add_argument("--commit", default=os.environ.get(
        "GITHUB_SHA", "local"))
    parser.add_argument("runs", nargs="+",
                        help="BENCH_*.json run-stats documents")
    args = parser.parse_args()

    entries = [summarize(path, args.commit) for path in args.runs]
    with open(args.trajectory, "a") as f:
        for entry in entries:
            f.write(json.dumps(entry, sort_keys=True) + "\n")

    if args.latest:
        shutil.copyfile(args.runs[0], args.latest)

    with open(args.trajectory) as f:
        total = sum(1 for line in f if line.strip())
    print(
        f"append_trajectory: +{len(entries)} entries "
        f"({total} total) -> {args.trajectory}"
        + (f"; snapshot -> {args.latest}" if args.latest else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
