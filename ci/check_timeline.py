#!/usr/bin/env python3
"""Timeline gate for the live-telemetry subsystem.

Validates a --timeline= JSON artifact produced by a telemetry-on run:

  * schema_version is the supported version (1);
  * timestamps are strictly monotonic and the sample count is plausible
    for the run's cadence;
  * every --require-series name is present (use NAME or NAME@PARTITION);
  * every --require-nonconstant series actually varies over the run —
    a flat cluster.ready_queue_depth means the sampler never caught the
    scheduler working, which is the regression this gate exists to catch;
  * sampler overhead: given --base-run (the --json= stats of a
    telemetry-off run of the same workload) and --run (the telemetry-on
    run's stats), the wall_clock_ns delta must stay under
    --max-overhead-pct, with a small absolute floor so micro-runs on
    noisy runners don't flake.

Usage:
  check_timeline.py TIMELINE.json
      [--require-series NAME ...]
      [--require-nonconstant NAME ...]
      [--base-run base.json --run telem.json]
      [--max-overhead-pct 2.0] [--overhead-floor-ms 150]
"""

import argparse
import json
import sys

SUPPORTED_SCHEMA = 1


def find_series(doc, spec):
    """spec is NAME or NAME@PARTITION (default partition -1)."""
    name, _, part = spec.partition("@")
    partition = int(part) if part else -1
    for series in doc.get("series", []):
        if series.get("name") == name and series.get("partition") == partition:
            return series
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("timeline", help="--timeline= JSON artifact")
    parser.add_argument("--require-series", action="append", default=[])
    parser.add_argument("--require-nonconstant", action="append", default=[])
    parser.add_argument("--base-run", default=None,
                        help="--json= stats of the telemetry-off reference run")
    parser.add_argument("--run", default=None,
                        help="--json= stats of the telemetry-on run")
    parser.add_argument("--max-overhead-pct", type=float, default=2.0)
    parser.add_argument("--overhead-floor-ms", type=float, default=150.0,
                        help="absolute overhead below this never fails")
    args = parser.parse_args()

    with open(args.timeline) as f:
        doc = json.load(f)

    errors = []

    if doc.get("schema_version") != SUPPORTED_SCHEMA:
        errors.append(
            f"schema_version {doc.get('schema_version')} != {SUPPORTED_SCHEMA}"
        )

    t_ms = doc.get("t_ms", [])
    if not t_ms:
        errors.append("timeline has no samples")
    for i in range(1, len(t_ms)):
        if not t_ms[i] > t_ms[i - 1]:
            errors.append(
                f"timestamps not strictly monotonic at sample {i}: "
                f"{t_ms[i - 1]} -> {t_ms[i]}"
            )
            break

    for series in doc.get("series", []):
        if len(series.get("values", [])) != len(t_ms):
            errors.append(
                f"series {series.get('name')} length "
                f"{len(series.get('values', []))} != time axis {len(t_ms)}"
            )

    for spec in args.require_series:
        if find_series(doc, spec) is None:
            errors.append(f"required series missing: {spec}")

    for spec in args.require_nonconstant:
        series = find_series(doc, spec)
        if series is None:
            errors.append(f"required series missing: {spec}")
        elif len(set(series.get("values", []))) <= 1:
            errors.append(f"series is constant over the run: {spec}")

    if args.base_run is not None and args.run is not None:
        with open(args.base_run) as f:
            base_wall_ns = json.load(f).get("wall_clock_ns", 0)
        with open(args.run) as f:
            wall_ns = json.load(f).get("wall_clock_ns", 0)
        overhead_ns = wall_ns - base_wall_ns
        overhead_pct = (
            100.0 * overhead_ns / base_wall_ns if base_wall_ns > 0 else 0.0
        )
        floor_ns = args.overhead_floor_ms * 1e6
        print(
            f"sampler overhead: {overhead_ns / 1e6:.1f} ms "
            f"({overhead_pct:+.2f}% of {base_wall_ns / 1e6:.1f} ms)"
        )
        if overhead_pct > args.max_overhead_pct and overhead_ns > floor_ns:
            errors.append(
                f"sampler overhead {overhead_pct:.2f}% exceeds "
                f"{args.max_overhead_pct}% (and {overhead_ns / 1e6:.1f} ms "
                f"exceeds the {args.overhead_floor_ms:.0f} ms noise floor)"
            )

    dropped = doc.get("dropped_samples", 0)
    produced = doc.get("produced_samples", 0)
    print(
        f"timeline: {len(t_ms)} samples, "
        f"{len(doc.get('series', []))} series, produced={produced}, "
        f"dropped={dropped}, missed_ticks={doc.get('missed_ticks', 0)}"
    )

    if errors:
        for err in errors:
            print(f"check_timeline: FAIL: {err}")
        return 1
    print("check_timeline: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
