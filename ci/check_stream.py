#!/usr/bin/env python3
"""Streaming-ingestion gate for the `tsgcli stream --verify` run.

Parses the "stream summary:" block tsgcli prints and fails unless:

  * digest_match is "yes" (streamed == cold batch digest),
  * sealed_timesteps equals --expect-timesteps (full horizon covered),
  * seal_queue_max_depth never exceeded seal_queue_capacity (the
    backpressure bound held),
  * subgraphs_skipped_incremental >= --min-skips (the incremental path
    actually elided clean subgraphs — a sparse stream must not recompute
    everything), and
  * late_events == 0 (an in-order replay drops nothing).

Usage: tsgcli stream ... --verify | tee stream.out
       check_stream.py stream.out [--expect-timesteps=N] [--min-skips=1]
"""

import argparse
import re
import sys


def parse_summary(text):
    fields = {}
    for key in (
        "events_ingested",
        "late_events",
        "sealed_timesteps",
        "seal_queue_max_depth",
        "seal_queue_capacity",
        "subgraphs_skipped_incremental",
    ):
        m = re.search(rf"^\s*{key}:\s*(\d+)\s*$", text, re.MULTILINE)
        if m is None:
            raise SystemExit(f"check_stream: '{key}' missing from summary")
        fields[key] = int(m.group(1))
    m = re.search(r"^\s*digest_match:\s*(\w+)\s*$", text, re.MULTILINE)
    if m is None:
        raise SystemExit(
            "check_stream: no digest_match line (run tsgcli stream with "
            "--verify)"
        )
    fields["digest_match"] = m.group(1)
    return fields


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("summary", help="captured tsgcli stream output")
    parser.add_argument("--expect-timesteps", type=int, default=None)
    parser.add_argument("--min-skips", type=int, default=1)
    args = parser.parse_args()

    with open(args.summary) as f:
        fields = parse_summary(f.read())

    failures = []
    if fields["digest_match"] != "yes":
        failures.append("streamed digest diverges from the batch reference")
    if (
        args.expect_timesteps is not None
        and fields["sealed_timesteps"] != args.expect_timesteps
    ):
        failures.append(
            f"sealed {fields['sealed_timesteps']} timesteps, expected "
            f"{args.expect_timesteps}"
        )
    if fields["seal_queue_max_depth"] > fields["seal_queue_capacity"]:
        failures.append(
            f"seal queue depth {fields['seal_queue_max_depth']} exceeded "
            f"capacity {fields['seal_queue_capacity']}"
        )
    if fields["subgraphs_skipped_incremental"] < args.min_skips:
        failures.append(
            f"only {fields['subgraphs_skipped_incremental']} incremental "
            f"skips, expected >= {args.min_skips}"
        )
    if fields["late_events"] != 0:
        failures.append(f"{fields['late_events']} late events in an "
                        "in-order replay")

    if failures:
        for failure in failures:
            print(f"check_stream: FAIL: {failure}")
        return 1
    print(
        "check_stream: OK "
        f"(events={fields['events_ingested']}, "
        f"sealed={fields['sealed_timesteps']}, "
        f"queue_max={fields['seal_queue_max_depth']}/"
        f"{fields['seal_queue_capacity']}, "
        f"skips={fields['subgraphs_skipped_incremental']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
