#!/usr/bin/env python3
"""Barrier-elimination gate for the async schedule.

Compares a BSP run's cluster.barrier_wait_ns against an async run's
(cluster.barrier_wait_ns + engine.ready_wait_ns) on the same workload and
fails unless the async wait sum is at least --min-reduction percent lower.

Both inputs are tsgcli --json documents (runStatsToJson schema). The wait
counters live in the "metrics" array as registry deltas.

Usage: check_wait_reduction.py BSP.json ASYNC.json [--min-reduction=40]
"""

import argparse
import json
import sys


def metric_total(doc, name):
    total = 0
    for point in doc.get("metrics", []):
        if point.get("name") == name and point.get("kind") != "gauge":
            total += point.get("value", 0)
    return total


def wait_sum(doc):
    return metric_total(doc, "cluster.barrier_wait_ns") + metric_total(
        doc, "engine.ready_wait_ns"
    )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bsp", help="BSP run JSON (tsgcli --json output)")
    parser.add_argument("asynch", help="async run JSON")
    parser.add_argument("--min-reduction", type=float, default=40.0)
    args = parser.parse_args()

    with open(args.bsp) as f:
        bsp = json.load(f)
    with open(args.asynch) as f:
        asy = json.load(f)

    bsp_wait = wait_sum(bsp)
    async_wait = wait_sum(asy)
    if bsp_wait <= 0:
        print("FAIL: BSP run recorded no barrier wait — wrong input file?")
        return 1

    reduction = 100.0 * (1.0 - async_wait / bsp_wait)
    print(
        f"BSP wait sum      {bsp_wait / 1e6:.3f} ms "
        f"(barrier {metric_total(bsp, 'cluster.barrier_wait_ns') / 1e6:.3f}, "
        f"ready {metric_total(bsp, 'engine.ready_wait_ns') / 1e6:.3f})"
    )
    print(
        f"async wait sum    {async_wait / 1e6:.3f} ms "
        f"(barrier {metric_total(asy, 'cluster.barrier_wait_ns') / 1e6:.3f}, "
        f"ready {metric_total(asy, 'engine.ready_wait_ns') / 1e6:.3f})"
    )
    print(
        f"steals {metric_total(asy, 'cluster.steals')}, "
        f"skipped rounds {metric_total(asy, 'cluster.barrier_skips')}, "
        f"waves {metric_total(asy, 'cluster.waves')}"
    )
    print(f"reduction         {reduction:.1f}% (gate: >= {args.min_reduction:.0f}%)")
    if reduction < args.min_reduction:
        print("FAIL")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
