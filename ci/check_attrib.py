#!/usr/bin/env python3
"""CI gate for the cost-attribution profiler.

Takes a paired run of the same workload with the profiler off (--base-run)
and on (--run, produced with --profile=) and checks:

  * the profiler-on run carries an `attribution` block with the supported
    schema version;
  * conservation: summing the attribution cells over each partition's
    subgraphs reproduces the engine meters recorded per superstep
    (subgraphs_computed, messages_sent, bytes_sent) exactly, and inbound
    totals equal outbound totals;
  * sketch sanity: every heavy hitter's error is bounded by its weight and
    by the sketch's total weight;
  * profiler overhead: the wall-clock delta between the two runs must stay
    under --max-overhead-pct, with an absolute floor so micro-runs on
    noisy runners don't flake (same logic as check_timeline.py).

Usage:
  check_attrib.py --base-run base.json --run attrib.json
      [--max-overhead-pct 2.0] [--overhead-floor-ms 150]
"""

import argparse
import json
import sys

SUPPORTED_SCHEMA = 1


def partition_meter_sums(doc, num_partitions):
    """Per-partition (computes, msgs, bytes) from the superstep records."""
    computes = [0] * num_partitions
    msgs = [0] * num_partitions
    bytes_ = [0] * num_partitions
    for rec in doc.get("supersteps", []):
        for p, part in enumerate(rec.get("parts", [])):
            if p >= num_partitions:
                break
            computes[p] += part.get("subgraphs_computed", 0)
            msgs[p] += part.get("messages_sent", 0)
            bytes_[p] += part.get("bytes_sent", 0)
    return computes, msgs, bytes_


def partition_attrib_sums(attrib):
    """Per-partition sums of the attribution cells, grouped by owner."""
    num_partitions = attrib.get("num_partitions", 0)
    owners = [sg.get("partition", -1) for sg in attrib.get("subgraphs", [])]
    computes = [0] * num_partitions
    msgs = [0] * num_partitions
    bytes_ = [0] * num_partitions
    # Row cells are fixed-order arrays:
    # [compute_ns, computes, msgs_out, bytes_out, resident_bytes].
    for row in attrib.get("rows", []):
        for sg, cell in enumerate(row):
            p = owners[sg]
            if 0 <= p < num_partitions:
                computes[p] += cell[1]
                msgs[p] += cell[2]
                bytes_[p] += cell[3]
    return computes, msgs, bytes_


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--base-run", required=True,
                        help="--json= stats of the profiler-off run")
    parser.add_argument("--run", required=True,
                        help="--json= stats of the profiler-on run")
    parser.add_argument("--max-overhead-pct", type=float, default=2.0)
    parser.add_argument("--overhead-floor-ms", type=float, default=150.0,
                        help="absolute overhead below this never fails")
    args = parser.parse_args()

    with open(args.base_run) as f:
        base = json.load(f)
    with open(args.run) as f:
        run = json.load(f)

    errors = []

    attrib = run.get("attribution")
    if attrib is None:
        print("check_attrib: FAIL: profiler-on run has no attribution block")
        return 1
    if attrib.get("schema_version") != SUPPORTED_SCHEMA:
        errors.append(
            f"attribution schema_version {attrib.get('schema_version')} "
            f"!= {SUPPORTED_SCHEMA}"
        )

    num_partitions = attrib.get("num_partitions", 0)
    meters = partition_meter_sums(run, num_partitions)
    cells = partition_attrib_sums(attrib)
    for label, meter, cell in zip(
        ("computes", "messages", "bytes"), meters, cells
    ):
        for p, (m, c) in enumerate(zip(meter, cell)):
            if m != c:
                errors.append(
                    f"{label} do not reconcile on partition {p}: "
                    f"attribution {c} != engine meter {m}"
                )

    out_msgs = sum(c[2] for row in attrib.get("rows", []) for c in row)
    out_bytes = sum(c[3] for row in attrib.get("rows", []) for c in row)
    in_msgs = sum(attrib.get("msgs_in", []))
    in_bytes = sum(attrib.get("bytes_in", []))
    if in_msgs != out_msgs:
        errors.append(f"inbound messages {in_msgs} != outbound {out_msgs}")
    if in_bytes != out_bytes:
        errors.append(f"inbound bytes {in_bytes} != outbound {out_bytes}")

    for name, weight_key in (("hot_compute", "sketch_weight_compute"),
                             ("hot_fanout", "sketch_weight_fanout")):
        total = attrib.get(weight_key, 0)
        for hot in attrib.get(name, []):
            if hot.get("error", 0) > hot.get("weight", 0):
                errors.append(
                    f"{name} vertex {hot.get('vertex')}: error "
                    f"{hot.get('error')} exceeds weight {hot.get('weight')}"
                )
            if hot.get("weight", 0) > total:
                errors.append(
                    f"{name} vertex {hot.get('vertex')}: weight "
                    f"{hot.get('weight')} exceeds sketch total {total}"
                )

    base_wall_ns = base.get("wall_clock_ns", 0)
    wall_ns = run.get("wall_clock_ns", 0)
    overhead_ns = wall_ns - base_wall_ns
    overhead_pct = (
        100.0 * overhead_ns / base_wall_ns if base_wall_ns > 0 else 0.0
    )
    floor_ns = args.overhead_floor_ms * 1e6
    print(
        f"profiler overhead: {overhead_ns / 1e6:.1f} ms "
        f"({overhead_pct:+.2f}% of {base_wall_ns / 1e6:.1f} ms)"
    )
    if overhead_pct > args.max_overhead_pct and overhead_ns > floor_ns:
        errors.append(
            f"profiler overhead {overhead_pct:.2f}% exceeds "
            f"{args.max_overhead_pct}% (and {overhead_ns / 1e6:.1f} ms "
            f"exceeds the {args.overhead_floor_ms:.0f} ms noise floor)"
        )

    print(
        f"attribution: {len(attrib.get('subgraphs', []))} subgraphs, "
        f"{attrib.get('num_rows', 0)} rows, "
        f"{len(attrib.get('hot_compute', []))} hot-compute / "
        f"{len(attrib.get('hot_fanout', []))} hot-fanout vertices"
    )

    if errors:
        for err in errors:
            print(f"check_attrib: FAIL: {err}")
        return 1
    print("check_attrib: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
