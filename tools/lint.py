#!/usr/bin/env python3
"""Project-invariant linter for the tsgraph repo.

Enforces repository rules that neither the compiler nor clang-tidy can
express, mirroring the contracts documented in the headers they protect:

  trace-literal    TraceSpan / traceInstant / traceCounter call sites must
                   pass a string literal (or nullptr) as every name-like
                   argument. TraceLiteral's consteval constructor enforces
                   this at compile time for direct calls; the lint also
                   catches code that routes around it (building names via
                   macros or TraceLiteral{...} from a variable) and keeps
                   the diagnostic readable. Exempt: src/common/trace.{h,cc}.

  naked-thread     No std::thread outside the scheduling layer
                   (src/runtime/ and src/common/thread_pool.*). Everything
                   else must go through Cluster or ThreadPool so worker
                   counts, naming and perturbation hooks stay centralized.
                   Tests and benchmarks are exempt.

  unseeded-rng     No rand()/srand()/drand48()/std::random_device/
                   std::mt19937 outside src/common/rng.*. All randomness
                   must flow through common/rng so runs are reproducible
                   from a single seed (the determinism harness depends on
                   this).

  metric-name      MetricsRegistry lookups (.counter/.gauge/.histogram)
                   must pass a string literal named <subsystem>.<snake_case>
                   (e.g. "bus.inflight_messages"). Runtime-concatenated
                   names would make the Prometheus exposition (telemetry/
                   prom) unstable across builds and defeat handle caching.
                   Exempt: src/common/metrics.* (the registry itself) and
                   tests (which use throwaway names).

Usage: python3 tools/lint.py [--root DIR] [files...]
With no file arguments, lints every tracked C++ file under src/, tools/,
tests/ and bench/. Exits non-zero if any violation is found.

When a built tsglint binary is present (build/tools/tsglint, or the path in
$TSGLINT), this script is a thin shim that delegates to it: tsglint covers
these four rules on a real token stream plus the layering, lock-order,
hot-path and atomics analyses. The regex implementation below is the
fallback for environments without a build tree.
"""

import argparse
import os
import re
import subprocess
import sys

CPP_SUFFIXES = (".cc", ".h")
LINT_DIRS = ("src", "tools", "tests", "bench")

# NOLINT(tsg-<rule>) on the offending line suppresses that rule.
NOLINT_RE = re.compile(r"NOLINT\(tsg-([a-z-]+)\)")

TRACE_CALL_RE = re.compile(r"\b(TraceSpan\s*[({]|traceInstant\s*\(|traceCounter\s*\()")
# A legal name-like argument starts with a string literal or nullptr.
TRACE_ARG_OK_RE = re.compile(
    r"\b(?:TraceSpan\s*[({]|traceInstant\s*\(|traceCounter\s*\()\s*(?:\"|nullptr)"
)
TRACE_LITERAL_FROM_VAR_RE = re.compile(r"\bTraceLiteral\s*[({]\s*(?!\"|nullptr)[A-Za-z_]")

THREAD_RE = re.compile(r"\bstd::thread\b|\bstd::jthread\b")

RNG_RE = re.compile(
    r"(?<![\w:])(?:rand|srand|drand48|srand48)\s*\("
    r"|\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|\bstd::default_random_engine\b"
)

METRIC_CALL_RE = re.compile(r"\.(counter|gauge|histogram)\s*\(")
# <subsystem>.<snake_case>, possibly more dotted segments (e.g. a ".p99"
# suffix); every segment is lowercase snake_case.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_]*)+$")


def norm(path):
    return path.replace(os.sep, "/")


def is_comment_or_string_heavy(line):
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def code_portion(line):
    """Drops // comments and string/char literal contents (keeping the
    quotes, so '("' argument checks still work)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            if quote == '"':
                out.append('"')
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    if quote == '"':
                        out.append('"')
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def trace_exempt(relpath):
    return relpath in ("src/common/trace.h", "src/common/trace.cc")


def thread_exempt(relpath):
    if relpath.startswith("src/runtime/"):
        return True
    if relpath.startswith("src/common/thread_pool."):
        return True
    return relpath.startswith("tests/") or relpath.startswith("bench/")


def rng_exempt(relpath):
    return relpath.startswith("src/common/rng.")


def metric_exempt(relpath):
    if relpath.startswith("src/common/metrics."):
        return True
    return relpath.startswith("tests/")


def strip_comment(line):
    """Drops a trailing // comment but KEEPS string literal contents (the
    metric-name rule needs to read them, unlike code_portion)."""
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            return line[:i]
        i += 1
    return line


def check_metric_names(lines, lineno, line):
    """Yields (rule, message) for .counter(/.gauge(/.histogram( call sites
    on `line` whose first argument is not a literal <subsystem>.<name>.
    `lines`/`lineno` let a call broken after the '(' read its literal from
    the next line."""
    for match in METRIC_CALL_RE.finditer(line):
        rest = line[match.end():]
        if not rest.strip() and lineno < len(lines):
            rest = strip_comment(lines[lineno]).strip()  # literal on next line
        rest = rest.lstrip()
        if not rest:
            continue
        if rest[0] != '"':
            # Parameter declarations ("std::string_view name") and forwarding
            # helpers live in the exempt registry; everywhere else the first
            # argument must be a literal so exposition names are greppable.
            yield (
                "metric-name",
                f"{match.group(1)}() name must be a string literal, not a "
                "computed value (Prometheus series names must be stable)",
            )
            continue
        end = rest.find('"', 1)
        name = rest[1:end] if end > 0 else ""
        if not METRIC_NAME_RE.match(name):
            yield (
                "metric-name",
                f'metric name "{name}" must follow <subsystem>.<snake_case> '
                '(e.g. "bus.inflight_messages")',
            )


def lint_file(root, relpath):
    violations = []
    try:
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as err:
        return [(relpath, 0, "io", str(err))]

    for lineno, raw in enumerate(lines, start=1):
        if is_comment_or_string_heavy(raw):
            continue
        suppressed = set(NOLINT_RE.findall(raw))  # NOLINT lives in a comment
        line = code_portion(raw)

        if not trace_exempt(relpath) and "trace-literal" not in suppressed:
            if TRACE_CALL_RE.search(line) and not TRACE_ARG_OK_RE.search(line):
                violations.append(
                    (
                        relpath,
                        lineno,
                        "trace-literal",
                        "trace category/name must be a string literal "
                        "(TraceLiteral), not a computed value",
                    )
                )
            if TRACE_LITERAL_FROM_VAR_RE.search(line):
                violations.append(
                    (
                        relpath,
                        lineno,
                        "trace-literal",
                        "TraceLiteral must be constructed from a string "
                        "literal or nullptr",
                    )
                )

        if not thread_exempt(relpath) and "naked-thread" not in suppressed:
            if THREAD_RE.search(line):
                violations.append(
                    (
                        relpath,
                        lineno,
                        "naked-thread",
                        "spawn workers via runtime/Cluster or "
                        "common/ThreadPool, not std::thread",
                    )
                )

        if not metric_exempt(relpath) and "metric-name" not in suppressed:
            code = strip_comment(raw)
            for rule, message in check_metric_names(lines, lineno, code):
                violations.append((relpath, lineno, rule, message))

        if not rng_exempt(relpath) and "unseeded-rng" not in suppressed:
            match = RNG_RE.search(line)
            if match:
                violations.append(
                    (
                        relpath,
                        lineno,
                        "unseeded-rng",
                        f"'{match.group(0).rstrip('(').strip()}' bypasses "
                        "common/rng; all randomness must be seeded through "
                        "tsg::Rng for reproducibility",
                    )
                )
    return violations


def collect_files(root):
    files = []
    for top in LINT_DIRS:
        top_abs = os.path.join(root, top)
        if not os.path.isdir(top_abs):
            continue
        for dirpath, dirnames, names in os.walk(top_abs):
            # Known-bad analyzer fixtures are inputs, not code under lint.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in names:
                if name.endswith(CPP_SUFFIXES):
                    files.append(norm(os.path.relpath(os.path.join(dirpath, name), root)))
    return sorted(files)


def find_tsglint(root):
    """Returns the path to a built tsglint binary, or None.

    $TSGLINT overrides; set it to an empty string to force the Python
    fallback (used by the shim's own tests)."""
    if "TSGLINT" in os.environ:
        path = os.environ["TSGLINT"]
        return path if path and os.access(path, os.X_OK) else None
    for candidate in ("build/tools/tsglint", "build/tools/tsglint.exe"):
        path = os.path.join(root, candidate)
        if os.access(path, os.X_OK):
            return path
    return None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("files", nargs="*", help="specific files to lint (repo-relative)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)

    tsglint = find_tsglint(root)
    if tsglint is not None:
        paths = args.files if args.files else list(LINT_DIRS)
        return subprocess.call([tsglint, "--root=" + root] + paths)
    if args.files:
        files = [norm(os.path.relpath(os.path.abspath(f), root)) for f in args.files]
        files = [f for f in files if f.endswith(CPP_SUFFIXES)]
    else:
        files = collect_files(root)

    all_violations = []
    for relpath in files:
        all_violations.extend(lint_file(root, relpath))

    for relpath, lineno, rule, message in all_violations:
        print(f"{relpath}:{lineno}: [tsg-{rule}] {message}")
    if all_violations:
        print(f"\nlint.py: {len(all_violations)} violation(s) in {len(files)} file(s)")
        return 1
    print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
