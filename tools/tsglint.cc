// tsglint — the repo-native static analyzer (see src/analysis/).
//
// Runs the full rule catalogue (layering, lock-order, hot-path, atomics,
// and the four legacy project-invariant rules) over the given files or
// directories and exits non-zero on any finding. Wired into tier-1 as the
// `TsgLint` ctest; tools/lint.py delegates here when the binary exists.
//
// Usage:
//   tsglint [--root=DIR] [--json=FILE] [--layers=FILE] [--lock-order=FILE]
//           [paths...]
//
// Paths are repo-relative files or directories; with none given the
// default scan set is src tools tests bench. `--json=-` writes the machine
// readable report to stdout instead of a file.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void writeJson(std::ostream& os,
               const std::vector<tsg::lint::Diagnostic>& diags,
               std::size_t file_count) {
  os << "{\n  \"files\": " << file_count << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << jsonEscape(d.file) << "\", \"line\": "
       << d.line << ", \"rule\": \"tsg-" << jsonEscape(d.rule)
       << "\", \"message\": \"" << jsonEscape(d.message) << "\"}";
  }
  os << (diags.empty() ? "]" : "\n  ]") << ",\n  \"count\": " << diags.size()
     << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  tsg::lint::AnalyzerOptions options;
  std::string json_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&arg](std::string_view flag) {
      return std::string(arg.substr(flag.size()));
    };
    if (arg.rfind("--root=", 0) == 0) {
      options.root = value("--root=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value("--json=");
    } else if (arg.rfind("--layers=", 0) == 0) {
      options.layers_path = value("--layers=");
    } else if (arg.rfind("--lock-order=", 0) == 0) {
      options.lock_order_path = value("--lock-order=");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tsglint [--root=DIR] [--json=FILE|-] "
                   "[--layers=FILE] [--lock-order=FILE] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "tsglint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (options.root.empty()) {
    options.root = ".";
  }
  if (paths.empty()) {
    paths = {"src", "tools", "tests", "bench"};
  }

  const tsg::lint::Analyzer analyzer(options);
  const std::vector<std::string> files = analyzer.collectFiles(paths);
  const std::vector<tsg::lint::Diagnostic> diags = analyzer.run(files);

  for (const auto& d : diags) {
    std::cout << d.file << ":" << d.line << ": [tsg-" << d.rule << "] "
              << d.message << "\n";
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      writeJson(std::cout, diags, files.size());
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "tsglint: cannot write " << json_path << "\n";
        return 2;
      }
      writeJson(out, diags, files.size());
    }
  }
  if (!diags.empty()) {
    std::cout << "\ntsglint: " << diags.size() << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "tsglint: OK (" << files.size() << " files clean)\n";
  return 0;
}
