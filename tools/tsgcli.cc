// tsgcli — command-line front end for the tsgraph library.
//
//   tsgcli generate --out=DIR [--kind=road|social] [--vertices=N]
//          [--timesteps=T] [--partitions=K] [--workload=road|tweet]
//          [--seed=S] [--closures=P] [--hit=P] [--background=P]
//          [--packing=N] [--binning=N]
//   tsgcli inspect DIR
//   tsgcli tdsp DIR [--source=V] [--no-while] [--closures] [--outputs]
//   tsgcli meme DIR [--tag=#meme] [--outputs]
//   tsgcli hashtag DIR [--tag=#meme]
//   tsgcli pagerank DIR [--iters=N] [--top=N]
//   tsgcli wcc DIR
//   tsgcli check ALGO DIR [--runs=N] [--seed=S] [--stream]
//   tsgcli stream ALGO DIR [--events=FILE] [--verify]
//   tsgcli analyze RUN.json
//   tsgcli compare BASE.json CANDIDATE.json [--max-regress=PCT]
//
// Every analysis command prints the result summary plus the run's
// utilization split (the Fig. 7b-style table). All analysis commands also
// accept --trace=PATH (Perfetto/Chrome trace-event JSON of the run) and
// --json=PATH (machine-readable RunStats export). `analyze` and `compare`
// consume those --json exports: analyze prints the critical-path /
// straggler breakdown, compare is the regression gate CI runs against a
// committed baseline. Fault tolerance: --checkpoint=DIR persists a
// recovery point at every timestep boundary and --inject=PLAN (or
// TSG_INJECT) arms the fault injector; analyze reports any recoveries a
// run survived. Log verbosity comes from the TSG_LOG_LEVEL
// environment variable (debug|info|warn|error) or the --log-level= flag
// (the flag wins).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "algorithms/tdsp.h"
#include "algorithms/tdsp_vertex.h"
#include "algorithms/topn.h"
#include "algorithms/wcc.h"
#include "check/bsp_checker.h"
#include "check/determinism.h"
#include "check/digest.h"
#include "common/log.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/trace.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/checkpoint.h"
#include "gofs/dataset.h"
#include "graph/collection.h"
#include "metrics/analysis.h"
#include "metrics/report.h"
#include "partition/partitioner.h"
#include "profile/advisor.h"
#include "profile/profiler.h"
#include "runtime/fault_injector.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "stream/source.h"
#include "telemetry/run_telemetry.h"
#include "telemetry/timeline.h"
#include "vertexcentric/programs.h"

#ifdef __linux__
#include <unistd.h>
#endif

namespace {

using namespace tsg;

// --key=value / --flag argument map plus positional arguments.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::int64_t getInt(const std::string& key,
                                    std::int64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoll(it->second.c_str());
  }
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) > 0;
  }
};

Args parseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        args.options[arg.substr(2)] = "1";
      } else {
        args.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      args.positional.push_back(std::move(arg));
    }
  }
  return args;
}

int usage() {
  std::fputs(
      "usage: tsgcli <command> [args]\n"
      "  generate --out=DIR [--kind=road|social] [--vertices=N]\n"
      "           [--timesteps=T] [--partitions=K] [--workload=road|tweet]\n"
      "           [--seed=S] [--closures=P] [--hit=P] [--background=P]\n"
      "           [--packing=N] [--binning=N]\n"
      "  inspect  DIR\n"
      "  tdsp     DIR [--source=V] [--no-while] [--closures] [--outputs]\n"
      "  meme     DIR [--tag=#meme] [--outputs]\n"
      "  hashtag  DIR [--tag=#meme]\n"
      "  pagerank DIR [--iters=N] [--top=N]\n"
      "  wcc      DIR\n"
      "  check    ALGO DIR [--runs=N] [--seed=S] [--schedule=bsp|async]\n"
      "           [--json=PATH]  (stats of the last run; with --profile,\n"
      "            the vertex engines' attribution reaches `analyze`)\n"
      "           ALGO: tdsp|meme|hashtag|pagerank|sssp|wcc|topn|\n"
      "                 tdsp-vertex|sssp-vertex\n"
      "           runs ALGO N times under perturbed worker schedules with\n"
      "           the BSP protocol checker on; exit 1 if outputs diverge\n"
      "           (with --schedule=async, also runs the BSP reference once\n"
      "            and requires the async digests to match it; with\n"
      "            --stream, every run replays the dataset through the\n"
      "            streaming ingest pipeline and must match the cold batch\n"
      "            BSP reference)\n"
      "  stream   ALGO DIR [--events=FILE [--follow]] [--queue=N]\n"
      "           [--max-staged=N] [--schedule=bsp|async] [--verify]\n"
      "           continuous ingestion: replays an append-only event stream\n"
      "           (default: the dataset's own instance diffs) through the\n"
      "           bounded seal queue while ALGO runs incrementally over\n"
      "           timesteps as they seal; prints the stream summary\n"
      "           (--verify also runs the cold batch reference and exits 1\n"
      "            unless the digests match)\n"
      "  analyze  RUN.json [--attrib] | --timeline=TIMELINE.json\n"
      "           --attrib: render the cost-attribution report (per-subgraph\n"
      "           table, hot vertices, per-timestep skew, partition advisor)\n"
      "  compare  BASE.json CANDIDATE.json [--max-regress=PCT]\n"
      "  top      ALGO DIR [--schedule=bsp|async] [--sample-ms=N]\n"
      "           [--refresh-ms=N]\n"
      "           runs ALGO with the telemetry sampler on and renders a\n"
      "           live progress view until the job completes\n"
      "analysis commands also take:\n"
      "  --trace=PATH   write a Perfetto/Chrome trace of the run\n"
      "  --json=PATH    write machine-readable run stats (JSON)\n"
      "  --sample-ms=N  telemetry sampling cadence (default 10 when any\n"
      "                 telemetry flag is present; off otherwise)\n"
      "  --timeline=PATH  write the sampled timeline JSON at exit\n"
      "                   (for `analyze`, the flag names a file to read)\n"
      "  --prom=PATH    rewrite a Prometheus text exposition during the run\n"
      "  --prom-port=N  serve the exposition over HTTP (0 = ephemeral port)\n"
      "  --checkpoint=DIR  checkpoint each timestep to DIR and recover from\n"
      "                    injected worker faults (serial temporal mode)\n"
      "  --schedule=bsp|async  superstep scheduling: global barrier (bsp,\n"
      "                        default) or dependency-driven waves with\n"
      "                        work stealing (async; identical output)\n"
      "  --profile[=TOPK]   arm the cost-attribution profiler (per-subgraph\n"
      "                     accounting + top-K heavy-hitter sketches;\n"
      "                     TOPK defaults to 64)\n"
      "  --profile-sample=N time every Nth vertex in the vertex-centric\n"
      "                     engines (default 8; implies --profile)\n"
      "all commands take:\n"
      "  --log-level=debug|info|warn|error (overrides TSG_LOG_LEVEL)\n"
      "  --inject=PLAN  arm the fault injector, e.g.\n"
      "                 --inject=kill@compute:p1:t2 or drop@deliver:t1\n"
      "                 (sites: compute|barrier|deliver|slice-load;\n"
      "                  actions: kill|drop|delay|fail)\n"
      "  --inject-seed=S  delay-jitter seed for the plan (default 42)\n"
      "environment: TSG_LOG_LEVEL=debug|info|warn|error\n"
      "             TSG_INJECT / TSG_INJECT_SEED (same as --inject flags)\n",
      stderr);
  return 2;
}

int fail(const Status& status) {
  std::fprintf(stderr, "tsgcli: %s\n", status.toString().c_str());
  return 1;
}

// Opens the dataset named by the first positional argument.
Result<GofsDataset> openFrom(const Args& args) {
  if (args.positional.empty()) {
    return Status::invalidArgument("missing dataset directory argument");
  }
  return GofsDataset::open(args.positional[0]);
}

// Set from --json=PATH before the command runs; printRunFooter exports the
// run's stats there (every analysis command funnels through it).
std::string g_json_path;

// Builds the store named by --checkpoint=DIR; null (no checkpointing) when
// the flag is absent. The caller owns the store for the run's duration.
std::unique_ptr<CheckpointStore> makeCheckpointStore(const Args& args) {
  const std::string dir = args.get("checkpoint", "");
  if (dir.empty()) {
    return nullptr;
  }
  return std::make_unique<FileCheckpointStore>(dir);
}

// Parses --schedule=bsp|async into *out; returns false (after printing the
// diagnostic) on an unknown value.
bool parseSchedule(const Args& args, Schedule* out) {
  const std::string value = args.get("schedule", "bsp");
  if (value == "bsp") {
    *out = Schedule::kBsp;
    return true;
  }
  if (value == "async") {
    *out = Schedule::kAsync;
    return true;
  }
  std::fprintf(stderr, "tsgcli: unknown --schedule=%s (expected bsp|async)\n",
               value.c_str());
  return false;
}

// Sums a counter across partitions in a run's metrics delta.
std::int64_t metricTotal(const RunStats& stats, const std::string& name) {
  std::int64_t total = 0;
  for (const auto& point : stats.metrics()) {
    if (point.name == name) {
      total += point.value;
    }
  }
  return total;
}

// One line per fault-tolerance event, printed only when something happened
// so fault-free runs stay byte-identical to before.
void printFaultSummary(const RunStats& stats) {
  const std::int64_t recoveries = metricTotal(stats, "engine.recoveries");
  const std::int64_t checkpoints = metricTotal(stats, "engine.checkpoints");
  const std::int64_t delays = metricTotal(stats, "fault.delivery_delays");
  const std::int64_t retries = metricTotal(stats, "gofs.load_retries");
  if (recoveries > 0 || delays > 0 || retries > 0) {
    std::printf(
        "fault tolerance: %lld recoveries, %lld checkpoints, %lld delivery "
        "delays, %lld slice-load retries\n",
        static_cast<long long>(recoveries),
        static_cast<long long>(checkpoints), static_cast<long long>(delays),
        static_cast<long long>(retries));
  }
}

// Short attribution footer for run commands (full report: analyze --attrib):
// the heaviest subgraphs by attributed compute, plus the scheduler blame
// line when any wait was charged.
void printAttributionSummary(const RunStats& stats) {
  if (!stats.hasAttribution() || stats.attribution().empty()) {
    return;
  }
  const AttributionTable& attrib = stats.attribution();
  const auto totals = attrib.subgraphTotals();
  std::int64_t total_ns = 0;
  for (const auto& c : totals) {
    total_ns += c.compute_ns;
  }
  std::vector<std::size_t> order(totals.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  const std::size_t keep = std::min<std::size_t>(5, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return totals[a].compute_ns > totals[b].compute_ns;
                    });
  TextTable table({"subgraph", "partition", "compute ms", "share", "msgs out"});
  for (std::size_t i = 0; i < keep; ++i) {
    const std::size_t sg = order[i];
    const double share =
        total_ns > 0 ? 100.0 * static_cast<double>(totals[sg].compute_ns) /
                           static_cast<double>(total_ns)
                     : 0.0;
    table.addRow({std::to_string(sg),
                  std::to_string(attrib.subgraphs[sg].partition),
                  TextTable::fmtDouble(
                      static_cast<double>(totals[sg].compute_ns) / 1e6, 3),
                  TextTable::fmtDouble(share, 1) + "%",
                  TextTable::fmtCount(totals[sg].msgs_out)});
  }
  std::printf("== cost attribution: top subgraphs by compute ==\n%s",
              table.render().c_str());
}

void printRunFooter(const RunStats& stats) {
  printFaultSummary(stats);
  printAttributionSummary(stats);
  std::fputs(summarizeRun(stats, "run").c_str(), stdout);
  std::fputc('\n', stdout);
  std::fputs(renderUtilization(stats, "per-partition split").c_str(), stdout);
  if (!g_json_path.empty()) {
    if (writeTextFile(g_json_path, runStatsToJson(stats, "run"))) {
      std::printf("wrote run stats: %s\n", g_json_path.c_str());
    } else {
      std::fprintf(stderr, "tsgcli: cannot write %s\n", g_json_path.c_str());
    }
  }
}

int cmdGenerate(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fputs("tsgcli generate: --out=DIR is required\n", stderr);
    return 2;
  }
  const std::string kind = args.get("kind", "road");
  const std::string workload =
      args.get("workload", kind == "road" ? "road" : "tweet");
  const auto vertices =
      static_cast<std::uint32_t>(args.getInt("vertices", 10000));
  const auto timesteps =
      static_cast<std::uint32_t>(args.getInt("timesteps", 50));
  const auto partitions =
      static_cast<std::uint32_t>(args.getInt("partitions", 4));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const double closures = args.getDouble("closures", 0.0);

  AttributeSchema vertex_schema;
  AttributeSchema edge_schema;
  if (workload == "road") {
    edge_schema =
        closures > 0.0 ? roadEdgeSchemaWithClosures() : roadEdgeSchema();
  } else {
    vertex_schema = tweetVertexSchema();
  }

  GraphTemplatePtr tmpl;
  if (kind == "road") {
    RoadNetworkOptions options;
    options.width = options.height = static_cast<std::uint32_t>(
        std::max(2.0, std::sqrt(static_cast<double>(vertices))));
    options.seed = seed;
    auto built = makeRoadNetwork(options, std::move(vertex_schema),
                                 std::move(edge_schema));
    if (!built.isOk()) {
      return fail(built.status());
    }
    tmpl = std::make_shared<GraphTemplate>(std::move(built).value());
  } else if (kind == "social") {
    PreferentialAttachmentOptions options;
    options.num_vertices = vertices;
    options.seed = seed;
    auto built = makePreferentialAttachment(options, std::move(vertex_schema),
                                            std::move(edge_schema));
    if (!built.isOk()) {
      return fail(built.status());
    }
    tmpl = std::make_shared<GraphTemplate>(std::move(built).value());
  } else {
    std::fprintf(stderr, "tsgcli generate: unknown --kind=%s\n", kind.c_str());
    return 2;
  }

  Result<TimeSeriesCollection> collection =
      Status::internal("unset");
  if (workload == "road") {
    RoadInstanceOptions options;
    options.num_timesteps = timesteps;
    options.seed = seed + 1;
    options.closure_probability = closures;
    collection = makeRoadInstances(tmpl, options);
  } else {
    SirTweetOptions options;
    options.num_timesteps = timesteps;
    options.seed = seed + 1;
    options.hit_probability = args.getDouble("hit", 0.1);
    options.background_probability = args.getDouble("background", 0.01);
    collection = makeSirTweetInstances(tmpl, options);
  }
  if (!collection.isOk()) {
    return fail(collection.status());
  }

  const BfsPartitioner partitioner(seed + 2);
  auto pg = PartitionedGraph::build(tmpl, partitioner.assign(*tmpl, partitions),
                                    partitions);
  if (!pg.isOk()) {
    return fail(pg.status());
  }

  GofsOptions gofs;
  gofs.temporal_packing = static_cast<std::uint32_t>(args.getInt("packing", 10));
  gofs.subgraph_binning = static_cast<std::uint32_t>(args.getInt("binning", 5));
  Stopwatch sw;
  const Status status =
      writeGofsDataset(out, kind, pg.value(), collection.value(), gofs);
  if (!status.isOk()) {
    return fail(status);
  }
  std::printf(
      "wrote %s: %zu vertices, %zu edges, %u instances, %u partitions "
      "(%.1f s)\n",
      out.c_str(), tmpl->numVertices(), tmpl->numEdges(), timesteps,
      partitions, sw.elapsedSec());
  return 0;
}

int cmdInspect(const Args& args) {
  auto ds = openFrom(args);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  const auto& manifest = ds.value().manifest();
  const auto& pg = ds.value().partitionedGraph();
  const auto& tmpl = pg.graphTemplate();

  std::printf("dataset:    %s\n", manifest.name.c_str());
  std::printf("instances:  %u (t0=%lld, delta=%lld)\n", manifest.num_instances,
              static_cast<long long>(manifest.t0),
              static_cast<long long>(manifest.delta));
  std::printf("packing:    %u temporal x %u subgraph bins\n",
              manifest.options.temporal_packing,
              manifest.options.subgraph_binning);
  std::printf("topology:   %zu vertices, %zu directed edges, %s\n",
              tmpl.numVertices(), tmpl.numEdges(),
              tmpl.directed() ? "directed" : "undirected pairs");
  auto schemaLine = [](const AttributeSchema& schema) {
    std::string line;
    for (const auto& def : schema.defs()) {
      if (!line.empty()) {
        line += ", ";
      }
      line += def.name + ":" + std::string(attrTypeName(def.type));
    }
    return line.empty() ? std::string("(none)") : line;
  };
  std::printf("vertex attrs: %s\n", schemaLine(tmpl.vertexSchema()).c_str());
  std::printf("edge attrs:   %s\n", schemaLine(tmpl.edgeSchema()).c_str());

  const auto metrics =
      evaluatePartition(tmpl, pg.assignment(), pg.numPartitions());
  TextTable table({"partition", "vertices", "edges", "subgraphs",
                   "largest sg"});
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const auto& part = pg.partition(p);
    table.addRow({std::to_string(p), TextTable::fmtCount(part.numVertices()),
                  TextTable::fmtCount(part.numEdges()),
                  std::to_string(part.subgraphs.size()),
                  part.subgraphs.empty()
                      ? "-"
                      : TextTable::fmtCount(
                            part.subgraphs.front().numVertices())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("edge cut:   %s (%llu of %llu)\n",
              TextTable::fmtPercent(metrics.cut_fraction, 3).c_str(),
              static_cast<unsigned long long>(metrics.cut_edges),
              static_cast<unsigned long long>(metrics.num_edges));
  const auto storage = ds.value().storageStats();
  if (storage.isOk()) {
    std::printf("on disk:    %llu slice files, %.1f MB\n",
                static_cast<unsigned long long>(storage.value().slice_files),
                static_cast<double>(storage.value().slice_bytes) / 1e6);
  }
  return 0;
}

int cmdTdsp(const Args& args) {
  auto ds = openFrom(args);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  const auto& pg = ds.value().partitionedGraph();
  const auto& schema = pg.graphTemplate().edgeSchema();
  if (schema.indexOf(kLatencyAttr) == AttributeSchema::npos) {
    return fail(Status::failedPrecondition(
        "dataset has no 'latency' edge attribute — generate with "
        "--workload=road"));
  }
  auto provider = ds.value().makeProvider();
  TdspOptions options;
  options.source = static_cast<VertexIndex>(args.getInt("source", 0));
  options.latency_attr = schema.requireIndex(kLatencyAttr);
  options.while_mode = !args.has("no-while");
  options.emit_outputs = args.has("outputs");
  if (args.has("closures")) {
    if (schema.indexOf(kExistsAttr) == AttributeSchema::npos) {
      return fail(Status::failedPrecondition(
          "dataset has no 'exists' edge attribute — generate with "
          "--closures=P"));
    }
    options.exists_attr = schema.requireIndex(kExistsAttr);
  }
  const auto store = makeCheckpointStore(args);
  options.checkpoint_store = store.get();
  if (!parseSchedule(args, &options.schedule)) {
    return 2;
  }
  const auto run = runTdsp(pg, *provider, options);

  std::uint64_t reached = 0;
  double worst = 0;
  for (VertexIndex v = 0; v < run.tdsp.size(); ++v) {
    if (run.finalized_at[v] >= 0) {
      ++reached;
      worst = std::max(worst, run.tdsp[v]);
    }
  }
  std::printf("tdsp: reached %llu / %zu vertices in %d timesteps; latest "
              "arrival %.2f\n",
              static_cast<unsigned long long>(reached), run.tdsp.size(),
              run.exec.timesteps_executed, worst);
  for (const auto& line : run.exec.outputs) {
    std::puts(line.c_str());
  }
  printRunFooter(run.exec.stats);
  return 0;
}

int cmdMeme(const Args& args) {
  auto ds = openFrom(args);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  const auto& pg = ds.value().partitionedGraph();
  const auto& schema = pg.graphTemplate().vertexSchema();
  if (schema.indexOf(kTweetsAttr) == AttributeSchema::npos) {
    return fail(Status::failedPrecondition(
        "dataset has no 'tweets' vertex attribute — generate with "
        "--workload=tweet"));
  }
  auto provider = ds.value().makeProvider();
  MemeOptions options;
  options.meme = args.get("tag", "#meme");
  options.tweets_attr = schema.requireIndex(kTweetsAttr);
  options.emit_outputs = args.has("outputs");
  const auto store = makeCheckpointStore(args);
  options.checkpoint_store = store.get();
  if (!parseSchedule(args, &options.schedule)) {
    return 2;
  }
  const auto run = runMemeTracking(pg, *provider, options);

  std::uint64_t colored = 0;
  for (const auto t : run.colored_at) {
    colored += t >= 0 ? 1 : 0;
  }
  std::printf("meme %s: reached %llu / %zu vertices over %d timesteps\n",
              options.meme.c_str(),
              static_cast<unsigned long long>(colored), run.colored_at.size(),
              run.exec.timesteps_executed);
  std::fputs(renderCounterSeries(run.exec.stats, kMemeColoredCounter,
                                 "newly colored")
                 .c_str(),
             stdout);
  for (const auto& line : run.exec.outputs) {
    std::puts(line.c_str());
  }
  printRunFooter(run.exec.stats);
  return 0;
}

int cmdHashtag(const Args& args) {
  auto ds = openFrom(args);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  const auto& pg = ds.value().partitionedGraph();
  const auto& schema = pg.graphTemplate().vertexSchema();
  if (schema.indexOf(kTweetsAttr) == AttributeSchema::npos) {
    return fail(Status::failedPrecondition(
        "dataset has no 'tweets' vertex attribute"));
  }
  auto provider = ds.value().makeProvider();
  HashtagOptions options;
  options.tag = args.get("tag", "#meme");
  options.tweets_attr = schema.requireIndex(kTweetsAttr);
  const auto store = makeCheckpointStore(args);
  options.checkpoint_store = store.get();
  if (!parseSchedule(args, &options.schedule)) {
    return 2;
  }
  const auto run = runHashtagAggregation(pg, *provider, options);

  TextTable table({"timestep", "count", "rate of change"});
  for (std::size_t t = 0; t < run.counts.size(); ++t) {
    table.addRow({std::to_string(t), std::to_string(run.counts[t]),
                  std::to_string(run.rate_of_change[t])});
  }
  std::fputs(table.render().c_str(), stdout);
  printRunFooter(run.exec.stats);
  return 0;
}

int cmdPageRank(const Args& args) {
  auto ds = openFrom(args);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  const auto& pg = ds.value().partitionedGraph();
  auto provider = ds.value().makeProvider();
  PageRankOptions options;
  options.iterations = static_cast<std::int32_t>(args.getInt("iters", 30));
  const auto store = makeCheckpointStore(args);
  options.checkpoint_store = store.get();
  if (!parseSchedule(args, &options.schedule)) {
    return 2;
  }
  const auto run = runSubgraphPageRank(pg, *provider, options);

  const auto top_n = static_cast<std::size_t>(args.getInt("top", 10));
  std::vector<VertexIndex> order(run.ranks.size());
  for (VertexIndex v = 0; v < order.size(); ++v) {
    order[v] = v;
  }
  const std::size_t keep = std::min(top_n, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](VertexIndex a, VertexIndex b) {
                      return run.ranks[a] > run.ranks[b];
                    });
  TextTable table({"rank", "vertex id", "pagerank"});
  for (std::size_t i = 0; i < keep; ++i) {
    table.addRow({std::to_string(i + 1),
                  std::to_string(pg.graphTemplate().vertexId(order[i])),
                  TextTable::fmtDouble(run.ranks[order[i]], 6)});
  }
  std::fputs(table.render().c_str(), stdout);
  printRunFooter(run.exec.stats);
  return 0;
}

int cmdWcc(const Args& args) {
  auto ds = openFrom(args);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  const auto& pg = ds.value().partitionedGraph();
  auto provider = ds.value().makeProvider();
  WccOptions options;
  const auto store = makeCheckpointStore(args);
  options.checkpoint_store = store.get();
  if (!parseSchedule(args, &options.schedule)) {
    return 2;
  }
  const auto run = runSubgraphWcc(pg, *provider, options);
  std::printf("weakly connected components: %zu (over %zu vertices)\n",
              run.num_components, run.component.size());
  printRunFooter(run.exec.stats);
  return 0;
}

// Loads a runStatsToJson document from disk (as written by --json=PATH).
Result<LoadedRunStats> loadRunStatsFile(const std::string& path) {
  auto bytes = readFileBytes(path);
  if (!bytes.isOk()) {
    return bytes.status();
  }
  auto loaded = runStatsFromJson(std::string_view(
      reinterpret_cast<const char*>(bytes.value().data()),
      bytes.value().size()));
  if (!loaded.isOk()) {
    return Status(loaded.status().code(),
                  path + ": " + loaded.status().message());
  }
  return loaded;
}

// Superstep/batch histogram quantiles for the analyze summary. Duration
// series (.._ns) render as milliseconds; size series as raw counts.
std::string renderHistogramQuantiles(const RunStats& stats) {
  if (stats.histograms().empty()) {
    return "";
  }
  const auto fmt = [](const std::string& name, std::uint64_t v) {
    if (name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0) {
      return TextTable::fmtDouble(static_cast<double>(v) / 1e6, 3);
    }
    return TextTable::fmtCount(v);
  };
  TextTable table({"histogram", "count", "p50", "p95", "p99", "max"});
  for (const auto& h : stats.histograms()) {
    if (h.count == 0) {
      continue;
    }
    table.addRow({h.name, TextTable::fmtCount(h.count),
                  fmt(h.name, h.quantile(0.50)), fmt(h.name, h.quantile(0.95)),
                  fmt(h.name, h.quantile(0.99)), fmt(h.name, h.max)});
  }
  return "== histogram quantiles (ms / count) ==\n" + table.render();
}

// The full --attrib report: per-subgraph cost table, per-timestep skew
// series, heavy-hitter vertices, and the partition-quality advisor cross-
// referenced with the critical-path analysis.
void printAttributionReport(const AttributionTable& attrib,
                            const CriticalPathAnalysis& analysis) {
  const auto totals = attrib.subgraphTotals();
  std::int64_t total_ns = 0;
  for (const auto& c : totals) {
    total_ns += c.compute_ns;
  }

  std::vector<std::size_t> order(totals.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return totals[a].compute_ns > totals[b].compute_ns;
  });
  const std::size_t keep = std::min<std::size_t>(15, order.size());
  TextTable table({"subgraph", "partition", "vertices", "compute ms", "share",
                   "computes", "msgs out", "msgs in", "KB out", "KB in",
                   "resident KB"});
  for (std::size_t i = 0; i < keep; ++i) {
    const std::size_t sg = order[i];
    const double share =
        total_ns > 0 ? 100.0 * static_cast<double>(totals[sg].compute_ns) /
                           static_cast<double>(total_ns)
                     : 0.0;
    table.addRow(
        {std::to_string(sg), std::to_string(attrib.subgraphs[sg].partition),
         TextTable::fmtCount(attrib.subgraphs[sg].vertices),
         TextTable::fmtDouble(
             static_cast<double>(totals[sg].compute_ns) / 1e6, 3),
         TextTable::fmtDouble(share, 1) + "%",
         TextTable::fmtCount(totals[sg].computes),
         TextTable::fmtCount(totals[sg].msgs_out),
         TextTable::fmtCount(attrib.msgs_in[sg]),
         TextTable::fmtDouble(static_cast<double>(totals[sg].bytes_out) / 1e3,
                              1),
         TextTable::fmtDouble(static_cast<double>(attrib.bytes_in[sg]) / 1e3,
                              1),
         TextTable::fmtDouble(
             static_cast<double>(totals[sg].resident_bytes) / 1e3, 1)});
  }
  std::printf("== cost attribution: subgraphs by compute (top %zu of %zu) ==\n%s",
              keep, totals.size(), table.render().c_str());

  // Per-timestep compute + skew (Gini over the row's subgraph compute).
  TextTable skew({"timestep", "compute ms", "gini"});
  for (std::int32_t row = 0; row < attrib.num_rows; ++row) {
    std::int64_t row_ns = 0;
    for (const auto& cell : attrib.rows[static_cast<std::size_t>(row)]) {
      row_ns += cell.compute_ns;
    }
    if (row_ns == 0) {
      continue;
    }
    const bool merge_row = row == attrib.num_rows - 1;
    skew.addRow({merge_row ? "merge"
                           : std::to_string(attrib.first_timestep + row),
                 TextTable::fmtDouble(static_cast<double>(row_ns) / 1e6, 3),
                 TextTable::fmtDouble(attrib.rowGini(row), 3)});
  }
  std::printf("== per-timestep compute skew ==\n%s", skew.render().c_str());

  const auto hotTable = [](const std::vector<HotVertex>& hot,
                           const char* what) {
    if (hot.empty()) {
      return;
    }
    TextTable t({"vertex", "partition", "weight<=", "error"});
    const std::size_t n = std::min<std::size_t>(10, hot.size());
    for (std::size_t i = 0; i < n; ++i) {
      t.addRow({std::to_string(hot[i].vertex),
                std::to_string(hot[i].partition),
                TextTable::fmtCount(hot[i].weight),
                TextTable::fmtCount(hot[i].error)});
    }
    std::printf("== hot vertices: %s (space-saving top-k; true weight in "
                "[weight-error, weight]) ==\n%s",
                what, t.render().c_str());
  };
  hotTable(attrib.hot_compute, "compute ns");
  hotTable(attrib.hot_fanout, "message fan-out");

  const AdvisorReport advice = advisePartitioning(attrib, &analysis);
  std::fputs(renderAdvisorReport(advice).c_str(), stdout);
}

int cmdAnalyze(const Args& args) {
  // For analyze, --timeline= names a file to READ (written earlier by a run
  // command); render the Fig. 7-style utilization/progress curves from it.
  const std::string timeline_path = args.get("timeline", "");
  if (!timeline_path.empty()) {
    auto bytes = readFileBytes(timeline_path);
    if (!bytes.isOk()) {
      return fail(bytes.status());
    }
    auto timeline = timelineFromJson(std::string_view(
        reinterpret_cast<const char*>(bytes.value().data()),
        bytes.value().size()));
    if (!timeline.isOk()) {
      return fail(Status(timeline.status().code(),
                         timeline_path + ": " + timeline.status().message()));
    }
    std::fputs(renderTimelineCurves(timeline.value()).c_str(), stdout);
    if (args.positional.empty()) {
      return 0;
    }
  }
  if (args.positional.empty()) {
    std::fputs("tsgcli analyze: missing RUN.json argument\n", stderr);
    return 2;
  }
  auto loaded = loadRunStatsFile(args.positional[0]);
  if (!loaded.isOk()) {
    return fail(loaded.status());
  }
  const auto& run = loaded.value();
  const std::string label =
      run.label.empty() ? args.positional[0] : run.label;
  printFaultSummary(run.stats);
  const auto analysis = analyzeCriticalPath(run.stats);
  std::fputs(renderCriticalPath(analysis, label).c_str(), stdout);
  std::fputs(renderUtilization(run.stats, label).c_str(), stdout);
  std::fputs(renderHistogramQuantiles(run.stats).c_str(), stdout);
  if (args.has("attrib")) {
    if (!run.stats.hasAttribution() || run.stats.attribution().empty()) {
      std::fputs(
          "tsgcli analyze: no attribution block in this run (record one "
          "with --profile= on the run command)\n",
          stderr);
      return 2;
    }
    printAttributionReport(run.stats.attribution(), analysis);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// check — BSP protocol checking + determinism harness over an algorithm.
// ---------------------------------------------------------------------------

// Digests an algorithm's semantic outputs for one run. Each branch hashes
// exactly the values a user would consume — never timings or metrics.
// `stats_out`, when non-null, receives the run's RunStats (including any
// armed attribution) so `check --json=` can persist a vertex-engine run —
// the only CLI path that exercises the vertex-centric engines.
Result<std::string> runAlgoDigestOn(const std::string& algo,
                                    const PartitionedGraph& pg,
                                    InstanceProvider& provider,
                                    Schedule schedule,
                                    TimestepStream* stream = nullptr,
                                    RunStats* stats_out = nullptr) {
  const auto& vertex_schema = pg.graphTemplate().vertexSchema();
  const auto& edge_schema = pg.graphTemplate().edgeSchema();
  check::Digest d;

  if (algo == "tdsp" || algo == "sssp" || algo == "tdsp-vertex") {
    if (edge_schema.indexOf(kLatencyAttr) == AttributeSchema::npos) {
      return Status::failedPrecondition(
          "dataset has no 'latency' edge attribute — generate with "
          "--workload=road");
    }
  }
  if (algo == "meme" || algo == "hashtag" || algo == "topn") {
    if (vertex_schema.indexOf(kTweetsAttr) == AttributeSchema::npos) {
      return Status::failedPrecondition(
          "dataset has no 'tweets' vertex attribute — generate with "
          "--workload=tweet");
    }
  }

  if (algo == "tdsp") {
    TdspOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.latency_attr = edge_schema.requireIndex(kLatencyAttr);
    const auto run = runTdsp(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addDoubles(run.tdsp);
    d.addVector(run.finalized_at, [](check::Digest& dd, Timestep t) {
      dd.addI64(t);
    });
    d.addI64(run.exec.timesteps_executed);
  } else if (algo == "meme") {
    MemeOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.tweets_attr = vertex_schema.requireIndex(kTweetsAttr);
    const auto run = runMemeTracking(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addVector(run.colored_at, [](check::Digest& dd, Timestep t) {
      dd.addI64(t);
    });
  } else if (algo == "hashtag") {
    HashtagOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.tweets_attr = vertex_schema.requireIndex(kTweetsAttr);
    const auto run = runHashtagAggregation(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addU64s(run.counts);
    d.addI64s(run.rate_of_change);
  } else if (algo == "pagerank") {
    PageRankOptions options;
    options.schedule = schedule;
    options.stream = stream;
    const auto run = runSubgraphPageRank(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addDoubles(run.ranks);
  } else if (algo == "sssp") {
    SsspOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.latency_attr = edge_schema.requireIndex(kLatencyAttr);
    const auto run = runSubgraphSssp(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addDoubles(run.distances);
  } else if (algo == "wcc") {
    WccOptions options;
    options.schedule = schedule;
    options.stream = stream;
    const auto run = runSubgraphWcc(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addVector(run.component, [](check::Digest& dd, VertexIndex v) {
      dd.addU64(v);
    });
    d.addU64(run.num_components);
  } else if (algo == "topn") {
    TopNOptions options;
    options.schedule = schedule;
    options.stream = stream;
    if (stream != nullptr) {
      // Streaming serializes the timestep loop: sealed instances arrive in
      // order, so the concurrent temporal mode cannot apply.
      options.temporal_mode = TemporalMode::kSerial;
    }
    options.tweets_attr = vertex_schema.requireIndex(kTweetsAttr);
    const auto run = runTopActiveVertices(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addU64(run.top.size());
    for (const auto& per_t : run.top) {
      d.addVector(per_t, [](check::Digest& dd, VertexIndex v) {
        dd.addU64(v);
      });
    }
  } else if (algo == "tdsp-vertex") {
    VertexTdspOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.latency_attr = edge_schema.requireIndex(kLatencyAttr);
    const auto run = runVertexTdsp(pg, provider, options);
    if (stats_out != nullptr) {
      *stats_out = run.exec.stats;
    }
    d.addDoubles(run.tdsp);
    d.addVector(run.finalized_at, [](check::Digest& dd, Timestep t) {
      dd.addI64(t);
    });
  } else if (algo == "sssp-vertex") {
    // The plain (non-temporal) vertex-centric engine has no timestep loop
    // and therefore no wave schedule; it always runs barriered BSP. The
    // flag is accepted so sweeps can pass a uniform --schedule=async.
    vertexcentric::SsspVertexProgram program(0);
    vertexcentric::VertexCentricEngine engine(pg);
    const auto run = engine.run(program, vertexcentric::VcConfig{},
                                [](VertexIndex) {
                                  return vertexcentric::kInf;
                                });
    if (stats_out != nullptr) {
      *stats_out = run.stats;
    }
    d.addDoubles(run.values);
    d.addI64(run.supersteps);
  } else {
    return Status::invalidArgument("unknown algorithm '" + algo +
                                   "' (expected tdsp, meme, hashtag, "
                                   "pagerank, sssp, wcc, topn, tdsp-vertex "
                                   "or sssp-vertex)");
  }
  return d.hex();
}

// Batch entry point: reads every timestep straight from the dataset.
Result<std::string> runAlgoDigest(const std::string& algo,
                                  const GofsDataset& ds,
                                  Schedule schedule,
                                  RunStats* stats_out = nullptr) {
  auto provider = ds.makeProvider();
  return runAlgoDigestOn(algo, ds.partitionedGraph(), *provider, schedule,
                         /*stream=*/nullptr, stats_out);
}

// Reassembles the dataset's instances into full-graph form and diffs them
// into the append-only event stream a live ingestor would have consumed.
Result<std::vector<stream::GraphEvent>> datasetEvents(const GofsDataset& ds) {
  const auto& pg = ds.partitionedGraph();
  auto provider = ds.makeProvider();
  TimeSeriesCollection coll(pg.templatePtr(), provider->t0(),
                            provider->delta());
  for (Timestep t = 0; t < static_cast<Timestep>(provider->numInstances());
       ++t) {
    TSG_RETURN_IF_ERROR(coll.appendInstance(
        stream::assembleInstance(pg, pg.graphTemplate(), *provider, t)));
  }
  return stream::eventsFromCollection(coll);
}

// Streamed entry point: replays `events` through an ingest thread and the
// bounded SealQueue; the engine blocks on each timestep's seal and skips
// clean subgraphs incrementally. sssp-vertex has no timestep loop (nothing
// to stream), so it falls through to the batch path — harness sweeps can
// still pass a uniform --stream.
Result<std::string> runAlgoDigestStreamed(
    const std::string& algo, const GofsDataset& ds, Schedule schedule,
    const std::vector<stream::GraphEvent>& events,
    RunStats* stats_out = nullptr) {
  if (algo == "sssp-vertex") {
    return runAlgoDigest(algo, ds, schedule, stats_out);
  }
  const auto& pg = ds.partitionedGraph();
  auto batch = ds.makeProvider();
  const std::size_t planned = batch->numInstances();

  stream::SealQueue queue(4);
  stream::IngestorOptions opts;
  opts.planned_timesteps = static_cast<std::int32_t>(planned);
  stream::StreamIngestor ingestor(pg.templatePtr(), pg, batch->t0(),
                                  batch->delta(), queue, opts);
  stream::StreamingInstanceProvider sp(pg, pg.templatePtr(), planned,
                                       batch->t0(), batch->delta(), queue);
  stream::MemoryEventSource source;
  source.push(events);
  source.close();

  stream::IngestThread ingest(ingestor, source);
  auto digest =
      runAlgoDigestOn(algo, pg, sp, schedule, &sp, stats_out);
  // tdsp's while-mode can stop before the planned horizon: drain whatever
  // the ingest thread is still sealing so its backpressure block releases
  // and the join below cannot deadlock.
  stream::SealedTimestep leftover;
  while (queue.pop(leftover)) {
  }
  const Status ingest_status = ingest.join();
  if (!ingest_status.isOk()) {
    return ingest_status;
  }
  return digest;
}

int cmdCheck(const Args& args) {
  if (args.positional.size() < 2) {
    std::fputs("tsgcli check: need <algo> and <dataset dir> arguments\n",
               stderr);
    return 2;
  }
  const std::string& algo = args.positional[0];
  auto ds = GofsDataset::open(args.positional[1]);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  Schedule schedule = Schedule::kBsp;
  if (!parseSchedule(args, &schedule)) {
    return 2;
  }
  const bool streamed = args.has("stream");

  // Protocol checking is on for every harness run; a violation prints its
  // diagnostic (rule, partition, superstep, flow) and aborts the process.
  check::setEnabled(true);

  // --stream: every harness run replays this event stream through the
  // ingest pipeline instead of reading the dataset directly. The events are
  // diffed once up front so all runs see identical input.
  std::vector<stream::GraphEvent> events;
  if (streamed) {
    auto ev = datasetEvents(ds.value());
    if (!ev.isOk()) {
      return fail(ev.status());
    }
    events = std::move(ev).value();
  }

  check::DeterminismOptions options;
  options.runs = static_cast<std::int32_t>(args.getInt("runs", 3));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  if (options.runs < 1) {
    std::fputs("tsgcli check: --runs must be >= 1\n", stderr);
    return 2;
  }

  // The async schedule's contract is digest-identity with BSP, and the
  // streamed pipeline's contract is digest-identity with the cold batch
  // run: compute the unperturbed batch BSP reference once and require
  // every harness run to reproduce its digest exactly.
  std::string bsp_reference;
  if (schedule == Schedule::kAsync || streamed) {
    auto reference = runAlgoDigest(algo, ds.value(), Schedule::kBsp);
    if (!reference.isOk()) {
      return fail(reference.status());
    }
    bsp_reference = std::move(reference).value();
  }

  Status failed = Status::ok();
  RunStats last_stats;
  const auto report = check::checkDeterminism(
      options, [&](std::int32_t) -> std::string {
        auto digest =
            streamed ? runAlgoDigestStreamed(algo, ds.value(), schedule,
                                             events, &last_stats)
                     : runAlgoDigest(algo, ds.value(), schedule, &last_stats);
        if (!digest.isOk()) {
          failed = digest.status();
          return "";
        }
        return std::move(digest).value();
      });
  if (!failed.isOk()) {
    return fail(failed);
  }
  // --json= persists the last harness run's stats. This is the only CLI
  // route into the vertex-centric engines, so it is also how their
  // attribution tables (per-vertex heavy-hitter sketches) reach `analyze`.
  if (!g_json_path.empty()) {
    if (writeTextFile(g_json_path,
                      runStatsToJson(last_stats, "check " + algo))) {
      std::printf("wrote run stats: %s\n", g_json_path.c_str());
    } else {
      std::fprintf(stderr, "tsgcli: cannot write %s\n", g_json_path.c_str());
    }
  }
  std::fputs(
      check::renderDeterminismReport(report, algo + " on " +
                                                 args.positional[1])
          .c_str(),
      stdout);
  if (!report.deterministic) {
    return 1;
  }
  const bool gated = schedule == Schedule::kAsync || streamed;
  const char* variant =
      streamed ? (schedule == Schedule::kAsync ? "streamed async" : "streamed")
               : "async";
  if (gated && !report.runs.empty() &&
      report.runs.front().digest != bsp_reference) {
    std::printf("%s run DIVERGES from the batch BSP reference:\n"
                "  batch bsp  %s\n  %-10s %s\n",
                variant, bsp_reference.c_str(), variant,
                report.runs.front().digest.c_str());
    return 1;
  }
  if (gated) {
    std::printf("%s digest matches the batch BSP reference (%s)\n", variant,
                bsp_reference.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// stream — the continuous-ingestion front door: feed an append-only event
// stream through the ingestor and run ALGO over timesteps as they seal.
// ---------------------------------------------------------------------------

int cmdStream(const Args& args) {
  if (args.positional.size() < 2) {
    std::fputs("tsgcli stream: need <algo> and <dataset dir> arguments\n",
               stderr);
    return 2;
  }
  const std::string& algo = args.positional[0];
  auto ds = GofsDataset::open(args.positional[1]);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  Schedule schedule = Schedule::kBsp;
  if (!parseSchedule(args, &schedule)) {
    return 2;
  }
  if (algo == "sssp-vertex") {
    std::fputs("tsgcli stream: sssp-vertex has no timestep loop to stream\n",
               stderr);
    return 2;
  }

  const auto& pg = ds.value().partitionedGraph();
  auto batch = ds.value().makeProvider();
  const std::size_t planned = batch->numInstances();

  const auto queue_cap = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.getInt("queue", 4)));
  stream::SealQueue queue(queue_cap);
  stream::IngestorOptions opts;
  opts.planned_timesteps = static_cast<std::int32_t>(planned);
  opts.max_staged_cells = static_cast<std::size_t>(
      std::max<std::int64_t>(0, args.getInt("max-staged", 0)));
  stream::StreamIngestor ingestor(pg.templatePtr(), pg, batch->t0(),
                                  batch->delta(), queue, opts);
  stream::StreamingInstanceProvider sp(pg, pg.templatePtr(), planned,
                                       batch->t0(), batch->delta(), queue);

  // Event source: --events=FILE replays a TSEV frame file (--follow keeps
  // polling as a writer appends — a live tail). Without --events, the
  // dataset's own instance diffs replay through a memory source, which
  // makes `stream ALGO DIR --verify` a self-contained equivalence check.
  std::unique_ptr<stream::EventSource> source;
  const std::string events_path = args.get("events", "");
  if (!events_path.empty()) {
    source = std::make_unique<stream::FileTailSource>(events_path,
                                                      args.has("follow"));
  } else {
    auto replay = datasetEvents(ds.value());
    if (!replay.isOk()) {
      return fail(replay.status());
    }
    auto mem = std::make_unique<stream::MemoryEventSource>();
    mem->push(std::move(replay).value());
    mem->close();
    source = std::move(mem);
  }

  const auto skipped_before =
      MetricsRegistry::global()
          .counter("engine.subgraphs_skipped_incremental")
          .value();
  Stopwatch sw;
  stream::IngestThread ingest(ingestor, *source);
  RunStats stats;
  auto digest = runAlgoDigestOn(algo, pg, sp, schedule, &sp, &stats);
  // Release the ingest thread's backpressure block if the run stopped
  // before the planned horizon (tdsp while-mode, engine error).
  stream::SealedTimestep leftover;
  while (queue.pop(leftover)) {
  }
  const Status ingest_status = ingest.join();
  if (!ingest_status.isOk()) {
    return fail(ingest_status);
  }
  if (!digest.isOk()) {
    return fail(digest.status());
  }
  const std::uint64_t skipped =
      MetricsRegistry::global()
          .counter("engine.subgraphs_skipped_incremental")
          .value() -
      skipped_before;

  std::printf("streamed %s over %s: %zu/%zu timesteps sealed (%.1f s)\n",
              algo.c_str(), args.positional[1].c_str(), sp.sealedCount(),
              planned, sw.elapsedSec());
  // Machine-parseable block — ci/check_stream.py consumes it verbatim.
  std::printf("stream summary:\n");
  std::printf("  events_ingested: %llu\n",
              static_cast<unsigned long long>(ingestor.eventsIngested()));
  std::printf("  late_events: %llu\n",
              static_cast<unsigned long long>(ingestor.lateEvents()));
  std::printf("  sealed_timesteps: %llu\n",
              static_cast<unsigned long long>(ingestor.sealedTimesteps()));
  std::printf("  seal_queue_max_depth: %zu\n", queue.maxDepth());
  std::printf("  seal_queue_capacity: %zu\n", queue.capacity());
  std::printf("  subgraphs_skipped_incremental: %llu\n",
              static_cast<unsigned long long>(skipped));
  std::printf("  digest: %s\n", digest.value().c_str());

  int rc = 0;
  if (args.has("verify")) {
    auto reference = runAlgoDigest(algo, ds.value(), Schedule::kBsp);
    if (!reference.isOk()) {
      return fail(reference.status());
    }
    const bool match = reference.value() == digest.value();
    std::printf("  batch_digest: %s\n", reference.value().c_str());
    std::printf("  digest_match: %s\n", match ? "yes" : "no");
    if (!match) {
      std::fputs("tsgcli stream: streamed digest DIVERGES from the cold "
                 "batch run\n",
                 stderr);
      rc = 1;
    }
  }
  printRunFooter(stats);
  return rc;
}

// ---------------------------------------------------------------------------
// top — live terminal view of a running job, fed by the telemetry ring.
// ---------------------------------------------------------------------------

std::int64_t pointTotal(const MetricsRegistry::Snapshot& points,
                        std::string_view name) {
  std::int64_t total = 0;
  for (const auto& p : points) {
    if (p.name == name) {
      total += p.value;
    }
  }
  return total;
}

const MetricsRegistry::Point* findPoint(
    const MetricsRegistry::Snapshot& points, std::string_view name,
    std::int32_t partition) {
  for (const auto& p : points) {
    if (p.partition == partition && p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

// Per-second rate of a counter between two samples.
double rateOf(const TelemetrySample& now, const TelemetrySample& prev,
              std::string_view name) {
  const double dt_s = static_cast<double>(now.ts_ns - prev.ts_ns) / 1e9;
  if (dt_s <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(pointTotal(now.points, name) -
                             pointTotal(prev.points, name)) /
         dt_s;
}

std::string renderTopFrame(const std::string& algo,
                           std::uint32_t num_partitions,
                           const TelemetrySample& now,
                           const TelemetrySample* prev, double elapsed_s) {
  std::string out = "tsgcli top — " + algo + "   elapsed " +
                    TextTable::fmtDouble(elapsed_s, 1) + " s";
  if (now.proc.valid) {
    out += "   rss " +
           TextTable::fmtDouble(
               static_cast<double>(now.proc.rss_bytes) / (1024.0 * 1024.0),
               1) +
           " MB   threads " + std::to_string(now.proc.threads);
  }
  out += "\n";
  out += "timestep " +
         std::to_string(pointTotal(now.points, "engine.current_timestep")) +
         "   superstep " +
         std::to_string(pointTotal(now.points, "engine.current_superstep")) +
         "   ready " +
         std::to_string(pointTotal(now.points, "cluster.ready_queue_depth")) +
         "   bus backlog " +
         std::to_string(pointTotal(now.points, "bus.inflight_messages"));
  if (prev != nullptr) {
    out += "   waves/s " + TextTable::fmtDouble(
                               rateOf(now, *prev, "cluster.waves"), 0) +
           "   steals/s " + TextTable::fmtDouble(
                                rateOf(now, *prev, "cluster.steals"), 0) +
           "   skips/s " +
           TextTable::fmtDouble(rateOf(now, *prev, "cluster.barrier_skips"),
                                0) +
           "   msg/s " +
           TextTable::fmtDouble(rateOf(now, *prev, "bus.messages_delivered"),
                                0);
  }
  out += "\n";
  TextTable table({"partition", "subgraphs", "deque", "msgs sent",
                   "resident MB"});
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    const auto part = static_cast<std::int32_t>(p);
    const auto* computed =
        findPoint(now.points, "engine.subgraphs_computed", part);
    const auto* deque =
        findPoint(now.points, "cluster.worker_queue_depth", part);
    const auto* sent = findPoint(now.points, "engine.messages_sent", part);
    const auto* resident = findPoint(now.points, "gofs.resident_bytes", part);
    table.addRow({std::to_string(p),
                  computed != nullptr
                      ? TextTable::fmtCount(
                            static_cast<std::uint64_t>(computed->value))
                      : "-",
                  deque != nullptr ? std::to_string(deque->value) : "-",
                  sent != nullptr
                      ? TextTable::fmtCount(
                            static_cast<std::uint64_t>(sent->value))
                      : "-",
                  resident != nullptr
                      ? TextTable::fmtDouble(
                            static_cast<double>(resident->value) / 1e6, 1)
                      : "-"});
  }
  out += table.render();
  return out;
}

int cmdTop(const Args& args) {
  if (args.positional.size() < 2) {
    std::fputs("tsgcli top: need <algo> and <dataset dir> arguments\n",
               stderr);
    return 2;
  }
  const std::string& algo = args.positional[0];
  auto ds = GofsDataset::open(args.positional[1]);
  if (!ds.isOk()) {
    return fail(ds.status());
  }
  Schedule schedule = Schedule::kBsp;
  if (!parseSchedule(args, &schedule)) {
    return 2;
  }
  const auto num_partitions = ds.value().partitionedGraph().numPartitions();

  TelemetryOptions sampler_options;
  sampler_options.sample_ms =
      static_cast<int>(args.getInt("sample-ms", 20));
  sampler_options.label = "top " + algo;
  TelemetrySampler sampler(sampler_options);
  sampler.start();

  // The job runs on its own thread so this one can keep redrawing. The
  // digest result is only read after join().
  Result<std::string> digest = Status::internal("job did not run");
  std::atomic<bool> done{false};
  std::thread job([&] {  // NOLINT(tsg-naked-thread)
    digest = runAlgoDigest(algo, ds.value(), schedule);
    done.store(true, std::memory_order_release);  // tsg:mo(release publishes the digest to the polling loop)
  });

  const auto refresh =
      std::chrono::milliseconds(args.getInt("refresh-ms", 200));
#ifdef __linux__
  const bool tty = isatty(fileno(stdout)) != 0;
#else
  const bool tty = false;
#endif
  const std::int64_t t0 = steadyNowNs();
  TelemetrySample prev;
  bool has_prev = false;
  while (!done.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with the worker's release of done)
    std::this_thread::sleep_for(refresh);
    TelemetrySample sample;
    if (!sampler.ring().latest(sample)) {
      continue;
    }
    const double elapsed_s = static_cast<double>(steadyNowNs() - t0) / 1e9;
    const std::string frame =
        renderTopFrame(algo, num_partitions, sample,
                       has_prev ? &prev : nullptr, elapsed_s);
    if (tty) {
      // Home + clear-to-end redraw keeps the view stable in a terminal.
      std::printf("\x1b[H\x1b[2J%s", frame.c_str());
      std::fflush(stdout);
    } else {
      std::printf("%s---\n", frame.c_str());
    }
    prev = std::move(sample);
    has_prev = true;
  }
  job.join();
  sampler.stop();

  // Final frame from a synchronous capture so the end state is exact.
  const double elapsed_s = static_cast<double>(steadyNowNs() - t0) / 1e9;
  const TelemetrySample last = TelemetrySampler::captureSample();
  std::printf("%s", renderTopFrame(algo, num_partitions, last,
                                   has_prev ? &prev : nullptr, elapsed_s)
                        .c_str());
  // Sampler health footer: how many frames the ring produced, how many a
  // slow consumer cost us, and how far the tick thread fell behind.
  std::printf("telemetry: %llu samples, %llu dropped, %llu missed ticks\n",
              static_cast<unsigned long long>(sampler.ring().produced()),
              static_cast<unsigned long long>(sampler.ring().droppedSamples()),
              static_cast<unsigned long long>(sampler.missedTicks()));
  if (!digest.isOk()) {
    return fail(digest.status());
  }
  std::printf("done in %.1f s; digest %s\n", elapsed_s,
              digest.value().c_str());
  return 0;
}

int cmdCompare(const Args& args) {
  if (args.positional.size() < 2) {
    std::fputs("tsgcli compare: need BASE.json and CANDIDATE.json\n", stderr);
    return 2;
  }
  auto base = loadRunStatsFile(args.positional[0]);
  if (!base.isOk()) {
    std::fprintf(stderr, "tsgcli: %s\n", base.status().toString().c_str());
    return 2;
  }
  auto candidate = loadRunStatsFile(args.positional[1]);
  if (!candidate.isOk()) {
    std::fprintf(stderr, "tsgcli: %s\n",
                 candidate.status().toString().c_str());
    return 2;
  }
  CompareThresholds thresholds;
  thresholds.max_regress_pct = args.getDouble("max-regress", 10.0);
  const auto result =
      compareRuns(base.value(), candidate.value(), thresholds);
  std::fputs(renderCompare(result).c_str(), stdout);
  return result.pass ? 0 : 1;
}

}  // namespace

int dispatch(const std::string& command, const Args& args) {
  if (command == "generate") {
    return cmdGenerate(args);
  }
  if (command == "inspect") {
    return cmdInspect(args);
  }
  if (command == "tdsp") {
    return cmdTdsp(args);
  }
  if (command == "meme") {
    return cmdMeme(args);
  }
  if (command == "hashtag") {
    return cmdHashtag(args);
  }
  if (command == "pagerank") {
    return cmdPageRank(args);
  }
  if (command == "wcc") {
    return cmdWcc(args);
  }
  if (command == "check") {
    return cmdCheck(args);
  }
  if (command == "stream") {
    return cmdStream(args);
  }
  if (command == "analyze") {
    return cmdAnalyze(args);
  }
  if (command == "compare") {
    return cmdCompare(args);
  }
  if (command == "top") {
    return cmdTop(args);
  }
  std::fprintf(stderr, "tsgcli: unknown command '%s'\n", command.c_str());
  return usage();
}

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  LogLevel level = initLogLevelFromEnv();
  const std::string command = argv[1];
  const Args args = parseArgs(argc, argv);
  // --log-level= wins over TSG_LOG_LEVEL.
  if (args.has("log-level")) {
    const std::string requested = args.get("log-level", "");
    if (parseLogLevel(requested, level)) {
      setLogLevel(level);
    } else {
      std::fprintf(stderr, "tsgcli: invalid --log-level=%s\n",
                   requested.c_str());
      return 2;
    }
  }
  TSG_LOG(Info) << "log level: " << logLevelName(level);
  // Fault injection: --inject= wins over TSG_INJECT.
  if (args.has("inject")) {
    auto plan = fault::parseFaultPlan(args.get("inject", ""));
    if (!plan.isOk()) {
      std::fprintf(stderr, "tsgcli: --inject: %s\n",
                   plan.status().toString().c_str());
      return 2;
    }
    fault::FaultInjector::global().arm(
        std::move(plan).value(),
        static_cast<std::uint64_t>(args.getInt("inject-seed", 42)));
  } else {
    fault::armFromEnv();
  }
  // Cost-attribution profiler: armed process-wide before any engine runs;
  // the engines attach the table to RunStats and the footers render it.
  if (args.has("profile") || args.has("profile-sample")) {
    ProfileOptions profile_options;
    const std::int64_t topk = args.getInt("profile", 0);
    if (topk > 1) {
      profile_options.sketch_capacity = static_cast<std::size_t>(topk);
    }
    const std::int64_t sample = args.getInt("profile-sample", 0);
    if (sample > 0) {
      profile_options.sample_every = static_cast<std::uint32_t>(sample);
    }
    Profiler::global().arm(profile_options);
  }
  g_json_path = args.get("json", "");
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    Tracer::instance().start();
  }
  // Live telemetry wraps the run commands only: `analyze` reads --timeline=
  // instead of writing it, `top` drives its own sampler, and compare /
  // generate / inspect have nothing to sample.
  RunTelemetryOptions telemetry_options;
  telemetry_options.sample_ms =
      args.has("sample-ms")
          ? static_cast<int>(args.getInt("sample-ms", 10))
          : -1;
  telemetry_options.timeline_path = args.get("timeline", "");
  telemetry_options.prom_path = args.get("prom", "");
  telemetry_options.prom_port =
      args.has("prom-port")
          ? static_cast<int>(args.getInt("prom-port", 0))
          : -1;
  telemetry_options.label = command;
  const bool run_command = command == "tdsp" || command == "meme" ||
                           command == "hashtag" || command == "pagerank" ||
                           command == "wcc" || command == "check" ||
                           command == "stream";
  RunTelemetry telemetry(run_command ? telemetry_options
                                     : RunTelemetryOptions{});
  if (telemetry.armed()) {
    const Status status = telemetry.start();
    if (!status.isOk()) {
      std::fprintf(stderr, "tsgcli: %s\n", status.toString().c_str());
      return 1;
    }
  }
  const int rc = dispatch(command, args);
  {
    const Status status = telemetry.finish();
    if (!status.isOk()) {
      std::fprintf(stderr, "tsgcli: %s\n", status.toString().c_str());
    } else if (!telemetry_options.timeline_path.empty() && run_command) {
      std::printf("wrote timeline: %s\n",
                  telemetry_options.timeline_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    Tracer::instance().stop();
    const Status status = Tracer::instance().writeJson(trace_path);
    if (status.isOk()) {
      std::printf("wrote trace: %s (%zu events)\n", trace_path.c_str(),
                  Tracer::instance().eventCount());
    } else {
      std::fprintf(stderr, "tsgcli: %s\n", status.toString().c_str());
    }
  }
  return rc;
}
