// Table I reproduction: dataset properties of the two graph templates.
//
// Paper (full SNAP scale):        Vertices    Edges      Diameter
//   California Road Net (CARN)    1,965,206   2,766,607  849
//   Wikipedia Talk Net (WIKI)     2,394,385   5,021,410  9
//
// We regenerate the same *structural contrast* at bench scale: CARN-like is
// large-diameter/low-degree, WIKI-like is small-diameter/power-law. The
// expected shape: diameter(CARN) >> diameter(WIKI); mean degree(WIKI) >
// mean degree(CARN); max degree(WIKI) >> max degree(CARN).
#include <sstream>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);

  TextTable table({"graph", "vertices", "edges(undirected)", "diameter(est)",
                   "max_degree", "mean_degree", "gen_ms"});
  for (const auto kind : {GraphKind::kCarn, GraphKind::kWiki}) {
    Stopwatch sw;
    const auto tmpl = makeTemplate(kind, WorkloadKind::kRoad, config);
    const double gen_ms = sw.elapsedMs();

    std::size_t max_degree = 0;
    for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
      max_degree = std::max(max_degree, tmpl->outDegree(v));
    }
    const double mean_degree = static_cast<double>(tmpl->numEdges()) /
                               static_cast<double>(tmpl->numVertices());
    table.addRow({kindName(kind), TextTable::fmtCount(tmpl->numVertices()),
                  TextTable::fmtCount(tmpl->numEdges() / 2),
                  std::to_string(tmpl->estimateDiameter()),
                  std::to_string(max_degree),
                  TextTable::fmtDouble(mean_degree, 2),
                  TextTable::fmtDouble(gen_ms, 1)});
  }

  std::ostringstream out;
  out << "=== Table I: graph template properties (scale="
      << config.scale_percent << "%) ===\n"
      << table.render()
      << "paper (full scale): CARN 1,965,206 v / 2,766,607 e / diam 849; "
         "WIKI 2,394,385 v / 5,021,410 e / diam 9\n"
      << "expected shape: diam(CARN) >> diam(WIKI); max_degree(WIKI) >> "
         "max_degree(CARN)\n\n";
  emit(config, "table1_datasets", out.str());
  return 0;
}
