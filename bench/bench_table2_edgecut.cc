// Table II reproduction: percentage of edges cut across graph partitions.
//
// Paper (METIS k-way):   3 parts    6 parts    9 parts
//   CARN                 0.005%     0.012%     0.020%
//   WIKI                 10.750%    17.190%    26.170%
//
// Expected shape: CARN cut is vanishingly small and grows ~linearly with k;
// WIKI cut is orders of magnitude larger and grows steeply. The default
// partitioner is the BFS region-grower (our METIS stand-in); LDG and hash
// rows are included as ablation context.
#include <sstream>

#include "bench_common.h"
#include "common/table.h"
#include "partition/partitioner.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);

  TextTable table({"graph", "partitioner", "3 parts", "6 parts", "9 parts"});
  for (const auto kind : {GraphKind::kCarn, GraphKind::kWiki}) {
    const auto tmpl = makeTemplate(kind, WorkloadKind::kRoad, config);
    const BfsPartitioner bfs(config.seed);
    const LdgPartitioner ldg(config.seed);
    const HashPartitioner hash;
    const Partitioner* partitioners[] = {&bfs, &ldg, &hash};
    for (const Partitioner* partitioner : partitioners) {
      std::vector<std::string> row{kindName(kind), partitioner->name()};
      for (const std::uint32_t k : {3u, 6u, 9u}) {
        const auto metrics =
            evaluatePartition(*tmpl, partitioner->assign(*tmpl, k), k);
        row.push_back(TextTable::fmtPercent(metrics.cut_fraction, 3));
      }
      table.addRow(std::move(row));
    }
  }

  std::ostringstream out;
  out << "=== Table II: % edges cut across partitions (scale="
      << config.scale_percent << "%) ===\n"
      << table.render()
      << "paper (METIS): CARN 0.005% / 0.012% / 0.020%; WIKI 10.75% / "
         "17.19% / 26.17%\n"
      << "expected shape: cut(WIKI) >> cut(CARN); both grow with k\n\n";
  emit(config, "table2_edgecut", out.str());
  return 0;
}
