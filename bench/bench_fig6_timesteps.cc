// Fig. 6 reproduction: time per timestep across the run, for TDSP on CARN
// (6a) and MEME on WIKI (6b), at 3 / 6 / 9 partitions.
//
// Paper shape (§IV-D): a gentle bump every 10th timestep where GoFS loads
// the next slice pack (temporal packing = 10); a larger spike at timesteps
// 20 and 40 where the synchronized maintenance pause runs (the paper's
// forced System.gc()); and the 3-partition series sits above 6 ≈ 9.
#include <map>
#include <sstream>

#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

// Per-timestep modelled ms + load ms for one run, per k.
struct Series {
  std::vector<double> total_ms;
  std::vector<double> load_ms;
};

Series seriesOf(const RunStats& stats, Timestep timesteps) {
  Series s;
  s.total_ms.assign(timesteps, 0.0);
  s.load_ms.assign(timesteps, 0.0);
  for (const auto& rec : stats.supersteps()) {
    if (rec.is_merge_phase || rec.timestep < 0 ||
        rec.timestep >= timesteps) {
      continue;
    }
    std::int64_t max_busy = 0;
    std::int64_t max_load = 0;
    for (const auto& part : rec.parts) {
      max_busy = std::max(max_busy,
                          part.compute_ns + part.send_ns + part.load_ns);
      max_load = std::max(max_load, part.load_ns);
    }
    s.total_ms[rec.timestep] += nsToMs(max_busy);
    s.load_ms[rec.timestep] += nsToMs(max_load);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);

  std::ostringstream out;
  out << "=== Fig. 6: time per timestep (slice-load bumps every 10th "
         "timestep, maintenance at 20/40) scale="
      << config.scale_percent << "% ===\n";

  struct Case {
    const char* label;
    GraphKind kind;
    bool tdsp;
  };
  const Case cases[] = {{"6a: TDSP on CARN", GraphKind::kCarn, true},
                        {"6b: MEME on WIKI", GraphKind::kWiki, false}};

  for (const auto& c : cases) {
    std::map<std::uint32_t, Series> by_k;
    Timestep executed = static_cast<Timestep>(config.timesteps);
    for (const std::uint32_t k : {3u, 6u, 9u}) {
      const auto ds = openDataset(
          c.kind, c.tdsp ? WorkloadKind::kRoad : WorkloadKind::kTweet, k,
          config);
      auto provider = ds.makeProvider();
      const auto& pg = ds.partitionedGraph();
      if (c.tdsp) {
        TdspOptions options;
        options.source = 0;
        options.latency_attr =
            pg.graphTemplate().edgeSchema().requireIndex(kLatencyAttr);
        options.while_mode = false;  // full series, like the figure
        options.maintenance_period = 20;
        const auto run = runTdsp(pg, *provider, options);
        by_k[k] = seriesOf(run.exec.stats, executed);
        emitRunStatsJson(config, "fig6a_tdsp_carn_k" + std::to_string(k),
                         run.exec.stats);
      } else {
        MemeOptions options;
        options.tweets_attr =
            pg.graphTemplate().vertexSchema().requireIndex(kTweetsAttr);
        options.maintenance_period = 20;
        const auto run = runMemeTracking(pg, *provider, options);
        by_k[k] = seriesOf(run.exec.stats, executed);
        emitRunStatsJson(config, "fig6b_meme_wiki_k" + std::to_string(k),
                         run.exec.stats);
      }
    }

    TextTable table({"timestep", "3 parts (ms)", "6 parts (ms)",
                     "9 parts (ms)", "load k=6 (ms)", "marker"});
    for (Timestep t = 0; t < executed; ++t) {
      std::string marker;
      if (t > 0 && t % 20 == 0) {
        marker = "maintenance";
      } else if (t % 10 == 0 && t > 0) {
        marker = "slice load";
      }
      table.addRow({std::to_string(t),
                    TextTable::fmtDouble(by_k[3].total_ms[t], 2),
                    TextTable::fmtDouble(by_k[6].total_ms[t], 2),
                    TextTable::fmtDouble(by_k[9].total_ms[t], 2),
                    TextTable::fmtDouble(by_k[6].load_ms[t], 2), marker});
    }
    out << "--- " << c.label << " ---\n" << table.render();
  }
  out << "expected shape: bumps at every 10th timestep (slice pack load), "
         "spikes at 20/40 (maintenance), 3-partition series above 6 ~= 9\n\n";
  emit(config, "fig6_timesteps", out.str());
  finishTrace(config);
  return 0;
}
