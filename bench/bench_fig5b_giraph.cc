// Fig. 5b reproduction: vertex-centric ("Giraph") SSSP on one unweighted
// instance vs subgraph-centric (GoFFish) SSSP on one instance vs GoFFish
// TDSP over all 50 instances — 6 partitions.
//
// Paper shape (§IV-C): even Giraph SSSP on a SINGLE unweighted graph takes
// longer than GoFFish TDSP over 50 instances, for both CARN and WIKI; and
// GoFFish SSSP on one CARN instance is ~13x faster than TDSP on 50. The
// mechanism: vertex-centric SSSP needs ~diameter supersteps with per-vertex
// messages, subgraph-centric needs ~partition-hop supersteps.
#include <sstream>

#include "algorithms/sssp.h"
#include "algorithms/tdsp_vertex.h"
#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"
#include "vertexcentric/engine.h"
#include "vertexcentric/programs.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  TextTable table({"graph", "system", "work", "modelled (s)", "wall (s)",
                   "supersteps"});
  std::ostringstream shape;

  for (const auto kind : {GraphKind::kCarn, GraphKind::kWiki}) {
    const auto ds = openDataset(kind, WorkloadKind::kRoad, kPartitions,
                                config);
    const auto& pg = ds.partitionedGraph();

    // 1) Vertex-centric SSSP, single unweighted instance (the paper runs
    // Giraph on the unweighted graph, which degenerates to BFS).
    vertexcentric::VertexCentricEngine vc_engine(pg);
    vertexcentric::SsspVertexProgram vc_program(0);
    const auto vc = vc_engine.run(vc_program, {}, [](VertexIndex) {
      return vertexcentric::kInf;
    });
    table.addRow({kindName(kind), "vertex-centric (Giraph-like)",
                  "SSSP 1 instance",
                  TextTable::fmtDouble(nsToSec(vc.stats.modelledParallelNs()),
                                       3),
                  TextTable::fmtDouble(nsToSec(vc.stats.wallClockNs()), 3),
                  std::to_string(vc.supersteps)});

    // 2) Subgraph-centric SSSP, single unweighted instance.
    auto provider_sssp = ds.makeProvider();
    SsspOptions sssp_options;
    sssp_options.source = 0;  // unweighted
    const auto sssp = runSubgraphSssp(pg, *provider_sssp, sssp_options);
    table.addRow(
        {kindName(kind), "subgraph-centric (GoFFish)", "SSSP 1 instance",
         TextTable::fmtDouble(nsToSec(sssp.exec.stats.modelledParallelNs()),
                              3),
         TextTable::fmtDouble(nsToSec(sssp.exec.stats.wallClockNs()), 3),
         std::to_string(sssp.exec.stats.totalSupersteps())});

    // 3) Subgraph-centric TDSP over the full series.
    auto provider_tdsp = ds.makeProvider();
    TdspOptions tdsp_options;
    tdsp_options.source = 0;
    tdsp_options.latency_attr =
        pg.graphTemplate().edgeSchema().requireIndex(kLatencyAttr);
    tdsp_options.while_mode = true;
    const auto tdsp = runTdsp(pg, *provider_tdsp, tdsp_options);
    table.addRow(
        {kindName(kind), "subgraph-centric (GoFFish)",
         "TDSP " + std::to_string(tdsp.exec.timesteps_executed) +
             " instances",
         TextTable::fmtDouble(nsToSec(tdsp.exec.stats.modelledParallelNs()),
                              3),
         TextTable::fmtDouble(nsToSec(tdsp.exec.stats.wallClockNs()), 3),
         std::to_string(tdsp.exec.stats.totalSupersteps())});

    // 4) The paper's §IV-C hypothesis made concrete: Giraph re-engineered
    // to support TI-BSP ("with a fair bit of engineering, it is possible"),
    // running TDSP over the series. The paper bounds it at [tau, n*tau]
    // where tau is one vertex-centric SSSP.
    auto provider_vtdsp = ds.makeProvider();
    VertexTdspOptions vtdsp_options;
    vtdsp_options.source = 0;
    vtdsp_options.latency_attr = tdsp_options.latency_attr;
    vtdsp_options.num_timesteps = tdsp.exec.timesteps_executed;
    const auto vtdsp = runVertexTdsp(pg, *provider_vtdsp, vtdsp_options);
    table.addRow(
        {kindName(kind), "vertex-centric TI-BSP (ported)",
         "TDSP " + std::to_string(vtdsp.exec.timesteps_executed) +
             " instances",
         TextTable::fmtDouble(nsToSec(vtdsp.exec.stats.modelledParallelNs()),
                              3),
         TextTable::fmtDouble(nsToSec(vtdsp.exec.stats.wallClockNs()), 3),
         std::to_string(vtdsp.exec.stats.totalSupersteps())});

    const double vc_sssp = nsToSec(vc.stats.modelledParallelNs());
    const double sg_sssp = nsToSec(sssp.exec.stats.modelledParallelNs());
    const double sg_tdsp = nsToSec(tdsp.exec.stats.modelledParallelNs());
    const double vc_tdsp = nsToSec(vtdsp.exec.stats.modelledParallelNs());
    shape << kindName(kind) << ": Giraph-SSSP / GoFFish-TDSPx"
          << tdsp.exec.timesteps_executed << " = "
          << TextTable::fmtDouble(vc_sssp / sg_tdsp, 2)
          << " (paper: > 1);  TDSP / GoFFish-SSSP = "
          << TextTable::fmtDouble(sg_tdsp / sg_sssp, 1)
          << " (paper: ~13 on CARN);  ported-TI-BSP TDSP / tau = "
          << TextTable::fmtDouble(vc_tdsp / vc_sssp, 2) << " (paper: in [1, "
          << tdsp.exec.timesteps_executed << "])\n";
  }

  std::ostringstream out;
  out << "=== Fig. 5b: Giraph SSSP 1x vs GoFFish SSSP 1x vs GoFFish TDSP "
         "50x, 6 partitions (scale="
      << config.scale_percent << "%) ===\n"
      << table.render() << shape.str()
      << "expected shape: vertex-centric SSSP slower than subgraph-centric "
         "TDSP over the whole series\n\n";
  emit(config, "fig5b_giraph", out.str());
  return 0;
}
