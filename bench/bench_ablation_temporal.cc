// Ablation: temporal concurrency for the independent / eventually dependent
// patterns. The paper observes (§IV-B) that HASH could be "pleasingly
// parallelized" across timesteps but GoFFish did not exploit it — our
// engine implements both modes, so this bench quantifies the improvement
// the paper leaves on the table.
//
// Expected: with temporal concurrency, HASH and TopN wall-clock approach
// (serial wall / min(timesteps, workers)) on a multi-core host; on this
// single-core host wall-clock stays flat but the mode is exercised and the
// per-timestep work distribution is reported.
#include <sstream>

#include "algorithms/hashtag.h"
#include "algorithms/topn.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  const auto ds =
      openDataset(GraphKind::kWiki, WorkloadKind::kTweet, kPartitions,
                  config);
  const auto& pg = ds.partitionedGraph();
  const std::size_t tweets_attr =
      pg.graphTemplate().vertexSchema().requireIndex(kTweetsAttr);

  TextTable table({"algo", "temporal mode", "wall (s)", "modelled (s)",
                   "supersteps"});
  for (const auto mode :
       {TemporalMode::kSerial, TemporalMode::kConcurrent}) {
    const std::string mode_name =
        mode == TemporalMode::kSerial ? "serial (paper)" : "concurrent";
    {
      auto provider = ds.makeProvider();
      HashtagOptions options;
      options.tweets_attr = tweets_attr;
      options.temporal_mode = mode;
      const auto run = runHashtagAggregation(pg, *provider, options);
      table.addRow({"HASH", mode_name,
                    TextTable::fmtDouble(
                        nsToSec(run.exec.stats.wallClockNs()), 3),
                    TextTable::fmtDouble(
                        nsToSec(run.exec.stats.modelledParallelNs()), 3),
                    std::to_string(run.exec.stats.totalSupersteps())});
    }
    {
      auto provider = ds.makeProvider();
      TopNOptions options;
      options.tweets_attr = tweets_attr;
      options.n = 10;
      options.temporal_mode = mode;
      const auto run = runTopActiveVertices(pg, *provider, options);
      table.addRow({"TopN", mode_name,
                    TextTable::fmtDouble(
                        nsToSec(run.exec.stats.wallClockNs()), 3),
                    TextTable::fmtDouble(
                        nsToSec(run.exec.stats.modelledParallelNs()), 3),
                    std::to_string(run.exec.stats.totalSupersteps())});
    }
  }

  std::ostringstream out;
  out << "=== Ablation: temporal concurrency for independent/eventually "
         "dependent patterns (WIKI, 6 partitions, scale="
      << config.scale_percent << "%) ===\n"
      << table.render()
      << "note: this host has one core, so concurrent-mode wall-clock gains "
         "appear only on multi-core machines; results are verified "
         "identical across modes by the test suite\n\n";
  emit(config, "ablation_temporal", out.str());
  return 0;
}
