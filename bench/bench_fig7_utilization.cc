// Fig. 7b / 7d reproduction: per-partition split of compute time vs
// partition overhead (message send) vs sync overhead (barrier wait/idle)
// vs instance load, on 6 partitions.
//
// Paper shape: partitions that are active early / carry more of the
// algorithm's work show high compute fractions; partitions the frontier
// reaches late (7b, TDSP on CARN) or with few memes (7d, MEME on WIKI)
// spend most of their time in sync overhead — the paper reports some at
// only ~30% compute utilization.
#include <sstream>

#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "generators/topology.h"
#include "metrics/report.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  std::ostringstream out;
  out << "=== Fig. 7b/7d: compute / partition-overhead / sync-overhead "
         "split per partition, 6 partitions (scale="
      << config.scale_percent << "%) ===\n";

  {
    const auto ds = openDataset(GraphKind::kCarn, WorkloadKind::kRoad,
                                kPartitions, config);
    auto provider = ds.makeProvider();
    const auto& pg = ds.partitionedGraph();
    TdspOptions options;
    options.source = 0;
    options.latency_attr =
        pg.graphTemplate().edgeSchema().requireIndex(kLatencyAttr);
    options.while_mode = false;
    const auto run = runTdsp(pg, *provider, options);
    out << renderUtilization(run.exec.stats, "7b: TDSP on CARN");
    out << summarizeRun(run.exec.stats, "TDSP/CARN") << "\n";
    emitRunStatsJson(config, "fig7b_tdsp_carn", run.exec.stats);
  }
  {
    const auto ds = openDataset(GraphKind::kWiki, WorkloadKind::kTweet,
                                kPartitions, config);
    auto provider = ds.makeProvider();
    const auto& pg = ds.partitionedGraph();
    MemeOptions options;
    options.tweets_attr =
        pg.graphTemplate().vertexSchema().requireIndex(kTweetsAttr);
    const auto run = runMemeTracking(pg, *provider, options);
    out << renderUtilization(run.exec.stats, "7d: MEME on WIKI");
    out << summarizeRun(run.exec.stats, "MEME/WIKI") << "\n";
    emitRunStatsJson(config, "fig7d_meme_wiki", run.exec.stats);
  }
  out << "expected shape: partitions reached late / carrying fewer memes "
         "show low compute share and high sync share\n\n";
  emit(config, "fig7_utilization", out.str());
  finishTrace(config);
  return 0;
}
