// Ablation: partition-quality advisor (profiler-driven rebalancing).
//
// The advisor turns an AttributionTable into a suggested subgraph ->
// partition assignment (greedy makespan reduction over observed per-
// subgraph compute). This bench is the ground truth for that suggestion:
// run TDSP on CARN with the profiler armed, feed the attribution into
// advisePartitioning(), rebuild the PartitionedGraph from the suggested
// assignment, rerun, and report modelled time / compute makespan before
// vs after. The placement deliberately folds more BFS regions than
// partitions (as in bench_ablation_rebalance) so each partition owns
// movable subgraphs.
#include <sstream>

#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"
#include "metrics/analysis.h"
#include "partition/partitioner.h"
#include "profile/advisor.h"
#include "profile/profiler.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

struct Observed {
  double modelled_sec = 0;
  std::int64_t compute_makespan_ns = 0;  // max per-partition attributed compute
  double gini = 0;                       // per-subgraph compute concentration
  AttributionTable attrib;
  RunStats stats{0};
};

Observed observe(const PartitionedGraph& pg,
                 const TimeSeriesCollection& collection,
                 std::size_t latency_attr) {
  DirectInstanceProvider provider(pg, collection);
  TdspOptions options;
  options.source = 0;
  options.latency_attr = latency_attr;
  options.while_mode = true;
  const auto run = runTdsp(pg, provider, options);

  Observed obs;
  obs.modelled_sec = nsToSec(run.exec.stats.modelledParallelNs());
  obs.stats = run.exec.stats;
  TSG_CHECK(run.exec.stats.hasAttribution());
  obs.attrib = run.exec.stats.attribution();
  for (const std::int64_t ns : obs.attrib.partitionComputeNs()) {
    obs.compute_makespan_ns = std::max(obs.compute_makespan_ns, ns);
  }
  const auto totals = obs.attrib.subgraphTotals();
  std::vector<std::int64_t> weights;
  weights.reserve(totals.size());
  for (const auto& t : totals) {
    weights.push_back(t.compute_ns);
  }
  obs.gini = giniCoefficient(weights);
  return obs;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  Profiler::global().arm(ProfileOptions{});

  auto tmpl = makeTemplate(GraphKind::kCarn, WorkloadKind::kRoad, config);
  const auto collection =
      makeCollection(tmpl, WorkloadKind::kRoad, GraphKind::kCarn, config);
  const std::size_t latency_attr =
      tmpl->edgeSchema().requireIndex(kLatencyAttr);

  // Folded-region placement (see bench_ablation_rebalance): more BFS
  // regions than partitions so every partition has a movable tail.
  const BfsPartitioner region_grower(config.seed + 7);
  auto assignment = region_grower.assign(*tmpl, kPartitions * 8);
  for (auto& p : assignment) {
    p %= kPartitions;
  }
  auto pg_result = PartitionedGraph::build(tmpl, assignment, kPartitions);
  TSG_CHECK(pg_result.isOk());
  const auto pg = std::move(pg_result).value();

  const auto before = observe(pg, collection, latency_attr);

  const auto analysis = analyzeCriticalPath(before.stats);
  const auto report = advisePartitioning(before.attrib, &analysis);

  // Replay: expand the suggested subgraph -> partition map to a per-vertex
  // assignment and rebuild the decomposition from it.
  PartitionAssignment replay(tmpl->numVertices());
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    const SubgraphId sg = pg.subgraphOfVertex(v);
    TSG_CHECK(static_cast<std::size_t>(sg) <
              report.suggested_subgraph_partition.size());
    replay[v] = report.suggested_subgraph_partition[sg];
  }
  auto pg_after_result = PartitionedGraph::build(tmpl, replay, kPartitions);
  TSG_CHECK(pg_after_result.isOk());
  const auto after = observe(pg_after_result.value(), collection,
                             latency_attr);

  Profiler::global().disarm();

  TextTable table({"placement", "modelled (s)", "compute makespan (ms)",
                   "subgraph gini"});
  table.addRow({"original", TextTable::fmtDouble(before.modelled_sec, 3),
                TextTable::fmtDouble(
                    static_cast<double>(before.compute_makespan_ns) / 1e6, 2),
                TextTable::fmtDouble(before.gini, 3)});
  table.addRow({"advised", TextTable::fmtDouble(after.modelled_sec, 3),
                TextTable::fmtDouble(
                    static_cast<double>(after.compute_makespan_ns) / 1e6, 2),
                TextTable::fmtDouble(after.gini, 3)});

  std::ostringstream out;
  out << "=== Ablation: partition-quality advisor, TDSP on CARN, "
         "folded-region placement, 6 partitions (scale="
      << config.scale_percent << "%) ===\n"
      << table.render() << "advisor: " << report.moves.size()
      << " suggested moves; predicted makespan gain "
      << TextTable::fmtDouble(report.gainPct(), 1) << "%\n"
      << renderAdvisorReport(report)
      << "expected shape: when the advisor suggests moves, the replayed "
         "assignment's observed compute makespan drops toward the "
         "prediction; with a balanced placement it suggests nothing and "
         "both rows match. Modelled-time deltas at bench scale sit within "
         "run noise — the makespan column is the signal.\n\n";
  emit(config, "ablation_advisor", out.str());
  emitRunStatsJson(config, "ablation_advisor", before.stats);
  finishTrace(config);
  return 0;
}
