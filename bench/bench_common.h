// Shared infrastructure for the paper-reproduction bench binaries.
//
// Datasets: "CARN" = synthetic road lattice (large diameter, uniform low
// degree), "WIKI" = synthetic preferential-attachment graph (power-law,
// small diameter) — the structural stand-ins for the SNAP graphs (see
// DESIGN.md §1). Each bench builds its datasets once into a cache directory
// (default build/bench_data, override with TSG_BENCH_DATA) and reuses them.
//
// Scale: default is laptop-scale (tens of thousands of vertices instead of
// the paper's millions) so the full suite runs in minutes on one core; pass
// --scale=N (percent of default) to grow or shrink everything.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gofs/dataset.h"
#include "graph/collection.h"
#include "partition/partitioned_graph.h"
#include "metrics/stats.h"

namespace tsg::bench {

enum class GraphKind { kCarn, kWiki };
enum class WorkloadKind { kRoad, kTweet };

struct BenchConfig {
  // Percent of the base dataset size. Default 300 (~200k-vertex graphs):
  // big enough that per-superstep compute dominates the modelled barrier
  // cost, so scaling trends are visible; --scale=100 for quick runs.
  int scale_percent = 300;
  std::uint32_t timesteps = 50;
  std::uint64_t seed = 2015;  // venue year
  std::string data_dir;       // resolved cache directory
  std::string trace_path;     // --trace=PATH: Perfetto trace of the run
  std::string json_path;      // --json=PATH: machine-readable run stats

  // Live telemetry (see src/telemetry/): any of these arms the sampler.
  int sample_ms = -1;          // --sample-ms=N (-1 = default 10 when armed)
  std::string timeline_path;   // --timeline=PATH: timeline JSON at exit
  std::string prom_path;       // --prom=PATH: Prometheus exposition file
  int prom_port = -1;          // --prom-port=N (-1 = off, 0 = ephemeral)
};

// Parses --scale=, --timesteps=, --seed=, --trace=, --json= and the
// telemetry flags (--sample-ms=, --timeline=, --prom=, --prom-port=) out of
// argv; resolves data_dir, applies TSG_LOG_LEVEL, starts the tracer if
// --trace was given and the telemetry sampler if any telemetry flag was.
BenchConfig parseArgs(int argc, char** argv);

// Deterministic templates. CARN default ~22.5k vertices; WIKI ~20k.
GraphTemplatePtr makeTemplate(GraphKind kind, WorkloadKind workload,
                              const BenchConfig& config);

// Hit probabilities mirroring the paper's tuning (§IV-A): high on the road
// lattice, low on the small-world graph, adjusted for our scale so the
// propagation stays alive across all timesteps.
double memeHitProbability(GraphKind kind);

// In-memory instance data for a template.
TimeSeriesCollection makeCollection(GraphTemplatePtr tmpl,
                                    WorkloadKind workload,
                                    GraphKind kind,
                                    const BenchConfig& config);

// Builds (or reuses from cache) a GoFS dataset for (kind, workload, k) with
// the paper's packing of 10 and binning of 5, and opens it.
GofsDataset openDataset(GraphKind kind, WorkloadKind workload, std::uint32_t k,
                        const BenchConfig& config);

std::string kindName(GraphKind kind);

// Writes the rendered text both to stdout and to
// <data_dir>/results/<name>.txt for EXPERIMENTS.md collection.
void emit(const BenchConfig& config, const std::string& name,
          const std::string& text);

// Writes runStatsToJson(stats, name) to <json_path>/BENCH_<name>.json
// (--json=DIR names an output directory; it is created if missing). CI
// uploads the BENCH_*.json files. No-op without --json.
void emitRunStatsJson(const BenchConfig& config, const std::string& name,
                      const RunStats& stats);

// Stops the tracer and writes the trace to --trace=PATH, then stops the
// telemetry sampler and writes the --timeline= / final --prom= artifacts
// (each part a no-op without its flag). Call once at the end of main.
void finishTrace(const BenchConfig& config);

}  // namespace tsg::bench
