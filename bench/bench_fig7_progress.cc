// Fig. 7a / 7c reproduction: algorithm progress per timestep per partition
// on 6 partitions.
//
//  7a — number of new vertices finalized by TDSP per timestep (CARN): the
//       traversal frontier moves over timesteps as a wave across partitions;
//       some partitions see their first finalized vertex only late in the
//       run and idle before that.
//  7c — number of new vertices colored by MEME per timestep (WIKI): the SIR
//       sources are spread randomly, so progress is far more uniform.
#include <sstream>

#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/table.h"
#include "generators/topology.h"
#include "metrics/report.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

// First timestep each partition records a nonzero counter value.
std::string firstActivity(const RunStats& stats, const std::string& counter) {
  const auto it = stats.counters().find(counter);
  if (it == stats.counters().end()) {
    return "(none)";
  }
  std::vector<std::string> firsts(stats.numPartitions(), "-");
  for (std::size_t t = 0; t < it->second.size(); ++t) {
    for (PartitionId p = 0; p < stats.numPartitions(); ++p) {
      if (firsts[p] == "-" && it->second[t][p] > 0) {
        firsts[p] = std::to_string(t);
      }
    }
  }
  std::string out = "first activity per partition:";
  for (PartitionId p = 0; p < firsts.size(); ++p) {
    out += " p" + std::to_string(p) + "=" + firsts[p];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  std::ostringstream out;
  out << "=== Fig. 7a/7c: algorithm progress per timestep per partition, 6 "
         "partitions (scale="
      << config.scale_percent << "%) ===\n";

  {
    const auto ds =
        openDataset(GraphKind::kCarn, WorkloadKind::kRoad, kPartitions,
                    config);
    auto provider = ds.makeProvider();
    const auto& pg = ds.partitionedGraph();
    TdspOptions options;
    options.source = 0;
    options.latency_attr =
        pg.graphTemplate().edgeSchema().requireIndex(kLatencyAttr);
    options.while_mode = false;
    const auto run = runTdsp(pg, *provider, options);
    out << renderCounterSeries(run.exec.stats, kTdspFinalizedCounter,
                               "7a: TDSP on CARN (new vertices finalized)")
        << firstActivity(run.exec.stats, kTdspFinalizedCounter) << "\n";
  }
  {
    const auto ds =
        openDataset(GraphKind::kWiki, WorkloadKind::kTweet, kPartitions,
                    config);
    auto provider = ds.makeProvider();
    const auto& pg = ds.partitionedGraph();
    MemeOptions options;
    options.tweets_attr =
        pg.graphTemplate().vertexSchema().requireIndex(kTweetsAttr);
    const auto run = runMemeTracking(pg, *provider, options);
    out << renderCounterSeries(run.exec.stats, kMemeColoredCounter,
                               "7c: MEME on WIKI (new vertices colored)")
        << firstActivity(run.exec.stats, kMemeColoredCounter) << "\n";
  }
  out << "expected shape: 7a frontier reaches some partitions only after "
         "many timesteps (wave); 7c progress is near-uniform across "
         "partitions\n\n";
  emit(config, "fig7_progress", out.str());
  return 0;
}
