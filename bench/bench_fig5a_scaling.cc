// Fig. 5a reproduction: total time for the three TI-BSP algorithms (HASH,
// MEME, TDSP) on both graphs for 3 / 6 / 9 partitions, over the full
// 50-instance series stored in GoFS.
//
// Paper shape (§IV-B): TDSP and MEME show strong scaling 3→6 (1.67–1.88×,
// close to the ideal 2×) and weaker gains 6→9; HASH scales worst because
// its per-timestep compute is tiny and communication/synchronization
// dominates; TDSP on WIKI is unexpectedly fast because While-mode converges
// in a handful of timesteps (vs ~47 on CARN).
//
// This host runs every "VM" on one core, so wall-clock cannot show
// parallel speedup; the scaling columns therefore report the MODELLED
// parallel time (critical path + 1GbE network model; DESIGN.md §1), with
// wall-clock shown for reference.
#include <map>
#include <sstream>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

struct RunResult {
  double wall_sec = 0;
  double modelled_sec = 0;
  Timestep timesteps = 0;
};

RunResult runAlgoOnce(const std::string& algo, GraphKind kind,
                      const GofsDataset& ds) {
  const auto& pg = ds.partitionedGraph();
  auto provider = ds.makeProvider();
  RunResult r;
  if (algo == "HASH") {
    HashtagOptions options;
    options.tag = "#meme";
    options.tweets_attr =
        pg.graphTemplate().vertexSchema().requireIndex(kTweetsAttr);
    const auto run = runHashtagAggregation(pg, *provider, options);
    r.wall_sec = nsToSec(run.exec.stats.wallClockNs());
    r.modelled_sec = nsToSec(run.exec.stats.modelledParallelNs());
    r.timesteps = run.exec.timesteps_executed;
  } else if (algo == "MEME") {
    MemeOptions options;
    options.meme = "#meme";
    options.tweets_attr =
        pg.graphTemplate().vertexSchema().requireIndex(kTweetsAttr);
    const auto run = runMemeTracking(pg, *provider, options);
    r.wall_sec = nsToSec(run.exec.stats.wallClockNs());
    r.modelled_sec = nsToSec(run.exec.stats.modelledParallelNs());
    r.timesteps = run.exec.timesteps_executed;
  } else {
    TdspOptions options;
    options.source = 0;
    options.latency_attr =
        pg.graphTemplate().edgeSchema().requireIndex(kLatencyAttr);
    options.while_mode = true;
    const auto run = runTdsp(pg, *provider, options);
    r.wall_sec = nsToSec(run.exec.stats.wallClockNs());
    r.modelled_sec = nsToSec(run.exec.stats.modelledParallelNs());
    r.timesteps = run.exec.timesteps_executed;
  }
  (void)kind;
  return r;
}

// Best of three repetitions: the modelled time is a per-superstep maximum,
// so one transient page-fault or scheduling spike inflates a whole run;
// the minimum is the reproducible figure.
RunResult runAlgo(const std::string& algo, GraphKind kind,
                  const GofsDataset& ds) {
  RunResult best = runAlgoOnce(algo, kind, ds);
  for (int rep = 1; rep < 3; ++rep) {
    const RunResult r = runAlgoOnce(algo, kind, ds);
    if (r.modelled_sec < best.modelled_sec) {
      best = r;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);

  TextTable table({"algo", "graph", "k=3 (s)", "k=6 (s)", "k=9 (s)",
                   "speedup 3→6", "speedup 3→9", "timesteps", "wall k=6 (s)"});
  std::ostringstream notes;

  for (const std::string algo : {"HASH", "MEME", "TDSP"}) {
    for (const auto kind : {GraphKind::kCarn, GraphKind::kWiki}) {
      const auto workload =
          algo == "TDSP" ? WorkloadKind::kRoad : WorkloadKind::kTweet;
      std::map<std::uint32_t, RunResult> results;
      for (const std::uint32_t k : {3u, 6u, 9u}) {
        const auto ds = openDataset(kind, workload, k, config);
        results[k] = runAlgo(algo, kind, ds);
      }
      table.addRow(
          {algo, kindName(kind),
           TextTable::fmtDouble(results[3].modelled_sec, 3),
           TextTable::fmtDouble(results[6].modelled_sec, 3),
           TextTable::fmtDouble(results[9].modelled_sec, 3),
           TextTable::fmtDouble(
               results[3].modelled_sec / results[6].modelled_sec, 2) + "x",
           TextTable::fmtDouble(
               results[3].modelled_sec / results[9].modelled_sec, 2) + "x",
           std::to_string(results[6].timesteps),
           TextTable::fmtDouble(results[6].wall_sec, 3)});
    }
  }

  std::ostringstream out;
  out << "=== Fig. 5a: total time, 3 algorithms x 2 graphs x 3/6/9 "
         "partitions (scale="
      << config.scale_percent << "%, timesteps=" << config.timesteps
      << ") ===\n"
      << table.render()
      << "paper shape: TDSP/MEME speedup 3->6 of 1.67-1.88x, weaker 6->9; "
         "HASH scales worst;\n"
      << "TDSP on WIKI converges in ~4 timesteps vs ~47 on CARN "
         "(While-mode).\n"
      << "columns k=3/6/9 are modelled parallel seconds (single-core host; "
         "see DESIGN.md)\n\n";
  emit(config, "fig5a_scaling", out.str());
  return 0;
}
