// Ablation: GoFS temporal packing density (the paper fixes it at 10 and
// observes load bumps at pack boundaries, §IV-A/§IV-D).
//
// Sweep packing ∈ {1, 5, 10, 25}: small packs touch disk every timestep
// (many small loads); big packs amortize I/O but front-load latency and
// memory. Expected: the number of load EVENTS drops ~1/packing (300 → 12),
// which is the paper's motivation ("minimize frequent disk access"); total
// decode time stays roughly flat since the same bytes are decoded either
// way, so on spinning disks / network filesystems — where per-event latency
// dominates — larger packs win, with diminishing returns past ~10.
#include <sstream>

#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"
#include "partition/partitioner.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  // Build the shared pieces once.
  auto tmpl = makeTemplate(GraphKind::kCarn, WorkloadKind::kRoad, config);
  const BfsPartitioner partitioner(config.seed + 3);
  const auto assignment = partitioner.assign(*tmpl, kPartitions);
  auto pg_result = PartitionedGraph::build(tmpl, assignment, kPartitions);
  TSG_CHECK(pg_result.isOk());
  const auto pg = std::move(pg_result).value();
  const auto collection =
      makeCollection(tmpl, WorkloadKind::kRoad, GraphKind::kCarn, config);

  TextTable table({"packing", "slice files", "dataset MB", "total load (s)",
                   "load events", "run wall (s)"});
  for (const std::uint32_t packing : {1u, 5u, 10u, 25u}) {
    const std::string dir = config.data_dir + "/ablation_packing_" +
                            std::to_string(packing);
    GofsOptions gofs;
    gofs.temporal_packing = packing;
    gofs.subgraph_binning = 5;
    const Status status =
        writeGofsDataset(dir, "ablate", pg, collection, gofs);
    TSG_CHECK_MSG(status.isOk(), status.toString());
    auto ds_result = GofsDataset::open(dir);
    TSG_CHECK(ds_result.isOk());
    const auto ds = std::move(ds_result).value();
    auto storage = ds.storageStats();
    TSG_CHECK(storage.isOk());

    auto provider = ds.makeProvider();
    TdspOptions options;
    options.source = 0;
    options.latency_attr =
        pg.graphTemplate().edgeSchema().requireIndex(kLatencyAttr);
    options.while_mode = false;
    const auto run = runTdsp(ds.partitionedGraph(), *provider, options);

    std::int64_t load_ns = 0;
    std::uint64_t load_events = 0;
    for (const auto& rec : run.exec.stats.supersteps()) {
      for (const auto& part : rec.parts) {
        load_ns += part.load_ns;
        load_events += part.load_ns > 0 ? 1 : 0;
      }
    }
    table.addRow({std::to_string(packing),
                  std::to_string(storage.value().slice_files),
                  TextTable::fmtDouble(
                      static_cast<double>(storage.value().slice_bytes) / 1e6,
                      1),
                  TextTable::fmtDouble(nsToSec(load_ns), 3),
                  std::to_string(load_events),
                  TextTable::fmtDouble(nsToSec(run.exec.stats.wallClockNs()),
                                       3)});
  }

  std::ostringstream out;
  out << "=== Ablation: temporal packing density (TDSP on CARN, 6 "
         "partitions, scale="
      << config.scale_percent << "%) ===\n"
      << table.render()
      << "expected shape: load events scale ~1/packing (the paper's "
         "motivation); decode time stays ~flat on a warm page cache\n\n";
  emit(config, "ablation_packing", out.str());
  return 0;
}
