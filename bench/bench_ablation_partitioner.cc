// Ablation: partitioner choice (the paper uses METIS; DESIGN.md §1 maps it
// to our BFS region-grower). Sweeps {bfs, ldg, hash} × {CARN, WIKI} at 6
// partitions and runs TDSP/MEME on each placement.
//
// Expected: edge-cut ordering bfs < ldg << hash on CARN; on WIKI all cuts
// are high (small-world). Higher cut → more cross-partition messages →
// larger modelled time, demonstrating why partitioning quality matters for
// subgraph-centric execution (more, smaller subgraphs + more remote edges).
#include <memory>
#include <sstream>

#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "generators/topology.h"
#include "partition/partitioner.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  TextTable table({"graph", "partitioner", "cut %", "subgraphs",
                   "algo", "modelled (s)", "x-part msgs"});

  for (const auto kind : {GraphKind::kCarn, GraphKind::kWiki}) {
    const auto workload = kind == GraphKind::kCarn ? WorkloadKind::kRoad
                                                   : WorkloadKind::kTweet;
    auto tmpl = makeTemplate(kind, workload, config);
    const auto collection = makeCollection(tmpl, workload, kind, config);

    const BfsPartitioner bfs(config.seed);
    const LdgPartitioner ldg(config.seed);
    const HashPartitioner hash;
    const Partitioner* partitioners[] = {&bfs, &ldg, &hash};
    for (const Partitioner* partitioner : partitioners) {
      const auto assignment = partitioner->assign(*tmpl, kPartitions);
      const auto metrics =
          evaluatePartition(*tmpl, assignment, kPartitions);
      auto pg_result =
          PartitionedGraph::build(tmpl, assignment, kPartitions);
      TSG_CHECK(pg_result.isOk());
      const auto pg = std::move(pg_result).value();
      DirectInstanceProvider provider(pg, collection);

      std::string algo;
      RunStats stats;
      if (kind == GraphKind::kCarn) {
        algo = "TDSP";
        TdspOptions options;
        options.source = 0;
        options.latency_attr =
            tmpl->edgeSchema().requireIndex(kLatencyAttr);
        options.while_mode = true;
        stats = runTdsp(pg, provider, options).exec.stats;
      } else {
        algo = "MEME";
        MemeOptions options;
        options.tweets_attr =
            tmpl->vertexSchema().requireIndex(kTweetsAttr);
        stats = runMemeTracking(pg, provider, options).exec.stats;
      }
      std::uint64_t cross_msgs = 0;
      for (const auto& rec : stats.supersteps()) {
        cross_msgs += rec.cross_partition_messages;
      }
      table.addRow({kindName(kind), partitioner->name(),
                    TextTable::fmtPercent(metrics.cut_fraction, 2),
                    std::to_string(pg.numSubgraphs()), algo,
                    TextTable::fmtDouble(nsToSec(stats.modelledParallelNs()),
                                         3),
                    std::to_string(cross_msgs)});
    }
  }

  std::ostringstream out;
  out << "=== Ablation: partitioner choice (6 partitions, scale="
      << config.scale_percent << "%) ===\n"
      << table.render()
      << "expected shape: bfs cuts least on CARN; hash cuts most and "
         "shatters the graph into many subgraphs, inflating messages and "
         "modelled time\n\n";
  emit(config, "ablation_partitioner", out.str());
  return 0;
}
