// Micro-benchmarks (google-benchmark) for the substrate hot paths:
// serialization, attribute gather/scatter, message bus delivery, RNG,
// partitioning and subgraph decomposition throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/instance_provider.h"
#include "partition/partitioned_graph.h"
#include "partition/partitioner.h"
#include "runtime/message_bus.h"

namespace {

using namespace tsg;

GraphTemplatePtr benchRoad(std::uint32_t side) {
  RoadNetworkOptions options;
  options.width = side;
  options.height = side;
  options.seed = 1;
  auto result =
      makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema());
  TSG_CHECK(result.isOk());
  return std::make_shared<GraphTemplate>(std::move(result).value());
}

void BM_VarintRoundtrip(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) {
    v = rng.next() >> (rng.next() % 56);
  }
  for (auto _ : state) {
    BinaryWriter w(10 * values.size());
    for (const auto v : values) {
      w.writeVarint(v);
    }
    BinaryReader r(w.buffer());
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      benchmark::DoNotOptimize(r.readVarint(out));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintRoundtrip);

void BM_DoubleColumnSerialize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto col = AttributeColumn::make(AttrType::kDouble, n);
  Rng rng(2);
  for (auto& v : col.asDouble()) {
    v = rng.uniformDouble();
  }
  for (auto _ : state) {
    BinaryWriter w(n * 8 + 16);
    col.serialize(w);
    BinaryReader r(w.buffer());
    auto parsed = AttributeColumn::deserialize(r);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * 8));
}
BENCHMARK(BM_DoubleColumnSerialize)->Arg(1024)->Arg(65536);

void BM_GatherScatter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto col = AttributeColumn::make(AttrType::kDouble, n);
  std::vector<std::uint32_t> indices;
  indices.reserve(n / 2);
  for (std::uint32_t i = 0; i < n; i += 2) {
    indices.push_back(i);
  }
  for (auto _ : state) {
    auto gathered = col.gather(indices);
    col.scatterFrom(gathered, indices);
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(indices.size()));
}
BENCHMARK(BM_GatherScatter)->Arg(65536);

// Measures the coordinator's between-superstep deliver() — the serial
// barrier cost. Inbox draining and sending happen in the paused region, as
// in the engine, where partition workers do both on their own threads.
void runMessageBusDelivery(benchmark::State& state, std::uint32_t k,
                           std::size_t payload_size) {
  MessageBus bus(k);
  for (auto _ : state) {
    state.PauseTiming();
    for (PartitionId p = 0; p < k; ++p) {
      bus.inbox(p).clear();
    }
    for (PartitionId from = 0; from < k; ++from) {
      for (int i = 0; i < 100; ++i) {
        Message msg;
        msg.src = from;
        msg.dst = (from + i) % k;
        msg.payload.assign(payload_size, 7);
        bus.send(from, msg.dst % k, std::move(msg));
      }
    }
    state.ResumeTiming();
    const auto stats = bus.deliver();
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * 100 * k);
}

void BM_MessageBusDelivery(benchmark::State& state) {
  runMessageBusDelivery(state, static_cast<std::uint32_t>(state.range(0)), 64);
}
BENCHMARK(BM_MessageBusDelivery)->Arg(3)->Arg(9);

// Sweep: partition count × payload size (0 = empty, 16 = inline SBO,
// 64/1024 = refcounted heap block).
void BM_MessageBusDeliverySweep(benchmark::State& state) {
  runMessageBusDelivery(state, static_cast<std::uint32_t>(state.range(0)),
                        static_cast<std::size_t>(state.range(1)));
}
BENCHMARK(BM_MessageBusDeliverySweep)
    ->ArgNames({"parts", "payload"})
    ->Args({3, 0})
    ->Args({3, 16})
    ->Args({3, 64})
    ->Args({3, 1024})
    ->Args({9, 0})
    ->Args({9, 16})
    ->Args({9, 64})
    ->Args({9, 1024})
    ->Args({27, 64});

void BM_Xoshiro(benchmark::State& state) {
  Rng rng(3);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= rng.next();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_BfsPartition(benchmark::State& state) {
  const auto tmpl = benchRoad(60);
  const BfsPartitioner partitioner(7);
  for (auto _ : state) {
    auto assignment =
        partitioner.assign(*tmpl, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tmpl->numVertices()));
}
BENCHMARK(BM_BfsPartition)->Arg(3)->Arg(9);

void BM_SubgraphDecomposition(benchmark::State& state) {
  auto tmpl = benchRoad(60);
  const BfsPartitioner partitioner(7);
  const auto assignment = partitioner.assign(*tmpl, 6);
  for (auto _ : state) {
    auto pg = PartitionedGraph::build(tmpl, assignment, 6);
    benchmark::DoNotOptimize(pg);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tmpl->numVertices()));
}
BENCHMARK(BM_SubgraphDecomposition);

void BM_SirGeneration(benchmark::State& state) {
  PreferentialAttachmentOptions topo;
  topo.num_vertices = 5000;
  topo.seed = 4;
  auto result =
      makePreferentialAttachment(topo, tweetVertexSchema(), AttributeSchema{});
  TSG_CHECK(result.isOk());
  auto tmpl = std::make_shared<GraphTemplate>(std::move(result).value());
  SirTweetOptions options;
  options.num_timesteps = 10;
  options.hit_probability = 0.1;
  for (auto _ : state) {
    auto coll = makeSirTweetInstances(tmpl, options);
    benchmark::DoNotOptimize(coll);
  }
  state.SetItemsProcessed(state.iterations() * 10 * 5000);
}
BENCHMARK(BM_SirGeneration);

void BM_PartitionGather(benchmark::State& state) {
  auto tmpl = benchRoad(40);
  const BfsPartitioner partitioner(7);
  auto pg_result =
      PartitionedGraph::build(tmpl, partitioner.assign(*tmpl, 4), 4);
  TSG_CHECK(pg_result.isOk());
  const auto pg = std::move(pg_result).value();
  RoadInstanceOptions rio;
  rio.num_timesteps = 1;
  auto coll = makeRoadInstances(tmpl, rio);
  TSG_CHECK(coll.isOk());
  for (auto _ : state) {
    for (PartitionId p = 0; p < 4; ++p) {
      auto data = gatherPartitionInstance(pg, p, coll.value().instance(0));
      benchmark::DoNotOptimize(data);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tmpl->numEdges()));
}
BENCHMARK(BM_PartitionGather);

}  // namespace

BENCHMARK_MAIN();
