// Ablation: subgraph rebalancing (the paper's §IV-E proposal).
//
// TDSP's frontier wave leaves late-reached partitions idle (Fig. 7a/7b).
// This bench runs TDSP on CARN at 6 partitions, feeds the observed
// utilization into planRebalance(), applies the plan and reruns, reporting
// imbalance, edge cut, and modelled time before vs after — the
// "improvement vs rebalancing cost" tradeoff the paper describes.
#include <sstream>

#include "algorithms/tdsp.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/rebalance.h"
#include "generators/topology.h"
#include "partition/partitioner.h"

namespace {

using namespace tsg;
using namespace tsg::bench;

struct Observed {
  double modelled_sec = 0;
  double imbalance = 0;
  double min_compute_share = 1.0;
};

Observed observe(const PartitionedGraph& pg,
                 const TimeSeriesCollection& collection,
                 std::size_t latency_attr, RunStats* stats_out) {
  DirectInstanceProvider provider(pg, collection);
  TdspOptions options;
  options.source = 0;
  options.latency_attr = latency_attr;
  options.while_mode = true;
  const auto run = runTdsp(pg, provider, options);

  Observed obs;
  obs.modelled_sec = nsToSec(run.exec.stats.modelledParallelNs());
  const auto util = run.exec.stats.partitionUtilization();
  double max_compute = 0;
  double total_compute = 0;
  for (const auto& u : util) {
    const auto compute = static_cast<double>(u.compute_ns);
    max_compute = std::max(max_compute, compute);
    total_compute += compute;
    obs.min_compute_share = std::min(obs.min_compute_share,
                                     u.computeFraction());
  }
  obs.imbalance = total_compute == 0
                      ? 1.0
                      : max_compute * static_cast<double>(util.size()) /
                            total_compute;
  if (stats_out != nullptr) {
    *stats_out = run.exec.stats;
  }
  return obs;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parseArgs(argc, argv);
  constexpr std::uint32_t kPartitions = 6;

  auto tmpl = makeTemplate(GraphKind::kCarn, WorkloadKind::kRoad, config);
  const auto collection =
      makeCollection(tmpl, WorkloadKind::kRoad, GraphKind::kCarn, config);
  const std::size_t latency_attr =
      tmpl->edgeSchema().requireIndex(kLatencyAttr);

  // Placement that exhibits §IV-E's situation: contiguous BFS regions (so
  // the TDSP wave reaches some partitions late -> skewed load) with MORE
  // regions than partitions, folded 2:1 (so every partition owns at least
  // two subgraphs and has a movable tail). A plain BFS placement would give
  // one monolithic subgraph per partition with nothing to move — exactly
  // the paper's observation that "the large subgraphs could be broken up".
  // Interleaved fold (r mod k): paired regions are spatially far apart
  // (farthest-point seeding), so they stay separate subgraphs.
  const BfsPartitioner region_grower(config.seed + 7);
  auto assignment = region_grower.assign(*tmpl, kPartitions * 8);
  for (auto& p : assignment) {
    p %= kPartitions;
  }
  auto pg_result = PartitionedGraph::build(tmpl, assignment, kPartitions);
  TSG_CHECK(pg_result.isOk());
  const auto pg = std::move(pg_result).value();

  RunStats observed_stats(kPartitions);
  const auto before = observe(pg, collection, latency_attr, &observed_stats);

  auto plan_result = planRebalance(pg, observed_stats);
  TSG_CHECK(plan_result.isOk());
  const auto& plan = plan_result.value();

  auto pg_after_result =
      PartitionedGraph::build(tmpl, plan.new_assignment, kPartitions);
  TSG_CHECK(pg_after_result.isOk());
  const auto after =
      observe(pg_after_result.value(), collection, latency_attr, nullptr);

  TextTable table({"placement", "modelled (s)", "compute imbalance",
                   "min compute share", "edge cut %"});
  table.addRow({"original", TextTable::fmtDouble(before.modelled_sec, 3),
                TextTable::fmtDouble(before.imbalance, 2),
                TextTable::fmtPercent(before.min_compute_share, 1),
                TextTable::fmtPercent(plan.cut_fraction_before, 2)});
  table.addRow({"rebalanced", TextTable::fmtDouble(after.modelled_sec, 3),
                TextTable::fmtDouble(after.imbalance, 2),
                TextTable::fmtPercent(after.min_compute_share, 1),
                TextTable::fmtPercent(plan.cut_fraction_after, 2)});

  std::ostringstream out;
  out << "=== Ablation: subgraph rebalancing (paper §IV-E), TDSP on CARN, "
         "folded-region placement, 6 partitions (scale="
      << config.scale_percent << "%) ===\n"
      << table.render() << "plan: " << plan.moves.size()
      << " subgraph moves; predicted imbalance "
      << TextTable::fmtDouble(plan.imbalance_before, 2) << " -> "
      << TextTable::fmtDouble(plan.imbalance_after, 2) << "\n"
      << "expected shape: compute imbalance drops and the most idle "
         "partition's compute share rises after rebalancing, at a small "
         "edge-cut cost; algorithm results remain identical (verified by "
         "tests). Modelled-time deltas at bench scale are within run noise "
         "— the paper's point is utilization, not wall-clock.\n\n";
  emit(config, "ablation_rebalance", out.str());
  return 0;
}
