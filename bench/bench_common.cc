#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/log.h"
#include "common/status.h"
#include "common/table.h"
#include "common/trace.h"
#include "metrics/report.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "partition/partitioner.h"
#include "telemetry/run_telemetry.h"

namespace tsg::bench {
namespace {

// Armed by parseArgs when a telemetry flag is present; finishTrace stops it
// and writes the artifacts.
std::unique_ptr<RunTelemetry> g_telemetry;

template <typename T>
T unwrapOrDie(Result<T> result, const char* what) {
  if (!result.isOk()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what,
                 result.status().toString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

std::uint32_t scaled(std::uint32_t base, int percent) {
  const auto v = static_cast<std::uint64_t>(base) * percent / 100;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(v, 16));
}

}  // namespace

BenchConfig parseArgs(int argc, char** argv) {
  BenchConfig config;
  std::string log_level_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      config.scale_percent = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--timesteps=", 0) == 0) {
      config.timesteps = static_cast<std::uint32_t>(
          std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--trace=", 0) == 0) {
      config.trace_path = arg.substr(8);
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else if (arg.rfind("--sample-ms=", 0) == 0) {
      config.sample_ms = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--timeline=", 0) == 0) {
      config.timeline_path = arg.substr(11);
    } else if (arg.rfind("--prom=", 0) == 0) {
      config.prom_path = arg.substr(7);
    } else if (arg.rfind("--prom-port=", 0) == 0) {
      config.prom_port = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      log_level_flag = arg.substr(12);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // Tolerated so `for b in build/bench/*` can pass google-benchmark
      // flags to every binary without breaking the table benches.
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=percent] [--timesteps=N] [--seed=S]"
                   " [--trace=PATH] [--json=DIR] [--sample-ms=N]"
                   " [--timeline=PATH] [--prom=PATH] [--prom-port=N]"
                   " [--log-level=debug|info|warn|error]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (config.scale_percent <= 0) {
    config.scale_percent = 100;
  }
  if (config.timesteps == 0) {
    config.timesteps = 50;
  }
  const char* env = std::getenv("TSG_BENCH_DATA");
  config.data_dir = env != nullptr ? env : "build/bench_data";
  std::error_code ec;
  std::filesystem::create_directories(config.data_dir, ec);
  LogLevel level = initLogLevelFromEnv();
  // --log-level= wins over TSG_LOG_LEVEL.
  if (!log_level_flag.empty()) {
    if (parseLogLevel(log_level_flag, level)) {
      setLogLevel(level);
    } else {
      std::fprintf(stderr, "bench: invalid --log-level=%s\n",
                   log_level_flag.c_str());
      std::exit(2);
    }
  }
  TSG_LOG(Info) << "log level: " << logLevelName(level);
  if (!config.trace_path.empty()) {
    Tracer::instance().start();
  }
  RunTelemetryOptions telemetry;
  telemetry.sample_ms = config.sample_ms;
  telemetry.timeline_path = config.timeline_path;
  telemetry.prom_path = config.prom_path;
  telemetry.prom_port = config.prom_port;
  telemetry.label = argv[0] != nullptr ? argv[0] : "bench";
  if (telemetry.armed()) {
    g_telemetry = std::make_unique<RunTelemetry>(std::move(telemetry));
    const Status status = g_telemetry->start();
    if (!status.isOk()) {
      std::fprintf(stderr, "bench: %s\n", status.toString().c_str());
      std::exit(1);
    }
  }
  return config;
}

std::string kindName(GraphKind kind) {
  return kind == GraphKind::kCarn ? "CARN" : "WIKI";
}

double memeHitProbability(GraphKind kind) {
  // Paper: 30% on CARN, 2% on WIKI; at our scale 2% dies out on the
  // smaller hub structure, so WIKI uses 5% (same tuning methodology, §IV-A).
  return kind == GraphKind::kCarn ? 0.30 : 0.05;
}

GraphTemplatePtr makeTemplate(GraphKind kind, WorkloadKind workload,
                              const BenchConfig& config) {
  AttributeSchema vertex_schema;
  AttributeSchema edge_schema;
  if (workload == WorkloadKind::kRoad) {
    edge_schema = roadEdgeSchema();
  } else {
    vertex_schema = tweetVertexSchema();
  }
  if (kind == GraphKind::kCarn) {
    RoadNetworkOptions options;
    options.width = scaled(150, config.scale_percent);
    options.height = scaled(150, config.scale_percent);
    options.seed = config.seed;
    return std::make_shared<GraphTemplate>(unwrapOrDie(
        makeRoadNetwork(options, std::move(vertex_schema),
                        std::move(edge_schema)),
        "makeRoadNetwork"));
  }
  PreferentialAttachmentOptions options;
  options.num_vertices =
      scaled(150, config.scale_percent) * scaled(150, config.scale_percent) *
          9 / 10;
  options.edges_per_vertex = 2;
  options.seed = config.seed;
  return std::make_shared<GraphTemplate>(unwrapOrDie(
      makePreferentialAttachment(options, std::move(vertex_schema),
                                 std::move(edge_schema)),
      "makePreferentialAttachment"));
}

TimeSeriesCollection makeCollection(GraphTemplatePtr tmpl,
                                    WorkloadKind workload, GraphKind kind,
                                    const BenchConfig& config) {
  if (workload == WorkloadKind::kRoad) {
    RoadInstanceOptions options;
    options.num_timesteps = config.timesteps;
    options.seed = config.seed + 1;
    options.delta = 5;
    // Latency scale relative to δ controls how many hops the TDSP frontier
    // advances per timestep. The paper's CARN run covers the whole graph in
    // ~47 of 50 timesteps; with δ=5 and mean latency ~0.26 the frontier
    // moves ~10 hops/timestep, which sweeps our lattice on the paper's ~47-of-50
    // schedule.
    options.min_latency = 0.04;
    options.max_latency = 0.9;
    return unwrapOrDie(makeRoadInstances(std::move(tmpl), options),
                       "makeRoadInstances");
  }
  SirTweetOptions options;
  options.num_timesteps = config.timesteps;
  options.seed = config.seed + 2;
  options.hit_probability = memeHitProbability(kind);
  options.num_seed_vertices = 8;
  options.infectious_timesteps = 3;
  options.background_probability = 0.005;
  return unwrapOrDie(makeSirTweetInstances(std::move(tmpl), options),
                     "makeSirTweetInstances");
}

GofsDataset openDataset(GraphKind kind, WorkloadKind workload, std::uint32_t k,
                        const BenchConfig& config) {
  const std::string dir =
      config.data_dir + "/v3_" + kindName(kind) +
      (workload == WorkloadKind::kRoad ? "_road" : "_tweet") + "_k" +
      std::to_string(k) + "_s" + std::to_string(config.scale_percent) + "_t" +
      std::to_string(config.timesteps);
  {
    auto existing = GofsDataset::open(dir);
    if (existing.isOk()) {
      return std::move(existing).value();
    }
  }
  TSG_LOG(Info) << "building dataset " << dir;
  auto tmpl = makeTemplate(kind, workload, config);
  const BfsPartitioner partitioner(config.seed + 3);
  const auto assignment = partitioner.assign(*tmpl, k);
  auto pg = unwrapOrDie(PartitionedGraph::build(tmpl, assignment, k),
                        "PartitionedGraph::build");
  const auto collection = makeCollection(tmpl, workload, kind, config);
  GofsOptions gofs;  // the paper's packing of 10 and binning of 5
  const Status status = writeGofsDataset(dir, kindName(kind), pg, collection,
                                         gofs);
  if (!status.isOk()) {
    std::fprintf(stderr, "bench: writeGofsDataset failed: %s\n",
                 status.toString().c_str());
    std::exit(1);
  }
  return unwrapOrDie(GofsDataset::open(dir), "GofsDataset::open");
}

void emit(const BenchConfig& config, const std::string& name,
          const std::string& text) {
  std::cout << text << std::flush;
  writeTextFile(config.data_dir + "/results/" + name + ".txt", text);
}

void emitRunStatsJson(const BenchConfig& config, const std::string& name,
                      const RunStats& stats) {
  if (config.json_path.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(config.json_path, ec);
  const std::string path = config.json_path + "/BENCH_" + name + ".json";
  if (writeTextFile(path, runStatsToJson(stats, name))) {
    std::printf("wrote run stats: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
  }
}

void finishTrace(const BenchConfig& config) {
  if (!config.trace_path.empty()) {
    Tracer::instance().stop();
    const Status status = Tracer::instance().writeJson(config.trace_path);
    if (status.isOk()) {
      std::printf("wrote trace: %s (%zu events)\n", config.trace_path.c_str(),
                  Tracer::instance().eventCount());
    } else {
      std::fprintf(stderr, "bench: %s\n", status.toString().c_str());
    }
  }
  if (g_telemetry != nullptr) {
    const Status status = g_telemetry->finish();
    if (!status.isOk()) {
      std::fprintf(stderr, "bench: %s\n", status.toString().c_str());
    } else if (!config.timeline_path.empty()) {
      std::printf("wrote timeline: %s\n", config.timeline_path.c_str());
    }
    g_telemetry.reset();
  }
}

}  // namespace tsg::bench
