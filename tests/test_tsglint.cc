// Tests for the tsglint analyzer library (src/analysis/): tokenizer
// corner cases, annotation parsing (tsg:hot, tsg:mo, NOLINT), and one
// known-bad fixture per rule under tests/lint_fixtures/, each of which
// must trip exactly its own rule.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/lexer.h"

namespace tsg {
namespace lint {
namespace {

std::string readFixture(const std::string& name) {
  const std::string path =
      std::string(TSG_REPO_ROOT) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> tokenTexts(const LexResult& r) {
  std::vector<std::string> out;
  out.reserve(r.tokens.size());
  for (const Token& t : r.tokens) {
    out.push_back(t.text);
  }
  return out;
}

std::set<std::string> rulesIn(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rules;
  for (const Diagnostic& d : diags) {
    rules.insert(d.rule);
  }
  return rules;
}

// Runs every per-file pass over one fixture lent the given path.
std::vector<Diagnostic> runFilePasses(const std::string& path,
                                      const std::string& content) {
  const SourceFile f = buildSourceFile(path, lex(content));
  std::vector<Diagnostic> out;
  checkTraceLiteral(f, out);
  checkNakedThread(f, out);
  checkUnseededRng(f, out);
  checkMetricName(f, out);
  checkHotPath(f, out);
  checkAtomics(f, out);
  return out;
}

// ---------------------------------------------------------------- lexer ---

TEST(Lexer, RawStringSwallowsCommentAndQuoteLookalikes) {
  const LexResult r = lex(R"SRC(auto s = R"x(// not a comment " )" )x";)SRC");
  ASSERT_TRUE(r.comments.empty());
  const auto texts = tokenTexts(r);
  ASSERT_EQ(texts.size(), 5u);  // auto s = <string> ;
  EXPECT_EQ(r.tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(texts[3], "R\"x(// not a comment \" )\" )x\"");
}

TEST(Lexer, LineSpliceJoinsTokensButKeepsPhysicalLines) {
  const LexResult r = lex("int ab\\\ncd = 1;\nint next;");
  const auto texts = tokenTexts(r);
  ASSERT_GE(texts.size(), 4u);
  EXPECT_EQ(texts[1], "abcd");  // spliced identifier
  // The token after the splice lands on physical line 2.
  EXPECT_EQ(r.tokens[2].text, "=");
  EXPECT_EQ(r.tokens[2].line, 2);
  // `next` is on physical line 3.
  EXPECT_EQ(r.tokens[6].text, "next");
  EXPECT_EQ(r.tokens[6].line, 3);
}

TEST(Lexer, SplicedLineCommentConsumesBothLines) {
  const LexResult r = lex("// comment continues \\\nint x = 1;\nint y;");
  ASSERT_EQ(r.comments.size(), 1u);
  // Everything on the spliced line belongs to the comment...
  EXPECT_NE(r.comments[0].text.find("int x"), std::string::npos);
  // ...so the only tokens are `int y ;` from line 3.
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[1].text, "y");
}

TEST(Lexer, BlockCommentsDoNotNest) {
  const LexResult r = lex("/* outer /* inner */ int x;");
  ASSERT_EQ(r.comments.size(), 1u);
  EXPECT_EQ(r.comments[0].text, "/* outer /* inner */");
  const auto texts = tokenTexts(r);
  ASSERT_EQ(texts.size(), 3u);
  EXPECT_EQ(texts[0], "int");
}

TEST(Lexer, CharLiteralsDoNotOpenStrings) {
  const LexResult r = lex("char q = '\"'; char e = '\\''; int z;");
  ASSERT_EQ(r.tokens.size(), 13u);
  EXPECT_EQ(r.tokens[3].kind, TokenKind::kChar);
  EXPECT_EQ(r.tokens[8].kind, TokenKind::kChar);
  EXPECT_EQ(r.tokens[11].text, "z");
}

TEST(Lexer, LiteralPrefixesFuseIntoOneToken) {
  const LexResult r = lex("auto a = u8\"x\"; auto b = L'c';");
  EXPECT_EQ(r.tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(r.tokens[3].text, "u8\"x\"");
  EXPECT_EQ(r.tokens[8].kind, TokenKind::kChar);
  EXPECT_EQ(r.tokens[8].text, "L'c'");
}

TEST(Lexer, PpNumbersAndFusedPunctuators) {
  const LexResult r = lex("x = 1'000'000 + 1.5e-3; p->f(); a::b;");
  const auto texts = tokenTexts(r);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "1'000'000"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "1.5e-3"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
}

TEST(Lexer, StringContentsCannotSpoofRules) {
  const LexResult r = lex("const char* s = \"std::thread in a string\";");
  for (const Token& t : r.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "thread");
    }
  }
}

// ----------------------------------------------------------- annotations ---

TEST(SourceFile, HotRegionAttachesToNextBlock) {
  const SourceFile f = buildSourceFile("src/x/a.cc", lex(R"(
// tsg:hot
void hot() { int a = 0; }
void cold() { int b = 0; }
)"));
  ASSERT_EQ(f.hot_regions.size(), 1u);
  bool saw_a = false;
  for (std::size_t i = 0; i < f.lex.tokens.size(); ++i) {
    if (f.lex.tokens[i].text == "a") {
      saw_a = true;
      EXPECT_TRUE(f.isHot(i));
    }
    if (f.lex.tokens[i].text == "b") {
      EXPECT_FALSE(f.isHot(i));
    }
  }
  EXPECT_TRUE(saw_a);
}

TEST(SourceFile, TrailingHotMarkerAttachesToSameLineBlock) {
  const SourceFile f = buildSourceFile("src/x/a.cc", lex(R"(
void f() {
  for (int i = 0; i < 3; ++i) {  // tsg:hot
    step(i);
  }
  other();
}
)"));
  ASSERT_EQ(f.hot_regions.size(), 1u);
  for (std::size_t i = 0; i < f.lex.tokens.size(); ++i) {
    if (f.lex.tokens[i].text == "step") {
      EXPECT_TRUE(f.isHot(i));
    }
    if (f.lex.tokens[i].text == "other") {
      EXPECT_FALSE(f.isHot(i));
    }
  }
}

TEST(SourceFile, NolintSuppressionsParse) {
  const SourceFile f = buildSourceFile(
      "src/x/a.cc",
      lex("int x;  // NOLINT(tsg-naked-thread, tsg-metric-name)\n"));
  ASSERT_EQ(f.suppressions.size(), 1u);
  const auto& [line, rules] = *f.suppressions.begin();
  EXPECT_EQ(line, 1);
  EXPECT_TRUE(rules.count("naked-thread"));
  EXPECT_TRUE(rules.count("metric-name"));
}

TEST(Rules, NolintSuppressesOnTheDiagnosedLine) {
  const std::string src =
      "#include <thread>\n"
      "void f() {\n"
      "  std::thread t([] {});  // NOLINT(tsg-naked-thread)\n"
      "  t.join();\n"
      "}\n";
  // The per-file pass reports; Analyzer-level filtering removes it. Emulate
  // the filter here the way Analyzer::run does.
  const SourceFile f = buildSourceFile("src/x/a.cc", lex(src));
  std::vector<Diagnostic> out;
  checkNakedThread(f, out);
  ASSERT_EQ(out.size(), 1u);
  const auto it = f.suppressions.find(out[0].line);
  ASSERT_NE(it, f.suppressions.end());
  EXPECT_TRUE(it->second.count(out[0].rule));
}

TEST(Rules, MultiLineMoTagCoversTheFollowingStatement) {
  const std::string src =
      "#include <atomic>\n"
      "std::atomic<int> g{0};\n"
      "int f() {\n"
      "  // tsg:mo(gate flag; stale reads only delay one sample and the\n"
      "  // installer's release store publishes the table first)\n"
      "  return g.load(std::memory_order_relaxed);\n"
      "}\n";
  const std::vector<Diagnostic> out = runFilePasses("src/x/a.cc", src);
  EXPECT_TRUE(out.empty()) << out[0].message;
}

// ------------------------------------------------------------- fixtures ---

TEST(Fixtures, TraceLiteralTripsExactlyItsRule) {
  const auto out =
      runFilePasses("src/fixture/trace_literal.cc", readFixture("trace_literal.cc"));
  EXPECT_EQ(rulesIn(out), std::set<std::string>{"trace-literal"});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Fixtures, NakedThreadTripsExactlyItsRule) {
  const auto out =
      runFilePasses("src/fixture/naked_thread.cc", readFixture("naked_thread.cc"));
  EXPECT_EQ(rulesIn(out), std::set<std::string>{"naked-thread"});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Fixtures, UnseededRngTripsExactlyItsRule) {
  const auto out =
      runFilePasses("src/fixture/unseeded_rng.cc", readFixture("unseeded_rng.cc"));
  EXPECT_EQ(rulesIn(out), std::set<std::string>{"unseeded-rng"});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Fixtures, MetricNameTripsExactlyItsRule) {
  const auto out =
      runFilePasses("src/fixture/metric_name.cc", readFixture("metric_name.cc"));
  EXPECT_EQ(rulesIn(out), std::set<std::string>{"metric-name"});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Fixtures, HotPathTripsExactlyItsRule) {
  const auto out =
      runFilePasses("src/fixture/hot_path.cc", readFixture("hot_path.cc"));
  EXPECT_EQ(rulesIn(out), std::set<std::string>{"hot-path"});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Fixtures, AtomicsTripsExactlyItsRule) {
  const auto out =
      runFilePasses("src/fixture/atomics.cc", readFixture("atomics.cc"));
  EXPECT_EQ(rulesIn(out), std::set<std::string>{"atomics"});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Fixtures, LayeringBackEdgeIsFlagged) {
  std::vector<SourceFile> files;
  files.push_back(buildSourceFile("src/common/layering.cc",
                                  lex(readFixture("layering.cc"))));
  // Per-file passes stay silent on this fixture.
  std::vector<Diagnostic> file_out;
  checkTraceLiteral(files[0], file_out);
  checkNakedThread(files[0], file_out);
  checkUnseededRng(files[0], file_out);
  checkMetricName(files[0], file_out);
  checkHotPath(files[0], file_out);
  checkAtomics(files[0], file_out);
  EXPECT_TRUE(file_out.empty());

  std::vector<Diagnostic> out;
  checkLayering(files, "common:\nruntime: common\n", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "layering");
  EXPECT_EQ(out[0].file, "src/common/layering.cc");
}

TEST(Fixtures, DeclaredLayerCycleIsFlagged) {
  std::vector<SourceFile> files;
  std::vector<Diagnostic> out;
  checkLayering(files, "a: b\nb: a\n", out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].rule, "layering");
  EXPECT_NE(out[0].message.find("cycle"), std::string::npos);
}

TEST(Fixtures, LockOrderCycleIsFlagged) {
  std::vector<SourceFile> files;
  files.push_back(buildSourceFile("src/fixture/lock_order.cc",
                                  lex(readFixture("lock_order.cc"))));
  std::vector<Diagnostic> file_out;
  checkHotPath(files[0], file_out);
  checkAtomics(files[0], file_out);
  EXPECT_TRUE(file_out.empty());

  std::vector<Diagnostic> out;
  checkLockOrder(files, "", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "lock-order");
  EXPECT_NE(out[0].message.find("Pair.mu_a_"), std::string::npos);
  EXPECT_NE(out[0].message.find("Pair.mu_b_"), std::string::npos);
}

TEST(Fixtures, SeedContradictionIsFlagged) {
  // An edge discovered in code that contradicts the seed order closes a
  // cycle through the seed edge.
  std::vector<SourceFile> files;
  files.push_back(buildSourceFile("src/fixture/ab.cc", lex(R"(
struct Only {
  void backward() {
    std::lock_guard b(mu_b_);
    std::lock_guard a(mu_a_);
  }
  std::mutex mu_a_;
  std::mutex mu_b_;
};
)")));
  std::vector<Diagnostic> out;
  checkLockOrder(files, "Only.mu_a_ < Only.mu_b_\n", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "lock-order");
}

// ----------------------------------------------------------- file walks ---

TEST(Analyzer, CollectFilesSkipsFixtureDirectories) {
  Analyzer analyzer(AnalyzerOptions{TSG_REPO_ROOT, "", ""});
  const auto files = analyzer.collectFiles({"tests"});
  EXPECT_FALSE(files.empty());
  for (const std::string& f : files) {
    EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
  }
}

TEST(Analyzer, ModuleDerivation) {
  EXPECT_EQ(buildSourceFile("src/runtime/cluster.cc", {}).module(), "runtime");
  EXPECT_EQ(buildSourceFile("tools/tsglint.cc", {}).module(), "tools");
  EXPECT_EQ(buildSourceFile("tests/test_x.cc", {}).module(), "tests");
}

}  // namespace
}  // namespace lint
}  // namespace tsg
