// Randomized invariant tests for the TI-BSP engine: programs that send
// message storms with seeded randomness, checking conservation laws that
// must hold regardless of topology, partitioning or schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <map>
#include <mutex>

#include "common/rng.h"
#include "core/engine.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;
using testing::smallSocial;

// Sends `fanout` one-byte messages to seeded-random subgraphs for `rounds`
// supersteps; counts everything sent and received.
class StormProgram final : public TiBspProgram {
 public:
  StormProgram(std::uint64_t seed, int rounds, int fanout,
               std::atomic<std::uint64_t>& sent,
               std::atomic<std::uint64_t>& received)
      : rng_(seed), rounds_(rounds), fanout_(fanout), sent_(sent),
        received_(received) {}

  void compute(SubgraphContext& ctx) override {
    received_.fetch_add(ctx.messages().size());
    for (const Message& msg : ctx.messages()) {
      // Every delivered message must be addressed to this subgraph.
      ASSERT_EQ(msg.dst, ctx.subgraphId());
    }
    if (ctx.superstep() < rounds_) {
      const auto num_subgraphs = ctx.partitionedGraph().numSubgraphs();
      for (int i = 0; i < fanout_; ++i) {
        const auto dst =
            static_cast<SubgraphId>(rng_.uniformBelow(num_subgraphs));
        ctx.sendToSubgraph(dst, {static_cast<std::uint8_t>(i)});
        sent_.fetch_add(1);
      }
    }
    ctx.voteToHalt();
  }

 private:
  Rng rng_;
  int rounds_;
  int fanout_;
  std::atomic<std::uint64_t>& sent_;
  std::atomic<std::uint64_t>& received_;
};

class StormSweep : public ::testing::TestWithParam<
                       std::tuple<std::string, std::uint32_t, int>> {};

TEST_P(StormSweep, EveryMessageSentIsDeliveredExactlyOnce) {
  const auto [family, k, seed] = GetParam();
  auto tmpl = family == "road" ? smallRoad(6, 6, seed) : smallSocial(80, seed);
  const auto pg = partitionGraph(tmpl, k, seed + 1);
  TimeSeriesCollection coll(tmpl, 0, 1);
  coll.appendInstance();
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);

  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> next_seed{static_cast<std::uint64_t>(seed)};

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(pg, provider);
  const auto result = engine.run(
      [&](PartitionId) {
        return std::make_unique<StormProgram>(next_seed.fetch_add(101), 4, 7,
                                              sent, received);
      },
      config);

  EXPECT_EQ(sent.load(), received.load());
  EXPECT_EQ(result.stats.totalMessages(), sent.load());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StormSweep,
    ::testing::Combine(::testing::Values("road", "social"),
                       ::testing::Values(1u, 3u, 5u),
                       ::testing::Values(11, 29)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(EngineFuzz, InterTimestepMessagesConserved) {
  // Every subgraph forwards a random number of tokens to random subgraphs
  // in the next timestep; received totals must equal sent totals (the last
  // timestep's sends are intentionally dropped by the engine).
  auto tmpl = smallRoad(5, 5, 3);
  const auto pg = partitionGraph(tmpl, 3);
  TimeSeriesCollection coll(tmpl, 0, 1);
  for (int t = 0; t < 6; ++t) {
    coll.appendInstance();
  }
  DirectInstanceProvider provider(pg, coll);

  std::mutex mutex;
  std::map<Timestep, std::uint64_t> sent_at;
  std::map<Timestep, std::uint64_t> received_at;

  class ForwardProgram final : public TiBspProgram {
   public:
    ForwardProgram(std::uint64_t seed, std::mutex& mutex,
                   std::map<Timestep, std::uint64_t>& sent,
                   std::map<Timestep, std::uint64_t>& received)
        : rng_(seed), mutex_(mutex), sent_(sent), received_(received) {}

    void compute(SubgraphContext& ctx) override {
      if (ctx.superstep() == 0 && !ctx.messages().empty()) {
        std::lock_guard lock(mutex_);
        received_[ctx.timestep()] += ctx.messages().size();
      }
      ctx.voteToHalt();
    }
    void endOfTimestep(SubgraphContext& ctx) override {
      const auto n = rng_.uniformBelow(4);
      const auto num_subgraphs = ctx.partitionedGraph().numSubgraphs();
      for (std::uint64_t i = 0; i < n; ++i) {
        ctx.sendToSubgraphInNextTimestep(
            static_cast<SubgraphId>(rng_.uniformBelow(num_subgraphs)), {1});
      }
      std::lock_guard lock(mutex_);
      sent_[ctx.timestep()] += n;
    }

   private:
    Rng rng_;
    std::mutex& mutex_;
    std::map<Timestep, std::uint64_t>& sent_;
    std::map<Timestep, std::uint64_t>& received_;
  };

  std::atomic<std::uint64_t> next_seed{55};
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(pg, provider);
  engine.run(
      [&](PartitionId) {
        return std::make_unique<ForwardProgram>(next_seed.fetch_add(17),
                                                mutex, sent_at, received_at);
      },
      config);

  for (Timestep t = 0; t < 5; ++t) {  // last timestep's sends are dropped
    EXPECT_EQ(received_at[t + 1], sent_at[t]) << "t=" << t;
  }
}

TEST(EngineFuzz, RunIsDeterministicForFixedSeeds) {
  auto tmpl = smallSocial(60, 2);
  const auto pg = partitionGraph(tmpl, 3);
  TimeSeriesCollection coll(tmpl, 0, 1);
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);

  auto runOnce = [&] {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> next_seed{7};
    TiBspConfig config;
    config.pattern = Pattern::kSequentiallyDependent;
    TiBspEngine engine(pg, provider);
    const auto result = engine.run(
        [&](PartitionId) {
          return std::make_unique<StormProgram>(next_seed.fetch_add(13), 3, 5,
                                                sent, received);
        },
        config);
    return std::pair(sent.load(), result.stats.totalSupersteps());
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace tsg
