#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace tsg {
namespace {

TEST(Cluster, RunsJobOnEveryPartitionExactlyOnce) {
  Cluster cluster(4);
  std::vector<std::atomic<int>> hits(4);
  cluster.run([&](PartitionId p) { hits[p].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Cluster, RepeatedRoundsReuseWorkers) {
  Cluster cluster(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round) {
    cluster.run([&](PartitionId) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 300);
}

TEST(Cluster, TimingsMeasureBusyAndSync) {
  Cluster cluster(2);
  // Busy time is per-thread CPU time, so the slow partition must burn CPU
  // (a sleep would register ~0 busy).
  const auto& timings = cluster.run([](PartitionId p) {
    if (p == 0) {
      volatile std::uint64_t sink = 0;
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - start <
             std::chrono::milliseconds(20)) {
        sink += 1;
      }
    }
  });
  ASSERT_EQ(timings.size(), 2u);
  // Partition 0 burned ~20ms of CPU; partition 1 waited at the barrier.
  EXPECT_GT(timings[0].busy_ns, 5'000'000);
  // The fast worker's busy time is far below the slow worker's.
  EXPECT_LT(timings[1].busy_ns, timings[0].busy_ns);
  // The slowest worker has less sync wait than the fast one.
  EXPECT_LT(timings[0].sync_ns, timings[1].sync_ns);
}

TEST(Cluster, PartitionIdsAreStableAcrossRounds) {
  Cluster cluster(3);
  std::vector<std::thread::id> first(3);
  cluster.run([&](PartitionId p) { first[p] = std::this_thread::get_id(); });
  std::vector<std::thread::id> second(3);
  cluster.run([&](PartitionId p) { second[p] = std::this_thread::get_id(); });
  // Dedicated worker per partition: same thread serves the same partition.
  EXPECT_EQ(first, second);
}

TEST(Cluster, SinglePartitionWorks) {
  Cluster cluster(1);
  int value = 0;
  cluster.run([&](PartitionId p) {
    EXPECT_EQ(p, 0u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(Cluster, ManyPartitionsOnFewCores) {
  // Partitions may exceed hardware threads (this host has 1 core).
  Cluster cluster(9);
  std::atomic<int> total{0};
  cluster.run([&](PartitionId) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 9);
}

}  // namespace
}  // namespace tsg
