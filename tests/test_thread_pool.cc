#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace tsg {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not hang
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallelFor(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.numThreads(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.waitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.waitIdle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.waitIdle();
  }  // destructor joins
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace tsg
