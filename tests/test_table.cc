#include "common/table.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace tsg {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "count"});
  table.addRow({"a", "1"});
  table.addRow({"longer", "12345"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name   | count |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 12345 |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--------"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table({"k", "v"});
  table.addRow({"plain", "has,comma"});
  table.addRow({"quote\"inside", "line\nbreak"});
  const std::string csv = table.renderCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(TextTable, ArityMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.addRow({"only-one"}), "row arity");
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmtDouble(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmtPercent(0.1075, 2), "10.75%");
  EXPECT_EQ(TextTable::fmtCount(0), "0");
  EXPECT_EQ(TextTable::fmtCount(999), "999");
  EXPECT_EQ(TextTable::fmtCount(1000), "1,000");
  EXPECT_EQ(TextTable::fmtCount(1965206), "1,965,206");
}

TEST(WriteTextFile, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "tsg_table_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "nested" / "out.txt").string();
  ASSERT_TRUE(writeTextFile(path, "content"));
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tsg
