// Tests for src/telemetry/: the sampler's cadence and ring semantics, the
// Prometheus exposition grammar, the timeline JSON schema, and the trace
// buffer saturation accounting that rides along in this subsystem.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "telemetry/proc_stats.h"
#include "telemetry/prom.h"
#include "telemetry/sampler.h"
#include "telemetry/timeline.h"
#include "test_util.h"

namespace tsg {
namespace {

TelemetrySample makeSample(std::int64_t ts_ns) {
  TelemetrySample sample;
  sample.ts_ns = ts_ns;
  return sample;
}

// ---------------------------------------------------------------------------
// TelemetryRing
// ---------------------------------------------------------------------------

TEST(TelemetryRing, LatestReturnsNewestSample) {
  TelemetryRing ring(8);
  TelemetrySample out;
  EXPECT_FALSE(ring.latest(out));
  for (int i = 0; i < 5; ++i) {
    ring.push(makeSample(100 + i));
  }
  ASSERT_TRUE(ring.latest(out));
  EXPECT_EQ(out.ts_ns, 104);
  EXPECT_EQ(out.index, 4u);
  EXPECT_EQ(ring.produced(), 5u);
  EXPECT_EQ(ring.droppedSamples(), 0u);
}

TEST(TelemetryRing, WraparoundKeepsTheMostRecentWindowInOrder) {
  TelemetryRing ring(4);
  for (int i = 0; i < 11; ++i) {
    ring.push(makeSample(1000 + i));
  }
  const auto samples = ring.collect();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest-first, and exactly the last `capacity` pushes.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].index, 7 + i);
    EXPECT_EQ(samples[i].ts_ns, 1007 + static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(ring.produced(), 11u);
}

TEST(TelemetryRing, CollectBeforeWraparoundReturnsEverything) {
  TelemetryRing ring(16);
  for (int i = 0; i < 3; ++i) {
    ring.push(makeSample(i));
  }
  EXPECT_EQ(ring.collect().size(), 3u);
}

// ---------------------------------------------------------------------------
// TelemetrySampler
// ---------------------------------------------------------------------------

TEST(TelemetrySampler, CaptureSampleReadsRegistryAndProcess) {
  MetricsRegistry::global().counter("telemetrytest.captures").increment();
  const TelemetrySample sample = TelemetrySampler::captureSample();
  EXPECT_GT(sample.ts_ns, 0);
  bool found = false;
  for (const auto& p : sample.points) {
    if (p.name == "telemetrytest.captures") {
      found = true;
      EXPECT_GE(p.value, 1);
    }
  }
  EXPECT_TRUE(found);
#ifdef __linux__
  EXPECT_TRUE(sample.proc.valid);
  EXPECT_GT(sample.proc.rss_bytes, 0);
  EXPECT_GE(sample.proc.threads, 1);
#endif
}

TEST(TelemetrySampler, SamplesAtCadenceUnderLoad) {
  TelemetryOptions options;
  options.sample_ms = 2;
  TelemetrySampler sampler(options);
  sampler.start();
  EXPECT_TRUE(sampler.running());

  // Busy work on this thread while the sampler ticks on its own.
  auto& counter = MetricsRegistry::global().counter("telemetrytest.spin");
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
  while (std::chrono::steady_clock::now() < until) {
    counter.increment();
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  // 60 ms at a 2 ms cadence: demand the order of magnitude, not the exact
  // count — CI machines stall. Missed ticks are skipped, never bunched, so
  // produced + missed ≈ elapsed/cadence.
  const auto samples = sampler.ring().collect();
  ASSERT_GE(samples.size(), 5u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].ts_ns, samples[i].ts_ns);
    EXPECT_EQ(samples[i].index, samples[i - 1].index + 1);
  }
  // The final capture at stop() sees the spin counter's end state.
  bool found = false;
  for (const auto& p : samples.back().points) {
    if (p.name == "telemetrytest.spin") {
      found = true;
      EXPECT_EQ(p.value, static_cast<std::int64_t>(counter.value()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetrySampler, StopIsIdempotentAndRestartable) {
  TelemetryOptions options;
  options.sample_ms = 1;
  TelemetrySampler sampler(options);
  sampler.start();
  sampler.stop();
  sampler.stop();
  const auto produced = sampler.ring().produced();
  EXPECT_GE(produced, 1u);  // the final capture at minimum
  sampler.start();
  sampler.stop();
  EXPECT_GT(sampler.ring().produced(), produced);
}

TEST(TelemetrySampler, OnSampleHookRunsPerTick) {
  std::atomic<int> calls{0};
  TelemetryOptions options;
  options.sample_ms = 1;
  options.on_sample = [&](const TelemetrySample& sample) {
    EXPECT_GT(sample.ts_ns, 0);
    calls.fetch_add(1);
  };
  TelemetrySampler sampler(options);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  EXPECT_GE(calls.load(), 2);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(Prom, MetricNameManglesToPrometheusGrammar) {
  EXPECT_EQ(promMetricName("bus.inflight_messages"),
            "tsg_bus_inflight_messages");
  EXPECT_EQ(promMetricName("engine.superstep_compute_ns"),
            "tsg_engine_superstep_compute_ns");
  EXPECT_EQ(promMetricName("weird-name!"), "tsg_weird_name_");
}

TEST(Prom, EscapesLabelValues) {
  std::string out;
  appendPromEscaped(out, "a\\b\"c\nd");
  EXPECT_EQ(out, "a\\\\b\\\"c\\nd");
}

TEST(Prom, RendersCountersGaugesHistogramsAndProcessStats) {
  MetricsRegistry::Snapshot points;
  points.push_back({"bus.messages_delivered", MetricsRegistry::kNoPartition,
                    false, 42});
  points.push_back({"cluster.worker_queue_depth", 1, true, 7});

  MetricsRegistry::HistogramSnapshot hist;
  hist.name = "engine.superstep_compute_ns";
  hist.count = 4;
  hist.sum = 1000;
  hist.max = 600;
  hist.buckets[4] = 4;

  ProcStats proc;
  proc.valid = true;
  proc.rss_bytes = 1 << 20;
  proc.cpu_ns = 5'000'000;
  proc.threads = 3;

  const std::string body = renderPrometheus(points, {hist}, &proc);
  EXPECT_NE(body.find("# TYPE tsg_bus_messages_delivered counter\n"
                      "tsg_bus_messages_delivered 42\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE tsg_cluster_worker_queue_depth gauge\n"
                      "tsg_cluster_worker_queue_depth{partition=\"1\"} 7\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE tsg_engine_superstep_compute_ns summary"),
            std::string::npos);
  EXPECT_NE(body.find("tsg_engine_superstep_compute_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(body.find("tsg_engine_superstep_compute_ns_sum 1000"),
            std::string::npos);
  EXPECT_NE(body.find("tsg_engine_superstep_compute_ns_count 4"),
            std::string::npos);
  EXPECT_NE(body.find("tsg_process_rss_bytes 1048576"), std::string::npos);
  EXPECT_NE(body.find("tsg_process_threads 3"), std::string::npos);
}

TEST(Prom, OneTypeLinePerPartitionedFamily) {
  MetricsRegistry::Snapshot points;
  points.push_back({"gofs.resident_bytes", 0, true, 10});
  points.push_back({"gofs.resident_bytes", 1, true, 20});
  const std::string body = renderPrometheus(points, {}, nullptr);
  std::size_t count = 0;
  for (std::size_t pos = body.find("# TYPE tsg_gofs_resident_bytes");
       pos != std::string::npos;
       pos = body.find("# TYPE tsg_gofs_resident_bytes", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

#ifdef __linux__
TEST(Prom, HttpListenerServesTheHandlerBody) {
  PromHttpListener listener;
  const Status started = listener.start(0, [] {
    return std::string("tsg_test_metric 1\n");
  });
  ASSERT_TRUE(started.isOk()) << started.toString();
  ASSERT_GT(listener.port(), 0);
  // A second start must refuse rather than leak a socket.
  EXPECT_FALSE(listener.start(0, [] { return std::string(); }).isOk());
  listener.stop();
  EXPECT_FALSE(listener.running());
  // Restartable after stop.
  ASSERT_TRUE(listener.start(0, [] { return std::string(); }).isOk());
  listener.stop();
}
#endif

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

std::vector<TelemetrySample> timelineFixture() {
  std::vector<TelemetrySample> samples;
  for (int i = 0; i < 3; ++i) {
    TelemetrySample s = makeSample(1'000'000LL * (i + 1));
    s.index = static_cast<std::uint64_t>(i);
    s.points.push_back({"bus.messages_delivered",
                        MetricsRegistry::kNoPartition, false, 10 * (i + 1)});
    s.points.push_back({"cluster.worker_queue_depth", 0, true, 5 - i});
    TelemetrySample::HistPoint hp;
    hp.name = "engine.superstep_compute_ns";
    hp.count = static_cast<std::uint64_t>(i + 1);
    hp.p50 = 100;
    hp.p99 = 900;
    s.hists.push_back(hp);
    s.proc.valid = true;
    s.proc.rss_bytes = (1 + i) * 1024;
    s.proc.cpu_ns = 1000 * i;
    s.proc.threads = 2;
    samples.push_back(std::move(s));
  }
  return samples;
}

TelemetryOptions fixtureOptions() {
  TelemetryOptions options;
  options.sample_ms = 1;
  options.label = "fixture";
  return options;
}

TEST(Timeline, BuildsAlignedColumnsFromSamples) {
  const TelemetrySampler sampler(fixtureOptions());
  const Timeline timeline = buildTimeline(timelineFixture(), sampler);
  ASSERT_EQ(timeline.t_ms.size(), 3u);
  EXPECT_DOUBLE_EQ(timeline.t_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(timeline.t_ms[2], 2.0);
  EXPECT_EQ(timeline.label, "fixture");

  const auto* delivered = timeline.find("bus.messages_delivered");
  ASSERT_NE(delivered, nullptr);
  EXPECT_EQ(delivered->kind, "counter");
  EXPECT_EQ(delivered->values, (std::vector<double>{10, 20, 30}));
  EXPECT_FALSE(delivered->isConstant());

  const auto* depth = timeline.find("cluster.worker_queue_depth", 0);
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, "gauge");

  // Histogram-derived series get suffixed names; process stats appear too.
  EXPECT_NE(timeline.find("engine.superstep_compute_ns.count"), nullptr);
  EXPECT_NE(timeline.find("engine.superstep_compute_ns.p99"), nullptr);
  EXPECT_NE(timeline.find("process.rss_bytes"), nullptr);
  const auto* threads = timeline.find("process.threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_TRUE(threads->isConstant());
}

TEST(Timeline, JsonIsValidAndRoundTrips) {
  const TelemetrySampler sampler(fixtureOptions());
  const Timeline timeline = buildTimeline(timelineFixture(), sampler);
  const std::string json = timelineToJson(timeline);
  EXPECT_TRUE(testing::isValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);

  auto loaded = timelineFromJson(json);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  EXPECT_EQ(loaded.value().schema_version, kTimelineSchemaVersion);
  EXPECT_EQ(loaded.value().label, timeline.label);
  EXPECT_EQ(loaded.value().t_ms, timeline.t_ms);
  ASSERT_EQ(loaded.value().series.size(), timeline.series.size());
  for (std::size_t i = 0; i < timeline.series.size(); ++i) {
    EXPECT_EQ(loaded.value().series[i].name, timeline.series[i].name);
    EXPECT_EQ(loaded.value().series[i].partition,
              timeline.series[i].partition);
    EXPECT_EQ(loaded.value().series[i].kind, timeline.series[i].kind);
    EXPECT_EQ(loaded.value().series[i].values, timeline.series[i].values);
  }
}

TEST(Timeline, RejectsWrongSchemaVersionAndRaggedSeries) {
  EXPECT_FALSE(timelineFromJson("{\"schema_version\":99}").isOk());
  EXPECT_FALSE(timelineFromJson("not json").isOk());
  // Series length must agree with the time axis.
  const char* ragged =
      "{\"schema_version\":1,\"t_ms\":[0,1],\"series\":"
      "[{\"name\":\"x\",\"partition\":-1,\"kind\":\"gauge\","
      "\"values\":[1]}]}";
  EXPECT_FALSE(timelineFromJson(ragged).isOk());
}

TEST(Timeline, RenderCurvesListsProgressColumns) {
  const TelemetrySampler sampler(fixtureOptions());
  const Timeline timeline = buildTimeline(timelineFixture(), sampler);
  const std::string text = renderTimelineCurves(timeline);
  EXPECT_NE(text.find("t_ms"), std::string::npos);
  EXPECT_NE(text.find("rss_mb"), std::string::npos);
  EXPECT_NE(text.find("util"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace buffer saturation (satellite: silent truncation is now counted)
// ---------------------------------------------------------------------------

TEST(TraceSaturation, DropsAreCountedAndTracesStayValid) {
  auto& tracer = Tracer::instance();
  Tracer::setMaxEventsPerBufferForTest(8);
  tracer.start();
  const auto dropped_counter_before =
      MetricsRegistry::global().counter("trace.dropped_events").value();
  for (int i = 0; i < 64; ++i) {
    traceInstant("test", "saturate");
  }
  tracer.stop();
  EXPECT_GT(Tracer::droppedEventCount(), 0u);
  EXPECT_GT(MetricsRegistry::global().counter("trace.dropped_events").value(),
            dropped_counter_before);
  // The truncated export is still well-formed JSON.
  EXPECT_TRUE(testing::isValidJson(tracer.toJson()));
  tracer.clear();
  Tracer::setMaxEventsPerBufferForTest(Tracer::kDefaultMaxEventsPerBuffer);
  // start() resets the drop count.
  tracer.start();
  EXPECT_EQ(Tracer::droppedEventCount(), 0u);
  tracer.clear();
}

// ---------------------------------------------------------------------------
// snapshotDelta gauge staleness (satellite: untouched gauges filtered)
// ---------------------------------------------------------------------------

TEST(SnapshotDelta, DropsGaugesNotTouchedDuringTheWindow) {
  auto& registry = MetricsRegistry::global();
  registry.gauge("telemetrytest.stale_gauge").set(42);
  registry.gauge("telemetrytest.live_gauge").set(1);
  const auto before = registry.snapshot();
  registry.gauge("telemetrytest.live_gauge").set(2);
  // Setting the same value still counts as a touch — liveness, not change.
  registry.gauge("telemetrytest.rewritten_gauge").set(0);
  const auto after = registry.snapshot();
  const auto delta = snapshotDelta(before, after);

  auto find = [&](const char* name) -> const MetricsRegistry::Point* {
    for (const auto& p : delta) {
      if (p.name == name) {
        return &p;
      }
    }
    return nullptr;
  };
  EXPECT_EQ(find("telemetrytest.stale_gauge"), nullptr);
  const auto* live = find("telemetrytest.live_gauge");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->value, 2);
  EXPECT_NE(find("telemetrytest.rewritten_gauge"), nullptr);
}

}  // namespace
}  // namespace tsg
