// BSP protocol checker tests: deliberately-broken drivers must be caught
// with precise diagnostics (rule, partition, superstep), and clean engine
// runs across all three engine families must produce zero violations.
#include "check/bsp_checker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/engine.h"
#include "runtime/message_bus.h"
#include "test_util.h"
#include "vertexcentric/engine.h"
#include "vertexcentric/programs.h"
#include "vertexcentric/ti_engine.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;

// Enables checking and collects violations instead of aborting, restoring
// both on destruction. Tests assert on the collected rule ids and fields.
class ViolationCollector {
 public:
  ViolationCollector() {
    was_enabled_ = check::enabled();
    check::setEnabled(true);
    check::setViolationHandler(
        [this](const check::Violation& v) { violations_.push_back(v); });
  }
  ~ViolationCollector() {
    check::clearViolationHandler();
    check::setEnabled(was_enabled_);
  }

  [[nodiscard]] const std::vector<check::Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool sawRule(const std::string& rule) const {
    for (const auto& v : violations_) {
      if (v.rule == rule) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] const check::Violation* firstOf(
      const std::string& rule) const {
    for (const auto& v : violations_) {
      if (v.rule == rule) {
        return &v;
      }
    }
    return nullptr;
  }

 private:
  std::vector<check::Violation> violations_;
  bool was_enabled_ = false;
};

Message makeMessage(SubgraphId src, SubgraphId dst) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.payload = {1, 2, 3};
  return msg;
}

// --- broken-driver fixtures ------------------------------------------------

TEST(BspChecker, SendOutsideComputeIsCaught) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  // The broken driver: partition 1 sends without having entered compute
  // (e.g. a coordinator-side send, or a worker touching the bus after the
  // barrier).
  bus.send(1, 0, makeMessage(1, 0));

  ASSERT_TRUE(collector.sawRule("send-outside-compute"));
  const auto* v = collector.firstOf("send-outside-compute");
  EXPECT_EQ(v->partition, 1u);
  EXPECT_EQ(v->timestep, 0);
  EXPECT_EQ(v->superstep, 0);
  EXPECT_NE(v->detail.find("partition 1"), std::string::npos);
  EXPECT_NE(v->detail.find("superstep 0"), std::string::npos);
}

TEST(BspChecker, DeliverDuringComputeIsCaught) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  // The broken driver: the coordinator runs the barrier delivery while
  // partition 0 is still computing.
  (void)bus.deliver();

  ASSERT_TRUE(collector.sawRule("deliver-during-compute"));
  EXPECT_EQ(collector.firstOf("deliver-during-compute")->partition, 0u);
}

TEST(BspChecker, InjectDuringComputeIsCaught) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.enterCompute(1);

  std::vector<Message> seeds;
  seeds.push_back(makeMessage(0, 0));
  bus.inject(0, std::move(seeds));

  ASSERT_TRUE(collector.sawRule("inject-during-compute"));
}

TEST(BspChecker, SameSuperstepReadIsCaught) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  (void)bus.deliver();  // stamps partition 1's inbox with superstep 0

  // The broken driver: the batch is consumed without advancing to
  // superstep 1 first — reading traffic sent in the *same* superstep.
  checker.enterCompute(1);
  bus.inbox(1).clear();

  ASSERT_TRUE(collector.sawRule("same-superstep-read"));
  const auto* v = collector.firstOf("same-superstep-read");
  EXPECT_EQ(v->partition, 1u);
  EXPECT_EQ(v->superstep, 0);
}

TEST(BspChecker, LegalNextSuperstepReadIsClean) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  (void)bus.deliver();

  checker.beginSuperstep(1);
  checker.enterCompute(1);
  bus.inbox(1).clear();
  checker.exitCompute(1);
  (void)bus.deliver();
  checker.endRun();

  EXPECT_TRUE(collector.violations().empty());
}

TEST(BspChecker, AbandonedMessagesBreakConservation) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  (void)bus.deliver();

  // The broken driver: superstep 1 runs but partition 1 never drains its
  // inbox; the next barrier silently recycles the batch.
  checker.beginSuperstep(1);
  checker.enterCompute(1);
  checker.exitCompute(1);
  (void)bus.deliver();

  ASSERT_TRUE(collector.sawRule("conservation-consumed"));
  EXPECT_NE(collector.firstOf("conservation-consumed")
                ->detail.find("abandoned"),
            std::string::npos);
}

TEST(BspChecker, FabricLosingMessagesBreaksConservation) {
  ViolationCollector collector;
  check::BspChecker checker(2);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  // Simulated buggy fabric: a worker sent one message but the barrier
  // reports zero delivered.
  checker.enterCompute(0);
  checker.onSend(0, 1, 16);
  checker.exitCompute(0);
  checker.onDeliver(/*messages=*/0, /*bytes=*/0, 0, 0);

  ASSERT_TRUE(collector.sawRule("conservation-delivered"));
}

TEST(BspChecker, ComputeOnHaltedIsCaught) {
  ViolationCollector collector;
  check::BspChecker checker(2);
  checker.beginTimestep(2);
  checker.beginSuperstep(3);

  // Simulated buggy engine: unit 7 was halted, has no pending messages and
  // it is not superstep 0 — yet the engine computes it.
  checker.onComputeUnit(1, 7, /*was_halted=*/true, /*reactivated=*/false);

  ASSERT_TRUE(collector.sawRule("compute-on-halted"));
  const auto* v = collector.firstOf("compute-on-halted");
  EXPECT_EQ(v->partition, 1u);
  EXPECT_EQ(v->timestep, 2);
  EXPECT_EQ(v->superstep, 3);
}

TEST(BspChecker, BarrierPairingViolationsAreCaught) {
  ViolationCollector collector;
  check::BspChecker checker(2);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  checker.enterCompute(0);  // double enter
  ASSERT_TRUE(collector.sawRule("barrier-double-enter"));

  checker.exitCompute(1);  // exit without enter
  ASSERT_TRUE(collector.sawRule("barrier-exit-without-enter"));
}

TEST(BspChecker, ResetForgivesInFlightTraffic) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  (void)bus.deliver();
  // Superstep-cap abort: the engine clears the fabric mid-flight.
  bus.clearAll();
  checker.endRun();

  EXPECT_TRUE(collector.violations().empty());
}

TEST(BspChecker, RecoveryRePairsKilledWorkerAndForgivesDroppedTraffic) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(0);
  checker.beginSuperstep(0);

  // Partition 0 sends and finishes its round; partition 1 is killed inside
  // compute — round entered, never exited — with the batch still in flight.
  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  checker.enterCompute(1);  // worker dies here

  // The engine rolls back to the last checkpoint: the open phase must be
  // closed (no barrier-exit-without-enter / double-enter on replay) and the
  // dropped traffic forgiven.
  checker.onRecovery();
  bus.clearAll();

  // Replay of the timestep: carried messages re-injected from the
  // checkpoint, then the same supersteps run cleanly to completion.
  checker.beginTimestep(0);
  std::vector<Message> carried;
  carried.push_back(makeMessage(0, 0));
  bus.inject(0, std::move(carried));
  checker.beginSuperstep(0);
  checker.enterCompute(0);
  bus.inbox(0).clear();  // consume the replayed carried batch
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  checker.enterCompute(1);
  checker.exitCompute(1);
  (void)bus.deliver();

  checker.beginSuperstep(1);
  checker.enterCompute(1);
  bus.inbox(1).clear();
  checker.exitCompute(1);
  (void)bus.deliver();
  checker.endRun();

  EXPECT_TRUE(collector.violations().empty());
}

TEST(BspChecker, ReplayedDeliveryAfterRecoveryDoesNotTripConservation) {
  ViolationCollector collector;
  MessageBus bus(2);
  check::BspChecker checker(2);
  bus.attachChecker(&checker);
  checker.beginTimestep(1);
  checker.beginSuperstep(0);

  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  (void)bus.deliver();  // batch delivered to partition 1, not yet drained

  // Fault before partition 1 drains it; the engine drops the fabric and
  // rolls back.
  checker.onRecovery();
  bus.clearAll();

  // Replay: the same superstep runs again and this time completes. The
  // re-delivered batch must count as the first (only) delivery — not as a
  // duplicate of the aborted attempt's traffic.
  checker.beginTimestep(1);
  checker.beginSuperstep(0);
  checker.enterCompute(0);
  bus.send(0, 1, makeMessage(0, 1));
  checker.exitCompute(0);
  (void)bus.deliver();

  checker.beginSuperstep(1);
  checker.enterCompute(1);
  bus.inbox(1).clear();
  checker.exitCompute(1);
  (void)bus.deliver();
  checker.endRun();

  EXPECT_TRUE(collector.violations().empty());
}

// --- clean runs across the engine families ---------------------------------

TEST(BspChecker, CleanTiBspRunHasNoViolations) {
  ViolationCollector collector;
  auto tmpl = smallRoad(4, 4);
  auto pg = partitionGraph(tmpl, 2);
  TimeSeriesCollection collection(tmpl, /*t0=*/0, /*delta=*/5);
  for (int t = 0; t < 3; ++t) {
    collection.appendInstance();
  }
  DirectInstanceProvider provider(pg, collection);

  // A ping-pong program: every subgraph messages a peer for two supersteps,
  // plus inter-timestep traffic — exercising send, deliver, consume, inject
  // and halting under the checker.
  class PingPong final : public TiBspProgram {
   public:
    void compute(SubgraphContext& ctx) override {
      if (ctx.superstep() < 2) {
        const SubgraphId peer = (ctx.subgraphId() + 1) %
                                ctx.partitionedGraph().numSubgraphs();
        ctx.sendToSubgraph(peer, {7});
      }
      ctx.sendToNextTimestep({9});
      ctx.voteToHalt();
    }
    void endOfTimestep(SubgraphContext&) override {}
    void merge(SubgraphContext&) override {}
  };

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(pg, provider);
  const auto result = engine.run(
      [](PartitionId) { return std::make_unique<PingPong>(); }, config);
  EXPECT_EQ(result.timesteps_executed, 3);
  for (const auto& v : collector.violations()) {
    ADD_FAILURE() << "unexpected violation: " << v.detail;
  }
}

TEST(BspChecker, CleanTemporallyConcurrentRunHasNoViolations) {
  ViolationCollector collector;
  auto tmpl = smallRoad(4, 4);
  auto pg = partitionGraph(tmpl, 2);
  TimeSeriesCollection collection(tmpl, /*t0=*/0, /*delta=*/5);
  for (int t = 0; t < 3; ++t) {
    collection.appendInstance();
  }
  DirectInstanceProvider provider(pg, collection);

  class Chatter final : public TiBspProgram {
   public:
    void compute(SubgraphContext& ctx) override {
      if (ctx.superstep() == 0) {
        const SubgraphId peer = (ctx.subgraphId() + 1) %
                                ctx.partitionedGraph().numSubgraphs();
        ctx.sendToSubgraph(peer, {1});
      }
      ctx.voteToHalt();
    }
    void endOfTimestep(SubgraphContext&) override {}
    void merge(SubgraphContext&) override {}
  };

  TiBspConfig config;
  config.pattern = Pattern::kIndependent;
  config.temporal_mode = TemporalMode::kConcurrent;
  TiBspEngine engine(pg, provider);
  const auto result = engine.run(
      [](PartitionId) { return std::make_unique<Chatter>(); }, config);
  EXPECT_EQ(result.timesteps_executed, 3);
  for (const auto& v : collector.violations()) {
    ADD_FAILURE() << "unexpected violation: " << v.detail;
  }
}

TEST(BspChecker, CleanVertexCentricRunHasNoViolations) {
  ViolationCollector collector;
  auto tmpl = smallRoad(4, 4);
  auto pg = partitionGraph(tmpl, 2);

  vertexcentric::SsspVertexProgram program(0);
  vertexcentric::VertexCentricEngine engine(pg);
  const auto result =
      engine.run(program, vertexcentric::VcConfig{},
                 [](VertexIndex) { return vertexcentric::kInf; });
  EXPECT_EQ(result.values[0], 0.0);
  for (const auto& v : collector.violations()) {
    ADD_FAILURE() << "unexpected violation: " << v.detail;
  }
}

TEST(BspChecker, CleanTemporalVertexRunHasNoViolations) {
  ViolationCollector collector;
  auto tmpl = smallRoad(4, 4);
  auto pg = partitionGraph(tmpl, 2);
  TimeSeriesCollection collection(tmpl, /*t0=*/0, /*delta=*/5);
  for (int t = 0; t < 2; ++t) {
    collection.appendInstance();
  }
  DirectInstanceProvider provider(pg, collection);

  // Flood + carry: every vertex pings its neighbours at superstep 0 and
  // defers one value to the next timestep (exercises the injection path).
  class Flood final : public vertexcentric::TemporalVertexProgram {
   public:
    void compute(vertexcentric::TemporalVertexContext& ctx) override {
      if (ctx.superstep() == 0) {
        for (const auto& oe : ctx.graphTemplate().outEdges(ctx.vertex())) {
          ctx.sendTo(oe.dst, 1.0);
        }
        ctx.sendToNextTimestep(ctx.vertex(), 2.0);
      }
      ctx.voteToHalt();
    }
    void endOfTimestep(VertexIndex, Timestep) override {}
  };

  Flood program;
  vertexcentric::TemporalVcConfig config;
  vertexcentric::TemporalVertexEngine engine(pg, provider);
  const auto result = engine.run(program, config);
  EXPECT_EQ(result.timesteps_executed, 2);
  for (const auto& v : collector.violations()) {
    ADD_FAILURE() << "unexpected violation: " << v.detail;
  }
}

TEST(BspChecker, DisabledCheckerCostsNothingAndReportsNothing) {
  // No collector: checking stays off, the bus has no checker attached, and
  // a protocol-violating sequence passes silently (the production default).
  if (check::enabled()) {
    GTEST_SKIP() << "checking is compiled on by default in this build";
  }
  MessageBus bus(2);
  bus.send(0, 1, makeMessage(0, 1));  // no enterCompute — would violate
  (void)bus.deliver();
  SUCCEED();
}

}  // namespace
}  // namespace tsg
