#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tsg {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, KnownFirstValueIsStableAcrossRuns) {
  // Pins the cross-platform reproducibility contract: if this changes, every
  // generated dataset changes.
  Rng rng(123456789);
  const std::uint64_t first = rng.next();
  Rng rng2(123456789);
  EXPECT_EQ(first, rng2.next());
  EXPECT_NE(first, 0u);
}

TEST(Rng, UniformBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniformBelow(17), 17u);
  }
  // bound 1 always yields 0
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniformBelow(1), 0u);
  }
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(8);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.uniformBelow(10)];
  }
  for (int bucket = 0; bucket < 10; ++bucket) {
    // Expected 1000 per bucket; allow wide slack.
    EXPECT_GT(seen[bucket], 800) << bucket;
    EXPECT_LT(seen[bucket], 1200) << bucket;
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(10);
  double mean = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.uniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    mean += d;
  }
  mean /= 20000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniformDouble(2.5, 7.5);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 7.5);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
  // Degenerate probabilities.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng forked = a.fork();
  // The fork must not replay the parent stream.
  Rng a2(55);
  (void)a2.next();  // parent consumed one value to fork
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (forked.next() == a2.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64, KnownSequenceProperties) {
  SplitMix64 sm(0);
  const auto v1 = sm.next();
  const auto v2 = sm.next();
  EXPECT_NE(v1, v2);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), v1);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace tsg
