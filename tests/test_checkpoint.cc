// Checkpoint codec + store tests, including the crash-consistency matrix:
// a truncated or bit-flipped pack, a torn manifest tail, or a corrupt
// manifest record must make recovery fall back to the newest intact
// checkpoint (with a diagnostic) — never produce a wrong answer.
#include "gofs/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::TempDir;
using testing::unwrap;

std::vector<std::uint8_t> payloadBytes(const Message& m) {
  return {m.payload.data(), m.payload.data() + m.payload.size()};
}

Message makeMessage(SubgraphId src, SubgraphId dst, Timestep origin,
                    std::vector<std::uint8_t> payload) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.origin_timestep = origin;
  m.payload = PayloadBuffer(payload.data(), payload.size());
  return m;
}

Checkpoint makeCheckpoint(Timestep t, std::uint8_t salt) {
  Checkpoint ckpt;
  ckpt.timestep = t;
  ckpt.timesteps_executed = t + 1;
  ckpt.partitions.resize(2);
  ckpt.partitions[0].program_state = {1, 2, salt};
  ckpt.partitions[0].outputs = {"out," + std::to_string(salt)};
  ckpt.partitions[1].program_state = {};
  ckpt.pending_next.push_back(makeMessage(0, 3, t, {salt, 9}));
  ckpt.merge_pool.push_back(makeMessage(2, 1, t, {7}));
  ckpt.aggregates["total"] = 100u + salt;
  return ckpt;
}

void expectEqual(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.timestep, b.timestep);
  EXPECT_EQ(a.timesteps_executed, b.timesteps_executed);
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  for (std::size_t p = 0; p < a.partitions.size(); ++p) {
    EXPECT_EQ(a.partitions[p].program_state, b.partitions[p].program_state);
    EXPECT_EQ(a.partitions[p].outputs, b.partitions[p].outputs);
  }
  const auto expectMessagesEqual = [](const std::vector<Message>& ma,
                                      const std::vector<Message>& mb) {
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].src, mb[i].src);
      EXPECT_EQ(ma[i].dst, mb[i].dst);
      EXPECT_EQ(ma[i].origin_timestep, mb[i].origin_timestep);
      EXPECT_EQ(payloadBytes(ma[i]), payloadBytes(mb[i]));
    }
  };
  expectMessagesEqual(a.pending_next, b.pending_next);
  expectMessagesEqual(a.merge_pool, b.merge_pool);
  EXPECT_EQ(a.aggregates, b.aggregates);
}

TEST(CheckpointCodec, RoundTripsAllFields) {
  const Checkpoint original = makeCheckpoint(4, 42);
  const auto bytes = encodeCheckpoint(original);
  const Checkpoint decoded = unwrap(decodeCheckpoint(bytes));
  expectEqual(original, decoded);
}

TEST(CheckpointCodec, RejectsBadMagicAndVersion) {
  auto bytes = encodeCheckpoint(makeCheckpoint(0, 1));
  auto flipped = bytes;
  flipped[0] ^= 0xFF;  // magic
  EXPECT_FALSE(decodeCheckpoint(flipped).isOk());
  flipped = bytes;
  flipped[4] ^= 0xFF;  // version
  EXPECT_FALSE(decodeCheckpoint(flipped).isOk());
}

TEST(CheckpointCodec, RejectsTrailingGarbage) {
  auto bytes = encodeCheckpoint(makeCheckpoint(0, 1));
  bytes.push_back(0);
  EXPECT_FALSE(decodeCheckpoint(bytes).isOk());
}

Checkpoint randomCheckpoint(Rng& rng) {
  Checkpoint ckpt;
  ckpt.timestep = static_cast<Timestep>(rng.uniformInt(-1, 40));
  ckpt.timesteps_executed = static_cast<std::int32_t>(rng.uniformInt(0, 40));
  ckpt.partitions.resize(rng.uniformBelow(4));
  for (auto& part : ckpt.partitions) {
    part.program_state.resize(rng.uniformBelow(48));
    for (auto& byte : part.program_state) {
      byte = static_cast<std::uint8_t>(rng.uniformBelow(256));
    }
    const std::uint64_t lines = rng.uniformBelow(3);
    for (std::uint64_t i = 0; i < lines; ++i) {
      part.outputs.push_back("line," + std::to_string(rng.uniformBelow(1000)));
    }
  }
  const auto randomMessages = [&rng](std::vector<Message>& out) {
    const std::uint64_t n = rng.uniformBelow(5);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::vector<std::uint8_t> payload(1 + rng.uniformBelow(24));
      for (auto& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.uniformBelow(256));
      }
      out.push_back(makeMessage(
          static_cast<SubgraphId>(rng.uniformBelow(16)),
          static_cast<SubgraphId>(rng.uniformBelow(16)),
          static_cast<Timestep>(rng.uniformInt(-1, 40)), std::move(payload)));
    }
  };
  randomMessages(ckpt.pending_next);
  randomMessages(ckpt.merge_pool);
  const std::uint64_t aggs = rng.uniformBelow(4);
  for (std::uint64_t i = 0; i < aggs; ++i) {
    ckpt.aggregates["agg" + std::to_string(i)] = rng.next();
  }
  return ckpt;
}

TEST(CheckpointCodec, FuzzRoundTripAndTruncation) {
  Rng rng(2026);
  for (int iter = 0; iter < 200; ++iter) {
    const Checkpoint original = randomCheckpoint(rng);
    const auto bytes = encodeCheckpoint(original);
    const Checkpoint decoded = unwrap(decodeCheckpoint(bytes));
    expectEqual(original, decoded);

    // Every proper prefix must fail cleanly — the decoder consumes the
    // whole pack, so a truncated pack always runs dry or fails the
    // trailing-length check. Never a crash, never a partial checkpoint.
    const std::size_t cut = rng.uniformBelow(bytes.size());
    const auto truncated =
        std::vector<std::uint8_t>(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decodeCheckpoint(truncated).isOk()) << "cut=" << cut;

    // A random bit flip must not crash; a success is allowed only for
    // payload-byte flips (the store's manifest checksums catch those).
    auto flipped = bytes;
    const std::size_t at = rng.uniformBelow(flipped.size());
    flipped[at] ^= static_cast<std::uint8_t>(1 + rng.uniformBelow(255));
    (void)decodeCheckpoint(flipped);
  }
}

TEST(MemoryCheckpointStore, RoundTripsLatestAndCountsSaves) {
  MemoryCheckpointStore store;
  EXPECT_FALSE(store.hasCheckpoint());
  EXPECT_FALSE(store.loadLatest().isOk());

  ASSERT_TRUE(store.save(makeCheckpoint(0, 1)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 2)).isOk());
  EXPECT_TRUE(store.hasCheckpoint());
  EXPECT_EQ(store.saves(), 2u);
  expectEqual(makeCheckpoint(1, 2), unwrap(store.loadLatest()));
}

class FileStoreTest : public ::testing::Test {
 protected:
  // Flips one byte in the middle of a file.
  static void flipByteAt(const std::string& path, std::size_t offset) {
    auto bytes = unwrap(readFileBytes(path));
    ASSERT_LT(offset, bytes.size());
    bytes[offset] ^= 0xFF;
    ASSERT_TRUE(writeFileBytes(path, bytes).isOk());
  }

  TempDir tmp_{"tsg_ckpt"};
};

TEST_F(FileStoreTest, LoadsNewestCheckpoint) {
  FileCheckpointStore store(tmp_.path());
  EXPECT_FALSE(store.hasCheckpoint());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 11)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(2, 12)).isOk());
  EXPECT_TRUE(store.hasCheckpoint());
  expectEqual(makeCheckpoint(2, 12), unwrap(store.loadLatest()));
}

TEST_F(FileStoreTest, CorruptPackFallsBackToPreviousTimestep) {
  FileCheckpointStore store(tmp_.path());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 11)).isOk());
  const auto size = std::filesystem::file_size(store.packPath(1));
  flipByteAt(store.packPath(1), static_cast<std::size_t>(size) / 2);
  expectEqual(makeCheckpoint(0, 10), unwrap(store.loadLatest()));
}

TEST_F(FileStoreTest, TruncatedPackFallsBackToPreviousTimestep) {
  FileCheckpointStore store(tmp_.path());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 11)).isOk());
  const auto size = std::filesystem::file_size(store.packPath(1));
  std::filesystem::resize_file(store.packPath(1), size / 2);
  expectEqual(makeCheckpoint(0, 10), unwrap(store.loadLatest()));
}

TEST_F(FileStoreTest, MissingPackFallsBackToPreviousTimestep) {
  FileCheckpointStore store(tmp_.path());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 11)).isOk());
  std::filesystem::remove(store.packPath(1));
  expectEqual(makeCheckpoint(0, 10), unwrap(store.loadLatest()));
}

TEST_F(FileStoreTest, TornManifestTailFallsBackToPreviousTimestep) {
  FileCheckpointStore store(tmp_.path());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 11)).isOk());
  // A crash mid-append leaves a partial trailing record; it must be skipped
  // without invalidating the earlier, complete records.
  const auto size = std::filesystem::file_size(store.manifestPath());
  std::filesystem::resize_file(store.manifestPath(), size - 13);
  expectEqual(makeCheckpoint(0, 10), unwrap(store.loadLatest()));
}

TEST_F(FileStoreTest, CorruptTrailingManifestRecordFallsBack) {
  FileCheckpointStore store(tmp_.path());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  ASSERT_TRUE(store.save(makeCheckpoint(1, 11)).isOk());
  // Flip a byte inside the newest record's pack-checksum field: the
  // record's own checksum no longer matches, so the entry is skipped.
  const auto size = std::filesystem::file_size(store.manifestPath());
  flipByteAt(store.manifestPath(), static_cast<std::size_t>(size) - 20);
  expectEqual(makeCheckpoint(0, 10), unwrap(store.loadLatest()));
}

TEST_F(FileStoreTest, AllCheckpointsCorruptIsAnErrorNeverAWrongAnswer) {
  FileCheckpointStore store(tmp_.path());
  ASSERT_TRUE(store.save(makeCheckpoint(0, 10)).isOk());
  const auto size = std::filesystem::file_size(store.packPath(0));
  flipByteAt(store.packPath(0), static_cast<std::size_t>(size) / 2);
  const auto loaded = store.loadLatest();
  ASSERT_FALSE(loaded.isOk());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruptData);
}

TEST_F(FileStoreTest, SurvivesRestartAcrossStoreInstances) {
  {
    FileCheckpointStore store(tmp_.path());
    ASSERT_TRUE(store.save(makeCheckpoint(3, 30)).isOk());
  }
  FileCheckpointStore reopened(tmp_.path());
  EXPECT_TRUE(reopened.hasCheckpoint());
  expectEqual(makeCheckpoint(3, 30), unwrap(reopened.loadLatest()));
}

}  // namespace
}  // namespace tsg
