#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/rng.h"

namespace tsg {
namespace {

TEST(BinaryRoundtrip, Primitives) {
  BinaryWriter w;
  w.writeU8(0xAB);
  w.writeU32(0xDEADBEEF);
  w.writeU64(0x0123456789ABCDEFULL);
  w.writeI32(-12345);
  w.writeI64(-9876543210LL);
  w.writeDouble(3.14159);
  w.writeBool(true);
  w.writeBool(false);

  BinaryReader r(w.buffer());
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int32_t i32 = 0;
  std::int64_t i64 = 0;
  double d = 0;
  bool b1 = false;
  bool b2 = true;
  ASSERT_TRUE(r.readU8(u8).isOk());
  ASSERT_TRUE(r.readU32(u32).isOk());
  ASSERT_TRUE(r.readU64(u64).isOk());
  ASSERT_TRUE(r.readI32(i32).isOk());
  ASSERT_TRUE(r.readI64(i64).isOk());
  ASSERT_TRUE(r.readDouble(d).isOk());
  ASSERT_TRUE(r.readBool(b1).isOk());
  ASSERT_TRUE(r.readBool(b2).isOk());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i32, -12345);
  EXPECT_EQ(i64, -9876543210LL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.atEnd());
}

TEST(BinaryRoundtrip, SpecialDoubles) {
  BinaryWriter w;
  w.writeDouble(std::numeric_limits<double>::infinity());
  w.writeDouble(-0.0);
  w.writeDouble(std::numeric_limits<double>::denorm_min());
  BinaryReader r(w.buffer());
  double inf = 0;
  double neg_zero = 1;
  double denorm = 0;
  ASSERT_TRUE(r.readDouble(inf).isOk());
  ASSERT_TRUE(r.readDouble(neg_zero).isOk());
  ASSERT_TRUE(r.readDouble(denorm).isOk());
  EXPECT_EQ(inf, std::numeric_limits<double>::infinity());
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(denorm, std::numeric_limits<double>::denorm_min());
}

TEST(Varint, BoundaryValues) {
  const std::uint64_t cases[] = {0,    1,    127,  128,   16383, 16384,
                                 1u << 21,  ~0ULL, 0xFFFFFFFF};
  for (const auto v : cases) {
    BinaryWriter w;
    w.writeVarint(v);
    BinaryReader r(w.buffer());
    std::uint64_t out = 1;
    ASSERT_TRUE(r.readVarint(out).isOk()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.atEnd());
  }
}

TEST(Varint, RandomRoundtrip) {
  Rng rng(99);
  BinaryWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Bias toward small values but cover the full range.
    const int bits = static_cast<int>(rng.uniformBelow(64)) + 1;
    const std::uint64_t v =
        rng.next() & (bits == 64 ? ~0ULL : ((1ULL << bits) - 1));
    values.push_back(v);
    w.writeVarint(v);
  }
  BinaryReader r(w.buffer());
  for (const auto expected : values) {
    std::uint64_t v = 0;
    ASSERT_TRUE(r.readVarint(v).isOk());
    EXPECT_EQ(v, expected);
  }
}

TEST(Strings, RoundtripIncludingEmbeddedNul) {
  BinaryWriter w;
  w.writeString("");
  w.writeString(std::string_view("a\0b", 3));
  w.writeString("日本語テキスト");
  BinaryReader r(w.buffer());
  std::string a;
  std::string b;
  std::string c;
  ASSERT_TRUE(r.readString(a).isOk());
  ASSERT_TRUE(r.readString(b).isOk());
  ASSERT_TRUE(r.readString(c).isOk());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, std::string("a\0b", 3));
  EXPECT_EQ(c, "日本語テキスト");
}

TEST(Vectors, PodAndStringVectors) {
  BinaryWriter w;
  const std::vector<std::uint32_t> pod{1, 2, 3, 0xFFFFFFFF};
  const std::vector<std::string> strs{"x", "", "zz"};
  w.writePodVector(pod);
  w.writeStringVector(strs);
  w.writePodVector(std::vector<double>{});
  BinaryReader r(w.buffer());
  std::vector<std::uint32_t> pod_out;
  std::vector<std::string> strs_out;
  std::vector<double> empty_out{1.0};
  ASSERT_TRUE(r.readPodVector(pod_out).isOk());
  ASSERT_TRUE(r.readStringVector(strs_out).isOk());
  ASSERT_TRUE(r.readPodVector(empty_out).isOk());
  EXPECT_EQ(pod_out, pod);
  EXPECT_EQ(strs_out, strs);
  EXPECT_TRUE(empty_out.empty());
}

TEST(Truncation, EveryPrefixFailsCleanly) {
  BinaryWriter w;
  w.writeU32(7);
  w.writeString("hello");
  w.writePodVector(std::vector<std::uint64_t>{1, 2, 3});
  const auto& full = w.buffer();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader r(std::span(full.data(), cut));
    std::uint32_t u = 0;
    std::string s;
    std::vector<std::uint64_t> v;
    // Drive the reads; at least one must fail, none may crash.
    const bool ok = r.readU32(u).isOk() && r.readString(s).isOk() &&
                    r.readPodVector(v).isOk();
    EXPECT_FALSE(ok) << "prefix " << cut << " parsed as complete";
  }
}

TEST(Truncation, OverlongVarintRejected) {
  std::vector<std::uint8_t> bytes(11, 0x80);  // never-terminating varint
  BinaryReader r(bytes);
  std::uint64_t v = 0;
  EXPECT_FALSE(r.readVarint(v).isOk());
}

TEST(FileBytes, WriteReadRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsg_serialize_test.bin")
          .string();
  std::vector<std::uint8_t> data{1, 2, 3, 0, 255, 7};
  ASSERT_TRUE(writeFileBytes(path, data).isOk());
  auto read = readFileBytes(path);
  ASSERT_TRUE(read.isOk());
  EXPECT_EQ(read.value(), data);
  std::filesystem::remove(path);
}

TEST(FileBytes, MissingFileIsIoError) {
  auto read = readFileBytes("/nonexistent/dir/file.bin");
  ASSERT_FALSE(read.isOk());
  EXPECT_EQ(read.status().code(), ErrorCode::kIoError);
}

}  // namespace
}  // namespace tsg
