// Known-bad fixture: trips tsg-metric-name and nothing else.
// Not compiled — consumed by tests/test_tsglint.cc as analyzer input.
namespace fixture {

void record(MetricsRegistry& reg, const char* dynamic_name) {
  reg.counter(dynamic_name).add(1);         // violation: computed name
  reg.gauge("BadCamelCase").set(2);         // violation: not snake_case
  reg.histogram("engine.compute_ns").record(3);  // OK
}

}  // namespace fixture
