// Known-bad fixture: trips tsg-trace-literal and nothing else.
// Not compiled — consumed by tests/test_tsglint.cc as analyzer input.
namespace fixture {

void spanFromVariable(const char* category) {
  TraceSpan(category, "phase");  // computed category: violation
}

void literalFromVariable(const char* name) {
  TraceLiteral lit{name};  // TraceLiteral from a variable: violation
  (void)lit;
}

void fineSpan() {
  TraceSpan("engine", "superstep");  // literal: OK
  traceInstant("engine", "tick");    // literal: OK
}

}  // namespace fixture
