// Known-bad fixture: trips tsg-naked-thread and nothing else.
// Not compiled — consumed by tests/test_tsglint.cc as analyzer input.
#include <thread>

namespace fixture {

void spawnDirectly() {
  std::thread worker([] {});  // violation: bypasses Cluster/ThreadPool
  worker.join();
}

// The identifier inside a string must NOT trip the tokenizer-based rule.
const char* kDoc = "call std::thread somewhere else";

}  // namespace fixture
