// Known-bad fixture: trips tsg-atomics and nothing else.
// Not compiled — consumed by tests/test_tsglint.cc as analyzer input.
#include <atomic>

namespace fixture {

std::atomic<int> g_count{0};

int untaggedRelaxed() {
  return g_count.load(std::memory_order_relaxed);  // violation: no tsg:mo
}

// tsg:hot
int hotSeqCstDefault() {
  return g_count.load();  // violation: defaults to seq_cst in a hot region
}

int taggedRelaxed() {
  // tsg:mo(monotonic counter; readers tolerate staleness)
  return g_count.load(std::memory_order_relaxed);  // OK
}

}  // namespace fixture
