// Known-bad fixture: trips tsg-layering and nothing else. The test lends
// this file the path src/common/layering.cc, so the runtime include below
// is a back-edge against the declared DAG (runtime depends on common, not
// the other way around). Not compiled.
#include "common/status.h"
#include "runtime/cluster.h"

namespace fixture {
void useBoth() {}
}  // namespace fixture
