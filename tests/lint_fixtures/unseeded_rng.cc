// Known-bad fixture: trips tsg-unseeded-rng and nothing else.
// Not compiled — consumed by tests/test_tsglint.cc as analyzer input.
#include <cstdlib>
#include <random>

namespace fixture {

int ambientRandomness() {
  std::mt19937 gen(42);  // violation: bypasses common/rng
  return static_cast<int>(gen());
}

// `myrand(` and `.rand(` must not trip: the rule wants the bare libc call.
int myrand() { return 7; }

}  // namespace fixture
