// Known-bad fixture: trips tsg-lock-order and nothing else. Two methods
// acquire the same pair of mutexes in opposite orders — the classic ABBA
// deadlock. Not compiled.
#include <mutex>

namespace fixture {

struct Pair {
  void forward() {
    std::lock_guard a(mu_a_);
    std::lock_guard b(mu_b_);  // edge: mu_a_ -> mu_b_
  }
  void backward() {
    std::lock_guard b(mu_b_);
    std::lock_guard a(mu_a_);  // edge: mu_b_ -> mu_a_ — closes the cycle
  }
  std::mutex mu_a_;
  std::mutex mu_b_;
};

}  // namespace fixture
