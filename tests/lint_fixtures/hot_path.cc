// Known-bad fixture: trips tsg-hot-path and nothing else.
// Not compiled — consumed by tests/test_tsglint.cc as analyzer input.
#include <mutex>
#include <string>

namespace fixture {

std::mutex g_mu;

// tsg:hot
int* hotAllocates(int n) {
  std::lock_guard guard(g_mu);  // violation: blocking lock in hot region
  return new int[n];            // violation: allocation in hot region
}

int* coldAllocates(int n) {
  return new int[n];  // fine: not a hot region
}

}  // namespace fixture
