// Recovery test matrix — the headline fault-tolerance guarantee: for every
// shipped algorithm, killing a worker at any instrumented site (compute,
// barrier, slice-load) on any victim partition, or dropping a delivery
// batch, must leave the run's semantic outputs byte-identical to a
// fault-free run. Each cell arms one fault, runs with a checkpoint store,
// and compares canonical digests against the disarmed baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "algorithms/tdsp.h"
#include "algorithms/tdsp_vertex.h"
#include "algorithms/topn.h"
#include "algorithms/wcc.h"
#include "check/digest.h"
#include "gofs/checkpoint.h"
#include "gofs/dataset.h"
#include "gofs/instance_provider.h"
#include "runtime/fault_injector.h"
#include "vertexcentric/programs.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;
using testing::unwrap;

constexpr std::uint32_t kPartitions = 3;
constexpr std::uint32_t kTimesteps = 5;

struct RoadEnv {
  GraphTemplatePtr tmpl = smallRoad(8, 8);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = roadCollection(tmpl, kTimesteps);
  std::size_t latency_attr = tmpl->edgeSchema().requireIndex("latency");
};

struct SocialEnv {
  GraphTemplatePtr tmpl = smallSocial(64);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = tweetCollection(tmpl, kTimesteps);
  std::size_t tweets_attr = tmpl->vertexSchema().requireIndex("tweets");
};

std::int64_t metricTotal(const RunStats& stats, const std::string& name) {
  std::int64_t total = 0;
  for (const auto& point : stats.metrics()) {
    if (point.name == name) {
      total += point.value;
    }
  }
  return total;
}

// One algorithm run: its canonical output digest plus the recovery count
// from the run's metrics delta.
struct MatrixRun {
  std::string digest;
  std::int64_t recoveries = 0;
};
using Runner = std::function<MatrixRun(CheckpointStore*)>;

// One fault per cell: three kill sites x two victim partitions, plus a
// dropped delivery batch (delivery faults hit the whole exchange, so the
// partition filter is the wildcard).
std::vector<fault::FaultSpec> cellsFor(Timestep fault_t) {
  std::vector<fault::FaultSpec> cells;
  for (const fault::Site site :
       {fault::Site::kCompute, fault::Site::kBarrier,
        fault::Site::kSliceLoad}) {
    for (const PartitionId victim : {PartitionId{0}, PartitionId{2}}) {
      fault::FaultSpec spec;
      spec.site = site;
      spec.action = fault::Action::kKill;
      spec.partition = victim;
      spec.timestep = fault_t;
      cells.push_back(spec);
    }
  }
  fault::FaultSpec drop;
  drop.site = fault::Site::kDeliver;
  drop.action = fault::Action::kDrop;
  drop.timestep = fault_t;
  cells.push_back(drop);
  return cells;
}

void expectEveryCellRecovers(const Runner& run, Timestep fault_t) {
  auto& injector = fault::FaultInjector::global();
  injector.disarm();
  const MatrixRun baseline = run(nullptr);
  ASSERT_EQ(baseline.recoveries, 0);
  ASSERT_FALSE(baseline.digest.empty());

  for (const fault::FaultSpec& cell : cellsFor(fault_t)) {
    SCOPED_TRACE(std::string(fault::actionName(cell.action)) + "@" +
                 std::string(fault::siteName(cell.site)) + " p=" +
                 std::to_string(cell.partition) + " t=" +
                 std::to_string(cell.timestep));
    MemoryCheckpointStore store;
    injector.arm({cell}, 7);
    const MatrixRun faulted = run(&store);
    injector.disarm();
    EXPECT_GE(faulted.recoveries, 1);
    EXPECT_EQ(faulted.digest, baseline.digest);
  }
}

TEST(FaultMatrix, Tdsp) {
  RoadEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        TdspOptions options;
        options.latency_attr = env.latency_attr;
        options.checkpoint_store = store;
        const auto run = runTdsp(env.pg, provider, options);
        check::Digest d;
        d.addDoubles(run.tdsp);
        d.addVector(run.finalized_at,
                    [](check::Digest& dd, Timestep t) { dd.addI64(t); });
        d.addI64(run.exec.timesteps_executed);
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/1);
}

TEST(FaultMatrix, Meme) {
  SocialEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        MemeOptions options;
        options.tweets_attr = env.tweets_attr;
        options.checkpoint_store = store;
        const auto run = runMemeTracking(env.pg, provider, options);
        check::Digest d;
        d.addVector(run.colored_at,
                    [](check::Digest& dd, Timestep t) { dd.addI64(t); });
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/1);
}

TEST(FaultMatrix, Hashtag) {
  SocialEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        HashtagOptions options;
        options.tweets_attr = env.tweets_attr;
        options.checkpoint_store = store;
        const auto run = runHashtagAggregation(env.pg, provider, options);
        check::Digest d;
        d.addU64s(run.counts);
        d.addI64s(run.rate_of_change);
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/1);
}

TEST(FaultMatrix, PageRank) {
  RoadEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        PageRankOptions options;
        options.checkpoint_store = store;
        const auto run = runSubgraphPageRank(env.pg, provider, options);
        check::Digest d;
        d.addDoubles(run.ranks);
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/0);
}

TEST(FaultMatrix, Sssp) {
  RoadEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        SsspOptions options;
        options.latency_attr = env.latency_attr;
        options.checkpoint_store = store;
        const auto run = runSubgraphSssp(env.pg, provider, options);
        check::Digest d;
        d.addDoubles(run.distances);
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/0);
}

TEST(FaultMatrix, Wcc) {
  RoadEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        WccOptions options;
        options.checkpoint_store = store;
        const auto run = runSubgraphWcc(env.pg, provider, options);
        check::Digest d;
        d.addVector(run.component,
                    [](check::Digest& dd, VertexIndex v) { dd.addU64(v); });
        d.addU64(run.num_components);
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/0);
}

TEST(FaultMatrix, TopN) {
  SocialEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        TopNOptions options;
        options.tweets_attr = env.tweets_attr;
        // Checkpointing requires the serial temporal mode; the concurrent
        // default has no timestep-boundary cut to checkpoint at.
        options.temporal_mode = TemporalMode::kSerial;
        options.checkpoint_store = store;
        const auto run = runTopActiveVertices(env.pg, provider, options);
        check::Digest d;
        d.addU64(run.top.size());
        for (const auto& per_t : run.top) {
          d.addVector(per_t,
                      [](check::Digest& dd, VertexIndex v) { dd.addU64(v); });
        }
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/1);
}

TEST(FaultMatrix, TdspVertex) {
  RoadEnv env;
  expectEveryCellRecovers(
      [&](CheckpointStore* store) {
        DirectInstanceProvider provider(env.pg, env.coll);
        VertexTdspOptions options;
        options.latency_attr = env.latency_attr;
        options.checkpoint_store = store;
        const auto run = runVertexTdsp(env.pg, provider, options);
        check::Digest d;
        d.addDoubles(run.tdsp);
        d.addVector(run.finalized_at,
                    [](check::Digest& dd, Timestep t) { dd.addI64(t); });
        return MatrixRun{d.hex(), metricTotal(run.exec.stats,
                                              "engine.recoveries")};
      },
      /*fault_t=*/1);
}

TEST(FaultMatrix, SsspVertex) {
  RoadEnv env;
  // The single-BSP engine recovers by restarting (no checkpoint store);
  // the store argument is deliberately unused.
  expectEveryCellRecovers(
      [&](CheckpointStore*) {
        vertexcentric::SsspVertexProgram program(0);
        vertexcentric::VertexCentricEngine engine(env.pg);
        const auto run =
            engine.run(program, vertexcentric::VcConfig{},
                       [](VertexIndex) { return vertexcentric::kInf; });
        check::Digest d;
        d.addDoubles(run.values);
        d.addI64(run.supersteps);
        return MatrixRun{d.hex(),
                         metricTotal(run.stats, "engine.recoveries")};
      },
      /*fault_t=*/0);
}

// Transient faults (delays) must be absorbed in place: same digest, zero
// recoveries, and the straggler sleep shows up in the metrics delta.
TEST(FaultMatrix, TransientDelaysAreAbsorbedWithoutRecovery) {
  RoadEnv env;
  auto& injector = fault::FaultInjector::global();
  injector.disarm();

  const auto runOnce = [&]() {
    DirectInstanceProvider provider(env.pg, env.coll);
    TdspOptions options;
    options.latency_attr = env.latency_attr;
    const auto run = runTdsp(env.pg, provider, options);
    check::Digest d;
    d.addDoubles(run.tdsp);
    d.addI64(run.exec.timesteps_executed);
    return MatrixRun{d.hex(),
                     metricTotal(run.exec.stats, "engine.recoveries")};
  };
  const MatrixRun baseline = runOnce();

  injector.arm(unwrap(fault::parseFaultPlan(
                   "delay@compute:p1:t1:d500,delay@deliver:t1:d500")),
               7);
  const MatrixRun delayed = runOnce();
  EXPECT_GE(injector.totalFired(), 2u);
  injector.disarm();
  EXPECT_EQ(delayed.recoveries, 0);
  EXPECT_EQ(delayed.digest, baseline.digest);
}

// Transient GoFS slice-load failures retry with backoff inside the lazy
// provider — no recovery, same answer, and the retries are counted.
TEST(FaultMatrix, SliceLoadFailuresRetryWithoutRecovery) {
  RoadEnv env;
  testing::TempDir tmp("tsg_fault_gofs");
  GofsOptions gofs;
  gofs.temporal_packing = 3;
  gofs.subgraph_binning = 2;
  ASSERT_TRUE(
      writeGofsDataset(tmp.path(), "fault-mini", env.pg, env.coll, gofs)
          .isOk());
  auto ds = unwrap(GofsDataset::open(tmp.path()));

  auto& injector = fault::FaultInjector::global();
  injector.disarm();
  const auto runOnce = [&]() {
    auto provider = ds.makeProvider();
    SsspOptions options;
    options.latency_attr = env.latency_attr;
    const auto run = runSubgraphSssp(ds.partitionedGraph(), *provider,
                                     options);
    check::Digest d;
    d.addDoubles(run.distances);
    return std::pair<std::string, std::int64_t>(
        d.hex(), metricTotal(run.exec.stats, "gofs.load_retries"));
  };
  const auto baseline = runOnce();

  injector.arm(unwrap(fault::parseFaultPlan("fail@slice-load:p0:t0:x2")), 7);
  const auto faulted = runOnce();
  injector.disarm();
  EXPECT_EQ(faulted.first, baseline.first);
  EXPECT_GE(faulted.second, 2);
}

// Checkpoint cadence: a fault-free run with a store writes the initial
// (pristine) checkpoint plus one per executed timestep.
TEST(FaultMatrix, CheckpointCadenceIsOnePerTimestepPlusInitial) {
  RoadEnv env;
  fault::FaultInjector::global().disarm();
  DirectInstanceProvider provider(env.pg, env.coll);
  MemoryCheckpointStore store;
  TdspOptions options;
  options.latency_attr = env.latency_attr;
  options.checkpoint_store = &store;
  const auto run = runTdsp(env.pg, provider, options);
  EXPECT_EQ(store.saves(),
            static_cast<std::uint64_t>(run.exec.timesteps_executed) + 1);
  EXPECT_EQ(metricTotal(run.exec.stats, "engine.checkpoints"),
            run.exec.timesteps_executed + 1);
}

// Plan-string syntax: round-trip and the loud rejection of combinations no
// hook implements (a plan that could never fire must not run fault-free).
TEST(FaultMatrix, ParseFaultPlanValidatesActionSiteCombinations) {
  const auto plan = unwrap(fault::parseFaultPlan(
      "kill@compute:p1:t2,drop@deliver:t1,fail@slice-load:p0:t1:x2,"
      "delay@deliver:d5000"));
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].site, fault::Site::kCompute);
  EXPECT_EQ(plan[0].action, fault::Action::kKill);
  EXPECT_EQ(plan[0].partition, 1u);
  EXPECT_EQ(plan[0].timestep, 2);
  EXPECT_EQ(plan[2].fires, 2);
  EXPECT_EQ(plan[3].delay_us, 5000);

  EXPECT_FALSE(fault::parseFaultPlan("kill@deliver").isOk());
  EXPECT_FALSE(fault::parseFaultPlan("drop@compute").isOk());
  EXPECT_FALSE(fault::parseFaultPlan("fail@barrier").isOk());
  EXPECT_FALSE(fault::parseFaultPlan("").isOk());
}

}  // namespace
}  // namespace tsg
