// Incremental TI-BSP over the streaming front door: for every shipped
// algorithm and both superstep schedules, running against sealed timesteps
// as they stream in must produce byte-identical semantic outputs to the
// cold batch run. Also covers the incremental-skip accounting on a sparse
// stream and worker-kill recovery while the stream is live.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "algorithms/tdsp.h"
#include "algorithms/tdsp_vertex.h"
#include "algorithms/topn.h"
#include "algorithms/wcc.h"
#include "check/digest.h"
#include "common/metrics.h"
#include "gofs/checkpoint.h"
#include "gofs/instance_provider.h"
#include "runtime/fault_injector.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "stream/source.h"
#include "vertexcentric/engine.h"
#include "vertexcentric/programs.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;

constexpr std::uint32_t kPartitions = 3;
constexpr std::uint32_t kTimesteps = 5;

struct RoadEnv {
  GraphTemplatePtr tmpl = smallRoad(8, 8);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = roadCollection(tmpl, kTimesteps);
  std::size_t latency_attr = tmpl->edgeSchema().requireIndex("latency");
};

struct SocialEnv {
  GraphTemplatePtr tmpl = smallSocial(64);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = tweetCollection(tmpl, kTimesteps);
  std::size_t tweets_attr = tmpl->vertexSchema().requireIndex("tweets");
};

// Canonical semantic digest of one run over an arbitrary provider — the
// same values tsgcli's check harness hashes, never timings or metrics.
std::string algoDigest(const std::string& algo, const PartitionedGraph& pg,
                       InstanceProvider& provider, Schedule schedule,
                       TimestepStream* stream, CheckpointStore* store,
                       std::size_t attr) {
  check::Digest d;
  if (algo == "tdsp") {
    TdspOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    options.latency_attr = attr;
    const auto run = runTdsp(pg, provider, options);
    d.addDoubles(run.tdsp);
    d.addVector(run.finalized_at,
                [](check::Digest& dd, Timestep t) { dd.addI64(t); });
    d.addI64(run.exec.timesteps_executed);
  } else if (algo == "meme") {
    MemeOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    options.tweets_attr = attr;
    const auto run = runMemeTracking(pg, provider, options);
    d.addVector(run.colored_at,
                [](check::Digest& dd, Timestep t) { dd.addI64(t); });
  } else if (algo == "hashtag") {
    HashtagOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    options.tweets_attr = attr;
    const auto run = runHashtagAggregation(pg, provider, options);
    d.addU64s(run.counts);
    d.addI64s(run.rate_of_change);
  } else if (algo == "pagerank") {
    PageRankOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    const auto run = runSubgraphPageRank(pg, provider, options);
    d.addDoubles(run.ranks);
  } else if (algo == "sssp") {
    SsspOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    options.latency_attr = attr;
    const auto run = runSubgraphSssp(pg, provider, options);
    d.addDoubles(run.distances);
  } else if (algo == "wcc") {
    WccOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    const auto run = runSubgraphWcc(pg, provider, options);
    d.addVector(run.component,
                [](check::Digest& dd, VertexIndex v) { dd.addU64(v); });
    d.addU64(run.num_components);
  } else if (algo == "topn") {
    TopNOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    if (stream != nullptr) {
      options.temporal_mode = TemporalMode::kSerial;
    }
    options.tweets_attr = attr;
    const auto run = runTopActiveVertices(pg, provider, options);
    d.addU64(run.top.size());
    for (const auto& per_t : run.top) {
      d.addVector(per_t,
                  [](check::Digest& dd, VertexIndex v) { dd.addU64(v); });
    }
  } else if (algo == "tdsp-vertex") {
    VertexTdspOptions options;
    options.schedule = schedule;
    options.stream = stream;
    options.checkpoint_store = store;
    options.latency_attr = attr;
    const auto run = runVertexTdsp(pg, provider, options);
    d.addDoubles(run.tdsp);
    d.addVector(run.finalized_at,
                [](check::Digest& dd, Timestep t) { dd.addI64(t); });
  } else if (algo == "sssp-vertex") {
    // Non-temporal engine: no timestep loop to stream, so the streamed
    // path's contract is simply "identical to itself" — documented by the
    // CLI falling back to the batch run.
    vertexcentric::SsspVertexProgram program(0);
    vertexcentric::VertexCentricEngine engine(pg);
    const auto run =
        engine.run(program, vertexcentric::VcConfig{},
                   [](VertexIndex) { return vertexcentric::kInf; });
    d.addDoubles(run.values);
    d.addI64(run.supersteps);
  } else {
    ADD_FAILURE() << "unknown algo " << algo;
  }
  return d.hex();
}

std::string batchDigest(const std::string& algo, const PartitionedGraph& pg,
                        const TimeSeriesCollection& coll, Schedule schedule,
                        std::size_t attr) {
  DirectInstanceProvider provider(pg, coll);
  return algoDigest(algo, pg, provider, schedule, /*stream=*/nullptr,
                    /*store=*/nullptr, attr);
}

// Runs the algorithm against a live ingest thread: events replayed through
// a bounded seal queue, engine awaiting each timestep as it seals.
std::string streamedDigest(const std::string& algo,
                           const PartitionedGraph& pg,
                           const TimeSeriesCollection& coll,
                           Schedule schedule, std::size_t attr,
                           CheckpointStore* store = nullptr) {
  stream::SealQueue queue(3);
  stream::IngestorOptions options;
  options.planned_timesteps =
      static_cast<std::int32_t>(coll.numInstances());
  stream::StreamIngestor ingestor(pg.templatePtr(), pg, coll.t0(),
                                  coll.delta(), queue, options);
  stream::StreamingInstanceProvider provider(pg, pg.templatePtr(),
                                             coll.numInstances(), coll.t0(),
                                             coll.delta(), queue);
  stream::MemoryEventSource source;
  source.push(stream::eventsFromCollection(coll));
  source.close();

  stream::IngestThread thread(ingestor, source);
  const std::string digest =
      algoDigest(algo, pg, provider, schedule, &provider, store, attr);
  // Drain seals the run never consumed (while-mode early exit, engines
  // that ignore the provider) so the ingest thread's push unblocks.
  stream::SealedTimestep leftover;
  while (queue.pop(leftover)) {
  }
  EXPECT_TRUE(thread.join().isOk());
  return digest;
}

TEST(IncrementalDigestMatrix, StreamedMatchesBatchForEveryAlgorithm) {
  RoadEnv road;
  SocialEnv social;
  struct Cell {
    const char* algo;
    bool social;
  };
  const Cell cells[] = {
      {"tdsp", false},    {"sssp", false},   {"tdsp-vertex", false},
      {"sssp-vertex", false}, {"pagerank", false}, {"wcc", false},
      {"meme", true},     {"hashtag", true}, {"topn", true},
  };
  for (const Cell& cell : cells) {
    const auto& pg = cell.social ? social.pg : road.pg;
    const auto& coll = cell.social ? social.coll : road.coll;
    const std::size_t attr =
        cell.social ? social.tweets_attr : road.latency_attr;
    const std::string reference =
        batchDigest(cell.algo, pg, coll, Schedule::kBsp, attr);
    ASSERT_FALSE(reference.empty());
    for (const Schedule schedule : {Schedule::kBsp, Schedule::kAsync}) {
      SCOPED_TRACE(std::string(cell.algo) + " " +
                   (schedule == Schedule::kBsp ? "bsp" : "async"));
      EXPECT_EQ(streamedDigest(cell.algo, pg, coll, schedule, attr),
                reference);
    }
  }
}

TEST(IncrementalSkip, SparseMemeStreamSkipsCleanSubgraphsBothSchedules) {
  // hit probability 0: the meme never spreads past the seeds, so after the
  // first timestep most subgraphs receive no messages and stay clean —
  // exactly the subgraphs the incremental skip must elide.
  auto tmpl = smallSocial(64);
  const auto pg = partitionGraph(tmpl, kPartitions);
  const auto coll = tweetCollection(tmpl, 6, /*hit_probability=*/0.0);
  const std::size_t tweets_attr =
      tmpl->vertexSchema().requireIndex("tweets");

  const std::string reference =
      batchDigest("meme", pg, coll, Schedule::kBsp, tweets_attr);
  auto& skipped =
      MetricsRegistry::global().counter("engine.subgraphs_skipped_incremental");
  for (const Schedule schedule : {Schedule::kBsp, Schedule::kAsync}) {
    SCOPED_TRACE(schedule == Schedule::kBsp ? "bsp" : "async");
    const std::uint64_t before = skipped.value();
    EXPECT_EQ(streamedDigest("meme", pg, coll, schedule, tweets_attr),
              reference);
    EXPECT_GT(skipped.value(), before);
  }
}

TEST(IncrementalSkip, BatchRunsNeverSkip) {
  // Without a stream attached there is no dirty oracle, so the batch path
  // must not touch the skip counter even for a skippable program.
  SocialEnv env;
  auto& skipped =
      MetricsRegistry::global().counter("engine.subgraphs_skipped_incremental");
  const std::uint64_t before = skipped.value();
  batchDigest("meme", env.pg, env.coll, Schedule::kBsp, env.tweets_attr);
  EXPECT_EQ(skipped.value(), before);
}

TEST(IncrementalFaultRecovery, KillAtComputeMidStreamRecoversAndMatches) {
  // A worker dies at the compute site while later timesteps are still
  // streaming in. The rollback replays from the checkpoint; the provider
  // retains sealed timesteps, so the replayed awaits are re-entrant and
  // the digest stays byte-identical to the fault-free batch run.
  RoadEnv road;
  SocialEnv social;
  auto& injector = fault::FaultInjector::global();
  injector.disarm();
  const std::string tdsp_baseline =
      batchDigest("tdsp", road.pg, road.coll, Schedule::kBsp,
                  road.latency_attr);
  const std::string meme_baseline =
      batchDigest("meme", social.pg, social.coll, Schedule::kBsp,
                  social.tweets_attr);

  for (const PartitionId victim : {PartitionId{0}, PartitionId{2}}) {
    SCOPED_TRACE("victim partition " + std::to_string(victim));
    fault::FaultSpec spec;
    spec.site = fault::Site::kCompute;
    spec.action = fault::Action::kKill;
    spec.partition = victim;
    spec.timestep = 2;

    {
      MemoryCheckpointStore store;
      injector.arm({spec}, 7);
      const std::string digest =
          streamedDigest("tdsp", road.pg, road.coll, Schedule::kBsp,
                         road.latency_attr, &store);
      injector.disarm();
      EXPECT_EQ(digest, tdsp_baseline);
    }
    {
      // The skippable program recovers too: skipped subgraphs voted halt
      // before the kill, and the replay re-derives the same skips.
      MemoryCheckpointStore store;
      injector.arm({spec}, 7);
      const std::string digest =
          streamedDigest("meme", social.pg, social.coll, Schedule::kBsp,
                         social.tweets_attr, &store);
      injector.disarm();
      EXPECT_EQ(digest, meme_baseline);
    }
  }
}

}  // namespace
}  // namespace tsg
