#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "test_util.h"

namespace tsg {
namespace {

// Every test drives the one process-wide tracer, so serialize state resets.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::instance().clear(); }
  void TearDown() override { Tracer::instance().clear(); }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    TraceSpan span("test", "outer");
    traceInstant("test", "marker");
    traceCounter("test.counter", 7);
  }
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(TraceTest, SpansNestByTimestampContainment) {
  Tracer::instance().start();
  {
    TraceSpan outer("test", "outer");
    {
      TraceSpan inner("test", "inner", "k", 42);
    }
  }
  Tracer::instance().stop();

  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const auto outer_it =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "outer";
      });
  const auto inner_it =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "inner";
      });
  ASSERT_NE(outer_it, events.end());
  ASSERT_NE(inner_it, events.end());
  EXPECT_EQ(outer_it->phase, 'X');
  // Inner interval lies inside the outer one.
  EXPECT_GE(inner_it->ts_ns, outer_it->ts_ns);
  EXPECT_LE(inner_it->ts_ns + inner_it->dur_ns,
            outer_it->ts_ns + outer_it->dur_ns);
  EXPECT_STREQ(inner_it->k1, "k");
  EXPECT_EQ(inner_it->v1, 42);
}

TEST_F(TraceTest, InstantAndCounterPhases) {
  Tracer::instance().start();
  traceInstant("test", "marker", "n", 3);
  traceCounter("test.counter", 11);
  Tracer::instance().stop();

  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const auto instant_it =
      std::find_if(events.begin(), events.end(),
                   [](const TraceEvent& e) { return e.phase == 'i'; });
  const auto counter_it =
      std::find_if(events.begin(), events.end(),
                   [](const TraceEvent& e) { return e.phase == 'C'; });
  ASSERT_NE(instant_it, events.end());
  ASSERT_NE(counter_it, events.end());
  EXPECT_EQ(instant_it->v1, 3);
  EXPECT_EQ(counter_it->v1, 11);
}

TEST_F(TraceTest, MergesBuffersAcrossThreads) {
  Tracer::instance().start();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      Tracer::setCurrentThreadName("worker-" + std::to_string(i));
      for (int j = 0; j < kSpansPerThread; ++j) {
        TraceSpan span("test", "work", "i", i, "j", j);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  Tracer::instance().stop();

  EXPECT_EQ(Tracer::instance().eventCount(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  const auto json = Tracer::instance().toJson();
  EXPECT_TRUE(testing::isValidJson(json)) << json.substr(0, 400);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_NE(json.find("worker-" + std::to_string(i)), std::string::npos);
  }
}

TEST_F(TraceTest, JsonExportIsWellFormedAndPerfettoShaped) {
  Tracer::instance().start();
  {
    TraceSpan span("cat", "na\"me\\with\nescapes", "x", -5);
    traceCounter("msgs", 123);
  }
  Tracer::instance().stop();

  const auto json = Tracer::instance().toJson();
  EXPECT_TRUE(testing::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(TraceTest, StartDropsEarlierEvents) {
  Tracer::instance().start();
  { TraceSpan span("test", "first"); }
  ASSERT_EQ(Tracer::instance().eventCount(), 1u);
  Tracer::instance().start();  // restart clears the first run's events
  { TraceSpan span("test", "second"); }
  Tracer::instance().stop();
  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second");
}

TEST_F(TraceTest, StopGatesNewEvents) {
  Tracer::instance().start();
  { TraceSpan span("test", "kept"); }
  Tracer::instance().stop();
  { TraceSpan span("test", "dropped"); }
  traceCounter("test.counter", 1);
  EXPECT_EQ(Tracer::instance().eventCount(), 1u);
}

// --- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistry, CounterAndGaugeRoundTrip) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  auto& g = registry.gauge("g");
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  // Same name resolves to the same cell.
  registry.counter("c").increment();
  EXPECT_EQ(c.value(), 6u);
}

TEST(MetricsRegistry, PartitionLabelsAreDistinctCells) {
  MetricsRegistry registry;
  registry.counter("packs", 0).add(2);
  registry.counter("packs", 1).add(7);
  registry.counter("packs").add(1);  // kNoPartition is its own cell
  EXPECT_EQ(registry.counter("packs", 0).value(), 2u);
  EXPECT_EQ(registry.counter("packs", 1).value(), 7u);
  EXPECT_EQ(registry.counter("packs").value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b", 1).add(1);
  registry.counter("a").add(2);
  registry.gauge("b", 0).set(9);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[1].partition, 0);
  EXPECT_TRUE(snap[1].is_gauge);
  EXPECT_EQ(snap[2].name, "b");
  EXPECT_EQ(snap[2].partition, 1);
  EXPECT_EQ(snap[2].value, 1);
}

TEST(MetricsRegistry, SnapshotDeltaDiffsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  registry.counter("msgs").add(10);
  registry.counter("idle").add(3);
  registry.gauge("pack").set(1);
  const auto before = registry.snapshot();

  registry.counter("msgs").add(5);
  registry.counter("fresh").add(2);  // appears only after `before`
  registry.gauge("pack").set(4);
  const auto after = registry.snapshot();

  const auto delta = snapshotDelta(before, after);
  // "idle" didn't move → dropped; gauges keep the after value.
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta[0].name, "fresh");
  EXPECT_EQ(delta[0].value, 2);
  EXPECT_EQ(delta[1].name, "msgs");
  EXPECT_EQ(delta[1].value, 5);
  EXPECT_EQ(delta[2].name, "pack");
  EXPECT_EQ(delta[2].value, 4);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  c.add(42);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  EXPECT_EQ(registry.counter("c").value(), 1u);
}

TEST(MetricsRegistry, ConcurrentFeedsAreLossless) {
  MetricsRegistry registry;
  auto& c = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) {
        c.increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

}  // namespace
}  // namespace tsg
