#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "runtime/message_bus.h"
#include "test_util.h"

namespace tsg {
namespace {

// Every test drives the one process-wide tracer, so serialize state resets.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::instance().clear(); }
  void TearDown() override { Tracer::instance().clear(); }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    TraceSpan span("test", "outer");
    traceInstant("test", "marker");
    traceCounter("test.counter", 7);
  }
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(TraceTest, SpansNestByTimestampContainment) {
  Tracer::instance().start();
  {
    TraceSpan outer("test", "outer");
    {
      TraceSpan inner("test", "inner", "k", 42);
    }
  }
  Tracer::instance().stop();

  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const auto outer_it =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "outer";
      });
  const auto inner_it =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "inner";
      });
  ASSERT_NE(outer_it, events.end());
  ASSERT_NE(inner_it, events.end());
  EXPECT_EQ(outer_it->phase, 'X');
  // Inner interval lies inside the outer one.
  EXPECT_GE(inner_it->ts_ns, outer_it->ts_ns);
  EXPECT_LE(inner_it->ts_ns + inner_it->dur_ns,
            outer_it->ts_ns + outer_it->dur_ns);
  EXPECT_STREQ(inner_it->k1, "k");
  EXPECT_EQ(inner_it->v1, 42);
}

TEST_F(TraceTest, InstantAndCounterPhases) {
  Tracer::instance().start();
  traceInstant("test", "marker", "n", 3);
  traceCounter("test.counter", 11);
  Tracer::instance().stop();

  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const auto instant_it =
      std::find_if(events.begin(), events.end(),
                   [](const TraceEvent& e) { return e.phase == 'i'; });
  const auto counter_it =
      std::find_if(events.begin(), events.end(),
                   [](const TraceEvent& e) { return e.phase == 'C'; });
  ASSERT_NE(instant_it, events.end());
  ASSERT_NE(counter_it, events.end());
  EXPECT_EQ(instant_it->v1, 3);
  EXPECT_EQ(counter_it->v1, 11);
}

TEST_F(TraceTest, MergesBuffersAcrossThreads) {
  Tracer::instance().start();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      Tracer::setCurrentThreadName("worker-" + std::to_string(i));
      for (int j = 0; j < kSpansPerThread; ++j) {
        TraceSpan span("test", "work", "i", i, "j", j);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  Tracer::instance().stop();

  EXPECT_EQ(Tracer::instance().eventCount(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  const auto json = Tracer::instance().toJson();
  EXPECT_TRUE(testing::isValidJson(json)) << json.substr(0, 400);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_NE(json.find("worker-" + std::to_string(i)), std::string::npos);
  }
}

TEST_F(TraceTest, JsonExportIsWellFormedAndPerfettoShaped) {
  Tracer::instance().start();
  {
    TraceSpan span("cat", "na\"me\\with\nescapes", "x", -5);
    traceCounter("msgs", 123);
  }
  Tracer::instance().stop();

  const auto json = Tracer::instance().toJson();
  EXPECT_TRUE(testing::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(TraceTest, StartDropsEarlierEvents) {
  Tracer::instance().start();
  { TraceSpan span("test", "first"); }
  ASSERT_EQ(Tracer::instance().eventCount(), 1u);
  Tracer::instance().start();  // restart clears the first run's events
  { TraceSpan span("test", "second"); }
  Tracer::instance().stop();
  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second");
}

TEST_F(TraceTest, StopGatesNewEvents) {
  Tracer::instance().start();
  { TraceSpan span("test", "kept"); }
  Tracer::instance().stop();
  { TraceSpan span("test", "dropped"); }
  traceCounter("test.counter", 1);
  EXPECT_EQ(Tracer::instance().eventCount(), 1u);
}

// --- Flow events --------------------------------------------------------

std::size_t countOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST_F(TraceTest, FlowEventsShareOneIdAcrossStartStepFinish) {
  Tracer::instance().start();
  const std::uint64_t id = nextFlowId();
  traceFlowStart("test", "flow", id);
  traceFlowStep("test", "flow", id);
  traceFlowFinish("test", "flow", id);
  Tracer::instance().stop();

  const auto events = Tracer::instance().snapshotEvents();
  ASSERT_EQ(events.size(), 3u);
  std::string phases;
  for (const auto& e : events) {
    EXPECT_EQ(e.flow_id, id);
    phases += e.phase;
  }
  std::sort(phases.begin(), phases.end());
  EXPECT_EQ(phases, "fst");

  const auto json = Tracer::instance().toJson();
  EXPECT_TRUE(testing::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // The finish binds to its enclosing slice (Perfetto arrow-to-span).
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // All three endpoints reference the same flow id.
  EXPECT_EQ(countOccurrences(json, "\"id\":" + std::to_string(id)), 3u);
}

TEST_F(TraceTest, DisabledTracerEmitsNoFlows) {
  const std::uint64_t id = nextFlowId();
  traceFlowStart("test", "flow", id);
  traceFlowStep("test", "flow", id);
  traceFlowFinish("test", "flow", id);
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(TraceTest, NextFlowIdIsUniqueAndNonzero) {
  const std::uint64_t a = nextFlowId();
  const std::uint64_t b = nextFlowId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TraceTest, BusBatchFlowPairsFromSendToDrain) {
  Tracer::instance().start();
  const auto hists_before = MetricsRegistry::global().histogramSnapshot();
  MessageBus bus(2);
  bus.send(0, 1, Message{});
  bus.send(0, 1, Message{});  // second send joins the open batch, same flow
  bus.deliver();

  auto& inbox = bus.inbox(1);
  ASSERT_EQ(inbox.batches().size(), 1u);
  ASSERT_EQ(inbox.flowIds().size(), 1u);
  const std::uint64_t id = inbox.flowIds()[0];
  EXPECT_NE(id, 0u);
  inbox.clear();  // drain point: emits the flow finish
  Tracer::instance().stop();

  const auto events = Tracer::instance().snapshotEvents();
  int starts = 0;
  int steps = 0;
  int finishes = 0;
  for (const auto& e : events) {
    if (e.flow_id != id) {
      continue;
    }
    starts += e.phase == 's';
    steps += e.phase == 't';
    finishes += e.phase == 'f';
  }
  EXPECT_EQ(starts, 1);    // one batch -> one flow, not one per message
  EXPECT_EQ(steps, 1);     // the deliver() hand-off
  EXPECT_EQ(finishes, 1);  // the drain

  const auto json = Tracer::instance().toJson();
  EXPECT_TRUE(testing::isValidJson(json)) << json.substr(0, 400);
  EXPECT_EQ(countOccurrences(json, "\"id\":" + std::to_string(id)), 3u);

  // The delivery also feeds the batch-size histogram: one batch, 2 messages.
  const auto delta = histogramDelta(
      hists_before, MetricsRegistry::global().histogramSnapshot());
  const auto it = std::find_if(
      delta.begin(), delta.end(),
      [](const auto& h) { return h.name == "bus.batch_messages"; });
  ASSERT_NE(it, delta.end());
  EXPECT_EQ(it->count, 1u);
  EXPECT_EQ(it->sum, 2u);
}

TEST_F(TraceTest, InjectedBatchesCarryNoFlow) {
  Tracer::instance().start();
  MessageBus bus(2);
  std::vector<Message> seeds(3);
  bus.inject(1, std::move(seeds));
  auto& inbox = bus.inbox(1);
  ASSERT_EQ(inbox.flowIds().size(), 1u);
  EXPECT_EQ(inbox.flowIds()[0], 0u);
  inbox.clear();
  Tracer::instance().stop();
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

// --- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistry, CounterAndGaugeRoundTrip) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  auto& g = registry.gauge("g");
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  // Same name resolves to the same cell.
  registry.counter("c").increment();
  EXPECT_EQ(c.value(), 6u);
}

TEST(MetricsRegistry, PartitionLabelsAreDistinctCells) {
  MetricsRegistry registry;
  registry.counter("packs", 0).add(2);
  registry.counter("packs", 1).add(7);
  registry.counter("packs").add(1);  // kNoPartition is its own cell
  EXPECT_EQ(registry.counter("packs", 0).value(), 2u);
  EXPECT_EQ(registry.counter("packs", 1).value(), 7u);
  EXPECT_EQ(registry.counter("packs").value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b", 1).add(1);
  registry.counter("a").add(2);
  registry.gauge("b", 0).set(9);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[1].partition, 0);
  EXPECT_TRUE(snap[1].is_gauge);
  EXPECT_EQ(snap[2].name, "b");
  EXPECT_EQ(snap[2].partition, 1);
  EXPECT_EQ(snap[2].value, 1);
}

TEST(MetricsRegistry, SnapshotDeltaDiffsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  registry.counter("msgs").add(10);
  registry.counter("idle").add(3);
  registry.gauge("pack").set(1);
  const auto before = registry.snapshot();

  registry.counter("msgs").add(5);
  registry.counter("fresh").add(2);  // appears only after `before`
  registry.gauge("pack").set(4);
  const auto after = registry.snapshot();

  const auto delta = snapshotDelta(before, after);
  // "idle" didn't move → dropped; gauges keep the after value.
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta[0].name, "fresh");
  EXPECT_EQ(delta[0].value, 2);
  EXPECT_EQ(delta[1].name, "msgs");
  EXPECT_EQ(delta[1].value, 5);
  EXPECT_EQ(delta[2].name, "pack");
  EXPECT_EQ(delta[2].value, 4);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  c.add(42);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  EXPECT_EQ(registry.counter("c").value(), 1u);
}

// --- Histogram ----------------------------------------------------------

TEST(Histogram, BucketMappingIsLogarithmic) {
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(1), 1);
  EXPECT_EQ(Histogram::bucketOf(2), 2);
  EXPECT_EQ(Histogram::bucketOf(3), 2);
  EXPECT_EQ(Histogram::bucketOf(4), 3);
  EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::bucketUpperBound(64), ~std::uint64_t{0});
}

TEST(Histogram, RecordQuantileAndMean) {
  MetricsRegistry registry;
  auto& h = registry.histogram("h");
  h.record(1);
  h.record(10);
  h.record(100);
  h.record(1000);
  const auto snaps = registry.histogramSnapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const auto& snap = snaps[0];
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1111u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.quantile(0.0), 1u);   // rank 1 lands in bucket [1, 1]
  EXPECT_EQ(snap.quantile(0.5), 15u);  // rank 2 lands in bucket [8, 15]
  // Top bucket's upper bound (1023) is clamped to the observed max.
  EXPECT_EQ(snap.quantile(1.0), 1000u);
  EXPECT_NEAR(snap.mean(), 277.75, 1e-9);
}

TEST(Histogram, EmptyHistogramReportsZero) {
  MetricsRegistry registry;
  registry.histogram("h");
  const auto snaps = registry.histogramSnapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].count, 0u);
  EXPECT_EQ(snaps[0].quantile(0.5), 0u);
  EXPECT_EQ(snaps[0].mean(), 0.0);
}

TEST(Histogram, MergeAccumulatesShards) {
  MetricsRegistry registry;
  registry.histogram("a", 0).record(3);
  registry.histogram("a", 1).record(300);
  const auto snaps = registry.histogramSnapshot();
  ASSERT_EQ(snaps.size(), 2u);
  auto total = snaps[0];
  total.merge(snaps[1]);
  EXPECT_EQ(total.count, 2u);
  EXPECT_EQ(total.sum, 303u);
  EXPECT_EQ(total.max, 300u);
  EXPECT_EQ(total.quantile(1.0), 300u);
}

TEST(Histogram, DeltaSubtractsAndDropsIdleHistograms) {
  MetricsRegistry registry;
  registry.histogram("hot").record(2);
  registry.histogram("idle").record(5);
  const auto before = registry.histogramSnapshot();
  registry.histogram("hot").record(40);
  const auto after = registry.histogramSnapshot();
  const auto delta = histogramDelta(before, after);
  ASSERT_EQ(delta.size(), 1u);  // "idle" didn't move -> dropped
  EXPECT_EQ(delta[0].name, "hot");
  EXPECT_EQ(delta[0].count, 1u);
  EXPECT_EQ(delta[0].sum, 40u);
  EXPECT_EQ(delta[0].max, 40u);  // after-value (documented approximation)
  const auto bucket_of_2 =
      static_cast<std::size_t>(Histogram::bucketOf(2));
  const auto bucket_of_40 =
      static_cast<std::size_t>(Histogram::bucketOf(40));
  EXPECT_EQ(delta[0].buckets[bucket_of_2], 0u);
  EXPECT_EQ(delta[0].buckets[bucket_of_40], 1u);
}

TEST(Histogram, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  auto& h = registry.histogram("h");
  h.record(9);
  registry.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.record(2);
  EXPECT_EQ(registry.histogram("h").count(), 1u);
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  MetricsRegistry registry;
  auto& h = registry.histogram("c");
  constexpr int kThreads = 4;
  constexpr int kRecords = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h] {
      for (int j = 0; j < kRecords; ++j) {
        h.record(static_cast<std::uint64_t>(j));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kRecords - 1));
}

TEST(Histogram, KindMismatchAborts) {
  MetricsRegistry registry;
  registry.counter("m");
  EXPECT_DEATH(registry.histogram("m"), "different kind");
}

TEST(MetricsRegistry, ConcurrentFeedsAreLossless) {
  MetricsRegistry registry;
  auto& c = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) {
        c.increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

}  // namespace
}  // namespace tsg
