#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace tsg {
namespace {

using testing::smallRoad;
using testing::smallSocial;

// Property sweep: every partitioner must produce a covering, bounded,
// deterministic assignment on both graph families and several k.
class PartitionerProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint32_t, std::string>> {
 protected:
  static std::unique_ptr<Partitioner> make(const std::string& name) {
    if (name == "hash") {
      return std::make_unique<HashPartitioner>();
    }
    if (name == "bfs") {
      return std::make_unique<BfsPartitioner>(17);
    }
    return std::make_unique<LdgPartitioner>(17);
  }
  static GraphTemplatePtr graph(const std::string& family) {
    return family == "road" ? smallRoad(12, 12) : smallSocial(144);
  }
};

TEST_P(PartitionerProperty, CoversEveryVertexWithValidPartition) {
  const auto [family, k, algo] = GetParam();
  const auto tmpl = graph(family);
  const auto assignment = make(algo)->assign(*tmpl, k);
  ASSERT_EQ(assignment.size(), tmpl->numVertices());
  for (const auto p : assignment) {
    EXPECT_LT(p, k);
  }
}

TEST_P(PartitionerProperty, DeterministicAcrossRuns) {
  const auto [family, k, algo] = GetParam();
  const auto tmpl = graph(family);
  EXPECT_EQ(make(algo)->assign(*tmpl, k), make(algo)->assign(*tmpl, k));
}

TEST_P(PartitionerProperty, ReasonablyBalanced) {
  const auto [family, k, algo] = GetParam();
  const auto tmpl = graph(family);
  const auto assignment = make(algo)->assign(*tmpl, k);
  const auto metrics = evaluatePartition(*tmpl, assignment, k);
  // Hash balances statistically; bfs/ldg have an explicit 1.03 cap but the
  // leftover-attachment phase can overflow slightly. Allow generous slack.
  EXPECT_LT(metrics.balance, 1.6) << algo << " on " << family;
  for (const auto size : metrics.part_sizes) {
    EXPECT_GT(size, 0u) << algo << " left an empty partition on " << family;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionerProperty,
    ::testing::Combine(::testing::Values("road", "social"),
                       ::testing::Values(2u, 3u, 6u, 9u),
                       ::testing::Values("hash", "bfs", "ldg")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });

TEST(BfsPartitioner, SinglePartitionIsTrivial) {
  const auto tmpl = smallRoad(5, 5);
  const auto assignment = BfsPartitioner().assign(*tmpl, 1);
  for (const auto p : assignment) {
    EXPECT_EQ(p, 0u);
  }
}

TEST(BfsPartitioner, RoadCutFractionIsTiny) {
  // Table II's left column: contiguous region growing on a lattice cuts a
  // vanishing fraction of edges.
  const auto tmpl = smallRoad(40, 40);
  const auto assignment = BfsPartitioner().assign(*tmpl, 3);
  const auto metrics = evaluatePartition(*tmpl, assignment, 3);
  EXPECT_LT(metrics.cut_fraction, 0.05);
}

TEST(BfsPartitioner, SmallWorldCutsFarMoreThanRoad) {
  // Table II's structural contrast at equal scale and k.
  const auto road = smallRoad(40, 40);
  const auto social = smallSocial(1600);
  const BfsPartitioner partitioner;
  const auto road_metrics =
      evaluatePartition(*road, partitioner.assign(*road, 6), 6);
  const auto social_metrics =
      evaluatePartition(*social, partitioner.assign(*social, 6), 6);
  EXPECT_GT(social_metrics.cut_fraction, 5.0 * road_metrics.cut_fraction);
}

TEST(BfsPartitioner, CutGrowsWithPartitionCount) {
  const auto tmpl = smallSocial(1600);
  const BfsPartitioner partitioner;
  const auto m3 = evaluatePartition(*tmpl, partitioner.assign(*tmpl, 3), 3);
  const auto m9 = evaluatePartition(*tmpl, partitioner.assign(*tmpl, 9), 9);
  EXPECT_GT(m9.cut_fraction, m3.cut_fraction);
}

TEST(HashPartitioner, WorstCaseCutOnRoad) {
  // Hash placement ignores locality: on a lattice nearly every edge is cut
  // once k > 1, which is why it is the reference worst case.
  const auto tmpl = smallRoad(30, 30);
  const auto hash_metrics =
      evaluatePartition(*tmpl, HashPartitioner().assign(*tmpl, 6), 6);
  const auto bfs_metrics =
      evaluatePartition(*tmpl, BfsPartitioner().assign(*tmpl, 6), 6);
  EXPECT_GT(hash_metrics.cut_fraction, 5.0 * bfs_metrics.cut_fraction);
}

TEST(EvaluatePartition, CountsCutEdgesExactly) {
  // 4-cycle split in half: exactly the two crossing edges (4 directed).
  GraphTemplateBuilder builder(/*directed=*/false);
  for (int i = 0; i < 4; ++i) {
    builder.addVertex(i);
  }
  builder.addUndirectedEdge(0, 0, 1);
  builder.addUndirectedEdge(1, 1, 2);
  builder.addUndirectedEdge(2, 2, 3);
  builder.addUndirectedEdge(3, 3, 0);
  const auto tmpl = testing::unwrap(builder.build());
  const PartitionAssignment assignment{0, 0, 1, 1};
  const auto metrics = evaluatePartition(tmpl, assignment, 2);
  EXPECT_EQ(metrics.num_edges, 8u);
  EXPECT_EQ(metrics.cut_edges, 4u);
  EXPECT_DOUBLE_EQ(metrics.cut_fraction, 0.5);
  EXPECT_DOUBLE_EQ(metrics.balance, 1.0);
}

TEST(LdgPartitioner, AssignsIsolatedVertices) {
  GraphTemplateBuilder builder;
  for (int i = 0; i < 10; ++i) {
    builder.addVertex(i);  // no edges at all
  }
  const auto tmpl = testing::unwrap(builder.build());
  const auto assignment = LdgPartitioner().assign(tmpl, 3);
  const auto metrics = evaluatePartition(tmpl, assignment, 3);
  for (const auto size : metrics.part_sizes) {
    EXPECT_GE(size, 3u);  // 10 vertices over 3 partitions: 4/3/3
  }
}

}  // namespace
}  // namespace tsg
