#include "algorithms/tdsp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "algorithms/reference.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::share;
using testing::smallRoad;
using testing::unwrap;

// The paper's Fig. 5a worked example: with δ = 5 the naive SSSP route
// S→E→C estimates 7 min but actually takes 35; TDSP finds S→A (5 min in
// g⁰), waits at A through g¹, then A→C in 4 min during g² — total 14.
class PaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    GraphTemplateBuilder builder(/*directed=*/true);
    builder.edgeSchema().add("latency", AttrType::kDouble);
    for (VertexId id = 0; id < 7; ++id) {  // S,A,B,C,D,E,F = 0..6
      builder.addVertex(id);
    }
    // Edge indices fixed by insertion order.
    builder.addEdge(0, kS, kA);
    builder.addEdge(1, kS, kE);
    builder.addEdge(2, kE, kC);
    builder.addEdge(3, kA, kC);
    builder.addEdge(4, kC, kB);
    builder.addEdge(5, kC, kD);
    builder.addEdge(6, kE, kF);
    tmpl_ = share(unwrap(builder.build()));

    collection_ = TimeSeriesCollection(tmpl_, /*t0=*/0, /*delta=*/5);
    // Latencies keyed by (src, dst); unlisted edges default to 200.
    addInstance({{{kS, kA}, 5}, {{kS, kE}, 2}, {{kE, kC}, 5}, {{kA, kC}, 30}});
    addInstance({{{kS, kA}, 15}, {{kS, kE}, 10}, {{kE, kC}, 30}, {{kA, kC}, 15}});
    addInstance({{{kS, kA}, 15}, {{kS, kE}, 10}, {{kE, kC}, 30}, {{kA, kC}, 4}});
    addInstance({{{kS, kA}, 15}, {{kS, kE}, 10}, {{kC, kB}, 10}, {{kC, kD}, 10}});
    addInstance({{{kS, kA}, 15}, {{kS, kE}, 10}, {{kC, kB}, 10}, {{kC, kD}, 10}});
  }

  // Edge indices are CSR slots (bucketed by source), not insertion order,
  // so latencies are addressed by endpoints.
  void addInstance(
      const std::map<std::pair<VertexIndex, VertexIndex>, double>& values) {
    auto& inst = collection_.appendInstance();
    auto& latencies = inst.edgeCol(0).asDouble();
    std::fill(latencies.begin(), latencies.end(), 200.0);
    for (const auto& [key, latency] : values) {
      bool found = false;
      for (const auto& oe : tmpl_->outEdges(key.first)) {
        if (oe.dst == key.second) {
          latencies[oe.edge] = latency;
          found = true;
        }
      }
      ASSERT_TRUE(found) << key.first << "->" << key.second;
    }
  }

  static constexpr VertexIndex kS = 0, kA = 1, kB = 2, kC = 3, kD = 4,
                               kE = 5, kF = 6;
  GraphTemplatePtr tmpl_;
  TimeSeriesCollection collection_;
};

TEST_F(PaperExample, TdspFindsTheFourteenMinuteRoute) {
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    const auto pg = partitionGraph(tmpl_, k);
    DirectInstanceProvider provider(pg, collection_);
    TdspOptions options;
    options.source = kS;
    options.latency_attr = 0;
    const auto run = runTdsp(pg, provider, options);

    EXPECT_DOUBLE_EQ(run.tdsp[kS], 0.0) << "k=" << k;
    EXPECT_DOUBLE_EQ(run.tdsp[kA], 5.0) << "k=" << k;   // S→A in g0
    EXPECT_DOUBLE_EQ(run.tdsp[kE], 2.0) << "k=" << k;   // S→E in g0
    EXPECT_DOUBLE_EQ(run.tdsp[kC], 14.0) << "k=" << k;  // wait at A, A→C in g2
    EXPECT_EQ(run.finalized_at[kC], 2) << "k=" << k;
    EXPECT_EQ(run.finalized_at[kA], 0) << "k=" << k;
  }
}

TEST_F(PaperExample, NaiveSsspEstimateWouldBeSeven) {
  // Confirms the setup reproduces the paper's suboptimality argument:
  // Dijkstra on g0 alone estimates S→C at 7 via E.
  const auto& weights = collection_.instance(0).edgeCol(0).asDouble();
  const auto dist = reference::dijkstra(*tmpl_, weights, kS);
  EXPECT_DOUBLE_EQ(dist[kC], 7.0);
}

TEST_F(PaperExample, MatchesSequentialReference) {
  const auto expected =
      reference::timeDependentShortestPath(*tmpl_, collection_, 0, kS);
  const auto pg = partitionGraph(tmpl_, 2);
  DirectInstanceProvider provider(pg, collection_);
  TdspOptions options;
  options.source = kS;
  options.latency_attr = 0;
  const auto run = runTdsp(pg, provider, options);
  for (VertexIndex v = 0; v < tmpl_->numVertices(); ++v) {
    EXPECT_EQ(run.finalized_at[v], expected.finalized_at[v]) << v;
    if (!std::isinf(expected.tdsp[v])) {
      EXPECT_NEAR(run.tdsp[v], expected.tdsp[v], 1e-9) << v;
    }
  }
}

// Property sweep: distributed TDSP == sequential reference on random
// road graphs across sizes, partition counts and seeds.
class TdspProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t, int>> {};

TEST_P(TdspProperty, MatchesReference) {
  const auto [size, k, seed] = GetParam();
  auto tmpl = smallRoad(size, size, seed);
  const auto pg = partitionGraph(tmpl, k, seed + 1);
  const auto coll = roadCollection(tmpl, 12, seed + 2, /*delta=*/5);
  DirectInstanceProvider provider(pg, coll);

  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");
  const VertexIndex source =
      static_cast<VertexIndex>((seed * 31) % tmpl->numVertices());

  TdspOptions options;
  options.source = source;
  options.latency_attr = latency;
  const auto run = runTdsp(pg, provider, options);
  const auto expected =
      reference::timeDependentShortestPath(*tmpl, coll, latency, source);

  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    ASSERT_EQ(run.finalized_at[v], expected.finalized_at[v])
        << "vertex " << v << " size=" << size << " k=" << k << " s=" << seed;
    if (expected.finalized_at[v] >= 0) {
      ASSERT_NEAR(run.tdsp[v], expected.tdsp[v], 1e-9) << v;
    } else {
      ASSERT_TRUE(std::isinf(run.tdsp[v])) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TdspProperty,
    ::testing::Combine(::testing::Values(5, 8), ::testing::Values(1u, 3u, 5u),
                       ::testing::Values(2, 9, 21)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Tdsp, WhileModeStopsEarlyOnceAllFinalized) {
  // Generous horizons: everything finalizes within a few timesteps, so
  // While-mode must not touch all 40 instances.
  auto tmpl = smallRoad(6, 6);
  const auto pg = partitionGraph(tmpl, 2);
  RoadInstanceOptions rio;
  rio.num_timesteps = 40;
  rio.min_latency = 0.1;
  rio.max_latency = 0.5;
  rio.delta = 5;
  const auto coll = unwrap(makeRoadInstances(tmpl, rio));
  DirectInstanceProvider provider(pg, coll);

  TdspOptions options;
  options.source = 0;
  options.latency_attr = 0;
  options.while_mode = true;
  const auto run = runTdsp(pg, provider, options);
  EXPECT_LT(run.exec.timesteps_executed, 10);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    EXPECT_GE(run.finalized_at[v], 0) << v;
  }
}

TEST(Tdsp, WhileModeResultsIdenticalToFixedRange) {
  auto tmpl = smallRoad(6, 6, 4);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = roadCollection(tmpl, 15, 8);
  DirectInstanceProvider provider(pg, coll);

  TdspOptions fixed;
  fixed.source = 5;
  fixed.latency_attr = 0;
  fixed.while_mode = false;
  const auto run_fixed = runTdsp(pg, provider, fixed);

  TdspOptions while_mode = fixed;
  while_mode.while_mode = true;
  const auto run_while = runTdsp(pg, provider, while_mode);

  EXPECT_EQ(run_fixed.finalized_at, run_while.finalized_at);
  EXPECT_EQ(run_fixed.tdsp, run_while.tdsp);
  EXPECT_LE(run_while.exec.timesteps_executed,
            run_fixed.exec.timesteps_executed);
}

TEST(Tdsp, FinalizedCounterSumsToReachableVertices) {
  auto tmpl = smallRoad(7, 7);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = roadCollection(tmpl, 20);
  DirectInstanceProvider provider(pg, coll);
  TdspOptions options;
  options.source = 0;
  options.latency_attr = 0;
  const auto run = runTdsp(pg, provider, options);

  std::uint64_t reached = 0;
  for (const auto t : run.finalized_at) {
    reached += t >= 0 ? 1 : 0;
  }
  EXPECT_EQ(run.exec.stats.counterTotal(kTdspFinalizedCounter), reached);
}

TEST(Tdsp, EmitOutputsProducesOneLinePerFinalizedVertex) {
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 20);
  DirectInstanceProvider provider(pg, coll);
  TdspOptions options;
  options.source = 0;
  options.latency_attr = 0;
  options.emit_outputs = true;
  const auto run = runTdsp(pg, provider, options);
  std::uint64_t reached = 0;
  for (const auto t : run.finalized_at) {
    reached += t >= 0 ? 1 : 0;
  }
  EXPECT_EQ(run.exec.outputs.size(), reached);
  for (const auto& line : run.exec.outputs) {
    EXPECT_EQ(line.rfind("tdsp,", 0), 0u) << line;
  }
}

TEST(TdspClosures, MatchesReferenceWithRandomClosures) {
  // isExists support: roads close randomly per timestep; distributed and
  // reference must agree on arrivals and finalization times.
  RoadNetworkOptions topo;
  topo.width = 7;
  topo.height = 7;
  topo.seed = 5;
  auto tmpl = testing::share(testing::unwrap(
      makeRoadNetwork(topo, AttributeSchema{}, roadEdgeSchemaWithClosures())));
  RoadInstanceOptions rio;
  rio.num_timesteps = 12;
  rio.closure_probability = 0.3;
  rio.seed = 6;
  const auto coll = unwrap(makeRoadInstances(tmpl, rio));

  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");
  const std::size_t exists = tmpl->edgeSchema().requireIndex("exists");
  for (const std::uint32_t k : {1u, 3u}) {
    const auto pg = partitionGraph(tmpl, k);
    DirectInstanceProvider provider(pg, coll);
    TdspOptions options;
    options.source = 0;
    options.latency_attr = latency;
    options.exists_attr = exists;
    const auto run = runTdsp(pg, provider, options);
    const auto expected = reference::timeDependentShortestPath(
        *tmpl, coll, latency, 0, exists);
    ASSERT_EQ(run.finalized_at, expected.finalized_at) << "k=" << k;
    for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
      if (expected.finalized_at[v] >= 0) {
        ASSERT_NEAR(run.tdsp[v], expected.tdsp[v], 1e-9) << v;
      }
    }
  }
}

TEST(TdspClosures, AllRoadsClosedStrandsTheSource) {
  RoadNetworkOptions topo;
  topo.width = 4;
  topo.height = 4;
  auto tmpl = testing::share(testing::unwrap(
      makeRoadNetwork(topo, AttributeSchema{}, roadEdgeSchemaWithClosures())));
  RoadInstanceOptions rio;
  rio.num_timesteps = 5;
  rio.closure_probability = 1.0;  // everything closed, always
  const auto coll = unwrap(makeRoadInstances(tmpl, rio));
  const auto pg = partitionGraph(tmpl, 2);
  DirectInstanceProvider provider(pg, coll);
  TdspOptions options;
  options.source = 0;
  options.latency_attr = tmpl->edgeSchema().requireIndex("latency");
  options.exists_attr = tmpl->edgeSchema().requireIndex("exists");
  const auto run = runTdsp(pg, provider, options);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (v == 0) {
      EXPECT_EQ(run.finalized_at[v], 0);
    } else {
      EXPECT_EQ(run.finalized_at[v], -1) << v;
    }
  }
}

TEST(TdspClosures, ClosuresOnlyDelayNeverSpeedUp) {
  RoadNetworkOptions topo;
  topo.width = 6;
  topo.height = 6;
  topo.seed = 9;
  auto tmpl_open = testing::share(testing::unwrap(
      makeRoadNetwork(topo, AttributeSchema{}, roadEdgeSchemaWithClosures())));
  RoadInstanceOptions rio;
  rio.num_timesteps = 10;
  rio.seed = 10;
  rio.closure_probability = 0.0;
  const auto coll_open = unwrap(makeRoadInstances(tmpl_open, rio));
  rio.closure_probability = 0.25;
  const auto coll_closed = unwrap(makeRoadInstances(tmpl_open, rio));

  const std::size_t latency = tmpl_open->edgeSchema().requireIndex("latency");
  const std::size_t exists = tmpl_open->edgeSchema().requireIndex("exists");
  // Same seed generates identical latencies for both collections? No — the
  // closure draws interleave, so compare reference-vs-reference on the SAME
  // collection with and without honoring the exists attribute instead.
  const auto honored = reference::timeDependentShortestPath(
      *tmpl_open, coll_closed, latency, 0, exists);
  const auto ignored = reference::timeDependentShortestPath(
      *tmpl_open, coll_closed, latency, 0);
  for (VertexIndex v = 0; v < tmpl_open->numVertices(); ++v) {
    if (honored.finalized_at[v] >= 0 && ignored.finalized_at[v] >= 0) {
      EXPECT_GE(honored.tdsp[v], ignored.tdsp[v]) << v;
    }
  }
  (void)coll_open;
}

}  // namespace
}  // namespace tsg
