#include "algorithms/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;
using testing::smallSocial;

// One-instance provider over an attribute-less collection: PageRank only
// consumes topology.
struct TopologyFixture {
  explicit TopologyFixture(GraphTemplatePtr t, std::uint32_t k)
      : tmpl(std::move(t)),
        pg(partitionGraph(tmpl, k)),
        collection(tmpl, 0, 1) {
    collection.appendInstance();
    provider = std::make_unique<DirectInstanceProvider>(pg, collection);
  }
  GraphTemplatePtr tmpl;
  PartitionedGraph pg;
  TimeSeriesCollection collection;
  std::unique_ptr<DirectInstanceProvider> provider;
};

class PageRankProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {
};

TEST_P(PageRankProperty, MatchesPowerIteration) {
  const auto [family, k] = GetParam();
  TopologyFixture fx(
      family == "road" ? smallRoad(8, 8) : smallSocial(150), k);
  PageRankOptions options;
  options.iterations = 20;
  const auto run = runSubgraphPageRank(fx.pg, *fx.provider, options);
  const auto expected =
      reference::pageRank(*fx.tmpl, options.damping, options.iterations);
  for (VertexIndex v = 0; v < fx.tmpl->numVertices(); ++v) {
    ASSERT_NEAR(run.ranks[v], expected[v], 1e-12)
        << "vertex " << v << " family=" << family << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageRankProperty,
    ::testing::Combine(::testing::Values("road", "social"),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PageRank, RanksSumToApproximatelyOne) {
  TopologyFixture fx(smallSocial(200), 3);
  PageRankOptions options;
  options.iterations = 30;
  const auto run = runSubgraphPageRank(fx.pg, *fx.provider, options);
  const double sum =
      std::accumulate(run.ranks.begin(), run.ranks.end(), 0.0);
  // Connected undirected graph: no dangling mass, sum preserved.
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, HubsOutrankLeaves) {
  TopologyFixture fx(smallSocial(300), 2);
  PageRankOptions options;
  const auto run = runSubgraphPageRank(fx.pg, *fx.provider, options);
  // The highest-degree vertex must outrank the lowest-degree one.
  VertexIndex hub = 0;
  VertexIndex leaf = 0;
  for (VertexIndex v = 0; v < fx.tmpl->numVertices(); ++v) {
    if (fx.tmpl->outDegree(v) > fx.tmpl->outDegree(hub)) {
      hub = v;
    }
    if (fx.tmpl->outDegree(v) < fx.tmpl->outDegree(leaf)) {
      leaf = v;
    }
  }
  EXPECT_GT(run.ranks[hub], run.ranks[leaf]);
}

TEST(PageRank, ZeroIterationsLeavesUniform) {
  TopologyFixture fx(smallRoad(4, 4), 2);
  PageRankOptions options;
  options.iterations = 0;
  const auto run = runSubgraphPageRank(fx.pg, *fx.provider, options);
  const double uniform = 1.0 / static_cast<double>(fx.tmpl->numVertices());
  for (const double r : run.ranks) {
    EXPECT_DOUBLE_EQ(r, uniform);
  }
}

TEST(PageRank, SuperstepCountIsIterationsPlusOne) {
  TopologyFixture fx(smallRoad(5, 5), 2);
  PageRankOptions options;
  options.iterations = 7;
  const auto run = runSubgraphPageRank(fx.pg, *fx.provider, options);
  // iterations+1 compute supersteps + 1 EndOfTimestep record.
  EXPECT_EQ(run.exec.stats.totalSupersteps(),
            static_cast<std::uint64_t>(options.iterations) + 2);
}

}  // namespace
}  // namespace tsg
