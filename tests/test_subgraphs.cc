#include "partition/partitioned_graph.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;
using testing::smallSocial;
using testing::unwrap;

TEST(PartitionedGraph, RejectsBadAssignments) {
  auto tmpl = smallRoad(4, 4);
  PartitionAssignment wrong_size(3, 0);
  EXPECT_FALSE(PartitionedGraph::build(tmpl, wrong_size, 2).isOk());

  PartitionAssignment out_of_range(tmpl->numVertices(), 0);
  out_of_range[0] = 7;
  EXPECT_FALSE(PartitionedGraph::build(tmpl, out_of_range, 2).isOk());

  EXPECT_FALSE(
      PartitionedGraph::build(nullptr, PartitionAssignment{}, 1).isOk());
}

TEST(PartitionedGraph, PartitionsCoverVerticesAndEdgesDisjointly) {
  auto tmpl = smallRoad(10, 10);
  const auto pg = partitionGraph(tmpl, 3);

  std::vector<int> vertex_seen(tmpl->numVertices(), 0);
  std::vector<int> edge_seen(tmpl->numEdges(), 0);
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    for (const auto v : pg.partition(p).vertices) {
      ++vertex_seen[v];
      EXPECT_EQ(pg.partitionOfVertex(v), p);
    }
    for (const auto e : pg.partition(p).edges) {
      ++edge_seen[e];
      // Edge ownership = partition of its source.
      EXPECT_EQ(pg.partitionOfVertex(tmpl->edgeSrc(e)), p);
    }
  }
  for (const auto count : vertex_seen) {
    EXPECT_EQ(count, 1);
  }
  for (const auto count : edge_seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(PartitionedGraph, LocalIndicesAreDenseInverses) {
  auto tmpl = smallSocial(200);
  const auto pg = partitionGraph(tmpl, 4);
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const auto& part = pg.partition(p);
    for (std::uint32_t i = 0; i < part.vertices.size(); ++i) {
      EXPECT_EQ(pg.localIndexOfVertex(part.vertices[i]), i);
    }
    for (std::uint32_t i = 0; i < part.edges.size(); ++i) {
      EXPECT_EQ(pg.localIndexOfEdge(part.edges[i]), i);
    }
  }
}

TEST(PartitionedGraph, SubgraphsPartitionTheirPartition) {
  auto tmpl = smallRoad(10, 10);
  const auto pg = partitionGraph(tmpl, 3);
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const auto& part = pg.partition(p);
    std::set<VertexIndex> in_subgraphs;
    for (const auto& sg : part.subgraphs) {
      EXPECT_EQ(sg.partition, p);
      for (const auto v : sg.vertices) {
        EXPECT_TRUE(in_subgraphs.insert(v).second)
            << "vertex in two subgraphs";
        EXPECT_EQ(pg.subgraphOfVertex(v), sg.id);
      }
    }
    EXPECT_EQ(in_subgraphs.size(), part.vertices.size());
  }
}

TEST(PartitionedGraph, SubgraphsAreWeaklyConnectedAndMaximal) {
  auto tmpl = smallSocial(300);
  const auto pg = partitionGraph(tmpl, 3);
  const auto& g = *tmpl;
  // Two vertices in the same partition connected by a local edge must share
  // a subgraph (maximality); vertices of one subgraph must be reachable
  // within it (connectivity follows from the union-find construction, so we
  // verify the edge-level invariant both ways).
  for (EdgeIndex e = 0; e < g.numEdges(); ++e) {
    const auto src = g.edgeSrc(e);
    const auto dst = g.edgeDst(e);
    if (pg.partitionOfVertex(src) == pg.partitionOfVertex(dst)) {
      EXPECT_EQ(pg.subgraphOfVertex(src), pg.subgraphOfVertex(dst));
    } else {
      EXPECT_NE(pg.subgraphOfVertex(src), pg.subgraphOfVertex(dst));
    }
  }
}

TEST(PartitionedGraph, RemoteEdgesExactlyTheCutEdges) {
  auto tmpl = smallRoad(8, 8);
  const auto pg = partitionGraph(tmpl, 4);
  const auto& g = *tmpl;

  std::set<EdgeIndex> expected_cut;
  for (EdgeIndex e = 0; e < g.numEdges(); ++e) {
    if (pg.partitionOfVertex(g.edgeSrc(e)) !=
        pg.partitionOfVertex(g.edgeDst(e))) {
      expected_cut.insert(e);
    }
  }

  std::set<EdgeIndex> found;
  std::uint64_t local_total = 0;
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    for (const auto& sg : pg.partition(p).subgraphs) {
      local_total += sg.num_local_edges;
      for (const auto& re : sg.remote_edges) {
        EXPECT_TRUE(found.insert(re.edge).second) << "remote edge duplicated";
        EXPECT_EQ(g.edgeSrc(re.edge), re.src);
        EXPECT_EQ(g.edgeDst(re.edge), re.dst);
        EXPECT_EQ(pg.partitionOfVertex(re.dst), re.dst_partition);
        EXPECT_EQ(pg.subgraphOfVertex(re.dst), re.dst_subgraph);
        EXPECT_NE(re.dst_partition, p);
      }
    }
  }
  EXPECT_EQ(found, expected_cut);
  EXPECT_EQ(local_total + found.size(), g.numEdges());
}

TEST(PartitionedGraph, SubgraphIdsAreGloballySequentialLargestFirst) {
  auto tmpl = smallSocial(200);
  const auto pg = partitionGraph(tmpl, 3);
  SubgraphId expected = 0;
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const auto& subgraphs = pg.partition(p).subgraphs;
    for (std::size_t i = 0; i < subgraphs.size(); ++i) {
      EXPECT_EQ(subgraphs[i].id, expected);
      EXPECT_EQ(pg.partitionOfSubgraph(expected), p);
      EXPECT_EQ(pg.subgraphIndexInPartition(expected),
                static_cast<std::uint32_t>(i));
      if (i > 0) {
        EXPECT_GE(subgraphs[i - 1].vertices.size(),
                  subgraphs[i].vertices.size());
      }
      ++expected;
    }
  }
  EXPECT_EQ(pg.numSubgraphs(), expected);
}

TEST(PartitionedGraph, LargestSubgraphOfReturnsHead) {
  auto tmpl = smallRoad(8, 8);
  const auto pg = partitionGraph(tmpl, 2);
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const auto sg = pg.largestSubgraphOf(p);
    EXPECT_EQ(sg, pg.partition(p).subgraphs.front().id);
  }
}

TEST(PartitionedGraph, SubgraphCountsParamSweep) {
  // The subgraph-centric premise: the number of subgraphs stays modest
  // (one giant component per partition plus a tail).
  for (const std::uint32_t k : {2u, 3u, 6u}) {
    auto tmpl = smallRoad(12, 12);
    const auto pg = partitionGraph(tmpl, k);
    EXPECT_GE(pg.numSubgraphs(), k);
    EXPECT_LE(pg.numSubgraphs(), tmpl->numVertices());
  }
}

}  // namespace
}  // namespace tsg
