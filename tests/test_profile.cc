// Cost-attribution profiler tests: the space-saving sketch's error
// envelope, the AttributionTable JSON round trip, zero-cost-when-off, the
// partition advisor, and the headline conservation invariant — for every
// shipped algorithm, summing the attribution table over a partition's
// subgraphs reproduces the engine meters (SuperstepRecord parts) exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "algorithms/tdsp.h"
#include "algorithms/tdsp_vertex.h"
#include "algorithms/topn.h"
#include "algorithms/wcc.h"
#include "common/json.h"
#include "common/rng.h"
#include "gofs/instance_provider.h"
#include "metrics/report.h"
#include "profile/advisor.h"
#include "metrics/attribution.h"
#include "profile/profiler.h"
#include "profile/sketch.h"
#include "vertexcentric/engine.h"
#include "vertexcentric/programs.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;
using testing::unwrap;

constexpr std::uint32_t kPartitions = 3;
constexpr std::uint32_t kTimesteps = 5;

// --- SpaceSavingSketch ---------------------------------------------------

TEST(SpaceSavingSketch, ExactUnderCapacity) {
  SpaceSavingSketch sketch(8);
  sketch.offer(1, 10);
  sketch.offer(2, 5);
  sketch.offer(1, 3);
  sketch.offer(3, 1);
  EXPECT_EQ(sketch.totalWeight(), 19u);
  const auto top = sketch.topK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 13u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_EQ(top[1].count, 5u);
}

// The paper-grade guarantee (Metwally et al.): for every monitored key,
// count - error <= true <= count, error <= W / k, and any key whose true
// weight exceeds W / k is guaranteed to be monitored.
TEST(SpaceSavingSketch, ErrorEnvelopeUnderOverflow) {
  constexpr std::size_t kCapacity = 16;
  SpaceSavingSketch sketch(kCapacity);
  Rng rng(2015);
  // Skewed stream: key k drawn ~ 1/(k+1), weights 1..4.
  std::map<std::uint64_t, std::uint64_t> truth;
  std::uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniformDouble(1e-9, 1.0);
    const auto key = static_cast<std::uint64_t>(1.0 / u) % 200;
    const auto weight = static_cast<std::uint64_t>(rng.uniformInt(1, 4));
    sketch.offer(key, weight);
    truth[key] += weight;
    total += weight;
  }
  ASSERT_EQ(sketch.totalWeight(), total);
  const std::uint64_t bound = total / kCapacity;
  std::map<std::uint64_t, const SpaceSavingSketch::Entry*> monitored;
  for (const auto& e : sketch.topK()) {
    monitored[e.key] = nullptr;
    EXPECT_LE(e.error, bound);
    EXPECT_GE(e.count, truth[e.key]);               // upper bound
    EXPECT_LE(e.count - e.error, truth[e.key]);     // lower bound
  }
  for (const auto& [key, weight] : truth) {
    if (weight > bound) {
      EXPECT_TRUE(monitored.count(key))
          << "key " << key << " with weight " << weight
          << " > W/k = " << bound << " must be monitored";
    }
  }
}

TEST(SpaceSavingSketch, MergePreservesEnvelope) {
  constexpr std::size_t kCapacity = 8;
  SpaceSavingSketch a(kCapacity);
  SpaceSavingSketch b(kCapacity);
  std::map<std::uint64_t, std::uint64_t> truth;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniformInt(0, 40));
    (i % 2 == 0 ? a : b).offer(key, 1);
    truth[key] += 1;
  }
  a.merge(b);
  EXPECT_EQ(a.totalWeight(), 2000u);
  const std::uint64_t bound = a.totalWeight() / kCapacity;
  for (const auto& e : a.topK()) {
    EXPECT_GE(e.count, truth[e.key]);
    EXPECT_LE(e.count - e.error, truth[e.key]);
    EXPECT_LE(e.error, bound);
  }
}

// --- AttributionTable ----------------------------------------------------

AttributionTable sampleTable() {
  AttributionTable t;
  t.num_partitions = 2;
  t.first_timestep = 3;
  t.num_rows = 2;
  t.sample_every = 4;
  t.subgraphs = {{0, 0, 10, 20, 2}, {1, 0, 5, 8, 1}, {2, 1, 12, 30, 3}};
  t.rows.resize(2, std::vector<SubgraphCosts>(3));
  t.rows[0][0] = {1000, 2, 3, 96, 512};
  t.rows[0][2] = {4000, 1, 1, 32, 700};
  t.rows[1][1] = {500, 1, 0, 0, 128};
  t.msgs_in = {1, 0, 3};
  t.bytes_in = {32, 0, 96};
  t.sched_wait_caused_ns = {1500, 300};
  t.steal_victims = {0, 2};
  t.hot_compute = {{42, 1, 9000, 100}};
  t.hot_fanout = {{17, 0, 12, 0}};
  t.sketch_weight_compute = 9000;
  t.sketch_weight_fanout = 12;
  return t;
}

TEST(Attribution, JsonRoundTrip) {
  const AttributionTable t = sampleTable();
  JsonWriter w;
  attributionToJson(w, t);
  const auto parsed = unwrap(JsonValue::parse(w.str()));
  const AttributionTable back = unwrap(attributionFromJson(parsed));

  EXPECT_EQ(back.schema_version, t.schema_version);
  EXPECT_EQ(back.num_partitions, t.num_partitions);
  EXPECT_EQ(back.first_timestep, t.first_timestep);
  EXPECT_EQ(back.num_rows, t.num_rows);
  EXPECT_EQ(back.sample_every, t.sample_every);
  ASSERT_EQ(back.subgraphs.size(), t.subgraphs.size());
  for (std::size_t i = 0; i < t.subgraphs.size(); ++i) {
    EXPECT_EQ(back.subgraphs[i].partition, t.subgraphs[i].partition);
    EXPECT_EQ(back.subgraphs[i].vertices, t.subgraphs[i].vertices);
    EXPECT_EQ(back.subgraphs[i].remote_edges, t.subgraphs[i].remote_edges);
  }
  ASSERT_EQ(back.rows.size(), t.rows.size());
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    for (std::size_t s = 0; s < t.rows[r].size(); ++s) {
      EXPECT_EQ(back.rows[r][s].compute_ns, t.rows[r][s].compute_ns);
      EXPECT_EQ(back.rows[r][s].computes, t.rows[r][s].computes);
      EXPECT_EQ(back.rows[r][s].msgs_out, t.rows[r][s].msgs_out);
      EXPECT_EQ(back.rows[r][s].bytes_out, t.rows[r][s].bytes_out);
      EXPECT_EQ(back.rows[r][s].resident_bytes, t.rows[r][s].resident_bytes);
    }
  }
  EXPECT_EQ(back.msgs_in, t.msgs_in);
  EXPECT_EQ(back.bytes_in, t.bytes_in);
  EXPECT_EQ(back.sched_wait_caused_ns, t.sched_wait_caused_ns);
  EXPECT_EQ(back.steal_victims, t.steal_victims);
  ASSERT_EQ(back.hot_compute.size(), 1u);
  EXPECT_EQ(back.hot_compute[0].vertex, 42u);
  EXPECT_EQ(back.hot_compute[0].weight, 9000u);
  EXPECT_EQ(back.hot_compute[0].error, 100u);
  EXPECT_EQ(back.sketch_weight_compute, t.sketch_weight_compute);
  EXPECT_EQ(back.sketch_weight_fanout, t.sketch_weight_fanout);
}

TEST(Attribution, RejectsUnknownSchemaVersion) {
  AttributionTable t = sampleTable();
  t.schema_version = 999;
  JsonWriter w;
  attributionToJson(w, t);
  const auto parsed = unwrap(JsonValue::parse(w.str()));
  EXPECT_FALSE(attributionFromJson(parsed).isOk());
}

TEST(Attribution, GiniCoefficient) {
  EXPECT_DOUBLE_EQ(giniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(giniCoefficient({5, 5, 5, 5}), 0.0);
  // One subgraph owns everything: G -> (n-1)/n.
  EXPECT_NEAR(giniCoefficient({0, 0, 0, 100}), 0.75, 1e-9);
  const AttributionTable t = sampleTable();
  EXPECT_GT(t.rowGini(0), 0.0);
  EXPECT_LE(t.rowGini(0), 1.0);
}

TEST(Attribution, TotalsFoldByPartition) {
  const AttributionTable t = sampleTable();
  const auto totals = t.subgraphTotals();
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0].compute_ns, 1000);
  EXPECT_EQ(totals[1].compute_ns, 500);
  const auto per_part = t.partitionComputeNs();
  ASSERT_EQ(per_part.size(), 2u);
  EXPECT_EQ(per_part[0], 1500);
  EXPECT_EQ(per_part[1], 4000);
}

// --- Advisor -------------------------------------------------------------

AttributionTable imbalancedTable() {
  AttributionTable t;
  t.num_partitions = 2;
  t.num_rows = 1;
  // p0 owns two heavy subgraphs (600us + 500us), p1 one light (100us):
  // moving the 500us subgraph to p1 balances the makespan 1.1ms -> 600us.
  t.subgraphs = {{0, 0, 100, 0, 0}, {1, 0, 80, 0, 0}, {2, 1, 20, 0, 0}};
  t.rows.resize(1, std::vector<SubgraphCosts>(3));
  t.rows[0][0] = {600000, 1, 0, 0, 0};
  t.rows[0][1] = {500000, 1, 0, 0, 0};
  t.rows[0][2] = {100000, 1, 0, 0, 0};
  t.msgs_in.resize(3);
  t.bytes_in.resize(3);
  t.sched_wait_caused_ns.resize(2);
  t.steal_victims.resize(2);
  return t;
}

TEST(Advisor, SuggestsMoveForImbalancedPartitions) {
  const AttributionTable t = imbalancedTable();
  const AdvisorReport report = advisePartitioning(t, nullptr);
  ASSERT_TRUE(report.hasSuggestions());
  EXPECT_LT(report.makespan_after_ns, report.makespan_before_ns);
  EXPECT_EQ(report.makespan_before_ns, 1100000);
  // The suggested assignment must reproduce the predicted makespan.
  std::vector<std::int64_t> load(t.num_partitions, 0);
  const auto totals = t.subgraphTotals();
  for (std::size_t sg = 0; sg < totals.size(); ++sg) {
    load[static_cast<std::size_t>(
        report.suggested_subgraph_partition[sg])] += totals[sg].compute_ns;
  }
  EXPECT_EQ(*std::max_element(load.begin(), load.end()),
            report.makespan_after_ns);
  EXPECT_FALSE(report.findings.empty());
}

TEST(Advisor, BalancedTableSuggestsNothing) {
  AttributionTable t = imbalancedTable();
  t.rows[0][0] = {500000, 1, 0, 0, 0};
  t.rows[0][1] = {100000, 1, 0, 0, 0};
  t.rows[0][2] = {500000, 1, 0, 0, 0};
  const AdvisorReport report = advisePartitioning(t, nullptr);
  EXPECT_FALSE(report.hasSuggestions());
  // Identity assignment back.
  for (std::size_t sg = 0; sg < t.subgraphs.size(); ++sg) {
    EXPECT_EQ(report.suggested_subgraph_partition[sg],
              t.subgraphs[sg].partition);
  }
}

// --- Conservation invariant across all nine algorithms -------------------

// Arms the profiler for one scope; sample_every=1 so vertex-centric runs
// sample every vertex (the sketch fan-out weight then reconciles exactly).
class ArmedProfiler {
 public:
  ArmedProfiler() {
    ProfileOptions options;
    options.sample_every = 1;
    options.sketch_capacity = 32;
    Profiler::global().arm(options);
  }
  ~ArmedProfiler() { Profiler::global().disarm(); }
};

// The invariant: per partition, the attribution cells of its subgraphs sum
// to exactly the meters the engine recorded per superstep (which also feed
// the per-partition MetricsRegistry counters).
void expectReconciles(const RunStats& stats) {
  ASSERT_TRUE(stats.hasAttribution());
  const AttributionTable& a = stats.attribution();
  ASSERT_FALSE(a.empty());
  const std::size_t k = a.num_partitions;

  std::vector<std::uint64_t> meter_computes(k, 0);
  std::vector<std::uint64_t> meter_msgs(k, 0);
  std::vector<std::uint64_t> meter_bytes(k, 0);
  for (const auto& rec : stats.supersteps()) {
    for (std::size_t p = 0; p < rec.parts.size() && p < k; ++p) {
      meter_computes[p] += rec.parts[p].subgraphs_computed;
      meter_msgs[p] += rec.parts[p].messages_sent;
      meter_bytes[p] += rec.parts[p].bytes_sent;
    }
  }

  std::vector<std::uint64_t> attrib_computes(k, 0);
  std::vector<std::uint64_t> attrib_msgs(k, 0);
  std::vector<std::uint64_t> attrib_bytes(k, 0);
  std::uint64_t out_msgs = 0;
  std::uint64_t out_bytes = 0;
  for (const auto& row : a.rows) {
    for (std::size_t sg = 0; sg < row.size(); ++sg) {
      const auto p = static_cast<std::size_t>(a.subgraphs[sg].partition);
      ASSERT_LT(p, k);
      attrib_computes[p] += row[sg].computes;
      attrib_msgs[p] += row[sg].msgs_out;
      attrib_bytes[p] += row[sg].bytes_out;
      out_msgs += row[sg].msgs_out;
      out_bytes += row[sg].bytes_out;
    }
  }
  for (std::size_t p = 0; p < k; ++p) {
    EXPECT_EQ(attrib_computes[p], meter_computes[p]) << "partition " << p;
    EXPECT_EQ(attrib_msgs[p], meter_msgs[p]) << "partition " << p;
    EXPECT_EQ(attrib_bytes[p], meter_bytes[p]) << "partition " << p;
  }

  // Every send charges the destination too: in == out, conserved.
  std::uint64_t in_msgs = 0;
  std::uint64_t in_bytes = 0;
  for (std::size_t sg = 0; sg < a.msgs_in.size(); ++sg) {
    in_msgs += a.msgs_in[sg];
    in_bytes += a.bytes_in[sg];
  }
  EXPECT_EQ(in_msgs, out_msgs);
  EXPECT_EQ(in_bytes, out_bytes);
}

struct RoadEnv {
  GraphTemplatePtr tmpl = smallRoad(8, 8);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = roadCollection(tmpl, kTimesteps);
  std::size_t latency_attr = tmpl->edgeSchema().requireIndex("latency");
};

struct SocialEnv {
  GraphTemplatePtr tmpl = smallSocial(64);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = tweetCollection(tmpl, kTimesteps);
  std::size_t tweets_attr = tmpl->vertexSchema().requireIndex("tweets");
};

TEST(ProfileReconciliation, Tdsp) {
  RoadEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  TdspOptions options;
  options.latency_attr = env.latency_attr;
  expectReconciles(runTdsp(env.pg, provider, options).exec.stats);
}

TEST(ProfileReconciliation, Meme) {
  SocialEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  MemeOptions options;
  options.tweets_attr = env.tweets_attr;
  expectReconciles(runMemeTracking(env.pg, provider, options).exec.stats);
}

TEST(ProfileReconciliation, Hashtag) {
  SocialEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  HashtagOptions options;
  options.tweets_attr = env.tweets_attr;
  expectReconciles(
      runHashtagAggregation(env.pg, provider, options).exec.stats);
}

TEST(ProfileReconciliation, PageRank) {
  RoadEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  expectReconciles(
      runSubgraphPageRank(env.pg, provider, PageRankOptions{}).exec.stats);
}

TEST(ProfileReconciliation, Sssp) {
  RoadEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  SsspOptions options;
  options.latency_attr = env.latency_attr;
  expectReconciles(runSubgraphSssp(env.pg, provider, options).exec.stats);
}

TEST(ProfileReconciliation, Wcc) {
  RoadEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  expectReconciles(
      runSubgraphWcc(env.pg, provider, WccOptions{}).exec.stats);
}

TEST(ProfileReconciliation, TopN) {
  SocialEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  TopNOptions options;
  options.tweets_attr = env.tweets_attr;
  expectReconciles(
      runTopActiveVertices(env.pg, provider, options).exec.stats);
}

TEST(ProfileReconciliation, TdspVertex) {
  RoadEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  VertexTdspOptions options;
  options.latency_attr = env.latency_attr;
  expectReconciles(runVertexTdsp(env.pg, provider, options).exec.stats);
}

TEST(ProfileReconciliation, SsspVertex) {
  RoadEnv env;
  ArmedProfiler armed;
  vertexcentric::SsspVertexProgram program(0);
  vertexcentric::VertexCentricEngine engine(env.pg);
  const auto run =
      engine.run(program, vertexcentric::VcConfig{},
                 [](VertexIndex) { return vertexcentric::kInf; });
  expectReconciles(run.stats);

  // Vertex engines feed the heavy-hitter sketches; at sample_every=1 the
  // fan-out sketch weight is exactly the total message count.
  const AttributionTable& a = run.stats.attribution();
  EXPECT_FALSE(a.hot_compute.empty());
  EXPECT_GT(a.sketch_weight_compute, 0u);
  std::uint64_t total_msgs = 0;
  for (const auto& rec : run.stats.supersteps()) {
    for (const auto& part : rec.parts) {
      total_msgs += part.messages_sent;
    }
  }
  EXPECT_EQ(a.sketch_weight_fanout, total_msgs);
}

// --- Lifecycle -----------------------------------------------------------

TEST(Profiler, DisarmedRunRecordsNothing) {
  Profiler::global().disarm();
  SocialEnv env;
  DirectInstanceProvider provider(env.pg, env.coll);
  MemeOptions options;
  options.tweets_attr = env.tweets_attr;
  const auto run = runMemeTracking(env.pg, provider, options);
  EXPECT_FALSE(Profiler::enabled());
  EXPECT_FALSE(run.exec.stats.hasAttribution());
}

TEST(Profiler, HooksAreNoOpsOutsideRunWindow) {
  ArmedProfiler armed;
  // Armed but no beginRun(): every hook must be a harmless no-op.
  Profiler::global().recordCompute(0, 0, 100);
  Profiler::global().recordSend(0, 1, 0, 8);
  Profiler::global().recordVertexSample(0, 3, 50, 2);
  Profiler::global().recordResidentSlice(0, 0, 4096);
  Profiler::global().recordWaitCaused(0, 10);
  Profiler::global().recordStealVictim(0);
  Profiler::global().resetRowsFrom(0);
  const AttributionTable t = Profiler::global().take();
  EXPECT_TRUE(t.empty());
}

// Attribution survives the full RunStats JSON round trip (what `tsgcli
// analyze --attrib` consumes from an exported run).
TEST(Profiler, AttributionRoundTripsThroughRunStatsJson) {
  SocialEnv env;
  ArmedProfiler armed;
  DirectInstanceProvider provider(env.pg, env.coll);
  MemeOptions options;
  options.tweets_attr = env.tweets_attr;
  const auto run = runMemeTracking(env.pg, provider, options);
  ASSERT_TRUE(run.exec.stats.hasAttribution());

  const std::string doc = runStatsToJson(run.exec.stats, "profile-test");
  const auto loaded = unwrap(runStatsFromJson(doc));
  ASSERT_TRUE(loaded.stats.hasAttribution());
  const AttributionTable& before = run.exec.stats.attribution();
  const AttributionTable& after = loaded.stats.attribution();
  EXPECT_EQ(after.numSubgraphs(), before.numSubgraphs());
  EXPECT_EQ(after.num_rows, before.num_rows);
  EXPECT_EQ(after.subgraphTotals().size(), before.subgraphTotals().size());
  EXPECT_EQ(after.partitionComputeNs(), before.partitionComputeNs());
}

}  // namespace
}  // namespace tsg
