#include "graph/attribute.h"

#include <gtest/gtest.h>

namespace tsg {
namespace {

TEST(AttributeSchema, AddAndLookup) {
  AttributeSchema schema;
  EXPECT_TRUE(schema.empty());
  const auto latency = schema.add("latency", AttrType::kDouble);
  const auto tweets = schema.add("tweets", AttrType::kStringList);
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.indexOf("latency"), latency);
  EXPECT_EQ(schema.indexOf("tweets"), tweets);
  EXPECT_EQ(schema.indexOf("nope"), AttributeSchema::npos);
  EXPECT_EQ(schema.requireIndex("latency"), latency);
  EXPECT_EQ(schema.at(latency).type, AttrType::kDouble);
}

TEST(AttributeSchema, DuplicateNameAborts) {
  AttributeSchema schema;
  schema.add("x", AttrType::kInt64);
  EXPECT_DEATH(schema.add("x", AttrType::kDouble), "duplicate attribute");
}

TEST(AttributeSchema, RequireMissingAborts) {
  AttributeSchema schema;
  EXPECT_DEATH((void)schema.requireIndex("ghost"), "missing required");
}

TEST(AttributeSchema, SerializeRoundtrip) {
  AttributeSchema schema;
  schema.add("a", AttrType::kInt64);
  schema.add("b", AttrType::kDouble);
  schema.add("c", AttrType::kBool);
  schema.add("d", AttrType::kString);
  schema.add("e", AttrType::kStringList);
  BinaryWriter w;
  schema.serialize(w);
  BinaryReader r(w.buffer());
  auto parsed = AttributeSchema::deserialize(r);
  ASSERT_TRUE(parsed.isOk());
  EXPECT_EQ(parsed.value(), schema);
}

TEST(AttributeColumn, MakeInitializesByType) {
  auto ints = AttributeColumn::make(AttrType::kInt64, 4);
  EXPECT_EQ(ints.type(), AttrType::kInt64);
  EXPECT_EQ(ints.size(), 4u);
  EXPECT_EQ(ints.asInt64()[3], 0);

  auto doubles = AttributeColumn::make(AttrType::kDouble, 2);
  EXPECT_DOUBLE_EQ(doubles.asDouble()[0], 0.0);

  auto bools = AttributeColumn::make(AttrType::kBool, 2);
  EXPECT_EQ(bools.asBool()[1], 0);

  auto strings = AttributeColumn::make(AttrType::kString, 2);
  EXPECT_TRUE(strings.asString()[0].empty());

  auto lists = AttributeColumn::make(AttrType::kStringList, 2);
  EXPECT_TRUE(lists.asStringList()[1].empty());
}

TEST(AttributeColumn, TypeMismatchAborts) {
  auto col = AttributeColumn::make(AttrType::kDouble, 2);
  EXPECT_DEATH((void)col.asInt64(), "TSG_CHECK");
}

TEST(AttributeColumn, GatherSelectsByIndex) {
  auto col = AttributeColumn::make(AttrType::kInt64, 5);
  for (int i = 0; i < 5; ++i) {
    col.asInt64()[i] = 10 * i;
  }
  const std::vector<std::uint32_t> indices{4, 0, 2};
  const auto gathered = col.gather(indices);
  ASSERT_EQ(gathered.size(), 3u);
  EXPECT_EQ(gathered.asInt64()[0], 40);
  EXPECT_EQ(gathered.asInt64()[1], 0);
  EXPECT_EQ(gathered.asInt64()[2], 20);
}

TEST(AttributeColumn, GatherOutOfRangeAborts) {
  auto col = AttributeColumn::make(AttrType::kInt64, 2);
  const std::vector<std::uint32_t> bad{5};
  EXPECT_DEATH((void)col.gather(bad), "TSG_CHECK");
}

TEST(AttributeColumn, ScatterInvertsGather) {
  auto col = AttributeColumn::make(AttrType::kStringList, 6);
  for (int i = 0; i < 6; ++i) {
    col.asStringList()[i] = {"#tag" + std::to_string(i)};
  }
  const std::vector<std::uint32_t> indices{5, 1, 3};
  const auto gathered = col.gather(indices);

  auto restored = AttributeColumn::make(AttrType::kStringList, 6);
  restored.scatterFrom(gathered, indices);
  for (const auto i : indices) {
    EXPECT_EQ(restored.asStringList()[i], col.asStringList()[i]);
  }
  EXPECT_TRUE(restored.asStringList()[0].empty());  // untouched slot
}

TEST(AttributeColumn, ScatterSizeMismatchAborts) {
  auto dst = AttributeColumn::make(AttrType::kDouble, 4);
  auto src = AttributeColumn::make(AttrType::kDouble, 2);
  const std::vector<std::uint32_t> indices{0, 1, 2};
  EXPECT_DEATH(dst.scatterFrom(src, indices), "TSG_CHECK");
}

TEST(AttributeColumn, SerializeRoundtripAllTypes) {
  for (const auto type :
       {AttrType::kInt64, AttrType::kDouble, AttrType::kBool,
        AttrType::kString, AttrType::kStringList}) {
    auto col = AttributeColumn::make(type, 3);
    switch (type) {
      case AttrType::kInt64:
        col.asInt64() = {-1, 0, 42};
        break;
      case AttrType::kDouble:
        col.asDouble() = {1.5, -2.5, 0.0};
        break;
      case AttrType::kBool:
        col.asBool() = {1, 0, 1};
        break;
      case AttrType::kString:
        col.asString() = {"a", "", "c"};
        break;
      case AttrType::kStringList:
        col.asStringList() = {{"#a", "#b"}, {}, {"#c"}};
        break;
    }
    BinaryWriter w;
    col.serialize(w);
    BinaryReader r(w.buffer());
    auto parsed = AttributeColumn::deserialize(r);
    ASSERT_TRUE(parsed.isOk()) << attrTypeName(type);
    EXPECT_EQ(parsed.value(), col) << attrTypeName(type);
    EXPECT_TRUE(r.atEnd());
  }
}

TEST(AttributeColumn, DeserializeRejectsBadTypeTag) {
  BinaryWriter w;
  w.writeU8(1);    // version
  w.writeU8(200);  // bogus type
  BinaryReader r(w.buffer());
  auto parsed = AttributeColumn::deserialize(r);
  EXPECT_FALSE(parsed.isOk());
}

TEST(AttrTypeName, AllNamed) {
  EXPECT_EQ(attrTypeName(AttrType::kInt64), "int64");
  EXPECT_EQ(attrTypeName(AttrType::kStringList), "string_list");
}

}  // namespace
}  // namespace tsg
