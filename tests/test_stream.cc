// Streaming front door: property tests (arrival-order independence of the
// sealed instances), boundary cases of the seal triggers, source behavior
// (tail, truncation) and fuzzing of the TSEV wire codec. The streamed ==
// batch algorithm matrix lives in test_incremental.cc.
#include "stream/ingestor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "graph/collection.h"
#include "stream/builder.h"
#include "stream/event.h"
#include "stream/replay.h"
#include "stream/source.h"
#include "test_util.h"

namespace tsg {
namespace {

using stream::AttrValue;
using stream::DecodedFrame;
using stream::EventTarget;
using stream::GraphEvent;
using testing::expectProvidersAgree;
using testing::partitionGraph;
using testing::smallSocial;
using testing::tinyTemplate;
using testing::tweetCollection;
using testing::unwrap;

// Bundles queue + ingestor + provider in construction order and drives the
// whole pipeline: ingest thread pushing seals, this thread awaiting them.
class StreamHarness {
 public:
  StreamHarness(const PartitionedGraph& pg, std::size_t planned,
                std::int64_t t0, std::int64_t delta,
                std::size_t queue_cap = 2, std::size_t max_staged = 0)
      : queue_(queue_cap),
        ingestor_(pg.templatePtr(), pg, t0, delta, queue_,
                  makeOptions(planned, max_staged)),
        provider_(pg, pg.templatePtr(), planned, t0, delta, queue_) {}

  Status run(std::vector<GraphEvent> events, std::int64_t await_delay_us = 0) {
    stream::MemoryEventSource source;
    source.push(std::move(events));
    source.close();
    return run(source, await_delay_us);
  }

  Status run(stream::EventSource& source, std::int64_t await_delay_us = 0) {
    stream::IngestThread thread(ingestor_, source);
    for (Timestep t = 0;
         t < static_cast<Timestep>(provider_.numInstances()); ++t) {
      if (await_delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(await_delay_us));
      }
      if (!provider_.awaitTimestep(t)) {
        break;
      }
    }
    // Drain any seals the engine side never consumed (aborted stream) so
    // the ingest thread's backpressure block releases before the join.
    stream::SealedTimestep leftover;
    while (queue_.pop(leftover)) {
    }
    return thread.join();
  }

  stream::StreamIngestor& ingestor() { return ingestor_; }
  stream::StreamingInstanceProvider& provider() { return provider_; }
  stream::SealQueue& queue() { return queue_; }

 private:
  static stream::IngestorOptions makeOptions(std::size_t planned,
                                             std::size_t max_staged) {
    stream::IngestorOptions options;
    options.planned_timesteps = static_cast<std::int32_t>(planned);
    options.max_staged_cells = max_staged;
    return options;
  }

  stream::SealQueue queue_;
  stream::StreamIngestor ingestor_;
  stream::StreamingInstanceProvider provider_;
};

// Events of one timestep share a timestamp and arrive contiguously from
// eventsFromCollection; the ingestor's contract only covers reordering
// WITHIN a timestep window, so shuffle each equal-timestamp run and splice
// in duplicates (idempotent by the winner rule).
std::vector<GraphEvent> shuffleWithinTimesteps(
    const std::vector<GraphEvent>& events, Rng& rng,
    std::size_t dup_every = 0) {
  std::vector<GraphEvent> out;
  out.reserve(events.size());
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t j = i;
    while (j < events.size() &&
           events[j].timestamp == events[i].timestamp) {
      ++j;
    }
    std::vector<GraphEvent> window(events.begin() + i, events.begin() + j);
    if (dup_every > 0) {
      for (std::size_t k = 0; k < window.size(); k += dup_every) {
        window.push_back(
            window[rng.uniformBelow(std::max<std::size_t>(1, k + 1))]);
      }
    }
    for (std::size_t k = window.size(); k > 1; --k) {
      std::swap(window[k - 1], window[rng.uniformBelow(k)]);
    }
    out.insert(out.end(), std::make_move_iterator(window.begin()),
               std::make_move_iterator(window.end()));
    i = j;
  }
  return out;
}

// "active" (kBool) is attribute 1 of tinyTemplate's vertex schema.
GraphEvent activeEvent(std::int64_t ts, std::uint32_t index, bool v) {
  GraphEvent ev;
  ev.target = EventTarget::kVertex;
  ev.timestamp = ts;
  ev.attr = 1;
  ev.index = index;
  ev.value = AttrValue::ofBool(v);
  return ev;
}

// --- Property: arrival order within a window never changes the seal ------

TEST(StreamPipeline, ShuffledAndDuplicatedEventsSealIdenticalInstances) {
  auto tmpl = smallSocial(48);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = tweetCollection(tmpl, 8);
  const auto base = stream::eventsFromCollection(coll);
  ASSERT_FALSE(base.empty());

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    auto events = shuffleWithinTimesteps(base, rng, /*dup_every=*/3);
    StreamHarness h(pg, coll.numInstances(), coll.t0(), coll.delta());
    ASSERT_TRUE(h.run(std::move(events)).isOk());
    ASSERT_EQ(h.provider().sealedCount(), coll.numInstances());
    EXPECT_EQ(h.ingestor().lateEvents(), 0u);
    for (Timestep t = 0; t < static_cast<Timestep>(coll.numInstances());
         ++t) {
      EXPECT_EQ(h.provider().sealedInstance(t), coll.instance(t))
          << "t=" << t;
    }
    EXPECT_LE(h.queue().maxDepth(), h.queue().capacity());
    if (seed == 1) {
      // The gathered per-partition slices agree with the direct provider,
      // so the engine sees byte-identical inputs to a batch run.
      expectProvidersAgree(pg, coll, h.provider());
    }
  }
}

TEST(StreamPipeline, EventFileRoundtripMatchesMemoryReplay) {
  auto tmpl = smallSocial(32);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 5);
  const auto events = stream::eventsFromCollection(coll);

  testing::TempDir tmp{"tsg_stream_file"};
  std::filesystem::create_directories(tmp.path());
  const std::string path = tmp.path() + "/events.tsev";
  ASSERT_TRUE(stream::writeEventFile(path, events).isOk());

  stream::FileTailSource source(path, /*follow=*/false);
  StreamHarness h(pg, coll.numInstances(), coll.t0(), coll.delta());
  ASSERT_TRUE(h.run(source).isOk());
  ASSERT_EQ(h.provider().sealedCount(), coll.numInstances());
  for (Timestep t = 0; t < static_cast<Timestep>(coll.numInstances()); ++t) {
    EXPECT_EQ(h.provider().sealedInstance(t), coll.instance(t)) << "t=" << t;
  }
}

// --- Boundary cases of the seal triggers ---------------------------------

TEST(StreamPipeline, EmptyTimestepSealsCarriedCopy) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  // Windows (t0=0, delta=10): event at ts 0 -> window 0, event at ts 25 ->
  // window 2. Window 1 has no events and the plan runs to 4, so timestep 1
  // (watermark gap) and timestep 3 (end-of-source padding) must both seal
  // as carried copies with their own timestep/timestamp identity.
  StreamHarness h(pg, 4, 0, 10);
  ASSERT_TRUE(
      h.run({activeEvent(0, 0, true), activeEvent(25, 1, true)}).isOk());
  ASSERT_EQ(h.provider().sealedCount(), 4u);
  const auto& i0 = h.provider().sealedInstance(0);
  const auto& i1 = h.provider().sealedInstance(1);
  const auto& i2 = h.provider().sealedInstance(2);
  const auto& i3 = h.provider().sealedInstance(3);
  EXPECT_EQ(i1.timestep(), 1);
  EXPECT_EQ(i1.timestamp(), 10);
  EXPECT_EQ(i1.vertexCol(1), i0.vertexCol(1));  // carried, not zeroed
  EXPECT_EQ(i2.vertexCol(1).asBool()[1], 1u);
  EXPECT_EQ(i3.vertexCol(1), i2.vertexCol(1));
  EXPECT_EQ(i3.timestep(), 3);
}

TEST(StreamPipeline, SingleEventStream) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  StreamHarness h(pg, 1, 0, 10);
  ASSERT_TRUE(h.run({activeEvent(3, 0, true)}).isOk());
  ASSERT_EQ(h.provider().sealedCount(), 1u);
  EXPECT_EQ(h.ingestor().eventsIngested(), 1u);
  EXPECT_EQ(h.provider().sealedInstance(0).vertexCol(1).asBool()[0], 1u);
}

TEST(StreamPipeline, SizeTriggerSealsExactlyAtThresholdAndRollsForward) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  // max_staged_cells = 2: the second staged cell fires the seal exactly at
  // the threshold. The third event still carries a window-0 timestamp but
  // arrives after the force-seal, so it rolls forward into timestep 1.
  StreamHarness h(pg, 3, 0, 10, /*queue_cap=*/2, /*max_staged=*/2);
  ASSERT_TRUE(h.run({activeEvent(0, 0, true), activeEvent(1, 1, true),
                     activeEvent(2, 0, false), activeEvent(21, 1, false)})
                  .isOk());
  ASSERT_EQ(h.provider().sealedCount(), 3u);
  EXPECT_EQ(h.ingestor().lateEvents(), 0u);
  const auto& i0 = h.provider().sealedInstance(0);
  EXPECT_EQ(i0.vertexCol(1).asBool()[0], 1u);  // sealed with exactly the
  EXPECT_EQ(i0.vertexCol(1).asBool()[1], 1u);  // two threshold cells
  const auto& i1 = h.provider().sealedInstance(1);
  EXPECT_EQ(i1.vertexCol(1).asBool()[0], 0u);  // straggler rolled forward
  EXPECT_EQ(i1.vertexCol(1).asBool()[1], 1u);
  EXPECT_EQ(h.provider().sealedInstance(2).vertexCol(1).asBool()[1], 0u);
}

TEST(StreamPipeline, WatermarkDropsCrossTimestepStragglers) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  StreamHarness h(pg, 3, 0, 10);
  // The ts=2 event arrives after the watermark already sealed window 0
  // (no size trigger involved), so it must be counted late and dropped.
  ASSERT_TRUE(h.run({activeEvent(0, 0, true), activeEvent(25, 1, true),
                     activeEvent(2, 0, false)})
                  .isOk());
  ASSERT_EQ(h.provider().sealedCount(), 3u);
  EXPECT_EQ(h.ingestor().lateEvents(), 1u);
  // The dropped write never lands: vertex 0 stays at its carried value.
  EXPECT_EQ(h.provider().sealedInstance(2).vertexCol(1).asBool()[0], 1u);
}

TEST(StreamPipeline, BackpressureBoundsQueueDepth) {
  auto tmpl = smallSocial(32);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 10);
  // A slow consumer (capacity 1, delayed awaits) forces the ingest thread
  // to block on every push; the high-water mark proves backpressure held
  // the line instead of the queue growing.
  StreamHarness h(pg, coll.numInstances(), coll.t0(), coll.delta(),
                  /*queue_cap=*/1);
  ASSERT_TRUE(h.run(stream::eventsFromCollection(coll),
                    /*await_delay_us=*/200)
                  .isOk());
  EXPECT_EQ(h.ingestor().sealedTimesteps(), coll.numInstances());
  EXPECT_LE(h.queue().maxDepth(), 1u);
}

TEST(StreamPipeline, DirtyBitmapTracksActualChangesOnly) {
  auto tmpl = smallSocial(48);
  const auto pg = partitionGraph(tmpl, 3);
  ASSERT_GT(pg.numSubgraphs(), 1u);
  const auto coll = tweetCollection(tmpl, 1);
  auto events = stream::eventsFromCollection(coll);

  // Timestep 1: one real change on vertex 0 plus a no-op rewrite of vertex
  // 1's carried value. Only vertex 0's subgraph may come out dirty.
  const std::int64_t ts1 = coll.t0() + coll.delta();
  GraphEvent change;
  change.target = EventTarget::kVertex;
  change.timestamp = ts1;
  change.attr = 0;  // "tweets"
  change.index = 0;
  change.value = AttrValue::ofStringList({"#fresh"});
  events.push_back(change);
  GraphEvent noop;
  noop.target = EventTarget::kVertex;
  noop.timestamp = ts1;
  noop.attr = 0;
  noop.index = 1;
  noop.value = AttrValue::ofStringList(
      coll.instance(0).vertexCol(0).asStringList()[1]);
  events.push_back(noop);

  StreamHarness h(pg, 2, coll.t0(), coll.delta());
  ASSERT_TRUE(h.run(std::move(events)).isOk());
  ASSERT_EQ(h.provider().sealedCount(), 2u);

  const SubgraphId changed_sg = pg.subgraphOfVertex(0);
  const SubgraphId noop_sg = pg.subgraphOfVertex(1);
  EXPECT_TRUE(h.provider().subgraphDirty(1, changed_sg));
  if (noop_sg != changed_sg) {
    EXPECT_FALSE(h.provider().subgraphDirty(1, noop_sg));
  }
  // Timestep 0 is always dirty (nothing to be clean against), and unknown
  // timesteps stay conservatively dirty.
  EXPECT_TRUE(h.provider().subgraphDirty(0, changed_sg));
  EXPECT_TRUE(h.provider().subgraphDirty(99, changed_sg));
}

// --- Wire-format fuzzing -------------------------------------------------

std::vector<std::uint8_t> encodeAll(const std::vector<GraphEvent>& events,
                                    bool end_marker = true) {
  BinaryWriter w;
  for (const auto& ev : events) {
    stream::encodeEvent(ev, w);
  }
  if (end_marker) {
    stream::encodeEndOfStream(w);
  }
  return w.buffer();
}

std::vector<GraphEvent> mixedTypeEvents() {
  std::vector<GraphEvent> events;
  GraphEvent ev;
  ev.timestamp = 7;
  ev.value = AttrValue::ofStringList({"#a", "#b"});
  events.push_back(ev);
  ev.attr = 1;
  ev.value = AttrValue::ofBool(true);
  events.push_back(ev);
  ev.target = EventTarget::kEdge;
  ev.attr = 0;
  ev.index = 1;
  ev.value = AttrValue::ofDouble(2.5);
  events.push_back(ev);
  ev.value = AttrValue::ofInt64(-9);
  events.push_back(ev);
  ev.value = AttrValue::ofString("x");
  events.push_back(ev);
  return events;
}

TEST(StreamCodec, EveryPrefixDecodesCleanlyOrWaits) {
  const auto bytes = encodeAll(mixedTypeEvents());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto frame = stream::decodeFrame({bytes.data(), len});
    ASSERT_TRUE(frame.isOk()) << "prefix len " << len << ": "
                              << frame.status().toString();
    if (frame.value().kind == DecodedFrame::Kind::kNeedMore) {
      EXPECT_EQ(frame.value().consumed, 0u);
    } else {
      EXPECT_LE(frame.value().consumed, len);
    }
  }
  // The full buffer decodes every frame back exactly.
  std::span<const std::uint8_t> rest(bytes);
  for (const auto& expected : mixedTypeEvents()) {
    auto frame = unwrap(stream::decodeFrame(rest));
    ASSERT_EQ(frame.kind, DecodedFrame::Kind::kEvent);
    EXPECT_EQ(frame.event, expected);
    rest = rest.subspan(frame.consumed);
  }
  EXPECT_EQ(unwrap(stream::decodeFrame(rest)).kind,
            DecodedFrame::Kind::kEnd);
}

TEST(StreamCodec, RejectsBadMagicLengthTargetTagAndTrailingBytes) {
  const auto valid = encodeAll({mixedTypeEvents().front()},
                               /*end_marker=*/false);

  auto bad_magic = valid;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(stream::decodeFrame(bad_magic).isOk());

  // Oversized length claims are corrupt immediately — a tailing reader
  // must not wait for a gigabyte that will never arrive.
  BinaryWriter huge;
  huge.writeU32(stream::kFrameMagic);
  huge.writeU32(stream::kMaxFramePayload + 1);
  EXPECT_FALSE(stream::decodeFrame(huge.buffer()).isOk());

  auto bad_target = valid;
  bad_target[8] = 7;  // payload byte 0: EventTarget
  EXPECT_FALSE(stream::decodeFrame(bad_target).isOk());

  auto bad_tag = valid;
  bad_tag[8 + 1 + 8 + 4 + 4] = 0x5E;  // payload type tag
  EXPECT_FALSE(stream::decodeFrame(bad_tag).isOk());

  // A frame whose payload has unconsumed trailing bytes is corrupt, not
  // silently skipped.
  auto trailing = valid;
  trailing.push_back(0x00);
  const std::uint32_t new_len =
      static_cast<std::uint32_t>(trailing.size() - 8);
  trailing[4] = static_cast<std::uint8_t>(new_len);
  trailing[5] = static_cast<std::uint8_t>(new_len >> 8);
  trailing[6] = static_cast<std::uint8_t>(new_len >> 16);
  trailing[7] = static_cast<std::uint8_t>(new_len >> 24);
  EXPECT_FALSE(stream::decodeFrame(trailing).isOk());
}

TEST(StreamCodec, FuzzRandomGarbageNeverCrashes) {
  Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> buf(rng.uniformBelow(96));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    auto frame = stream::decodeFrame(buf);  // must not crash or hang
    if (frame.isOk() &&
        frame.value().kind != DecodedFrame::Kind::kNeedMore) {
      EXPECT_LE(frame.value().consumed, buf.size());
    }
  }
}

TEST(StreamCodec, FuzzBitFlippedFilesNeverLeakPartialState) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  const std::vector<GraphEvent> events = {
      activeEvent(0, 0, true), activeEvent(11, 1, true),
      activeEvent(22, 0, false)};
  const auto clean = encodeAll(events);
  const std::size_t planned = 3;

  testing::TempDir tmp{"tsg_stream_fuzz"};
  std::filesystem::create_directories(tmp.path());
  const std::string path = tmp.path() + "/fuzz.tsev";

  Rng rng(99);
  for (int trial = 0; trial < 32; ++trial) {
    auto bytes = clean;
    const std::size_t flip_at = rng.uniformBelow(bytes.size());
    const auto flip_bit = static_cast<unsigned>(rng.uniformBelow(8));
    bytes[flip_at] ^= static_cast<std::uint8_t>(1u << flip_bit);
    ASSERT_TRUE(writeFileBytes(path, bytes).isOk());

    SCOPED_TRACE("flip byte " + std::to_string(flip_at) + " bit " +
                 std::to_string(flip_bit));
    stream::FileTailSource source(path, /*follow=*/false);
    StreamHarness h(pg, planned, 0, 10);
    const Status status = h.run(source);
    // A flip either leaves a decodable stream (the run covers the full
    // plan; the value may differ, framing doesn't) or is rejected as
    // corrupt — in which case only fully sealed timesteps ever surfaced.
    if (status.isOk()) {
      EXPECT_EQ(h.ingestor().sealedTimesteps(), planned);
    } else {
      EXPECT_LE(h.ingestor().sealedTimesteps(), planned);
      EXPECT_EQ(h.provider().sealedCount(), h.ingestor().sealedTimesteps());
    }
  }

  // Corruption in the very first frame seals nothing at all.
  auto first = clean;
  first[9] ^= 0xFF;  // inside frame 0's payload (timestamp byte)
  first[8] = 9;      // and an invalid target to guarantee rejection
  ASSERT_TRUE(writeFileBytes(path, first).isOk());
  stream::FileTailSource source(path, /*follow=*/false);
  StreamHarness h(pg, planned, 0, 10);
  EXPECT_FALSE(h.run(source).isOk());
  EXPECT_EQ(h.ingestor().sealedTimesteps(), 0u);
  EXPECT_EQ(h.provider().sealedCount(), 0u);
}

// --- Source behavior -----------------------------------------------------

TEST(StreamSource, TruncationMidFrameIsCorruptButFrameBoundaryIsClean) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  const auto bytes =
      encodeAll({activeEvent(0, 0, true), activeEvent(11, 1, true)},
                /*end_marker=*/false);

  testing::TempDir tmp{"tsg_stream_trunc"};
  std::filesystem::create_directories(tmp.path());
  const std::string path = tmp.path() + "/trunc.tsev";

  // Cut mid-frame: definitely corrupt in non-follow mode.
  ASSERT_TRUE(writeFileBytes(
                  path, {bytes.begin(), bytes.end() - 3})
                  .isOk());
  {
    stream::FileTailSource source(path, /*follow=*/false);
    StreamHarness h(pg, 2, 0, 10);
    EXPECT_FALSE(h.run(source).isOk());
  }

  // Cut exactly at a frame boundary (no end marker): a clean EOF; the run
  // pads the remaining plan with carried copies.
  ASSERT_TRUE(writeFileBytes(path, bytes).isOk());
  {
    stream::FileTailSource source(path, /*follow=*/false);
    StreamHarness h(pg, 3, 0, 10);
    EXPECT_TRUE(h.run(source).isOk());
    EXPECT_EQ(h.ingestor().sealedTimesteps(), 3u);
  }
}

TEST(StreamSource, MissingFileIsAnError) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  stream::FileTailSource source("/nonexistent/events.tsev",
                                /*follow=*/false);
  StreamHarness h(pg, 1, 0, 10);
  EXPECT_FALSE(h.run(source).isOk());
  EXPECT_EQ(h.ingestor().sealedTimesteps(), 0u);
}

TEST(StreamSource, FollowModeTailsFramesAppendedByAWriter) {
  auto tmpl = tinyTemplate();
  const auto pg = partitionGraph(tmpl, 1);
  const std::vector<GraphEvent> events = {
      activeEvent(0, 0, true), activeEvent(11, 1, true),
      activeEvent(22, 0, false)};
  const auto bytes = encodeAll(events);
  const std::size_t split = 10;  // mid-frame: the tail must wait, not fail

  testing::TempDir tmp{"tsg_stream_tail"};
  std::filesystem::create_directories(tmp.path());
  const std::string path = tmp.path() + "/tail.tsev";
  ASSERT_TRUE(
      writeFileBytes(path, {bytes.begin(), bytes.begin() + split}).isOk());

  std::thread writer([&] {  // NOLINT(tsg-naked-thread)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(bytes.data() + split),
              static_cast<std::streamsize>(bytes.size() - split));
  });

  stream::FileTailSource source(path, /*follow=*/true,
                                /*poll_interval_us=*/500);
  StreamHarness h(pg, 3, 0, 10);
  const Status status = h.run(source);
  writer.join();
  ASSERT_TRUE(status.isOk());
  EXPECT_EQ(h.ingestor().eventsIngested(), events.size());
  EXPECT_EQ(h.ingestor().sealedTimesteps(), 3u);
  EXPECT_EQ(h.provider().sealedInstance(2).vertexCol(1).asBool()[0], 0u);
}

}  // namespace
}  // namespace tsg
