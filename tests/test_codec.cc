#include "algorithms/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tsg {
namespace {

TEST(Codec, VertexListRoundtrip) {
  const std::vector<VertexIndex> vertices{0, 5, 1u << 30, 42};
  const auto payload = encodeVertexList(vertices);
  EXPECT_EQ(decodeVertexList(payload), vertices);
}

TEST(Codec, EmptyVertexList) {
  const auto payload = encodeVertexList({});
  EXPECT_TRUE(decodeVertexList(payload).empty());
}

TEST(Codec, VertexLabelsRoundtrip) {
  const std::vector<VertexLabel> items{
      {0, 0.0}, {7, -1.5}, {1u << 20, 1e300}};
  const auto payload = encodeVertexLabels(items);
  const auto decoded = decodeVertexLabels(payload);
  ASSERT_EQ(decoded.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(decoded[i].vertex, items[i].vertex);
    EXPECT_DOUBLE_EQ(decoded[i].label, items[i].label);
  }
}

TEST(Codec, U64Roundtrip) {
  for (const std::uint64_t v : {0ull, 1ull, ~0ull}) {
    EXPECT_EQ(decodeU64(encodeU64(v)), v);
  }
}

TEST(Codec, U64ListRoundtrip) {
  const std::vector<std::uint64_t> values{1, 0, 999999999999ull};
  EXPECT_EQ(decodeU64List(encodeU64List(values)), values);
}

TEST(Codec, RandomizedVertexLabelFuzz) {
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    std::vector<VertexLabel> items(rng.uniformBelow(64));
    for (auto& item : items) {
      item.vertex = static_cast<VertexIndex>(rng.next());
      item.label = rng.uniformDouble(-1e6, 1e6);
    }
    const auto decoded = decodeVertexLabels(encodeVertexLabels(items));
    ASSERT_EQ(decoded.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(decoded[i].vertex, items[i].vertex);
      EXPECT_DOUBLE_EQ(decoded[i].label, items[i].label);
    }
  }
}

TEST(Codec, TruncatedPayloadAborts) {
  const auto payload = encodeVertexLabels({{1, 2.0}, {3, 4.0}});
  const PayloadBuffer truncated(payload.data(), payload.size() / 2);
  EXPECT_DEATH((void)decodeVertexLabels(truncated), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg
