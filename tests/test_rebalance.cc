#include "core/rebalance.h"

#include <gtest/gtest.h>

#include "algorithms/tdsp.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::unwrap;

// Synthesizes stats with a chosen per-partition compute-time profile.
RunStats statsWithLoads(const std::vector<std::int64_t>& loads) {
  RunStats stats(static_cast<std::uint32_t>(loads.size()));
  SuperstepRecord rec;
  rec.timestep = 0;
  rec.superstep = 0;
  for (const auto load : loads) {
    PartitionSuperstepStats ps;
    ps.compute_ns = load;
    rec.parts.push_back(ps);
  }
  stats.addSuperstep(std::move(rec));
  return stats;
}

TEST(Rebalance, SkewedLoadProducesImprovingMoves) {
  // Hash partitioning shatters the lattice into many subgraphs per
  // partition, so there is plenty of movable tail.
  auto tmpl = smallRoad(12, 12);
  const auto assignment = HashPartitioner().assign(*tmpl, 3);
  const auto pg = unwrap(PartitionedGraph::build(tmpl, assignment, 3));

  const auto stats = statsWithLoads({9'000'000, 1'000'000, 1'000'000});
  const auto plan = unwrap(planRebalance(pg, stats));

  EXPECT_TRUE(plan.hasMoves());
  EXPECT_LT(plan.imbalance_after, plan.imbalance_before);
  // Moves flow from the hot partition.
  for (const auto& move : plan.moves) {
    EXPECT_EQ(move.from, 0u);
    EXPECT_EQ(pg.partitionOfSubgraph(move.subgraph), 0u);
  }
  // The new assignment is a valid relocation of exactly the moved
  // subgraphs' vertices.
  ASSERT_EQ(plan.new_assignment.size(), tmpl->numVertices());
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    bool moved = false;
    for (const auto& move : plan.moves) {
      if (pg.subgraphOfVertex(v) == move.subgraph) {
        EXPECT_EQ(plan.new_assignment[v], move.to);
        moved = true;
      }
    }
    if (!moved) {
      EXPECT_EQ(plan.new_assignment[v], assignment[v]);
    }
  }
  // The rebuilt decomposition must be valid.
  const auto rebuilt =
      PartitionedGraph::build(tmpl, plan.new_assignment, 3);
  EXPECT_TRUE(rebuilt.isOk());
}

TEST(Rebalance, UniformLoadNeedsNoMoves) {
  auto tmpl = smallRoad(8, 8);
  const auto pg = partitionGraph(tmpl, 4);
  const auto stats =
      statsWithLoads({1'000'000, 1'000'000, 1'000'000, 1'000'000});
  const auto plan = unwrap(planRebalance(pg, stats));
  EXPECT_FALSE(plan.hasMoves());
  EXPECT_EQ(plan.new_assignment, pg.assignment());
  EXPECT_DOUBLE_EQ(plan.imbalance_after, plan.imbalance_before);
}

TEST(Rebalance, SinglePartitionIsNoop) {
  auto tmpl = smallRoad(5, 5);
  const auto pg = partitionGraph(tmpl, 1);
  const auto plan = unwrap(planRebalance(pg, statsWithLoads({5'000'000})));
  EXPECT_FALSE(plan.hasMoves());
}

TEST(Rebalance, NeverMovesTheLargestSubgraph) {
  auto tmpl = smallRoad(10, 10);
  const auto assignment = HashPartitioner().assign(*tmpl, 3);
  const auto pg = unwrap(PartitionedGraph::build(tmpl, assignment, 3));
  const auto plan = unwrap(
      planRebalance(pg, statsWithLoads({50'000'000, 1'000'000, 1'000'000})));
  for (const auto& move : plan.moves) {
    EXPECT_NE(move.subgraph, pg.largestSubgraphOf(move.from));
  }
}

TEST(Rebalance, MismatchedStatsRejected) {
  auto tmpl = smallRoad(5, 5);
  const auto pg = partitionGraph(tmpl, 2);
  const auto result = planRebalance(pg, statsWithLoads({1, 2, 3}));
  ASSERT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Rebalance, RespectsMaxMoves) {
  auto tmpl = smallRoad(12, 12);
  const auto assignment = HashPartitioner().assign(*tmpl, 3);
  const auto pg = unwrap(PartitionedGraph::build(tmpl, assignment, 3));
  RebalanceOptions options;
  options.max_moves = 2;
  options.target_imbalance = 1.0;  // unreachable -> bounded by max_moves
  const auto plan = unwrap(planRebalance(
      pg, statsWithLoads({90'000'000, 1'000'000, 1'000'000}), options));
  EXPECT_LE(plan.moves.size(), 2u);
}

TEST(Rebalance, EndToEndAfterRealRun) {
  // Run TDSP from a corner: the source partition works first and hardest;
  // replanning must not crash and must keep results reproducible.
  auto tmpl = smallRoad(10, 10);
  const auto pg = partitionGraph(tmpl, 4);
  const auto coll = roadCollection(tmpl, 10);
  DirectInstanceProvider provider(pg, coll);
  TdspOptions options;
  options.source = 0;
  options.latency_attr = 0;
  const auto run = runTdsp(pg, provider, options);

  const auto plan = unwrap(planRebalance(pg, run.exec.stats));
  EXPECT_GE(plan.imbalance_before, plan.imbalance_after);
  // If it proposed moves, applying them must yield identical algorithm
  // results (placement is semantically transparent).
  if (plan.hasMoves()) {
    auto pg2 = unwrap(
        PartitionedGraph::build(tmpl, plan.new_assignment, 4));
    DirectInstanceProvider provider2(pg2, coll);
    const auto run2 = runTdsp(pg2, provider2, options);
    EXPECT_EQ(run.finalized_at, run2.finalized_at);
    EXPECT_EQ(run.tdsp, run2.tdsp);
  }
}

}  // namespace
}  // namespace tsg
