#include "metrics/report.h"

#include <gtest/gtest.h>

namespace tsg {
namespace {

RunStats sampleStats() {
  RunStats stats(2);
  SuperstepRecord rec;
  rec.timestep = 0;
  rec.superstep = 0;
  rec.parts.resize(2);
  rec.parts[0].compute_ns = 4'000'000;
  rec.parts[0].sync_ns = 1'000'000;
  rec.parts[1].compute_ns = 2'000'000;
  rec.parts[1].send_ns = 500'000;
  rec.delivered_messages = 3;
  rec.delivered_bytes = 96;
  stats.addSuperstep(rec);
  rec.timestep = 1;
  stats.addSuperstep(rec);
  stats.addCounter("finalized", 0, 0, 10);
  stats.addCounter("finalized", 1, 1, 4);
  stats.setWallClockNs(12'000'000);
  return stats;
}

TEST(Report, TimestepSeriesListsEachExecutedTimestep) {
  const auto text = renderTimestepSeries(sampleStats(), "demo");
  EXPECT_NE(text.find("per-timestep time: demo"), std::string::npos);
  EXPECT_NE(text.find("| 0"), std::string::npos);
  EXPECT_NE(text.find("| 1"), std::string::npos);
}

TEST(Report, CounterSeriesRendersPerPartitionColumnsAndTotals) {
  const auto text =
      renderCounterSeries(sampleStats(), "finalized", "demo");
  EXPECT_NE(text.find("part0"), std::string::npos);
  EXPECT_NE(text.find("part1"), std::string::npos);
  EXPECT_NE(text.find("| 10"), std::string::npos);  // t0 p0
  EXPECT_NE(text.find("| 4"), std::string::npos);   // t1 p1
}

TEST(Report, CounterSeriesHandlesMissingCounter) {
  const auto text = renderCounterSeries(sampleStats(), "ghost", "demo");
  EXPECT_NE(text.find("(no data)"), std::string::npos);
}

TEST(Report, UtilizationPercentagesSumNearHundred) {
  const auto text = renderUtilization(sampleStats(), "demo");
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("sync_oh"), std::string::npos);
  // Partition 0: 4ms compute of 5ms total = 80%.
  EXPECT_NE(text.find("80.0%"), std::string::npos);
}

TEST(Report, SummaryIncludesWallAndModelled) {
  const auto text = summarizeRun(sampleStats(), "demo");
  EXPECT_NE(text.find("demo:"), std::string::npos);
  EXPECT_NE(text.find("wall=0.012s"), std::string::npos);
  EXPECT_NE(text.find("supersteps=2"), std::string::npos);
  EXPECT_NE(text.find("messages=6"), std::string::npos);
}

TEST(Report, EmptyStatsDoNotCrash) {
  RunStats stats(0);
  EXPECT_FALSE(renderTimestepSeries(stats, "x").empty());
  EXPECT_FALSE(renderUtilization(stats, "x").empty());
  EXPECT_FALSE(summarizeRun(stats, "x").empty());
}

}  // namespace
}  // namespace tsg
