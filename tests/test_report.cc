#include "metrics/report.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gofs/instance_provider.h"
#include "test_util.h"

namespace tsg {
namespace {

RunStats sampleStats() {
  RunStats stats(2);
  SuperstepRecord rec;
  rec.timestep = 0;
  rec.superstep = 0;
  rec.parts.resize(2);
  rec.parts[0].compute_ns = 4'000'000;
  rec.parts[0].sync_ns = 1'000'000;
  rec.parts[1].compute_ns = 2'000'000;
  rec.parts[1].send_ns = 500'000;
  rec.delivered_messages = 3;
  rec.delivered_bytes = 96;
  rec.cross_partition_messages = 2;
  rec.cross_partition_bytes = 64;
  stats.addSuperstep(rec);
  rec.timestep = 1;
  stats.addSuperstep(rec);
  stats.addCounter("finalized", 0, 0, 10);
  stats.addCounter("finalized", 1, 1, 4);
  stats.setWallClockNs(12'000'000);
  stats.setMetrics({{"bus.messages_delivered", MetricsRegistry::kNoPartition,
                     false, 6},
                    {"gofs.packs_loaded", 0, false, 1}});
  return stats;
}

TEST(Report, TimestepSeriesListsEachExecutedTimestep) {
  const auto text = renderTimestepSeries(sampleStats(), "demo");
  EXPECT_NE(text.find("per-timestep time: demo"), std::string::npos);
  EXPECT_NE(text.find("| 0"), std::string::npos);
  EXPECT_NE(text.find("| 1"), std::string::npos);
}

TEST(Report, CounterSeriesRendersPerPartitionColumnsAndTotals) {
  const auto text =
      renderCounterSeries(sampleStats(), "finalized", "demo");
  EXPECT_NE(text.find("part0"), std::string::npos);
  EXPECT_NE(text.find("part1"), std::string::npos);
  EXPECT_NE(text.find("| 10"), std::string::npos);  // t0 p0
  EXPECT_NE(text.find("| 4"), std::string::npos);   // t1 p1
}

TEST(Report, CounterSeriesHandlesMissingCounter) {
  const auto text = renderCounterSeries(sampleStats(), "ghost", "demo");
  EXPECT_NE(text.find("(no data)"), std::string::npos);
}

TEST(Report, UtilizationPercentagesSumNearHundred) {
  const auto text = renderUtilization(sampleStats(), "demo");
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("sync_oh"), std::string::npos);
  // Partition 0: 4ms compute of 5ms total = 80%.
  EXPECT_NE(text.find("80.0%"), std::string::npos);
}

TEST(Report, SummaryIncludesWallAndModelled) {
  const auto text = summarizeRun(sampleStats(), "demo");
  EXPECT_NE(text.find("demo:"), std::string::npos);
  EXPECT_NE(text.find("wall=0.012s"), std::string::npos);
  EXPECT_NE(text.find("supersteps=2"), std::string::npos);
  EXPECT_NE(text.find("messages=6"), std::string::npos);
}

TEST(Report, SummaryIncludesCrossPartitionTotals) {
  const auto text = summarizeRun(sampleStats(), "demo");
  // Two records, each 2 messages / 64 bytes across partitions.
  EXPECT_NE(text.find("xpart_messages=4"), std::string::npos);
  EXPECT_NE(text.find("xpart_bytes=128"), std::string::npos);
}

TEST(Report, EmptyStatsDoNotCrash) {
  RunStats stats(0);
  EXPECT_FALSE(renderTimestepSeries(stats, "x").empty());
  EXPECT_FALSE(renderUtilization(stats, "x").empty());
  EXPECT_FALSE(summarizeRun(stats, "x").empty());
  EXPECT_TRUE(testing::isValidJson(runStatsToJson(stats, "x")));
}

TEST(Report, RunStatsJsonIsValidAndCoversEverySection) {
  const auto json = runStatsToJson(sampleStats(), "demo");
  EXPECT_TRUE(testing::isValidJson(json)) << json;
  for (const char* needle :
       {"\"label\":\"demo\"", "\"num_partitions\":2", "\"totals\"",
        "\"delivered_messages\":6", "\"cross_partition_messages\":4",
        "\"timesteps\"", "\"utilization\"", "\"supersteps\"",
        "\"counters\"", "\"finalized\"", "\"metrics\"",
        "\"bus.messages_delivered\"", "\"gofs.packs_loaded\"",
        "\"partition\":0"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

// End-to-end: a real engine run exports JSON whose totals agree with the
// RunStats the engine built, including the MetricsRegistry delta.
TEST(Report, JsonRoundTripsAgainstEngineRun) {
  auto tmpl = testing::smallRoad(4, 4);
  auto pg = testing::partitionGraph(tmpl, 2);
  TimeSeriesCollection collection(tmpl, /*t0=*/0, /*delta=*/5);
  for (int t = 0; t < 3; ++t) {
    collection.appendInstance();
  }
  DirectInstanceProvider provider(pg, collection);

  struct PingProgram final : TiBspProgram {
    void compute(SubgraphContext& ctx) override {
      if (ctx.superstep() == 0) {
        // One remote-bound message per subgraph keeps the bus busy.
        ctx.sendToSubgraph(
            (ctx.subgraphId() + 1) % ctx.partitionedGraph().numSubgraphs(),
            {1});
      }
      ctx.voteToHalt();
    }
    void endOfTimestep(SubgraphContext&) override {}
    void merge(SubgraphContext&) override {}
  };

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(pg, provider);
  const auto result = engine.run(
      [](PartitionId) { return std::make_unique<PingProgram>(); }, config);
  const auto json = runStatsToJson(result.stats, "engine");
  EXPECT_TRUE(testing::isValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"label\":\"engine\""), std::string::npos);
  EXPECT_NE(
      json.find("\"supersteps\":" +
                std::to_string(result.stats.totalSupersteps())),
      std::string::npos);
  EXPECT_NE(json.find("\"delivered_messages\":" +
                      std::to_string(result.stats.totalMessages())),
            std::string::npos);
  // The engine attached a registry delta with the bus feed in it.
  EXPECT_FALSE(result.stats.metrics().empty());
  EXPECT_NE(json.find("\"bus.messages_delivered\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.supersteps\""), std::string::npos);
}

// Full round-trip through runStatsFromJson, including the PR-6 scheduler
// counters and histogram quantiles the loader previously dropped.
TEST(Report, RunStatsJsonRoundTripPreservesMetricsAndHistograms) {
  RunStats stats = sampleStats();
  stats.setMetrics({{"cluster.barrier_skips", MetricsRegistry::kNoPartition,
                     false, 12},
                    {"cluster.barrier_wait_ns",
                     MetricsRegistry::kNoPartition, false, 5'000'000},
                    {"cluster.steals", MetricsRegistry::kNoPartition, false,
                     3},
                    {"cluster.waves", MetricsRegistry::kNoPartition, false,
                     9},
                    {"cluster.worker_queue_depth", 1, true, 4},
                    {"engine.ready_wait_ns", MetricsRegistry::kNoPartition,
                     false, 777}});

  MetricsRegistry::HistogramSnapshot compute;
  compute.name = "engine.superstep_compute_ns";
  compute.buckets[3] = 5;
  compute.buckets[10] = 5;
  compute.count = 10;
  compute.sum = 12'345;
  compute.max = 1024;
  MetricsRegistry::HistogramSnapshot batch;
  batch.name = "bus.batch_messages";
  batch.partition = 1;
  batch.buckets[2] = 1;
  batch.count = 1;
  batch.sum = 3;
  batch.max = 3;
  stats.setHistograms({compute, batch});

  const auto json = runStatsToJson(stats, "roundtrip");
  ASSERT_TRUE(testing::isValidJson(json));
  auto loaded = runStatsFromJson(json);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  const RunStats& got = loaded.value().stats;

  EXPECT_EQ(loaded.value().label, "roundtrip");
  EXPECT_EQ(got.wallClockNs(), stats.wallClockNs());
  EXPECT_EQ(got.totalSupersteps(), stats.totalSupersteps());
  EXPECT_EQ(got.totalMessages(), stats.totalMessages());
  EXPECT_EQ(got.metrics(), stats.metrics());

  ASSERT_EQ(got.histograms().size(), 2u);
  // Point::operator== covers name/partition; HistogramSnapshot's default
  // equality covers buckets too, so quantiles answer identically.
  EXPECT_EQ(got.histograms()[0], stats.histograms()[0]);
  EXPECT_EQ(got.histograms()[1], stats.histograms()[1]);
  EXPECT_EQ(got.histograms()[0].quantile(0.5),
            stats.histograms()[0].quantile(0.5));
  EXPECT_EQ(got.histograms()[0].quantile(0.99),
            stats.histograms()[0].quantile(0.99));
}

TEST(Report, RunStatsJsonRejectsMalformedHistogramBuckets) {
  // Bucket entries must be [index, count] pairs with the index in range.
  const std::string base =
      "{\"schema_version\":1,\"num_partitions\":1,\"supersteps\":[],"
      "\"histograms\":[{\"name\":\"h.x\",\"count\":1,\"sum\":1,\"max\":1,"
      "\"buckets\":";
  EXPECT_FALSE(runStatsFromJson(base + "[[0]]}]}").isOk());
  EXPECT_FALSE(runStatsFromJson(base + "[[9999,1]]}]}").isOk());
  EXPECT_TRUE(runStatsFromJson(base + "[[2,1]]}]}").isOk());
}

}  // namespace
}  // namespace tsg
