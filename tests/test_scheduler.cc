// Dependency-driven scheduling tests: the ReadyTracker readiness rule, the
// StealDeque under thread-sanitizer stress, the AsyncCluster wave protocol
// (seal exclusivity, stealing, fault abort + respawn), and the end-to-end
// guarantee that --schedule=async output is byte-identical to BSP — with
// and without injected faults.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "check/digest.h"
#include "common/thread_pool.h"
#include "gofs/checkpoint.h"
#include "gofs/instance_provider.h"
#include "runtime/cluster.h"
#include "runtime/fault_injector.h"
#include "runtime/ready_tracker.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;

// ---------------------------------------------------------------------------
// ReadyTracker — the readiness rule as a pure function.
// ---------------------------------------------------------------------------

TEST(ReadyTracker, OutOfOrderDeliveriesAccumulatePerDestination) {
  ReadyTracker tracker(4);
  tracker.beginTimestep();
  // Senders finish in any order; counts land per destination.
  tracker.recordDelivery(2, 3);
  tracker.recordDelivery(0, 1);
  tracker.recordDelivery(2, 2);
  EXPECT_EQ(tracker.pendingMessages(2), 5u);
  EXPECT_EQ(tracker.pendingMessages(0), 1u);
  EXPECT_EQ(tracker.pendingMessages(1), 0u);

  // Everyone halted; only partitions with pending messages stay eligible.
  for (PartitionId p = 0; p < 4; ++p) {
    tracker.recordQuiesce(p, /*halted=*/true);
  }
  const auto next = tracker.advance();
  EXPECT_EQ(next, (std::vector<PartitionId>{0, 2}));
  EXPECT_EQ(tracker.wave(), 1);
  EXPECT_EQ(tracker.skippedRounds(), 2);
  // advance() consumed the pending counts.
  EXPECT_EQ(tracker.pendingMessages(2), 0u);
}

TEST(ReadyTracker, ZeroMessageSuperstepsStillRunUnhaltedPartitions) {
  ReadyTracker tracker(3);
  tracker.beginTimestep();
  // No traffic at all, but partition 1 did not halt: it must run again —
  // BSP also marches unhalted partitions through empty supersteps.
  tracker.recordQuiesce(0, true);
  tracker.recordQuiesce(1, false);
  tracker.recordQuiesce(2, true);
  EXPECT_FALSE(tracker.terminated());
  const auto next = tracker.advance();
  EXPECT_EQ(next, (std::vector<PartitionId>{1}));
  EXPECT_EQ(tracker.skippedRounds(), 2);
}

TEST(ReadyTracker, HaltedPartitionReactivatesOnDelivery) {
  ReadyTracker tracker(2);
  tracker.beginTimestep();
  tracker.recordQuiesce(0, true);
  tracker.recordQuiesce(1, true);
  EXPECT_TRUE(tracker.terminated());

  // A message bound for the halted partition 0 reactivates it.
  tracker.recordDelivery(0, 1);
  EXPECT_FALSE(tracker.terminated());
  EXPECT_EQ(tracker.advance(), (std::vector<PartitionId>{0}));
}

TEST(ReadyTracker, TerminatesWhenAllHaltedAndNothingInFlight) {
  ReadyTracker tracker(3);
  tracker.beginTimestep();
  EXPECT_FALSE(tracker.terminated());  // nobody quiesced halted yet
  for (PartitionId p = 0; p < 3; ++p) {
    tracker.recordQuiesce(p, true);
  }
  EXPECT_TRUE(tracker.terminated());
  // Matches BSP's (all_halted && delivered == 0): advance yields nobody.
  EXPECT_TRUE(tracker.advance().empty());
  EXPECT_EQ(tracker.skippedRounds(), 3);
}

TEST(ReadyTracker, BeginTimestepResetsWaveAndPending) {
  ReadyTracker tracker(2);
  tracker.beginTimestep();
  tracker.recordDelivery(1, 7);
  tracker.recordQuiesce(0, true);
  tracker.recordQuiesce(1, true);
  tracker.advance();
  EXPECT_EQ(tracker.wave(), 1);

  tracker.beginTimestep();
  EXPECT_EQ(tracker.wave(), 0);
  EXPECT_EQ(tracker.pendingMessages(1), 0u);
  // Superstep 0 of a fresh timestep runs unconditionally: no halt state
  // survives, so everyone is eligible.
  EXPECT_FALSE(tracker.terminated());
  EXPECT_EQ(tracker.advance(), (std::vector<PartitionId>{0, 1}));
}

// ---------------------------------------------------------------------------
// StealDeque — multithreaded stress (the TSan target).
// ---------------------------------------------------------------------------

TEST(StealDeque, OwnerIsLifoThiefIsFifo) {
  StealDeque<int> dq;
  dq.pushBottom(1);
  dq.pushBottom(2);
  dq.pushBottom(3);
  EXPECT_EQ(dq.size(), 3u);
  EXPECT_EQ(dq.stealTop().value(), 1);   // thief takes the oldest
  EXPECT_EQ(dq.popBottom().value(), 3);  // owner takes the newest
  EXPECT_EQ(dq.popBottom().value(), 2);
  EXPECT_FALSE(dq.popBottom().has_value());
  EXPECT_TRUE(dq.empty());
}

TEST(StealDeque, ConcurrentOwnerAndThievesConserveItems) {
  constexpr int kItems = 2000;
  constexpr int kThieves = 3;
  StealDeque<int> dq;
  std::atomic<std::int64_t> popped_sum{0};
  std::atomic<int> popped_count{0};

  // Owner interleaves pushes with pops; thieves hammer stealTop. Every item
  // must come out exactly once (sum check), across any interleaving.
  std::thread owner([&] {
    for (int i = 1; i <= kItems; ++i) {
      dq.pushBottom(i);
      if (i % 3 == 0) {
        if (auto v = dq.popBottom()) {
          popped_sum.fetch_add(*v);
          popped_count.fetch_add(1);
        }
      }
    }
  });
  std::vector<std::thread> thieves;
  std::atomic<bool> done{false};
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load() || !dq.empty()) {
        if (auto v = dq.stealTop()) {
          popped_sum.fetch_add(*v);
          popped_count.fetch_add(1);
        }
      }
    });
  }
  owner.join();
  done.store(true);
  for (auto& t : thieves) {
    t.join();
  }
  EXPECT_EQ(popped_count.load(), kItems);
  EXPECT_EQ(popped_sum.load(),
            static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(ThreadPoolScheduler, ParallelForStealingCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  std::vector<std::atomic<int>> hits(kN);
  std::size_t stolen = 0;
  pool.parallelForStealing(
      kN, [&](std::size_t i) { hits[i].fetch_add(1); }, &stolen);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // Stolen count is schedule-dependent but must stay within bounds.
  EXPECT_LE(stolen, kN);
}

// ---------------------------------------------------------------------------
// AsyncCluster — the wave protocol.
// ---------------------------------------------------------------------------

// Scripted driver: wave w runs the partitions the script lists, the seal
// returns the next wave's set. Verifies seal exclusivity (no task in
// flight) and per-wave task bookkeeping.
class ScriptedDriver final : public AsyncCluster::Driver {
 public:
  explicit ScriptedDriver(std::vector<std::vector<PartitionId>> script)
      : script_(std::move(script)) {}

  void runTask(PartitionId p, const AsyncCluster::TaskInfo& info) override {
    std::lock_guard lock(mutex_);
    ++in_flight_;
    EXPECT_FALSE(sealing_) << "task ran while a seal was in progress";
    ran_.emplace_back(info.wave, p);
    EXPECT_GE(info.ready_wait_ns, 0);
    stolen_ += info.stolen ? 1 : 0;
    --in_flight_;
  }

  std::vector<PartitionId> sealWave(std::int32_t wave) override {
    std::lock_guard lock(mutex_);
    EXPECT_EQ(in_flight_, 0) << "seal ran concurrently with a task";
    sealing_ = true;
    seals_.push_back(wave);
    sealing_ = false;
    const auto next = static_cast<std::size_t>(wave) + 1;
    if (next < script_.size()) {
      return script_[next];
    }
    return {};
  }

  std::vector<std::pair<std::int32_t, PartitionId>> ran() {
    std::lock_guard lock(mutex_);
    return ran_;
  }
  std::vector<std::int32_t> seals() {
    std::lock_guard lock(mutex_);
    return seals_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<PartitionId>> script_;
  std::vector<std::pair<std::int32_t, PartitionId>> ran_;
  std::vector<std::int32_t> seals_;
  int in_flight_ = 0;
  int stolen_ = 0;
  bool sealing_ = false;
};

TEST(AsyncCluster, RunsScriptedWavesAndSealsEachExactlyOnce) {
  AsyncCluster cluster(4);
  // Wave 0: everyone. Wave 1: partitions 1 and 3 (0 and 2 "halted").
  // Wave 2: just 3. Then done.
  ScriptedDriver driver({{0, 1, 2, 3}, {1, 3}, {3}});
  cluster.runWaves(driver, {0, 1, 2, 3});

  const auto seals = driver.seals();
  EXPECT_EQ(seals, (std::vector<std::int32_t>{0, 1, 2}));

  // Each scripted (wave, partition) ran exactly once.
  std::set<std::pair<std::int32_t, PartitionId>> seen;
  for (const auto& entry : driver.ran()) {
    EXPECT_TRUE(seen.insert(entry).second)
        << "wave " << entry.first << " partition " << entry.second
        << " ran twice";
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_TRUE(seen.count({1, 1}) == 1 && seen.count({1, 3}) == 1);
  EXPECT_TRUE(seen.count({2, 3}) == 1);
}

TEST(AsyncCluster, RunAllMirrorsBarrierRound) {
  AsyncCluster cluster(3);
  std::vector<std::atomic<int>> hits(3);
  const auto& timings = cluster.runAll([&](PartitionId p) {
    hits[p].fetch_add(1);
  });
  ASSERT_EQ(timings.size(), 3u);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

// A task fault must abort the phase (RecoveryNeeded), leave the dead worker
// respawnable, and the rerun after respawn must succeed — mirroring the
// engine's rollback protocol.
class FaultyDriver final : public AsyncCluster::Driver {
 public:
  explicit FaultyDriver(bool* armed) : armed_(armed) {}
  void runTask(PartitionId p, const AsyncCluster::TaskInfo&) override {
    if (*armed_ && p == 1) {
      *armed_ = false;
      throw fault::WorkerFault(p, /*timestep=*/0, fault::Site::kCompute);
    }
    tasks_.fetch_add(1);
  }
  std::vector<PartitionId> sealWave(std::int32_t wave) override {
    return wave == 0 ? std::vector<PartitionId>{0, 1, 2}
                     : std::vector<PartitionId>{};
  }
  std::atomic<int> tasks_{0};

 private:
  bool* armed_;
};

TEST(AsyncCluster, TaskFaultAbortsPhaseAndRespawnsCleanly) {
  AsyncCluster cluster(3);
  bool armed = true;
  FaultyDriver driver(&armed);
  EXPECT_THROW(cluster.runWaves(driver, {0, 1, 2}),
               fault::RecoveryNeeded);
  EXPECT_LT(cluster.aliveWorkers(), 3u);
  EXPECT_EQ(cluster.respawnDead(), 1u);
  EXPECT_EQ(cluster.aliveWorkers(), 3u);

  // The fault record must have been drained by the failed phase: a clean
  // rerun (fault disarmed) must not re-throw a stale death.
  driver.tasks_.store(0);
  cluster.runWaves(driver, {0, 1, 2});
  EXPECT_EQ(driver.tasks_.load(), 6);
}

// ---------------------------------------------------------------------------
// End-to-end: async output is byte-identical to BSP.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kPartitions = 3;
constexpr std::uint32_t kTimesteps = 5;

std::int64_t metricTotal(const RunStats& stats, const std::string& name) {
  std::int64_t total = 0;
  for (const auto& point : stats.metrics()) {
    if (point.name == name) {
      total += point.value;
    }
  }
  return total;
}

struct TdspDigestRun {
  std::string digest;
  std::int64_t recoveries = 0;
  std::int64_t waves = 0;
};

TdspDigestRun runTdspWith(Schedule schedule, CheckpointStore* store,
                          const PartitionedGraph& pg,
                          const TimeSeriesCollection& coll,
                          std::size_t latency_attr) {
  DirectInstanceProvider provider(pg, coll);
  TdspOptions options;
  options.latency_attr = latency_attr;
  options.schedule = schedule;
  options.checkpoint_store = store;
  const auto run = runTdsp(pg, provider, options);
  check::Digest d;
  d.addDoubles(run.tdsp);
  d.addVector(run.finalized_at,
              [](check::Digest& dd, Timestep t) { dd.addI64(t); });
  d.addI64(run.exec.timesteps_executed);
  return TdspDigestRun{d.hex(),
                       metricTotal(run.exec.stats, "engine.recoveries"),
                       metricTotal(run.exec.stats, "cluster.waves")};
}

TEST(AsyncSchedule, TdspDigestMatchesBspExactly) {
  auto tmpl = smallRoad(8, 8);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = roadCollection(tmpl, kTimesteps);
  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");

  const auto bsp = runTdspWith(Schedule::kBsp, nullptr, pg, coll, latency);
  const auto async = runTdspWith(Schedule::kAsync, nullptr, pg, coll, latency);
  EXPECT_EQ(async.digest, bsp.digest);
  EXPECT_GT(async.waves, 0);
  EXPECT_EQ(bsp.waves, 0);  // BSP never touches the wave scheduler
}

TEST(AsyncSchedule, MemeDigestMatchesBspExactly) {
  auto tmpl = smallSocial(64);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = tweetCollection(tmpl, kTimesteps);
  const std::size_t tweets = tmpl->vertexSchema().requireIndex("tweets");

  auto digestOf = [&](Schedule schedule) {
    DirectInstanceProvider provider(pg, coll);
    MemeOptions options;
    options.tweets_attr = tweets;
    options.schedule = schedule;
    const auto run = runMemeTracking(pg, provider, options);
    check::Digest d;
    d.addVector(run.colored_at,
                [](check::Digest& dd, Timestep t) { dd.addI64(t); });
    return d.hex();
  };
  EXPECT_EQ(digestOf(Schedule::kAsync), digestOf(Schedule::kBsp));
}

// Async × fault recovery: a worker killed mid-compute and a dropped
// delivery batch must both recover to the fault-free BSP digest.
TEST(AsyncSchedule, RecoversFromKillAtComputeToBspDigest) {
  auto tmpl = smallRoad(8, 8);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = roadCollection(tmpl, kTimesteps);
  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");

  auto& injector = fault::FaultInjector::global();
  injector.disarm();
  const auto baseline =
      runTdspWith(Schedule::kBsp, nullptr, pg, coll, latency);

  fault::FaultSpec kill;
  kill.site = fault::Site::kCompute;
  kill.action = fault::Action::kKill;
  kill.partition = 1;
  kill.timestep = 1;
  MemoryCheckpointStore store;
  injector.arm({kill}, 7);
  const auto faulted =
      runTdspWith(Schedule::kAsync, &store, pg, coll, latency);
  injector.disarm();
  EXPECT_GE(faulted.recoveries, 1);
  EXPECT_EQ(faulted.digest, baseline.digest);
}

TEST(AsyncSchedule, RecoversFromDroppedDeliveryToBspDigest) {
  auto tmpl = smallRoad(8, 8);
  PartitionedGraph pg = partitionGraph(tmpl, kPartitions);
  TimeSeriesCollection coll = roadCollection(tmpl, kTimesteps);
  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");

  auto& injector = fault::FaultInjector::global();
  injector.disarm();
  const auto baseline =
      runTdspWith(Schedule::kBsp, nullptr, pg, coll, latency);

  fault::FaultSpec drop;
  drop.site = fault::Site::kDeliver;
  drop.action = fault::Action::kDrop;
  drop.timestep = 1;
  MemoryCheckpointStore store;
  injector.arm({drop}, 7);
  const auto faulted =
      runTdspWith(Schedule::kAsync, &store, pg, coll, latency);
  injector.disarm();
  EXPECT_GE(faulted.recoveries, 1);
  EXPECT_EQ(faulted.digest, baseline.digest);
}

}  // namespace
}  // namespace tsg
