// End-to-end tests: generate → partition → write GoFS → lazily load → run
// every algorithm → compare against the sequential references. This is the
// full pipeline a user of the library executes.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/reference.h"
#include "algorithms/sssp.h"
#include "algorithms/tdsp.h"
#include "algorithms/topn.h"
#include "gofs/dataset.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;
using testing::unwrap;

class IntegrationTest : public ::testing::Test {
 protected:
  testing::TempDir tmp_{"tsg_integration"};
  std::string dir_ = tmp_.path();
};

TEST_F(IntegrationTest, TdspOverGofsMatchesReference) {
  auto tmpl = smallRoad(9, 9, 6);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = roadCollection(tmpl, 25, 7);

  GofsOptions gofs;
  gofs.temporal_packing = 10;
  gofs.subgraph_binning = 5;
  ASSERT_TRUE(writeGofsDataset(dir_, "carn-mini", pg, coll, gofs).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();

  TdspOptions options;
  options.source = 0;
  options.latency_attr =
      ds.partitionedGraph().graphTemplate().edgeSchema().requireIndex(
          "latency");
  const auto run = runTdsp(ds.partitionedGraph(), *provider, options);
  const auto expected = reference::timeDependentShortestPath(
      *tmpl, coll, options.latency_attr, 0);

  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    ASSERT_EQ(run.finalized_at[v], expected.finalized_at[v]) << v;
    if (expected.finalized_at[v] >= 0) {
      ASSERT_NEAR(run.tdsp[v], expected.tdsp[v], 1e-9) << v;
    }
  }
  // Lazy loading actually metered some I/O.
  std::int64_t load_ns = 0;
  for (const auto& rec : run.exec.stats.supersteps()) {
    for (const auto& part : rec.parts) {
      load_ns += part.load_ns;
    }
  }
  EXPECT_GT(load_ns, 0);
}

TEST_F(IntegrationTest, MemeOverGofsMatchesReference) {
  auto tmpl = smallSocial(150, 4);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = tweetCollection(tmpl, 18, 0.35, 9);
  ASSERT_TRUE(writeGofsDataset(dir_, "wiki-mini", pg, coll, {}).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();

  MemeOptions options;
  options.tweets_attr = 0;
  const auto run =
      runMemeTracking(ds.partitionedGraph(), *provider, options);
  const auto expected = reference::memeSpread(*tmpl, coll, 0, options.meme);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    ASSERT_EQ(run.colored_at[v], expected[v]) << v;
  }
}

TEST_F(IntegrationTest, HashtagOverGofsMatchesReference) {
  auto tmpl = smallSocial(100, 5);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 12, 0.3, 11);
  ASSERT_TRUE(writeGofsDataset(dir_, "tags", pg, coll, {}).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();

  HashtagOptions options;
  options.tweets_attr = 0;
  const auto run =
      runHashtagAggregation(ds.partitionedGraph(), *provider, options);
  EXPECT_EQ(run.counts, reference::hashtagCounts(coll, 0, options.tag));
}

TEST_F(IntegrationTest, AllThreeAlgorithmsShareOneDataset) {
  // The paper's workflow: one stored dataset, several analytics over it.
  auto tmpl = smallSocial(120, 8);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = tweetCollection(tmpl, 10, 0.4, 13);
  ASSERT_TRUE(writeGofsDataset(dir_, "shared", pg, coll, {}).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));

  auto p1 = ds.makeProvider();
  MemeOptions meme;
  meme.tweets_attr = 0;
  const auto meme_run = runMemeTracking(ds.partitionedGraph(), *p1, meme);

  auto p2 = ds.makeProvider();
  HashtagOptions tag;
  tag.tweets_attr = 0;
  const auto tag_run =
      runHashtagAggregation(ds.partitionedGraph(), *p2, tag);

  auto p3 = ds.makeProvider();
  TopNOptions topn;
  topn.tweets_attr = 0;
  topn.n = 4;
  const auto topn_run =
      runTopActiveVertices(ds.partitionedGraph(), *p3, topn);

  EXPECT_EQ(tag_run.counts,
            reference::hashtagCounts(coll, 0, tag.tag));
  const auto expected_colored =
      reference::memeSpread(*tmpl, coll, 0, meme.meme);
  EXPECT_EQ(meme_run.colored_at, expected_colored);
  const auto expected_top = reference::topActiveVertices(*tmpl, coll, 0, 4);
  ASSERT_EQ(topn_run.top.size(), expected_top.size());
  for (std::size_t t = 0; t < expected_top.size(); ++t) {
    EXPECT_EQ(topn_run.top[t], expected_top[t]);
  }
}

TEST_F(IntegrationTest, ResultsIdenticalAcrossPartitionCounts) {
  // Distribution must be semantically transparent: 1, 2 and 5 partitions
  // give bit-identical algorithm results.
  auto tmpl = smallRoad(8, 8, 12);
  const auto coll = roadCollection(tmpl, 15, 14);

  std::vector<std::vector<Timestep>> finalized;
  for (const std::uint32_t k : {1u, 2u, 5u}) {
    const auto pg = partitionGraph(tmpl, k);
    DirectInstanceProvider provider(pg, coll);
    TdspOptions options;
    options.source = 3;
    options.latency_attr = 0;
    finalized.push_back(runTdsp(pg, provider, options).finalized_at);
  }
  EXPECT_EQ(finalized[0], finalized[1]);
  EXPECT_EQ(finalized[0], finalized[2]);
}

TEST_F(IntegrationTest, DirectAndGofsProvidersGiveIdenticalResults) {
  auto tmpl = smallRoad(7, 7, 20);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = roadCollection(tmpl, 12, 21);

  DirectInstanceProvider direct(pg, coll);
  TdspOptions options;
  options.source = 1;
  options.latency_attr = 0;
  const auto run_direct = runTdsp(pg, direct, options);

  GofsOptions gofs;
  gofs.temporal_packing = 4;
  gofs.subgraph_binning = 2;
  ASSERT_TRUE(writeGofsDataset(dir_, "both", pg, coll, gofs).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  const auto run_gofs = runTdsp(ds.partitionedGraph(), *provider, options);

  EXPECT_EQ(run_direct.finalized_at, run_gofs.finalized_at);
  EXPECT_EQ(run_direct.tdsp, run_gofs.tdsp);
}

}  // namespace
}  // namespace tsg
