#include "metrics/stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tsg {
namespace {

SuperstepRecord makeRecord(Timestep t, std::int32_t s,
                           std::vector<std::int64_t> busy_ns) {
  SuperstepRecord rec;
  rec.timestep = t;
  rec.superstep = s;
  for (const auto busy : busy_ns) {
    PartitionSuperstepStats ps;
    ps.compute_ns = busy;
    rec.parts.push_back(ps);
  }
  return rec;
}

TEST(RunStats, CountersAccumulatePerTimestepAndPartition) {
  RunStats stats(3);
  stats.addCounter("finalized", 0, 1, 10);
  stats.addCounter("finalized", 0, 1, 5);
  stats.addCounter("finalized", 2, 0, 7);
  const auto& rows = stats.counters().at("finalized");
  ASSERT_EQ(rows.size(), 3u);  // sized to max timestep + 1
  EXPECT_EQ(rows[0][1], 15u);
  EXPECT_EQ(rows[2][0], 7u);
  EXPECT_EQ(rows[1][2], 0u);
  EXPECT_EQ(stats.counterTotal("finalized"), 22u);
  EXPECT_EQ(stats.counterTotal("missing"), 0u);
}

TEST(RunStats, NumTimestepsFromRecords) {
  RunStats stats(2);
  EXPECT_EQ(stats.numTimesteps(), 0);
  stats.addSuperstep(makeRecord(0, 0, {1, 1}));
  stats.addSuperstep(makeRecord(4, 0, {1, 1}));
  EXPECT_EQ(stats.numTimesteps(), 5);
}

TEST(RunStats, ModelledParallelTimeIsCriticalPath) {
  RunStats stats(2);
  // Superstep 1: partitions busy 10 and 30 -> max 30.
  stats.addSuperstep(makeRecord(0, 0, {10, 30}));
  // Superstep 2: 20 and 5 -> max 20.
  stats.addSuperstep(makeRecord(0, 1, {20, 5}));
  NetworkModel net;
  net.per_superstep_barrier_ns = 0;
  net.per_message_ns = 0;
  EXPECT_EQ(stats.modelledParallelNs(net), 50);
}

TEST(RunStats, ModelledTimeIncludesCommunication) {
  RunStats stats(1);
  auto rec = makeRecord(0, 0, {100});
  rec.cross_partition_bytes = 125;  // 1 microsecond at 125 MB/s
  rec.cross_partition_messages = 2;
  stats.addSuperstep(std::move(rec));
  NetworkModel net;
  net.bandwidth_bytes_per_sec = 125e6;
  net.per_message_ns = 10;
  net.per_superstep_barrier_ns = 7;
  // 100 busy + 1000 bandwidth + 20 per-message + 7 barrier.
  EXPECT_EQ(stats.modelledParallelNs(net), 1127);
}

TEST(RunStats, ModelledTimestepExcludesMergeRecords) {
  RunStats stats(1);
  stats.addSuperstep(makeRecord(1, 0, {40}));
  auto merge = makeRecord(1, 1, {99});
  merge.is_merge_phase = true;
  stats.addSuperstep(std::move(merge));
  NetworkModel net;
  net.per_superstep_barrier_ns = 0;
  net.per_message_ns = 0;
  EXPECT_EQ(stats.modelledTimestepNs(1, net), 40);
}

TEST(RunStats, UtilizationSumsAcrossRecords) {
  RunStats stats(2);
  auto rec1 = makeRecord(0, 0, {10, 20});
  rec1.parts[0].send_ns = 3;
  rec1.parts[0].sync_ns = 2;
  rec1.parts[1].load_ns = 4;
  stats.addSuperstep(std::move(rec1));
  auto rec2 = makeRecord(1, 0, {5, 5});
  stats.addSuperstep(std::move(rec2));

  const auto util = stats.partitionUtilization();
  ASSERT_EQ(util.size(), 2u);
  EXPECT_EQ(util[0].compute_ns, 15);
  EXPECT_EQ(util[0].send_ns, 3);
  EXPECT_EQ(util[0].sync_ns, 2);
  EXPECT_EQ(util[1].compute_ns, 25);
  EXPECT_EQ(util[1].load_ns, 4);
  EXPECT_EQ(util[0].totalNs(), 20);
  EXPECT_NEAR(util[0].computeFraction(), 0.75, 1e-9);
}

TEST(RunStats, TotalsAggregateDeliveries) {
  RunStats stats(1);
  auto rec = makeRecord(0, 0, {1});
  rec.delivered_messages = 10;
  rec.delivered_bytes = 100;
  stats.addSuperstep(std::move(rec));
  auto rec2 = makeRecord(0, 1, {1});
  rec2.delivered_messages = 5;
  rec2.delivered_bytes = 50;
  stats.addSuperstep(std::move(rec2));
  EXPECT_EQ(stats.totalMessages(), 15u);
  EXPECT_EQ(stats.totalBytes(), 150u);
  EXPECT_EQ(stats.totalSupersteps(), 2u);
}

TEST(RunStats, ModelledTimesAreZeroWithoutRecords) {
  const RunStats stats(4);
  EXPECT_EQ(stats.modelledParallelNs(), 0);
  EXPECT_EQ(stats.modelledTimestepNs(0), 0);
  EXPECT_EQ(stats.modelledTimestepNs(99), 0);
  EXPECT_EQ(stats.numTimesteps(), 0);
}

TEST(RunStats, ModelledTimeWithZeroPartitions) {
  RunStats stats(0);
  stats.addSuperstep(makeRecord(0, 0, {}));  // a record with no partitions
  NetworkModel net;
  net.per_superstep_barrier_ns = 7;
  net.per_message_ns = 0;
  // No partitions means no busy time; only the barrier cost remains.
  EXPECT_EQ(stats.modelledParallelNs(net), 7);
  EXPECT_EQ(stats.modelledTimestepNs(0, net), 7);
}

TEST(RunStats, ModelledTimeSinglePartitionSumsBusyComponents) {
  RunStats stats(1);
  auto rec = makeRecord(0, 0, {10});
  rec.parts[0].send_ns = 5;
  rec.parts[0].load_ns = 2;
  rec.parts[0].sync_ns = 99;  // barrier wait is never busy time
  stats.addSuperstep(std::move(rec));
  NetworkModel net;
  net.per_superstep_barrier_ns = 0;
  net.per_message_ns = 0;
  EXPECT_EQ(stats.modelledParallelNs(net), 17);
}

TEST(RunStats, StragglerFixtureMatchesHandComputation) {
  // The fixture's comment in test_util.h derives these numbers by hand;
  // test_analysis asserts analyzeCriticalPath agrees with the same fixture.
  const RunStats stats = testing::stragglerFixtureStats();
  const NetworkModel net = testing::fixtureNetworkModel();
  EXPECT_EQ(stats.modelledParallelNs(net), 5450);
  EXPECT_EQ(stats.modelledTimestepNs(0, net), 3950);  // 2550 + 1400
  EXPECT_EQ(stats.modelledTimestepNs(1, net), 1500);
}

TEST(RunStats, CounterBadPartitionAborts) {
  RunStats stats(2);
  EXPECT_DEATH(stats.addCounter("x", 0, 5, 1), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg
