// Semantics tests for the TI-BSP engine: message timing, halting,
// inter-timestep passing, merge, patterns, aggregators, counters.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "algorithms/codec.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;

struct EngineFixture {
  explicit EngineFixture(std::uint32_t k = 2, std::uint32_t timesteps = 3)
      : tmpl(smallRoad(4, 4)),
        pg(partitionGraph(tmpl, k)),
        collection(tmpl, /*t0=*/0, /*delta=*/5) {
    for (std::uint32_t t = 0; t < timesteps; ++t) {
      collection.appendInstance();
    }
    provider = std::make_unique<DirectInstanceProvider>(pg, collection);
  }

  GraphTemplatePtr tmpl;
  PartitionedGraph pg;
  TimeSeriesCollection collection;
  std::unique_ptr<DirectInstanceProvider> provider;
};

// Adapts a lambda to a TiBspProgram.
template <typename ComputeFn, typename EotFn, typename MergeFn>
class LambdaProgram final : public TiBspProgram {
 public:
  LambdaProgram(ComputeFn compute, EotFn eot, MergeFn merge)
      : compute_(std::move(compute)),
        eot_(std::move(eot)),
        merge_(std::move(merge)) {}
  void compute(SubgraphContext& ctx) override { compute_(ctx); }
  void endOfTimestep(SubgraphContext& ctx) override { eot_(ctx); }
  void merge(SubgraphContext& ctx) override { merge_(ctx); }

 private:
  ComputeFn compute_;
  EotFn eot_;
  MergeFn merge_;
};

auto noop = [](SubgraphContext&) {};

template <typename C, typename E = decltype(noop), typename M = decltype(noop)>
ProgramFactory factoryOf(C compute, E eot = noop, M merge = noop) {
  return [=](PartitionId) {
    return std::make_unique<LambdaProgram<C, E, M>>(compute, eot, merge);
  };
}

TEST(Engine, ComputeInvokedForAllSubgraphsAtSuperstepZero) {
  EngineFixture fx(2, 2);
  std::mutex mutex;
  std::set<std::pair<Timestep, SubgraphId>> seen;
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result = engine.run(factoryOf([&](SubgraphContext& ctx) {
                                   if (ctx.superstep() == 0) {
                                     std::lock_guard lock(mutex);
                                     seen.insert(
                                         {ctx.timestep(), ctx.subgraphId()});
                                   }
                                   ctx.voteToHalt();
                                 }),
                                 config);
  EXPECT_EQ(result.timesteps_executed, 2);
  EXPECT_EQ(seen.size(), 2 * fx.pg.numSubgraphs());
}

TEST(Engine, MessagesArriveExactlyOneSuperstepLater) {
  EngineFixture fx(2, 1);
  const SubgraphId target = fx.pg.numSubgraphs() - 1;
  std::atomic<int> received_superstep{-1};
  std::atomic<int> received_count{0};

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf([&](SubgraphContext& ctx) {
               if (ctx.superstep() == 0 && ctx.subgraphId() == 0) {
                 ctx.sendToSubgraph(target, {42});
               }
               for (const Message& msg : ctx.messages()) {
                 EXPECT_EQ(ctx.subgraphId(), target);
                 EXPECT_EQ(msg.src, 0u);
                 EXPECT_EQ(msg.dst, target);
                 EXPECT_EQ(msg.payload[0], 42);
                 received_superstep = ctx.superstep();
                 received_count.fetch_add(1);
               }
               ctx.voteToHalt();
             }),
             config);
  EXPECT_EQ(received_superstep.load(), 1);
  EXPECT_EQ(received_count.load(), 1);
}

TEST(Engine, BspHaltsOnlyWhenQuiescent) {
  // Subgraph 0 keeps a ping-pong alive for 5 supersteps even though every
  // subgraph votes to halt each time: pending messages reactivate them.
  EngineFixture fx(2, 1);
  const SubgraphId peer = fx.pg.numSubgraphs() - 1;
  ASSERT_NE(peer, 0u);
  std::atomic<int> max_superstep{0};

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf([&](SubgraphContext& ctx) {
               max_superstep = std::max(max_superstep.load(),
                                        ctx.superstep());
               if (ctx.superstep() < 5) {
                 if (ctx.superstep() == 0 && ctx.subgraphId() == 0) {
                   ctx.sendToSubgraph(peer, {1});
                 }
                 for (const Message& msg : ctx.messages()) {
                   const SubgraphId reply_to =
                       ctx.subgraphId() == 0 ? peer : 0;
                   ctx.sendToSubgraph(reply_to, msg.payload);
                 }
               }
               ctx.voteToHalt();
             }),
             config);
  EXPECT_GE(max_superstep.load(), 5);
}

TEST(Engine, SequentialPatternPassesStateBetweenTimesteps) {
  EngineFixture fx(2, 3);
  std::mutex mutex;
  std::vector<std::pair<Timestep, Timestep>> arrivals;  // (now, origin)

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(
      factoryOf(
          [&](SubgraphContext& ctx) {
            if (ctx.superstep() == 0) {
              for (const Message& msg : ctx.messages()) {
                EXPECT_EQ(msg.dst, ctx.subgraphId());
                std::lock_guard lock(mutex);
                arrivals.push_back({ctx.timestep(), msg.origin_timestep});
              }
            }
            ctx.voteToHalt();
          },
          [&](SubgraphContext& ctx) {
            // Every subgraph forwards a token to its next instance.
            ctx.sendToNextTimestep({7});
          }),
      config);
  // Tokens sent at t flow to t+1: timesteps 1 and 2 each receive one per
  // subgraph (the send after the last timestep is dropped).
  ASSERT_EQ(arrivals.size(), 2 * fx.pg.numSubgraphs());
  for (const auto& [now, origin] : arrivals) {
    EXPECT_EQ(origin + 1, now);
  }
}

TEST(Engine, SendToSubgraphInNextTimestepRoutesAcrossSpaceAndTime) {
  EngineFixture fx(2, 2);
  const SubgraphId target = fx.pg.numSubgraphs() - 1;
  std::atomic<int> hits{0};

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf([&](SubgraphContext& ctx) {
               if (ctx.timestep() == 0 && ctx.superstep() == 0 &&
                   ctx.subgraphId() == 0) {
                 ctx.sendToSubgraphInNextTimestep(target, {9});
               }
               if (ctx.timestep() == 1) {
                 for (const Message& msg : ctx.messages()) {
                   EXPECT_EQ(ctx.subgraphId(), target);
                   EXPECT_EQ(msg.payload[0], 9);
                   EXPECT_EQ(msg.origin_timestep, 0);
                   hits.fetch_add(1);
                 }
               }
               ctx.voteToHalt();
             }),
             config);
  EXPECT_EQ(hits.load(), 1);
}

TEST(Engine, InterTimestepSendRejectedOutsideSequentialPattern) {
  EngineFixture fx(2, 2);
  TiBspConfig config;
  config.pattern = Pattern::kIndependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  EXPECT_DEATH(engine.run(factoryOf([&](SubgraphContext& ctx) {
                            ctx.sendToNextTimestep({1});
                            ctx.voteToHalt();
                          }),
                          config),
               "sequentially");
}

TEST(Engine, InputMessagesSeedFirstTimestepForSequential) {
  EngineFixture fx(2, 2);
  std::mutex mutex;
  std::vector<Timestep> arrived_at;

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  Message input;
  input.dst = 0;
  input.payload = {5};
  config.input_messages.push_back(input);

  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf([&](SubgraphContext& ctx) {
               for (const Message& msg : ctx.messages()) {
                 EXPECT_EQ(msg.payload[0], 5);
                 std::lock_guard lock(mutex);
                 arrived_at.push_back(ctx.timestep());
               }
               ctx.voteToHalt();
             }),
             config);
  ASSERT_EQ(arrived_at.size(), 1u);
  EXPECT_EQ(arrived_at[0], 0);
}

TEST(Engine, InputMessagesSeedEveryTimestepForIndependent) {
  EngineFixture fx(2, 3);
  std::mutex mutex;
  std::multiset<Timestep> arrived_at;

  TiBspConfig config;
  config.pattern = Pattern::kIndependent;
  Message input;
  input.dst = 0;
  input.payload = {5};
  config.input_messages.push_back(input);

  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf([&](SubgraphContext& ctx) {
               for (const Message& msg : ctx.messages()) {
                 (void)msg;
                 std::lock_guard lock(mutex);
                 arrived_at.insert(ctx.timestep());
               }
               ctx.voteToHalt();
             }),
             config);
  EXPECT_EQ(arrived_at.size(), 3u);
  EXPECT_EQ(arrived_at.count(0), 1u);
  EXPECT_EQ(arrived_at.count(1), 1u);
  EXPECT_EQ(arrived_at.count(2), 1u);
}

TEST(Engine, WhileModeStopsWhenAllVoteAndNoPendingMessages) {
  EngineFixture fx(2, 10);
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.while_mode = true;

  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result =
      engine.run(factoryOf(
                     [&](SubgraphContext& ctx) {
                       if (ctx.timestep() >= 2) {
                         ctx.voteToHaltTimestep();
                       }
                       ctx.voteToHalt();
                     },
                     [&](SubgraphContext& ctx) {
                       if (ctx.timestep() < 2) {
                         ctx.sendToNextTimestep({1});
                       }
                     }),
                 config);
  // Timestep 2 is the first where everyone votes and nothing is pending.
  EXPECT_EQ(result.timesteps_executed, 3);
}

TEST(Engine, EventuallyDependentMergeReceivesOriginTimesteps) {
  EngineFixture fx(2, 3);
  std::mutex mutex;
  std::map<SubgraphId, std::set<Timestep>> merge_origins;

  TiBspConfig config;
  config.pattern = Pattern::kEventuallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf(
                 [&](SubgraphContext& ctx) {
                   if (ctx.superstep() == 0) {
                     ctx.sendMessageToMerge(
                         {static_cast<std::uint8_t>(ctx.timestep())});
                   }
                   ctx.voteToHalt();
                 },
                 noop,
                 [&](SubgraphContext& ctx) {
                   for (const Message& msg : ctx.messages()) {
                     EXPECT_EQ(msg.dst, ctx.subgraphId());
                     EXPECT_EQ(msg.payload[0],
                               static_cast<std::uint8_t>(msg.origin_timestep));
                     std::lock_guard lock(mutex);
                     merge_origins[ctx.subgraphId()].insert(
                         msg.origin_timestep);
                   }
                   ctx.voteToHalt();
                 }),
             config);
  ASSERT_EQ(merge_origins.size(), fx.pg.numSubgraphs());
  for (const auto& [sg, origins] : merge_origins) {
    EXPECT_EQ(origins, (std::set<Timestep>{0, 1, 2})) << sg;
  }
}

TEST(Engine, ConcurrentIndependentMatchesSerialOutputs) {
  EngineFixture fx(2, 4);
  auto make_factory = [&] {
    return factoryOf([](SubgraphContext& ctx) {
      if (ctx.superstep() == 0) {
        ctx.output(std::to_string(ctx.timestep()) + ":" +
                   std::to_string(ctx.subgraphId()));
      }
      ctx.voteToHalt();
    });
  };
  TiBspConfig serial;
  serial.pattern = Pattern::kIndependent;
  serial.temporal_mode = TemporalMode::kSerial;
  TiBspConfig concurrent = serial;
  concurrent.temporal_mode = TemporalMode::kConcurrent;

  TiBspEngine engine(fx.pg, *fx.provider);
  auto serial_result = engine.run(make_factory(), serial);
  auto concurrent_result = engine.run(make_factory(), concurrent);

  std::multiset<std::string> a(serial_result.outputs.begin(),
                               serial_result.outputs.end());
  std::multiset<std::string> b(concurrent_result.outputs.begin(),
                               concurrent_result.outputs.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4 * fx.pg.numSubgraphs());
}

TEST(Engine, AggregatorVisibleNextTimestep) {
  EngineFixture fx(2, 3);
  std::mutex mutex;
  std::map<Timestep, std::uint64_t> seen;

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf(
                 [&](SubgraphContext& ctx) {
                   if (ctx.superstep() == 0) {
                     {
                       std::lock_guard lock(mutex);
                       seen.emplace(ctx.timestep(),
                                    ctx.aggregatedU64("tokens"));
                     }
                     ctx.aggregate("tokens", 1);
                   }
                   ctx.voteToHalt();
                 }),
             config);
  // t=0 sees nothing; t sees the number of subgraphs (each aggregated 1).
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[1], fx.pg.numSubgraphs());
  EXPECT_EQ(seen[2], fx.pg.numSubgraphs());
}

TEST(Engine, CountersRecordedPerTimestepAndPartition) {
  EngineFixture fx(2, 2);
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result =
      engine.run(factoryOf([&](SubgraphContext& ctx) {
                   if (ctx.superstep() == 0) {
                     ctx.addCounter("touched", 2);
                   }
                   ctx.voteToHalt();
                 }),
                 config);
  EXPECT_EQ(result.stats.counterTotal("touched"),
            2ull * 2 * fx.pg.numSubgraphs());
  const auto& rows = result.stats.counters().at("touched");
  ASSERT_EQ(rows.size(), 2u);
}

TEST(Engine, EndOfTimestepRunsOncePerSubgraphPerTimestep) {
  EngineFixture fx(3, 2);
  std::mutex mutex;
  std::map<std::pair<Timestep, SubgraphId>, int> eot_calls;

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(
      factoryOf([](SubgraphContext& ctx) { ctx.voteToHalt(); },
                [&](SubgraphContext& ctx) {
                  std::lock_guard lock(mutex);
                  ++eot_calls[{ctx.timestep(), ctx.subgraphId()}];
                }),
      config);
  EXPECT_EQ(eot_calls.size(), 2 * fx.pg.numSubgraphs());
  for (const auto& [key, count] : eot_calls) {
    EXPECT_EQ(count, 1) << key.first << "/" << key.second;
  }
}

TEST(Engine, MaintenancePeriodEmitsMarkedRecords) {
  EngineFixture fx(2, 5);
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.maintenance_period = 2;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result = engine.run(
      factoryOf([](SubgraphContext& ctx) { ctx.voteToHalt(); }), config);
  int maintenance_rounds = 0;
  for (const auto& rec : result.stats.supersteps()) {
    if (rec.superstep == -1) {
      ++maintenance_rounds;
    }
  }
  EXPECT_EQ(maintenance_rounds, 2);  // before timesteps 2 and 4
}

TEST(Engine, StatsCoverEveryExecutedSuperstep) {
  EngineFixture fx(2, 2);
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result = engine.run(
      factoryOf([](SubgraphContext& ctx) { ctx.voteToHalt(); }), config);
  // Per timestep: one compute superstep + one EndOfTimestep record.
  EXPECT_EQ(result.stats.totalSupersteps(), 4u);
  EXPECT_GT(result.stats.wallClockNs(), 0);
  for (const auto& rec : result.stats.supersteps()) {
    EXPECT_EQ(rec.parts.size(), fx.pg.numPartitions());
  }
}

TEST(Engine, OutputsCollectedFromAllPartitions) {
  EngineFixture fx(3, 1);
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result = engine.run(factoryOf([](SubgraphContext& ctx) {
                                   if (ctx.superstep() == 0) {
                                     ctx.output("sg" + std::to_string(
                                                           ctx.subgraphId()));
                                   }
                                   ctx.voteToHalt();
                                 }),
                                 config);
  EXPECT_EQ(result.outputs.size(), fx.pg.numSubgraphs());
}

TEST(Engine, ToleratesAnEmptyPartition) {
  // Every vertex in partition 0; partition 1 owns nothing (no subgraphs).
  auto tmpl = smallRoad(3, 3);
  const PartitionAssignment assignment(tmpl->numVertices(), 0);
  auto pg_result = PartitionedGraph::build(tmpl, assignment, 2);
  ASSERT_TRUE(pg_result.isOk());
  const auto& pg = pg_result.value();
  TimeSeriesCollection coll(tmpl, 0, 5);
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);

  std::atomic<int> computes{0};
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(pg, provider);
  const auto result = engine.run(factoryOf([&](SubgraphContext& ctx) {
                                   computes.fetch_add(1);
                                   ctx.voteToHalt();
                                 }),
                                 config);
  EXPECT_EQ(result.timesteps_executed, 1);
  EXPECT_EQ(computes.load(), static_cast<int>(pg.numSubgraphs()));
}

TEST(Engine, ZeroTimestepsIsANoop) {
  EngineFixture fx(2, 3);
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.num_timesteps = 0;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result = engine.run(
      factoryOf([](SubgraphContext&) { FAIL() << "must not run"; }), config);
  EXPECT_EQ(result.timesteps_executed, 0);
  EXPECT_EQ(result.stats.totalSupersteps(), 0u);
}

TEST(Engine, FirstTimestepOffsetRunsTail) {
  EngineFixture fx(2, 5);
  std::mutex mutex;
  std::set<Timestep> seen;
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.first_timestep = 3;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factoryOf([&](SubgraphContext& ctx) {
               {
                 std::lock_guard lock(mutex);
                 seen.insert(ctx.timestep());
               }
               ctx.voteToHalt();
             }),
             config);
  EXPECT_EQ(seen, (std::set<Timestep>{3, 4}));
}

TEST(Engine, SuperstepCapBreaksInfiniteLoops) {
  EngineFixture fx(2, 1);
  const SubgraphId peer = fx.pg.numSubgraphs() - 1;
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.max_supersteps_per_timestep = 5;
  TiBspEngine engine(fx.pg, *fx.provider);
  const auto result =
      engine.run(factoryOf([&](SubgraphContext& ctx) {
                   // Never quiesces: everyone keeps messaging.
                   ctx.sendToSubgraph(ctx.subgraphId() == 0 ? peer : 0, {1});
                   ctx.voteToHalt();
                 }),
                 config);
  // The cap ends the timestep; one extra record for EndOfTimestep.
  EXPECT_LE(result.stats.totalSupersteps(), 6u);
  EXPECT_EQ(result.timesteps_executed, 1);
}

TEST(Engine, MergeOnlyRunsForEventuallyDependent) {
  EngineFixture fx(2, 2);
  std::atomic<int> merges{0};
  auto factory = factoryOf(
      [](SubgraphContext& ctx) { ctx.voteToHalt(); }, noop,
      [&](SubgraphContext& ctx) {
        merges.fetch_add(1);
        ctx.voteToHalt();
      });
  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  TiBspEngine engine(fx.pg, *fx.provider);
  engine.run(factory, config);
  EXPECT_EQ(merges.load(), 0);

  config.pattern = Pattern::kEventuallyDependent;
  engine.run(factory, config);
  EXPECT_EQ(merges.load(), static_cast<int>(fx.pg.numSubgraphs()));
}

}  // namespace
}  // namespace tsg
