// Determinism harness tests: a deterministic job must pass, an
// intentionally schedule-sensitive (racy, but race-free) toy algorithm
// must be flagged, and the canonical digest must frame values so that
// distinct outputs cannot collide by concatenation.
#include "check/determinism.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/digest.h"
#include "common/perturb.h"
#include "core/engine.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;

// --- digest framing --------------------------------------------------------

TEST(Digest, HexIsSixteenLowercaseDigits) {
  check::Digest d;
  d.addU64(42);
  const std::string hex = d.hex();
  EXPECT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
  EXPECT_EQ(hex, check::Digest(d).hex()) << "hex() must not mutate";
}

TEST(Digest, StringFramingPreventsConcatenationCollisions) {
  check::Digest ab_c;
  ab_c.addStrings({"ab", "c"});
  check::Digest a_bc;
  a_bc.addStrings({"a", "bc"});
  EXPECT_NE(ab_c.value(), a_bc.value());
}

TEST(Digest, ContainerSizeIsPartOfTheDigest) {
  check::Digest empty;
  empty.addU64s({});
  check::Digest untouched;
  EXPECT_NE(empty.value(), untouched.value())
      << "an empty vector must still contribute its size";
}

TEST(Digest, DoublesHashByBitPattern) {
  check::Digest pos;
  pos.addDouble(0.0);
  check::Digest neg;
  neg.addDouble(-0.0);
  EXPECT_NE(pos.value(), neg.value());
}

TEST(Digest, TypeTagsSeparateEqualBitPatterns) {
  check::Digest as_u64;
  as_u64.addU64(7);
  check::Digest as_i64;
  as_i64.addI64(7);
  EXPECT_NE(as_u64.value(), as_i64.value());
}

// --- harness mechanics -----------------------------------------------------

TEST(Determinism, HarnessEnablesPerturbationPerRunAndRestores) {
  ASSERT_FALSE(check::perturbEnabled());
  check::DeterminismOptions options;
  options.runs = 3;
  options.seed = 11;
  std::vector<std::uint64_t> seeds;
  const auto report =
      check::checkDeterminism(options, [&](std::int32_t) -> std::string {
        EXPECT_TRUE(check::perturbEnabled());
        seeds.push_back(check::perturbSeed());
        return "constant";
      });
  EXPECT_FALSE(check::perturbEnabled());
  EXPECT_TRUE(report.deterministic);
  EXPECT_TRUE(report.divergence.empty());
  ASSERT_EQ(report.runs.size(), 3u);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_NE(seeds[1], seeds[2]);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(report.runs[i].perturb_seed, seeds[i]);
    EXPECT_EQ(report.runs[i].digest, "constant");
  }
}

TEST(Determinism, DivergenceIsReportedWithTheRunThatDiverged) {
  check::DeterminismOptions options;
  options.runs = 3;
  const auto report =
      check::checkDeterminism(options, [](std::int32_t run) -> std::string {
        return run == 2 ? "different" : "same";
      });
  EXPECT_FALSE(report.deterministic);
  EXPECT_FALSE(report.divergence.empty());
  const std::string rendered =
      check::renderDeterminismReport(report, "toy");
  EXPECT_NE(rendered.find("different"), std::string::npos);
}

// --- end-to-end over the TI-BSP engine -------------------------------------

struct HarnessFixture {
  explicit HarnessFixture(std::uint32_t k)
      : tmpl(smallRoad(4, 4)),
        pg(partitionGraph(tmpl, k)),
        collection(tmpl, /*t0=*/0, /*delta=*/5) {
    for (int t = 0; t < 3; ++t) {
      collection.appendInstance();
    }
    provider = std::make_unique<DirectInstanceProvider>(pg, collection);
  }

  GraphTemplatePtr tmpl;
  PartitionedGraph pg;
  TimeSeriesCollection collection;
  std::unique_ptr<DirectInstanceProvider> provider;
};

constexpr std::int32_t kToySupersteps = 3;

// Intentionally schedule-sensitive, yet completely race-free: each subgraph
// claims a global arrival rank with fetch_add and writes it into its own
// slot. No two threads ever touch the same byte — TSan sees nothing — but
// the recorded ranks depend on which worker reached the counter first, so
// perturbed schedules yield different outputs. This is exactly the bug
// class the harness exists to catch.
class RacyRankProgram final : public TiBspProgram {
 public:
  RacyRankProgram(std::atomic<std::uint64_t>* counter,
                  std::vector<std::uint64_t>* slots)
      : counter_(counter), slots_(slots) {}

  void compute(SubgraphContext& ctx) override {
    const std::uint64_t rank = counter_->fetch_add(1);
    const std::size_t n = ctx.partitionedGraph().numSubgraphs();
    const std::size_t step = static_cast<std::size_t>(
        ctx.timestep() * kToySupersteps + ctx.superstep());
    (*slots_)[step * n + ctx.subgraphId()] = rank;
    if (ctx.superstep() >= kToySupersteps - 1) {
      ctx.voteToHalt();
    }
  }

 private:
  std::atomic<std::uint64_t>* counter_;
  std::vector<std::uint64_t>* slots_;
};

// The well-behaved twin: output depends only on (timestep, superstep,
// subgraph), never on arrival order.
class PureRankProgram final : public TiBspProgram {
 public:
  explicit PureRankProgram(std::vector<std::uint64_t>* slots)
      : slots_(slots) {}

  void compute(SubgraphContext& ctx) override {
    const std::size_t n = ctx.partitionedGraph().numSubgraphs();
    const std::size_t step = static_cast<std::size_t>(
        ctx.timestep() * kToySupersteps + ctx.superstep());
    (*slots_)[step * n + ctx.subgraphId()] = step * n + ctx.subgraphId();
    if (ctx.superstep() >= kToySupersteps - 1) {
      ctx.voteToHalt();
    }
  }

 private:
  std::vector<std::uint64_t>* slots_;
};

TEST(Determinism, RacyToyAlgorithmIsFlagged) {
  HarnessFixture fx(/*k=*/4);
  const std::size_t n = fx.pg.numSubgraphs();
  check::DeterminismOptions options;
  // Many seeds over 4 partitions x 9 recorded rounds: the chance that every
  // perturbed schedule replays the exact same global arrival order is
  // negligible.
  options.runs = 4;
  options.seed = 7;
  const auto report =
      check::checkDeterminism(options, [&](std::int32_t) -> std::string {
        std::atomic<std::uint64_t> counter{0};
        std::vector<std::uint64_t> slots(n * 3 * kToySupersteps, 0);
        TiBspConfig config;
        TiBspEngine engine(fx.pg, *fx.provider);
        (void)engine.run(
            [&](PartitionId) {
              return std::make_unique<RacyRankProgram>(&counter, &slots);
            },
            config);
        check::Digest d;
        d.addU64s(slots);
        return d.hex();
      });
  EXPECT_FALSE(report.deterministic)
      << "the schedule-sensitive toy algorithm produced identical digests "
         "across perturbed runs; the harness failed to flag it";
}

TEST(Determinism, DeterministicAlgorithmPasses) {
  HarnessFixture fx(/*k=*/4);
  const std::size_t n = fx.pg.numSubgraphs();
  check::DeterminismOptions options;
  options.runs = 3;
  options.seed = 7;
  const auto report =
      check::checkDeterminism(options, [&](std::int32_t) -> std::string {
        std::vector<std::uint64_t> slots(n * 3 * kToySupersteps, 0);
        TiBspConfig config;
        TiBspEngine engine(fx.pg, *fx.provider);
        (void)engine.run(
            [&](PartitionId) {
              return std::make_unique<PureRankProgram>(&slots);
            },
            config);
        check::Digest d;
        d.addU64s(slots);
        return d.hex();
      });
  EXPECT_TRUE(report.deterministic) << report.divergence;
}

}  // namespace
}  // namespace tsg
