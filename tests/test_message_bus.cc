#include "runtime/message_bus.h"

#include <gtest/gtest.h>

namespace tsg {
namespace {

Message makeMsg(SubgraphId src, SubgraphId dst, std::uint8_t tag) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.payload = {tag};
  return m;
}

TEST(MessageBus, DeliverMovesOutboxesToInboxes) {
  MessageBus bus(3);
  bus.send(0, 1, makeMsg(10, 11, 1));
  bus.send(0, 2, makeMsg(10, 12, 2));
  bus.send(2, 0, makeMsg(12, 10, 3));
  EXPECT_TRUE(bus.anyPending());

  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.cross_partition_messages, 3u);
  EXPECT_GT(stats.bytes, 0u);

  EXPECT_EQ(bus.inbox(0).size(), 1u);
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_EQ(bus.inbox(2).size(), 1u);
  EXPECT_EQ(bus.inbox(1)[0].payload[0], 1);
  EXPECT_EQ(bus.inbox(2)[0].payload[0], 2);
  EXPECT_EQ(bus.inbox(0)[0].payload[0], 3);
}

TEST(MessageBus, SelfSendIsNotCrossPartition) {
  MessageBus bus(2);
  bus.send(1, 1, makeMsg(5, 5, 9));
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.cross_partition_messages, 0u);
  EXPECT_EQ(stats.cross_partition_bytes, 0u);
  EXPECT_EQ(bus.inbox(1).size(), 1u);
}

TEST(MessageBus, DeliverClearsPreviousInboxes) {
  MessageBus bus(2);
  bus.send(0, 1, makeMsg(0, 1, 1));
  bus.deliver();
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  // Second superstep: nothing sent; inboxes must be emptied.
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_TRUE(bus.inbox(1).empty());
  EXPECT_FALSE(bus.anyPending());
}

TEST(MessageBus, InjectSeedsInboxDirectly) {
  MessageBus bus(2);
  std::vector<Message> seed;
  seed.push_back(makeMsg(kInvalidSubgraph, 3, 7));
  bus.inject(1, std::move(seed));
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_TRUE(bus.anyPending());
  // Injected messages survive until the next deliver().
  bus.deliver();
  EXPECT_TRUE(bus.inbox(1).empty());
}

TEST(MessageBus, ClearAllDropsEverything) {
  MessageBus bus(2);
  bus.send(0, 1, makeMsg(0, 1, 1));
  bus.inject(0, {makeMsg(kInvalidSubgraph, 0, 2)});
  bus.clearAll();
  EXPECT_FALSE(bus.anyPending());
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 0u);
}

TEST(MessageBus, PreservesMessageOrderPerSenderPair) {
  MessageBus bus(2);
  for (std::uint8_t i = 0; i < 10; ++i) {
    bus.send(0, 1, makeMsg(0, 1, i));
  }
  bus.deliver();
  const auto& inbox = bus.inbox(1);
  ASSERT_EQ(inbox.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(inbox[i].payload[0], i);
  }
}

TEST(MessageBus, OutOfRangePartitionAborts) {
  MessageBus bus(2);
  EXPECT_DEATH(bus.send(0, 5, Message{}), "TSG_CHECK");
  EXPECT_DEATH((void)bus.inbox(5), "TSG_CHECK");
}

TEST(Message, ByteSizeIncludesHeaderAndPayload) {
  Message m = makeMsg(1, 2, 0);
  EXPECT_EQ(m.byteSize(), 1u + 2 * sizeof(SubgraphId));
}

}  // namespace
}  // namespace tsg
