#include "runtime/message_bus.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace tsg {
namespace {

Message makeMsg(SubgraphId src, SubgraphId dst, std::uint8_t tag) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.payload = {tag};
  return m;
}

// Inbox content in delivery order, copied out for inspection.
std::vector<Message> flatten(MessageBus::Inbox& inbox) {
  std::vector<Message> out;
  out.reserve(inbox.size());
  for (auto& batch : inbox.batches()) {
    for (auto& msg : batch) {
      out.push_back(msg);
    }
  }
  return out;
}

TEST(MessageBus, DeliverMovesOutboxesToInboxes) {
  MessageBus bus(3);
  bus.send(0, 1, makeMsg(10, 11, 1));
  bus.send(0, 2, makeMsg(10, 12, 2));
  bus.send(2, 0, makeMsg(12, 10, 3));
  EXPECT_TRUE(bus.anyPending());

  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.cross_partition_messages, 3u);
  EXPECT_GT(stats.bytes, 0u);

  EXPECT_EQ(bus.inbox(0).size(), 1u);
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_EQ(bus.inbox(2).size(), 1u);
  EXPECT_EQ(flatten(bus.inbox(1))[0].payload[0], 1);
  EXPECT_EQ(flatten(bus.inbox(2))[0].payload[0], 2);
  EXPECT_EQ(flatten(bus.inbox(0))[0].payload[0], 3);
}

TEST(MessageBus, SelfSendIsNotCrossPartition) {
  MessageBus bus(2);
  bus.send(1, 1, makeMsg(5, 5, 9));
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.cross_partition_messages, 0u);
  EXPECT_EQ(stats.cross_partition_bytes, 0u);
  EXPECT_EQ(bus.inbox(1).size(), 1u);
}

TEST(MessageBus, DeliverClearsPreviousInboxes) {
  MessageBus bus(2);
  bus.send(0, 1, makeMsg(0, 1, 1));
  bus.deliver();
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  // Second superstep: nothing sent; inboxes must be emptied.
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_TRUE(bus.inbox(1).empty());
  EXPECT_FALSE(bus.anyPending());
}

TEST(MessageBus, InjectSeedsInboxDirectly) {
  MessageBus bus(2);
  std::vector<Message> seed;
  seed.push_back(makeMsg(kInvalidSubgraph, 3, 7));
  bus.inject(1, std::move(seed));
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_TRUE(bus.anyPending());
  // Injected messages survive until the next deliver(), and are not counted
  // in delivery stats.
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_TRUE(bus.inbox(1).empty());
}

TEST(MessageBus, ClearAllDropsEverythingIncludingStats) {
  MessageBus bus(2);
  bus.send(0, 1, makeMsg(0, 1, 1));
  bus.inject(0, {makeMsg(kInvalidSubgraph, 0, 2)});
  bus.clearAll();
  EXPECT_FALSE(bus.anyPending());
  // Dropped messages must not surface in a later deliver()'s stats.
  const auto stats = bus.deliver();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(MessageBus, PreservesMessageOrderPerSenderPair) {
  MessageBus bus(2);
  for (std::uint8_t i = 0; i < 10; ++i) {
    bus.send(0, 1, makeMsg(0, 1, i));
  }
  bus.deliver();
  const auto inbox = flatten(bus.inbox(1));
  ASSERT_EQ(inbox.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(inbox[i].payload[0], i);
  }
}

TEST(MessageBus, BatchesAreSenderOrderedWholeOutboxSplices) {
  MessageBus bus(3);
  bus.send(2, 0, makeMsg(20, 0, 2));
  bus.send(0, 0, makeMsg(1, 0, 0));
  bus.send(0, 0, makeMsg(1, 0, 1));
  bus.deliver();
  auto& inbox = bus.inbox(0);
  // One batch per sender, ordered by sender partition id; each batch is the
  // sender's whole outbox vector in send order.
  ASSERT_EQ(inbox.batches().size(), 2u);
  EXPECT_EQ(inbox.batches()[0].size(), 2u);
  EXPECT_EQ(inbox.batches()[0][0].payload[0], 0);
  EXPECT_EQ(inbox.batches()[0][1].payload[0], 1);
  EXPECT_EQ(inbox.batches()[1].size(), 1u);
  EXPECT_EQ(inbox.batches()[1][0].payload[0], 2);
}

TEST(MessageBus, PendingCountTracksSendConsumeCycle) {
  MessageBus bus(3);
  EXPECT_FALSE(bus.anyPending());
  bus.send(1, 2, makeMsg(1, 2, 1));
  EXPECT_TRUE(bus.anyPending());
  bus.deliver();
  EXPECT_TRUE(bus.anyPending());  // message now sits in inbox 2
  bus.inbox(2).clear();
  EXPECT_FALSE(bus.anyPending());
}

TEST(MessageBus, OutOfRangePartitionAborts) {
  MessageBus bus(2);
  EXPECT_DEATH(bus.send(0, 5, Message{}), "TSG_CHECK");
  EXPECT_DEATH((void)bus.inbox(5), "TSG_CHECK");
}

TEST(Message, ByteSizeIncludesFullHeaderAndPayload) {
  Message m = makeMsg(1, 2, 0);
  // Header = src + dst + origin_timestep (the Merge phase keys on it, so it
  // is part of every message's wire size).
  EXPECT_EQ(kMessageHeaderBytes, 2 * sizeof(SubgraphId) + sizeof(Timestep));
  EXPECT_EQ(m.byteSize(), 1u + kMessageHeaderBytes);
}

TEST(PayloadBuffer, SmallPayloadsStayInline) {
  PayloadBuffer buf(std::vector<std::uint8_t>(PayloadBuffer::kInlineCapacity, 3));
  EXPECT_TRUE(buf.isInline());
  EXPECT_EQ(buf.size(), PayloadBuffer::kInlineCapacity);
  EXPECT_EQ(buf[0], 3);
  PayloadBuffer copy = buf;
  EXPECT_TRUE(copy.isInline());
  EXPECT_NE(copy.data(), buf.data());  // inline copies are independent
}

TEST(PayloadBuffer, LargePayloadAdoptsVectorWithoutCopy) {
  std::vector<std::uint8_t> big(100);
  std::iota(big.begin(), big.end(), 0);
  const std::uint8_t* storage = big.data();
  PayloadBuffer buf(std::move(big));
  EXPECT_FALSE(buf.isInline());
  EXPECT_EQ(buf.data(), storage);  // zero-copy adoption
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf[42], 42);
}

TEST(PayloadBuffer, CopiesShareOneHeapBlock) {
  PayloadBuffer buf(std::vector<std::uint8_t>(64, 7));
  EXPECT_EQ(buf.useCount(), 1u);
  PayloadBuffer a = buf;
  PayloadBuffer b = buf;
  EXPECT_EQ(buf.useCount(), 3u);
  EXPECT_EQ(a.data(), buf.data());  // same bytes, not a deep copy
  EXPECT_EQ(b.data(), buf.data());
  {
    PayloadBuffer c = std::move(a);  // move transfers, no refcount change
    EXPECT_EQ(buf.useCount(), 3u);
    EXPECT_EQ(c.data(), buf.data());
  }
  EXPECT_EQ(buf.useCount(), 2u);
}

TEST(PayloadBuffer, AssignReplacesValue) {
  PayloadBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.assign(64, 9);
  EXPECT_FALSE(buf.isInline());
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_EQ(buf[63], 9);
  buf.assign(4, 1);
  EXPECT_TRUE(buf.isInline());
  EXPECT_EQ(buf.size(), 4u);
}

// Multi-threaded stress: k workers send concurrently (each into its own
// thread-confined row) across several supersteps while consuming their
// inboxes from the previous superstep — exactly the engine's phase contract.
// Asserts delivery-stats invariants, per-sender FIFO order, and payload
// integrity for both inline and shared heap-block payloads.
TEST(MessageBus, ConcurrentSendersStress) {
  constexpr std::uint32_t k = 8;
  constexpr int kSupersteps = 6;
  constexpr int kPerDest = 64;
  constexpr std::size_t kSmallSize = 8;   // inline
  constexpr std::size_t kLargeSize = 64;  // shared heap block
  MessageBus bus(k);

  auto fillByte = [](PartitionId from, int superstep) {
    return static_cast<std::uint8_t>(from * 31 + superstep * 7 + 1);
  };

  for (int s = 0; s <= kSupersteps; ++s) {
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (PartitionId p = 0; p < k; ++p) {
      threads.emplace_back([&, p, s] {
        // Phase 1: consume last superstep's inbox on the worker thread.
        if (s > 0) {
          auto& inbox = bus.inbox(p);
          std::vector<std::int32_t> last_seq(k, -1);
          std::size_t seen = 0;
          for (const auto& batch : inbox.batches()) {
            for (const auto& msg : batch) {
              ++seen;
              const PartitionId from = msg.src;
              ASSERT_LT(from, k);
              // FIFO per sender: sequence numbers strictly increase.
              EXPECT_GT(msg.origin_timestep, last_seq[from]);
              last_seq[from] = msg.origin_timestep;
              // Payload integrity (the large ones share one heap block
              // with every other destination's copy).
              const std::uint8_t want = fillByte(from, s - 1);
              ASSERT_FALSE(msg.payload.empty());
              EXPECT_EQ(msg.payload[0], want);
              EXPECT_EQ(msg.payload[msg.payload.size() - 1], want);
            }
          }
          EXPECT_EQ(seen, inbox.size());
          EXPECT_EQ(seen, std::size_t{k} * kPerDest);
          inbox.clear();
        }
        // Phase 2: send this superstep's traffic.
        if (s < kSupersteps) {
          PayloadBuffer shared(
              std::vector<std::uint8_t>(kLargeSize, fillByte(p, s)));
          for (std::int32_t seq = 0; seq < kPerDest; ++seq) {
            for (PartitionId to = 0; to < k; ++to) {
              Message msg;
              msg.src = p;
              msg.dst = to;
              msg.origin_timestep = seq;  // sequence number for FIFO checks
              if (seq % 2 == 0) {
                msg.payload.assign(kSmallSize, fillByte(p, s));
              } else {
                msg.payload = shared;  // refcount bump, no byte copy
              }
              bus.send(p, to, std::move(msg));
            }
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }

    if (s < kSupersteps) {
      const auto stats = bus.deliver();
      const std::uint64_t per_pair =
          (kPerDest / 2) * (kSmallSize + kMessageHeaderBytes) +
          (kPerDest / 2) * (kLargeSize + kMessageHeaderBytes);
      EXPECT_EQ(stats.messages, std::uint64_t{k} * k * kPerDest);
      EXPECT_EQ(stats.bytes, std::uint64_t{k} * k * per_pair);
      EXPECT_EQ(stats.cross_partition_messages,
                std::uint64_t{k} * (k - 1) * kPerDest);
      EXPECT_EQ(stats.cross_partition_bytes,
                std::uint64_t{k} * (k - 1) * per_pair);
    }
  }
  EXPECT_FALSE(bus.anyPending());
}

}  // namespace
}  // namespace tsg
