#include "algorithms/sssp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algorithms/reference.h"
#include "generators/topology.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;

// Parameterized over (grid size, partitions, seed): subgraph-centric SSSP
// must match sequential Dijkstra everywhere.
class SsspProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t, int>> {};

TEST_P(SsspProperty, MatchesDijkstraOnRandomLatencies) {
  const auto [size, k, seed] = GetParam();
  auto tmpl = smallRoad(size, size, seed);
  const auto pg = partitionGraph(tmpl, k, seed + 1);
  const auto coll = roadCollection(tmpl, 2, seed + 2);
  DirectInstanceProvider provider(pg, coll);

  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");
  SsspOptions options;
  options.source = static_cast<VertexIndex>(seed % tmpl->numVertices());
  options.latency_attr = latency;
  options.timestep = 1;  // exercise a non-zero instance
  const auto run = runSubgraphSssp(pg, provider, options);

  const auto& weights = coll.instance(1).edgeCol(latency).asDouble();
  const auto expected = reference::dijkstra(*tmpl, weights, options.source);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(run.distances[v])) << v;
    } else {
      EXPECT_NEAR(run.distances[v], expected[v], 1e-9) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspProperty,
    ::testing::Combine(::testing::Values(6, 10), ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1, 7, 13)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SubgraphSssp, UnweightedDegeneratesToBfs) {
  auto tmpl = testing::smallSocial(100);
  const auto pg = partitionGraph(tmpl, 3);
  // The tweet template has no latency attr; build an instance-less
  // collection for the provider.
  TimeSeriesCollection coll(tmpl, 0, 5);
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);

  SsspOptions options;
  options.source = 0;  // kUnweighted by default
  const auto run = runSubgraphSssp(pg, provider, options);
  const auto levels = reference::bfsLevels(*tmpl, 0);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (levels[v] < 0) {
      EXPECT_TRUE(std::isinf(run.distances[v]));
    } else {
      EXPECT_DOUBLE_EQ(run.distances[v], levels[v]);
    }
  }
}

TEST(SubgraphSssp, FewerSuperstepsThanDiameter) {
  // The headline subgraph-centric win: supersteps scale with partition
  // boundary hops, not graph diameter.
  auto tmpl = smallRoad(16, 16);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 1);
  DirectInstanceProvider provider(pg, coll);

  SsspOptions options;
  options.source = 0;
  options.latency_attr = tmpl->edgeSchema().requireIndex("latency");
  const auto run = runSubgraphSssp(pg, provider, options);

  const auto diameter = tmpl->estimateDiameter();
  EXPECT_LT(run.exec.stats.totalSupersteps(), diameter / 2)
      << "subgraph-centric SSSP should need far fewer supersteps than the "
         "diameter ("
      << diameter << ")";
}

TEST(SubgraphSssp, SourceDistanceIsZero) {
  auto tmpl = smallRoad(5, 5);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 1);
  DirectInstanceProvider provider(pg, coll);
  SsspOptions options;
  options.source = 12;
  options.latency_attr = 0;
  const auto run = runSubgraphSssp(pg, provider, options);
  EXPECT_DOUBLE_EQ(run.distances[12], 0.0);
}

TEST(SubgraphSssp, InvalidSourceAborts) {
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 1);
  DirectInstanceProvider provider(pg, coll);
  SsspOptions options;
  options.source = 1 << 20;
  EXPECT_DEATH((void)runSubgraphSssp(pg, provider, options), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg
