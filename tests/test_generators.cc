#include "generators/instances.h"
#include "generators/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/reference.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::share;
using testing::unwrap;

TEST(RoadGenerator, ConnectedLargeDiameterLowDegree) {
  RoadNetworkOptions options;
  options.width = 30;
  options.height = 30;
  options.seed = 2;
  const auto g = unwrap(
      makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema()));
  EXPECT_EQ(g.numVertices(), 900u);

  // Connected: BFS reaches everything.
  const auto levels = reference::bfsLevels(g, 0);
  EXPECT_TRUE(std::all_of(levels.begin(), levels.end(),
                          [](std::int32_t l) { return l >= 0; }));

  // Large diameter (lattice-like: at least width).
  EXPECT_GE(g.estimateDiameter(), 30u);

  // Low, near-uniform degree (<= 4 lattice + diagonals + stitches).
  std::size_t max_degree = 0;
  for (VertexIndex v = 0; v < g.numVertices(); ++v) {
    max_degree = std::max(max_degree, g.outDegree(v));
  }
  EXPECT_LE(max_degree, 10u);
}

TEST(RoadGenerator, DeterministicForSeed) {
  RoadNetworkOptions options;
  options.width = 10;
  options.height = 10;
  options.seed = 42;
  const auto a = unwrap(
      makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema()));
  const auto b = unwrap(
      makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema()));
  EXPECT_TRUE(a == b);
  options.seed = 43;
  const auto c = unwrap(
      makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema()));
  EXPECT_FALSE(a == c);
}

TEST(RoadGenerator, ZeroDimensionRejected) {
  RoadNetworkOptions options;
  options.width = 0;
  EXPECT_FALSE(
      makeRoadNetwork(options, AttributeSchema{}, AttributeSchema{}).isOk());
}

TEST(PowerLawGenerator, SmallDiameterSkewedDegrees) {
  PreferentialAttachmentOptions options;
  options.num_vertices = 2000;
  options.edges_per_vertex = 2;
  options.seed = 3;
  const auto g = unwrap(makePreferentialAttachment(
      options, tweetVertexSchema(), AttributeSchema{}));
  EXPECT_EQ(g.numVertices(), 2000u);

  // Connected by construction; small-world diameter.
  const auto levels = reference::bfsLevels(g, 0);
  EXPECT_TRUE(std::all_of(levels.begin(), levels.end(),
                          [](std::int32_t l) { return l >= 0; }));
  EXPECT_LE(g.estimateDiameter(), 15u);

  // Power-law signature: max degree far above the mean.
  std::size_t max_degree = 0;
  for (VertexIndex v = 0; v < g.numVertices(); ++v) {
    max_degree = std::max(max_degree, g.outDegree(v));
  }
  const double mean_degree =
      static_cast<double>(g.numEdges()) / static_cast<double>(g.numVertices());
  EXPECT_GT(static_cast<double>(max_degree), 10.0 * mean_degree);
}

TEST(PowerLawGenerator, ParameterValidation) {
  PreferentialAttachmentOptions options;
  options.num_vertices = 2;
  options.edges_per_vertex = 2;
  EXPECT_FALSE(makePreferentialAttachment(options, AttributeSchema{},
                                          AttributeSchema{})
                   .isOk());
}

TEST(WattsStrogatz, RingPlusRewiring) {
  WattsStrogatzOptions options;
  options.num_vertices = 200;
  options.neighbors = 4;
  options.rewire_probability = 0.1;
  options.seed = 9;
  const auto g = unwrap(
      makeWattsStrogatz(options, AttributeSchema{}, AttributeSchema{}));
  EXPECT_EQ(g.numVertices(), 200u);
  // n*k/2 undirected edges -> n*k directed slots.
  EXPECT_EQ(g.numEdges(), 200u * 4);
}

TEST(WattsStrogatz, OddNeighborsRejected) {
  WattsStrogatzOptions options;
  options.neighbors = 3;
  EXPECT_FALSE(
      makeWattsStrogatz(options, AttributeSchema{}, AttributeSchema{}).isOk());
}

TEST(RoadInstances, LatenciesWithinRangeAndDeterministic) {
  auto tmpl = testing::smallRoad(6, 6);
  RoadInstanceOptions options;
  options.num_timesteps = 5;
  options.min_latency = 2.0;
  options.max_latency = 9.0;
  options.seed = 4;
  const auto coll = unwrap(makeRoadInstances(tmpl, options));
  ASSERT_EQ(coll.numInstances(), 5u);
  EXPECT_TRUE(coll.validate().isOk());
  for (Timestep t = 0; t < 5; ++t) {
    for (const double latency : coll.instance(t).edgeCol(0).asDouble()) {
      EXPECT_GE(latency, 2.0);
      EXPECT_LT(latency, 9.0);
    }
  }
  const auto coll2 = unwrap(makeRoadInstances(tmpl, options));
  EXPECT_EQ(coll.instance(3).edgeCol(0), coll2.instance(3).edgeCol(0));
}

TEST(RoadInstances, RequiresLatencyAttribute) {
  auto tmpl = testing::smallSocial(20);  // tweet schema, no latency
  EXPECT_FALSE(makeRoadInstances(tmpl, {}).isOk());
}

TEST(SirInstances, MemeSpreadsMonotonicallyFromSeeds) {
  auto tmpl = testing::smallSocial(200);
  SirTweetOptions options;
  options.num_timesteps = 20;
  options.hit_probability = 0.5;
  options.num_seed_vertices = 3;
  options.seed = 6;
  const auto coll = unwrap(makeSirTweetInstances(tmpl, options));
  ASSERT_EQ(coll.numInstances(), 20u);

  // t=0 has exactly the seed carriers.
  std::size_t carriers_t0 = 0;
  for (const auto& tweets : coll.instance(0).vertexCol(0).asStringList()) {
    carriers_t0 +=
        std::count(tweets.begin(), tweets.end(), options.meme) > 0 ? 1 : 0;
  }
  EXPECT_EQ(carriers_t0, options.num_seed_vertices);

  // Cumulative carrier set only grows (SIR: infected then recovered).
  std::vector<bool> ever(tmpl->numVertices(), false);
  std::size_t prev_total = 0;
  for (Timestep t = 0; t < 20; ++t) {
    const auto& lists = coll.instance(t).vertexCol(0).asStringList();
    for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
      if (std::count(lists[v].begin(), lists[v].end(), options.meme) > 0) {
        ever[v] = true;
      }
    }
    const auto total =
        static_cast<std::size_t>(std::count(ever.begin(), ever.end(), true));
    EXPECT_GE(total, prev_total);
    prev_total = total;
  }
  EXPECT_GT(prev_total, options.num_seed_vertices);
}

TEST(SirInstances, HigherHitProbabilitySpreadsFurther) {
  auto tmpl = testing::smallSocial(300);
  auto carriersAfter = [&](double hit) {
    SirTweetOptions options;
    options.num_timesteps = 15;
    options.hit_probability = hit;
    options.seed = 8;
    const auto coll = unwrap(makeSirTweetInstances(tmpl, options));
    std::vector<bool> ever(tmpl->numVertices(), false);
    for (Timestep t = 0; t < 15; ++t) {
      const auto& lists = coll.instance(t).vertexCol(0).asStringList();
      for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
        if (!lists[v].empty() &&
            std::count(lists[v].begin(), lists[v].end(), options.meme) > 0) {
          ever[v] = true;
        }
      }
    }
    return std::count(ever.begin(), ever.end(), true);
  };
  EXPECT_GT(carriersAfter(0.6), carriersAfter(0.05));
}

TEST(SirInstances, InfectiousVerticesTweetEveryInfectedStep) {
  auto tmpl = testing::smallSocial(50);
  SirTweetOptions options;
  options.num_timesteps = 6;
  options.hit_probability = 0.0;  // no spread: only seeds tweet
  options.num_seed_vertices = 2;
  options.infectious_timesteps = 3;
  options.background_probability = 0.0;
  options.seed = 10;
  const auto coll = unwrap(makeSirTweetInstances(tmpl, options));
  // Seeds tweet for exactly infectious_timesteps steps.
  std::vector<std::size_t> tweeting(6, 0);
  for (Timestep t = 0; t < 6; ++t) {
    for (const auto& tweets : coll.instance(t).vertexCol(0).asStringList()) {
      tweeting[t] += tweets.empty() ? 0 : 1;
    }
  }
  EXPECT_EQ(tweeting[0], 2u);
  EXPECT_EQ(tweeting[1], 2u);
  EXPECT_EQ(tweeting[2], 2u);
  EXPECT_EQ(tweeting[3], 0u);
  EXPECT_EQ(tweeting[4], 0u);
}

TEST(SirInstances, BadParametersRejected) {
  auto tmpl = testing::smallSocial(20);
  SirTweetOptions options;
  options.hit_probability = 1.5;
  EXPECT_FALSE(makeSirTweetInstances(tmpl, options).isOk());
  options.hit_probability = 0.5;
  options.num_seed_vertices = 0;
  EXPECT_FALSE(makeSirTweetInstances(tmpl, options).isOk());
  options.num_seed_vertices = 100;  // more than vertices
  EXPECT_FALSE(makeSirTweetInstances(tmpl, options).isOk());
}

TEST(SirInstances, RequiresTweetsAttribute) {
  auto tmpl = testing::smallRoad(4, 4);  // road schema
  EXPECT_FALSE(makeSirTweetInstances(tmpl, {}).isOk());
}

}  // namespace
}  // namespace tsg
