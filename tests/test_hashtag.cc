#include "algorithms/hashtag.h"

#include <gtest/gtest.h>

#include <tuple>

#include "algorithms/reference.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallSocial;
using testing::tweetCollection;

// Parameterized over (graph size, partitions, temporal mode): the merged
// counts must equal a direct sequential count.
class HashtagProperty
    : public ::testing::TestWithParam<
          std::tuple<int, std::uint32_t, TemporalMode>> {};

TEST_P(HashtagProperty, CountsMatchDirectTally) {
  const auto [n, k, mode] = GetParam();
  auto tmpl = smallSocial(n);
  const auto pg = partitionGraph(tmpl, k);
  const auto coll = tweetCollection(tmpl, 10, 0.3);
  DirectInstanceProvider provider(pg, coll);

  HashtagOptions options;
  options.tag = "#meme";
  options.tweets_attr = 0;
  options.temporal_mode = mode;
  const auto run = runHashtagAggregation(pg, provider, options);

  const auto expected = reference::hashtagCounts(coll, 0, "#meme");
  ASSERT_EQ(run.counts.size(), expected.size());
  EXPECT_EQ(run.counts, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashtagProperty,
    ::testing::Combine(::testing::Values(50, 150),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(TemporalMode::kSerial,
                                         TemporalMode::kConcurrent)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == TemporalMode::kSerial ? "_serial"
                                                               : "_conc");
    });

TEST(Hashtag, RateOfChangeIsFirstDifference) {
  auto tmpl = smallSocial(80);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 8, 0.4);
  DirectInstanceProvider provider(pg, coll);
  HashtagOptions options;
  options.tweets_attr = 0;
  const auto run = runHashtagAggregation(pg, provider, options);
  ASSERT_EQ(run.rate_of_change.size(), run.counts.size());
  ASSERT_FALSE(run.counts.empty());
  EXPECT_EQ(run.rate_of_change[0], 0);
  for (std::size_t i = 1; i < run.counts.size(); ++i) {
    EXPECT_EQ(run.rate_of_change[i],
              static_cast<std::int64_t>(run.counts[i]) -
                  static_cast<std::int64_t>(run.counts[i - 1]));
  }
}

TEST(Hashtag, MasterEmitsOneOutputLinePerTimestep) {
  auto tmpl = smallSocial(60);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = tweetCollection(tmpl, 6, 0.3);
  DirectInstanceProvider provider(pg, coll);
  HashtagOptions options;
  options.tweets_attr = 0;
  const auto run = runHashtagAggregation(pg, provider, options);
  EXPECT_EQ(run.exec.outputs.size(), 6u);
  for (const auto& line : run.exec.outputs) {
    EXPECT_EQ(line.rfind("hashtag,", 0), 0u);
  }
}

TEST(Hashtag, UnknownTagYieldsAllZeros) {
  auto tmpl = smallSocial(40);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 5, 0.3);
  DirectInstanceProvider provider(pg, coll);
  HashtagOptions options;
  options.tag = "#nosuchtag_xyz";
  options.tweets_attr = 0;
  const auto run = runHashtagAggregation(pg, provider, options);
  for (const auto c : run.counts) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(Hashtag, SubRangeOfTimesteps) {
  auto tmpl = smallSocial(60);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 10, 0.4);
  DirectInstanceProvider provider(pg, coll);
  HashtagOptions options;
  options.tweets_attr = 0;
  options.first_timestep = 3;
  options.num_timesteps = 4;
  const auto run = runHashtagAggregation(pg, provider, options);
  const auto expected = reference::hashtagCounts(coll, 0, "#meme");
  ASSERT_EQ(run.counts.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(run.counts[i], expected[3 + i]) << i;
  }
}

}  // namespace
}  // namespace tsg
