// Shared fixtures and helpers for the tsgraph test suite.
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/instance_provider.h"
#include "graph/collection.h"
#include "graph/graph_template.h"
#include "partition/partitioned_graph.h"
#include "partition/partitioner.h"
#include "metrics/stats.h"

namespace tsg::testing {

// Unwraps a Result<T>, failing the test with the status message otherwise.
template <typename T>
T unwrap(Result<T> result) {
  if (!result.isOk()) {
    ADD_FAILURE() << "Result error: " << result.status().toString();
    abort();
  }
  return std::move(result).value();
}

inline GraphTemplatePtr share(GraphTemplate tmpl) {
  return std::make_shared<GraphTemplate>(std::move(tmpl));
}

// Process-unique scratch directory name. ctest runs every TEST in its own
// process, so a static counter alone makes concurrent tests (ctest -j)
// collide on the same path; the pid disambiguates them.
inline std::string uniqueTempDir(const std::string& prefix) {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          (prefix + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++)))
      .string();
}

// RAII scratch directory. Prefer this over calling uniqueTempDir directly:
// the destructor removes the tree on every exit path (including early
// returns and fixtures without a TearDown), so failed tests don't leak
// directories into /tmp.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix) : path_(uniqueTempDir(prefix)) {}
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort; never throws
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Three vertices, two undirected edges, one attribute of each flavor a
// streaming/instance test needs (string-list, bool, double). Small enough
// to hand-compute expected columns.
inline GraphTemplatePtr tinyTemplate() {
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.vertexSchema().add("tweets", AttrType::kStringList);
  builder.vertexSchema().add("active", AttrType::kBool);
  builder.edgeSchema().add("latency", AttrType::kDouble);
  builder.addVertex(1);
  builder.addVertex(2);
  builder.addUndirectedEdge(0, 1, 2);
  return share(unwrap(builder.build()));
}

// Reads every instance through both providers and compares all columns.
inline void expectProvidersAgree(const PartitionedGraph& pg,
                                 const TimeSeriesCollection& coll,
                                 InstanceProvider& lazy) {
  DirectInstanceProvider direct(pg, coll);
  ASSERT_EQ(lazy.numInstances(), coll.numInstances());
  EXPECT_EQ(lazy.t0(), coll.t0());
  EXPECT_EQ(lazy.delta(), coll.delta());
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    for (Timestep t = 0; t < static_cast<Timestep>(coll.numInstances());
         ++t) {
      const auto& a = direct.instanceFor(p, t);
      const auto& b = lazy.instanceFor(p, t);
      ASSERT_EQ(a.timestep, b.timestep);
      ASSERT_EQ(a.timestamp, b.timestamp);
      ASSERT_EQ(a.vertex_cols.size(), b.vertex_cols.size());
      ASSERT_EQ(a.edge_cols.size(), b.edge_cols.size());
      for (std::size_t c = 0; c < a.vertex_cols.size(); ++c) {
        EXPECT_EQ(a.vertex_cols[c], b.vertex_cols[c])
            << "p=" << p << " t=" << t << " vcol=" << c;
      }
      for (std::size_t c = 0; c < a.edge_cols.size(); ++c) {
        EXPECT_EQ(a.edge_cols[c], b.edge_cols[c])
            << "p=" << p << " t=" << t << " ecol=" << c;
      }
    }
  }
}

// A small connected road-like template with a "latency" edge attribute.
inline GraphTemplatePtr smallRoad(std::uint32_t width = 8,
                                  std::uint32_t height = 8,
                                  std::uint64_t seed = 3) {
  RoadNetworkOptions options;
  options.width = width;
  options.height = height;
  options.seed = seed;
  return share(
      unwrap(makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema())));
}

// A small power-law template with a "tweets" vertex attribute.
inline GraphTemplatePtr smallSocial(std::uint32_t n = 64,
                                    std::uint64_t seed = 3) {
  PreferentialAttachmentOptions options;
  options.num_vertices = n;
  options.edges_per_vertex = 2;
  options.seed = seed;
  return share(unwrap(makePreferentialAttachment(
      options, tweetVertexSchema(), AttributeSchema{})));
}

inline PartitionedGraph partitionGraph(GraphTemplatePtr tmpl,
                                       std::uint32_t k,
                                       std::uint64_t seed = 11) {
  const BfsPartitioner partitioner(seed);
  const auto assignment = partitioner.assign(*tmpl, k);
  return unwrap(PartitionedGraph::build(std::move(tmpl), assignment, k));
}

// Road collection with uniform random latencies.
inline TimeSeriesCollection roadCollection(GraphTemplatePtr tmpl,
                                           std::uint32_t timesteps,
                                           std::uint64_t seed = 5,
                                           std::int64_t delta = 5) {
  RoadInstanceOptions options;
  options.num_timesteps = timesteps;
  options.seed = seed;
  options.delta = delta;
  options.min_latency = 1.0;
  options.max_latency = 10.0;
  return unwrap(makeRoadInstances(std::move(tmpl), options));
}

// Tweet collection with SIR meme propagation.
inline TimeSeriesCollection tweetCollection(GraphTemplatePtr tmpl,
                                            std::uint32_t timesteps,
                                            double hit_probability = 0.3,
                                            std::uint64_t seed = 5) {
  SirTweetOptions options;
  options.num_timesteps = timesteps;
  options.hit_probability = hit_probability;
  options.seed = seed;
  options.num_seed_vertices = 2;
  return unwrap(makeSirTweetInstances(std::move(tmpl), options));
}

// --- Hand-computed straggler fixture ------------------------------------
// Shared by test_stats and test_analysis so RunStats::modelledParallelNs and
// analyzeCriticalPath are checked against the SAME arithmetic. Under
// fixtureNetworkModel() (1 byte = 8 ns, 100 ns/message, 1000 ns/barrier):
//
//   (t0,s0): busy {120, 350}  straggler 1, wait 230, comm 1200 -> 2550
//   (t0,s1): busy { 50, 400}  straggler 1, wait 350            -> 1400
//   (t1,s0): busy {500, 100}  straggler 0, wait 400            -> 1500
//
// modelledParallelNs = 5450 = critical-path busy 1250 + comm 1200 +
// barriers 3000; total busy 1520; total barrier wait 980, of which
// partition 1 is blamed for 580 (~59.2%, the dominant straggler).

inline NetworkModel fixtureNetworkModel() {
  NetworkModel net;
  net.bandwidth_bytes_per_sec = 125e6;  // 1 byte = 8 ns
  net.per_message_ns = 100;
  net.per_superstep_barrier_ns = 1000;
  return net;
}

inline RunStats stragglerFixtureStats() {
  RunStats stats(2);
  SuperstepRecord a;
  a.timestep = 0;
  a.superstep = 0;
  a.parts.resize(2);
  a.parts[0].compute_ns = 100;
  a.parts[0].send_ns = 20;
  a.parts[1].compute_ns = 300;
  a.parts[1].send_ns = 30;
  a.parts[1].load_ns = 20;
  a.cross_partition_bytes = 125;   // 1000 ns at 125 MB/s
  a.cross_partition_messages = 2;  // 200 ns
  a.delivered_messages = 4;
  a.delivered_bytes = 64;
  stats.addSuperstep(std::move(a));

  SuperstepRecord b;
  b.timestep = 0;
  b.superstep = 1;
  b.parts.resize(2);
  b.parts[0].compute_ns = 50;
  b.parts[1].compute_ns = 400;
  stats.addSuperstep(std::move(b));

  SuperstepRecord c;
  c.timestep = 1;
  c.superstep = 0;
  c.parts.resize(2);
  c.parts[0].compute_ns = 500;
  c.parts[1].compute_ns = 100;
  stats.addSuperstep(std::move(c));
  return stats;
}

// --- Minimal JSON validity checker (grammar only, no DOM) ---------------
// Used to assert that exported traces and stats are well-formed without
// pulling a JSON library into the build.

namespace json_detail {

inline void skipWs(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

inline bool parseValue(std::string_view s, std::size_t& i, int depth);

inline bool parseString(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') {
    return false;
  }
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      ++i;
      if (i >= s.size()) {
        return false;
      }
      const char esc = s[i];
      if (esc == 'u') {
        for (int h = 0; h < 4; ++h) {
          ++i;
          if (i >= s.size() || std::isxdigit(static_cast<unsigned char>(
                                   s[i])) == 0) {
            return false;
          }
        }
      } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                 std::string_view::npos) {
        return false;
      }
    }
    ++i;
  }
  return false;  // unterminated
}

inline bool parseNumber(std::string_view s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') {
    ++i;
  }
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) !=
                              0 ||
                          s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                          s[i] == '+' || s[i] == '-')) {
    ++i;
  }
  return i > start;
}

inline bool parseValue(std::string_view s, std::size_t& i, int depth) {
  if (depth > 128) {
    return false;
  }
  skipWs(s, i);
  if (i >= s.size()) {
    return false;
  }
  const char c = s[i];
  if (c == '{') {
    ++i;
    skipWs(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      skipWs(s, i);
      if (!parseString(s, i)) {
        return false;
      }
      skipWs(s, i);
      if (i >= s.size() || s[i] != ':') {
        return false;
      }
      ++i;
      if (!parseValue(s, i, depth + 1)) {
        return false;
      }
      skipWs(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++i;
    skipWs(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!parseValue(s, i, depth + 1)) {
        return false;
      }
      skipWs(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '"') {
    return parseString(s, i);
  }
  for (const std::string_view word : {"true", "false", "null"}) {
    if (s.substr(i, word.size()) == word) {
      i += word.size();
      return true;
    }
  }
  return parseNumber(s, i);
}

}  // namespace json_detail

// True iff `text` is one complete, well-formed JSON value.
inline bool isValidJson(std::string_view text) {
  std::size_t i = 0;
  if (!json_detail::parseValue(text, i, 0)) {
    return false;
  }
  json_detail::skipWs(text, i);
  return i == text.size();
}

}  // namespace tsg::testing
