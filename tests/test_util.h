// Shared fixtures and helpers for the tsgraph test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "generators/instances.h"
#include "generators/topology.h"
#include "gofs/instance_provider.h"
#include "graph/collection.h"
#include "graph/graph_template.h"
#include "partition/partitioned_graph.h"
#include "partition/partitioner.h"

namespace tsg::testing {

// Unwraps a Result<T>, failing the test with the status message otherwise.
template <typename T>
T unwrap(Result<T> result) {
  if (!result.isOk()) {
    ADD_FAILURE() << "Result error: " << result.status().toString();
    abort();
  }
  return std::move(result).value();
}

inline GraphTemplatePtr share(GraphTemplate tmpl) {
  return std::make_shared<GraphTemplate>(std::move(tmpl));
}

// A small connected road-like template with a "latency" edge attribute.
inline GraphTemplatePtr smallRoad(std::uint32_t width = 8,
                                  std::uint32_t height = 8,
                                  std::uint64_t seed = 3) {
  RoadNetworkOptions options;
  options.width = width;
  options.height = height;
  options.seed = seed;
  return share(
      unwrap(makeRoadNetwork(options, AttributeSchema{}, roadEdgeSchema())));
}

// A small power-law template with a "tweets" vertex attribute.
inline GraphTemplatePtr smallSocial(std::uint32_t n = 64,
                                    std::uint64_t seed = 3) {
  PreferentialAttachmentOptions options;
  options.num_vertices = n;
  options.edges_per_vertex = 2;
  options.seed = seed;
  return share(unwrap(makePreferentialAttachment(
      options, tweetVertexSchema(), AttributeSchema{})));
}

inline PartitionedGraph partitionGraph(GraphTemplatePtr tmpl,
                                       std::uint32_t k,
                                       std::uint64_t seed = 11) {
  const BfsPartitioner partitioner(seed);
  const auto assignment = partitioner.assign(*tmpl, k);
  return unwrap(PartitionedGraph::build(std::move(tmpl), assignment, k));
}

// Road collection with uniform random latencies.
inline TimeSeriesCollection roadCollection(GraphTemplatePtr tmpl,
                                           std::uint32_t timesteps,
                                           std::uint64_t seed = 5,
                                           std::int64_t delta = 5) {
  RoadInstanceOptions options;
  options.num_timesteps = timesteps;
  options.seed = seed;
  options.delta = delta;
  options.min_latency = 1.0;
  options.max_latency = 10.0;
  return unwrap(makeRoadInstances(std::move(tmpl), options));
}

// Tweet collection with SIR meme propagation.
inline TimeSeriesCollection tweetCollection(GraphTemplatePtr tmpl,
                                            std::uint32_t timesteps,
                                            double hit_probability = 0.3,
                                            std::uint64_t seed = 5) {
  SirTweetOptions options;
  options.num_timesteps = timesteps;
  options.hit_probability = hit_probability;
  options.seed = seed;
  options.num_seed_vertices = 2;
  return unwrap(makeSirTweetInstances(std::move(tmpl), options));
}

}  // namespace tsg::testing
