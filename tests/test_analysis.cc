#include "metrics/analysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "algorithms/tdsp.h"
#include "common/json.h"
#include "gofs/instance_provider.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "test_util.h"

namespace tsg {
namespace {

const MetricComparison* findMetric(const CompareResult& result,
                                   const std::string& name) {
  const auto it = std::find_if(
      result.metrics.begin(), result.metrics.end(),
      [&name](const MetricComparison& m) { return m.metric == name; });
  return it == result.metrics.end() ? nullptr : &*it;
}

LoadedRunStats loadFixture(const std::string& label) {
  RunStats stats = testing::stragglerFixtureStats();
  stats.setWallClockNs(1000);
  return testing::unwrap(runStatsFromJson(runStatsToJson(stats, label)));
}

// --- Critical-path decomposition ----------------------------------------

TEST(Analysis, ReconcilesWithModelledParallelTime) {
  const RunStats stats = testing::stragglerFixtureStats();
  const NetworkModel net = testing::fixtureNetworkModel();
  const auto analysis = analyzeCriticalPath(stats, net);
  // The decomposition's invariant: busy + comm + barriers is exactly the
  // modelled parallel time RunStats reports.
  EXPECT_EQ(analysis.modelled_parallel_ns, stats.modelledParallelNs(net));
  EXPECT_EQ(analysis.critical_path_busy_ns + analysis.comm_ns +
                analysis.barrier_ns,
            analysis.modelled_parallel_ns);
}

// The same identity must hold for records produced by the dependency-
// driven scheduler (`--schedule=async`), whose supersteps interleave across
// timesteps — not just the barrier-aligned BSP records the fixture models.
TEST(Analysis, ReconcilesUnderAsyncScheduleRecords) {
  auto tmpl = testing::smallRoad(8, 8);
  auto pg = testing::partitionGraph(tmpl, 3);
  auto coll = testing::roadCollection(tmpl, 5);
  DirectInstanceProvider provider(pg, coll);
  TdspOptions options;
  options.latency_attr = tmpl->edgeSchema().requireIndex("latency");
  options.schedule = Schedule::kAsync;
  const auto run = runTdsp(pg, provider, options);
  ASSERT_FALSE(run.exec.stats.supersteps().empty());

  const NetworkModel net = testing::fixtureNetworkModel();
  const auto analysis = analyzeCriticalPath(run.exec.stats, net);
  EXPECT_EQ(analysis.modelled_parallel_ns,
            run.exec.stats.modelledParallelNs(net));
  EXPECT_EQ(analysis.critical_path_busy_ns + analysis.comm_ns +
                analysis.barrier_ns,
            analysis.modelled_parallel_ns);
  EXPECT_GT(analysis.critical_path_busy_ns, 0);
}

TEST(Analysis, HandComputedFixtureDecomposition) {
  const auto analysis = analyzeCriticalPath(testing::stragglerFixtureStats(),
                                            testing::fixtureNetworkModel());
  EXPECT_EQ(analysis.critical_path_busy_ns, 1250);
  EXPECT_EQ(analysis.total_busy_ns, 1520);
  EXPECT_EQ(analysis.comm_ns, 1200);
  EXPECT_EQ(analysis.barrier_ns, 3000);
  EXPECT_EQ(analysis.modelled_parallel_ns, 5450);
  EXPECT_EQ(analysis.total_barrier_wait_ns, 980);
  EXPECT_NEAR(analysis.skew_index, 1250.0 / 760.0, 1e-9);

  ASSERT_EQ(analysis.path.size(), 3u);
  EXPECT_EQ(analysis.path[0].straggler, 1);
  EXPECT_EQ(analysis.path[0].max_busy_ns, 350);
  EXPECT_EQ(analysis.path[0].barrier_wait_ns, 230);
  EXPECT_EQ(analysis.path[0].comm_ns, 1200);
  EXPECT_EQ(analysis.path[1].straggler, 1);
  EXPECT_EQ(analysis.path[1].barrier_wait_ns, 350);
  EXPECT_EQ(analysis.path[2].straggler, 0);
  EXPECT_EQ(analysis.path[2].barrier_wait_ns, 400);

  ASSERT_EQ(analysis.partitions.size(), 2u);
  EXPECT_EQ(analysis.partitions[0].straggler_supersteps, 1u);
  EXPECT_EQ(analysis.partitions[0].blamed_wait_ns, 400);
  EXPECT_EQ(analysis.partitions[0].busy_ns, 670);
  EXPECT_EQ(analysis.partitions[1].straggler_supersteps, 2u);
  EXPECT_EQ(analysis.partitions[1].blamed_wait_ns, 580);
  EXPECT_EQ(analysis.partitions[1].busy_ns, 850);

  EXPECT_EQ(analysis.dominant_straggler, 1);
  EXPECT_NEAR(analysis.dominant_wait_fraction, 580.0 / 980.0, 1e-9);

  ASSERT_EQ(analysis.straggler_by_timestep.size(), 2u);
  EXPECT_EQ(analysis.straggler_by_timestep[0][0], 0u);
  EXPECT_EQ(analysis.straggler_by_timestep[0][1], 2u);
  EXPECT_EQ(analysis.straggler_by_timestep[1][0], 1u);
  EXPECT_EQ(analysis.straggler_by_timestep[1][1], 0u);
}

TEST(Analysis, DelayedPartitionIsDominantStraggler) {
  // Synthetic run with one delayed partition: p2 is slower in every
  // superstep, so it must own well over half the barrier-wait blame.
  RunStats stats(3);
  for (std::int32_t s = 0; s < 4; ++s) {
    SuperstepRecord rec;
    rec.timestep = s / 2;
    rec.superstep = s % 2;
    rec.parts.resize(3);
    rec.parts[0].compute_ns = 100;
    rec.parts[1].compute_ns = 120;
    rec.parts[2].compute_ns = 500;  // the delayed partition
    stats.addSuperstep(std::move(rec));
  }
  const auto analysis = analyzeCriticalPath(stats);
  EXPECT_EQ(analysis.dominant_straggler, 2);
  EXPECT_GE(analysis.dominant_wait_fraction, 0.5);
  EXPECT_EQ(analysis.partitions[2].straggler_supersteps, 4u);

  const std::string report = renderCriticalPath(analysis, "delayed");
  EXPECT_NE(report.find("dominant straggler: partition 2"),
            std::string::npos);
  EXPECT_NE(report.find("skew index"), std::string::npos);
}

TEST(Analysis, EmptyRunYieldsNeutralAnalysis) {
  const auto analysis = analyzeCriticalPath(RunStats(0));
  EXPECT_TRUE(analysis.path.empty());
  EXPECT_TRUE(analysis.partitions.empty());
  EXPECT_EQ(analysis.modelled_parallel_ns, 0);
  EXPECT_EQ(analysis.skew_index, 1.0);
  EXPECT_EQ(analysis.dominant_straggler, -1);
  EXPECT_EQ(analysis.dominant_wait_fraction, 0.0);
  // Rendering an empty analysis must not crash.
  EXPECT_FALSE(renderCriticalPath(analysis, "empty").empty());
}

TEST(Analysis, RecordWithNoPartitionsHasNoStraggler) {
  RunStats stats(0);
  stats.addSuperstep(SuperstepRecord{});
  NetworkModel net;
  net.per_superstep_barrier_ns = 5;
  net.per_message_ns = 0;
  const auto analysis = analyzeCriticalPath(stats, net);
  ASSERT_EQ(analysis.path.size(), 1u);
  EXPECT_EQ(analysis.path[0].straggler, -1);
  EXPECT_EQ(analysis.path[0].barrier_wait_ns, 0);
  EXPECT_EQ(analysis.modelled_parallel_ns, 5);
  EXPECT_EQ(analysis.modelled_parallel_ns, stats.modelledParallelNs(net));
}

TEST(Analysis, SinglePartitionHasNoBarrierWait) {
  RunStats stats(1);
  SuperstepRecord rec;
  rec.parts.resize(1);
  rec.parts[0].compute_ns = 10;
  rec.parts[0].send_ns = 5;
  rec.parts[0].load_ns = 2;
  stats.addSuperstep(std::move(rec));
  NetworkModel net;
  net.per_superstep_barrier_ns = 0;
  net.per_message_ns = 0;
  const auto analysis = analyzeCriticalPath(stats, net);
  EXPECT_EQ(analysis.total_barrier_wait_ns, 0);
  EXPECT_EQ(analysis.critical_path_busy_ns, 17);
  EXPECT_NEAR(analysis.skew_index, 1.0, 1e-12);
  EXPECT_EQ(analysis.modelled_parallel_ns, stats.modelledParallelNs(net));
}

// --- runStatsToJson round trip ------------------------------------------

TEST(Analysis, RunStatsJsonRoundTrip) {
  RunStats stats = testing::stragglerFixtureStats();
  stats.setWallClockNs(123456);
  stats.addCounter("finalized", 0, 1, 7);
  const std::string json = runStatsToJson(stats, "fixture");
  ASSERT_TRUE(testing::isValidJson(json));
  EXPECT_NE(json.find("\"schema_version\":"), std::string::npos);

  const auto loaded = testing::unwrap(runStatsFromJson(json));
  EXPECT_EQ(loaded.label, "fixture");
  EXPECT_EQ(loaded.stats.numPartitions(), 2u);
  EXPECT_EQ(loaded.stats.wallClockNs(), 123456);
  EXPECT_EQ(loaded.stats.totalSupersteps(), 3u);
  EXPECT_EQ(loaded.stats.totalMessages(), stats.totalMessages());
  EXPECT_EQ(loaded.stats.totalBytes(), stats.totalBytes());
  EXPECT_EQ(loaded.stats.totalCrossPartitionMessages(),
            stats.totalCrossPartitionMessages());
  EXPECT_EQ(loaded.stats.totalCrossPartitionBytes(),
            stats.totalCrossPartitionBytes());
  EXPECT_EQ(loaded.stats.counterTotal("finalized"), 7u);
  // The stamp matches the writer's computation, and the reloaded records
  // reproduce it under the same (default) network model.
  EXPECT_EQ(loaded.modelled_parallel_ns, stats.modelledParallelNs());
  EXPECT_EQ(loaded.stats.modelledParallelNs(), stats.modelledParallelNs());
  // The analyzer works on a reloaded run exactly as on the original.
  const NetworkModel net = testing::fixtureNetworkModel();
  EXPECT_EQ(analyzeCriticalPath(loaded.stats, net).total_barrier_wait_ns,
            analyzeCriticalPath(stats, net).total_barrier_wait_ns);
}

TEST(Analysis, RejectsMissingSchemaVersion) {
  const auto result =
      runStatsFromJson("{\"label\":\"x\",\"supersteps\":[]}");
  ASSERT_FALSE(result.isOk());
  EXPECT_NE(result.status().toString().find("schema_version"),
            std::string::npos);
}

TEST(Analysis, RejectsUnsupportedSchemaVersion) {
  const auto result =
      runStatsFromJson("{\"schema_version\":99,\"supersteps\":[]}");
  ASSERT_FALSE(result.isOk());
  EXPECT_NE(result.status().toString().find("99"), std::string::npos);
}

TEST(Analysis, RejectsMalformedJson) {
  EXPECT_FALSE(runStatsFromJson("").isOk());
  EXPECT_FALSE(runStatsFromJson("{\"schema_version\":1,").isOk());
  EXPECT_FALSE(runStatsFromJson("[1,2,3]").isOk());  // not an object
  // Version is right but the records are missing.
  EXPECT_FALSE(runStatsFromJson("{\"schema_version\":1}").isOk());
}

// --- Run comparison (the regression gate) --------------------------------

TEST(Analysis, CompareIdenticalRunsPasses) {
  const auto result = compareRuns(loadFixture("base"), loadFixture("cand"));
  EXPECT_TRUE(result.pass);
  for (const auto& m : result.metrics) {
    EXPECT_FALSE(m.regressed) << m.metric;
    EXPECT_EQ(m.delta_pct, 0.0) << m.metric;
  }
  const std::string report = renderCompare(result);
  EXPECT_NE(report.find("PASS"), std::string::npos);
  EXPECT_EQ(report.find("REGRESSED"), std::string::npos);
}

TEST(Analysis, CompareFlagsInjectedRegression) {
  const auto base = loadFixture("base");
  auto cand = loadFixture("cand");
  cand.modelled_parallel_ns = base.modelled_parallel_ns * 2;  // +100%
  CompareThresholds thresholds;
  thresholds.max_regress_pct = 50.0;
  const auto result = compareRuns(base, cand, thresholds);
  EXPECT_FALSE(result.pass);
  const MetricComparison* m = findMetric(result, "modelled_parallel_ns");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->regressed);
  EXPECT_NEAR(m->delta_pct, 100.0, 1e-9);
  const std::string report = renderCompare(result);
  EXPECT_NE(report.find("REGRESSED"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
}

TEST(Analysis, CompareToleratesRegressionBelowThreshold) {
  const auto base = loadFixture("base");
  auto cand = loadFixture("cand");
  cand.modelled_parallel_ns =
      base.modelled_parallel_ns + base.modelled_parallel_ns / 20;  // +5%
  const auto result = compareRuns(base, cand);  // default gate: 10%
  EXPECT_TRUE(result.pass);
}

TEST(Analysis, CompareImprovementsNeverFail) {
  const auto base = loadFixture("base");
  auto cand = loadFixture("cand");
  cand.modelled_parallel_ns = base.modelled_parallel_ns / 2;
  EXPECT_TRUE(compareRuns(base, cand).pass);
}

TEST(Analysis, CompareWallClockIsInformational) {
  const auto base = loadFixture("base");
  auto cand = loadFixture("cand");
  cand.stats.setWallClockNs(base.stats.wallClockNs() * 100);
  const auto result = compareRuns(base, cand);
  EXPECT_TRUE(result.pass);  // wall clock on shared runners never gates
  const MetricComparison* m = findMetric(result, "wall_clock_ns");
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(m->gated);
}

TEST(Analysis, CompareZeroBaseGrowthIsInfiniteRegression) {
  const LoadedRunStats base;  // all zeros
  LoadedRunStats cand;
  cand.modelled_parallel_ns = 1;
  const auto result = compareRuns(base, cand);
  EXPECT_FALSE(result.pass);
  EXPECT_NE(renderCompare(result).find("+inf%"), std::string::npos);
}

// --- JsonValue parser ----------------------------------------------------

TEST(JsonValue, ParsesScalarsAndContainers) {
  const auto v = testing::unwrap(JsonValue::parse(
      " {\"a\": [1, 2.5, -3], \"s\": \"x\\n\\u0041\", \"b\": true,"
      " \"n\": null} "));
  ASSERT_TRUE(v.isObject());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[0].intValue(), 1);
  EXPECT_NEAR(a->array()[1].doubleValue(), 2.5, 1e-12);
  EXPECT_EQ(a->array()[2].intValue(), -3);
  EXPECT_EQ(v.stringOr("s", ""), "x\nA");
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->boolValue());
  const JsonValue* n = v.find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->isNull());
  EXPECT_EQ(v.intOr("missing", 42), 42);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, ParsesNestedDocuments) {
  const auto v = testing::unwrap(
      JsonValue::parse("{\"outer\": {\"inner\": [[], {}, [0]]}}"));
  const JsonValue* outer = v.find("outer");
  ASSERT_NE(outer, nullptr);
  const JsonValue* inner = outer->find("inner");
  ASSERT_NE(inner, nullptr);
  ASSERT_EQ(inner->array().size(), 3u);
  EXPECT_TRUE(inner->array()[0].isArray());
  EXPECT_TRUE(inner->array()[1].isObject());
  EXPECT_EQ(inner->array()[2].array()[0].intValue(), 0);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").isOk());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").isOk());
  EXPECT_FALSE(JsonValue::parse("[1,]").isOk());
  EXPECT_FALSE(JsonValue::parse("{} extra").isOk());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").isOk());
  EXPECT_FALSE(JsonValue::parse("nope").isOk());
  // Errors carry the byte position of the failure.
  EXPECT_NE(JsonValue::parse("nope").status().toString().find("at byte"),
            std::string::npos);
}

TEST(JsonValue, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(deep).isOk());
}

}  // namespace
}  // namespace tsg
