// Sanity tests for the sequential reference implementations themselves —
// they are the ground truth for the distributed algorithms, so they get
// their own direct checks on hand-computable graphs.
#include "algorithms/reference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace tsg {
namespace {

using testing::share;
using testing::unwrap;

GraphTemplatePtr pathGraph(int n, AttributeSchema edge_schema = {}) {
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.edgeSchema() = std::move(edge_schema);
  for (int i = 0; i < n; ++i) {
    builder.addVertex(i);
  }
  for (int i = 0; i + 1 < n; ++i) {
    builder.addUndirectedEdge(i, i, i + 1);
  }
  return share(unwrap(builder.build()));
}

TEST(Dijkstra, PathGraphDistancesAreCumulative) {
  const auto tmpl = pathGraph(5);
  // Directed slots alternate (i->i+1, i+1->i); weight both 1.5.
  std::vector<double> weights(tmpl->numEdges(), 1.5);
  const auto dist = reference::dijkstra(*tmpl, weights, 0);
  for (int v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(dist[v], 1.5 * v);
  }
}

TEST(Dijkstra, UnweightedDefaultsToHopCount) {
  const auto tmpl = pathGraph(4);
  const auto dist = reference::dijkstra(*tmpl, {}, 3);
  EXPECT_DOUBLE_EQ(dist[0], 3.0);
  EXPECT_DOUBLE_EQ(dist[3], 0.0);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  GraphTemplateBuilder builder;
  builder.addVertex(0);
  builder.addVertex(1);
  const auto tmpl = share(unwrap(builder.build()));
  const auto dist = reference::dijkstra(*tmpl, {}, 0);
  EXPECT_TRUE(std::isinf(dist[1]));
}

TEST(Dijkstra, NegativeWeightAborts) {
  const auto tmpl = pathGraph(3);
  std::vector<double> weights(tmpl->numEdges(), -1.0);
  EXPECT_DEATH((void)reference::dijkstra(*tmpl, weights, 0), "negative");
}

TEST(BfsLevels, MatchesManualLevels) {
  const auto tmpl = pathGraph(6);
  const auto levels = reference::bfsLevels(*tmpl, 2);
  EXPECT_EQ(levels[0], 2);
  EXPECT_EQ(levels[2], 0);
  EXPECT_EQ(levels[5], 3);
}

TEST(TdspReference, WaitingBeatsGreedyTraversal) {
  // Two-vertex graph: edge is slow at t0, fast at t1. TDSP should wait.
  AttributeSchema es;
  es.add("latency", AttrType::kDouble);
  const auto tmpl = pathGraph(2, es);
  TimeSeriesCollection coll(tmpl, 0, 5);
  coll.appendInstance().edgeCol(0).asDouble() = {100.0, 100.0};
  coll.appendInstance().edgeCol(0).asDouble() = {3.0, 3.0};

  const auto result =
      reference::timeDependentShortestPath(*tmpl, coll, 0, 0);
  EXPECT_DOUBLE_EQ(result.tdsp[0], 0.0);
  EXPECT_EQ(result.finalized_at[0], 0);
  // Depart at t1 (label 5), arrive 8 <= horizon 10.
  EXPECT_DOUBLE_EQ(result.tdsp[1], 8.0);
  EXPECT_EQ(result.finalized_at[1], 1);
}

TEST(TdspReference, HorizonDiscardsPartialProgress) {
  // Chain 0-1-2 with latencies that only let one hop finalize per timestep.
  AttributeSchema es;
  es.add("latency", AttrType::kDouble);
  const auto tmpl = pathGraph(3, es);
  TimeSeriesCollection coll(tmpl, 0, 5);
  for (int t = 0; t < 3; ++t) {
    coll.appendInstance().edgeCol(0).asDouble() =
        std::vector<double>(tmpl->numEdges(), 4.0);
  }
  const auto result =
      reference::timeDependentShortestPath(*tmpl, coll, 0, 0);
  EXPECT_DOUBLE_EQ(result.tdsp[1], 4.0);   // within horizon 5 at t0
  EXPECT_EQ(result.finalized_at[1], 0);
  // 0->1->2 would be 8 > 5 at t0; at t1, restart from 1 at label 5: 5+4=9
  // <= 10.
  EXPECT_DOUBLE_EQ(result.tdsp[2], 9.0);
  EXPECT_EQ(result.finalized_at[2], 1);
}

TEST(TdspReference, UnreachableVertexNeverFinalized) {
  AttributeSchema es;
  es.add("latency", AttrType::kDouble);
  GraphTemplateBuilder builder(false);
  builder.edgeSchema() = es;
  builder.addVertex(0);
  builder.addVertex(1);
  builder.addVertex(2);
  builder.addUndirectedEdge(0, 0, 1);  // vertex 2 isolated
  const auto tmpl = share(unwrap(builder.build()));
  TimeSeriesCollection coll(tmpl, 0, 5);
  coll.appendInstance().edgeCol(0).asDouble() = {1.0, 1.0};
  const auto result =
      reference::timeDependentShortestPath(*tmpl, coll, 0, 0);
  EXPECT_EQ(result.finalized_at[2], reference::kNever);
  EXPECT_TRUE(std::isinf(result.tdsp[2]));
}

TEST(MemeSpreadReference, GapInCarriersBlocksTraversal) {
  // 0-1-2 path; 0 and 2 carry the meme at t0 but 1 never does: 2 must stay
  // uncolored despite carrying the meme (no contiguous path).
  AttributeSchema vs;
  vs.add("tweets", AttrType::kStringList);
  GraphTemplateBuilder builder(false);
  builder.vertexSchema() = vs;
  for (int i = 0; i < 3; ++i) {
    builder.addVertex(i);
  }
  builder.addUndirectedEdge(0, 0, 1);
  builder.addUndirectedEdge(1, 1, 2);
  const auto tmpl = share(unwrap(builder.build()));
  TimeSeriesCollection coll(tmpl, 0, 5);
  auto& inst = coll.appendInstance();
  inst.vertexCol(0).asStringList()[0] = {"#m"};
  inst.vertexCol(0).asStringList()[2] = {"#m"};

  const auto colored = reference::memeSpread(*tmpl, coll, 0, "#m");
  EXPECT_EQ(colored[0], 0);
  EXPECT_EQ(colored[1], reference::kNever);
  // Vertex 2 carries the meme at t0, so it roots its own traversal.
  EXPECT_EQ(colored[2], 0);
}

TEST(MemeSpreadReference, BridgeAppearingLaterConnects) {
  // Same path; at t1 vertex 1 tweets, bridging 0's colored status to 2.
  AttributeSchema vs;
  vs.add("tweets", AttrType::kStringList);
  GraphTemplateBuilder builder(false);
  builder.vertexSchema() = vs;
  for (int i = 0; i < 3; ++i) {
    builder.addVertex(i);
  }
  builder.addUndirectedEdge(0, 0, 1);
  builder.addUndirectedEdge(1, 1, 2);
  const auto tmpl = share(unwrap(builder.build()));
  TimeSeriesCollection coll(tmpl, 0, 5);
  auto& g0 = coll.appendInstance();
  g0.vertexCol(0).asStringList()[0] = {"#m"};
  auto& g1 = coll.appendInstance();
  g1.vertexCol(0).asStringList()[1] = {"#m"};
  g1.vertexCol(0).asStringList()[2] = {"#m"};

  const auto colored = reference::memeSpread(*tmpl, coll, 0, "#m");
  EXPECT_EQ(colored[0], 0);
  EXPECT_EQ(colored[1], 1);
  EXPECT_EQ(colored[2], 1);
}

TEST(HashtagCountsReference, CountsDuplicateTweetsWithinVertex) {
  AttributeSchema vs;
  vs.add("tweets", AttrType::kStringList);
  GraphTemplateBuilder builder;
  builder.vertexSchema() = vs;
  builder.addVertex(0);
  const auto tmpl = share(unwrap(builder.build()));
  TimeSeriesCollection coll(tmpl, 0, 1);
  auto& inst = coll.appendInstance();
  inst.vertexCol(0).asStringList()[0] = {"#a", "#a", "#b"};
  const auto counts = reference::hashtagCounts(coll, 0, "#a");
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 2u);
}

TEST(TopActiveReference, TieBreaksByVertexIndex) {
  AttributeSchema vs;
  vs.add("tweets", AttrType::kStringList);
  GraphTemplateBuilder builder(false);
  builder.vertexSchema() = vs;
  for (int i = 0; i < 4; ++i) {
    builder.addVertex(i);
  }
  // Square: all degree 2.
  builder.addUndirectedEdge(0, 0, 1);
  builder.addUndirectedEdge(1, 1, 2);
  builder.addUndirectedEdge(2, 2, 3);
  builder.addUndirectedEdge(3, 3, 0);
  const auto tmpl = share(unwrap(builder.build()));
  TimeSeriesCollection coll(tmpl, 0, 1);
  coll.appendInstance();
  const auto top = reference::topActiveVertices(*tmpl, coll, 0, 2);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], (std::vector<VertexIndex>{0, 1}));
}

}  // namespace
}  // namespace tsg
