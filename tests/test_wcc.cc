#include "algorithms/wcc.h"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::share;
using testing::smallRoad;
using testing::smallSocial;
using testing::unwrap;

struct WccFixture {
  explicit WccFixture(GraphTemplatePtr t, std::uint32_t k)
      : tmpl(std::move(t)),
        pg(partitionGraph(tmpl, k)),
        collection(tmpl, 0, 1) {
    collection.appendInstance();
    provider = std::make_unique<DirectInstanceProvider>(pg, collection);
  }
  GraphTemplatePtr tmpl;
  PartitionedGraph pg;
  TimeSeriesCollection collection;
  std::unique_ptr<DirectInstanceProvider> provider;
};

// Multi-component graph: three separate paths plus isolated vertices.
GraphTemplatePtr multiComponent() {
  GraphTemplateBuilder builder(/*directed=*/false);
  for (int i = 0; i < 20; ++i) {
    builder.addVertex(i);
  }
  EdgeId e = 0;
  for (int i = 0; i < 5; ++i) {  // component {0..5}
    builder.addUndirectedEdge(e++, i, i + 1);
  }
  for (int i = 7; i < 12; ++i) {  // component {7..12}
    builder.addUndirectedEdge(e++, i, i + 1);
  }
  builder.addUndirectedEdge(e++, 14, 15);  // component {14,15}
  // 6, 13, 16..19 isolated
  return share(unwrap(builder.build()));
}

class WccProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {
};

TEST_P(WccProperty, MatchesUnionFind) {
  const auto [family, k] = GetParam();
  GraphTemplatePtr tmpl;
  if (family == "road") {
    tmpl = smallRoad(8, 8);
  } else if (family == "social") {
    tmpl = smallSocial(150);
  } else {
    tmpl = multiComponent();
  }
  WccFixture fx(tmpl, k);
  const auto run = runSubgraphWcc(fx.pg, *fx.provider);
  const auto expected = reference::weaklyConnectedComponents(*fx.tmpl);
  EXPECT_EQ(run.component, expected)
      << "family=" << family << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WccProperty,
    ::testing::Combine(::testing::Values("road", "social", "multi"),
                       ::testing::Values(1u, 2u, 4u, 7u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Wcc, CountsComponents) {
  WccFixture fx(multiComponent(), 3);
  const auto run = runSubgraphWcc(fx.pg, *fx.provider);
  // {0..5}, {7..12}, {14,15} + 6 isolated vertices (6,13,16,17,18,19).
  EXPECT_EQ(run.num_components, 3u + 6u);
}

TEST(Wcc, ConnectedGraphIsOneComponent) {
  WccFixture fx(smallRoad(6, 6), 4);
  const auto run = runSubgraphWcc(fx.pg, *fx.provider);
  EXPECT_EQ(run.num_components, 1u);
  for (const auto c : run.component) {
    EXPECT_EQ(c, 0u);  // min template index of the single component
  }
}

TEST(Wcc, DirectedEdgesStillGiveWeakComponents) {
  // A directed chain 0 -> 1 -> 2 split across partitions: weak connectivity
  // must still merge all three labels (requires symmetric meta-adjacency).
  GraphTemplateBuilder builder(/*directed=*/true);
  for (int i = 0; i < 3; ++i) {
    builder.addVertex(i);
  }
  builder.addEdge(0, 0, 1);
  builder.addEdge(1, 1, 2);
  auto tmpl = share(unwrap(builder.build()));
  // Force each vertex into its own partition (worst case).
  const PartitionAssignment assignment{0, 1, 2};
  auto pg = unwrap(PartitionedGraph::build(tmpl, assignment, 3));
  TimeSeriesCollection coll(tmpl, 0, 1);
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);
  const auto run = runSubgraphWcc(pg, provider);
  EXPECT_EQ(run.num_components, 1u);
  EXPECT_EQ(run.component, (std::vector<VertexIndex>{0, 0, 0}));
}

TEST(Wcc, FewSuperstepsOnLargeDiameterGraph) {
  // The subgraph-centric payoff: label propagation over the meta-graph,
  // not the vertex graph, so supersteps ≪ diameter.
  WccFixture fx(smallRoad(16, 16), 4);
  const auto run = runSubgraphWcc(fx.pg, *fx.provider);
  EXPECT_LT(run.exec.stats.totalSupersteps(),
            fx.tmpl->estimateDiameter() / 4);
}

TEST(NeighborSubgraphs, SymmetricSortedUnique) {
  auto tmpl = smallSocial(200);
  const auto pg = partitionGraph(tmpl, 4);
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    for (const auto& sg : pg.partition(p).subgraphs) {
      // Sorted and unique.
      for (std::size_t i = 1; i < sg.neighbor_subgraphs.size(); ++i) {
        EXPECT_LT(sg.neighbor_subgraphs[i - 1], sg.neighbor_subgraphs[i]);
      }
      // Symmetric: if b is a's neighbor, a is b's neighbor.
      for (const SubgraphId other : sg.neighbor_subgraphs) {
        const auto& peers = pg.subgraph(other).neighbor_subgraphs;
        EXPECT_TRUE(std::binary_search(peers.begin(), peers.end(), sg.id))
            << sg.id << " <-> " << other;
      }
    }
  }
}

}  // namespace
}  // namespace tsg
