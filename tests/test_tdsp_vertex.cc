// Vertex-centric TI-BSP TDSP (the "Giraph port" of §IV-C) must produce
// results identical to the subgraph-centric version and the sequential
// reference — while paying the superstep/message costs the paper predicts.
#include "algorithms/tdsp_vertex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algorithms/reference.h"
#include "algorithms/tdsp.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;

class VertexTdspProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t, int>> {};

TEST_P(VertexTdspProperty, MatchesReference) {
  const auto [size, k, seed] = GetParam();
  auto tmpl = smallRoad(size, size, seed);
  const auto pg = partitionGraph(tmpl, k, seed + 1);
  const auto coll = roadCollection(tmpl, 10, seed + 2);
  DirectInstanceProvider provider(pg, coll);

  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");
  const VertexIndex source =
      static_cast<VertexIndex>((seed * 13) % tmpl->numVertices());

  VertexTdspOptions options;
  options.source = source;
  options.latency_attr = latency;
  const auto run = runVertexTdsp(pg, provider, options);
  const auto expected =
      reference::timeDependentShortestPath(*tmpl, coll, latency, source);

  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    ASSERT_EQ(run.finalized_at[v], expected.finalized_at[v])
        << "vertex " << v << " size=" << size << " k=" << k;
    if (expected.finalized_at[v] >= 0) {
      ASSERT_NEAR(run.tdsp[v], expected.tdsp[v], 1e-9) << v;
    } else {
      ASSERT_TRUE(std::isinf(run.tdsp[v])) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VertexTdspProperty,
    ::testing::Combine(::testing::Values(5, 8), ::testing::Values(1u, 3u),
                       ::testing::Values(4, 19)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(VertexTdsp, AgreesWithSubgraphCentricAndCostsMoreSupersteps) {
  auto tmpl = smallRoad(10, 10, 6);
  const auto pg = partitionGraph(tmpl, 3);
  // Fast latencies so the frontier crosses many hops per timestep — the
  // regime where the engines' superstep counts diverge most.
  RoadInstanceOptions rio;
  rio.num_timesteps = 8;
  rio.min_latency = 0.2;
  rio.max_latency = 1.5;
  rio.seed = 7;
  const auto coll = testing::unwrap(makeRoadInstances(tmpl, rio));
  DirectInstanceProvider provider(pg, coll);
  const std::size_t latency = tmpl->edgeSchema().requireIndex("latency");

  VertexTdspOptions voptions;
  voptions.source = 0;
  voptions.latency_attr = latency;
  const auto vertex_run = runVertexTdsp(pg, provider, voptions);

  TdspOptions soptions;
  soptions.source = 0;
  soptions.latency_attr = latency;
  soptions.while_mode = false;
  const auto subgraph_run = runTdsp(pg, provider, soptions);

  EXPECT_EQ(vertex_run.finalized_at, subgraph_run.finalized_at);
  EXPECT_EQ(vertex_run.tdsp, subgraph_run.tdsp);
  // The §IV-C cost prediction: per-vertex-hop propagation needs more
  // supersteps than whole-subgraph Dijkstra sweeps.
  EXPECT_GT(vertex_run.exec.stats.totalSupersteps(),
            subgraph_run.exec.stats.totalSupersteps());
}

TEST(VertexTdsp, SubRangeOfInstances) {
  auto tmpl = smallRoad(6, 6, 3);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 10, 5);
  DirectInstanceProvider provider(pg, coll);
  VertexTdspOptions options;
  options.source = 0;
  options.latency_attr = 0;
  options.first_timestep = 0;
  options.num_timesteps = 3;
  const auto run = runVertexTdsp(pg, provider, options);
  EXPECT_EQ(run.exec.timesteps_executed, 3);
  for (const auto t : run.finalized_at) {
    EXPECT_LT(t, 3);
  }
}

}  // namespace
}  // namespace tsg
