#include "graph/graph_instance.h"

#include <gtest/gtest.h>

#include "graph/collection.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::tinyTemplate;

TEST(GraphInstance, ConstructedColumnsMatchSchema) {
  const auto tmpl = tinyTemplate();
  GraphInstance inst(*tmpl, 3, 15);
  EXPECT_EQ(inst.timestep(), 3);
  EXPECT_EQ(inst.timestamp(), 15);
  EXPECT_EQ(inst.numVertexAttrs(), 2u);
  EXPECT_EQ(inst.numEdgeAttrs(), 1u);
  EXPECT_EQ(inst.vertexCol(0).type(), AttrType::kStringList);
  EXPECT_EQ(inst.vertexCol(0).size(), tmpl->numVertices());
  EXPECT_EQ(inst.edgeCol(0).type(), AttrType::kDouble);
  EXPECT_EQ(inst.edgeCol(0).size(), tmpl->numEdges());
  EXPECT_TRUE(inst.validateAgainst(*tmpl).isOk());
}

TEST(GraphInstance, ValidateCatchesWrongShape) {
  const auto tmpl = tinyTemplate();
  GraphInstance inst(*tmpl, 0, 0);
  // Build a second, different template and validate against it.
  GraphTemplateBuilder builder;
  builder.vertexSchema().add("other", AttrType::kInt64);
  builder.addVertex(9);
  const auto other = testing::unwrap(builder.build());
  EXPECT_FALSE(inst.validateAgainst(other).isOk());
}

TEST(GraphInstance, SerializeRoundtrip) {
  const auto tmpl = tinyTemplate();
  GraphInstance inst(*tmpl, 2, 10);
  inst.vertexCol(0).asStringList()[0] = {"#x", "#y"};
  inst.vertexCol(1).asBool()[1] = 1;
  inst.edgeCol(0).asDouble()[0] = 4.25;

  BinaryWriter w;
  inst.serialize(w);
  BinaryReader r(w.buffer());
  auto parsed = GraphInstance::deserialize(r);
  ASSERT_TRUE(parsed.isOk());
  EXPECT_EQ(parsed.value(), inst);
}

TEST(Collection, AppendMaintainsPeriodicity) {
  const auto tmpl = tinyTemplate();
  TimeSeriesCollection coll(tmpl, /*t0=*/100, /*delta=*/5);
  auto& inst0 = coll.appendInstance();
  EXPECT_EQ(inst0.timestep(), 0);
  EXPECT_EQ(inst0.timestamp(), 100);
  auto& inst1 = coll.appendInstance();
  EXPECT_EQ(inst1.timestep(), 1);
  EXPECT_EQ(inst1.timestamp(), 105);
  EXPECT_EQ(coll.numInstances(), 2u);
  EXPECT_TRUE(coll.validate().isOk());
}

TEST(Collection, AppendExternallyBuiltInstanceValidated) {
  const auto tmpl = tinyTemplate();
  TimeSeriesCollection coll(tmpl, 0, 5);
  GraphInstance good(*tmpl, 0, 0);
  EXPECT_TRUE(coll.appendInstance(std::move(good)).isOk());
  // Wrong timestep for the next slot.
  GraphInstance bad_step(*tmpl, 5, 25);
  EXPECT_FALSE(coll.appendInstance(std::move(bad_step)).isOk());
  // Wrong timestamp (breaks δ periodicity).
  GraphInstance bad_stamp(*tmpl, 1, 7);
  EXPECT_FALSE(coll.appendInstance(std::move(bad_stamp)).isOk());
}

TEST(Collection, ZeroDeltaRejected) {
  const auto tmpl = tinyTemplate();
  EXPECT_DEATH(TimeSeriesCollection(tmpl, 0, 0), "delta");
}

TEST(Collection, InstanceAccessorBoundsChecked) {
  const auto tmpl = tinyTemplate();
  TimeSeriesCollection coll(tmpl, 0, 1);
  coll.appendInstance();
  EXPECT_DEATH((void)coll.instance(5), "TSG_CHECK");
  EXPECT_DEATH((void)coll.instance(-1), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg
