// Engine-level guarantees of the batched message fabric: delivered
// message/byte stats for the three paper algorithms (Hashtag, Meme, TDSP)
// are exactly what the algorithms' send patterns imply — every message sent
// through the bus in a superstep is delivered once at that superstep's
// barrier, metered at its real wire size (payload + full header).
#include <gtest/gtest.h>

#include <map>

#include "algorithms/hashtag.h"
#include "algorithms/meme.h"
#include "algorithms/tdsp.h"
#include "runtime/message.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;

std::uint64_t sentMessages(const SuperstepRecord& rec) {
  std::uint64_t total = 0;
  for (const auto& part : rec.parts) {
    total += part.messages_sent;
  }
  return total;
}

std::uint64_t sentBytes(const SuperstepRecord& rec) {
  std::uint64_t total = 0;
  for (const auto& part : rec.parts) {
    total += part.bytes_sent;
  }
  return total;
}

// For sequentially dependent runs (Meme, TDSP): within each timestep, every
// record except the last is a compute superstep whose sends all go through
// the bus (sendToSubgraph), so delivered == sent, message for message and
// byte for byte. The last record is the EndOfTimestep round: its sends are
// inter-timestep (injected later, never counted as delivered).
void expectComputeDeliveriesMatchSends(const RunStats& stats) {
  std::map<Timestep, std::int32_t> last_superstep;
  for (const auto& rec : stats.supersteps()) {
    auto [it, inserted] = last_superstep.try_emplace(rec.timestep,
                                                     rec.superstep);
    if (!inserted) {
      it->second = std::max(it->second, rec.superstep);
    }
  }
  for (const auto& rec : stats.supersteps()) {
    if (rec.superstep == last_superstep.at(rec.timestep)) {
      EXPECT_EQ(rec.delivered_messages, 0u) << "EoT round delivers nothing";
      EXPECT_EQ(rec.delivered_bytes, 0u);
    } else {
      EXPECT_EQ(rec.delivered_messages, sentMessages(rec))
          << "t=" << rec.timestep << " s=" << rec.superstep;
      EXPECT_EQ(rec.delivered_bytes, sentBytes(rec))
          << "t=" << rec.timestep << " s=" << rec.superstep;
      EXPECT_LE(rec.cross_partition_messages, rec.delivered_messages);
      EXPECT_GE(rec.delivered_bytes,
                rec.delivered_messages * kMessageHeaderBytes);
    }
  }
}

TEST(FabricStats, HashtagDeliveryCountsAreExact) {
  constexpr std::uint32_t kTimesteps = 4;
  auto tmpl = smallSocial(64);
  const auto pg = partitionGraph(tmpl, 3);
  auto collection = tweetCollection(tmpl, kTimesteps);
  DirectInstanceProvider provider(pg, collection);

  HashtagOptions options;
  const auto run = runHashtagAggregation(pg, provider, options);

  const std::uint64_t S = pg.numSubgraphs();
  // encodeU64List of kTimesteps entries: 1-byte varint count + 8 bytes each.
  const std::uint64_t series_payload = 1 + 8ull * kTimesteps;

  std::uint64_t compute_delivered = 0;
  std::uint64_t merge_delivered = 0;
  std::uint64_t merge_bytes = 0;
  for (const auto& rec : run.exec.stats.supersteps()) {
    if (rec.is_merge_phase) {
      merge_delivered += rec.delivered_messages;
      merge_bytes += rec.delivered_bytes;
    } else {
      compute_delivered += rec.delivered_messages;
    }
  }
  // Compute phase ships per-timestep counts to Merge by injection only —
  // nothing crosses the bus.
  EXPECT_EQ(compute_delivered, 0u);
  // Merge superstep 0: every subgraph sends its series to the master.
  EXPECT_EQ(merge_delivered, S);
  EXPECT_EQ(merge_bytes, S * (kMessageHeaderBytes + series_payload));
  ASSERT_EQ(run.counts.size(), kTimesteps);
}

TEST(FabricStats, MemeDeliveriesMatchSendsSuperstepForSuperstep) {
  auto tmpl = smallSocial(96);
  const auto pg = partitionGraph(tmpl, 3);
  auto collection = tweetCollection(tmpl, 5, /*hit_probability=*/0.4);
  DirectInstanceProvider provider(pg, collection);

  MemeOptions options;
  const auto run = runMemeTracking(pg, provider, options);

  expectComputeDeliveriesMatchSends(run.exec.stats);
  // The run must actually have exercised the fabric.
  EXPECT_GT(run.exec.stats.totalMessages(), 0u);
}

TEST(FabricStats, TdspDeliveriesMatchSendsSuperstepForSuperstep) {
  auto tmpl = smallRoad(6, 6);
  const auto pg = partitionGraph(tmpl, 3);
  auto collection = roadCollection(tmpl, 6);
  DirectInstanceProvider provider(pg, collection);

  TdspOptions options;
  options.source = 0;
  const auto run = runTdsp(pg, provider, options);

  expectComputeDeliveriesMatchSends(run.exec.stats);
  EXPECT_GT(run.exec.stats.totalMessages(), 0u);
}

}  // namespace
}  // namespace tsg
