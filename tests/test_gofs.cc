#include "gofs/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/table.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::expectProvidersAgree;
using testing::partitionGraph;
using testing::roadCollection;
using testing::smallRoad;
using testing::smallSocial;
using testing::tweetCollection;
using testing::unwrap;

class GofsTest : public ::testing::Test {
 protected:
  testing::TempDir tmp_{"tsg_gofs"};
  std::string dir_ = tmp_.path();
};

TEST_F(GofsTest, RoundtripRoadDataset) {
  auto tmpl = smallRoad(8, 8);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = roadCollection(tmpl, 12);

  GofsOptions options;
  options.temporal_packing = 5;
  options.subgraph_binning = 2;
  ASSERT_TRUE(writeGofsDataset(dir_, "road", pg, coll, options).isOk());

  auto ds = unwrap(GofsDataset::open(dir_));
  EXPECT_EQ(ds.manifest().name, "road");
  EXPECT_EQ(ds.manifest().num_instances, 12u);
  EXPECT_EQ(ds.manifest().num_partitions, 3u);
  EXPECT_EQ(ds.manifest().options.temporal_packing, 5u);

  // The reopened partitioned graph must match the original decomposition.
  EXPECT_EQ(ds.partitionedGraph().numSubgraphs(), pg.numSubgraphs());
  EXPECT_EQ(ds.partitionedGraph().assignment(), pg.assignment());

  auto provider = ds.makeProvider();
  expectProvidersAgree(ds.partitionedGraph(), coll, *provider);
}

TEST_F(GofsTest, RoundtripTweetDatasetWithStringLists) {
  auto tmpl = smallSocial(80);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 7);
  ASSERT_TRUE(writeGofsDataset(dir_, "tweets", pg, coll, {}).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  expectProvidersAgree(ds.partitionedGraph(), coll, *provider);
}

TEST_F(GofsTest, PackingEdgeCases) {
  auto tmpl = smallRoad(5, 5);
  const auto pg = partitionGraph(tmpl, 2);
  // 7 instances, packing 3 -> packs of 3,3,1. Binning 1 -> one subgraph per
  // slice file.
  const auto coll = roadCollection(tmpl, 7);
  GofsOptions options;
  options.temporal_packing = 3;
  options.subgraph_binning = 1;
  ASSERT_TRUE(writeGofsDataset(dir_, "edge", pg, coll, options).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  expectProvidersAgree(ds.partitionedGraph(), coll, *provider);
}

TEST_F(GofsTest, PackingLargerThanSeries) {
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 3);
  GofsOptions options;
  options.temporal_packing = 10;  // single partial pack
  ASSERT_TRUE(writeGofsDataset(dir_, "short", pg, coll, options).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  expectProvidersAgree(ds.partitionedGraph(), coll, *provider);
}

TEST_F(GofsTest, LoadNsMeteredAtPackBoundaries) {
  auto tmpl = smallRoad(6, 6);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 10);
  GofsOptions options;
  options.temporal_packing = 5;
  ASSERT_TRUE(writeGofsDataset(dir_, "meter", pg, coll, options).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();

  // First access of a pack loads (nonzero time); in-pack accesses are free.
  (void)provider->instanceFor(0, 0);
  EXPECT_GT(provider->takeLoadNs(0), 0);
  (void)provider->instanceFor(0, 1);
  (void)provider->instanceFor(0, 4);
  EXPECT_EQ(provider->takeLoadNs(0), 0);
  (void)provider->instanceFor(0, 5);  // next pack
  EXPECT_GT(provider->takeLoadNs(0), 0);
  // takeLoadNs resets.
  EXPECT_EQ(provider->takeLoadNs(0), 0);
}

TEST_F(GofsTest, StorageStatsCountSliceFiles) {
  auto tmpl = smallRoad(5, 5);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 6);
  GofsOptions options;
  options.temporal_packing = 3;
  options.subgraph_binning = 100;  // one bin per partition
  ASSERT_TRUE(writeGofsDataset(dir_, "stats", pg, coll, options).isOk());
  auto ds = unwrap(GofsDataset::open(dir_));
  const auto stats = unwrap(ds.storageStats());
  // 2 partitions x 2 packs x 1 bin = 4 slice files.
  EXPECT_EQ(stats.slice_files, 4u);
  EXPECT_GT(stats.slice_bytes, 0u);
}

TEST_F(GofsTest, OpenMissingDirectoryFails) {
  auto ds = GofsDataset::open(dir_ + "/does_not_exist");
  ASSERT_FALSE(ds.isOk());
  EXPECT_EQ(ds.status().code(), ErrorCode::kIoError);
}

TEST_F(GofsTest, CorruptManifestRejected) {
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(writeTextFile(dir_ + "/manifest.bin", "garbage"));
  auto ds = GofsDataset::open(dir_);
  EXPECT_FALSE(ds.isOk());
}

TEST_F(GofsTest, ZeroPackingRejected) {
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 2);
  GofsOptions options;
  options.temporal_packing = 0;
  EXPECT_FALSE(writeGofsDataset(dir_, "bad", pg, coll, options).isOk());
}

TEST_F(GofsTest, CorruptSliceFailsStopWithPath) {
  auto tmpl = smallRoad(5, 5);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 4);
  GofsOptions options;
  options.temporal_packing = 2;
  ASSERT_TRUE(writeGofsDataset(dir_, "corrupt", pg, coll, options).isOk());

  // Flip bytes in the middle of one slice file (header survives, payload
  // doesn't): the lazy loader must fail-stop with the offending path.
  const std::string victim = slicePath(dir_, 0, 0, 0);
  auto bytes = readFileBytes(victim);
  ASSERT_TRUE(bytes.isOk());
  auto data = std::move(bytes).value();
  ASSERT_GT(data.size(), 64u);
  for (std::size_t i = data.size() / 2; i < data.size() / 2 + 16; ++i) {
    data[i] ^= 0xFF;
  }
  ASSERT_TRUE(writeFileBytes(victim, data).isOk());

  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  EXPECT_DEATH((void)provider->instanceFor(0, 0), "slice");
}

TEST_F(GofsTest, TruncatedSliceRejected) {
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 2);
  ASSERT_TRUE(writeGofsDataset(dir_, "trunc", pg, coll, {}).isOk());
  const std::string victim = slicePath(dir_, 1, 0, 0);
  auto bytes = readFileBytes(victim);
  ASSERT_TRUE(bytes.isOk());
  auto data = std::move(bytes).value();
  data.resize(data.size() / 3);
  ASSERT_TRUE(writeFileBytes(victim, data).isOk());

  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  // Partition 0 is intact and loads fine; partition 1 fail-stops.
  (void)provider->instanceFor(0, 0);
  EXPECT_DEATH((void)provider->instanceFor(1, 0), "TSG_CHECK");
}

TEST_F(GofsTest, MissingSliceFileReported) {
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 2);
  ASSERT_TRUE(writeGofsDataset(dir_, "missing", pg, coll, {}).isOk());
  std::filesystem::remove(slicePath(dir_, 0, 0, 0));
  auto ds = unwrap(GofsDataset::open(dir_));
  auto provider = ds.makeProvider();
  EXPECT_DEATH((void)provider->instanceFor(0, 0), "cannot open");
}

TEST_F(GofsTest, TemplateAssignmentMismatchRejected) {
  // Writing one dataset then replacing assignment.bin with another
  // cardinality must fail at open().
  auto tmpl = smallRoad(4, 4);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = roadCollection(tmpl, 2);
  ASSERT_TRUE(writeGofsDataset(dir_, "mismatch", pg, coll, {}).isOk());
  BinaryWriter w;
  w.writeU32(5);  // claims 5 partitions; manifest says 2
  w.writePodVector(pg.assignment());
  ASSERT_TRUE(writeFileBytes(dir_ + "/assignment.bin", w.buffer()).isOk());
  auto ds = GofsDataset::open(dir_);
  ASSERT_FALSE(ds.isOk());
  EXPECT_EQ(ds.status().code(), ErrorCode::kCorruptData);
}

}  // namespace
}  // namespace tsg
