#include "common/status.h"

#include <gtest/gtest.h>

namespace tsg {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.toString(), "Ok");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  const auto s = Status::invalidArgument("bad k");
  EXPECT_FALSE(s.isOk());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.toString(), "InvalidArgument: bad k");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kUnimplemented); ++c) {
    EXPECT_NE(errorCodeName(static_cast<ErrorCode>(c)), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.valueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::notFound("missing"));
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.valueOr(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH((void)Result<int>(Status::ok()), "OK status");
}

TEST(Result, ValueOnErrorAborts) {
  Result<int> r(Status::internal("boom"));
  EXPECT_DEATH((void)r.value(), "boom");
}

TEST(CheckMacro, PassesOnTrue) {
  TSG_CHECK(1 + 1 == 2);  // must not abort
}

TEST(CheckMacro, AbortsOnFalse) {
  EXPECT_DEATH(TSG_CHECK(false), "TSG_CHECK failed");
}

TEST(CheckMacro, MessageIncluded) {
  EXPECT_DEATH(TSG_CHECK_MSG(false, "context here"), "context here");
}

Status helperReturnsEarly(bool fail) {
  TSG_RETURN_IF_ERROR(fail ? Status::ioError("disk") : Status::ok());
  return Status::alreadyExists("fellthrough");
}

TEST(ReturnIfError, PropagatesError) {
  EXPECT_EQ(helperReturnsEarly(true).code(), ErrorCode::kIoError);
  EXPECT_EQ(helperReturnsEarly(false).code(), ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace tsg
