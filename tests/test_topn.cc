#include "algorithms/topn.h"

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallSocial;
using testing::tweetCollection;

TEST(TopN, MatchesReferenceAcrossModes) {
  auto tmpl = smallSocial(120);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = tweetCollection(tmpl, 8, 0.3);
  DirectInstanceProvider provider(pg, coll);

  const auto expected = reference::topActiveVertices(*tmpl, coll, 0, 5);
  for (const auto mode :
       {TemporalMode::kSerial, TemporalMode::kConcurrent}) {
    TopNOptions options;
    options.tweets_attr = 0;
    options.n = 5;
    options.temporal_mode = mode;
    const auto run = runTopActiveVertices(pg, provider, options);
    ASSERT_EQ(run.top.size(), expected.size());
    for (std::size_t t = 0; t < expected.size(); ++t) {
      EXPECT_EQ(run.top[t], expected[t]) << "t=" << t;
    }
  }
}

TEST(TopN, NLargerThanGraphReturnsAllVertices) {
  auto tmpl = smallSocial(20);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 3, 0.3);
  DirectInstanceProvider provider(pg, coll);
  TopNOptions options;
  options.tweets_attr = 0;
  options.n = 100;
  const auto run = runTopActiveVertices(pg, provider, options);
  for (const auto& row : run.top) {
    EXPECT_EQ(row.size(), tmpl->numVertices());
  }
}

TEST(TopN, SubRange) {
  auto tmpl = smallSocial(50);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 10, 0.3);
  DirectInstanceProvider provider(pg, coll);
  TopNOptions options;
  options.tweets_attr = 0;
  options.n = 3;
  options.first_timestep = 4;
  options.num_timesteps = 2;
  const auto run = runTopActiveVertices(pg, provider, options);
  const auto expected = reference::topActiveVertices(*tmpl, coll, 0, 3);
  ASSERT_EQ(run.top.size(), 2u);
  EXPECT_EQ(run.top[0], expected[4]);
  EXPECT_EQ(run.top[1], expected[5]);
}

TEST(TopN, DegreeDrivenWhenNoTweets) {
  // With an all-empty tweet column the ranking is purely by out-degree.
  auto tmpl = smallSocial(40);
  const auto pg = partitionGraph(tmpl, 2);
  TimeSeriesCollection coll(tmpl, 0, 5);
  coll.appendInstance();
  DirectInstanceProvider provider(pg, coll);
  TopNOptions options;
  options.tweets_attr = 0;
  options.n = 1;
  options.temporal_mode = TemporalMode::kSerial;
  const auto run = runTopActiveVertices(pg, provider, options);
  ASSERT_EQ(run.top.size(), 1u);
  ASSERT_EQ(run.top[0].size(), 1u);
  // Winner must have the maximum out-degree.
  std::size_t max_degree = 0;
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    max_degree = std::max(max_degree, tmpl->outDegree(v));
  }
  EXPECT_EQ(tmpl->outDegree(run.top[0][0]), max_degree);
}

}  // namespace
}  // namespace tsg
