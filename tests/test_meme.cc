#include "algorithms/meme.h"

#include <gtest/gtest.h>

#include <tuple>

#include "algorithms/reference.h"
#include "generators/topology.h"
#include "test_util.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::share;
using testing::smallSocial;
using testing::tweetCollection;
using testing::unwrap;

// Hand-built scenario mirroring the paper's Fig. 4: meme starts at A,
// spreads A→D, then A→E and D→B, then B|D→C across four instances.
class FigureFour : public ::testing::Test {
 protected:
  void SetUp() override {
    GraphTemplateBuilder builder(/*directed=*/false);
    builder.vertexSchema().add("tweets", AttrType::kStringList);
    for (VertexId id = 0; id < 5; ++id) {  // A,B,C,D,E = 0..4
      builder.addVertex(id);
    }
    builder.addUndirectedEdge(0, kA, kD);
    builder.addUndirectedEdge(1, kA, kE);
    builder.addUndirectedEdge(2, kD, kB);
    builder.addUndirectedEdge(3, kB, kC);
    builder.addUndirectedEdge(4, kD, kC);
    tmpl_ = share(unwrap(builder.build()));

    collection_ = TimeSeriesCollection(tmpl_, 0, 5);
    addInstance({kA});              // g0: A tweets the meme
    addInstance({kA, kD});          // g1: spreads to D
    addInstance({kD, kE, kB});      // g2: E and B join
    addInstance({kB, kC});          // g3: C reached
  }

  void addInstance(const std::vector<VertexIndex>& carriers) {
    auto& inst = collection_.appendInstance();
    auto& tweets = inst.vertexCol(0).asStringList();
    for (const auto v : carriers) {
      tweets[v].push_back("#meme");
    }
  }

  static constexpr VertexIndex kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;
  GraphTemplatePtr tmpl_;
  TimeSeriesCollection collection_;
};

TEST_F(FigureFour, SpreadMatchesThePaperTimeline) {
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    const auto pg = partitionGraph(tmpl_, k);
    DirectInstanceProvider provider(pg, collection_);
    MemeOptions options;
    options.meme = "#meme";
    options.tweets_attr = 0;
    const auto run = runMemeTracking(pg, provider, options);
    EXPECT_EQ(run.colored_at[kA], 0) << "k=" << k;
    EXPECT_EQ(run.colored_at[kD], 1) << "k=" << k;
    EXPECT_EQ(run.colored_at[kE], 2) << "k=" << k;
    EXPECT_EQ(run.colored_at[kB], 2) << "k=" << k;
    EXPECT_EQ(run.colored_at[kC], 3) << "k=" << k;
  }
}

TEST_F(FigureFour, VerticesNeverCarryingMemeStayUncolored) {
  // E stops tweeting after g2; it stays colored (colored sets only grow),
  // but a vertex that never tweets is never colored. Add such a vertex by
  // restricting the meme to a different tag.
  const auto pg = partitionGraph(tmpl_, 2);
  DirectInstanceProvider provider(pg, collection_);
  MemeOptions options;
  options.meme = "#different";
  options.tweets_attr = 0;
  const auto run = runMemeTracking(pg, provider, options);
  for (VertexIndex v = 0; v < tmpl_->numVertices(); ++v) {
    EXPECT_EQ(run.colored_at[v], -1);
  }
}

// Property sweep: distributed meme tracking == sequential temporal BFS on
// SIR-generated tweet streams.
class MemeProperty
    : public ::testing::TestWithParam<
          std::tuple<int, std::uint32_t, int, double>> {};

TEST_P(MemeProperty, MatchesReference) {
  const auto [n, k, seed, hit] = GetParam();
  auto tmpl = smallSocial(n, seed);
  const auto pg = partitionGraph(tmpl, k, seed + 1);
  const auto coll = tweetCollection(tmpl, 15, hit, seed + 2);
  DirectInstanceProvider provider(pg, coll);

  SirTweetOptions gen_defaults;  // meme tag defaults align
  MemeOptions options;
  options.meme = gen_defaults.meme;
  options.tweets_attr = tmpl->vertexSchema().requireIndex("tweets");
  const auto run = runMemeTracking(pg, provider, options);
  const auto expected =
      reference::memeSpread(*tmpl, coll, options.tweets_attr, options.meme);

  ASSERT_EQ(run.colored_at.size(), expected.size());
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    ASSERT_EQ(run.colored_at[v], expected[v])
        << "vertex " << v << " n=" << n << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemeProperty,
    ::testing::Combine(::testing::Values(40, 120), ::testing::Values(1u, 3u),
                       ::testing::Values(3, 17), ::testing::Values(0.1, 0.5)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_h" +
             std::to_string(static_cast<int>(std::get<3>(info.param) * 10));
    });

TEST(Meme, ColoredCounterMatchesTotalColored) {
  auto tmpl = smallSocial(100);
  const auto pg = partitionGraph(tmpl, 3);
  const auto coll = tweetCollection(tmpl, 12, 0.4);
  DirectInstanceProvider provider(pg, coll);
  MemeOptions options;
  options.tweets_attr = 0;
  const auto run = runMemeTracking(pg, provider, options);

  std::uint64_t colored = 0;
  for (const auto t : run.colored_at) {
    colored += t >= 0 ? 1 : 0;
  }
  EXPECT_EQ(run.exec.stats.counterTotal(kMemeColoredCounter), colored);
  EXPECT_GT(colored, 0u);
}

TEST(Meme, OutputsListNewlyColoredPerTimestep) {
  auto tmpl = smallSocial(60);
  const auto pg = partitionGraph(tmpl, 2);
  const auto coll = tweetCollection(tmpl, 8, 0.5);
  DirectInstanceProvider provider(pg, coll);
  MemeOptions options;
  options.tweets_attr = 0;
  options.emit_outputs = true;
  const auto run = runMemeTracking(pg, provider, options);
  std::uint64_t colored = 0;
  for (const auto t : run.colored_at) {
    colored += t >= 0 ? 1 : 0;
  }
  EXPECT_EQ(run.exec.outputs.size(), colored);
}

}  // namespace
}  // namespace tsg
