#include "graph/graph_template.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tsg {
namespace {

GraphTemplate buildDiamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (external ids 10x)
  GraphTemplateBuilder builder(/*directed=*/true);
  builder.addVertex(10);
  builder.addVertex(20);
  builder.addVertex(30);
  builder.addVertex(40);
  builder.addEdge(1, 10, 20);
  builder.addEdge(2, 10, 30);
  builder.addEdge(3, 20, 40);
  builder.addEdge(4, 30, 40);
  return testing::unwrap(builder.build());
}

TEST(Builder, BuildsCsrTopology) {
  const auto g = buildDiamond();
  EXPECT_EQ(g.numVertices(), 4u);
  EXPECT_EQ(g.numEdges(), 4u);
  EXPECT_TRUE(g.directed());

  const auto v0 = g.indexOfVertex(10);
  ASSERT_TRUE(v0.has_value());
  EXPECT_EQ(g.outDegree(*v0), 2u);
  EXPECT_EQ(g.vertexId(*v0), 10u);

  // CSR bucket integrity: each out-edge's recorded src matches the bucket.
  for (VertexIndex v = 0; v < g.numVertices(); ++v) {
    for (const auto& oe : g.outEdges(v)) {
      EXPECT_EQ(g.edgeSrc(oe.edge), v);
      EXPECT_EQ(g.edgeDst(oe.edge), oe.dst);
    }
  }
}

TEST(Builder, DuplicateVertexIdRejected) {
  GraphTemplateBuilder builder;
  builder.addVertex(1);
  builder.addVertex(1);
  auto result = builder.build();
  ASSERT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Builder, UnknownEndpointRejected) {
  GraphTemplateBuilder builder;
  builder.addVertex(1);
  builder.addEdge(1, 1, 99);
  auto result = builder.build();
  ASSERT_FALSE(result.isOk());
  EXPECT_NE(result.status().message().find("unknown vertex"),
            std::string::npos);
}

TEST(Builder, UndirectedEdgeAddsBothDirections) {
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.addVertex(1);
  builder.addVertex(2);
  builder.addUndirectedEdge(7, 1, 2);
  const auto g = testing::unwrap(builder.build());
  EXPECT_EQ(g.numEdges(), 2u);
  // Both slots share the external edge id.
  EXPECT_EQ(g.edgeId(0), 7u);
  EXPECT_EQ(g.edgeId(1), 7u);
  EXPECT_FALSE(g.directed());
}

TEST(Builder, EmptyGraph) {
  GraphTemplateBuilder builder;
  const auto g = testing::unwrap(builder.build());
  EXPECT_EQ(g.numVertices(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
  EXPECT_EQ(g.estimateDiameter(), 0u);
}

TEST(Builder, SelfLoopAndParallelEdgesAllowed) {
  GraphTemplateBuilder builder;
  builder.addVertex(1);
  builder.addVertex(2);
  builder.addEdge(1, 1, 1);  // self loop
  builder.addEdge(2, 1, 2);
  builder.addEdge(3, 1, 2);  // parallel
  const auto g = testing::unwrap(builder.build());
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_EQ(g.outDegree(*g.indexOfVertex(1)), 3u);
}

TEST(Lookup, MissingVertexIdReturnsNullopt) {
  const auto g = buildDiamond();
  EXPECT_FALSE(g.indexOfVertex(999).has_value());
}

TEST(Diameter, PathGraphExact) {
  GraphTemplateBuilder builder(/*directed=*/false);
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    builder.addVertex(i);
  }
  for (int i = 0; i + 1 < n; ++i) {
    builder.addUndirectedEdge(i, i, i + 1);
  }
  const auto g = testing::unwrap(builder.build());
  EXPECT_EQ(g.estimateDiameter(), static_cast<std::size_t>(n - 1));
  // Double sweep finds the true diameter from any start on a path.
  EXPECT_EQ(g.estimateDiameter(5), static_cast<std::size_t>(n - 1));
}

TEST(Serialize, RoundtripPreservesEverything) {
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.vertexSchema().add("tweets", AttrType::kStringList);
  builder.edgeSchema().add("latency", AttrType::kDouble);
  builder.addVertex(100);
  builder.addVertex(200);
  builder.addVertex(300);
  builder.addUndirectedEdge(1, 100, 200);
  builder.addUndirectedEdge(2, 200, 300);
  const auto g = testing::unwrap(builder.build());

  BinaryWriter w;
  g.serialize(w);
  BinaryReader r(w.buffer());
  auto parsed = GraphTemplate::deserialize(r);
  ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
  EXPECT_TRUE(parsed.value() == g);
  EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, CorruptMagicRejected) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
  BinaryReader r(junk);
  auto parsed = GraphTemplate::deserialize(r);
  ASSERT_FALSE(parsed.isOk());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kCorruptData);
}

TEST(Serialize, TruncationDetected) {
  const auto g = buildDiamond();
  BinaryWriter w;
  g.serialize(w);
  const auto& full = w.buffer();
  // Any sizable truncation must be rejected, never crash.
  for (const std::size_t cut : {5ul, full.size() / 2, full.size() - 1}) {
    BinaryReader r(std::span(full.data(), cut));
    auto parsed = GraphTemplate::deserialize(r);
    EXPECT_FALSE(parsed.isOk()) << cut;
  }
}

TEST(Accessors, OutOfRangeAborts) {
  const auto g = buildDiamond();
  EXPECT_DEATH((void)g.vertexId(99), "TSG_CHECK");
  EXPECT_DEATH((void)g.edgeId(99), "TSG_CHECK");
  EXPECT_DEATH((void)g.outEdges(99), "TSG_CHECK");
}

}  // namespace
}  // namespace tsg
