#include "vertexcentric/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/reference.h"
#include "test_util.h"
#include "vertexcentric/programs.h"

namespace tsg {
namespace {

using testing::partitionGraph;
using testing::smallRoad;
using testing::smallSocial;
using vertexcentric::BfsVertexProgram;
using vertexcentric::Combiner;
using vertexcentric::SsspVertexProgram;
using vertexcentric::VcConfig;
using vertexcentric::VertexCentricEngine;

TEST(VertexCentric, UnweightedSsspMatchesBfsReference) {
  auto tmpl = smallRoad(8, 8);
  const auto pg = partitionGraph(tmpl, 3);
  VertexCentricEngine engine(pg);
  SsspVertexProgram program(0);
  const auto result =
      engine.run(program, {}, [](VertexIndex) { return vertexcentric::kInf; });

  const auto expected = reference::bfsLevels(*tmpl, 0);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (expected[v] < 0) {
      EXPECT_TRUE(std::isinf(result.values[v]));
    } else {
      EXPECT_DOUBLE_EQ(result.values[v], expected[v]) << v;
    }
  }
}

TEST(VertexCentric, WeightedSsspMatchesDijkstra) {
  auto tmpl = smallSocial(120);
  const auto pg = partitionGraph(tmpl, 2);
  std::vector<double> weights(tmpl->numEdges());
  Rng rng(5);
  for (auto& w : weights) {
    w = rng.uniformDouble(0.5, 3.0);
  }
  VcConfig config;
  config.edge_weights = weights;
  VertexCentricEngine engine(pg);
  SsspVertexProgram program(7);
  const auto result =
      engine.run(program, config, [](VertexIndex) { return 0.0; });

  const auto expected = reference::dijkstra(*tmpl, weights, 7);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.values[v]));
    } else {
      EXPECT_NEAR(result.values[v], expected[v], 1e-9) << v;
    }
  }
}

TEST(VertexCentric, MinCombinerGivesSameAnswerWithFewerBytes) {
  auto tmpl = smallSocial(200);
  const auto pg = partitionGraph(tmpl, 3);
  VertexCentricEngine engine(pg);

  SsspVertexProgram plain_program(0);
  const auto plain = engine.run(plain_program, {}, [](VertexIndex) {
    return vertexcentric::kInf;
  });

  VcConfig combined_cfg;
  combined_cfg.combiner = Combiner::kMin;
  SsspVertexProgram combined_program(0);
  const auto combined = engine.run(combined_program, combined_cfg,
                                   [](VertexIndex) {
                                     return vertexcentric::kInf;
                                   });
  EXPECT_EQ(plain.values, combined.values);
}

TEST(VertexCentric, SuperstepCountTracksDiameterNotPartitions) {
  // The core Fig. 5b argument: vertex-centric BFS needs ~eccentricity
  // supersteps. On a lattice that is large; the subgraph-centric SSSP (see
  // test_sssp) needs only a handful.
  auto tmpl = smallRoad(12, 12);
  const auto pg = partitionGraph(tmpl, 3);
  VertexCentricEngine engine(pg);
  BfsVertexProgram program(0);
  const auto result =
      engine.run(program, {}, [](VertexIndex) { return vertexcentric::kInf; });
  const auto levels = reference::bfsLevels(*tmpl, 0);
  const auto ecc = *std::max_element(levels.begin(), levels.end());
  EXPECT_GE(result.supersteps, ecc);
}

TEST(VertexCentric, BfsLevelsMatchReference) {
  auto tmpl = smallSocial(150);
  const auto pg = partitionGraph(tmpl, 2);
  VertexCentricEngine engine(pg);
  BfsVertexProgram program(3);
  const auto result =
      engine.run(program, {}, [](VertexIndex) { return vertexcentric::kInf; });
  const auto expected = reference::bfsLevels(*tmpl, 3);
  for (VertexIndex v = 0; v < tmpl->numVertices(); ++v) {
    if (expected[v] < 0) {
      EXPECT_TRUE(std::isinf(result.values[v]));
    } else {
      EXPECT_DOUBLE_EQ(result.values[v], expected[v]);
    }
  }
}

TEST(VertexCentric, StatsRecordTraffic) {
  auto tmpl = smallRoad(6, 6);
  const auto pg = partitionGraph(tmpl, 2);
  VertexCentricEngine engine(pg);
  SsspVertexProgram program(0);
  const auto result =
      engine.run(program, {}, [](VertexIndex) { return vertexcentric::kInf; });
  EXPECT_GT(result.stats.totalMessages(), 0u);
  EXPECT_GT(result.stats.totalSupersteps(), 1u);
  EXPECT_GT(result.stats.wallClockNs(), 0);
}

}  // namespace
}  // namespace tsg
