#include "generators/instances.h"

#include <vector>

#include "common/rng.h"
#include "generators/topology.h"

namespace tsg {

Result<TimeSeriesCollection> makeRoadInstances(
    GraphTemplatePtr tmpl, const RoadInstanceOptions& options) {
  if (tmpl == nullptr) {
    return Status::invalidArgument("null template");
  }
  const std::size_t latency_attr = tmpl->edgeSchema().indexOf(kLatencyAttr);
  if (latency_attr == AttributeSchema::npos ||
      tmpl->edgeSchema().at(latency_attr).type != AttrType::kDouble) {
    return Status::invalidArgument(
        "template lacks a double edge attribute 'latency'");
  }
  if (options.min_latency <= 0.0 ||
      options.max_latency < options.min_latency) {
    return Status::invalidArgument("bad latency range");
  }

  const GraphTemplate& graph = *tmpl;
  const std::size_t exists_attr = graph.edgeSchema().indexOf(kExistsAttr);
  if (exists_attr != AttributeSchema::npos &&
      graph.edgeSchema().at(exists_attr).type != AttrType::kBool) {
    return Status::invalidArgument("'exists' edge attribute must be bool");
  }
  if (options.closure_probability < 0.0 ||
      options.closure_probability > 1.0) {
    return Status::invalidArgument("closure probability outside [0, 1]");
  }

  TimeSeriesCollection collection(std::move(tmpl), options.t0, options.delta);
  Rng rng(options.seed);
  for (std::uint32_t t = 0; t < options.num_timesteps; ++t) {
    GraphInstance& inst = collection.appendInstance();
    auto& latencies = inst.edgeCol(latency_attr).asDouble();
    for (auto& latency : latencies) {
      latency = rng.uniformDouble(options.min_latency, options.max_latency);
    }
    if (exists_attr != AttributeSchema::npos) {
      auto& exists = inst.edgeCol(exists_attr).asBool();
      for (auto& flag : exists) {
        flag = rng.bernoulli(options.closure_probability) ? 0 : 1;
      }
    }
  }
  return collection;
}

Result<TimeSeriesCollection> makeSirTweetInstances(
    GraphTemplatePtr tmpl, const SirTweetOptions& options) {
  if (tmpl == nullptr) {
    return Status::invalidArgument("null template");
  }
  const std::size_t tweets_attr = tmpl->vertexSchema().indexOf(kTweetsAttr);
  if (tweets_attr == AttributeSchema::npos ||
      tmpl->vertexSchema().at(tweets_attr).type != AttrType::kStringList) {
    return Status::invalidArgument(
        "template lacks a string-list vertex attribute 'tweets'");
  }
  if (options.hit_probability < 0.0 || options.hit_probability > 1.0) {
    return Status::invalidArgument("hit probability outside [0, 1]");
  }
  const GraphTemplate& g = *tmpl;
  const std::size_t n = g.numVertices();
  if (options.num_seed_vertices == 0 || options.num_seed_vertices > n) {
    return Status::invalidArgument("bad seed vertex count");
  }

  TimeSeriesCollection collection(std::move(tmpl), options.t0, options.delta);
  Rng rng(options.seed);

  // SIR state. remaining[v] > 0 means infectious for that many more steps;
  // recovered[v] means immune forever.
  std::vector<std::uint32_t> remaining(n, 0);
  std::vector<std::uint8_t> recovered(n, 0);
  for (std::uint32_t s = 0; s < options.num_seed_vertices; ++s) {
    // Rejection-free spread of distinct seeds.
    VertexIndex v = static_cast<VertexIndex>(rng.uniformBelow(n));
    while (remaining[v] != 0) {
      v = static_cast<VertexIndex>(rng.uniformBelow(n));
    }
    remaining[v] = options.infectious_timesteps;
  }

  std::vector<VertexIndex> newly_infected;
  for (std::uint32_t t = 0; t < options.num_timesteps; ++t) {
    GraphInstance& inst = collection.appendInstance();
    auto& tweets = inst.vertexCol(tweets_attr).asStringList();

    // Infectious vertices tweet the meme this timestep.
    for (VertexIndex v = 0; v < n; ++v) {
      if (remaining[v] > 0) {
        tweets[v].push_back(options.meme);
      }
      if (options.background_probability > 0.0 &&
          rng.bernoulli(options.background_probability)) {
        tweets[v].push_back("#bg" + std::to_string(rng.uniformBelow(32)));
      }
    }

    // Spread: infectious vertices infect susceptible neighbors with the hit
    // probability; infections take effect in the NEXT instance, which makes
    // the meme spread one (spatial) hop per timestep like the paper's Fig. 4.
    newly_infected.clear();
    for (VertexIndex v = 0; v < n; ++v) {
      if (remaining[v] == 0) {
        continue;
      }
      for (const auto& oe : g.outEdges(v)) {
        if (remaining[oe.dst] == 0 && recovered[oe.dst] == 0 &&
            rng.bernoulli(options.hit_probability)) {
          newly_infected.push_back(oe.dst);
        }
      }
    }
    // Age the infections, then apply new ones.
    for (VertexIndex v = 0; v < n; ++v) {
      if (remaining[v] > 0 && --remaining[v] == 0) {
        recovered[v] = 1;
      }
    }
    for (const VertexIndex v : newly_infected) {
      if (recovered[v] == 0 && remaining[v] == 0) {
        remaining[v] = options.infectious_timesteps;
      }
    }
  }
  return collection;
}

}  // namespace tsg
