#include "generators/topology.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace tsg {
namespace {

// Union-find used to stitch disconnected remainders back together.
class Stitcher {
 public:
  explicit Stitcher(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return false;
    }
    parent_[std::max(a, b)] = std::min(a, b);
    return true;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

AttributeSchema roadEdgeSchema() {
  AttributeSchema schema;
  schema.add(kLatencyAttr, AttrType::kDouble);
  return schema;
}

AttributeSchema roadEdgeSchemaWithClosures() {
  AttributeSchema schema = roadEdgeSchema();
  schema.add(kExistsAttr, AttrType::kBool);
  return schema;
}

AttributeSchema tweetVertexSchema() {
  AttributeSchema schema;
  schema.add(kTweetsAttr, AttrType::kStringList);
  return schema;
}

Result<GraphTemplate> makeRoadNetwork(const RoadNetworkOptions& options,
                                      AttributeSchema vertex_schema,
                                      AttributeSchema edge_schema) {
  if (options.width == 0 || options.height == 0) {
    return Status::invalidArgument("road network needs positive dimensions");
  }
  const std::uint64_t n =
      static_cast<std::uint64_t>(options.width) * options.height;
  Rng rng(options.seed);
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.vertexSchema() = std::move(vertex_schema);
  builder.edgeSchema() = std::move(edge_schema);
  for (std::uint64_t v = 0; v < n; ++v) {
    builder.addVertex(v);
  }

  Stitcher stitcher(n);
  EdgeId next_edge = 0;
  auto vertexAt = [&](std::uint32_t x, std::uint32_t y) -> std::uint64_t {
    return static_cast<std::uint64_t>(y) * options.width + x;
  };
  auto addRoad = [&](std::uint64_t a, std::uint64_t b) {
    builder.addUndirectedEdge(next_edge++, a, b);
    stitcher.unite(static_cast<std::uint32_t>(a),
                   static_cast<std::uint32_t>(b));
  };

  for (std::uint32_t y = 0; y < options.height; ++y) {
    for (std::uint32_t x = 0; x < options.width; ++x) {
      const std::uint64_t v = vertexAt(x, y);
      if (x + 1 < options.width && rng.bernoulli(options.keep_probability)) {
        addRoad(v, vertexAt(x + 1, y));
      }
      if (y + 1 < options.height && rng.bernoulli(options.keep_probability)) {
        addRoad(v, vertexAt(x, y + 1));
      }
      if (x + 1 < options.width && y + 1 < options.height &&
          rng.bernoulli(options.diagonal_probability)) {
        addRoad(v, vertexAt(x + 1, y + 1));
      }
    }
  }

  // Stitch stranded fragments to a lattice neighbor so the network is
  // connected (real road networks are one giant component).
  for (std::uint64_t v = 1; v < n; ++v) {
    const auto x = static_cast<std::uint32_t>(v % options.width);
    const std::uint64_t neighbor = x > 0 ? v - 1 : v - options.width;
    if (stitcher.find(static_cast<std::uint32_t>(v)) !=
        stitcher.find(static_cast<std::uint32_t>(neighbor))) {
      addRoad(v, neighbor);
    }
  }
  return builder.build();
}

Result<GraphTemplate> makePreferentialAttachment(
    const PreferentialAttachmentOptions& options,
    AttributeSchema vertex_schema, AttributeSchema edge_schema) {
  const std::uint32_t m = options.edges_per_vertex;
  if (options.num_vertices < m + 1 || m == 0) {
    return Status::invalidArgument(
        "preferential attachment needs n > m >= 1");
  }
  Rng rng(options.seed);
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.vertexSchema() = std::move(vertex_schema);
  builder.edgeSchema() = std::move(edge_schema);
  for (std::uint64_t v = 0; v < options.num_vertices; ++v) {
    builder.addVertex(v);
  }

  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree (the standard BA construction).
  std::vector<std::uint64_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(options.num_vertices) * 2 * m);
  EdgeId next_edge = 0;

  // Seed clique over the first m+1 vertices.
  for (std::uint32_t a = 0; a <= m; ++a) {
    for (std::uint32_t b = a + 1; b <= m; ++b) {
      builder.addUndirectedEdge(next_edge++, a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }

  std::vector<std::uint64_t> targets;
  for (std::uint64_t v = m + 1; v < options.num_vertices; ++v) {
    targets.clear();
    while (targets.size() < static_cast<std::size_t>(m)) {
      const std::uint64_t candidate =
          endpoints[rng.uniformBelow(endpoints.size())];
      if (candidate != v &&
          std::find(targets.begin(), targets.end(), candidate) ==
              targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (const std::uint64_t u : targets) {
      builder.addUndirectedEdge(next_edge++, v, u);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  return builder.build();
}

Result<GraphTemplate> makeWattsStrogatz(const WattsStrogatzOptions& options,
                                        AttributeSchema vertex_schema,
                                        AttributeSchema edge_schema) {
  const std::uint32_t n = options.num_vertices;
  const std::uint32_t k = options.neighbors;
  if (n < k + 2 || k < 2 || k % 2 != 0) {
    return Status::invalidArgument(
        "watts-strogatz needs n > k + 1, even k >= 2");
  }
  Rng rng(options.seed);
  GraphTemplateBuilder builder(/*directed=*/false);
  builder.vertexSchema() = std::move(vertex_schema);
  builder.edgeSchema() = std::move(edge_schema);
  for (std::uint64_t v = 0; v < n; ++v) {
    builder.addVertex(v);
  }
  EdgeId next_edge = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      std::uint64_t target = (v + j) % n;
      if (rng.bernoulli(options.rewire_probability)) {
        // Rewire to a uniform non-self target; parallel edges tolerated
        // (they model multi-lane links and keep the construction simple).
        target = rng.uniformBelow(n);
        if (target == v) {
          target = (v + 1) % n;
        }
      }
      builder.addUndirectedEdge(next_edge++, v, target);
    }
  }
  return builder.build();
}

}  // namespace tsg
