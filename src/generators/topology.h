// Synthetic graph template generators.
//
// The paper evaluates on two SNAP graphs chosen for their structural
// contrast (§IV-A): the California road network (CARN: ~2M vertices, large
// diameter 849, near-uniform small degree) and the Wikipedia talk network
// (WIKI: ~2.4M vertices, power-law degree, diameter 9). Real SNAP dumps are
// not available offline, so these generators produce graphs with the same
// structural signatures at a configurable scale:
//   * makeRoadNetwork — perturbed 2-D lattice: planar-ish, large diameter,
//     degree ≤ 4 + occasional diagonals ("CARN-like").
//   * makePreferentialAttachment — Barabási–Albert: power-law degree,
//     small-world diameter ("WIKI-like").
//   * makeWattsStrogatz — ring + rewiring; used by property tests for a
//     third structural regime.
//
// All emit symmetric (undirected) edge pairs, deterministic in the seed.
#pragma once

#include <cstdint>

#include "graph/graph_template.h"

namespace tsg {

struct RoadNetworkOptions {
  std::uint32_t width = 100;
  std::uint32_t height = 100;
  double keep_probability = 0.94;     // lattice edges that survive
  double diagonal_probability = 0.02; // extra shortcut diagonals
  std::uint64_t seed = 1;
};

struct PreferentialAttachmentOptions {
  std::uint32_t num_vertices = 10000;
  std::uint32_t edges_per_vertex = 2;  // BA attachment count m
  std::uint64_t seed = 1;
};

struct WattsStrogatzOptions {
  std::uint32_t num_vertices = 10000;
  std::uint32_t neighbors = 4;        // ring degree k (even)
  double rewire_probability = 0.05;
  std::uint64_t seed = 1;
};

// Each generator attaches the given attribute schemas to the template.
Result<GraphTemplate> makeRoadNetwork(const RoadNetworkOptions& options,
                                      AttributeSchema vertex_schema,
                                      AttributeSchema edge_schema);

Result<GraphTemplate> makePreferentialAttachment(
    const PreferentialAttachmentOptions& options,
    AttributeSchema vertex_schema, AttributeSchema edge_schema);

Result<GraphTemplate> makeWattsStrogatz(const WattsStrogatzOptions& options,
                                        AttributeSchema vertex_schema,
                                        AttributeSchema edge_schema);

// Canonical schemas for the paper's two workloads.
// Road datasets: one double edge attribute "latency" (travel time).
AttributeSchema roadEdgeSchema();
// Road datasets with dynamic closures: latency + the paper's isExists
// convention (§II-A) as a bool edge attribute "exists".
AttributeSchema roadEdgeSchemaWithClosures();
// Tweet datasets: one string-list vertex attribute "tweets".
AttributeSchema tweetVertexSchema();

// Attribute names used across algorithms and benches.
inline constexpr const char* kLatencyAttr = "latency";
inline constexpr const char* kTweetsAttr = "tweets";
inline constexpr const char* kExistsAttr = "exists";

}  // namespace tsg
