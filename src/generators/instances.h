// Synthetic instance-data generators (the paper's §IV-A methodology).
//
//  * makeRoadInstances — "a random value for travel latency for each edge of
//    the graph, and across timesteps. There is no correlation between the
//    values in space or time."
//  * makeSirTweetInstances — "the SIR model of epidemiology for generating
//    tweets containing memes (#hashtags) ... propagate from vertices across
//    instances with a hit probability" (30% CARN, 2% WIKI in the paper).
//
// Both are deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>

#include "graph/collection.h"

namespace tsg {

struct RoadInstanceOptions {
  std::uint32_t num_timesteps = 50;
  double min_latency = 1.0;
  double max_latency = 10.0;
  std::int64_t t0 = 0;
  std::int64_t delta = 5;  // minutes per timestep, like the paper's example
  std::uint64_t seed = 7;
  // If the template declares the bool edge attribute "exists" (the paper's
  // isExists convention for slow topology change), each directed edge is
  // closed for a timestep with this probability.
  double closure_probability = 0.05;
};

// Fills the "latency" edge attribute with i.i.d. uniform values.
Result<TimeSeriesCollection> makeRoadInstances(
    GraphTemplatePtr tmpl, const RoadInstanceOptions& options);

struct SirTweetOptions {
  std::uint32_t num_timesteps = 50;
  std::string meme = "#meme";
  double hit_probability = 0.3;   // per infectious neighbor, per timestep
  std::uint32_t num_seed_vertices = 4;
  std::uint32_t infectious_timesteps = 3;  // I -> R after this many steps
  // Background chatter: probability a vertex emits an unrelated hashtag in a
  // timestep (keeps the tweet columns from being trivially sparse).
  double background_probability = 0.01;
  std::int64_t t0 = 0;
  std::int64_t delta = 5;
  std::uint64_t seed = 7;
};

// Fills the "tweets" vertex attribute with SIR-propagated meme tweets.
// Every currently infectious vertex emits one tweet containing the meme in
// each timestep while infectious.
Result<TimeSeriesCollection> makeSirTweetInstances(
    GraphTemplatePtr tmpl, const SirTweetOptions& options);

}  // namespace tsg
