#include "partition/partitioner.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/rng.h"

namespace tsg {

PartitionAssignment HashPartitioner::assign(
    const GraphTemplate& tmpl, std::uint32_t num_partitions) const {
  TSG_CHECK(num_partitions > 0);
  PartitionAssignment assignment(tmpl.numVertices());
  for (VertexIndex v = 0; v < tmpl.numVertices(); ++v) {
    // Mix the external id so consecutive ids spread across partitions.
    SplitMix64 mixer(tmpl.vertexId(v));
    assignment[v] = static_cast<PartitionId>(mixer.next() % num_partitions);
  }
  return assignment;
}

namespace {

// Farthest-point seed spreading: first seed random, each next seed is the
// unassigned vertex farthest (BFS hops) from all chosen seeds.
std::vector<VertexIndex> spreadSeeds(const GraphTemplate& tmpl,
                                     std::uint32_t k, Rng& rng) {
  const std::size_t n = tmpl.numVertices();
  std::vector<VertexIndex> seeds;
  seeds.reserve(k);
  seeds.push_back(static_cast<VertexIndex>(rng.uniformBelow(n)));

  std::vector<std::uint32_t> dist(n, ~0U);
  std::deque<VertexIndex> queue;
  auto relaxFrom = [&](VertexIndex s) {
    dist[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const VertexIndex v = queue.front();
      queue.pop_front();
      for (const auto& oe : tmpl.outEdges(v)) {
        if (dist[oe.dst] == ~0U || dist[oe.dst] > dist[v] + 1) {
          dist[oe.dst] = dist[v] + 1;
          queue.push_back(oe.dst);
        }
      }
    }
  };

  relaxFrom(seeds[0]);
  while (seeds.size() < k) {
    // Farthest vertex; unreachable vertices (dist == ~0U) win outright,
    // which naturally seeds other connected components.
    VertexIndex best = seeds[0];
    std::uint32_t best_dist = 0;
    for (VertexIndex v = 0; v < n; ++v) {
      if (dist[v] == ~0U) {
        best = v;
        best_dist = ~0U;
        break;
      }
      if (dist[v] > best_dist) {
        best_dist = dist[v];
        best = v;
      }
    }
    seeds.push_back(best);
    relaxFrom(best);
  }
  return seeds;
}

}  // namespace

PartitionAssignment BfsPartitioner::assign(const GraphTemplate& tmpl,
                                           std::uint32_t num_partitions) const {
  TSG_CHECK(num_partitions > 0);
  const std::size_t n = tmpl.numVertices();
  PartitionAssignment assignment(n, kInvalidPartition);
  if (n == 0) {
    return assignment;
  }
  if (num_partitions == 1) {
    std::fill(assignment.begin(), assignment.end(), 0);
    return assignment;
  }

  Rng rng(seed_);
  const auto seeds = spreadSeeds(tmpl, num_partitions, rng);
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(n) / num_partitions * balance_factor_ + 1.0);

  std::vector<std::deque<VertexIndex>> frontiers(num_partitions);
  std::vector<std::uint64_t> sizes(num_partitions, 0);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    const VertexIndex s = seeds[p];
    if (assignment[s] == kInvalidPartition) {
      assignment[s] = p;
      ++sizes[p];
      frontiers[p].push_back(s);
    }
  }

  // Round-robin growth: each partition claims one frontier vertex's
  // unclaimed neighbors per turn, keeping regions contiguous and balanced.
  bool any_active = true;
  while (any_active) {
    any_active = false;
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      if (frontiers[p].empty() || sizes[p] >= capacity) {
        continue;
      }
      any_active = true;
      const VertexIndex v = frontiers[p].front();
      frontiers[p].pop_front();
      for (const auto& oe : tmpl.outEdges(v)) {
        if (assignment[oe.dst] == kInvalidPartition && sizes[p] < capacity) {
          assignment[oe.dst] = p;
          ++sizes[p];
          frontiers[p].push_back(oe.dst);
        }
      }
    }
  }

  // Leftovers: capacity-capped growth can strand vertices (and directed
  // graphs may have vertices unreachable from any seed). Attach each to the
  // least-loaded partition, preferring one that owns a neighbor.
  for (VertexIndex v = 0; v < n; ++v) {
    if (assignment[v] != kInvalidPartition) {
      continue;
    }
    PartitionId best = kInvalidPartition;
    for (const auto& oe : tmpl.outEdges(v)) {
      const PartitionId q = assignment[oe.dst];
      if (q != kInvalidPartition &&
          (best == kInvalidPartition || sizes[q] < sizes[best])) {
        best = q;
      }
    }
    if (best == kInvalidPartition) {
      best = static_cast<PartitionId>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    }
    assignment[v] = best;
    ++sizes[best];
  }
  return assignment;
}

PartitionAssignment LdgPartitioner::assign(const GraphTemplate& tmpl,
                                           std::uint32_t num_partitions) const {
  TSG_CHECK(num_partitions > 0);
  const std::size_t n = tmpl.numVertices();
  PartitionAssignment assignment(n, kInvalidPartition);
  if (n == 0) {
    return assignment;
  }

  const double capacity = static_cast<double>(n) / num_partitions *
                          balance_factor_;
  std::vector<std::uint64_t> sizes(num_partitions, 0);
  std::vector<double> score(num_partitions);

  // Seeded random stream order (Fisher–Yates).
  std::vector<VertexIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed_);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniformBelow(i)]);
  }

  for (const VertexIndex v : order) {
    std::fill(score.begin(), score.end(), 0.0);
    for (const auto& oe : tmpl.outEdges(v)) {
      const PartitionId q = assignment[oe.dst];
      if (q != kInvalidPartition) {
        score[q] += 1.0;
      }
    }
    PartitionId best = 0;
    double best_score = -1.0;
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      const double slack =
          1.0 - static_cast<double>(sizes[p]) / capacity;
      if (slack <= 0.0) {
        continue;
      }
      // +1 so isolated vertices still prefer emptier partitions.
      const double s = (score[p] + 1.0) * slack;
      if (s > best_score) {
        best_score = s;
        best = p;
      }
    }
    if (best_score < 0.0) {
      // Every partition at capacity (rounding); least-loaded wins.
      best = static_cast<PartitionId>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    }
    assignment[v] = best;
    ++sizes[best];
  }
  return assignment;
}

PartitionMetrics evaluatePartition(const GraphTemplate& tmpl,
                                   const PartitionAssignment& assignment,
                                   std::uint32_t num_partitions) {
  TSG_CHECK(assignment.size() == tmpl.numVertices());
  PartitionMetrics m;
  m.num_edges = tmpl.numEdges();
  m.part_sizes.assign(num_partitions, 0);
  for (VertexIndex v = 0; v < tmpl.numVertices(); ++v) {
    TSG_CHECK(assignment[v] < num_partitions);
    ++m.part_sizes[assignment[v]];
  }
  for (EdgeIndex e = 0; e < tmpl.numEdges(); ++e) {
    if (assignment[tmpl.edgeSrc(e)] != assignment[tmpl.edgeDst(e)]) {
      ++m.cut_edges;
    }
  }
  m.cut_fraction = m.num_edges == 0
                       ? 0.0
                       : static_cast<double>(m.cut_edges) /
                             static_cast<double>(m.num_edges);
  const double ideal =
      static_cast<double>(tmpl.numVertices()) / num_partitions;
  std::uint64_t max_size = 0;
  for (const auto s : m.part_sizes) {
    max_size = std::max(max_size, s);
  }
  m.balance = ideal == 0.0 ? 1.0 : static_cast<double>(max_size) / ideal;
  return m;
}

}  // namespace tsg
