#include "partition/partitioned_graph.h"

#include <algorithm>
#include <numeric>

namespace tsg {
namespace {

// Union-find over template vertex indices, restricted to one partition's
// vertices by only ever uniting local-edge endpoints.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      // Union by index keeps it deterministic.
      if (a < b) {
        parent_[b] = a;
      } else {
        parent_[a] = b;
      }
    }
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

Result<PartitionedGraph> PartitionedGraph::build(
    GraphTemplatePtr tmpl, const PartitionAssignment& assignment,
    std::uint32_t num_partitions) {
  if (tmpl == nullptr) {
    return Status::invalidArgument("null template");
  }
  const std::size_t n = tmpl->numVertices();
  if (assignment.size() != n) {
    return Status::invalidArgument("assignment size != vertex count");
  }
  for (const PartitionId p : assignment) {
    if (p >= num_partitions) {
      return Status::invalidArgument("assignment references partition " +
                                     std::to_string(p) + " >= k");
    }
  }

  PartitionedGraph pg;
  pg.tmpl_ = std::move(tmpl);
  pg.assignment_ = assignment;
  pg.vertex_partition_ = assignment;
  const GraphTemplate& g = *pg.tmpl_;

  // Partition membership lists (ascending template index by construction).
  pg.partitions_.resize(num_partitions);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    pg.partitions_[p].id = p;
  }
  pg.vertex_local_index_.resize(n);
  for (VertexIndex v = 0; v < n; ++v) {
    auto& part = pg.partitions_[assignment[v]];
    pg.vertex_local_index_[v] = static_cast<std::uint32_t>(part.vertices.size());
    part.vertices.push_back(v);
  }

  // Edge ownership: an edge belongs to the partition of its source.
  pg.edge_local_index_.resize(g.numEdges());
  for (VertexIndex v = 0; v < n; ++v) {
    auto& part = pg.partitions_[assignment[v]];
    for (const auto& oe : g.outEdges(v)) {
      pg.edge_local_index_[oe.edge] =
          static_cast<std::uint32_t>(part.edges.size());
      part.edges.push_back(oe.edge);
    }
  }

  // Weakly connected components per partition over local edges only.
  // Direction is ignored: weak connectivity (§II-C).
  UnionFind uf(n);
  for (EdgeIndex e = 0; e < g.numEdges(); ++e) {
    const VertexIndex src = g.edgeSrc(e);
    const VertexIndex dst = g.edgeDst(e);
    if (assignment[src] == assignment[dst]) {
      uf.unite(src, dst);
    }
  }

  // Group each partition's vertices by component root, build subgraphs
  // ordered largest-first, and assign globally sequential subgraph ids.
  pg.vertex_subgraph_.assign(n, kInvalidSubgraph);
  SubgraphId next_id = 0;
  for (auto& part : pg.partitions_) {
    std::vector<std::pair<std::uint32_t, VertexIndex>> rooted;
    rooted.reserve(part.vertices.size());
    for (const VertexIndex v : part.vertices) {
      rooted.emplace_back(uf.find(v), v);
    }
    std::sort(rooted.begin(), rooted.end());

    // Materialize components (contiguous runs of equal root).
    std::vector<Subgraph> components;
    std::size_t i = 0;
    while (i < rooted.size()) {
      std::size_t j = i;
      while (j < rooted.size() && rooted[j].first == rooted[i].first) {
        ++j;
      }
      Subgraph sg;
      sg.partition = part.id;
      sg.vertices.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        sg.vertices.push_back(rooted[k].second);
      }
      std::sort(sg.vertices.begin(), sg.vertices.end());
      components.push_back(std::move(sg));
      i = j;
    }
    // Largest-first, ties by first vertex for determinism. This is the
    // "one large subgraph dominates, long tail of small ones" ordering the
    // paper observes (§IV-E).
    std::sort(components.begin(), components.end(),
              [](const Subgraph& a, const Subgraph& b) {
                if (a.vertices.size() != b.vertices.size()) {
                  return a.vertices.size() > b.vertices.size();
                }
                return a.vertices.front() < b.vertices.front();
              });
    for (auto& sg : components) {
      sg.id = next_id++;
      for (const VertexIndex v : sg.vertices) {
        pg.vertex_subgraph_[v] = sg.id;
      }
    }
    part.subgraphs = std::move(components);
  }

  // Locator and remote edges (need vertex_subgraph_ complete first).
  pg.subgraph_locator_.resize(next_id);
  for (const auto& part : pg.partitions_) {
    for (std::uint32_t idx = 0; idx < part.subgraphs.size(); ++idx) {
      const auto& sg = part.subgraphs[idx];
      pg.subgraph_locator_[sg.id] = {part.id, idx};
    }
  }
  for (auto& part : pg.partitions_) {
    for (auto& sg : part.subgraphs) {
      for (const VertexIndex v : sg.vertices) {
        for (const auto& oe : g.outEdges(v)) {
          if (assignment[oe.dst] == part.id) {
            ++sg.num_local_edges;
          } else {
            sg.remote_edges.push_back(
                {v, oe.edge, oe.dst, assignment[oe.dst],
                 pg.vertex_subgraph_[oe.dst]});
          }
        }
      }
      std::sort(sg.remote_edges.begin(), sg.remote_edges.end(),
                [](const RemoteEdge& a, const RemoteEdge& b) {
                  return std::tie(a.src, a.edge) < std::tie(b.src, b.edge);
                });
    }
  }

  // Symmetric subgraph adjacency: a remote edge a→b makes a and b mutual
  // neighbors (weak connectivity at the meta-vertex level).
  {
    std::vector<std::vector<SubgraphId>> neighbors(next_id);
    for (const auto& part : pg.partitions_) {
      for (const auto& sg : part.subgraphs) {
        for (const auto& re : sg.remote_edges) {
          neighbors[sg.id].push_back(re.dst_subgraph);
          neighbors[re.dst_subgraph].push_back(sg.id);
        }
      }
    }
    for (auto& part : pg.partitions_) {
      for (auto& sg : part.subgraphs) {
        auto& list = neighbors[sg.id];
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
        sg.neighbor_subgraphs = std::move(list);
      }
    }
  }
  return pg;
}

SubgraphId PartitionedGraph::largestSubgraphOf(PartitionId p) const {
  TSG_CHECK(p < partitions_.size());
  TSG_CHECK_MSG(!partitions_[p].subgraphs.empty(),
                "partition has no subgraphs");
  // Subgraphs are ordered largest-first.
  return partitions_[p].subgraphs.front().id;
}

}  // namespace tsg
