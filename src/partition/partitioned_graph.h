// PartitionedGraph — a GraphTemplate distributed over k partitions and
// decomposed into subgraphs (§II-C).
//
// A subgraph is a maximal set of a partition's vertices weakly connected
// through local edges (both endpoints in the partition). Edges owned by a
// partition (source vertex inside) whose destination lies in another
// partition are "remote edges"; subgraph-centric programs message the
// destination subgraph across them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_template.h"
#include "graph/types.h"
#include "partition/partitioner.h"

namespace tsg {

// A remote (cut) edge from a vertex in this subgraph to a vertex owned by
// another partition. All indices are template indices.
struct RemoteEdge {
  VertexIndex src;
  EdgeIndex edge;
  VertexIndex dst;
  PartitionId dst_partition;
  SubgraphId dst_subgraph;
};

// One subgraph: topology references into the shared template.
class Subgraph {
 public:
  SubgraphId id = kInvalidSubgraph;
  PartitionId partition = kInvalidPartition;
  std::vector<VertexIndex> vertices;     // template indices, ascending
  std::vector<RemoteEdge> remote_edges;  // sorted by (src, edge)
  // Subgraphs connected to this one by a remote edge in EITHER direction
  // (sorted, unique) — the meta-vertex adjacency used by algorithms that
  // need symmetric propagation (e.g. weakly connected components).
  std::vector<SubgraphId> neighbor_subgraphs;
  std::uint64_t num_local_edges = 0;

  [[nodiscard]] std::size_t numVertices() const { return vertices.size(); }
};

// One partition: its vertices, owned edges and subgraphs.
class Partition {
 public:
  PartitionId id = kInvalidPartition;
  std::vector<VertexIndex> vertices;  // template indices, ascending
  std::vector<EdgeIndex> edges;       // owned edges, ascending
  std::vector<Subgraph> subgraphs;    // ordered by descending vertex count

  [[nodiscard]] std::size_t numVertices() const { return vertices.size(); }
  [[nodiscard]] std::size_t numEdges() const { return edges.size(); }
};

// The full decomposition. Provides O(1) lookups from template vertex/edge
// indices to their partition, subgraph, and partition-local dense index —
// the mappings instance loaders and algorithm contexts live on.
class PartitionedGraph {
 public:
  // Builds partitions and subgraphs from an assignment. The assignment must
  // cover every vertex with a partition id < num_partitions.
  static Result<PartitionedGraph> build(GraphTemplatePtr tmpl,
                                        const PartitionAssignment& assignment,
                                        std::uint32_t num_partitions);

  [[nodiscard]] const GraphTemplate& graphTemplate() const { return *tmpl_; }
  [[nodiscard]] const GraphTemplatePtr& templatePtr() const { return tmpl_; }

  [[nodiscard]] std::uint32_t numPartitions() const {
    return static_cast<std::uint32_t>(partitions_.size());
  }
  [[nodiscard]] const Partition& partition(PartitionId p) const {
    TSG_CHECK(p < partitions_.size());
    return partitions_[p];
  }
  [[nodiscard]] std::size_t numSubgraphs() const {
    return subgraph_locator_.size();
  }

  // --- vertex lookups (template vertex index -> placement) ---
  [[nodiscard]] PartitionId partitionOfVertex(VertexIndex v) const {
    TSG_CHECK(v < vertex_partition_.size());
    return vertex_partition_[v];
  }
  [[nodiscard]] SubgraphId subgraphOfVertex(VertexIndex v) const {
    TSG_CHECK(v < vertex_subgraph_.size());
    return vertex_subgraph_[v];
  }
  // Dense index of v within its partition's `vertices` list.
  [[nodiscard]] std::uint32_t localIndexOfVertex(VertexIndex v) const {
    TSG_CHECK(v < vertex_local_index_.size());
    return vertex_local_index_[v];
  }
  // Dense index of e within its owning partition's `edges` list.
  [[nodiscard]] std::uint32_t localIndexOfEdge(EdgeIndex e) const {
    TSG_CHECK(e < edge_local_index_.size());
    return edge_local_index_[e];
  }

  // --- subgraph lookups ---
  [[nodiscard]] const Subgraph& subgraph(SubgraphId sg) const {
    TSG_CHECK(sg < subgraph_locator_.size());
    const auto& loc = subgraph_locator_[sg];
    return partitions_[loc.partition].subgraphs[loc.index_in_partition];
  }
  [[nodiscard]] PartitionId partitionOfSubgraph(SubgraphId sg) const {
    TSG_CHECK(sg < subgraph_locator_.size());
    return subgraph_locator_[sg].partition;
  }
  // Position of subgraph sg within its partition's `subgraphs` list.
  [[nodiscard]] std::uint32_t subgraphIndexInPartition(SubgraphId sg) const {
    TSG_CHECK(sg < subgraph_locator_.size());
    return subgraph_locator_[sg].index_in_partition;
  }

  // The subgraph with the most vertices in partition p ("largest subgraph in
  // the 1st partition" plays master in the Hashtag Merge; §III-A).
  [[nodiscard]] SubgraphId largestSubgraphOf(PartitionId p) const;

  [[nodiscard]] const PartitionAssignment& assignment() const {
    return assignment_;
  }

 private:
  struct SubgraphLocator {
    PartitionId partition;
    std::uint32_t index_in_partition;
  };

  GraphTemplatePtr tmpl_;
  PartitionAssignment assignment_;
  std::vector<Partition> partitions_;
  std::vector<PartitionId> vertex_partition_;
  std::vector<SubgraphId> vertex_subgraph_;
  std::vector<std::uint32_t> vertex_local_index_;
  std::vector<std::uint32_t> edge_local_index_;
  std::vector<SubgraphLocator> subgraph_locator_;
};

}  // namespace tsg
