// Graph partitioners (the paper used METIS k-way; §IV-A).
//
// Three implementations with different quality/cost points:
//  * HashPartitioner — id-hash placement; worst-case edge cut, O(V).
//  * BfsPartitioner  — balanced multi-seed region growing; near-METIS cut on
//    road-like graphs (contiguous regions), the default for experiments.
//  * LdgPartitioner  — linear deterministic greedy streaming placement.
//
// An assignment maps every template vertex index to a partition id. Edges
// are owned by the partition of their source vertex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_template.h"
#include "graph/types.h"

namespace tsg {

using PartitionAssignment = std::vector<PartitionId>;

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // Partitions `tmpl` into `num_partitions` parts. Deterministic for a
  // given (graph, num_partitions, seed).
  [[nodiscard]] virtual PartitionAssignment assign(
      const GraphTemplate& tmpl, std::uint32_t num_partitions) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

// Places vertex v in partition hash(id(v)) % k.
class HashPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionAssignment assign(
      const GraphTemplate& tmpl, std::uint32_t num_partitions) const override;
  [[nodiscard]] std::string name() const override { return "hash"; }
};

// Balanced multi-seed BFS region growing. Seeds are spread with a
// farthest-point heuristic; partitions claim frontier vertices round-robin
// under a capacity cap of ceil(|V|/k * balance_factor); leftover vertices
// (disconnected remainders) go to the least-loaded partition.
class BfsPartitioner final : public Partitioner {
 public:
  explicit BfsPartitioner(std::uint64_t seed = 17, double balance_factor = 1.03)
      : seed_(seed), balance_factor_(balance_factor) {}

  [[nodiscard]] PartitionAssignment assign(
      const GraphTemplate& tmpl, std::uint32_t num_partitions) const override;
  [[nodiscard]] std::string name() const override { return "bfs"; }

 private:
  std::uint64_t seed_;
  double balance_factor_;
};

// Linear Deterministic Greedy (Stanton & Kliot): stream vertices in a
// seeded random order; place each where it has most already-placed
// neighbors, weighted by remaining capacity.
class LdgPartitioner final : public Partitioner {
 public:
  explicit LdgPartitioner(std::uint64_t seed = 17, double balance_factor = 1.03)
      : seed_(seed), balance_factor_(balance_factor) {}

  [[nodiscard]] PartitionAssignment assign(
      const GraphTemplate& tmpl, std::uint32_t num_partitions) const override;
  [[nodiscard]] std::string name() const override { return "ldg"; }

 private:
  std::uint64_t seed_;
  double balance_factor_;
};

// --- quality metrics (Table II) ---

struct PartitionMetrics {
  std::uint64_t num_edges = 0;
  std::uint64_t cut_edges = 0;       // directed edges crossing partitions
  double cut_fraction = 0.0;         // cut_edges / num_edges
  double balance = 0.0;              // max part size / ideal part size
  std::vector<std::uint64_t> part_sizes;
};

PartitionMetrics evaluatePartition(const GraphTemplate& tmpl,
                                   const PartitionAssignment& assignment,
                                   std::uint32_t num_partitions);

}  // namespace tsg
