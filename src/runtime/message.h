// Messages exchanged between subgraphs (and, in the vertex-centric baseline,
// between vertices). Payloads are opaque byte strings; programs encode and
// decode them with BinaryWriter/BinaryReader.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace tsg {

struct Message {
  SubgraphId src = kInvalidSubgraph;  // sender; kInvalidSubgraph = app input
  SubgraphId dst = kInvalidSubgraph;
  // Timestep the message was sent from. Set by the TI-BSP engine for
  // inter-timestep and merge messages (Merge interprets its inbox by origin
  // timestep; §III-A), -1 for intra-BSP and application-input messages.
  Timestep origin_timestep = -1;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t byteSize() const {
    return payload.size() + 2 * sizeof(SubgraphId);
  }
};

}  // namespace tsg
