// Messages exchanged between subgraphs (and, in the vertex-centric baseline,
// between vertices). Payloads are opaque byte strings; programs encode and
// decode them with BinaryWriter/BinaryReader.
#pragma once

#include <cstdint>

#include "graph/types.h"
#include "runtime/payload_buffer.h"

namespace tsg {

// Wire-size of the fixed message header: src, dst and origin_timestep all
// travel with every message (the TI-BSP Merge phase keys on the timestep, so
// it is part of the header, not an optional extra).
inline constexpr std::size_t kMessageHeaderBytes =
    2 * sizeof(SubgraphId) + sizeof(Timestep);

struct Message {
  SubgraphId src = kInvalidSubgraph;  // sender; kInvalidSubgraph = app input
  SubgraphId dst = kInvalidSubgraph;
  // Timestep the message was sent from. Set by the TI-BSP engine for
  // inter-timestep and merge messages (Merge interprets its inbox by origin
  // timestep; §III-A), -1 for intra-BSP and application-input messages.
  Timestep origin_timestep = -1;
  PayloadBuffer payload;

  [[nodiscard]] std::size_t byteSize() const {
    return payload.size() + kMessageHeaderBytes;
  }
};

}  // namespace tsg
