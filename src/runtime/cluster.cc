#include "runtime/cluster.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/perturb.h"
#include "common/prof_hooks.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "runtime/fault_injector.h"

namespace tsg {

namespace {

// Determinism-harness hook: stagger this worker's schedule by a seeded,
// per-(round, partition) delay. Off = one relaxed load + branch.
void perturbPoint(std::uint64_t round, PartitionId p, std::uint64_t salt) {
  if (check::perturbEnabled()) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(check::perturbDelayNs(round, p, salt)));
  }
}

}  // namespace

Cluster::Cluster(std::uint32_t num_partitions)
    : start_ns_(num_partitions, 0),
      end_ns_(num_partitions, 0),
      cpu_busy_ns_(num_partitions, 0),
      timings_(num_partitions),
      m_rounds_(MetricsRegistry::global().counter("cluster.rounds")),
      m_barrier_wait_ns_(
          MetricsRegistry::global().counter("cluster.barrier_wait_ns")),
      m_respawns_(MetricsRegistry::global().counter("cluster.respawns")) {
  TSG_CHECK(num_partitions > 0);
  dead_.assign(num_partitions, 0);
  workers_.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    workers_.emplace_back([this, p] { workerLoop(p, /*start_round=*/0); });
  }
}

Cluster::~Cluster() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  round_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

const std::vector<Cluster::RoundTiming>& Cluster::run(
    const std::function<void(PartitionId)>& job) {
  TraceSpan span("cluster", "cluster.round");
  {
    std::unique_lock lock(mutex_);
    TSG_CHECK_MSG(remaining_ == 0, "run() re-entered mid-round");
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      TSG_CHECK_MSG(dead_[p] == 0,
                    "run() with a dead worker — call respawnDead() first");
    }
    job_ = &job;
    remaining_ = static_cast<std::uint32_t>(workers_.size());
    ++round_;
    round_start_.notify_all();
    round_done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }
  // All end_ns_ are final now; the slowest worker defines the barrier time.
  const std::int64_t round_end =
      *std::max_element(end_ns_.begin(), end_ns_.end());
  std::int64_t sync_total = 0;
  for (PartitionId p = 0; p < timings_.size(); ++p) {
    timings_[p].busy_ns = cpu_busy_ns_[p];
    timings_[p].sync_ns = round_end - end_ns_[p];
    sync_total += timings_[p].sync_ns;
  }
  m_rounds_.increment();
  m_barrier_wait_ns_.add(static_cast<std::uint64_t>(sync_total));
  if (prof::armed()) [[unlikely]] {
    // The last finisher is the round's straggler: every other partition's
    // barrier wait this round traces back to it.
    const PartitionId straggler = static_cast<PartitionId>(
        std::max_element(end_ns_.begin(), end_ns_.end()) - end_ns_.begin());
    prof::hooks().wait_caused(straggler, sync_total);
  }
  return timings_;
}

bool Cluster::hasFaults() {
  std::lock_guard lock(mutex_);
  return !faults_.empty();
}

std::vector<Cluster::FaultRecord> Cluster::takeFaults() {
  std::lock_guard lock(mutex_);
  return std::exchange(faults_, {});
}

std::uint32_t Cluster::respawnDead() {
  std::uint32_t respawned = 0;
  std::uint64_t resume_round = 0;
  std::vector<PartitionId> to_spawn;
  {
    std::lock_guard lock(mutex_);
    TSG_CHECK_MSG(remaining_ == 0, "respawnDead() mid-round");
    resume_round = round_;
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      if (dead_[p] != 0) {
        to_spawn.push_back(p);
      }
    }
  }
  for (const PartitionId p : to_spawn) {
    // The dead thread already exited its loop; join reclaims it, then a
    // fresh thread takes over the partition from the current round.
    workers_[p].join();
    workers_[p] = std::thread(
        [this, p, resume_round] { workerLoop(p, resume_round); });
    ++respawned;
    m_respawns_.increment();
  }
  if (respawned > 0) {
    std::lock_guard lock(mutex_);
    for (const PartitionId p : to_spawn) {
      dead_[p] = 0;
    }
  }
  return respawned;
}

std::uint32_t Cluster::aliveWorkers() {
  std::lock_guard lock(mutex_);
  std::uint32_t alive = 0;
  for (const std::uint8_t d : dead_) {
    alive += d == 0 ? 1 : 0;
  }
  return alive;
}

AsyncCluster::AsyncCluster(std::uint32_t num_partitions)
    : deques_(num_partitions),
      end_ns_(num_partitions, 0),
      cpu_busy_ns_(num_partitions, 0),
      timings_(num_partitions),
      m_waves_(MetricsRegistry::global().counter("cluster.waves")),
      m_steals_(MetricsRegistry::global().counter("cluster.steals")),
      m_ready_wait_ns_(
          MetricsRegistry::global().counter("engine.ready_wait_ns")),
      m_respawns_(MetricsRegistry::global().counter("cluster.respawns")),
      g_ready_depth_(
          MetricsRegistry::global().gauge("cluster.ready_queue_depth")) {
  TSG_CHECK(num_partitions > 0);
  dead_.assign(num_partitions, 0);
  g_worker_depth_.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    g_worker_depth_.push_back(&MetricsRegistry::global().gauge(
        "cluster.worker_queue_depth", static_cast<std::int32_t>(p)));
  }
  workers_.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    workers_.emplace_back([this, p] { workerLoop(p, /*start_round=*/0); });
  }
}

AsyncCluster::~AsyncCluster() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void AsyncCluster::updateReadyDepthLocked() {
  g_ready_depth_.set(static_cast<std::int64_t>(queued_) +
                     static_cast<std::int64_t>(executing_));
}

void AsyncCluster::pushTasksLocked(const std::vector<PartitionId>& parts,
                                   std::int32_t wave) {
  const std::int64_t now = steadyNowNs();
  for (const PartitionId p : parts) {
    TSG_CHECK(static_cast<std::size_t>(p) < deques_.size());
    deques_[static_cast<std::size_t>(p)].pushBottom(Task{p, wave, now});
    g_worker_depth_[static_cast<std::size_t>(p)]->set(
        static_cast<std::int64_t>(deques_[static_cast<std::size_t>(p)].size()));
  }
  queued_ += static_cast<std::uint32_t>(parts.size());
  outstanding_ += static_cast<std::uint32_t>(parts.size());
  updateReadyDepthLocked();
  // Work is now queued; if nobody is executing, the idle clock starts
  // ticking until the first pickup.
  if (executing_ == 0 && idle_since_ns_ < 0) {
    idle_since_ns_ = now;
  }
}

bool AsyncCluster::popTaskLocked(PartitionId w, Task* out) {
  const std::size_t k = deques_.size();
  // Own deque first (LIFO, cache-warm), then steal oldest from peers.
  if (auto t = deques_[static_cast<std::size_t>(w)].popBottom()) {
    *out = *t;
    --queued_;
    g_worker_depth_[static_cast<std::size_t>(w)]->set(
        static_cast<std::int64_t>(deques_[static_cast<std::size_t>(w)].size()));
    return true;
  }
  for (std::size_t v = 1; v < k; ++v) {
    const std::size_t victim = (static_cast<std::size_t>(w) + v) % k;
    if (auto t = deques_[victim].stealTop()) {
      *out = *t;
      --queued_;
      g_worker_depth_[victim]->set(
          static_cast<std::int64_t>(deques_[victim].size()));
      return true;
    }
  }
  return false;
}

void AsyncCluster::runWaves(Driver& driver,
                            const std::vector<PartitionId>& initial,
                            std::int32_t first_wave) {
  TraceSpan span("cluster", "cluster.wave_phase");
  TSG_CHECK(!initial.empty());
  std::string detail;
  bool failed = false;
  {
    std::unique_lock lock(mutex_);
    TSG_CHECK_MSG(mode_ == Mode::kIdle && outstanding_ == 0,
                  "runWaves() re-entered mid-phase");
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      TSG_CHECK_MSG(dead_[p] == 0,
                    "runWaves() with a dead worker — respawnDead() first");
    }
    driver_ = &driver;
    mode_ = Mode::kWaves;
    wave_ = first_wave;
    phase_done_ = false;
    abort_ = false;
    abort_detail_.clear();
    executing_ = 0;
    idle_since_ns_ = -1;
    pushTasksLocked(initial, first_wave);
    work_available_.notify_all();
    phase_done_cv_.wait(lock, [this] { return phase_done_; });
    mode_ = Mode::kIdle;
    driver_ = nullptr;
    failed = abort_ || !faults_.empty();
    detail = abort_detail_;
    // Drain the death records now (dead_ stays set for respawnDead): a
    // stale record must not fail the rerun after the engine recovers.
    for (auto& f : std::exchange(faults_, {})) {
      if (!detail.empty()) {
        detail += "; ";
      }
      detail += std::move(f.detail);
    }
  }
  if (failed) {
    throw fault::RecoveryNeeded(detail.empty() ? "worker died during wave"
                                               : detail);
  }
}

const std::vector<Cluster::RoundTiming>& AsyncCluster::runAll(
    const std::function<void(PartitionId)>& job) {
  TraceSpan span("cluster", "cluster.round");
  {
    std::unique_lock lock(mutex_);
    TSG_CHECK_MSG(mode_ == Mode::kIdle && outstanding_ == 0,
                  "runAll() re-entered mid-phase");
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      TSG_CHECK_MSG(dead_[p] == 0,
                    "runAll() with a dead worker — respawnDead() first");
    }
    job_ = &job;
    mode_ = Mode::kAll;
    all_remaining_ = static_cast<std::uint32_t>(workers_.size());
    ++round_;
    work_available_.notify_all();
    phase_done_cv_.wait(lock, [this] { return all_remaining_ == 0; });
    mode_ = Mode::kIdle;
    job_ = nullptr;
  }
  const std::int64_t round_end =
      *std::max_element(end_ns_.begin(), end_ns_.end());
  std::int64_t sync_total = 0;
  for (PartitionId p = 0; p < timings_.size(); ++p) {
    timings_[p].busy_ns = cpu_busy_ns_[p];
    timings_[p].sync_ns = round_end - end_ns_[p];
    sync_total += timings_[p].sync_ns;
  }
  if (prof::armed()) [[unlikely]] {
    const PartitionId straggler = static_cast<PartitionId>(
        std::max_element(end_ns_.begin(), end_ns_.end()) - end_ns_.begin());
    prof::hooks().wait_caused(straggler, sync_total);
  }
  return timings_;
}

bool AsyncCluster::hasFaults() {
  std::lock_guard lock(mutex_);
  return !faults_.empty();
}

std::vector<AsyncCluster::FaultRecord> AsyncCluster::takeFaults() {
  std::lock_guard lock(mutex_);
  return std::exchange(faults_, {});
}

std::uint32_t AsyncCluster::respawnDead() {
  std::uint32_t respawned = 0;
  std::uint64_t resume_round = 0;
  std::vector<PartitionId> to_spawn;
  {
    std::lock_guard lock(mutex_);
    TSG_CHECK_MSG(mode_ == Mode::kIdle, "respawnDead() mid-phase");
    resume_round = round_;
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      if (dead_[p] != 0) {
        to_spawn.push_back(p);
      }
    }
  }
  for (const PartitionId p : to_spawn) {
    workers_[p].join();
    workers_[p] =
        std::thread([this, p, resume_round] { workerLoop(p, resume_round); });
    ++respawned;
    m_respawns_.increment();
  }
  if (respawned > 0) {
    std::lock_guard lock(mutex_);
    for (const PartitionId p : to_spawn) {
      dead_[p] = 0;
    }
  }
  return respawned;
}

std::uint32_t AsyncCluster::aliveWorkers() {
  std::lock_guard lock(mutex_);
  std::uint32_t alive = 0;
  for (const std::uint8_t d : dead_) {
    alive += d == 0 ? 1 : 0;
  }
  return alive;
}

void AsyncCluster::workerLoop(PartitionId p, std::uint64_t start_round) {
  Tracer::setCurrentThreadName("partition-" + std::to_string(p));
  std::uint64_t seen_round = start_round;
  while (true) {
    std::unique_lock lock(mutex_);
    work_available_.wait(lock, [&] {
      return shutting_down_ || (mode_ == Mode::kWaves && queued_ > 0) ||
             (mode_ == Mode::kAll && round_ != seen_round);
    });
    if (shutting_down_) {
      return;
    }
    if (mode_ == Mode::kAll && round_ != seen_round) {
      seen_round = round_;
      const std::function<void(PartitionId)>* job = job_;
      lock.unlock();
      perturbPoint(seen_round, p, /*salt=*/0);
      const std::int64_t cpu_start = threadCpuNowNs();
      bool died = false;
      std::string fault_detail;
      {
        TraceSpan job_span("cluster", "cluster.job", "partition", p);
        try {
          (*job)(p);
        } catch (const fault::WorkerFault& f) {
          died = true;
          fault_detail = f.what();
        }
      }
      cpu_busy_ns_[p] = threadCpuNowNs() - cpu_start;
      end_ns_[p] = steadyNowNs();
      perturbPoint(seen_round, p, /*salt=*/1);
      lock.lock();
      if (died) {
        dead_[p] = 1;
        faults_.push_back(FaultRecord{p, std::move(fault_detail)});
      }
      if (--all_remaining_ == 0) {
        phase_done_cv_.notify_all();
      }
      if (died) {
        return;
      }
      continue;
    }
    // Wave mode: pick up a task (own deque first, then steal).
    Task task;
    if (!popTaskLocked(p, &task)) {
      continue;  // raced another worker to the last queued task
    }
    const std::int64_t picked = steadyNowNs();
    TaskInfo info;
    info.wave = task.wave;
    // Charge only spans where ready work sat with nobody executing. Time
    // covered by workers chewing through earlier tasks is utilization, not
    // wait — the whole point of the schedule is converting barrier idling
    // into stolen work.
    if (idle_since_ns_ >= 0) {
      info.ready_wait_ns = picked - std::max(task.push_ns, idle_since_ns_);
      idle_since_ns_ = -1;
    }
    info.stolen = task.partition != p;
    ++executing_;
    Driver* driver = driver_;
    lock.unlock();
    m_ready_wait_ns_.add(static_cast<std::uint64_t>(
        info.ready_wait_ns > 0 ? info.ready_wait_ns : 0));
    if (info.stolen) {
      m_steals_.increment();
    }
    if (prof::armed()) [[unlikely]] {
      // The task that ends an all-idle gap left the scheduler starved for
      // that long; a steal marks its home partition as overloaded.
      if (info.ready_wait_ns > 0) {
        prof::hooks().wait_caused(task.partition, info.ready_wait_ns);
      }
      if (info.stolen) {
        prof::hooks().steal_victim(task.partition);
      }
    }
    perturbPoint(static_cast<std::uint64_t>(task.wave), task.partition,
                 /*salt=*/0);
    bool died = false;
    bool recover = false;
    std::string fault_detail;
    {
      TraceSpan job_span("cluster", "cluster.wave_task", "partition",
                         task.partition);
      try {
        driver->runTask(task.partition, info);
      } catch (const fault::WorkerFault& f) {
        died = true;
        fault_detail = f.what();
      } catch (const fault::RecoveryNeeded& f) {
        recover = true;
        fault_detail = f.what();
      }
    }
    perturbPoint(static_cast<std::uint64_t>(task.wave), task.partition,
                 /*salt=*/1);
    lock.lock();
    --executing_;
    updateReadyDepthLocked();
    if (queued_ > 0 && executing_ == 0 && idle_since_ns_ < 0) {
      idle_since_ns_ = steadyNowNs();
    }
    if (died || recover) {
      if (died) {
        dead_[p] = 1;
        faults_.push_back(FaultRecord{task.partition, std::move(fault_detail)});
      }
      abort_ = true;
      if (recover && abort_detail_.empty()) {
        abort_detail_ = std::move(fault_detail);
      }
      // Discard queued work; in-flight tasks drain, then the phase ends.
      for (std::size_t d = 0; d < deques_.size(); ++d) {
        while (deques_[d].popBottom()) {
          --outstanding_;
        }
        g_worker_depth_[d]->set(0);
      }
      queued_ = 0;
      updateReadyDepthLocked();
      idle_since_ns_ = -1;
    }
    if (--outstanding_ == 0) {
      if (abort_) {
        phase_done_ = true;
        phase_done_cv_.notify_all();
      } else {
        // Last finisher seals the wave: delivery + termination check run
        // exclusively (no task in flight), outside the lock.
        const std::int32_t sealed_wave = wave_;
        Driver* sealer = driver_;
        lock.unlock();
        m_waves_.increment();
        std::vector<PartitionId> next;
        bool seal_failed = false;
        std::string seal_detail;
        try {
          next = sealer->sealWave(sealed_wave);
        } catch (const fault::RecoveryNeeded& f) {
          seal_failed = true;
          seal_detail = f.what();
        }
        lock.lock();
        if (seal_failed) {
          abort_ = true;
          abort_detail_ = seal_detail;
          phase_done_ = true;
          phase_done_cv_.notify_all();
        } else if (next.empty()) {
          phase_done_ = true;
          phase_done_cv_.notify_all();
        } else {
          wave_ = sealed_wave + 1;
          pushTasksLocked(next, wave_);
          work_available_.notify_all();
        }
      }
    }
    if (died) {
      return;
    }
  }
}

void Cluster::workerLoop(PartitionId p, std::uint64_t start_round) {
  Tracer::setCurrentThreadName("partition-" + std::to_string(p));
  std::uint64_t seen_round = start_round;
  while (true) {
    const std::function<void(PartitionId)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      round_start_.wait(lock, [&] {
        return shutting_down_ || round_ != seen_round;
      });
      if (shutting_down_) {
        return;
      }
      seen_round = round_;
      job = job_;
    }
    // Perturb the release from the round barrier (before timing starts) and
    // the arrival back at it (after timing ends): under the determinism
    // harness every run sees a different worker interleaving.
    perturbPoint(seen_round, p, /*salt=*/0);
    // Busy = CPU time (workers share cores; wall time would charge a worker
    // for time spent descheduled while peers ran). End timestamps stay on
    // the wall clock for barrier-wait (sync) computation.
    start_ns_[p] = steadyNowNs();
    const std::int64_t cpu_start = threadCpuNowNs();
    bool died = false;
    std::string fault_detail;
    {
      TraceSpan job_span("cluster", "cluster.job", "partition", p);
      try {
        (*job)(p);
      } catch (const fault::WorkerFault& f) {
        died = true;
        fault_detail = f.what();
      }
    }
    cpu_busy_ns_[p] = threadCpuNowNs() - cpu_start;
    end_ns_[p] = steadyNowNs();
    perturbPoint(seen_round, p, /*salt=*/1);
    {
      std::lock_guard lock(mutex_);
      if (died) {
        dead_[p] = 1;
        faults_.push_back(FaultRecord{p, std::move(fault_detail)});
      }
      if (--remaining_ == 0) {
        round_done_.notify_all();
      }
    }
    if (died) {
      // The worker is gone until respawnDead(); the thread exits so the
      // failure is a real thread death, not a flagged skip.
      return;
    }
  }
}

}  // namespace tsg
