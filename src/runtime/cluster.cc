#include "runtime/cluster.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "check/perturb.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "runtime/fault_injector.h"

namespace tsg {

namespace {

// Determinism-harness hook: stagger this worker's schedule by a seeded,
// per-(round, partition) delay. Off = one relaxed load + branch.
void perturbPoint(std::uint64_t round, PartitionId p, std::uint64_t salt) {
  if (check::perturbEnabled()) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(check::perturbDelayNs(round, p, salt)));
  }
}

}  // namespace

Cluster::Cluster(std::uint32_t num_partitions)
    : start_ns_(num_partitions, 0),
      end_ns_(num_partitions, 0),
      cpu_busy_ns_(num_partitions, 0),
      timings_(num_partitions),
      m_rounds_(MetricsRegistry::global().counter("cluster.rounds")),
      m_barrier_wait_ns_(
          MetricsRegistry::global().counter("cluster.barrier_wait_ns")),
      m_respawns_(MetricsRegistry::global().counter("cluster.respawns")) {
  TSG_CHECK(num_partitions > 0);
  dead_.assign(num_partitions, 0);
  workers_.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    workers_.emplace_back([this, p] { workerLoop(p, /*start_round=*/0); });
  }
}

Cluster::~Cluster() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  round_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

const std::vector<Cluster::RoundTiming>& Cluster::run(
    const std::function<void(PartitionId)>& job) {
  TraceSpan span("cluster", "cluster.round");
  {
    std::unique_lock lock(mutex_);
    TSG_CHECK_MSG(remaining_ == 0, "run() re-entered mid-round");
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      TSG_CHECK_MSG(dead_[p] == 0,
                    "run() with a dead worker — call respawnDead() first");
    }
    job_ = &job;
    remaining_ = static_cast<std::uint32_t>(workers_.size());
    ++round_;
    round_start_.notify_all();
    round_done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }
  // All end_ns_ are final now; the slowest worker defines the barrier time.
  const std::int64_t round_end =
      *std::max_element(end_ns_.begin(), end_ns_.end());
  std::int64_t sync_total = 0;
  for (PartitionId p = 0; p < timings_.size(); ++p) {
    timings_[p].busy_ns = cpu_busy_ns_[p];
    timings_[p].sync_ns = round_end - end_ns_[p];
    sync_total += timings_[p].sync_ns;
  }
  m_rounds_.increment();
  m_barrier_wait_ns_.add(static_cast<std::uint64_t>(sync_total));
  return timings_;
}

bool Cluster::hasFaults() {
  std::lock_guard lock(mutex_);
  return !faults_.empty();
}

std::vector<Cluster::FaultRecord> Cluster::takeFaults() {
  std::lock_guard lock(mutex_);
  return std::exchange(faults_, {});
}

std::uint32_t Cluster::respawnDead() {
  std::uint32_t respawned = 0;
  std::uint64_t resume_round = 0;
  std::vector<PartitionId> to_spawn;
  {
    std::lock_guard lock(mutex_);
    TSG_CHECK_MSG(remaining_ == 0, "respawnDead() mid-round");
    resume_round = round_;
    for (PartitionId p = 0; p < dead_.size(); ++p) {
      if (dead_[p] != 0) {
        to_spawn.push_back(p);
      }
    }
  }
  for (const PartitionId p : to_spawn) {
    // The dead thread already exited its loop; join reclaims it, then a
    // fresh thread takes over the partition from the current round.
    workers_[p].join();
    workers_[p] = std::thread(
        [this, p, resume_round] { workerLoop(p, resume_round); });
    ++respawned;
    m_respawns_.increment();
  }
  if (respawned > 0) {
    std::lock_guard lock(mutex_);
    for (const PartitionId p : to_spawn) {
      dead_[p] = 0;
    }
  }
  return respawned;
}

std::uint32_t Cluster::aliveWorkers() {
  std::lock_guard lock(mutex_);
  std::uint32_t alive = 0;
  for (const std::uint8_t d : dead_) {
    alive += d == 0 ? 1 : 0;
  }
  return alive;
}

void Cluster::workerLoop(PartitionId p, std::uint64_t start_round) {
  Tracer::setCurrentThreadName("partition-" + std::to_string(p));
  std::uint64_t seen_round = start_round;
  while (true) {
    const std::function<void(PartitionId)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      round_start_.wait(lock, [&] {
        return shutting_down_ || round_ != seen_round;
      });
      if (shutting_down_) {
        return;
      }
      seen_round = round_;
      job = job_;
    }
    // Perturb the release from the round barrier (before timing starts) and
    // the arrival back at it (after timing ends): under the determinism
    // harness every run sees a different worker interleaving.
    perturbPoint(seen_round, p, /*salt=*/0);
    // Busy = CPU time (workers share cores; wall time would charge a worker
    // for time spent descheduled while peers ran). End timestamps stay on
    // the wall clock for barrier-wait (sync) computation.
    start_ns_[p] = steadyNowNs();
    const std::int64_t cpu_start = threadCpuNowNs();
    bool died = false;
    std::string fault_detail;
    {
      TraceSpan job_span("cluster", "cluster.job", "partition", p);
      try {
        (*job)(p);
      } catch (const fault::WorkerFault& f) {
        died = true;
        fault_detail = f.what();
      }
    }
    cpu_busy_ns_[p] = threadCpuNowNs() - cpu_start;
    end_ns_[p] = steadyNowNs();
    perturbPoint(seen_round, p, /*salt=*/1);
    {
      std::lock_guard lock(mutex_);
      if (died) {
        dead_[p] = 1;
        faults_.push_back(FaultRecord{p, std::move(fault_detail)});
      }
      if (--remaining_ == 0) {
        round_done_.notify_all();
      }
    }
    if (died) {
      // The worker is gone until respawnDead(); the thread exits so the
      // failure is a real thread death, not a flagged skip.
      return;
    }
  }
}

}  // namespace tsg
