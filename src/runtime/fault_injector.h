// Fault injection — the controlled failure source for recovery testing.
//
// A FaultInjector holds a plan of FaultSpecs, armed from code, the
// `--inject=` CLI flag or the TSG_INJECT environment variable. Each spec
// names a site (where in the TI-BSP round structure the fault strikes), an
// action (what goes wrong), and optional partition / timestep filters plus a
// fire budget. Instrumented sites ask `fire()` whether a planned fault
// matches the current (site, partition, timestep) point; a match consumes
// one fire from the spec's budget.
//
// Cost model mirrors trace/check: when no plan is armed (the production
// default) every instrumented site is one relaxed atomic load and a branch.
//
// Actions by site:
//   compute     kill (worker dies mid-superstep), delay (straggler sleep)
//   barrier     kill (worker dies after compute, before the barrier)
//   deliver     kill, drop (batch lost in flight), delay (slow fabric)
//   slice-load  kill (worker dies loading its instance), fail (transient
//               GoFS read error — the provider retries with backoff)
//
// `kill` and `drop` surface as WorkerFault / RecoveryNeeded and exercise
// the checkpoint-rollback path; `delay` and `fail` are transient and must
// be absorbed without recovery.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/types.h"

namespace tsg {
namespace fault {

enum class Site : std::uint8_t { kCompute, kBarrier, kDeliver, kSliceLoad };
enum class Action : std::uint8_t { kKill, kDrop, kDelay, kFailLoad };

// Stable lowercase names ("compute", "slice-load", "kill", ...).
std::string_view siteName(Site site);
std::string_view actionName(Action action);

// One planned fault. Default-constructed filters are wildcards: any
// partition, any timestep, firing once.
struct FaultSpec {
  Site site = Site::kCompute;
  Action action = Action::kKill;
  PartitionId partition = kInvalidPartition;  // kInvalidPartition = any
  Timestep timestep = -1;                     // -1 = any
  std::int32_t fires = 1;                     // remaining fire budget
  std::int64_t delay_us = 2000;               // for kDelay
};

// Thrown out of a worker job when a kill fault fires. Cluster::workerLoop
// catches it, records the death and lets the thread exit; the coordinator
// then raises RecoveryNeeded.
class WorkerFault : public std::exception {
 public:
  WorkerFault(PartitionId partition, Timestep timestep, Site site);

  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }
  [[nodiscard]] PartitionId partition() const { return partition_; }
  [[nodiscard]] Timestep timestep() const { return timestep_; }
  [[nodiscard]] Site site() const { return site_; }

 private:
  PartitionId partition_;
  Timestep timestep_;
  Site site_;
  std::string what_;
};

// Raised coordinator-side when the current timestep cannot complete (a
// worker died, or a delivery batch was dropped). Engines catch it, roll all
// partitions back to the last checkpoint and re-run.
class RecoveryNeeded : public std::exception {
 public:
  explicit RecoveryNeeded(std::string detail) : what_(std::move(detail)) {}

  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }

 private:
  std::string what_;
};

class FaultInjector {
 public:
  // The process-wide injector (one per simulated cluster).
  static FaultInjector& global();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // True while any spec still has fire budget. The one-branch gate every
  // instrumented site checks first.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);  // tsg:mo(gate read; sites take mutex_ before acting)
  }

  // Installs a plan, replacing any previous one. The seed drives delay
  // jitter so a given plan misbehaves identically run to run.
  void arm(std::vector<FaultSpec> plan, std::uint64_t seed = 42);
  void disarm();

  // Consumes and returns the first armed spec matching (site, partition,
  // timestep) — and, when `filter` is set, that exact action. Call sites
  // that handle only one action pass the filter so a co-located site with a
  // different action (e.g. slice-load kill vs slice-load fail) is not
  // swallowed by the wrong hook.
  std::optional<FaultSpec> fire(Site site, PartitionId partition,
                                Timestep timestep,
                                std::optional<Action> filter = std::nullopt);

  // Total faults fired since the last arm().
  [[nodiscard]] std::uint64_t totalFired() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::vector<FaultSpec> plan_;
  std::uint64_t fired_ = 0;
  std::optional<Rng> rng_;
};

// Parses a comma-separated fault plan, e.g.
//   "kill@compute:p1:t2"            kill partition 1's worker in timestep 2
//   "drop@deliver:t1"               drop one delivery batch in timestep 1
//   "fail@slice-load:p0:t1:x2"      fail partition 0's slice load twice
//   "delay@deliver:d5000"           delay one delivery by 5000 us
// Segments after action@site are order-free: pN (partition), tN (timestep),
// xN (fire budget), dN (delay microseconds).
Result<std::vector<FaultSpec>> parseFaultPlan(const std::string& text);

// Arms the global injector from TSG_INJECT (and TSG_INJECT_SEED) if set.
// Returns true when a plan was armed; aborts on a malformed plan so a typo
// never silently runs fault-free.
bool armFromEnv();

}  // namespace fault
}  // namespace tsg
