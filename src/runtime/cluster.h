// Cluster — the simulated distributed substrate.
//
// One long-lived worker thread per partition stands in for the paper's one
// EC2 VM per partition. The coordinator drives rounds: run(job) executes
// job(p) on every worker concurrently and blocks until all finish, like a
// BSP compute phase ending at a barrier.
//
// Per round and per partition the cluster records busy time and barrier
// (sync) wait — the raw series behind Fig. 7b/7d's compute / sync split.
//
// Fault model: a job that throws fault::WorkerFault kills its worker — the
// thread records the death and exits, the round still completes (the
// barrier never hangs). The coordinator observes the casualty via
// hasFaults(), rolls back, and calls respawnDead() before the next round.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "graph/types.h"

namespace tsg {

class Cluster {
 public:
  explicit Cluster(std::uint32_t num_partitions);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  struct RoundTiming {
    std::int64_t busy_ns = 0;  // CPU time consumed by job(p)
    std::int64_t sync_ns = 0;  // own finish -> slowest worker's finish (wall)
  };

  // Runs job(p) on every partition worker; blocks until the round ends.
  // The returned reference is valid until the next run() call. All workers
  // must be alive (respawnDead() after a fault).
  const std::vector<RoundTiming>& run(
      const std::function<void(PartitionId)>& job);

  [[nodiscard]] std::uint32_t numPartitions() const {
    return static_cast<std::uint32_t>(timings_.size());
  }

  // One worker death, as observed at the round barrier.
  struct FaultRecord {
    PartitionId partition = kInvalidPartition;
    std::string detail;
  };

  // True if any worker died during the last round.
  [[nodiscard]] bool hasFaults();
  // Drains the recorded deaths (oldest first).
  std::vector<FaultRecord> takeFaults();
  // Joins every dead worker thread and spawns a replacement; returns how
  // many were respawned. Must be called between rounds.
  std::uint32_t respawnDead();
  // Number of workers currently alive (for tests).
  [[nodiscard]] std::uint32_t aliveWorkers();

 private:
  void workerLoop(PartitionId p, std::uint64_t start_round);

  std::mutex mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  const std::function<void(PartitionId)>* job_ = nullptr;
  std::uint64_t round_ = 0;
  std::uint32_t remaining_ = 0;
  bool shutting_down_ = false;
  std::vector<std::uint8_t> dead_;        // guarded by mutex_
  std::vector<FaultRecord> faults_;       // guarded by mutex_

  std::vector<std::int64_t> start_ns_;
  std::vector<std::int64_t> end_ns_;
  std::vector<std::int64_t> cpu_busy_ns_;
  std::vector<RoundTiming> timings_;
  // Cached handles: run() executes once per superstep, so it bumps the
  // cells directly instead of re-doing the registry name lookup.
  MetricsRegistry::Counter& m_rounds_;
  MetricsRegistry::Counter& m_barrier_wait_ns_;
  MetricsRegistry::Counter& m_respawns_;
  std::vector<std::thread> workers_;
};

}  // namespace tsg
