// Cluster — the simulated distributed substrate.
//
// One long-lived worker thread per partition stands in for the paper's one
// EC2 VM per partition. The coordinator drives rounds: run(job) executes
// job(p) on every worker concurrently and blocks until all finish, like a
// BSP compute phase ending at a barrier.
//
// Per round and per partition the cluster records busy time and barrier
// (sync) wait — the raw series behind Fig. 7b/7d's compute / sync split.
//
// Fault model: a job that throws fault::WorkerFault kills its worker — the
// thread records the death and exits, the round still completes (the
// barrier never hangs). The coordinator observes the casualty via
// hasFaults(), rolls back, and calls respawnDead() before the next round.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "graph/types.h"

namespace tsg {

class Cluster {
 public:
  explicit Cluster(std::uint32_t num_partitions);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  struct RoundTiming {
    std::int64_t busy_ns = 0;  // CPU time consumed by job(p)
    std::int64_t sync_ns = 0;  // own finish -> slowest worker's finish (wall)
  };

  // Runs job(p) on every partition worker; blocks until the round ends.
  // The returned reference is valid until the next run() call. All workers
  // must be alive (respawnDead() after a fault).
  const std::vector<RoundTiming>& run(
      const std::function<void(PartitionId)>& job);

  [[nodiscard]] std::uint32_t numPartitions() const {
    return static_cast<std::uint32_t>(timings_.size());
  }

  // One worker death, as observed at the round barrier.
  struct FaultRecord {
    PartitionId partition = kInvalidPartition;
    std::string detail;
  };

  // True if any worker died during the last round.
  [[nodiscard]] bool hasFaults();
  // Drains the recorded deaths (oldest first).
  std::vector<FaultRecord> takeFaults();
  // Joins every dead worker thread and spawns a replacement; returns how
  // many were respawned. Must be called between rounds.
  std::uint32_t respawnDead();
  // Number of workers currently alive (for tests).
  [[nodiscard]] std::uint32_t aliveWorkers();

 private:
  void workerLoop(PartitionId p, std::uint64_t start_round);

  std::mutex mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  const std::function<void(PartitionId)>* job_ = nullptr;
  std::uint64_t round_ = 0;
  std::uint32_t remaining_ = 0;
  bool shutting_down_ = false;
  std::vector<std::uint8_t> dead_;        // guarded by mutex_
  std::vector<FaultRecord> faults_;       // guarded by mutex_

  std::vector<std::int64_t> start_ns_;
  std::vector<std::int64_t> end_ns_;
  std::vector<std::int64_t> cpu_busy_ns_;
  std::vector<RoundTiming> timings_;
  // Cached handles: run() executes once per superstep, so it bumps the
  // cells directly instead of re-doing the registry name lookup.
  MetricsRegistry::Counter& m_rounds_;
  MetricsRegistry::Counter& m_barrier_wait_ns_;
  MetricsRegistry::Counter& m_respawns_;
  std::vector<std::thread> workers_;
};

// AsyncCluster — the dependency-driven substrate behind `--schedule=async`.
//
// Where Cluster rendezvouses every partition at a global barrier each
// superstep, AsyncCluster runs *waves*: the set of partitions that are
// actually ready for superstep s (per ReadyTracker). Each wave's tasks are
// dealt to their owning workers' steal-deques; an idle worker whose own
// deque is dry steals whole partition-tasks from stragglers instead of
// blocking in barrier_wait. The last task to finish a wave *seals* it —
// runs the driver's delivery/termination step exclusively — and pushes the
// next wave's tasks, so there is no coordinator rendezvous per superstep
// at all: control threads only sleep at phase boundaries.
//
// Tasks are whole (partition, superstep) units — programs are stateful per
// partition, so a partition's subgraphs must run on one thread, in local
// order. That granularity also makes async output byte-identical to BSP:
// one thread replays exactly the BSP send sequence of that partition.
//
// Fault model matches Cluster: a task throwing fault::WorkerFault kills the
// executing worker thread (even if the task was stolen — the thief's host
// dies); queued tasks are discarded, in-flight tasks finish, and runWaves
// reports the abort so the engine can roll back and respawnDead().
class AsyncCluster {
 public:
  using FaultRecord = Cluster::FaultRecord;

  struct TaskInfo {
    std::int32_t wave = 0;
    // Scheduler gap time ending at this task's pickup: the wall-clock span
    // during which ready tasks sat queued while NO worker was executing
    // (zero when some worker was busy the whole time). Time covered by
    // workers chewing through earlier tasks is utilization, not wait —
    // that is exactly the barrier wait the async schedule converts into
    // stolen work. Summed into engine.ready_wait_ns, the async analogue
    // of cluster.barrier_wait_ns (which likewise counts only idle-at-
    // barrier time, never between-round wake latency).
    std::int64_t ready_wait_ns = 0;
    bool stolen = false;  // executed by a worker other than the owner
  };

  // The engine side of a wave phase. runTask does the partition's work for
  // one superstep (and its own CPU metering); sealWave is invoked exactly
  // once per wave, by the last finisher, with no task running — it
  // delivers, commits the record and returns the next wave's partitions
  // (empty = phase complete). Either may throw WorkerFault (runTask only)
  // or RecoveryNeeded.
  class Driver {
   public:
    virtual ~Driver() = default;
    virtual void runTask(PartitionId p, const TaskInfo& info) = 0;
    virtual std::vector<PartitionId> sealWave(std::int32_t wave) = 0;
  };

  explicit AsyncCluster(std::uint32_t num_partitions);
  ~AsyncCluster();

  AsyncCluster(const AsyncCluster&) = delete;
  AsyncCluster& operator=(const AsyncCluster&) = delete;

  // Runs waves starting with `initial` at `first_wave` until sealWave
  // returns empty. Throws fault::RecoveryNeeded if a worker died or
  // sealWave threw; the engine rolls back and calls respawnDead().
  void runWaves(Driver& driver, const std::vector<PartitionId>& initial,
                std::int32_t first_wave = 0);

  // Runs job(p) once on every worker concurrently and blocks (used for
  // maintenance rounds). Timings mirror Cluster::run.
  const std::vector<Cluster::RoundTiming>& runAll(
      const std::function<void(PartitionId)>& job);

  [[nodiscard]] std::uint32_t numPartitions() const {
    return static_cast<std::uint32_t>(deques_.size());
  }

  [[nodiscard]] bool hasFaults();
  std::vector<FaultRecord> takeFaults();
  std::uint32_t respawnDead();
  [[nodiscard]] std::uint32_t aliveWorkers();

 private:
  struct Task {
    PartitionId partition = kInvalidPartition;
    std::int32_t wave = 0;
    std::int64_t push_ns = 0;
  };

  enum class Mode : std::uint8_t { kIdle, kWaves, kAll };

  void workerLoop(PartitionId p, std::uint64_t start_round);
  // Called with mutex_ held: push one task per partition for `wave`.
  void pushTasksLocked(const std::vector<PartitionId>& parts,
                       std::int32_t wave);
  // Steal-scan all deques starting at w's own. Mutex must be held.
  bool popTaskLocked(PartitionId w, Task* out);
  // Refreshes cluster.ready_queue_depth from queued_ + executing_ (tasks
  // admitted to the current wave and not yet completed). Mutex must be held.
  void updateReadyDepthLocked();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable phase_done_cv_;

  Mode mode_ = Mode::kIdle;
  Driver* driver_ = nullptr;
  std::int32_t wave_ = 0;
  std::uint32_t outstanding_ = 0;  // tasks pushed, not yet completed
  std::uint32_t queued_ = 0;       // tasks sitting in deques
  bool phase_done_ = false;
  bool abort_ = false;
  std::string abort_detail_;

  // runAll round state (mirrors Cluster).
  const std::function<void(PartitionId)>* job_ = nullptr;
  std::uint64_t round_ = 0;
  std::uint32_t all_remaining_ = 0;

  bool shutting_down_ = false;
  std::vector<std::uint8_t> dead_;   // guarded by mutex_
  std::vector<FaultRecord> faults_;  // guarded by mutex_

  std::vector<StealDeque<Task>> deques_;  // all access under mutex_
  // Gap-time accounting for TaskInfo::ready_wait_ns (guarded by mutex_):
  // how many workers are currently inside runTask, and — when tasks are
  // queued with nobody executing — when that idle span began (-1 = none).
  std::uint32_t executing_ = 0;
  std::int64_t idle_since_ns_ = -1;
  std::vector<std::int64_t> end_ns_;
  std::vector<std::int64_t> cpu_busy_ns_;
  std::vector<Cluster::RoundTiming> timings_;

  MetricsRegistry::Counter& m_waves_;
  MetricsRegistry::Counter& m_steals_;
  MetricsRegistry::Counter& m_ready_wait_ns_;
  MetricsRegistry::Counter& m_respawns_;
  // Sampled scheduler levels for live telemetry: cluster.ready_queue_depth
  // is the number of (partition, superstep) tasks admitted to the current
  // wave and not yet completed (queued in deques + executing); the
  // per-worker cluster.worker_queue_depth gauges expose each deque's depth
  // so `tsgcli top` can show where backlog sits. Updated under mutex_ at
  // push/pop/completion transitions — no new synchronization.
  MetricsRegistry::Gauge& g_ready_depth_;
  std::vector<MetricsRegistry::Gauge*> g_worker_depth_;
  std::vector<std::thread> workers_;
};

}  // namespace tsg
