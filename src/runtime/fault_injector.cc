#include "runtime/fault_injector.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"

namespace tsg {
namespace fault {

std::string_view siteName(Site site) {
  switch (site) {
    case Site::kCompute:
      return "compute";
    case Site::kBarrier:
      return "barrier";
    case Site::kDeliver:
      return "deliver";
    case Site::kSliceLoad:
      return "slice-load";
  }
  return "?";
}

std::string_view actionName(Action action) {
  switch (action) {
    case Action::kKill:
      return "kill";
    case Action::kDrop:
      return "drop";
    case Action::kDelay:
      return "delay";
    case Action::kFailLoad:
      return "fail";
  }
  return "?";
}

namespace {

std::string describe(PartitionId partition, Timestep timestep, Site site) {
  std::ostringstream os;
  os << "injected " << siteName(site) << " fault at partition " << partition
     << ", timestep " << timestep;
  return os.str();
}

}  // namespace

WorkerFault::WorkerFault(PartitionId partition, Timestep timestep, Site site)
    : partition_(partition),
      timestep_(timestep),
      site_(site),
      what_(describe(partition, timestep, site)) {}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::vector<FaultSpec> plan, std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  plan_ = std::move(plan);
  fired_ = 0;
  rng_.emplace(seed);
  bool any = false;
  for (const auto& spec : plan_) {
    any = any || spec.fires > 0;
  }
  armed_.store(any, std::memory_order_relaxed);  // tsg:mo(gate flag; the plan itself is published under mutex_)
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  plan_.clear();
  armed_.store(false, std::memory_order_relaxed);  // tsg:mo(gate flag; the plan itself is published under mutex_)
}

std::optional<FaultSpec> FaultInjector::fire(Site site, PartitionId partition,
                                             Timestep timestep,
                                             std::optional<Action> filter) {
  if (!armed()) {
    return std::nullopt;
  }
  std::lock_guard lock(mutex_);
  FaultSpec* match = nullptr;
  bool budget_left = false;
  for (auto& spec : plan_) {
    if (spec.fires <= 0) {
      continue;
    }
    const bool hits =
        spec.site == site && (!filter.has_value() || spec.action == *filter) &&
        (spec.partition == kInvalidPartition || spec.partition == partition) &&
        (spec.timestep < 0 || spec.timestep == timestep);
    if (hits && match == nullptr) {
      match = &spec;
      continue;  // keep scanning to know whether budget remains elsewhere
    }
    budget_left = true;
  }
  if (match == nullptr) {
    return std::nullopt;
  }
  --match->fires;
  ++fired_;
  FaultSpec fired = *match;
  if (match->fires > 0) {
    budget_left = true;
  }
  if (fired.action == Action::kDelay && rng_.has_value()) {
    // Seeded jitter: +-25% so delays do not resonate with the barrier.
    const std::int64_t base = fired.delay_us;
    fired.delay_us = base + rng_->uniformInt(-base / 4, base / 4);
  }
  if (!budget_left) {
    armed_.store(false, std::memory_order_relaxed);  // tsg:mo(budget exhausted; a lagging disarm is harmless)
  }
  MetricsRegistry::global().counter("fault.injected").increment();
  TSG_LOG(Warn) << "fault injector: firing " << actionName(fired.action)
                << "@" << siteName(fired.site) << " at partition " << partition
                << ", timestep " << timestep;
  return fired;
}

std::uint64_t FaultInjector::totalFired() const {
  std::lock_guard lock(mutex_);
  return fired_;
}

namespace {

Status badPlan(const std::string& text, const std::string& why) {
  return Status::invalidArgument("bad fault plan '" + text + "': " + why);
}

bool parseNumber(const std::string& text, std::int64_t& out) {
  if (text.empty()) {
    return false;
  }
  std::size_t pos = 0;
  try {
    out = std::stoll(text, &pos);
  } catch (const std::exception&) {
    return false;
  }
  return pos == text.size();
}

}  // namespace

Result<std::vector<FaultSpec>> parseFaultPlan(const std::string& text) {
  std::vector<FaultSpec> plan;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) {
      continue;
    }
    const std::size_t at = item.find('@');
    if (at == std::string::npos) {
      return badPlan(item, "expected <action>@<site>");
    }
    const std::string action_text = item.substr(0, at);
    std::string rest = item.substr(at + 1);

    FaultSpec spec;
    if (action_text == "kill") {
      spec.action = Action::kKill;
    } else if (action_text == "drop") {
      spec.action = Action::kDrop;
    } else if (action_text == "delay") {
      spec.action = Action::kDelay;
    } else if (action_text == "fail") {
      spec.action = Action::kFailLoad;
    } else {
      return badPlan(item, "unknown action '" + action_text + "'");
    }

    std::istringstream seg_stream(rest);
    std::string seg;
    bool have_site = false;
    while (std::getline(seg_stream, seg, ':')) {
      if (seg.empty()) {
        return badPlan(item, "empty segment");
      }
      if (!have_site) {
        if (seg == "compute") {
          spec.site = Site::kCompute;
        } else if (seg == "barrier") {
          spec.site = Site::kBarrier;
        } else if (seg == "deliver") {
          spec.site = Site::kDeliver;
        } else if (seg == "slice-load") {
          spec.site = Site::kSliceLoad;
        } else {
          return badPlan(item, "unknown site '" + seg + "'");
        }
        have_site = true;
        continue;
      }
      std::int64_t value = 0;
      if (!parseNumber(seg.substr(1), value)) {
        return badPlan(item, "malformed segment '" + seg + "'");
      }
      switch (seg[0]) {
        case 'p':
          if (value < 0) {
            return badPlan(item, "negative partition");
          }
          spec.partition = static_cast<PartitionId>(value);
          break;
        case 't':
          spec.timestep = static_cast<Timestep>(value);
          break;
        case 'x':
          if (value <= 0) {
            return badPlan(item, "fire budget must be positive");
          }
          spec.fires = static_cast<std::int32_t>(value);
          break;
        case 'd':
          if (value <= 0) {
            return badPlan(item, "delay must be positive");
          }
          spec.delay_us = value;
          break;
        default:
          return badPlan(item, "unknown segment '" + seg + "'");
      }
    }
    if (!have_site) {
      return badPlan(item, "missing site");
    }

    // Reject action/site combinations no hook implements, so a plan that
    // could never fire fails loudly instead of running fault-free.
    const bool legal =
        (spec.action == Action::kKill && spec.site != Site::kDeliver) ||
        (spec.action == Action::kDrop && spec.site == Site::kDeliver) ||
        (spec.action == Action::kDelay &&
         (spec.site == Site::kDeliver || spec.site == Site::kCompute)) ||
        (spec.action == Action::kFailLoad && spec.site == Site::kSliceLoad);
    if (!legal) {
      return badPlan(item, std::string(actionName(spec.action)) +
                               " is not supported at site " +
                               std::string(siteName(spec.site)));
    }
    plan.push_back(spec);
  }
  if (plan.empty()) {
    return badPlan(text, "empty plan");
  }
  return plan;
}

bool armFromEnv() {
  const char* plan_text = std::getenv("TSG_INJECT");
  if (plan_text == nullptr || plan_text[0] == '\0') {
    return false;
  }
  auto plan = parseFaultPlan(plan_text);
  TSG_CHECK_MSG(plan.isOk(), plan.status().toString());
  std::uint64_t seed = 42;
  if (const char* seed_text = std::getenv("TSG_INJECT_SEED")) {
    std::int64_t parsed = 0;
    if (parseNumber(seed_text, parsed)) {
      seed = static_cast<std::uint64_t>(parsed);
    }
  }
  FaultInjector::global().arm(std::move(plan).value(), seed);
  TSG_LOG(Info) << "fault injector armed from TSG_INJECT='" << plan_text
                << "'";
  return true;
}

}  // namespace fault
}  // namespace tsg
