// PayloadBuffer — the byte-string payload of a Message.
//
// Two storage modes, chosen at construction:
//   * inline: payloads of at most kInlineCapacity (24) bytes live directly in
//     the object — no heap traffic for the small control messages that
//     dominate BSP exchanges (halting tokens, single counters, short lists);
//   * shared: larger payloads live in one refcounted heap block. Copying a
//     PayloadBuffer bumps the refcount instead of deep-copying the bytes, so
//     fan-out sends of the same encoded payload to many destinations are
//     O(1) per destination. Adopting a std::vector is zero-copy (the block
//     steals the vector's buffer).
//
// Buffers are immutable after construction (assign() replaces the whole
// value); concurrent readers of a shared block therefore never race, and the
// refcount is the only atomic. This is what makes cross-thread payload
// sharing through the MessageBus safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

namespace tsg {

class PayloadBuffer {
 public:
  static constexpr std::size_t kInlineCapacity = 24;

  PayloadBuffer() = default;

  // Implicit on purpose: every legacy call site hands in a byte vector.
  // Small payloads are copied inline; larger ones adopt the vector's buffer
  // without copying.
  PayloadBuffer(std::vector<std::uint8_t> bytes) {  // NOLINT(google-explicit-constructor)
    if (bytes.size() <= kInlineCapacity) {
      setInline(bytes.data(), bytes.size());
    } else {
      shared_ = new Shared{std::move(bytes)};
    }
  }

  PayloadBuffer(std::initializer_list<std::uint8_t> bytes)
      : PayloadBuffer(bytes.begin(), bytes.size()) {}

  PayloadBuffer(const std::uint8_t* data, std::size_t n) {
    if (n <= kInlineCapacity) {
      setInline(data, n);
    } else {
      shared_ = new Shared{std::vector<std::uint8_t>(data, data + n)};
    }
  }

  // tsg:hot — copied on every fan-out of a shared payload.
  PayloadBuffer(const PayloadBuffer& other)
      : shared_(other.shared_), inline_size_(other.inline_size_) {
    if (shared_ != nullptr) {
      shared_->refs.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(ref increment; the copier already owns a reference)
    } else {
      std::memcpy(inline_, other.inline_, inline_size_);
    }
  }

  PayloadBuffer(PayloadBuffer&& other) noexcept
      : shared_(std::exchange(other.shared_, nullptr)),
        inline_size_(std::exchange(other.inline_size_, 0)) {
    if (shared_ == nullptr) {
      std::memcpy(inline_, other.inline_, inline_size_);
    }
  }

  PayloadBuffer& operator=(const PayloadBuffer& other) {
    if (this != &other) {
      PayloadBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  PayloadBuffer& operator=(PayloadBuffer&& other) noexcept {
    if (this != &other) {
      release();
      shared_ = std::exchange(other.shared_, nullptr);
      inline_size_ = std::exchange(other.inline_size_, 0);
      if (shared_ == nullptr) {
        std::memcpy(inline_, other.inline_, inline_size_);
      }
    }
    return *this;
  }

  ~PayloadBuffer() { release(); }

  // Replaces the value with n copies of `value` (std::vector-compatible
  // helper used by tests and benches).
  void assign(std::size_t n, std::uint8_t value) {
    release();
    shared_ = nullptr;
    if (n <= kInlineCapacity) {
      inline_size_ = static_cast<std::uint8_t>(n);
      std::memset(inline_, value, n);
    } else {
      inline_size_ = 0;
      shared_ = new Shared{std::vector<std::uint8_t>(n, value)};
    }
  }

  [[nodiscard]] const std::uint8_t* data() const {
    return shared_ != nullptr ? shared_->bytes.data() : inline_;
  }
  [[nodiscard]] std::size_t size() const {
    return shared_ != nullptr ? shared_->bytes.size() : inline_size_;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size(); }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data(), size()};
  }
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return bytes();
  }

  // Introspection (tests and metering).
  [[nodiscard]] bool isInline() const { return shared_ == nullptr; }
  // Number of PayloadBuffers sharing the heap block; 1 for inline buffers.
  [[nodiscard]] std::uint32_t useCount() const {
    return shared_ != nullptr
               ? shared_->refs.load(std::memory_order_relaxed)  // tsg:mo(introspection read of the refcount)
               : 1;
  }

  void swap(PayloadBuffer& other) noexcept {
    std::swap(shared_, other.shared_);
    std::swap(inline_size_, other.inline_size_);
    std::uint8_t tmp[kInlineCapacity];
    std::memcpy(tmp, inline_, sizeof(tmp));
    std::memcpy(inline_, other.inline_, sizeof(tmp));
    std::memcpy(other.inline_, tmp, sizeof(tmp));
  }

 private:
  struct Shared {
    std::vector<std::uint8_t> bytes;
    std::atomic<std::uint32_t> refs{1};
  };

  void setInline(const std::uint8_t* data, std::size_t n) {
    inline_size_ = static_cast<std::uint8_t>(n);
    if (n > 0) {
      std::memcpy(inline_, data, n);
    }
  }

  void release() {
    if (shared_ != nullptr &&
        shared_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {  // tsg:mo(acq_rel: the last release must see all writes before delete)
      delete shared_;
    }
  }

  Shared* shared_ = nullptr;
  std::uint8_t inline_[kInlineCapacity] = {};
  std::uint8_t inline_size_ = 0;
};

}  // namespace tsg
