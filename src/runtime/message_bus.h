// MessageBus — bulk message exchange between partitions, BSP style.
//
// During a superstep, worker p enqueues into its own outbox row
// (outbox[p][dst_partition]); rows are thread-confined so sends are
// lock-free. Between supersteps the coordinator calls deliver(), which moves
// everything into per-partition inboxes and returns traffic stats — the
// "bulk" transmission of Valiant's model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "runtime/message.h"

namespace tsg {

class MessageBus {
 public:
  explicit MessageBus(std::uint32_t num_partitions);

  // Called by worker `from` only (thread-confinement contract).
  void send(PartitionId from, PartitionId to, Message msg);

  struct DeliveryStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t cross_partition_messages = 0;
    std::uint64_t cross_partition_bytes = 0;
  };

  // Coordinator-only, between supersteps: moves outboxes to inboxes.
  DeliveryStats deliver();

  // Worker p's inbox for the current superstep (valid until next deliver()).
  [[nodiscard]] std::vector<Message>& inbox(PartitionId p);

  // Injects messages directly into an inbox (application inputs and
  // next-timestep messages are seeded this way before superstep 0).
  void inject(PartitionId to, std::vector<Message> msgs);

  // True if any outbox or inbox still holds messages.
  [[nodiscard]] bool anyPending() const;

  void clearAll();

  [[nodiscard]] std::uint32_t numPartitions() const {
    return static_cast<std::uint32_t>(inboxes_.size());
  }

 private:
  // outboxes_[from][to]
  std::vector<std::vector<std::vector<Message>>> outboxes_;
  std::vector<std::vector<Message>> inboxes_;
};

}  // namespace tsg
