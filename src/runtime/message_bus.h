// MessageBus — bulk message exchange between partitions, BSP style.
//
// During a superstep, worker p enqueues into its own outbox row
// (row p, destination q); rows are thread-confined so sends are lock-free.
// Between supersteps the coordinator calls deliver(), which *splices* every
// non-empty outbox vector into the destination inbox as one batch — O(k²)
// pointer swaps at the barrier instead of O(messages) per-message moves —
// and returns traffic stats that were already accumulated at send time on
// the worker threads, so the coordinator does no per-message work at all.
// Spent batch vectors are recycled back into outbox slots, making the
// fabric allocation-free at steady state.
//
// Ordering contract (FIFO per sender):
//   * Messages from sender partition s to receiver r are observed by r in
//     exactly the order s sent them within a superstep (one outbox vector
//     becomes one batch, order preserved end to end).
//   * Batches within an inbox are ordered by sender partition id, injected
//     batches first (injection only happens before superstep 0). No order is
//     guaranteed *between* different senders — same as any BSP fabric.
//
// Thread-safety contract (phase-confined, deliberately lock-free):
//   * During a round: worker p may call send(p, …) and consume inbox(p);
//     no two workers touch the same row or inbox.
//   * Between rounds (coordinator only, after the barrier): deliver(),
//     inject(), anyPending(), clearAll(). The barrier provides the
//     happens-before edge between the two phases.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "graph/types.h"
#include "runtime/message.h"

namespace tsg {

namespace check {
class BspChecker;
}  // namespace check

class MessageBus {
 public:
  struct DeliveryStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t cross_partition_messages = 0;
    std::uint64_t cross_partition_bytes = 0;
  };

  // A worker's inbox: the batches spliced to it by the last deliver() (plus
  // any injected seeds). The owning worker iterates batches() and moves the
  // messages out, then calls clear(); batch vectors are recycled by the bus
  // on the next deliver().
  class Inbox {
   public:
    [[nodiscard]] std::size_t size() const { return total_; }
    [[nodiscard]] bool empty() const { return total_ == 0; }
    [[nodiscard]] std::span<std::vector<Message>> batches() {
      return batches_;
    }
    [[nodiscard]] std::span<const std::vector<Message>> batches() const {
      return batches_;
    }
    // Flow ids parallel to batches(): entry i links batch i back to its
    // send-side trace flow (0 = untracked, e.g. injected seeds).
    [[nodiscard]] std::span<const std::uint64_t> flowIds() const {
      return flow_ids_;
    }

    // Drops the messages but keeps the spent batch vectors for recycling.
    // This is the drain point of a batch's trace flow: with tracing on, each
    // tracked batch emits its flow-finish here, on the consuming thread.
    // With a protocol checker attached this is also the consume hook: the
    // checker sees how many messages were drained and when they were
    // delivered (the stamp), so same-superstep reads are caught.
    void clear();

   private:
    friend class MessageBus;
    std::vector<std::vector<Message>> batches_;
    std::vector<std::uint64_t> flow_ids_;  // parallel to batches_
    std::size_t total_ = 0;
    // Protocol-checker state: which partition owns this inbox and when its
    // current content was delivered ((timestep, superstep); superstep -1 =
    // injected before superstep 0). Null checker = checking off.
    check::BspChecker* checker_ = nullptr;
    PartitionId owner_ = kInvalidPartition;
    Timestep stamp_t_ = -1;
    std::int32_t stamp_s_ = -1;
    // The bus-wide bus.inflight_messages gauge (attached at construction,
    // like checker_): clear() subtracts what it drains so the live level
    // stays truthful from the consuming thread.
    MetricsRegistry::Gauge* inflight_ = nullptr;
  };

  explicit MessageBus(std::uint32_t num_partitions);

  // Called by worker `from` only (thread-confinement contract). Delivery
  // stats are accumulated here, on the worker thread.
  void send(PartitionId from, PartitionId to, Message msg);

  // Coordinator-only, between supersteps: splices outbox vectors into the
  // destination inboxes and reports the traffic accumulated since the last
  // deliver(). Undelivered inbox content from the previous superstep is
  // dropped (the engine has already consumed or abandoned it).
  DeliveryStats deliver();

  // Worker p's inbox for the current superstep (valid until next deliver()).
  [[nodiscard]] Inbox& inbox(PartitionId p);

  // Injects messages directly into an inbox as one batch (application inputs
  // and next-timestep messages are seeded this way before superstep 0).
  // Injected traffic is not counted in DeliveryStats.
  void inject(PartitionId to, std::vector<Message> msgs);

  // True if any outbox or inbox still holds messages. O(k) — maintained
  // counters, not a scan of the k² boxes.
  [[nodiscard]] bool anyPending() const;

  void clearAll();

  // Attaches a BSP protocol checker for the duration of a run (nullptr to
  // detach). Coordinator-only, between rounds. Every hook site on the hot
  // path gates on the pointer, so a detached bus pays one null check.
  void attachChecker(check::BspChecker* checker);

  [[nodiscard]] std::uint32_t numPartitions() const {
    return static_cast<std::uint32_t>(inboxes_.size());
  }

 private:
  // One sender's thread-confined state: its k outbox vectors plus the
  // traffic counters it accumulates at send time.
  struct SenderRow {
    std::vector<std::vector<Message>> boxes;  // by destination partition
    // Trace flow id of the batch building in boxes[to] (0 = none). Allocated
    // on the first send into an empty box, handed to the inbox at deliver().
    std::vector<std::uint64_t> flow_ids;
    DeliveryStats stats;
    std::uint64_t pending = 0;
  };

  std::vector<Message> takeSpare();

  std::vector<SenderRow> rows_;
  std::vector<Inbox> inboxes_;
  check::BspChecker* checker_ = nullptr;
  // Spent batch vectors (coordinator-owned); reused as fresh outbox slots so
  // steady-state supersteps allocate nothing.
  std::vector<std::vector<Message>> spares_;

  // MetricsRegistry handles, resolved once at construction so deliver()'s
  // feed is a handful of relaxed atomic adds, not name lookups.
  MetricsRegistry::Counter& m_messages_;
  MetricsRegistry::Counter& m_bytes_;
  MetricsRegistry::Counter& m_xpart_messages_;
  MetricsRegistry::Counter& m_xpart_bytes_;
  MetricsRegistry::Counter& m_batches_;
  MetricsRegistry::Counter& m_spare_hits_;
  MetricsRegistry::Counter& m_spare_misses_;
  Histogram& h_batch_messages_;  // messages per spliced batch
  // Live backlog level for the telemetry sampler: messages sent or injected
  // and not yet drained (outboxes + inboxes). +1 per send (one relaxed RMW
  // on the hot path), -n at the drain/abandon/reset points.
  MetricsRegistry::Gauge& g_inflight_;
};

}  // namespace tsg
