#include "runtime/message_bus.h"

#include <algorithm>

#include "check/bsp_checker.h"
#include "common/status.h"
#include "common/trace.h"

namespace tsg {

MessageBus::MessageBus(std::uint32_t num_partitions)
    : rows_(num_partitions),
      inboxes_(num_partitions),
      m_messages_(MetricsRegistry::global().counter("bus.messages_delivered")),
      m_bytes_(MetricsRegistry::global().counter("bus.bytes_delivered")),
      m_xpart_messages_(
          MetricsRegistry::global().counter("bus.cross_partition_messages")),
      m_xpart_bytes_(
          MetricsRegistry::global().counter("bus.cross_partition_bytes")),
      m_batches_(MetricsRegistry::global().counter("bus.batches_spliced")),
      m_spare_hits_(MetricsRegistry::global().counter("bus.spare_pool_hits")),
      m_spare_misses_(
          MetricsRegistry::global().counter("bus.spare_pool_misses")),
      h_batch_messages_(
          MetricsRegistry::global().histogram("bus.batch_messages")),
      g_inflight_(MetricsRegistry::global().gauge("bus.inflight_messages")) {
  TSG_CHECK(num_partitions > 0);
  for (auto& row : rows_) {
    row.boxes.resize(num_partitions);
    row.flow_ids.resize(num_partitions, 0);
  }
  for (auto& inbox : inboxes_) {
    inbox.inflight_ = &g_inflight_;
  }
  // Pre-warm the spare pool to one vector per partition: the first
  // deliver() splices batches before any inbox vector has been recycled,
  // so a cold pool would record one miss per initial batch (3 at run start
  // in the k=4 baseline). The vectors are empty — only the pool slots are
  // warm — so this costs k empty vectors, not memory.
  spares_.resize(num_partitions);
}

// tsg:hot — per-message fast path; called once per edge activation.
void MessageBus::send(PartitionId from, PartitionId to, Message msg) {
  TSG_CHECK(from < rows_.size());
  TSG_CHECK(to < rows_.size());
  auto& row = rows_[from];
  const std::uint64_t size = msg.byteSize();
  if (checker_ != nullptr) {
    checker_->onSend(from, to, size);
  }
  ++row.stats.messages;
  row.stats.bytes += size;
  if (from != to) {
    ++row.stats.cross_partition_messages;
    row.stats.cross_partition_bytes += size;
  }
  ++row.pending;
  g_inflight_.add(1);
  auto& box = row.boxes[to];
  // First message into an empty box opens the batch: start its trace flow
  // here on the sending thread, so the viewer can draw send → deliver →
  // drain arrows. Per-batch, not per-message — the hot path stays at one
  // relaxed load and a branch when tracing is off.
  if (box.empty() && Tracer::enabled()) {
    row.flow_ids[to] = nextFlowId();
    traceFlowStart("bus", "bus.batch", row.flow_ids[to]);
  }
  box.push_back(std::move(msg));
}

std::vector<Message> MessageBus::takeSpare() {
  if (spares_.empty()) {
    m_spare_misses_.increment();
    return {};
  }
  m_spare_hits_.increment();
  auto spare = std::move(spares_.back());
  spares_.pop_back();
  return spare;
}

MessageBus::DeliveryStats MessageBus::deliver() {
  TraceSpan span("bus", "bus.deliver");
  // Tally what still sits undrained before the recycle destroys the
  // evidence: abandoned traffic breaks conservation (checker) and must come
  // off the in-flight level (telemetry). O(k) either way.
  std::uint64_t leftover_messages = 0;
  std::uint64_t leftover_flow = 0;
  for (auto& inbox : inboxes_) {
    leftover_messages += inbox.total_;
    if (checker_ != nullptr && leftover_flow == 0) {
      for (const std::uint64_t f : inbox.flow_ids_) {
        if (f != 0 && inbox.total_ != 0) {
          leftover_flow = f;
          break;
        }
      }
    }
  }
  if (leftover_messages != 0) {
    g_inflight_.add(-static_cast<std::int64_t>(leftover_messages));
  }
  // Recycle last superstep's batch vectors (consumed or abandoned alike).
  // Abandoned batches drop their flow ids without a finish event: the arrow
  // simply ends at its last observed hand-off, which is the truth.
  for (auto& inbox : inboxes_) {
    for (auto& batch : inbox.batches_) {
      batch.clear();
      spares_.push_back(std::move(batch));
    }
    inbox.batches_.clear();
    inbox.flow_ids_.clear();
    inbox.total_ = 0;
  }

  DeliveryStats stats;
  std::uint64_t batches = 0;
  for (PartitionId from = 0; from < rows_.size(); ++from) {
    auto& row = rows_[from];
    for (PartitionId to = 0; to < row.boxes.size(); ++to) {
      auto& box = row.boxes[to];
      if (box.empty()) {
        continue;
      }
      auto& inbox = inboxes_[to];
      h_batch_messages_.record(box.size());
      const std::uint64_t flow_id = row.flow_ids[to];
      row.flow_ids[to] = 0;
      if (flow_id != 0) {
        traceFlowStep("bus", "bus.batch", flow_id);
      }
      inbox.total_ += box.size();
      inbox.batches_.push_back(std::move(box));
      inbox.flow_ids_.push_back(flow_id);
      box = takeSpare();
      ++batches;
    }
    stats.messages += row.stats.messages;
    stats.bytes += row.stats.bytes;
    stats.cross_partition_messages += row.stats.cross_partition_messages;
    stats.cross_partition_bytes += row.stats.cross_partition_bytes;
    row.stats = DeliveryStats{};
    row.pending = 0;
  }
  m_messages_.add(stats.messages);
  m_bytes_.add(stats.bytes);
  m_xpart_messages_.add(stats.cross_partition_messages);
  m_xpart_bytes_.add(stats.cross_partition_bytes);
  m_batches_.add(batches);
  if (checker_ != nullptr) {
    // Stamp the freshly spliced inboxes with *when* they were delivered —
    // the current superstep — so the consuming side can prove it only reads
    // strictly-earlier batches.
    for (auto& inbox : inboxes_) {
      inbox.stamp_t_ = checker_->timestep();
      inbox.stamp_s_ = checker_->superstep();
    }
    checker_->onDeliver(stats.messages, stats.bytes, leftover_messages,
                        leftover_flow);
  }
  return stats;
}

MessageBus::Inbox& MessageBus::inbox(PartitionId p) {
  TSG_CHECK(p < inboxes_.size());
  return inboxes_[p];
}

void MessageBus::inject(PartitionId to, std::vector<Message> msgs) {
  TSG_CHECK(to < inboxes_.size());
  if (msgs.empty()) {
    return;
  }
  auto& inbox = inboxes_[to];
  if (checker_ != nullptr) {
    std::uint64_t bytes = 0;
    for (const auto& m : msgs) {
      bytes += m.byteSize();
    }
    checker_->onInject(msgs.size(), bytes);
    // Injection happens before superstep 0: stamp as superstep -1 so the
    // first round is allowed to consume it.
    inbox.stamp_t_ = checker_->timestep();
    inbox.stamp_s_ = -1;
  }
  g_inflight_.add(static_cast<std::int64_t>(msgs.size()));
  inbox.total_ += msgs.size();
  inbox.batches_.push_back(std::move(msgs));
  inbox.flow_ids_.push_back(0);  // seeds have no send-side flow
}

// tsg:hot — runs on the worker thread at the top of every round.
void MessageBus::Inbox::clear() {
  std::uint64_t drained_flow = 0;
  for (std::size_t i = 0; i < batches_.size(); ++i) {
    if (i < flow_ids_.size() && flow_ids_[i] != 0) {
      if (drained_flow == 0) {
        drained_flow = flow_ids_[i];
      }
      if (Tracer::enabled()) {
        traceFlowFinish("bus", "bus.batch", flow_ids_[i]);
      }
      flow_ids_[i] = 0;
    }
    batches_[i].clear();
  }
  if (checker_ != nullptr && total_ != 0) {
    checker_->onConsume(owner_, total_, stamp_t_, stamp_s_, drained_flow);
  }
  if (inflight_ != nullptr && total_ != 0) {
    inflight_->add(-static_cast<std::int64_t>(total_));
  }
  total_ = 0;
}

bool MessageBus::anyPending() const {
  for (const auto& row : rows_) {
    if (row.pending != 0) {
      return true;
    }
  }
  for (const auto& inbox : inboxes_) {
    if (inbox.total_ != 0) {
      return true;
    }
  }
  return false;
}

void MessageBus::clearAll() {
  std::int64_t discarded = 0;
  for (auto& row : rows_) {
    discarded += static_cast<std::int64_t>(row.pending);
    for (auto& box : row.boxes) {
      box.clear();
    }
    std::fill(row.flow_ids.begin(), row.flow_ids.end(), 0);
    row.stats = DeliveryStats{};
    row.pending = 0;
  }
  for (auto& inbox : inboxes_) {
    discarded += static_cast<std::int64_t>(inbox.total_);
  }
  if (discarded != 0) {
    g_inflight_.add(-discarded);
  }
  for (auto& inbox : inboxes_) {
    for (auto& batch : inbox.batches_) {
      batch.clear();
      spares_.push_back(std::move(batch));
    }
    inbox.batches_.clear();
    inbox.flow_ids_.clear();
    inbox.total_ = 0;
  }
  if (checker_ != nullptr) {
    // A fabric reset (superstep-cap abort) legitimately drops traffic in
    // flight; forgive the accounting rather than report phantom losses.
    checker_->onReset();
  }
}

void MessageBus::attachChecker(check::BspChecker* checker) {
  checker_ = checker;
  for (PartitionId p = 0; p < inboxes_.size(); ++p) {
    inboxes_[p].checker_ = checker;
    inboxes_[p].owner_ = p;
    inboxes_[p].stamp_t_ = -1;
    inboxes_[p].stamp_s_ = -1;
  }
}

}  // namespace tsg
