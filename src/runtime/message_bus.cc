#include "runtime/message_bus.h"

#include "common/status.h"

namespace tsg {

MessageBus::MessageBus(std::uint32_t num_partitions)
    : outboxes_(num_partitions), inboxes_(num_partitions) {
  TSG_CHECK(num_partitions > 0);
  for (auto& row : outboxes_) {
    row.resize(num_partitions);
  }
}

void MessageBus::send(PartitionId from, PartitionId to, Message msg) {
  TSG_CHECK(from < outboxes_.size());
  TSG_CHECK(to < outboxes_.size());
  outboxes_[from][to].push_back(std::move(msg));
}

MessageBus::DeliveryStats MessageBus::deliver() {
  DeliveryStats stats;
  for (auto& inbox : inboxes_) {
    inbox.clear();
  }
  for (PartitionId from = 0; from < outboxes_.size(); ++from) {
    for (PartitionId to = 0; to < outboxes_.size(); ++to) {
      auto& box = outboxes_[from][to];
      for (auto& msg : box) {
        const std::uint64_t size = msg.byteSize();
        ++stats.messages;
        stats.bytes += size;
        if (from != to) {
          ++stats.cross_partition_messages;
          stats.cross_partition_bytes += size;
        }
        inboxes_[to].push_back(std::move(msg));
      }
      box.clear();
    }
  }
  return stats;
}

std::vector<Message>& MessageBus::inbox(PartitionId p) {
  TSG_CHECK(p < inboxes_.size());
  return inboxes_[p];
}

void MessageBus::inject(PartitionId to, std::vector<Message> msgs) {
  TSG_CHECK(to < inboxes_.size());
  auto& inbox = inboxes_[to];
  inbox.insert(inbox.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
}

bool MessageBus::anyPending() const {
  for (const auto& row : outboxes_) {
    for (const auto& box : row) {
      if (!box.empty()) {
        return true;
      }
    }
  }
  for (const auto& inbox : inboxes_) {
    if (!inbox.empty()) {
      return true;
    }
  }
  return false;
}

void MessageBus::clearAll() {
  for (auto& row : outboxes_) {
    for (auto& box : row) {
      box.clear();
    }
  }
  for (auto& inbox : inboxes_) {
    inbox.clear();
  }
}

}  // namespace tsg
