#include "runtime/message_bus.h"

#include "common/status.h"
#include "common/trace.h"

namespace tsg {

MessageBus::MessageBus(std::uint32_t num_partitions)
    : rows_(num_partitions),
      inboxes_(num_partitions),
      m_messages_(MetricsRegistry::global().counter("bus.messages_delivered")),
      m_bytes_(MetricsRegistry::global().counter("bus.bytes_delivered")),
      m_xpart_messages_(
          MetricsRegistry::global().counter("bus.cross_partition_messages")),
      m_xpart_bytes_(
          MetricsRegistry::global().counter("bus.cross_partition_bytes")),
      m_batches_(MetricsRegistry::global().counter("bus.batches_spliced")),
      m_spare_hits_(MetricsRegistry::global().counter("bus.spare_pool_hits")),
      m_spare_misses_(
          MetricsRegistry::global().counter("bus.spare_pool_misses")) {
  TSG_CHECK(num_partitions > 0);
  for (auto& row : rows_) {
    row.boxes.resize(num_partitions);
  }
}

void MessageBus::send(PartitionId from, PartitionId to, Message msg) {
  TSG_CHECK(from < rows_.size());
  TSG_CHECK(to < rows_.size());
  auto& row = rows_[from];
  const std::uint64_t size = msg.byteSize();
  ++row.stats.messages;
  row.stats.bytes += size;
  if (from != to) {
    ++row.stats.cross_partition_messages;
    row.stats.cross_partition_bytes += size;
  }
  ++row.pending;
  row.boxes[to].push_back(std::move(msg));
}

std::vector<Message> MessageBus::takeSpare() {
  if (spares_.empty()) {
    m_spare_misses_.increment();
    return {};
  }
  m_spare_hits_.increment();
  auto spare = std::move(spares_.back());
  spares_.pop_back();
  return spare;
}

MessageBus::DeliveryStats MessageBus::deliver() {
  TraceSpan span("bus", "bus.deliver");
  // Recycle last superstep's batch vectors (consumed or abandoned alike).
  for (auto& inbox : inboxes_) {
    for (auto& batch : inbox.batches_) {
      batch.clear();
      spares_.push_back(std::move(batch));
    }
    inbox.batches_.clear();
    inbox.total_ = 0;
  }

  DeliveryStats stats;
  std::uint64_t batches = 0;
  for (PartitionId from = 0; from < rows_.size(); ++from) {
    auto& row = rows_[from];
    for (PartitionId to = 0; to < row.boxes.size(); ++to) {
      auto& box = row.boxes[to];
      if (box.empty()) {
        continue;
      }
      auto& inbox = inboxes_[to];
      inbox.total_ += box.size();
      inbox.batches_.push_back(std::move(box));
      box = takeSpare();
      ++batches;
    }
    stats.messages += row.stats.messages;
    stats.bytes += row.stats.bytes;
    stats.cross_partition_messages += row.stats.cross_partition_messages;
    stats.cross_partition_bytes += row.stats.cross_partition_bytes;
    row.stats = DeliveryStats{};
    row.pending = 0;
  }
  m_messages_.add(stats.messages);
  m_bytes_.add(stats.bytes);
  m_xpart_messages_.add(stats.cross_partition_messages);
  m_xpart_bytes_.add(stats.cross_partition_bytes);
  m_batches_.add(batches);
  return stats;
}

MessageBus::Inbox& MessageBus::inbox(PartitionId p) {
  TSG_CHECK(p < inboxes_.size());
  return inboxes_[p];
}

void MessageBus::inject(PartitionId to, std::vector<Message> msgs) {
  TSG_CHECK(to < inboxes_.size());
  if (msgs.empty()) {
    return;
  }
  auto& inbox = inboxes_[to];
  inbox.total_ += msgs.size();
  inbox.batches_.push_back(std::move(msgs));
}

bool MessageBus::anyPending() const {
  for (const auto& row : rows_) {
    if (row.pending != 0) {
      return true;
    }
  }
  for (const auto& inbox : inboxes_) {
    if (inbox.total_ != 0) {
      return true;
    }
  }
  return false;
}

void MessageBus::clearAll() {
  for (auto& row : rows_) {
    for (auto& box : row.boxes) {
      box.clear();
    }
    row.stats = DeliveryStats{};
    row.pending = 0;
  }
  for (auto& inbox : inboxes_) {
    for (auto& batch : inbox.batches_) {
      batch.clear();
      spares_.push_back(std::move(batch));
    }
    inbox.batches_.clear();
    inbox.total_ = 0;
  }
}

}  // namespace tsg
