#include "runtime/ready_tracker.h"

#include "common/status.h"

namespace tsg {

ReadyTracker::ReadyTracker(std::int32_t num_partitions)
    : num_partitions_(num_partitions),
      pending_(static_cast<std::size_t>(num_partitions), 0),
      halted_(static_cast<std::size_t>(num_partitions), 0) {
  TSG_CHECK(num_partitions > 0);
}

void ReadyTracker::beginTimestep() {
  wave_ = 0;
  pending_.assign(pending_.size(), 0);
  halted_.assign(halted_.size(), 0);
}

void ReadyTracker::recordDelivery(PartitionId to, std::uint64_t messages) {
  TSG_CHECK(to >= 0 && to < num_partitions_);
  pending_[static_cast<std::size_t>(to)] += messages;
}

void ReadyTracker::recordQuiesce(PartitionId p, bool halted) {
  TSG_CHECK(p >= 0 && p < num_partitions_);
  halted_[static_cast<std::size_t>(p)] = halted ? 1 : 0;
}

std::vector<PartitionId> ReadyTracker::advance() {
  ++wave_;
  std::vector<PartitionId> eligible;
  eligible.reserve(pending_.size());
  for (std::int32_t p = 0; p < num_partitions_; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (pending_[i] > 0 || halted_[i] == 0) {
      eligible.push_back(p);
    } else {
      ++skipped_;
    }
  }
  pending_.assign(pending_.size(), 0);
  return eligible;
}

bool ReadyTracker::terminated() const {
  for (std::int32_t p = 0; p < num_partitions_; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (pending_[i] > 0 || halted_[i] == 0) {
      return false;
    }
  }
  return true;
}

std::uint64_t ReadyTracker::pendingMessages(PartitionId p) const {
  TSG_CHECK(p >= 0 && p < num_partitions_);
  return pending_[static_cast<std::size_t>(p)];
}

}  // namespace tsg
