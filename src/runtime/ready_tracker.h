// Per-partition readiness for the async (dependency-driven) schedule.
//
// The global BSP barrier answers one question: "has every message bound for
// superstep s+1 been sent?" The message-conservation accounting the checker
// already performs (sends counted per destination at splice time) answers
// the same question per partition: once every wave-s task has quiesced, the
// per-destination delivery counts ARE the inbound set for wave s+1, and a
// partition with no pending messages and all subgraphs halted has nothing
// to do — it is skipped instead of being marched through an empty round.
//
// The tracker is deliberately single-threaded: the wave scheduler
// (AsyncCluster's seal step) owns the lock and calls into it, which keeps
// the readiness rule a pure function that unit tests can drive directly
// with out-of-order delivery sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partitioned_graph.h"

namespace tsg {

class ReadyTracker {
 public:
  explicit ReadyTracker(std::int32_t num_partitions);

  // Resets to wave 0 of a fresh timestep. Superstep 0 runs unconditionally
  // on every partition (it consumes seeds and resets halt flags), exactly
  // like the BSP engine's `s == 0` activity rule.
  void beginTimestep();

  // `messages` messages were sent during the current wave, bound for
  // partition `to` at wave() + 1. Senders finish in any order; the count
  // only becomes the readiness signal when the wave seals.
  void recordDelivery(PartitionId to, std::uint64_t messages);

  // Partition p finished its current-wave task; `halted` = every subgraph
  // it owns voted to halt (and nothing reactivated it this wave).
  void recordQuiesce(PartitionId p, bool halted);

  // Seals the current wave and advances: pending deliveries become the
  // inbound set of the new wave. Returns the partitions eligible for the
  // new wave — those with pending messages (reactivation) or unhalted
  // subgraphs (zero-message supersteps still run, as in BSP). Partitions
  // not returned are skipped; skippedRounds() accumulates them.
  std::vector<PartitionId> advance();

  [[nodiscard]] std::int32_t wave() const { return wave_; }

  // True when no partition is eligible: all halted and nothing in flight.
  // Matches the BSP termination rule (all_halted && delivered == 0).
  [[nodiscard]] bool terminated() const;

  // Cumulative (partition, wave) slots skipped by advance().
  [[nodiscard]] std::int64_t skippedRounds() const { return skipped_; }

  // Messages pending for p's next wave (test/diagnostic hook).
  [[nodiscard]] std::uint64_t pendingMessages(PartitionId p) const;

 private:
  std::int32_t num_partitions_;
  std::int32_t wave_ = 0;
  std::vector<std::uint64_t> pending_;  // per-partition, for wave_ + 1
  std::vector<std::uint8_t> halted_;    // per-partition, as of last quiesce
  std::int64_t skipped_ = 0;
};

}  // namespace tsg
