// Prometheus text exposition (format 0.0.4) for the MetricsRegistry.
//
// Metric names are mangled to the Prometheus grammar: a `tsg_` prefix, dots
// become underscores, anything outside [a-zA-Z0-9_:] becomes '_'. The
// registry's naming convention (`<subsystem>.<snake_case>`, enforced by
// tools/lint.py's metric-name rule) guarantees the mangling is injective in
// practice, so dashboard queries stay stable across releases. Partition
// labels become {partition="N"}; histograms are exposed as summaries
// (quantile series + _sum + _count).
//
// Two transports, both fed from the telemetry sampler:
//   * --prom=path   — the exposition rewritten atomically (tmp + rename) on
//                     a throttle, for node-exporter-style textfile scraping;
//   * --prom-port=N — PromHttpListener, a minimal blocking HTTP/1.0 server
//                     that answers every GET with the current exposition
//                     (the `tsgd` server will inherit this endpoint).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "telemetry/proc_stats.h"

namespace tsg {

// `bus.messages_delivered` -> `tsg_bus_messages_delivered`.
std::string promMetricName(std::string_view name);

// Appends `value` with Prometheus label-value escaping (backslash, double
// quote, newline); does NOT add the surrounding quotes.
void appendPromEscaped(std::string& out, std::string_view value);

// Renders the full exposition: counters and gauges from `points`,
// histograms as summaries, process stats (when valid) as tsg_process_*.
std::string renderPrometheus(
    const MetricsRegistry::Snapshot& points,
    const MetricsRegistry::HistogramSnapshots& histograms,
    const ProcStats* proc);

// Atomic file publish: write to `path`.tmp then rename over `path`, so a
// scraper never reads a torn exposition.
Status writePromFile(const std::string& path, const std::string& body);

// Minimal blocking HTTP listener: one accept thread, one response per
// connection, Connection: close. Enough for a scraper, deliberately not a
// web server. Linux/POSIX only; start() fails cleanly elsewhere.
class PromHttpListener {
 public:
  using Handler = std::function<std::string()>;

  PromHttpListener() = default;
  ~PromHttpListener();

  PromHttpListener(const PromHttpListener&) = delete;
  PromHttpListener& operator=(const PromHttpListener&) = delete;

  // Binds 0.0.0.0:`port` (0 = ephemeral; see port() for the result) and
  // starts the accept thread. `handler` runs on that thread per request.
  Status start(int port, Handler handler);
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);  // tsg:mo(acquire pairs with start()'s release store)
  }
  // The bound port (useful with port 0); 0 when not running.
  [[nodiscard]] int port() const { return port_; }

 private:
  void acceptLoop();

  Handler handler_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;  // NOLINT(tsg-naked-thread) — blocking accept loop,
                        // lifecycle-managed by start()/stop().
};

}  // namespace tsg
