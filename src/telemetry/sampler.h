// Live telemetry: in-run sampling of the MetricsRegistry into a ring of
// timestamped samples.
//
// A TelemetrySampler is a background thread that, every `sample_ms`
// milliseconds, snapshots the process-wide MetricsRegistry (counters,
// gauges, histogram quantiles) plus /proc/self process stats into a
// preallocated TelemetryRing. Consumers — the timeline JSON writer, the
// Prometheus exposition and `tsgcli top` — read the ring concurrently with
// production.
//
// Cost model: nothing here exists unless a telemetry flag armed it — a run
// without --sample-ms/--timeline/--prom* constructs no sampler, so the
// steady-state cost when off is zero. When on, the budget is one registry
// snapshot (~a few µs for a few hundred cells) per tick on a thread of its
// own; the CI gate holds the end-to-end overhead under 2% of wall time.
//
// Ring-buffer concurrency: slots are preallocated and guarded by per-slot
// locks. The producer only ever try_locks — if a reader happens to hold the
// slot (it copies one sample, microseconds), the sample is dropped and
// counted instead of blocking the cadence. So the sampler thread is
// wait-free, readers never observe torn samples, and the structure is clean
// under TSan (no seqlock-style benign races).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "telemetry/proc_stats.h"

namespace tsg {

// One captured sample: a timestamp, process stats and the registry's state.
struct TelemetrySample {
  std::int64_t ts_ns = 0;    // steadyNowNs() at capture
  std::uint64_t index = 0;   // 0-based monotone sample number
  ProcStats proc;
  MetricsRegistry::Snapshot points;  // counters + gauges, sorted

  // Derived histogram state (quantiles resolved at capture, so consumers
  // never need the bucket arrays).
  struct HistPoint {
    std::string name;
    std::int32_t partition = MetricsRegistry::kNoPartition;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
  };
  std::vector<HistPoint> hists;
};

// Fixed-capacity ring of samples: single producer (the sampler thread),
// any number of concurrent readers. Retains the most recent `capacity`
// samples; older ones are overwritten in place (no allocation after
// construction beyond the sample payloads themselves).
class TelemetryRing {
 public:
  explicit TelemetryRing(std::size_t capacity);

  TelemetryRing(const TelemetryRing&) = delete;
  TelemetryRing& operator=(const TelemetryRing&) = delete;

  // Producer side. Never blocks: a slot held by a reader drops the sample
  // (counted in droppedSamples()).
  void push(TelemetrySample sample);

  // Copies the most recent sample; false if nothing was produced yet.
  [[nodiscard]] bool latest(TelemetrySample& out) const;

  // Copies all retained samples, oldest first. Samples overwritten while
  // collecting are skipped (their slot index no longer fits the window).
  [[nodiscard]] std::vector<TelemetrySample> collect() const;

  // Total samples offered to push() (including dropped / overwritten).
  [[nodiscard]] std::uint64_t produced() const {
    return produced_.load(std::memory_order_acquire);  // tsg:mo(acquire pairs with push()'s release publication)
  }
  // Samples dropped because a reader held the slot at push time.
  [[nodiscard]] std::uint64_t droppedSamples() const {
    return dropped_.load(std::memory_order_relaxed);  // tsg:mo(drop tally read; reporting only)
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    mutable std::mutex mutex;
    // Sample index stored here, or kEmpty. Guarded by mutex.
    std::uint64_t index = kEmpty;
    TelemetrySample sample;
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> produced_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

struct TelemetryOptions {
  int sample_ms = 10;               // cadence; clamped to >= 1
  std::size_t ring_capacity = 8192; // samples retained
  std::string label;                // run label, stamped into the timeline
  // Invoked on the sampler thread after each captured sample (Prometheus
  // file refresh hangs off this). Keep it cheap; it runs inside the tick.
  std::function<void(const TelemetrySample&)> on_sample;
};

// The background sampling thread. start() spawns it, stop() joins it; the
// destructor stops. captureSample() is exposed so tests and `tsgcli top`
// can take a sample synchronously without the thread.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryOptions options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);  // tsg:mo(acquire pairs with start()/stop() release stores)
  }

  [[nodiscard]] const TelemetryRing& ring() const { return ring_; }
  [[nodiscard]] const TelemetryOptions& options() const { return options_; }

  // Ticks the sampler missed because a capture overran the cadence (the
  // schedule skips forward rather than bunching late samples).
  [[nodiscard]] std::uint64_t missedTicks() const {
    return missed_ticks_.load(std::memory_order_relaxed);  // tsg:mo(stat read; reporting only)
  }

  // One synchronous capture of registry + process state (does not touch
  // the ring).
  [[nodiscard]] static TelemetrySample captureSample();

 private:
  void threadMain();

  TelemetryOptions options_;
  TelemetryRing ring_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> missed_ticks_{0};
  std::thread thread_;  // NOLINT(tsg-naked-thread) — long-lived background
                        // sampler, deliberately outside the worker pools so
                        // it can observe them.
};

}  // namespace tsg
