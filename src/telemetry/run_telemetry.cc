#include "telemetry/run_telemetry.h"

#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"

namespace tsg {
namespace {

// Prometheus file refresh throttle: scrapers poll at seconds granularity,
// so rewriting the file faster than this only burns I/O inside the tick.
constexpr std::int64_t kPromRefreshNs = 100'000'000;  // 100 ms

std::string renderSamplePrometheus(const TelemetrySample& sample) {
  // The sample's histogram quantiles are already resolved, but the
  // exposition needs the registry's bucketed form for summaries — take a
  // fresh histogram snapshot (cheap: a handful of cells).
  return renderPrometheus(sample.points,
                          MetricsRegistry::global().histogramSnapshot(),
                          &sample.proc);
}

}  // namespace

RunTelemetry::RunTelemetry(RunTelemetryOptions options)
    : options_(std::move(options)) {}

RunTelemetry::~RunTelemetry() { (void)finish(); }

Status RunTelemetry::start() {
  if (!options_.armed() || sampler_ != nullptr) {
    return Status::ok();
  }
  TelemetryOptions sampler_options;
  sampler_options.sample_ms = options_.sample_ms >= 0 ? options_.sample_ms : 10;
  sampler_options.label = options_.label;
  const bool wants_prom_file = !options_.prom_path.empty();
  if (wants_prom_file) {
    sampler_options.on_sample = [this](const TelemetrySample& sample) {
      onSample(sample);
    };
  }
  sampler_ = std::make_unique<TelemetrySampler>(std::move(sampler_options));

  if (options_.prom_port >= 0) {
    listener_ = std::make_unique<PromHttpListener>();
    const Status status = listener_->start(options_.prom_port, [] {
      return renderSamplePrometheus(TelemetrySampler::captureSample());
    });
    if (!status.isOk()) {
      listener_.reset();
      sampler_.reset();
      return status;
    }
  }
  sampler_->start();
  return Status::ok();
}

void RunTelemetry::onSample(const TelemetrySample& sample) {
  // Runs on the sampler thread between ticks; throttled so a 1 ms cadence
  // doesn't turn into a 1 kHz file rewrite.
  if (sample.ts_ns - last_prom_write_ns_ < kPromRefreshNs &&
      last_prom_write_ns_ != 0) {
    return;
  }
  last_prom_write_ns_ = sample.ts_ns;
  const Status status =
      writePromFile(options_.prom_path, renderSamplePrometheus(sample));
  if (!status.isOk()) {
    TSG_LOG(Warn) << "telemetry: " << status.toString();
  }
}

Status RunTelemetry::finish() {
  if (finished_ || sampler_ == nullptr) {
    return Status::ok();
  }
  finished_ = true;
  sampler_->stop();
  if (listener_ != nullptr) {
    listener_->stop();
  }
  Status result = Status::ok();
  if (!options_.prom_path.empty()) {
    TelemetrySample last;
    if (sampler_->ring().latest(last)) {
      result = writePromFile(options_.prom_path,
                             renderSamplePrometheus(last));
    }
  }
  if (!options_.timeline_path.empty()) {
    const Timeline timeline =
        buildTimeline(sampler_->ring().collect(), *sampler_);
    const Status written =
        writeTimelineFile(options_.timeline_path, timeline);
    if (written.isOk()) {
      TSG_LOG(Info) << "wrote timeline: " << options_.timeline_path << " ("
                    << timeline.t_ms.size() << " samples, "
                    << timeline.series.size() << " series)";
    } else {
      result = written;
    }
  }
  return result;
}

}  // namespace tsg
