// Process-level resource stats for the telemetry sampler.
//
// Read from /proc/self on Linux (statm for resident set, stat for CPU time
// and thread count). On platforms without procfs every field stays zero and
// `valid` is false — the sampler simply omits the process.* series.
#pragma once

#include <cstdint>

namespace tsg {

struct ProcStats {
  std::int64_t rss_bytes = 0;  // resident set size
  std::int64_t cpu_ns = 0;     // cumulative user+system CPU time
  std::int64_t threads = 0;    // live threads in the process
  bool valid = false;
};

// One read of /proc/self/statm + /proc/self/stat. Cheap (two small reads,
// no allocation beyond a stack buffer) — safe at a 10 ms cadence.
ProcStats readProcStats();

}  // namespace tsg
