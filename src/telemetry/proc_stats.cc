#include "telemetry/proc_stats.h"

#ifdef __linux__
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#endif

namespace tsg {

#ifdef __linux__

namespace {

// Reads a whole small procfs file into `buf`; returns bytes read (0 on
// failure). procfs files report st_size 0, so read until EOF.
std::size_t readProcFile(const char* path, char* buf, std::size_t cap) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) {
    return 0;
  }
  const std::size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return n;
}

}  // namespace

ProcStats readProcStats() {
  ProcStats stats;
  char buf[1024];

  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  if (readProcFile("/proc/self/statm", buf, sizeof(buf)) > 0) {
    long long size_pages = 0;
    long long resident_pages = 0;
    if (std::sscanf(buf, "%lld %lld", &size_pages, &resident_pages) == 2) {
      static const long page_size = sysconf(_SC_PAGESIZE);
      stats.rss_bytes = static_cast<std::int64_t>(resident_pages) *
                        static_cast<std::int64_t>(page_size);
      stats.valid = true;
    }
  }

  // /proc/self/stat: "pid (comm) state ppid ...". comm may contain spaces
  // and parentheses, so parse from the LAST ')' — fields after it are
  // whitespace-separated: field 3 is state, 14 utime, 15 stime, 20
  // num_threads (1-based over the whole line).
  if (readProcFile("/proc/self/stat", buf, sizeof(buf)) > 0) {
    const char* after = std::strrchr(buf, ')');
    if (after != nullptr) {
      ++after;  // skip ')'
      // after points at " state ppid ..."; utime is the 12th field after
      // the state, num_threads the 18th.
      char state = 0;
      unsigned long long utime = 0;
      unsigned long long stime = 0;
      long long num_threads = 0;
      const int matched = std::sscanf(
          after,
          " %c %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %llu %llu %*s %*s %*s "
          "%*s %lld",
          &state, &utime, &stime, &num_threads);
      if (matched == 4) {
        static const long ticks_per_sec = sysconf(_SC_CLK_TCK);
        const std::int64_t ns_per_tick =
            ticks_per_sec > 0 ? 1'000'000'000LL / ticks_per_sec : 0;
        stats.cpu_ns =
            static_cast<std::int64_t>(utime + stime) * ns_per_tick;
        stats.threads = num_threads;
        stats.valid = true;
      }
    }
  }

  return stats;
}

#else  // !__linux__

ProcStats readProcStats() { return ProcStats{}; }

#endif

}  // namespace tsg
