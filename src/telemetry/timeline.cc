#include "telemetry/timeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/json.h"
#include "common/table.h"

namespace tsg {

bool TimelineSeries::isConstant() const {
  if (values.size() <= 1) {
    return true;
  }
  const double first = values.front();
  return std::all_of(values.begin(), values.end(),
                     [first](double v) { return v == first; });
}

const TimelineSeries* Timeline::find(std::string_view name,
                                     std::int32_t partition) const {
  for (const auto& s : series) {
    if (s.partition == partition && s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

Timeline buildTimeline(const std::vector<TelemetrySample>& samples,
                       const TelemetrySampler& sampler) {
  Timeline timeline;
  timeline.label = sampler.options().label;
  timeline.sample_interval_ms =
      static_cast<double>(sampler.options().sample_ms);
  timeline.produced_samples = sampler.ring().produced();
  timeline.dropped_samples = sampler.ring().droppedSamples();
  timeline.missed_ticks = sampler.missedTicks();
  if (samples.empty()) {
    return timeline;
  }
  timeline.start_ts_ns = samples.front().ts_ns;

  const std::size_t n = samples.size();
  timeline.t_ms.reserve(n);
  for (const auto& s : samples) {
    timeline.t_ms.push_back(
        static_cast<double>(s.ts_ns - timeline.start_ts_ns) / 1e6);
  }

  // Column store keyed by (name, partition, kind); values default to 0
  // before a series' first appearance.
  std::map<std::tuple<std::string, std::int32_t, std::string>,
           std::vector<double>>
      columns;
  auto column = [&](const std::string& name, std::int32_t partition,
                    const char* kind) -> std::vector<double>& {
    auto& col = columns[{name, partition, kind}];
    if (col.empty()) {
      col.assign(n, 0.0);
    }
    return col;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const TelemetrySample& s = samples[i];
    for (const auto& p : s.points) {
      column(p.name, p.partition, p.is_gauge ? "gauge" : "counter")[i] =
          static_cast<double>(p.value);
    }
    for (const auto& h : s.hists) {
      column(h.name + ".count", h.partition, "counter")[i] =
          static_cast<double>(h.count);
      column(h.name + ".p50", h.partition, "quantile")[i] =
          static_cast<double>(h.p50);
      column(h.name + ".p99", h.partition, "quantile")[i] =
          static_cast<double>(h.p99);
    }
    if (s.proc.valid) {
      column("process.rss_bytes", -1, "gauge")[i] =
          static_cast<double>(s.proc.rss_bytes);
      column("process.cpu_ns", -1, "counter")[i] =
          static_cast<double>(s.proc.cpu_ns);
      column("process.threads", -1, "gauge")[i] =
          static_cast<double>(s.proc.threads);
    }
  }

  timeline.series.reserve(columns.size());
  for (auto& [key, values] : columns) {
    TimelineSeries series;
    series.name = std::get<0>(key);
    series.partition = std::get<1>(key);
    series.kind = std::get<2>(key);
    series.values = std::move(values);
    timeline.series.push_back(std::move(series));
  }
  std::sort(timeline.series.begin(), timeline.series.end(),
            [](const TimelineSeries& a, const TimelineSeries& b) {
              return std::tie(a.name, a.partition) <
                     std::tie(b.name, b.partition);
            });
  return timeline;
}

std::string timelineToJson(const Timeline& timeline) {
  JsonWriter json(1 << 16);
  json.beginObject();
  json.kv("schema_version", std::int64_t{timeline.schema_version});
  json.kv("label", timeline.label);
  json.kv("sample_interval_ms", timeline.sample_interval_ms);
  json.kv("start_ts_ns", timeline.start_ts_ns);
  json.kv("produced_samples", timeline.produced_samples);
  json.kv("dropped_samples", timeline.dropped_samples);
  json.kv("missed_ticks", timeline.missed_ticks);
  json.key("t_ms");
  json.beginArray();
  for (const double t : timeline.t_ms) {
    json.value(t);
  }
  json.endArray();
  json.key("series");
  json.beginArray();
  for (const auto& s : timeline.series) {
    json.beginObject();
    json.kv("name", s.name);
    json.kv("partition", std::int64_t{s.partition});
    json.kv("kind", s.kind);
    json.key("values");
    json.beginArray();
    for (const double v : s.values) {
      json.value(v);
    }
    json.endArray();
    json.endObject();
  }
  json.endArray();
  json.endObject();
  return json.take();
}

Result<Timeline> timelineFromJson(std::string_view text) {
  auto parsed = JsonValue::parse(text);
  if (!parsed.isOk()) {
    return parsed.status();
  }
  const JsonValue& root = parsed.value();
  if (!root.isObject()) {
    return Status::invalidArgument("timeline: root is not an object");
  }
  Timeline timeline;
  timeline.schema_version =
      static_cast<int>(root.intOr("schema_version", 0));
  if (timeline.schema_version != kTimelineSchemaVersion) {
    return Status::invalidArgument(
        "timeline: unsupported schema_version " +
        std::to_string(timeline.schema_version));
  }
  timeline.label = root.stringOr("label", "");
  timeline.sample_interval_ms = root.doubleOr("sample_interval_ms", 0.0);
  timeline.start_ts_ns = root.intOr("start_ts_ns", 0);
  timeline.produced_samples =
      static_cast<std::uint64_t>(root.intOr("produced_samples", 0));
  timeline.dropped_samples =
      static_cast<std::uint64_t>(root.intOr("dropped_samples", 0));
  timeline.missed_ticks =
      static_cast<std::uint64_t>(root.intOr("missed_ticks", 0));

  const JsonValue* t_ms = root.find("t_ms");
  if (t_ms == nullptr || !t_ms->isArray()) {
    return Status::invalidArgument("timeline: missing t_ms array");
  }
  timeline.t_ms.reserve(t_ms->array().size());
  for (const auto& v : t_ms->array()) {
    timeline.t_ms.push_back(v.doubleValue());
  }

  const JsonValue* series = root.find("series");
  if (series == nullptr || !series->isArray()) {
    return Status::invalidArgument("timeline: missing series array");
  }
  for (const auto& entry : series->array()) {
    if (!entry.isObject()) {
      return Status::invalidArgument("timeline: series entry not an object");
    }
    TimelineSeries s;
    s.name = entry.stringOr("name", "");
    s.partition = static_cast<std::int32_t>(entry.intOr("partition", -1));
    s.kind = entry.stringOr("kind", "gauge");
    const JsonValue* values = entry.find("values");
    if (values == nullptr || !values->isArray()) {
      return Status::invalidArgument("timeline: series \"" + s.name +
                                     "\" has no values array");
    }
    if (values->array().size() != timeline.t_ms.size()) {
      return Status::invalidArgument(
          "timeline: series \"" + s.name +
          "\" length disagrees with the time axis");
    }
    s.values.reserve(values->array().size());
    for (const auto& v : values->array()) {
      s.values.push_back(v.doubleValue());
    }
    timeline.series.push_back(std::move(s));
  }
  return timeline;
}

Status writeTimelineFile(const std::string& path, const Timeline& timeline) {
  if (!writeTextFile(path, timelineToJson(timeline))) {
    return Status::ioError("cannot write timeline to " + path);
  }
  return Status::ok();
}

namespace {

// Mean of values[lo, hi) — bucket aggregation for the curve rows.
double meanOf(const std::vector<double>& values, std::size_t lo,
              std::size_t hi) {
  if (lo >= hi || hi > values.size()) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    sum += values[i];
  }
  return sum / static_cast<double>(hi - lo);
}

std::string utilizationBar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string bar;
  bar.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bar += i < filled ? '#' : '.';
  }
  return bar;
}

}  // namespace

std::string renderTimelineCurves(const Timeline& timeline, int max_rows) {
  const std::size_t n = timeline.t_ms.size();
  std::string out = "Timeline";
  if (!timeline.label.empty()) {
    out += " (" + timeline.label + ")";
  }
  out += ": " + std::to_string(n) + " samples @ " +
         TextTable::fmtDouble(timeline.sample_interval_ms, 1) + " ms";
  if (timeline.dropped_samples != 0 || timeline.missed_ticks != 0) {
    out += " [dropped " + std::to_string(timeline.dropped_samples) +
           ", missed ticks " + std::to_string(timeline.missed_ticks) + "]";
  }
  out += "\n";
  if (n == 0) {
    return out + "(no samples)\n";
  }

  const TimelineSeries* cpu = timeline.find("process.cpu_ns");
  const TimelineSeries* rss = timeline.find("process.rss_bytes");
  const TimelineSeries* ready = timeline.find("cluster.ready_queue_depth");
  const TimelineSeries* inflight = timeline.find("bus.inflight_messages");
  const TimelineSeries* timestep = timeline.find("engine.current_timestep");
  const TimelineSeries* superstep = timeline.find("engine.current_superstep");
  const TimelineSeries* delivered = timeline.find("bus.messages_delivered");
  const TimelineSeries* threads = timeline.find("process.threads");

  const int rows =
      static_cast<int>(std::min<std::size_t>(n, std::max(1, max_rows)));
  TextTable table({"t_ms", "step", "ss", "cpu", "util", "rss_mb", "ready",
                   "inflight", "msg/s"});
  for (int r = 0; r < rows; ++r) {
    const std::size_t lo = n * static_cast<std::size_t>(r) /
                           static_cast<std::size_t>(rows);
    std::size_t hi = n * (static_cast<std::size_t>(r) + 1) /
                     static_cast<std::size_t>(rows);
    hi = std::max(hi, lo + 1);

    // CPU utilization over the bucket: ΔCPU time / Δwall = cores busy;
    // normalized by the thread count for the bar.
    double cores_busy = 0.0;
    double util = 0.0;
    const std::size_t d_lo = lo;
    const std::size_t d_hi = std::min(hi, n - 1);
    if (cpu != nullptr && d_hi > d_lo) {
      const double wall_ms = timeline.t_ms[d_hi] - timeline.t_ms[d_lo];
      if (wall_ms > 0.0) {
        cores_busy =
            (cpu->values[d_hi] - cpu->values[d_lo]) / (wall_ms * 1e6);
        const double nthreads =
            threads != nullptr ? meanOf(threads->values, lo, hi) : 0.0;
        util = nthreads > 0.0 ? cores_busy / nthreads : 0.0;
      }
    }
    double msgs_per_s = 0.0;
    if (delivered != nullptr && d_hi > d_lo) {
      const double wall_ms = timeline.t_ms[d_hi] - timeline.t_ms[d_lo];
      if (wall_ms > 0.0) {
        msgs_per_s = (delivered->values[d_hi] - delivered->values[d_lo]) /
                     (wall_ms / 1e3);
      }
    }

    table.addRow({
        TextTable::fmtDouble(timeline.t_ms[lo], 1),
        timestep != nullptr
            ? std::to_string(
                  static_cast<std::int64_t>(meanOf(timestep->values, lo, hi)))
            : "-",
        superstep != nullptr
            ? std::to_string(static_cast<std::int64_t>(
                  meanOf(superstep->values, lo, hi)))
            : "-",
        TextTable::fmtDouble(cores_busy, 2),
        utilizationBar(util, 10),
        rss != nullptr
            ? TextTable::fmtDouble(meanOf(rss->values, lo, hi) / (1024.0 * 1024.0), 1)
            : "-",
        ready != nullptr
            ? TextTable::fmtDouble(meanOf(ready->values, lo, hi), 1)
            : "-",
        inflight != nullptr
            ? TextTable::fmtDouble(meanOf(inflight->values, lo, hi), 1)
            : "-",
        TextTable::fmtDouble(msgs_per_s, 0),
    });
  }
  out += table.render();
  return out;
}

}  // namespace tsg
