#include "telemetry/sampler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace tsg {

TelemetryRing::TelemetryRing(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

// tsg:hot — producer side of the seqlock ring; must stay wait-free.
void TelemetryRing::push(TelemetrySample sample) {
  const std::uint64_t index = produced_.load(std::memory_order_relaxed);  // tsg:mo(producer-only counter; single writer)
  sample.index = index;
  Slot& slot = slots_[static_cast<std::size_t>(index % slots_.size())];
  {
    std::unique_lock lock(slot.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      // A reader is copying this slot right now. Dropping one sample beats
      // stalling the cadence; the producer stays wait-free.
      dropped_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(drop tally; read after sampling stops)
      produced_.store(index + 1, std::memory_order_release);  // tsg:mo(release publishes the slot seqlock-style to readers)
      return;
    }
    slot.index = index;
    slot.sample = std::move(sample);
  }
  produced_.store(index + 1, std::memory_order_release);  // tsg:mo(release publishes the slot seqlock-style to readers)
}

bool TelemetryRing::latest(TelemetrySample& out) const {
  const std::uint64_t produced = produced_.load(std::memory_order_acquire);  // tsg:mo(acquire pairs with push()'s release publication)
  if (produced == 0) {
    return false;
  }
  // Scan back from the newest: the newest slot may have been dropped (or be
  // mid-overwrite from this very reader's lock), so fall back a few.
  const std::uint64_t window =
      std::min<std::uint64_t>(produced, slots_.size());
  for (std::uint64_t back = 0; back < window; ++back) {
    const std::uint64_t want = produced - 1 - back;
    const Slot& slot = slots_[static_cast<std::size_t>(want % slots_.size())];
    std::lock_guard lock(slot.mutex);
    if (slot.index == want) {
      out = slot.sample;
      return true;
    }
  }
  return false;
}

std::vector<TelemetrySample> TelemetryRing::collect() const {
  const std::uint64_t produced = produced_.load(std::memory_order_acquire);  // tsg:mo(acquire pairs with push()'s release publication)
  const std::uint64_t window =
      std::min<std::uint64_t>(produced, slots_.size());
  std::vector<TelemetrySample> out;
  out.reserve(static_cast<std::size_t>(window));
  for (std::uint64_t want = produced - window; want < produced; ++want) {
    const Slot& slot = slots_[static_cast<std::size_t>(want % slots_.size())];
    std::lock_guard lock(slot.mutex);
    if (slot.index == want) {
      out.push_back(slot.sample);
    }
    // Mismatch = dropped at push time or overwritten since `produced` was
    // read; either way the sample is gone, skip it.
  }
  return out;
}

namespace {

// Sampler self-telemetry, injected as synthetic points so the Prometheus
// exposition (tsg_telemetry_*) and the timeline carry the sampler's own
// health without routing it through the process-wide registry (which would
// leak them into every run's counter deltas).
void appendSamplerPoints(TelemetrySample& sample, const TelemetryRing& ring,
                         std::uint64_t missed_ticks) {
  const auto insert_sorted = [&sample](std::string name, std::uint64_t value) {
    MetricsRegistry::Point p;
    p.name = std::move(name);
    p.value = static_cast<std::int64_t>(value);
    // Snapshots stay sorted by (name, partition): consumers binary-search.
    const auto it = std::lower_bound(
        sample.points.begin(), sample.points.end(), p,
        [](const MetricsRegistry::Point& a, const MetricsRegistry::Point& b) {
          return std::tie(a.name, a.partition) < std::tie(b.name, b.partition);
        });
    sample.points.insert(it, std::move(p));
  };
  insert_sorted("telemetry.dropped_samples", ring.droppedSamples());
  insert_sorted("telemetry.missed_ticks", missed_ticks);
  insert_sorted("telemetry.produced_samples", ring.produced());
}

}  // namespace

TelemetrySampler::TelemetrySampler(TelemetryOptions options)
    : options_(std::move(options)),
      ring_(options_.ring_capacity) {
  options_.sample_ms = std::max(1, options_.sample_ms);
}

TelemetrySampler::~TelemetrySampler() { stop(); }

TelemetrySample TelemetrySampler::captureSample() {
  TelemetrySample sample;
  sample.ts_ns = steadyNowNs();
  sample.proc = readProcStats();
  auto& registry = MetricsRegistry::global();
  sample.points = registry.snapshot();
  const auto hists = registry.histogramSnapshot();
  sample.hists.reserve(hists.size());
  for (const auto& h : hists) {
    TelemetrySample::HistPoint hp;
    hp.name = h.name;
    hp.partition = h.partition;
    hp.count = h.count;
    hp.sum = h.sum;
    hp.p50 = h.quantile(0.5);
    hp.p99 = h.quantile(0.99);
    sample.hists.push_back(std::move(hp));
  }
  return sample;
}

void TelemetrySampler::start() {
  if (running_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with stop()'s release store)
    return;
  }
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);  // tsg:mo(release publishes sampler state to the thread)
  thread_ = std::thread([this] { threadMain(); });  // NOLINT(tsg-naked-thread)
}

void TelemetrySampler::stop() {
  if (!running_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with start()'s release store)
    return;
  }
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  running_.store(false, std::memory_order_release);  // tsg:mo(release marks the joined thread's state visible)
}

void TelemetrySampler::threadMain() {
  Tracer::setCurrentThreadName("telemetry-sampler");
  const auto interval = std::chrono::milliseconds(options_.sample_ms);
  auto next_tick = std::chrono::steady_clock::now();
  while (true) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait_until(lock, next_tick, [this] { return stop_requested_; });
      if (stop_requested_) {
        // Final capture so the timeline's last sample covers the run tail.
        break;
      }
    }
    TelemetrySample sample = captureSample();
    appendSamplerPoints(sample, ring_,
                        missed_ticks_.load(std::memory_order_relaxed));  // tsg:mo(stat read; the sampler thread is the only writer)
    if (options_.on_sample) {
      options_.on_sample(sample);
    }
    ring_.push(std::move(sample));
    // Absolute schedule: if a capture overran one or more ticks, skip them
    // (counted) rather than firing a burst of late samples.
    next_tick += interval;
    const auto now = std::chrono::steady_clock::now();
    while (next_tick < now) {
      next_tick += interval;
      missed_ticks_.fetch_add(1, std::memory_order_relaxed);  // tsg:mo(stat counter; the sampler thread is the only writer)
    }
  }
  TelemetrySample final_sample = captureSample();
  appendSamplerPoints(final_sample, ring_,
                      missed_ticks_.load(std::memory_order_relaxed));  // tsg:mo(stat read; the sampler thread is the only writer)
  if (options_.on_sample) {
    options_.on_sample(final_sample);
  }
  ring_.push(std::move(final_sample));
}

}  // namespace tsg
