// Timeline — the schema-versioned JSON artifact behind `--timeline=out.json`.
//
// A timeline is the columnar form of a run's telemetry samples: one shared
// time axis (milliseconds since the first sample) plus one value column per
// metric series. Series keep their registry names and partition labels, so
// `cluster.ready_queue_depth` in the file is the same series the DESIGN
// doc and the Prometheus exposition talk about; histogram-derived columns
// get `.count` / `.p50` / `.p99` suffixes and process stats appear as
// `process.rss_bytes` / `process.cpu_ns` / `process.threads`.
//
// Consumers: `tsgcli analyze --timeline=` renders phase-aligned
// utilization/progress curves (the paper's Fig. 7 lineage, from a live run
// instead of post-mortem traces), and ci/check_timeline.py validates
// monotonic timestamps, required series and sampler overhead in CI.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "telemetry/sampler.h"

namespace tsg {

inline constexpr int kTimelineSchemaVersion = 1;

struct TimelineSeries {
  std::string name;
  std::int32_t partition = -1;  // -1 = not partition-scoped
  std::string kind;             // "counter" | "gauge" | "quantile"
  std::vector<double> values;   // aligned with Timeline::t_ms

  // True if every value equals the first (the acceptance criterion's
  // "non-constant series" is the negation).
  [[nodiscard]] bool isConstant() const;
};

struct Timeline {
  int schema_version = kTimelineSchemaVersion;
  std::string label;
  double sample_interval_ms = 0.0;
  std::int64_t start_ts_ns = 0;        // steady-clock ns of the first sample
  std::uint64_t produced_samples = 0;  // offered to the ring (incl. evicted)
  std::uint64_t dropped_samples = 0;   // lost to reader contention
  std::uint64_t missed_ticks = 0;      // cadence overruns
  std::vector<double> t_ms;            // per-sample time since first sample
  std::vector<TimelineSeries> series;  // sorted by (name, partition)

  [[nodiscard]] const TimelineSeries* find(std::string_view name,
                                           std::int32_t partition = -1) const;
};

// Builds the columnar timeline from raw samples (oldest first, as returned
// by TelemetryRing::collect()). Values before a metric's first appearance
// are 0 — registry cells only ever appear, never vanish, so a series is
// dense from its first sample on.
Timeline buildTimeline(const std::vector<TelemetrySample>& samples,
                       const TelemetrySampler& sampler);

std::string timelineToJson(const Timeline& timeline);
Result<Timeline> timelineFromJson(std::string_view text);

// timelineToJson + writeTextFile.
Status writeTimelineFile(const std::string& path, const Timeline& timeline);

// Fig. 7-style utilization/progress curves as a text table: one row per
// time bucket with CPU utilization, RSS, scheduler/bus levels and engine
// progress. `max_rows` bounds the vertical size (buckets are averaged).
std::string renderTimelineCurves(const Timeline& timeline, int max_rows = 24);

}  // namespace tsg
