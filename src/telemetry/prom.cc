#include "telemetry/prom.h"

#include <cstdio>
#include <utility>

#include "common/log.h"
#include "common/table.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tsg {

std::string promMetricName(std::string_view name) {
  std::string out = "tsg_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void appendPromEscaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

namespace {

void appendLabels(std::string& out, std::int32_t partition,
                  const char* quantile) {
  const bool has_partition = partition != MetricsRegistry::kNoPartition;
  if (!has_partition && quantile == nullptr) {
    return;
  }
  out += '{';
  if (has_partition) {
    out += "partition=\"";
    appendPromEscaped(out, std::to_string(partition));
    out += '"';
  }
  if (quantile != nullptr) {
    if (has_partition) {
      out += ',';
    }
    out += "quantile=\"";
    out += quantile;
    out += '"';
  }
  out += '}';
}

void appendTypeOnce(std::string& out, const std::string& mangled,
                    const char* type, std::string& last_typed) {
  if (mangled == last_typed) {
    return;  // per-partition cells of one family share the TYPE line
  }
  out += "# TYPE " + mangled + " " + type + "\n";
  last_typed = mangled;
}

}  // namespace

std::string renderPrometheus(
    const MetricsRegistry::Snapshot& points,
    const MetricsRegistry::HistogramSnapshots& histograms,
    const ProcStats* proc) {
  std::string out;
  out.reserve(4096);
  std::string last_typed;
  // Snapshots are sorted by (name, partition), so a family's cells are
  // adjacent and one TYPE line covers them.
  for (const auto& p : points) {
    const std::string mangled = promMetricName(p.name);
    appendTypeOnce(out, mangled, p.is_gauge ? "gauge" : "counter",
                   last_typed);
    out += mangled;
    appendLabels(out, p.partition, nullptr);
    out += ' ';
    out += std::to_string(p.value);
    out += '\n';
  }
  for (const auto& h : histograms) {
    const std::string mangled = promMetricName(h.name);
    appendTypeOnce(out, mangled, "summary", last_typed);
    const std::uint64_t quantiles[] = {h.quantile(0.5), h.quantile(0.9),
                                       h.quantile(0.99)};
    const char* names[] = {"0.5", "0.9", "0.99"};
    for (std::size_t q = 0; q < 3; ++q) {
      out += mangled;
      appendLabels(out, h.partition, names[q]);
      out += ' ';
      out += std::to_string(quantiles[q]);
      out += '\n';
    }
    out += mangled + "_sum";
    appendLabels(out, h.partition, nullptr);
    out += ' ' + std::to_string(h.sum) + '\n';
    out += mangled + "_count";
    appendLabels(out, h.partition, nullptr);
    out += ' ' + std::to_string(h.count) + '\n';
  }
  if (proc != nullptr && proc->valid) {
    out += "# TYPE tsg_process_rss_bytes gauge\n";
    out += "tsg_process_rss_bytes " + std::to_string(proc->rss_bytes) + "\n";
    out += "# TYPE tsg_process_cpu_ns counter\n";
    out += "tsg_process_cpu_ns " + std::to_string(proc->cpu_ns) + "\n";
    out += "# TYPE tsg_process_threads gauge\n";
    out += "tsg_process_threads " + std::to_string(proc->threads) + "\n";
  }
  return out;
}

Status writePromFile(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  if (!writeTextFile(tmp, body)) {
    return Status::ioError("cannot write prom exposition to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::ioError("cannot rename " + tmp + " over " + path);
  }
  return Status::ok();
}

#ifdef __linux__

PromHttpListener::~PromHttpListener() { stop(); }

Status PromHttpListener::start(int port, Handler handler) {
  if (running_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with start()'s release store)
    return Status::failedPrecondition("prom listener already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::ioError("prom listener: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::ioError("prom listener: cannot bind port " +
                           std::to_string(port) + " (" +
                           std::strerror(errno) + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::ioError("prom listener: listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  listen_fd_ = fd;
  handler_ = std::move(handler);
  running_.store(true, std::memory_order_release);  // tsg:mo(release publishes listener state to the accept thread)
  thread_ = std::thread([this] { acceptLoop(); });  // NOLINT(tsg-naked-thread)
  TSG_LOG(Info) << "prometheus exposition on http://127.0.0.1:" << port_
                << "/metrics";
  return Status::ok();
}

void PromHttpListener::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Closing the listening socket unblocks accept() with an error, which the
  // loop reads as shutdown.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) {
    thread_.join();
  }
  port_ = 0;
}

void PromHttpListener::acceptLoop() {
  while (running_.load(std::memory_order_acquire)) {  // tsg:mo(acquire pairs with start()'s release store)
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (running_.load(std::memory_order_acquire) && errno == EINTR) {  // tsg:mo(acquire pairs with start()'s release store)
        continue;
      }
      return;  // socket closed by stop()
    }
    // Drain whatever request line arrived (we answer every request the
    // same way), then write one response and close.
    char buf[1024];
    (void)::recv(client, buf, sizeof(buf), MSG_DONTWAIT);
    const std::string body = handler_ ? handler_() : std::string();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n";
    response += body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(client, response.data() + sent, response.size() - sent,
                 MSG_NOSIGNAL);
      if (n <= 0) {
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
  }
}

#else  // !__linux__

PromHttpListener::~PromHttpListener() { stop(); }

Status PromHttpListener::start(int /*port*/, Handler /*handler*/) {
  return Status::unimplemented("prom HTTP listener requires Linux");
}

void PromHttpListener::stop() {}

void PromHttpListener::acceptLoop() {}

#endif

}  // namespace tsg
