// RunTelemetry — the flag-level glue tsgcli and the bench binaries share.
//
// Callers fill RunTelemetryOptions from their --sample-ms / --timeline /
// --prom / --prom-port flags; armed() says whether any of them asked for
// telemetry. When armed, start() spawns the TelemetrySampler (and the
// Prometheus listener / file refresher when requested) and finish() stops
// everything and writes the timeline JSON. A run without telemetry flags
// never constructs this object's sampler, keeping the off-path at zero cost.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "telemetry/prom.h"
#include "telemetry/sampler.h"
#include "telemetry/timeline.h"

namespace tsg {

struct RunTelemetryOptions {
  // Cadence. <0 = unset; the effective cadence defaults to 10 ms whenever
  // another flag arms telemetry.
  int sample_ms = -1;
  std::string timeline_path;  // --timeline=out.json ("" = off)
  std::string prom_path;      // --prom=path ("" = off)
  int prom_port = -1;         // --prom-port=N (-1 = off, 0 = ephemeral)
  std::string label;          // stamped into the timeline

  [[nodiscard]] bool armed() const {
    return sample_ms >= 0 || !timeline_path.empty() || !prom_path.empty() ||
           prom_port >= 0;
  }
};

class RunTelemetry {
 public:
  explicit RunTelemetry(RunTelemetryOptions options);
  ~RunTelemetry();

  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  // Starts the sampler and (if requested) the HTTP listener. No-op when
  // not armed. Errors (e.g. an unbindable --prom-port) are returned, not
  // fatal: the caller decides whether to abort the run.
  Status start();

  // Stops sampling, writes the timeline JSON and the final Prometheus
  // exposition, and shuts down the listener. Safe to call more than once;
  // the destructor calls it too (ignoring the status).
  Status finish();

  [[nodiscard]] bool armed() const { return options_.armed(); }
  [[nodiscard]] const TelemetrySampler* sampler() const {
    return sampler_.get();
  }
  // Bound Prometheus port (for --prom-port=0); 0 when no listener runs.
  [[nodiscard]] int promPort() const {
    return listener_ != nullptr ? listener_->port() : 0;
  }

 private:
  void onSample(const TelemetrySample& sample);

  RunTelemetryOptions options_;
  std::unique_ptr<TelemetrySampler> sampler_;
  std::unique_ptr<PromHttpListener> listener_;
  std::int64_t last_prom_write_ns_ = 0;  // sampler-thread only
  bool finished_ = false;
};

}  // namespace tsg
