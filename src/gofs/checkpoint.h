// Timestep-boundary checkpointing for TI-BSP runs.
//
// A completed timestep is a natural consistent cut: sequentially dependent
// patterns carry state across timesteps only through program members and
// explicit next-timestep messages, both of which the coordinator holds
// quiesced between timesteps (workers are parked at the round barrier, the
// fabric is empty). A Checkpoint captures exactly that cut: per-partition
// program state (opaque bytes written by TiBspProgram::saveState), emitted
// outputs, the carried inter-timestep and merge message pools, and the
// aggregator snapshot. Restoring it and re-running from timestep+1 is
// byte-identical to never having crashed.
//
// Two stores:
//   * MemoryCheckpointStore — keeps the latest encoded pack in memory.
//     Every load still round-trips the codec, so tests exercise the same
//     byte path as the durable store without filesystem traffic.
//   * FileCheckpointStore — GoFS-adjacent on-disk layout:
//       <dir>/ckpt_<t>.bin    one pack per checkpointed timestep, written
//                             to a temp file and atomically renamed
//       <dir>/manifest.log    append-only fixed-size records
//                             {timestep, pack size, pack checksum, record
//                             checksum}; a torn tail or a corrupt pack is
//                             detected and loadLatest() falls back to the
//                             newest intact checkpoint with a diagnostic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "graph/types.h"
#include "runtime/message.h"

namespace tsg {

// One partition's slice of the cut.
struct PartitionCheckpoint {
  std::vector<std::uint8_t> program_state;  // TiBspProgram::saveState bytes
  std::vector<std::string> outputs;         // lines emitted so far
};

struct Checkpoint {
  // Last completed timestep. first_timestep - 1 marks the initial
  // checkpoint written before any timestep runs (pristine program state),
  // so every recovery loads from a checkpoint instead of special-casing
  // "restart from scratch".
  Timestep timestep = -1;
  std::int32_t timesteps_executed = 0;
  std::vector<PartitionCheckpoint> partitions;
  std::vector<Message> pending_next;  // carried inter-timestep messages
  std::vector<Message> merge_pool;    // accumulated merge traffic
  std::map<std::string, std::uint64_t> aggregates;  // last timestep's sums
};

// Codec (magic + versioned; reusing the library serializer). Decoding is
// fully bounds-checked: truncated or bit-flipped packs come back as a
// Status, never a partial Checkpoint.
std::vector<std::uint8_t> encodeCheckpoint(const Checkpoint& ckpt);
Result<Checkpoint> decodeCheckpoint(std::span<const std::uint8_t> bytes);

class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  virtual Status save(const Checkpoint& ckpt) = 0;
  // Newest intact checkpoint; Status if none exists (or all are corrupt).
  virtual Result<Checkpoint> loadLatest() = 0;
  [[nodiscard]] virtual bool hasCheckpoint() const = 0;
};

// In-memory store holding the latest encoded pack. loadLatest() decodes it,
// so the codec is exercised on every recovery.
class MemoryCheckpointStore final : public CheckpointStore {
 public:
  Status save(const Checkpoint& ckpt) override;
  Result<Checkpoint> loadLatest() override;
  [[nodiscard]] bool hasCheckpoint() const override { return !latest_.empty(); }

  // Number of save() calls (for tests asserting checkpoint cadence).
  [[nodiscard]] std::uint64_t saves() const { return saves_; }

 private:
  std::vector<std::uint8_t> latest_;
  std::uint64_t saves_ = 0;
};

class FileCheckpointStore final : public CheckpointStore {
 public:
  // Creates dir if needed. Fallible I/O surfaces from save()/loadLatest().
  explicit FileCheckpointStore(std::string dir);

  Status save(const Checkpoint& ckpt) override;
  Result<Checkpoint> loadLatest() override;
  [[nodiscard]] bool hasCheckpoint() const override;

  // Paths, exposed for crash-consistency tests that corrupt them.
  [[nodiscard]] std::string packPath(Timestep t) const;
  [[nodiscard]] std::string manifestPath() const;

 private:
  std::string dir_;
};

}  // namespace tsg
