// InstanceProvider — the runtime's source of per-partition instance data.
//
// A TI-BSP worker for partition p asks for the attribute values of its own
// vertices/edges at timestep t. Two implementations exist:
//  * DirectInstanceProvider — wraps an in-memory TimeSeriesCollection
//    (everything resident; no load spikes).
//  * GofsInstanceProvider (gofs/dataset.h) — lazily loads slice files with
//    temporal packing, reproducing the paper's every-10th-timestep load
//    spikes (Fig. 6).
//
// Threading contract: instanceFor(p, t) is only ever called by the worker
// thread of partition p; implementations keep per-partition state with no
// cross-partition sharing, so no locks are needed on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/attribute.h"
#include "graph/collection.h"
#include "graph/types.h"
#include "partition/partitioned_graph.h"

namespace tsg {

// Attribute values of one timestep restricted to one partition.
// Columns are indexed by the partition-local dense indices
// (PartitionedGraph::localIndexOfVertex / localIndexOfEdge).
struct PartitionInstanceData {
  Timestep timestep = 0;
  std::int64_t timestamp = 0;
  std::vector<AttributeColumn> vertex_cols;
  std::vector<AttributeColumn> edge_cols;
};

class InstanceProvider {
 public:
  virtual ~InstanceProvider() = default;

  [[nodiscard]] virtual std::size_t numInstances() const = 0;
  [[nodiscard]] virtual std::int64_t t0() const = 0;
  [[nodiscard]] virtual std::int64_t delta() const = 0;

  // Returns partition p's view of timestep t, loading it if necessary.
  // The reference stays valid until the next instanceFor(p, ...) call.
  virtual const PartitionInstanceData& instanceFor(PartitionId p,
                                                   Timestep t) = 0;

  // Nanoseconds spent loading (I/O + decode) during calls for partition p
  // since the last takeLoadNs(p); resets the counter. Used for Fig. 6.
  virtual std::int64_t takeLoadNs(PartitionId p) = 0;
};

// Serves instances from a resident TimeSeriesCollection by gathering each
// partition's values on first access (cached per partition+timestep window).
class DirectInstanceProvider final : public InstanceProvider {
 public:
  // Both referents must outlive the provider.
  DirectInstanceProvider(const PartitionedGraph& pg,
                         const TimeSeriesCollection& collection);

  [[nodiscard]] std::size_t numInstances() const override;
  [[nodiscard]] std::int64_t t0() const override;
  [[nodiscard]] std::int64_t delta() const override;
  const PartitionInstanceData& instanceFor(PartitionId p, Timestep t) override;
  std::int64_t takeLoadNs(PartitionId p) override;

 private:
  struct PartitionState {
    Timestep cached_timestep = -1;
    PartitionInstanceData data;
    std::int64_t load_ns = 0;
  };

  const PartitionedGraph& pg_;
  const TimeSeriesCollection& collection_;
  std::vector<PartitionState> states_;
};

// Gathers partition p's columns out of a full GraphInstance (shared by the
// direct provider and the GoFS writer).
PartitionInstanceData gatherPartitionInstance(const PartitionedGraph& pg,
                                              PartitionId p,
                                              const GraphInstance& instance);

// A provider whose timesteps arrive over time (stream ingestion). The engine
// polls it from the coordinator thread at the top of the serial timestep
// loop; the dirty-set query gates the per-subgraph incremental skip.
//
// Threading contract: awaitTimestep is called only from the engine's
// coordinator thread. subgraphDirty(t, sg) is called from worker threads but
// only after awaitTimestep(t) returned true (the coordinator's superstep
// launch provides the happens-before edge), so implementations may serve it
// from data frozen at seal time without locking.
class TimestepStream {
 public:
  virtual ~TimestepStream() = default;

  // Blocks until timestep t is sealed and its instance data is servable via
  // instanceFor. Returns false if the stream ended before t was sealed (the
  // engine then finishes with the timesteps it has). Re-entrant for
  // already-sealed t: returns true immediately (fault recovery rewinds the
  // timestep loop).
  virtual bool awaitTimestep(Timestep t) = 0;

  // True if sealing timestep t changed any attribute cell of a vertex or
  // edge belonging to subgraph sg relative to timestep t-1. Subgraphs that
  // are clean AND message-free AND whose program declares
  // skippableWhenClean() are not recomputed. Must be conservative: when in
  // doubt, report dirty. Only meaningful for t > the first sealed timestep.
  [[nodiscard]] virtual bool subgraphDirty(Timestep t, SubgraphId sg) const = 0;
};

}  // namespace tsg
