#include "gofs/instance_provider.h"

#include "common/stopwatch.h"

namespace tsg {

PartitionInstanceData gatherPartitionInstance(const PartitionedGraph& pg,
                                              PartitionId p,
                                              const GraphInstance& instance) {
  const Partition& part = pg.partition(p);
  PartitionInstanceData data;
  data.timestep = instance.timestep();
  data.timestamp = instance.timestamp();
  data.vertex_cols.reserve(instance.numVertexAttrs());
  for (std::size_t a = 0; a < instance.numVertexAttrs(); ++a) {
    data.vertex_cols.push_back(instance.vertexCol(a).gather(part.vertices));
  }
  data.edge_cols.reserve(instance.numEdgeAttrs());
  for (std::size_t a = 0; a < instance.numEdgeAttrs(); ++a) {
    data.edge_cols.push_back(instance.edgeCol(a).gather(part.edges));
  }
  return data;
}

DirectInstanceProvider::DirectInstanceProvider(
    const PartitionedGraph& pg, const TimeSeriesCollection& collection)
    : pg_(pg), collection_(collection), states_(pg.numPartitions()) {}

std::size_t DirectInstanceProvider::numInstances() const {
  return collection_.numInstances();
}

std::int64_t DirectInstanceProvider::t0() const { return collection_.t0(); }

std::int64_t DirectInstanceProvider::delta() const {
  return collection_.delta();
}

const PartitionInstanceData& DirectInstanceProvider::instanceFor(PartitionId p,
                                                                 Timestep t) {
  TSG_CHECK(p < states_.size());
  auto& state = states_[p];
  if (state.cached_timestep != t) {
    ScopedCpuTimer timer(state.load_ns);
    state.data = gatherPartitionInstance(pg_, p, collection_.instance(t));
    state.cached_timestep = t;
  }
  return state.data;
}

std::int64_t DirectInstanceProvider::takeLoadNs(PartitionId p) {
  TSG_CHECK(p < states_.size());
  return std::exchange(states_[p].load_ns, 0);
}

}  // namespace tsg
