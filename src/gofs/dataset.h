// GoFS — the distributed time-series graph store (our equivalent of the
// paper's GoFS, §IV-A).
//
// On-disk layout of a dataset directory:
//   manifest.bin    name, t0, δ, instance count, packing, binning, k
//   template.bin    serialized GraphTemplate
//   assignment.bin  vertex -> partition map
//   part<p>/slice_p<pack>_b<bin>.bin
//
// A slice file holds, for ONE partition, `temporal_packing` consecutive
// instances of up to `subgraph_binning` subgraphs: this is the paper's
// "temporal packing of 10 and subgraph binning of 5" — consecutive timesteps
// of spatially grouped subgraphs are laid out together so that a run over
// timesteps touches disk only at pack boundaries (the every-10th-timestep
// spikes of Fig. 6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gofs/instance_provider.h"
#include "graph/collection.h"
#include "partition/partitioned_graph.h"

namespace tsg {

struct GofsOptions {
  std::uint32_t temporal_packing = 10;  // instances per slice
  std::uint32_t subgraph_binning = 5;   // subgraphs per slice
};

struct GofsManifest {
  std::string name;
  std::int64_t t0 = 0;
  std::int64_t delta = 1;
  std::uint32_t num_instances = 0;
  std::uint32_t num_partitions = 0;
  GofsOptions options;
};

// Writes a complete dataset (template + assignment + all slices).
// The directory is created; existing files are overwritten.
Status writeGofsDataset(const std::string& dir, const std::string& name,
                        const PartitionedGraph& pg,
                        const TimeSeriesCollection& collection,
                        const GofsOptions& options);

// An opened dataset: metadata resident, instance data loaded lazily.
class GofsDataset {
 public:
  // Reads manifest/template/assignment and rebuilds the partitioned graph.
  static Result<GofsDataset> open(const std::string& dir);

  [[nodiscard]] const GofsManifest& manifest() const { return manifest_; }
  [[nodiscard]] const PartitionedGraph& partitionedGraph() const {
    return *pg_;
  }

  // Creates a lazy provider over this dataset. Each provider owns its own
  // cache; create one per run. The dataset must outlive the provider.
  [[nodiscard]] std::unique_ptr<InstanceProvider> makeProvider() const;

  // Total slice files and bytes on disk (for reporting).
  struct StorageStats {
    std::uint64_t slice_files = 0;
    std::uint64_t slice_bytes = 0;
  };
  [[nodiscard]] Result<StorageStats> storageStats() const;

 private:
  GofsDataset() = default;

  std::string dir_;
  GofsManifest manifest_;
  std::shared_ptr<PartitionedGraph> pg_;
};

// Path of one slice file (exposed for tests and tooling).
std::string slicePath(const std::string& dir, PartitionId p,
                      std::uint32_t pack_index, std::uint32_t bin_index);

}  // namespace tsg
