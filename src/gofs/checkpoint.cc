#include "gofs/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/log.h"

namespace tsg {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x54504B43;  // "CKPT"
constexpr std::uint8_t kCheckpointVersion = 1;

// One manifest entry: fixed width so a torn append is detectable by size.
//   i32 timestep | u64 pack size | u64 pack FNV-1a | u64 entry FNV-1a
constexpr std::size_t kManifestRecordBytes = 4 + 8 + 8 + 8;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

void encodeMessages(const std::vector<Message>& msgs, BinaryWriter& w) {
  w.writeVarint(msgs.size());
  for (const auto& msg : msgs) {
    w.writeU32(msg.src);
    w.writeU32(msg.dst);
    w.writeI32(msg.origin_timestep);
    w.writeVarint(msg.payload.size());
    w.writeBytes(msg.payload.data(), msg.payload.size());
  }
}

Status decodeMessages(BinaryReader& r, std::vector<Message>& out) {
  std::uint64_t n = 0;
  TSG_RETURN_IF_ERROR(r.readVarint(n));
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Message msg;
    TSG_RETURN_IF_ERROR(r.readU32(msg.src));
    TSG_RETURN_IF_ERROR(r.readU32(msg.dst));
    TSG_RETURN_IF_ERROR(r.readI32(msg.origin_timestep));
    std::vector<std::uint8_t> payload;
    TSG_RETURN_IF_ERROR(r.readPodVector(payload));
    msg.payload = PayloadBuffer(payload.data(), payload.size());
    out.push_back(std::move(msg));
  }
  return Status::ok();
}

}  // namespace

std::vector<std::uint8_t> encodeCheckpoint(const Checkpoint& ckpt) {
  BinaryWriter w;
  w.writeU32(kCheckpointMagic);
  w.writeU8(kCheckpointVersion);
  w.writeI32(ckpt.timestep);
  w.writeI32(ckpt.timesteps_executed);
  w.writeVarint(ckpt.partitions.size());
  for (const auto& part : ckpt.partitions) {
    w.writePodVector(part.program_state);
    w.writeStringVector(part.outputs);
  }
  encodeMessages(ckpt.pending_next, w);
  encodeMessages(ckpt.merge_pool, w);
  w.writeVarint(ckpt.aggregates.size());
  for (const auto& [name, value] : ckpt.aggregates) {
    w.writeString(name);
    w.writeU64(value);
  }
  return w.takeBuffer();
}

Result<Checkpoint> decodeCheckpoint(std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  std::uint32_t magic = 0;
  TSG_RETURN_IF_ERROR(r.readU32(magic));
  if (magic != kCheckpointMagic) {
    return Status::corruptData("bad checkpoint magic");
  }
  std::uint8_t version = 0;
  TSG_RETURN_IF_ERROR(r.readU8(version));
  if (version != kCheckpointVersion) {
    return Status::corruptData("unsupported checkpoint version");
  }
  Checkpoint ckpt;
  TSG_RETURN_IF_ERROR(r.readI32(ckpt.timestep));
  TSG_RETURN_IF_ERROR(r.readI32(ckpt.timesteps_executed));
  std::uint64_t num_parts = 0;
  TSG_RETURN_IF_ERROR(r.readVarint(num_parts));
  ckpt.partitions.resize(static_cast<std::size_t>(num_parts));
  for (auto& part : ckpt.partitions) {
    TSG_RETURN_IF_ERROR(r.readPodVector(part.program_state));
    TSG_RETURN_IF_ERROR(r.readStringVector(part.outputs));
  }
  TSG_RETURN_IF_ERROR(decodeMessages(r, ckpt.pending_next));
  TSG_RETURN_IF_ERROR(decodeMessages(r, ckpt.merge_pool));
  std::uint64_t num_aggs = 0;
  TSG_RETURN_IF_ERROR(r.readVarint(num_aggs));
  for (std::uint64_t i = 0; i < num_aggs; ++i) {
    std::string name;
    std::uint64_t value = 0;
    TSG_RETURN_IF_ERROR(r.readString(name));
    TSG_RETURN_IF_ERROR(r.readU64(value));
    ckpt.aggregates.emplace(std::move(name), value);
  }
  if (!r.atEnd()) {
    return Status::corruptData("trailing bytes in checkpoint");
  }
  return ckpt;
}

Status MemoryCheckpointStore::save(const Checkpoint& ckpt) {
  latest_ = encodeCheckpoint(ckpt);
  ++saves_;
  return Status::ok();
}

Result<Checkpoint> MemoryCheckpointStore::loadLatest() {
  if (latest_.empty()) {
    return Status::notFound("no checkpoint saved");
  }
  return decodeCheckpoint(latest_);
}

FileCheckpointStore::FileCheckpointStore(std::string dir)
    : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string FileCheckpointStore::packPath(Timestep t) const {
  return dir_ + "/ckpt_" + std::to_string(t) + ".bin";
}

std::string FileCheckpointStore::manifestPath() const {
  return dir_ + "/manifest.log";
}

Status FileCheckpointStore::save(const Checkpoint& ckpt) {
  const std::vector<std::uint8_t> pack = encodeCheckpoint(ckpt);
  const std::string path = packPath(ckpt.timestep);
  const std::string tmp = path + ".tmp";
  TSG_RETURN_IF_ERROR(writeFileBytes(tmp, pack));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::ioError("cannot rename checkpoint pack: " + path);
  }

  // Append the manifest record only after the pack is durably in place, so
  // a crash between the two leaves at worst an unreferenced pack (harmless)
  // — never a manifest entry pointing at a missing or partial pack.
  BinaryWriter w;
  w.writeI32(ckpt.timestep);
  w.writeU64(pack.size());
  w.writeU64(fnv1a(pack));
  w.writeU64(fnv1a(w.buffer()));
  std::FILE* f = std::fopen(manifestPath().c_str(), "ab");
  if (f == nullptr) {
    return Status::ioError("cannot open manifest: " + manifestPath());
  }
  const std::size_t written =
      std::fwrite(w.buffer().data(), 1, w.buffer().size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != w.buffer().size() || !flushed) {
    return Status::ioError("short manifest append: " + manifestPath());
  }
  return Status::ok();
}

bool FileCheckpointStore::hasCheckpoint() const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(manifestPath(), ec);
  return !ec && size >= kManifestRecordBytes;
}

Result<Checkpoint> FileCheckpointStore::loadLatest() {
  auto manifest = readFileBytes(manifestPath());
  if (!manifest.isOk()) {
    return Status::notFound("no checkpoint manifest in " + dir_);
  }
  const auto& bytes = manifest.value();
  const std::size_t whole = bytes.size() / kManifestRecordBytes;
  if (bytes.size() % kManifestRecordBytes != 0) {
    TSG_LOG(Warn) << "checkpoint manifest has a torn tail ("
                  << bytes.size() % kManifestRecordBytes
                  << " trailing byte(s)); ignoring it";
  }

  // Newest-first: the last intact manifest entry whose pack validates wins.
  for (std::size_t idx = whole; idx-- > 0;) {
    const std::span<const std::uint8_t> record(
        bytes.data() + idx * kManifestRecordBytes, kManifestRecordBytes);
    BinaryReader r(record);
    Timestep t = 0;
    std::uint64_t pack_size = 0;
    std::uint64_t pack_sum = 0;
    std::uint64_t entry_sum = 0;
    (void)r.readI32(t);
    (void)r.readU64(pack_size);
    (void)r.readU64(pack_sum);
    (void)r.readU64(entry_sum);
    if (fnv1a(record.subspan(0, kManifestRecordBytes - 8)) != entry_sum) {
      TSG_LOG(Warn) << "checkpoint manifest entry " << idx
                    << " is corrupt; falling back to an earlier checkpoint";
      continue;
    }
    auto pack = readFileBytes(packPath(t));
    if (!pack.isOk()) {
      TSG_LOG(Warn) << "checkpoint pack for timestep " << t
                    << " is missing; falling back to an earlier checkpoint";
      continue;
    }
    if (pack.value().size() != pack_size ||
        fnv1a(pack.value()) != pack_sum) {
      TSG_LOG(Warn) << "checkpoint pack for timestep " << t
                    << " fails validation (size " << pack.value().size()
                    << " vs " << pack_size
                    << "); falling back to an earlier checkpoint";
      continue;
    }
    auto decoded = decodeCheckpoint(pack.value());
    if (!decoded.isOk()) {
      TSG_LOG(Warn) << "checkpoint pack for timestep " << t
                    << " fails to decode (" << decoded.status().toString()
                    << "); falling back to an earlier checkpoint";
      continue;
    }
    return decoded;
  }
  return Status::corruptData("no intact checkpoint in " + dir_);
}

}  // namespace tsg
