#include "gofs/dataset.h"

#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "common/prof_hooks.h"
#include "runtime/fault_injector.h"

namespace tsg {
namespace {

constexpr std::uint32_t kManifestMagic = 0x4753464D;  // "MFSG"
constexpr std::uint32_t kSliceMagic = 0x474C5354;     // "TSLG"
constexpr std::uint8_t kFormatVersion = 1;

// Edges owned by a subgraph: the out-edges of its vertices, in vertex order.
// This order is a deterministic function of the topology, so writer and
// reader recompute it identically instead of storing it.
std::vector<EdgeIndex> subgraphOwnedEdges(const GraphTemplate& tmpl,
                                          const Subgraph& sg) {
  std::vector<EdgeIndex> edges;
  for (const VertexIndex v : sg.vertices) {
    for (const auto& oe : tmpl.outEdges(v)) {
      edges.push_back(oe.edge);
    }
  }
  return edges;
}

std::uint32_t numBins(const Partition& part, std::uint32_t binning) {
  return static_cast<std::uint32_t>(
      (part.subgraphs.size() + binning - 1) / binning);
}

}  // namespace

std::string slicePath(const std::string& dir, PartitionId p,
                      std::uint32_t pack_index, std::uint32_t bin_index) {
  return dir + "/part" + std::to_string(p) + "/slice_p" +
         std::to_string(pack_index) + "_b" + std::to_string(bin_index) +
         ".bin";
}

Status writeGofsDataset(const std::string& dir, const std::string& name,
                        const PartitionedGraph& pg,
                        const TimeSeriesCollection& collection,
                        const GofsOptions& options) {
  if (options.temporal_packing == 0 || options.subgraph_binning == 0) {
    return Status::invalidArgument("packing and binning must be positive");
  }
  if (collection.templatePtr().get() != &pg.graphTemplate() &&
      !(collection.graphTemplate() == pg.graphTemplate())) {
    return Status::invalidArgument(
        "collection and partitioned graph use different templates");
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::ioError("cannot create dataset dir: " + dir);
  }

  const GraphTemplate& tmpl = pg.graphTemplate();
  const auto num_instances =
      static_cast<std::uint32_t>(collection.numInstances());

  // manifest.bin
  {
    BinaryWriter w;
    w.writeU32(kManifestMagic);
    w.writeU8(kFormatVersion);
    w.writeString(name);
    w.writeI64(collection.t0());
    w.writeI64(collection.delta());
    w.writeU32(num_instances);
    w.writeU32(pg.numPartitions());
    w.writeU32(options.temporal_packing);
    w.writeU32(options.subgraph_binning);
    TSG_RETURN_IF_ERROR(writeFileBytes(dir + "/manifest.bin", w.buffer()));
  }
  // template.bin
  {
    BinaryWriter w;
    tmpl.serialize(w);
    TSG_RETURN_IF_ERROR(writeFileBytes(dir + "/template.bin", w.buffer()));
  }
  // assignment.bin
  {
    BinaryWriter w;
    w.writeU32(pg.numPartitions());
    w.writePodVector(pg.assignment());
    TSG_RETURN_IF_ERROR(writeFileBytes(dir + "/assignment.bin", w.buffer()));
  }

  // Slices.
  const std::uint32_t packing = options.temporal_packing;
  const std::uint32_t binning = options.subgraph_binning;
  const std::uint32_t num_packs = (num_instances + packing - 1) / packing;

  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    const Partition& part = pg.partition(p);
    std::filesystem::create_directories(dir + "/part" + std::to_string(p), ec);
    if (ec) {
      return Status::ioError("cannot create partition dir");
    }
    const std::uint32_t bins = numBins(part, binning);
    // Per-subgraph owned-edge lists, reused across packs.
    std::vector<std::vector<EdgeIndex>> owned_edges(part.subgraphs.size());
    for (std::size_t s = 0; s < part.subgraphs.size(); ++s) {
      owned_edges[s] = subgraphOwnedEdges(tmpl, part.subgraphs[s]);
    }

    for (std::uint32_t pack = 0; pack < num_packs; ++pack) {
      const std::uint32_t t_begin = pack * packing;
      const std::uint32_t t_end = std::min(num_instances, t_begin + packing);
      for (std::uint32_t bin = 0; bin < bins; ++bin) {
        const std::size_t sg_begin = static_cast<std::size_t>(bin) * binning;
        const std::size_t sg_end =
            std::min(part.subgraphs.size(), sg_begin + binning);

        BinaryWriter w;
        w.writeU32(kSliceMagic);
        w.writeU8(kFormatVersion);
        w.writeU32(p);
        w.writeU32(pack);
        w.writeU32(bin);
        w.writeU32(t_begin);
        w.writeU32(t_end - t_begin);
        w.writeVarint(sg_end - sg_begin);
        for (std::size_t s = sg_begin; s < sg_end; ++s) {
          w.writeU32(part.subgraphs[s].id);
        }
        for (std::uint32_t t = t_begin; t < t_end; ++t) {
          const GraphInstance& inst =
              collection.instance(static_cast<Timestep>(t));
          w.writeI32(inst.timestep());
          w.writeI64(inst.timestamp());
          for (std::size_t s = sg_begin; s < sg_end; ++s) {
            const Subgraph& sg = part.subgraphs[s];
            w.writeVarint(inst.numVertexAttrs());
            for (std::size_t a = 0; a < inst.numVertexAttrs(); ++a) {
              inst.vertexCol(a).gather(sg.vertices).serialize(w);
            }
            w.writeVarint(inst.numEdgeAttrs());
            for (std::size_t a = 0; a < inst.numEdgeAttrs(); ++a) {
              inst.edgeCol(a).gather(owned_edges[s]).serialize(w);
            }
          }
        }
        TSG_RETURN_IF_ERROR(
            writeFileBytes(slicePath(dir, p, pack, bin), w.buffer()));
      }
    }
  }
  return Status::ok();
}

Result<GofsDataset> GofsDataset::open(const std::string& dir) {
  GofsDataset ds;
  ds.dir_ = dir;

  // manifest.bin
  {
    auto bytes = readFileBytes(dir + "/manifest.bin");
    if (!bytes.isOk()) {
      return bytes.status();
    }
    BinaryReader r(bytes.value());
    std::uint32_t magic = 0;
    TSG_RETURN_IF_ERROR(r.readU32(magic));
    if (magic != kManifestMagic) {
      return Status::corruptData("bad manifest magic");
    }
    std::uint8_t version = 0;
    TSG_RETURN_IF_ERROR(r.readU8(version));
    if (version != kFormatVersion) {
      return Status::corruptData("unsupported manifest version");
    }
    TSG_RETURN_IF_ERROR(r.readString(ds.manifest_.name));
    TSG_RETURN_IF_ERROR(r.readI64(ds.manifest_.t0));
    TSG_RETURN_IF_ERROR(r.readI64(ds.manifest_.delta));
    TSG_RETURN_IF_ERROR(r.readU32(ds.manifest_.num_instances));
    TSG_RETURN_IF_ERROR(r.readU32(ds.manifest_.num_partitions));
    TSG_RETURN_IF_ERROR(r.readU32(ds.manifest_.options.temporal_packing));
    TSG_RETURN_IF_ERROR(r.readU32(ds.manifest_.options.subgraph_binning));
    if (ds.manifest_.options.temporal_packing == 0 ||
        ds.manifest_.options.subgraph_binning == 0) {
      return Status::corruptData("zero packing/binning in manifest");
    }
  }
  // template.bin
  GraphTemplatePtr tmpl;
  {
    auto bytes = readFileBytes(dir + "/template.bin");
    if (!bytes.isOk()) {
      return bytes.status();
    }
    BinaryReader r(bytes.value());
    auto parsed = GraphTemplate::deserialize(r);
    if (!parsed.isOk()) {
      return parsed.status();
    }
    tmpl = std::make_shared<GraphTemplate>(std::move(parsed).value());
  }
  // assignment.bin
  {
    auto bytes = readFileBytes(dir + "/assignment.bin");
    if (!bytes.isOk()) {
      return bytes.status();
    }
    BinaryReader r(bytes.value());
    std::uint32_t k = 0;
    TSG_RETURN_IF_ERROR(r.readU32(k));
    if (k != ds.manifest_.num_partitions) {
      return Status::corruptData("assignment/manifest partition mismatch");
    }
    PartitionAssignment assignment;
    TSG_RETURN_IF_ERROR(r.readPodVector(assignment));
    auto pg = PartitionedGraph::build(tmpl, assignment, k);
    if (!pg.isOk()) {
      return pg.status();
    }
    ds.pg_ = std::make_shared<PartitionedGraph>(std::move(pg).value());
  }
  return ds;
}

Result<GofsDataset::StorageStats> GofsDataset::storageStats() const {
  StorageStats stats;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir_, ec)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().starts_with("slice_")) {
      ++stats.slice_files;
      stats.slice_bytes += entry.file_size();
    }
  }
  if (ec) {
    return Status::ioError("cannot walk dataset dir: " + dir_);
  }
  return stats;
}

namespace {

// Estimated heap footprint of one attribute column, for the
// gofs.resident_bytes gauge. Exact for fixed-width types; strings count
// payload bytes plus the string object itself (SBO storage is part of the
// object, so short strings are not double-counted).
std::int64_t columnBytes(const AttributeColumn& col) {
  switch (col.type()) {
    case AttrType::kInt64:
      return static_cast<std::int64_t>(col.asInt64().size() *
                                       sizeof(std::int64_t));
    case AttrType::kDouble:
      return static_cast<std::int64_t>(col.asDouble().size() * sizeof(double));
    case AttrType::kBool:
      return static_cast<std::int64_t>(col.asBool().size());
    case AttrType::kString: {
      std::int64_t bytes = 0;
      for (const auto& s : col.asString()) {
        bytes += static_cast<std::int64_t>(sizeof(std::string) + s.capacity());
      }
      return bytes;
    }
    case AttrType::kStringList: {
      std::int64_t bytes = 0;
      for (const auto& list : col.asStringList()) {
        bytes += static_cast<std::int64_t>(sizeof(list));
        for (const auto& s : list) {
          bytes +=
              static_cast<std::int64_t>(sizeof(std::string) + s.capacity());
        }
      }
      return bytes;
    }
  }
  return 0;
}

std::int64_t instanceBytes(const PartitionInstanceData& data) {
  std::int64_t bytes = 0;
  for (const auto& col : data.vertex_cols) {
    bytes += columnBytes(col);
  }
  for (const auto& col : data.edge_cols) {
    bytes += columnBytes(col);
  }
  return bytes;
}

// Lazy slice-backed provider. Caches one pack per partition; asking for a
// timestep outside the cached pack loads (and meters) the new pack.
class GofsInstanceProvider final : public InstanceProvider {
 public:
  GofsInstanceProvider(std::string dir, GofsManifest manifest,
                       std::shared_ptr<PartitionedGraph> pg)
      : dir_(std::move(dir)),
        manifest_(std::move(manifest)),
        pg_(std::move(pg)),
        states_(pg_->numPartitions()) {}

  [[nodiscard]] std::size_t numInstances() const override {
    return manifest_.num_instances;
  }
  [[nodiscard]] std::int64_t t0() const override { return manifest_.t0; }
  [[nodiscard]] std::int64_t delta() const override { return manifest_.delta; }

  const PartitionInstanceData& instanceFor(PartitionId p,
                                           Timestep t) override {
    TSG_CHECK(p < states_.size());
    TSG_CHECK(t >= 0 &&
              static_cast<std::uint32_t>(t) < manifest_.num_instances);
    auto& state = states_[p];
    const std::uint32_t packing = manifest_.options.temporal_packing;
    const auto pack = static_cast<std::uint32_t>(t) / packing;
    if (state.cached_pack != static_cast<std::int64_t>(pack)) {
      // Transient-load fault site: each injected kFailLoad consumes one
      // plan entry and costs one backoff'd retry; when the plan runs dry
      // the load proceeds normally.
      auto& inj = fault::FaultInjector::global();
      if (inj.armed()) [[unlikely]] {
        std::int64_t backoff_us = 50;
        while (inj.fire(fault::Site::kSliceLoad, p, t,
                        fault::Action::kFailLoad)) {
          MetricsRegistry::global()
              .counter("gofs.load_retries", static_cast<std::int32_t>(p))
              .increment();
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us *= 2;
        }
      }
      TraceSpan span("gofs", "gofs.load_pack", "partition", p, "pack",
                     static_cast<std::int64_t>(pack));
      const std::int64_t load_ns_before = state.load_ns;
      {
        ScopedCpuTimer timer(state.load_ns);
        loadPack(p, pack, state);
      }
      state.cached_pack = pack;
      auto& registry = MetricsRegistry::global();
      registry.counter("gofs.packs_loaded", static_cast<std::int32_t>(p))
          .increment();
      registry.counter("gofs.load_ns", static_cast<std::int32_t>(p))
          .add(static_cast<std::uint64_t>(state.load_ns - load_ns_before));
      // Residency levels for the telemetry sampler: how many timestep
      // slices this partition holds in memory and what they weigh. One
      // gauge write per pack load — nowhere near the hot path.
      std::int64_t resident_bytes = 0;
      for (const auto& inst : state.pack_data) {
        resident_bytes += instanceBytes(inst);
      }
      registry.gauge("gofs.resident_slices", static_cast<std::int32_t>(p))
          .set(static_cast<std::int64_t>(state.pack_data.size()));
      registry.gauge("gofs.resident_bytes", static_cast<std::int32_t>(p))
          .set(resident_bytes);
      if (prof::armed()) [[unlikely]] {
        prof::hooks().resident_slice(
            p, t, static_cast<std::uint64_t>(resident_bytes));
      }
    }
    const std::size_t offset = static_cast<std::uint32_t>(t) % packing;
    TSG_CHECK(offset < state.pack_data.size());
    return state.pack_data[offset];
  }

  std::int64_t takeLoadNs(PartitionId p) override {
    TSG_CHECK(p < states_.size());
    return std::exchange(states_[p].load_ns, 0);
  }

 private:
  struct PartitionState {
    std::int64_t cached_pack = -1;
    std::vector<PartitionInstanceData> pack_data;
    std::int64_t load_ns = 0;
    // Scatter maps, built on first load: partition-local positions of each
    // subgraph's vertices and owned edges.
    bool maps_ready = false;
    std::vector<std::vector<std::uint32_t>> sg_vertex_pos;
    std::vector<std::vector<std::uint32_t>> sg_edge_pos;
  };

  void buildScatterMaps(PartitionId p, PartitionState& state) {
    const Partition& part = pg_->partition(p);
    const GraphTemplate& tmpl = pg_->graphTemplate();
    state.sg_vertex_pos.resize(part.subgraphs.size());
    state.sg_edge_pos.resize(part.subgraphs.size());
    for (std::size_t s = 0; s < part.subgraphs.size(); ++s) {
      const Subgraph& sg = part.subgraphs[s];
      auto& vpos = state.sg_vertex_pos[s];
      vpos.reserve(sg.vertices.size());
      for (const VertexIndex v : sg.vertices) {
        vpos.push_back(pg_->localIndexOfVertex(v));
      }
      auto& epos = state.sg_edge_pos[s];
      for (const EdgeIndex e : subgraphOwnedEdges(tmpl, sg)) {
        epos.push_back(pg_->localIndexOfEdge(e));
      }
    }
    state.maps_ready = true;
  }

  void loadPack(PartitionId p, std::uint32_t pack, PartitionState& state) {
    if (!state.maps_ready) {
      buildScatterMaps(p, state);
    }
    const Partition& part = pg_->partition(p);
    const GraphTemplate& tmpl = pg_->graphTemplate();
    const std::uint32_t packing = manifest_.options.temporal_packing;
    const std::uint32_t binning = manifest_.options.subgraph_binning;
    const std::uint32_t t_begin = pack * packing;
    const std::uint32_t t_end =
        std::min(manifest_.num_instances, t_begin + packing);
    const std::uint32_t steps = t_end - t_begin;

    // Fresh, fully allocated partition columns for every step in the pack.
    state.pack_data.assign(steps, PartitionInstanceData{});
    for (std::uint32_t i = 0; i < steps; ++i) {
      auto& data = state.pack_data[i];
      data.timestep = static_cast<Timestep>(t_begin + i);
      data.timestamp =
          manifest_.t0 + static_cast<std::int64_t>(t_begin + i) *
                             manifest_.delta;
      for (const auto& def : tmpl.vertexSchema().defs()) {
        data.vertex_cols.push_back(
            AttributeColumn::make(def.type, part.vertices.size()));
      }
      for (const auto& def : tmpl.edgeSchema().defs()) {
        data.edge_cols.push_back(
            AttributeColumn::make(def.type, part.edges.size()));
      }
    }

    const std::uint32_t bins = numBins(part, binning);
    for (std::uint32_t bin = 0; bin < bins; ++bin) {
      const Status s = loadSlice(p, pack, bin, t_begin, steps, state);
      TSG_CHECK_MSG(s.isOk(), s.toString());
    }
  }

  Status loadSlice(PartitionId p, std::uint32_t pack, std::uint32_t bin,
                   std::uint32_t t_begin, std::uint32_t steps,
                   PartitionState& state) {
    const std::string path = slicePath(dir_, p, pack, bin);
    auto bytes = readFileBytes(path);
    if (!bytes.isOk()) {
      return bytes.status();
    }
    BinaryReader r(bytes.value());
    std::uint32_t magic = 0;
    TSG_RETURN_IF_ERROR(r.readU32(magic));
    if (magic != kSliceMagic) {
      return Status::corruptData("bad slice magic: " + path);
    }
    std::uint8_t version = 0;
    TSG_RETURN_IF_ERROR(r.readU8(version));
    if (version != kFormatVersion) {
      return Status::corruptData("unsupported slice version: " + path);
    }
    std::uint32_t file_p = 0;
    std::uint32_t file_pack = 0;
    std::uint32_t file_bin = 0;
    std::uint32_t file_t_begin = 0;
    std::uint32_t file_steps = 0;
    TSG_RETURN_IF_ERROR(r.readU32(file_p));
    TSG_RETURN_IF_ERROR(r.readU32(file_pack));
    TSG_RETURN_IF_ERROR(r.readU32(file_bin));
    TSG_RETURN_IF_ERROR(r.readU32(file_t_begin));
    TSG_RETURN_IF_ERROR(r.readU32(file_steps));
    if (file_p != p || file_pack != pack || file_bin != bin ||
        file_t_begin != t_begin || file_steps != steps) {
      return Status::corruptData("slice header mismatch: " + path);
    }
    std::uint64_t sg_count = 0;
    TSG_RETURN_IF_ERROR(r.readVarint(sg_count));
    const std::size_t sg_begin =
        static_cast<std::size_t>(bin) * manifest_.options.subgraph_binning;
    for (std::uint64_t s = 0; s < sg_count; ++s) {
      std::uint32_t sg_id = 0;
      TSG_RETURN_IF_ERROR(r.readU32(sg_id));
      const Partition& part = pg_->partition(p);
      if (sg_begin + s >= part.subgraphs.size() ||
          part.subgraphs[sg_begin + s].id != sg_id) {
        return Status::corruptData("slice subgraph id mismatch: " + path);
      }
    }
    for (std::uint32_t i = 0; i < steps; ++i) {
      auto& data = state.pack_data[i];
      Timestep ts = 0;
      std::int64_t stamp = 0;
      TSG_RETURN_IF_ERROR(r.readI32(ts));
      TSG_RETURN_IF_ERROR(r.readI64(stamp));
      if (ts != data.timestep) {
        return Status::corruptData("slice timestep mismatch: " + path);
      }
      for (std::uint64_t s = 0; s < sg_count; ++s) {
        const std::size_t sg_index = sg_begin + s;
        std::uint64_t num_vattrs = 0;
        TSG_RETURN_IF_ERROR(r.readVarint(num_vattrs));
        if (num_vattrs != data.vertex_cols.size()) {
          return Status::corruptData("slice vertex attr count mismatch");
        }
        for (std::uint64_t a = 0; a < num_vattrs; ++a) {
          auto col = AttributeColumn::deserialize(r);
          if (!col.isOk()) {
            return col.status();
          }
          data.vertex_cols[a].scatterFrom(col.value(),
                                          state.sg_vertex_pos[sg_index]);
        }
        std::uint64_t num_eattrs = 0;
        TSG_RETURN_IF_ERROR(r.readVarint(num_eattrs));
        if (num_eattrs != data.edge_cols.size()) {
          return Status::corruptData("slice edge attr count mismatch");
        }
        for (std::uint64_t a = 0; a < num_eattrs; ++a) {
          auto col = AttributeColumn::deserialize(r);
          if (!col.isOk()) {
            return col.status();
          }
          data.edge_cols[a].scatterFrom(col.value(),
                                        state.sg_edge_pos[sg_index]);
        }
      }
    }
    if (!r.atEnd()) {
      return Status::corruptData("trailing bytes in slice: " + path);
    }
    return Status::ok();
  }

  std::string dir_;
  GofsManifest manifest_;
  std::shared_ptr<PartitionedGraph> pg_;
  std::vector<PartitionState> states_;
};

}  // namespace

std::unique_ptr<InstanceProvider> GofsDataset::makeProvider() const {
  return std::make_unique<GofsInstanceProvider>(dir_, manifest_, pg_);
}

}  // namespace tsg
