// AttributionTable — the cost-attribution profiler's output: who consumed
// what, at subgraph granularity, per timestep.
//
// The PR-3 analyzer names the straggler *partition*; this table explains it:
// each (timestep row, subgraph) cell accounts the compute time, compute
// invocations, and outbound message traffic that subgraph caused, plus the
// resident attribute bytes its slice of the loaded instance occupies. Run
// totals add inbound traffic per subgraph and the scheduler blame series
// (barrier/ready wait and steal victimhood per partition).
//
// Conservation invariant (asserted in tests/test_profile.cc): summing
// `computes`, `msgs_out` and `bytes_out` over a partition's subgraphs
// reproduces the engine meters exactly — the same values RunStats records
// per superstep and the MetricsRegistry accumulates per partition — because
// the profiler hooks sit adjacent to the very increments that feed those
// meters. `compute_ns` is a timed-span measurement (a subset of CPU busy
// time), so it is comparable but not bit-identical to busy_ns.
//
// Row layout: `num_rows = num_timesteps + 1`; row `t - first_timestep`
// holds timestep t, and the final row holds the Merge BSP of eventually
// dependent runs (whose records are stamped timestep `first + count`,
// matching RunStats).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "graph/types.h"

namespace tsg {

inline constexpr std::int32_t kAttributionSchemaVersion = 1;

// One (timestep, subgraph) accounting cell.
struct SubgraphCosts {
  std::int64_t compute_ns = 0;      // timed spans around program compute
  std::uint64_t computes = 0;       // compute invocations (supersteps run)
  std::uint64_t msgs_out = 0;       // messages this subgraph sent
  std::uint64_t bytes_out = 0;
  std::uint64_t resident_bytes = 0; // attribute bytes of its loaded slice

  SubgraphCosts& operator+=(const SubgraphCosts& o) {
    compute_ns += o.compute_ns;
    computes += o.computes;
    msgs_out += o.msgs_out;
    bytes_out += o.bytes_out;
    resident_bytes = resident_bytes > o.resident_bytes ? resident_bytes
                                                       : o.resident_bytes;
    return *this;
  }
};

// Static shape of one subgraph (copied from the PartitionedGraph at
// beginRun so reports and the advisor need no graph in hand).
struct SubgraphMeta {
  SubgraphId id = kInvalidSubgraph;
  PartitionId partition = kInvalidPartition;
  std::uint64_t vertices = 0;
  std::uint64_t local_edges = 0;
  std::uint64_t remote_edges = 0;
};

// One heavy hitter from the space-saving sketch. `weight` is the sketch's
// upper-bound count (sampled values scaled by the sampling period);
// `weight - error` is the guaranteed lower bound.
struct HotVertex {
  std::uint64_t vertex = 0;  // template vertex index
  PartitionId partition = kInvalidPartition;
  std::uint64_t weight = 0;
  std::uint64_t error = 0;
};

struct AttributionTable {
  std::int32_t schema_version = kAttributionSchemaVersion;
  std::uint32_t num_partitions = 0;
  Timestep first_timestep = 0;
  std::int32_t num_rows = 0;
  std::uint32_t sample_every = 1;  // vertex sampling period used

  std::vector<SubgraphMeta> subgraphs;           // indexed by global id
  std::vector<std::vector<SubgraphCosts>> rows;  // [row][subgraph id]

  // Run totals, per subgraph: inbound traffic charged at send time to the
  // destination (covers all three engine families' send paths).
  std::vector<std::uint64_t> msgs_in;
  std::vector<std::uint64_t> bytes_in;

  // Scheduler blame, per partition: BSP barrier wait charged to the round's
  // straggler, async ready-wait charged to the task that ended the gap, and
  // how often each partition's tasks were stolen from it.
  std::vector<std::int64_t> sched_wait_caused_ns;
  std::vector<std::uint64_t> steal_victims;

  // Heavy hitters over per-vertex compute-ns and message fan-out (vertex-
  // centric engines only; the subgraph-centric engine's unit of heat is the
  // subgraph row itself).
  std::vector<HotVertex> hot_compute;
  std::vector<HotVertex> hot_fanout;
  std::uint64_t sketch_weight_compute = 0;  // total sketch weight W
  std::uint64_t sketch_weight_fanout = 0;

  [[nodiscard]] bool empty() const { return subgraphs.empty(); }
  [[nodiscard]] std::size_t numSubgraphs() const { return subgraphs.size(); }

  // Per-subgraph totals across all rows (resident_bytes is the max, not the
  // sum — it is an occupancy level, not a flow).
  [[nodiscard]] std::vector<SubgraphCosts> subgraphTotals() const;
  // Per-partition compute-ns totals (folding subgraphTotals by owner).
  [[nodiscard]] std::vector<std::int64_t> partitionComputeNs() const;

  // Gini coefficient of per-subgraph compute within one row: 0 = perfectly
  // even, ->1 = one subgraph owns everything. The per-timestep skew series
  // `tsgcli analyze --attrib` charts.
  [[nodiscard]] double rowGini(std::int32_t row) const;
};

// Gini coefficient of a non-negative series (0 when empty or all-zero).
[[nodiscard]] double giniCoefficient(const std::vector<std::int64_t>& values);

// Writes the table as one JSON object value (the caller emits the
// surrounding key). Row cells are compact fixed-order arrays:
// [compute_ns, computes, msgs_out, bytes_out, resident_bytes].
void attributionToJson(JsonWriter& w, const AttributionTable& table);

// Parses what attributionToJson wrote (the "attribution" member of a
// RunStats document).
Result<AttributionTable> attributionFromJson(const JsonValue& v);

}  // namespace tsg
