#include "metrics/report.h"

#include <sstream>

#include "common/json.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace tsg {

std::string renderTimestepSeries(const RunStats& stats,
                                 const std::string& label,
                                 const NetworkModel& net) {
  TextTable table({"timestep", "modelled_ms"});
  const std::int32_t timesteps = stats.numTimesteps();
  for (Timestep t = 0; t < timesteps; ++t) {
    const std::int64_t ns = stats.modelledTimestepNs(t, net);
    if (ns == 0) {
      continue;  // timestep not executed (e.g. early While-mode stop)
    }
    table.addRow({std::to_string(t), TextTable::fmtDouble(nsToMs(ns), 3)});
  }
  std::ostringstream out;
  out << "== per-timestep time: " << label << " ==\n" << table.render();
  return out.str();
}

std::string renderCounterSeries(const RunStats& stats,
                                const std::string& counter,
                                const std::string& label) {
  std::ostringstream out;
  out << "== counter '" << counter << "': " << label << " ==\n";
  const auto it = stats.counters().find(counter);
  if (it == stats.counters().end()) {
    out << "(no data)\n";
    return out.str();
  }
  std::vector<std::string> header{"timestep"};
  for (PartitionId p = 0; p < stats.numPartitions(); ++p) {
    header.push_back("part" + std::to_string(p));
  }
  header.push_back("total");
  TextTable table(std::move(header));
  for (std::size_t t = 0; t < it->second.size(); ++t) {
    const auto& row = it->second[t];
    std::vector<std::string> cells{std::to_string(t)};
    std::uint64_t total = 0;
    for (const auto v : row) {
      cells.push_back(std::to_string(v));
      total += v;
    }
    cells.push_back(std::to_string(total));
    table.addRow(std::move(cells));
  }
  out << table.render();
  return out.str();
}

std::string renderUtilization(const RunStats& stats,
                              const std::string& label) {
  TextTable table(
      {"partition", "compute", "partition_oh", "sync_oh", "load"});
  const auto util = stats.partitionUtilization();
  for (PartitionId p = 0; p < util.size(); ++p) {
    const auto& u = util[p];
    const auto total = static_cast<double>(u.totalNs());
    auto pct = [&](std::int64_t ns) {
      return total == 0.0
                 ? std::string("0%")
                 : TextTable::fmtPercent(static_cast<double>(ns) / total, 1);
    };
    table.addRow({std::to_string(p), pct(u.compute_ns), pct(u.send_ns),
                  pct(u.sync_ns), pct(u.load_ns)});
  }
  std::ostringstream out;
  out << "== utilization split: " << label << " ==\n" << table.render();
  return out.str();
}

std::string summarizeRun(const RunStats& stats, const std::string& label,
                         const NetworkModel& net) {
  std::ostringstream out;
  out << label << ": wall=" << TextTable::fmtDouble(
             nsToSec(stats.wallClockNs()), 3)
      << "s modelled=" << TextTable::fmtDouble(
             nsToSec(stats.modelledParallelNs(net)), 3)
      << "s supersteps=" << stats.totalSupersteps()
      << " messages=" << stats.totalMessages()
      << " bytes=" << stats.totalBytes()
      << " xpart_messages=" << stats.totalCrossPartitionMessages()
      << " xpart_bytes=" << stats.totalCrossPartitionBytes();
  return out.str();
}

std::string runStatsToJson(const RunStats& stats, const std::string& label,
                           const NetworkModel& net) {
  JsonWriter json;
  json.beginObject();
  json.kv("schema_version", kRunStatsSchemaVersion);
  json.kv("label", label);
  json.kv("num_partitions", stats.numPartitions());
  json.kv("num_timesteps", stats.numTimesteps());
  json.kv("wall_clock_ns", stats.wallClockNs());
  json.kv("modelled_parallel_ns", stats.modelledParallelNs(net));

  json.key("totals");
  json.beginObject();
  json.kv("supersteps", stats.totalSupersteps());
  json.kv("delivered_messages", stats.totalMessages());
  json.kv("delivered_bytes", stats.totalBytes());
  json.kv("cross_partition_messages", stats.totalCrossPartitionMessages());
  json.kv("cross_partition_bytes", stats.totalCrossPartitionBytes());
  json.endObject();

  // Fig. 6 series: modelled time per executed timestep.
  json.key("timesteps");
  json.beginArray();
  const std::int32_t timesteps = stats.numTimesteps();
  for (Timestep t = 0; t < timesteps; ++t) {
    const std::int64_t ns = stats.modelledTimestepNs(t, net);
    if (ns == 0) {
      continue;  // timestep not executed (e.g. early While-mode stop)
    }
    json.beginObject();
    json.kv("timestep", t);
    json.kv("modelled_ns", ns);
    json.endObject();
  }
  json.endArray();

  // Fig. 7b/7d split, in absolute nanoseconds (consumers derive percents).
  json.key("utilization");
  json.beginArray();
  const auto util = stats.partitionUtilization();
  for (PartitionId p = 0; p < util.size(); ++p) {
    const auto& u = util[p];
    json.beginObject();
    json.kv("partition", p);
    json.kv("compute_ns", u.compute_ns);
    json.kv("send_ns", u.send_ns);
    json.kv("sync_ns", u.sync_ns);
    json.kv("load_ns", u.load_ns);
    json.endObject();
  }
  json.endArray();

  json.key("supersteps");
  json.beginArray();
  for (const auto& rec : stats.supersteps()) {
    json.beginObject();
    json.kv("timestep", rec.timestep);
    json.kv("superstep", rec.superstep);
    json.kv("is_merge_phase", rec.is_merge_phase);
    json.kv("delivered_messages", rec.delivered_messages);
    json.kv("delivered_bytes", rec.delivered_bytes);
    json.kv("cross_partition_messages", rec.cross_partition_messages);
    json.kv("cross_partition_bytes", rec.cross_partition_bytes);
    json.key("parts");
    json.beginArray();
    for (const auto& ps : rec.parts) {
      json.beginObject();
      json.kv("compute_ns", ps.compute_ns);
      json.kv("send_ns", ps.send_ns);
      json.kv("sync_ns", ps.sync_ns);
      json.kv("load_ns", ps.load_ns);
      json.kv("messages_sent", ps.messages_sent);
      json.kv("bytes_sent", ps.bytes_sent);
      json.kv("subgraphs_computed", ps.subgraphs_computed);
      json.endObject();
    }
    json.endArray();
    json.endObject();
  }
  json.endArray();

  // User counters: counters[name][timestep][partition].
  json.key("counters");
  json.beginObject();
  for (const auto& [name, rows] : stats.counters()) {
    json.key(name);
    json.beginArray();
    for (const auto& row : rows) {
      json.beginArray();
      for (const auto v : row) {
        json.value(v);
      }
      json.endArray();
    }
    json.endArray();
  }
  json.endObject();

  // MetricsRegistry delta attached by the engine (empty for stats built by
  // hand or by engines predating the registry).
  json.key("metrics");
  json.beginArray();
  for (const auto& point : stats.metrics()) {
    json.beginObject();
    json.kv("name", point.name);
    if (point.partition != MetricsRegistry::kNoPartition) {
      json.kv("partition", point.partition);
    }
    json.kv("kind", point.is_gauge ? "gauge" : "counter");
    json.kv("value", point.value);
    json.endObject();
  }
  json.endArray();

  // Histogram deltas (superstep phase durations, batch sizes). Buckets are
  // exported sparsely as [bucket_index, count] pairs; quantiles are resolved
  // here so consumers without the bucket math still get p50/p90/p99.
  json.key("histograms");
  json.beginArray();
  for (const auto& h : stats.histograms()) {
    json.beginObject();
    json.kv("name", h.name);
    if (h.partition != MetricsRegistry::kNoPartition) {
      json.kv("partition", h.partition);
    }
    json.kv("count", h.count);
    json.kv("sum", h.sum);
    json.kv("max", h.max);
    json.kv("p50", h.quantile(0.50));
    json.kv("p90", h.quantile(0.90));
    json.kv("p99", h.quantile(0.99));
    json.key("buckets");
    json.beginArray();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) {
        continue;
      }
      json.beginArray();
      json.value(static_cast<std::uint64_t>(i));
      json.value(h.buckets[i]);
      json.endArray();
    }
    json.endArray();
    json.endObject();
  }
  json.endArray();

  // Cost-attribution table (present only when the run was profiled).
  if (stats.hasAttribution()) {
    json.key("attribution");
    attributionToJson(json, stats.attribution());
  }

  json.endObject();
  return json.take();
}

namespace {

std::uint64_t u64Or(const JsonValue& obj, std::string_view key,
                    std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      obj.intOr(key, static_cast<std::int64_t>(fallback)));
}

}  // namespace

Result<LoadedRunStats> runStatsFromJson(std::string_view text) {
  auto parsed = JsonValue::parse(text);
  if (!parsed.isOk()) {
    return Status::corruptData("run stats JSON: " +
                               parsed.status().message());
  }
  const JsonValue& doc = parsed.value();
  if (!doc.isObject()) {
    return Status::corruptData("run stats JSON: top level is not an object");
  }
  const JsonValue* version = doc.find("schema_version");
  if (version == nullptr || !version->isNumber()) {
    return Status::corruptData(
        "run stats JSON has no \"schema_version\" field (produced by a "
        "pre-versioning build?)");
  }
  if (version->intValue() != kRunStatsSchemaVersion) {
    return Status::corruptData(
        "run stats schema_version " + std::to_string(version->intValue()) +
        " is not supported (this build reads version " +
        std::to_string(kRunStatsSchemaVersion) + ")");
  }

  LoadedRunStats loaded;
  loaded.label = doc.stringOr("label", "");
  loaded.modelled_parallel_ns = doc.intOr("modelled_parallel_ns", 0);
  loaded.stats =
      RunStats(static_cast<std::uint32_t>(doc.intOr("num_partitions", 0)));
  loaded.stats.setWallClockNs(doc.intOr("wall_clock_ns", 0));

  const JsonValue* supersteps = doc.find("supersteps");
  if (supersteps == nullptr || !supersteps->isArray()) {
    return Status::corruptData("run stats JSON: missing \"supersteps\" array");
  }
  for (const JsonValue& rec_json : supersteps->array()) {
    if (!rec_json.isObject()) {
      return Status::corruptData(
          "run stats JSON: superstep entry is not an object");
    }
    SuperstepRecord rec;
    rec.timestep = static_cast<Timestep>(rec_json.intOr("timestep", 0));
    rec.superstep =
        static_cast<std::int32_t>(rec_json.intOr("superstep", 0));
    const JsonValue* merge = rec_json.find("is_merge_phase");
    rec.is_merge_phase = merge != nullptr && merge->isBool() &&
                         merge->boolValue();
    rec.delivered_messages = u64Or(rec_json, "delivered_messages", 0);
    rec.delivered_bytes = u64Or(rec_json, "delivered_bytes", 0);
    rec.cross_partition_messages =
        u64Or(rec_json, "cross_partition_messages", 0);
    rec.cross_partition_bytes = u64Or(rec_json, "cross_partition_bytes", 0);
    const JsonValue* parts = rec_json.find("parts");
    if (parts != nullptr && parts->isArray()) {
      for (const JsonValue& ps_json : parts->array()) {
        PartitionSuperstepStats ps;
        ps.compute_ns = ps_json.intOr("compute_ns", 0);
        ps.send_ns = ps_json.intOr("send_ns", 0);
        ps.sync_ns = ps_json.intOr("sync_ns", 0);
        ps.load_ns = ps_json.intOr("load_ns", 0);
        ps.messages_sent = u64Or(ps_json, "messages_sent", 0);
        ps.bytes_sent = u64Or(ps_json, "bytes_sent", 0);
        ps.subgraphs_computed = u64Or(ps_json, "subgraphs_computed", 0);
        rec.parts.push_back(ps);
      }
    }
    loaded.stats.addSuperstep(std::move(rec));
  }

  // counters[name][timestep][partition] — needed so counterTotal() and the
  // counter tables keep working on re-loaded runs.
  const JsonValue* counters = doc.find("counters");
  if (counters != nullptr && counters->isObject()) {
    for (const auto& [name, rows] : counters->object()) {
      if (!rows.isArray()) {
        continue;
      }
      for (std::size_t t = 0; t < rows.array().size(); ++t) {
        const JsonValue& row = rows.array()[t];
        if (!row.isArray()) {
          continue;
        }
        for (std::size_t p = 0; p < row.array().size(); ++p) {
          const JsonValue& v = row.array()[p];
          if (v.isNumber() && v.intValue() != 0) {
            loaded.stats.addCounter(
                name, static_cast<Timestep>(t), static_cast<PartitionId>(p),
                static_cast<std::uint64_t>(v.intValue()));
          }
        }
      }
    }
  }

  // Registry delta: needed so compare can report scheduler counters
  // (cluster.barrier_wait_ns, engine.ready_wait_ns, steals, skips) from
  // re-loaded runs.
  const JsonValue* metrics = doc.find("metrics");
  if (metrics != nullptr && metrics->isArray()) {
    MetricsRegistry::Snapshot snap;
    for (const JsonValue& m : metrics->array()) {
      if (!m.isObject()) {
        continue;
      }
      MetricsRegistry::Point point;
      point.name = m.stringOr("name", "");
      point.partition = static_cast<std::int32_t>(
          m.intOr("partition", MetricsRegistry::kNoPartition));
      point.is_gauge = m.stringOr("kind", "counter") == "gauge";
      point.value = m.intOr("value", 0);
      snap.push_back(std::move(point));
    }
    loaded.stats.setMetrics(std::move(snap));
  }

  // Histogram deltas: buckets come back from the sparse [index, count]
  // pairs, so quantile() on a re-loaded run answers the same p50/p90/p99
  // the writer resolved (compare and analyze read those).
  const JsonValue* histograms = doc.find("histograms");
  if (histograms != nullptr && histograms->isArray()) {
    MetricsRegistry::HistogramSnapshots hists;
    for (const JsonValue& h : histograms->array()) {
      if (!h.isObject()) {
        continue;
      }
      MetricsRegistry::HistogramSnapshot snap;
      snap.name = h.stringOr("name", "");
      snap.partition = static_cast<std::int32_t>(
          h.intOr("partition", MetricsRegistry::kNoPartition));
      snap.count = u64Or(h, "count", 0);
      snap.sum = u64Or(h, "sum", 0);
      snap.max = u64Or(h, "max", 0);
      const JsonValue* buckets = h.find("buckets");
      if (buckets != nullptr && buckets->isArray()) {
        for (const JsonValue& pair : buckets->array()) {
          if (!pair.isArray() || pair.array().size() != 2 ||
              !pair.array()[0].isNumber() || !pair.array()[1].isNumber()) {
            return Status::corruptData(
                "run stats JSON: histogram bucket entries must be "
                "[index, count] pairs");
          }
          const auto index =
              static_cast<std::size_t>(pair.array()[0].intValue());
          if (index >= snap.buckets.size()) {
            return Status::corruptData(
                "run stats JSON: histogram bucket index out of range");
          }
          snap.buckets[index] =
              static_cast<std::uint64_t>(pair.array()[1].intValue());
        }
      }
      hists.push_back(std::move(snap));
    }
    loaded.stats.setHistograms(std::move(hists));
  }

  const JsonValue* attribution = doc.find("attribution");
  if (attribution != nullptr) {
    auto table = attributionFromJson(*attribution);
    if (!table.isOk()) {
      return table.status();
    }
    loaded.stats.setAttribution(std::move(table).value());
  }

  return loaded;
}

}  // namespace tsg
