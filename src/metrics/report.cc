#include "metrics/report.h"

#include <sstream>

#include "common/json.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace tsg {

std::string renderTimestepSeries(const RunStats& stats,
                                 const std::string& label,
                                 const NetworkModel& net) {
  TextTable table({"timestep", "modelled_ms"});
  const std::int32_t timesteps = stats.numTimesteps();
  for (Timestep t = 0; t < timesteps; ++t) {
    const std::int64_t ns = stats.modelledTimestepNs(t, net);
    if (ns == 0) {
      continue;  // timestep not executed (e.g. early While-mode stop)
    }
    table.addRow({std::to_string(t), TextTable::fmtDouble(nsToMs(ns), 3)});
  }
  std::ostringstream out;
  out << "== per-timestep time: " << label << " ==\n" << table.render();
  return out.str();
}

std::string renderCounterSeries(const RunStats& stats,
                                const std::string& counter,
                                const std::string& label) {
  std::ostringstream out;
  out << "== counter '" << counter << "': " << label << " ==\n";
  const auto it = stats.counters().find(counter);
  if (it == stats.counters().end()) {
    out << "(no data)\n";
    return out.str();
  }
  std::vector<std::string> header{"timestep"};
  for (PartitionId p = 0; p < stats.numPartitions(); ++p) {
    header.push_back("part" + std::to_string(p));
  }
  header.push_back("total");
  TextTable table(std::move(header));
  for (std::size_t t = 0; t < it->second.size(); ++t) {
    const auto& row = it->second[t];
    std::vector<std::string> cells{std::to_string(t)};
    std::uint64_t total = 0;
    for (const auto v : row) {
      cells.push_back(std::to_string(v));
      total += v;
    }
    cells.push_back(std::to_string(total));
    table.addRow(std::move(cells));
  }
  out << table.render();
  return out.str();
}

std::string renderUtilization(const RunStats& stats,
                              const std::string& label) {
  TextTable table(
      {"partition", "compute", "partition_oh", "sync_oh", "load"});
  const auto util = stats.partitionUtilization();
  for (PartitionId p = 0; p < util.size(); ++p) {
    const auto& u = util[p];
    const auto total = static_cast<double>(u.totalNs());
    auto pct = [&](std::int64_t ns) {
      return total == 0.0
                 ? std::string("0%")
                 : TextTable::fmtPercent(static_cast<double>(ns) / total, 1);
    };
    table.addRow({std::to_string(p), pct(u.compute_ns), pct(u.send_ns),
                  pct(u.sync_ns), pct(u.load_ns)});
  }
  std::ostringstream out;
  out << "== utilization split: " << label << " ==\n" << table.render();
  return out.str();
}

std::string summarizeRun(const RunStats& stats, const std::string& label,
                         const NetworkModel& net) {
  std::ostringstream out;
  out << label << ": wall=" << TextTable::fmtDouble(
             nsToSec(stats.wallClockNs()), 3)
      << "s modelled=" << TextTable::fmtDouble(
             nsToSec(stats.modelledParallelNs(net)), 3)
      << "s supersteps=" << stats.totalSupersteps()
      << " messages=" << stats.totalMessages()
      << " bytes=" << stats.totalBytes()
      << " xpart_messages=" << stats.totalCrossPartitionMessages()
      << " xpart_bytes=" << stats.totalCrossPartitionBytes();
  return out.str();
}

std::string runStatsToJson(const RunStats& stats, const std::string& label,
                           const NetworkModel& net) {
  JsonWriter json;
  json.beginObject();
  json.kv("label", label);
  json.kv("num_partitions", stats.numPartitions());
  json.kv("num_timesteps", stats.numTimesteps());
  json.kv("wall_clock_ns", stats.wallClockNs());
  json.kv("modelled_parallel_ns", stats.modelledParallelNs(net));

  json.key("totals");
  json.beginObject();
  json.kv("supersteps", stats.totalSupersteps());
  json.kv("delivered_messages", stats.totalMessages());
  json.kv("delivered_bytes", stats.totalBytes());
  json.kv("cross_partition_messages", stats.totalCrossPartitionMessages());
  json.kv("cross_partition_bytes", stats.totalCrossPartitionBytes());
  json.endObject();

  // Fig. 6 series: modelled time per executed timestep.
  json.key("timesteps");
  json.beginArray();
  const std::int32_t timesteps = stats.numTimesteps();
  for (Timestep t = 0; t < timesteps; ++t) {
    const std::int64_t ns = stats.modelledTimestepNs(t, net);
    if (ns == 0) {
      continue;  // timestep not executed (e.g. early While-mode stop)
    }
    json.beginObject();
    json.kv("timestep", t);
    json.kv("modelled_ns", ns);
    json.endObject();
  }
  json.endArray();

  // Fig. 7b/7d split, in absolute nanoseconds (consumers derive percents).
  json.key("utilization");
  json.beginArray();
  const auto util = stats.partitionUtilization();
  for (PartitionId p = 0; p < util.size(); ++p) {
    const auto& u = util[p];
    json.beginObject();
    json.kv("partition", p);
    json.kv("compute_ns", u.compute_ns);
    json.kv("send_ns", u.send_ns);
    json.kv("sync_ns", u.sync_ns);
    json.kv("load_ns", u.load_ns);
    json.endObject();
  }
  json.endArray();

  json.key("supersteps");
  json.beginArray();
  for (const auto& rec : stats.supersteps()) {
    json.beginObject();
    json.kv("timestep", rec.timestep);
    json.kv("superstep", rec.superstep);
    json.kv("is_merge_phase", rec.is_merge_phase);
    json.kv("delivered_messages", rec.delivered_messages);
    json.kv("delivered_bytes", rec.delivered_bytes);
    json.kv("cross_partition_messages", rec.cross_partition_messages);
    json.kv("cross_partition_bytes", rec.cross_partition_bytes);
    json.key("parts");
    json.beginArray();
    for (const auto& ps : rec.parts) {
      json.beginObject();
      json.kv("compute_ns", ps.compute_ns);
      json.kv("send_ns", ps.send_ns);
      json.kv("sync_ns", ps.sync_ns);
      json.kv("load_ns", ps.load_ns);
      json.kv("messages_sent", ps.messages_sent);
      json.kv("bytes_sent", ps.bytes_sent);
      json.kv("subgraphs_computed", ps.subgraphs_computed);
      json.endObject();
    }
    json.endArray();
    json.endObject();
  }
  json.endArray();

  // User counters: counters[name][timestep][partition].
  json.key("counters");
  json.beginObject();
  for (const auto& [name, rows] : stats.counters()) {
    json.key(name);
    json.beginArray();
    for (const auto& row : rows) {
      json.beginArray();
      for (const auto v : row) {
        json.value(v);
      }
      json.endArray();
    }
    json.endArray();
  }
  json.endObject();

  // MetricsRegistry delta attached by the engine (empty for stats built by
  // hand or by engines predating the registry).
  json.key("metrics");
  json.beginArray();
  for (const auto& point : stats.metrics()) {
    json.beginObject();
    json.kv("name", point.name);
    if (point.partition != MetricsRegistry::kNoPartition) {
      json.kv("partition", point.partition);
    }
    json.kv("kind", point.is_gauge ? "gauge" : "counter");
    json.kv("value", point.value);
    json.endObject();
  }
  json.endArray();

  json.endObject();
  return json.take();
}

}  // namespace tsg
