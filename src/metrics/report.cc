#include "metrics/report.h"

#include <sstream>

#include "common/stopwatch.h"
#include "common/table.h"

namespace tsg {

std::string renderTimestepSeries(const RunStats& stats,
                                 const std::string& label,
                                 const NetworkModel& net) {
  TextTable table({"timestep", "modelled_ms"});
  const std::int32_t timesteps = stats.numTimesteps();
  for (Timestep t = 0; t < timesteps; ++t) {
    const std::int64_t ns = stats.modelledTimestepNs(t, net);
    if (ns == 0) {
      continue;  // timestep not executed (e.g. early While-mode stop)
    }
    table.addRow({std::to_string(t), TextTable::fmtDouble(nsToMs(ns), 3)});
  }
  std::ostringstream out;
  out << "== per-timestep time: " << label << " ==\n" << table.render();
  return out.str();
}

std::string renderCounterSeries(const RunStats& stats,
                                const std::string& counter,
                                const std::string& label) {
  std::ostringstream out;
  out << "== counter '" << counter << "': " << label << " ==\n";
  const auto it = stats.counters().find(counter);
  if (it == stats.counters().end()) {
    out << "(no data)\n";
    return out.str();
  }
  std::vector<std::string> header{"timestep"};
  for (PartitionId p = 0; p < stats.numPartitions(); ++p) {
    header.push_back("part" + std::to_string(p));
  }
  header.push_back("total");
  TextTable table(std::move(header));
  for (std::size_t t = 0; t < it->second.size(); ++t) {
    const auto& row = it->second[t];
    std::vector<std::string> cells{std::to_string(t)};
    std::uint64_t total = 0;
    for (const auto v : row) {
      cells.push_back(std::to_string(v));
      total += v;
    }
    cells.push_back(std::to_string(total));
    table.addRow(std::move(cells));
  }
  out << table.render();
  return out.str();
}

std::string renderUtilization(const RunStats& stats,
                              const std::string& label) {
  TextTable table(
      {"partition", "compute", "partition_oh", "sync_oh", "load"});
  const auto util = stats.partitionUtilization();
  for (PartitionId p = 0; p < util.size(); ++p) {
    const auto& u = util[p];
    const auto total = static_cast<double>(u.totalNs());
    auto pct = [&](std::int64_t ns) {
      return total == 0.0
                 ? std::string("0%")
                 : TextTable::fmtPercent(static_cast<double>(ns) / total, 1);
    };
    table.addRow({std::to_string(p), pct(u.compute_ns), pct(u.send_ns),
                  pct(u.sync_ns), pct(u.load_ns)});
  }
  std::ostringstream out;
  out << "== utilization split: " << label << " ==\n" << table.render();
  return out.str();
}

std::string summarizeRun(const RunStats& stats, const std::string& label,
                         const NetworkModel& net) {
  std::ostringstream out;
  out << label << ": wall=" << TextTable::fmtDouble(
             nsToSec(stats.wallClockNs()), 3)
      << "s modelled=" << TextTable::fmtDouble(
             nsToSec(stats.modelledParallelNs(net)), 3)
      << "s supersteps=" << stats.totalSupersteps()
      << " messages=" << stats.totalMessages()
      << " bytes=" << stats.totalBytes();
  return out.str();
}

}  // namespace tsg
