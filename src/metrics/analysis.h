// Post-run analysis over RunStats — the "why was it slow" layer on top of
// the raw telemetry (PR 2) that the paper's evaluation implies: critical-path
// decomposition per superstep (which partition the barrier waited on),
// barrier-wait attribution per partition, a skew index, and a run-vs-run
// comparator over the runStatsToJson schema used as a CI regression gate.
//
// The decomposition uses the same busy definition as
// RunStats::modelledParallelNs (busy = compute + send + load), so the
// analysis totals reconcile exactly with the modelled parallel time: for any
// record set, critical_path_busy_ns + comm_ns + barrier_ns ==
// modelledParallelNs (asserted by tests on a hand-computed fixture).
#pragma once

#include <string>
#include <vector>

#include "metrics/report.h"
#include "metrics/stats.h"

namespace tsg {

struct CriticalPathAnalysis {
  // One superstep on the critical path: the straggler is the partition whose
  // busy time the barrier waited on; barrier_wait_ns is the idle time it
  // imposed on everyone else (Σ over other partitions of max_busy − busy).
  struct SuperstepPath {
    Timestep timestep = 0;
    std::int32_t superstep = 0;
    bool is_merge_phase = false;
    std::int32_t straggler = -1;  // -1 when the record has no partitions
    std::int64_t max_busy_ns = 0;
    std::int64_t total_busy_ns = 0;
    std::int64_t barrier_wait_ns = 0;
    std::int64_t comm_ns = 0;  // modelled cross-partition transfer cost
  };

  // Per-partition totals across the run.
  struct PartitionAttribution {
    std::uint64_t straggler_supersteps = 0;  // times it set the critical path
    std::int64_t blamed_wait_ns = 0;  // idle time it imposed on the others
    std::int64_t busy_ns = 0;
  };

  std::vector<SuperstepPath> path;  // one entry per superstep record
  std::vector<PartitionAttribution> partitions;
  // straggler_by_timestep[t][p] — how often partition p set the critical
  // path within timestep t (the per-timestep straggler histogram).
  std::vector<std::vector<std::uint64_t>> straggler_by_timestep;

  std::int64_t critical_path_busy_ns = 0;  // Σ max_busy
  std::int64_t total_busy_ns = 0;          // Σ over all partitions
  std::int64_t comm_ns = 0;
  std::int64_t barrier_ns = 0;  // modelled per-superstep barrier cost
  // critical_path_busy_ns + comm_ns + barrier_ns; equals
  // RunStats::modelledParallelNs under the same NetworkModel.
  std::int64_t modelled_parallel_ns = 0;
  std::int64_t total_barrier_wait_ns = 0;
  // total_barrier_wait_ns split by phase: waiting on a straggler partition
  // inside an ordinary compute superstep vs waiting inside a Merge-BSP
  // superstep. The split tells you whether to attack partitioning skew or
  // the merge topology — and which part the async schedule can steal away
  // (only the straggler share; merge supersteps stay barriered).
  std::int64_t straggler_wait_ns = 0;
  std::int64_t merge_wait_ns = 0;

  // critical_path_busy / (total_busy / k): 1.0 = perfectly balanced,
  // k = one partition does all the work. 0 partitions / no busy time → 1.0.
  double skew_index = 1.0;

  // Partition with the largest blamed_wait_ns (-1 when there is none) and
  // its share of the total barrier wait.
  std::int32_t dominant_straggler = -1;
  double dominant_wait_fraction = 0.0;
};

CriticalPathAnalysis analyzeCriticalPath(const RunStats& stats,
                                         const NetworkModel& net = {});

// Human-readable report: time decomposition, per-partition attribution
// table, per-timestep straggler histogram and the worst supersteps.
std::string renderCriticalPath(const CriticalPathAnalysis& analysis,
                               const std::string& label);

// --- Run-vs-run comparison (the CI regression gate) -----------------------

struct CompareThresholds {
  // A gated metric regresses when candidate > base by more than this many
  // percent. Count metrics (messages, bytes, supersteps) are deterministic
  // for seeded runs; modelled_parallel_ns is dominated by the deterministic
  // barrier model, so a generous threshold still catches real regressions.
  double max_regress_pct = 10.0;
};

struct MetricComparison {
  std::string metric;
  std::int64_t base = 0;
  std::int64_t candidate = 0;
  double delta_pct = 0.0;  // +inf when base == 0 and candidate > 0
  bool gated = false;      // informational rows never fail the gate
  bool regressed = false;
};

struct CompareResult {
  std::string base_label;
  std::string candidate_label;
  std::vector<MetricComparison> metrics;
  bool pass = true;  // no gated metric regressed
};

CompareResult compareRuns(const LoadedRunStats& base,
                          const LoadedRunStats& candidate,
                          const CompareThresholds& thresholds = {});

std::string renderCompare(const CompareResult& result);

}  // namespace tsg
