// Paper-style reporting helpers shared by the benchmark binaries: they turn
// RunStats into the tables and series the evaluation section presents.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "metrics/stats.h"

namespace tsg {

// Fig. 6: "time per timestep" series. One line per timestep with the
// modelled parallel time (ms); maintenance rounds are folded into their
// timestep like the paper's synchronized GC is.
std::string renderTimestepSeries(const RunStats& stats,
                                 const std::string& label,
                                 const NetworkModel& net = {});

// Fig. 7a/7c: a per-(timestep, partition) counter as a table.
std::string renderCounterSeries(const RunStats& stats,
                                const std::string& counter,
                                const std::string& label);

// Fig. 7b/7d: per-partition compute / partition-overhead / sync-overhead /
// load split as percentages of that partition's total.
std::string renderUtilization(const RunStats& stats, const std::string& label);

// One-line run summary: wall clock, modelled time, supersteps, messages
// (delivered and cross-partition).
std::string summarizeRun(const RunStats& stats, const std::string& label,
                         const NetworkModel& net = {});

// Version stamped into every runStatsToJson document as "schema_version".
// Bump on any incompatible change to the exported shape; readers
// (runStatsFromJson, tsgcli analyze/compare) reject other versions rather
// than misparse.
inline constexpr std::int64_t kRunStatsSchemaVersion = 1;

// Machine-readable export of a full run: totals, per-timestep modelled
// series, per-partition utilization split, every superstep record, the
// MetricsRegistry delta and histogram deltas captured over the run. The
// output is a single JSON object (see DESIGN.md "Observability" for the
// schema).
std::string runStatsToJson(const RunStats& stats, const std::string& label,
                           const NetworkModel& net = {});

// A run re-loaded from a runStatsToJson document. `stats` carries the
// superstep records, counters and wall clock, so every RunStats aggregation
// (modelledParallelNs, partitionUtilization, ...) works on it;
// `modelled_parallel_ns` is the value stamped by the writer (computed under
// the writer's NetworkModel, which comparisons should trust over a
// recomputation).
struct LoadedRunStats {
  std::string label;
  RunStats stats;
  std::int64_t modelled_parallel_ns = 0;
};

// Parses a runStatsToJson document. Fails with CorruptData on malformed
// JSON, a missing "schema_version", or a version this reader does not speak.
Result<LoadedRunStats> runStatsFromJson(std::string_view text);

}  // namespace tsg
