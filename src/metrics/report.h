// Paper-style reporting helpers shared by the benchmark binaries: they turn
// RunStats into the tables and series the evaluation section presents.
#pragma once

#include <string>

#include "runtime/stats.h"

namespace tsg {

// Fig. 6: "time per timestep" series. One line per timestep with the
// modelled parallel time (ms); maintenance rounds are folded into their
// timestep like the paper's synchronized GC is.
std::string renderTimestepSeries(const RunStats& stats,
                                 const std::string& label,
                                 const NetworkModel& net = {});

// Fig. 7a/7c: a per-(timestep, partition) counter as a table.
std::string renderCounterSeries(const RunStats& stats,
                                const std::string& counter,
                                const std::string& label);

// Fig. 7b/7d: per-partition compute / partition-overhead / sync-overhead /
// load split as percentages of that partition's total.
std::string renderUtilization(const RunStats& stats, const std::string& label);

// One-line run summary: wall clock, modelled time, supersteps, messages.
std::string summarizeRun(const RunStats& stats, const std::string& label,
                         const NetworkModel& net = {});

}  // namespace tsg
