// Paper-style reporting helpers shared by the benchmark binaries: they turn
// RunStats into the tables and series the evaluation section presents.
#pragma once

#include <string>

#include "runtime/stats.h"

namespace tsg {

// Fig. 6: "time per timestep" series. One line per timestep with the
// modelled parallel time (ms); maintenance rounds are folded into their
// timestep like the paper's synchronized GC is.
std::string renderTimestepSeries(const RunStats& stats,
                                 const std::string& label,
                                 const NetworkModel& net = {});

// Fig. 7a/7c: a per-(timestep, partition) counter as a table.
std::string renderCounterSeries(const RunStats& stats,
                                const std::string& counter,
                                const std::string& label);

// Fig. 7b/7d: per-partition compute / partition-overhead / sync-overhead /
// load split as percentages of that partition's total.
std::string renderUtilization(const RunStats& stats, const std::string& label);

// One-line run summary: wall clock, modelled time, supersteps, messages
// (delivered and cross-partition).
std::string summarizeRun(const RunStats& stats, const std::string& label,
                         const NetworkModel& net = {});

// Machine-readable export of a full run: totals, per-timestep modelled
// series, per-partition utilization split, every superstep record and the
// MetricsRegistry delta captured over the run. The output is a single JSON
// object (see DESIGN.md "Observability" for the schema).
std::string runStatsToJson(const RunStats& stats, const std::string& label,
                           const NetworkModel& net = {});

}  // namespace tsg
