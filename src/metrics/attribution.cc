#include "metrics/attribution.h"

#include <algorithm>
#include <cmath>

namespace tsg {

std::vector<SubgraphCosts> AttributionTable::subgraphTotals() const {
  std::vector<SubgraphCosts> totals(subgraphs.size());
  for (const auto& row : rows) {
    for (std::size_t sg = 0; sg < row.size() && sg < totals.size(); ++sg) {
      totals[sg] += row[sg];
    }
  }
  return totals;
}

std::vector<std::int64_t> AttributionTable::partitionComputeNs() const {
  std::vector<std::int64_t> loads(num_partitions, 0);
  const auto totals = subgraphTotals();
  for (std::size_t sg = 0; sg < totals.size(); ++sg) {
    const PartitionId p = subgraphs[sg].partition;
    if (p < loads.size()) {
      loads[p] += totals[sg].compute_ns;
    }
  }
  return loads;
}

double AttributionTable::rowGini(std::int32_t row) const {
  if (row < 0 || static_cast<std::size_t>(row) >= rows.size()) {
    return 0.0;
  }
  std::vector<std::int64_t> values;
  values.reserve(rows[static_cast<std::size_t>(row)].size());
  for (const auto& cell : rows[static_cast<std::size_t>(row)]) {
    values.push_back(cell.compute_ns);
  }
  return giniCoefficient(values);
}

double giniCoefficient(const std::vector<std::int64_t>& values) {
  if (values.empty()) {
    return 0.0;
  }
  std::vector<std::int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double v = static_cast<double>(std::max<std::int64_t>(0, sorted[i]));
    sum += v;
    weighted += v * static_cast<double>(i + 1);
  }
  if (sum <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(sorted.size());
  // Standard rank formula: G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n+1)/n.
  return (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
}

namespace {

void writeHotList(JsonWriter& w, const std::vector<HotVertex>& list) {
  w.beginArray();
  for (const HotVertex& h : list) {
    w.beginObject();
    w.kv("vertex", h.vertex);
    w.kv("partition", h.partition);
    w.kv("weight", h.weight);
    w.kv("error", h.error);
    w.endObject();
  }
  w.endArray();
}

Result<std::vector<HotVertex>> parseHotList(const JsonValue* v) {
  std::vector<HotVertex> out;
  if (v == nullptr) {
    return Result<std::vector<HotVertex>>(std::move(out));
  }
  if (!v->isArray()) {
    return Status::corruptData("attribution: hot list is not an array");
  }
  out.reserve(v->array().size());
  for (const JsonValue& e : v->array()) {
    HotVertex h;
    h.vertex = static_cast<std::uint64_t>(e.intOr("vertex", 0));
    h.partition = static_cast<PartitionId>(e.intOr("partition", 0));
    h.weight = static_cast<std::uint64_t>(e.intOr("weight", 0));
    h.error = static_cast<std::uint64_t>(e.intOr("error", 0));
    out.push_back(h);
  }
  return Result<std::vector<HotVertex>>(std::move(out));
}

template <typename T>
void writeNumberArray(JsonWriter& w, const std::vector<T>& values) {
  w.beginArray();
  for (const T& v : values) {
    w.value(v);
  }
  w.endArray();
}

template <typename T>
Status parseNumberArray(const JsonValue* v, std::vector<T>& out) {
  out.clear();
  if (v == nullptr) {
    return Status::ok();
  }
  if (!v->isArray()) {
    return Status::corruptData("attribution: expected a number array");
  }
  out.reserve(v->array().size());
  for (const JsonValue& e : v->array()) {
    if (!e.isNumber()) {
      return Status::corruptData("attribution: non-numeric array element");
    }
    out.push_back(static_cast<T>(e.intValue()));
  }
  return Status::ok();
}

}  // namespace

void attributionToJson(JsonWriter& w, const AttributionTable& table) {
  w.beginObject();
  w.kv("schema_version", table.schema_version);
  w.kv("num_partitions", table.num_partitions);
  w.kv("first_timestep", table.first_timestep);
  w.kv("num_rows", table.num_rows);
  w.kv("sample_every", table.sample_every);

  w.key("subgraphs");
  w.beginArray();
  for (const SubgraphMeta& m : table.subgraphs) {
    w.beginObject();
    w.kv("id", m.id);
    w.kv("partition", m.partition);
    w.kv("vertices", m.vertices);
    w.kv("local_edges", m.local_edges);
    w.kv("remote_edges", m.remote_edges);
    w.endObject();
  }
  w.endArray();

  // Rows are dense [compute_ns, computes, msgs_out, bytes_out,
  // resident_bytes] cells; the subgraph index is positional.
  w.key("rows");
  w.beginArray();
  for (const auto& row : table.rows) {
    w.beginArray();
    for (const SubgraphCosts& c : row) {
      w.beginArray();
      w.value(c.compute_ns);
      w.value(c.computes);
      w.value(c.msgs_out);
      w.value(c.bytes_out);
      w.value(c.resident_bytes);
      w.endArray();
    }
    w.endArray();
  }
  w.endArray();

  w.key("msgs_in");
  writeNumberArray(w, table.msgs_in);
  w.key("bytes_in");
  writeNumberArray(w, table.bytes_in);
  w.key("sched_wait_caused_ns");
  writeNumberArray(w, table.sched_wait_caused_ns);
  w.key("steal_victims");
  writeNumberArray(w, table.steal_victims);

  w.key("hot_compute");
  writeHotList(w, table.hot_compute);
  w.key("hot_fanout");
  writeHotList(w, table.hot_fanout);
  w.kv("sketch_weight_compute", table.sketch_weight_compute);
  w.kv("sketch_weight_fanout", table.sketch_weight_fanout);
  w.endObject();
}

Result<AttributionTable> attributionFromJson(const JsonValue& v) {
  if (!v.isObject()) {
    return Status::corruptData("attribution: not an object");
  }
  AttributionTable table;
  table.schema_version =
      static_cast<std::int32_t>(v.intOr("schema_version", -1));
  if (table.schema_version != kAttributionSchemaVersion) {
    return Status::corruptData(
        "attribution: unsupported schema_version " +
        std::to_string(table.schema_version));
  }
  table.num_partitions =
      static_cast<std::uint32_t>(v.intOr("num_partitions", 0));
  table.first_timestep = static_cast<Timestep>(v.intOr("first_timestep", 0));
  table.num_rows = static_cast<std::int32_t>(v.intOr("num_rows", 0));
  table.sample_every = static_cast<std::uint32_t>(v.intOr("sample_every", 1));

  const JsonValue* subgraphs = v.find("subgraphs");
  if (subgraphs == nullptr || !subgraphs->isArray()) {
    return Status::corruptData("attribution: missing subgraphs array");
  }
  table.subgraphs.reserve(subgraphs->array().size());
  for (const JsonValue& e : subgraphs->array()) {
    SubgraphMeta m;
    m.id = static_cast<SubgraphId>(e.intOr("id", 0));
    m.partition = static_cast<PartitionId>(e.intOr("partition", 0));
    m.vertices = static_cast<std::uint64_t>(e.intOr("vertices", 0));
    m.local_edges = static_cast<std::uint64_t>(e.intOr("local_edges", 0));
    m.remote_edges = static_cast<std::uint64_t>(e.intOr("remote_edges", 0));
    table.subgraphs.push_back(m);
  }

  const JsonValue* rows = v.find("rows");
  if (rows == nullptr || !rows->isArray()) {
    return Status::corruptData("attribution: missing rows array");
  }
  table.rows.reserve(rows->array().size());
  for (const JsonValue& row : rows->array()) {
    if (!row.isArray()) {
      return Status::corruptData("attribution: row is not an array");
    }
    std::vector<SubgraphCosts> cells;
    cells.reserve(row.array().size());
    for (const JsonValue& cell : row.array()) {
      if (!cell.isArray() || cell.array().size() != 5) {
        return Status::corruptData(
            "attribution: cell is not a 5-element array");
      }
      SubgraphCosts c;
      c.compute_ns = cell.array()[0].intValue();
      c.computes = static_cast<std::uint64_t>(cell.array()[1].intValue());
      c.msgs_out = static_cast<std::uint64_t>(cell.array()[2].intValue());
      c.bytes_out = static_cast<std::uint64_t>(cell.array()[3].intValue());
      c.resident_bytes =
          static_cast<std::uint64_t>(cell.array()[4].intValue());
      cells.push_back(c);
    }
    table.rows.push_back(std::move(cells));
  }

  Status s = parseNumberArray(v.find("msgs_in"), table.msgs_in);
  if (!s.isOk()) return s;
  s = parseNumberArray(v.find("bytes_in"), table.bytes_in);
  if (!s.isOk()) return s;
  s = parseNumberArray(v.find("sched_wait_caused_ns"),
                       table.sched_wait_caused_ns);
  if (!s.isOk()) return s;
  s = parseNumberArray(v.find("steal_victims"), table.steal_victims);
  if (!s.isOk()) return s;

  auto hot_compute = parseHotList(v.find("hot_compute"));
  if (!hot_compute.isOk()) return hot_compute.status();
  table.hot_compute = std::move(hot_compute).value();
  auto hot_fanout = parseHotList(v.find("hot_fanout"));
  if (!hot_fanout.isOk()) return hot_fanout.status();
  table.hot_fanout = std::move(hot_fanout).value();
  table.sketch_weight_compute =
      static_cast<std::uint64_t>(v.intOr("sketch_weight_compute", 0));
  table.sketch_weight_fanout =
      static_cast<std::uint64_t>(v.intOr("sketch_weight_fanout", 0));
  return Result<AttributionTable>(std::move(table));
}

}  // namespace tsg
