#include "metrics/stats.h"

#include <algorithm>

#include "common/status.h"

namespace tsg {

void RunStats::addCounter(const std::string& name, Timestep t, PartitionId p,
                          std::uint64_t value) {
  TSG_CHECK(t >= 0);
  TSG_CHECK(p < num_partitions_);
  auto& rows = counters_[name];
  if (rows.size() <= static_cast<std::size_t>(t)) {
    rows.resize(static_cast<std::size_t>(t) + 1,
                std::vector<std::uint64_t>(num_partitions_, 0));
  }
  rows[static_cast<std::size_t>(t)][p] += value;
}

std::uint64_t RunStats::counterTotal(const std::string& name) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& row : it->second) {
    for (const auto v : row) {
      total += v;
    }
  }
  return total;
}

std::int32_t RunStats::numTimesteps() const {
  std::int32_t max_t = -1;
  for (const auto& rec : records_) {
    max_t = std::max(max_t, rec.timestep);
  }
  return max_t + 1;
}

std::uint64_t RunStats::totalMessages() const {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    total += rec.delivered_messages;
  }
  return total;
}

std::uint64_t RunStats::totalBytes() const {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    total += rec.delivered_bytes;
  }
  return total;
}

std::uint64_t RunStats::totalCrossPartitionMessages() const {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    total += rec.cross_partition_messages;
  }
  return total;
}

std::uint64_t RunStats::totalCrossPartitionBytes() const {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    total += rec.cross_partition_bytes;
  }
  return total;
}

namespace {

std::int64_t modelledSuperstepNs(const SuperstepRecord& rec,
                                 const NetworkModel& net) {
  std::int64_t max_busy = 0;
  for (const auto& part : rec.parts) {
    max_busy =
        std::max(max_busy, part.compute_ns + part.send_ns + part.load_ns);
  }
  const auto comm_ns = static_cast<std::int64_t>(
      static_cast<double>(rec.cross_partition_bytes) /
          net.bandwidth_bytes_per_sec * 1e9 +
      static_cast<double>(rec.cross_partition_messages) *
          static_cast<double>(net.per_message_ns));
  return max_busy + comm_ns + net.per_superstep_barrier_ns;
}

}  // namespace

std::int64_t RunStats::modelledParallelNs(const NetworkModel& net) const {
  std::int64_t total = 0;
  for (const auto& rec : records_) {
    total += modelledSuperstepNs(rec, net);
  }
  return total;
}

std::int64_t RunStats::modelledTimestepNs(Timestep t,
                                          const NetworkModel& net) const {
  std::int64_t total = 0;
  for (const auto& rec : records_) {
    if (rec.timestep == t && !rec.is_merge_phase) {
      total += modelledSuperstepNs(rec, net);
    }
  }
  return total;
}

std::vector<RunStats::PartitionUtilization> RunStats::partitionUtilization()
    const {
  std::vector<PartitionUtilization> util(num_partitions_);
  for (const auto& rec : records_) {
    for (PartitionId p = 0; p < rec.parts.size() && p < util.size(); ++p) {
      util[p].compute_ns += rec.parts[p].compute_ns;
      util[p].send_ns += rec.parts[p].send_ns;
      util[p].sync_ns += rec.parts[p].sync_ns;
      util[p].load_ns += rec.parts[p].load_ns;
    }
  }
  return util;
}

}  // namespace tsg
