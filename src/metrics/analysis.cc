#include "metrics/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/stopwatch.h"
#include "common/table.h"

namespace tsg {

namespace {

// Same transfer-cost model as RunStats::modelledParallelNs — keep the two in
// lock-step or the reconciliation invariant breaks.
std::int64_t commNs(const SuperstepRecord& rec, const NetworkModel& net) {
  return static_cast<std::int64_t>(
      static_cast<double>(rec.cross_partition_bytes) /
          net.bandwidth_bytes_per_sec * 1e9 +
      static_cast<double>(rec.cross_partition_messages) *
          static_cast<double>(net.per_message_ns));
}

std::int64_t busyNs(const PartitionSuperstepStats& ps) {
  return ps.compute_ns + ps.send_ns + ps.load_ns;
}

}  // namespace

CriticalPathAnalysis analyzeCriticalPath(const RunStats& stats,
                                         const NetworkModel& net) {
  CriticalPathAnalysis out;
  const std::uint32_t k = stats.numPartitions();
  out.partitions.resize(k);
  const std::int32_t timesteps = std::max(0, stats.numTimesteps());
  out.straggler_by_timestep.assign(
      static_cast<std::size_t>(timesteps),
      std::vector<std::uint64_t>(k, 0));

  out.path.reserve(stats.supersteps().size());
  for (const auto& rec : stats.supersteps()) {
    CriticalPathAnalysis::SuperstepPath step;
    step.timestep = rec.timestep;
    step.superstep = rec.superstep;
    step.is_merge_phase = rec.is_merge_phase;
    step.comm_ns = commNs(rec, net);

    for (PartitionId p = 0; p < rec.parts.size(); ++p) {
      const std::int64_t busy = busyNs(rec.parts[p]);
      step.total_busy_ns += busy;
      if (step.straggler < 0 || busy > step.max_busy_ns) {
        step.max_busy_ns = busy;
        step.straggler = static_cast<std::int32_t>(p);
      }
    }
    step.barrier_wait_ns =
        static_cast<std::int64_t>(rec.parts.size()) * step.max_busy_ns -
        step.total_busy_ns;

    if (step.straggler >= 0) {
      const auto s = static_cast<std::size_t>(step.straggler);
      if (s < out.partitions.size()) {
        ++out.partitions[s].straggler_supersteps;
        out.partitions[s].blamed_wait_ns += step.barrier_wait_ns;
      }
      if (rec.timestep >= 0 && rec.timestep < timesteps &&
          s < out.straggler_by_timestep[static_cast<std::size_t>(
                  rec.timestep)]
                  .size()) {
        ++out.straggler_by_timestep[static_cast<std::size_t>(rec.timestep)][s];
      }
    }
    for (PartitionId p = 0; p < rec.parts.size() && p < k; ++p) {
      out.partitions[p].busy_ns += busyNs(rec.parts[p]);
    }

    out.critical_path_busy_ns += step.max_busy_ns;
    out.total_busy_ns += step.total_busy_ns;
    out.comm_ns += step.comm_ns;
    out.barrier_ns += net.per_superstep_barrier_ns;
    out.total_barrier_wait_ns += step.barrier_wait_ns;
    if (step.is_merge_phase) {
      out.merge_wait_ns += step.barrier_wait_ns;
    } else {
      out.straggler_wait_ns += step.barrier_wait_ns;
    }
    out.path.push_back(step);
  }

  out.modelled_parallel_ns =
      out.critical_path_busy_ns + out.comm_ns + out.barrier_ns;

  if (k > 0 && out.total_busy_ns > 0) {
    const double mean_busy =
        static_cast<double>(out.total_busy_ns) / static_cast<double>(k);
    out.skew_index =
        static_cast<double>(out.critical_path_busy_ns) / mean_busy;
  }

  for (std::uint32_t p = 0; p < k; ++p) {
    if (out.dominant_straggler < 0 ||
        out.partitions[p].blamed_wait_ns >
            out.partitions[static_cast<std::size_t>(out.dominant_straggler)]
                .blamed_wait_ns) {
      out.dominant_straggler = static_cast<std::int32_t>(p);
    }
  }
  if (out.dominant_straggler >= 0 && out.total_barrier_wait_ns > 0) {
    out.dominant_wait_fraction =
        static_cast<double>(
            out.partitions[static_cast<std::size_t>(out.dominant_straggler)]
                .blamed_wait_ns) /
        static_cast<double>(out.total_barrier_wait_ns);
  }
  return out;
}

std::string renderCriticalPath(const CriticalPathAnalysis& analysis,
                               const std::string& label) {
  std::ostringstream out;
  out << "== critical path: " << label << " ==\n";
  out << "modelled parallel time " << TextTable::fmtDouble(
             nsToMs(analysis.modelled_parallel_ns), 3)
      << " ms = critical-path busy " << TextTable::fmtDouble(
             nsToMs(analysis.critical_path_busy_ns), 3)
      << " ms + comm " << TextTable::fmtDouble(nsToMs(analysis.comm_ns), 3)
      << " ms + barriers " << TextTable::fmtDouble(
             nsToMs(analysis.barrier_ns), 3)
      << " ms\n";
  out << "skew index " << TextTable::fmtDouble(analysis.skew_index, 3)
      << " (1 = balanced, k = serial); total barrier wait "
      << TextTable::fmtDouble(nsToMs(analysis.total_barrier_wait_ns), 3)
      << " ms across " << analysis.path.size() << " supersteps\n";
  out << "barrier wait split: straggler (compute supersteps) "
      << TextTable::fmtDouble(nsToMs(analysis.straggler_wait_ns), 3)
      << " ms, merge supersteps "
      << TextTable::fmtDouble(nsToMs(analysis.merge_wait_ns), 3)
      << " ms — only the straggler share is stealable under "
         "--schedule=async\n";
  if (analysis.dominant_straggler >= 0) {
    out << "dominant straggler: partition " << analysis.dominant_straggler
        << " (" << TextTable::fmtPercent(analysis.dominant_wait_fraction, 1)
        << " of barrier wait attributed to it)\n";
  }

  TextTable parts({"partition", "busy_ms", "straggler_supersteps",
                   "blamed_wait_ms", "wait_share"});
  for (std::size_t p = 0; p < analysis.partitions.size(); ++p) {
    const auto& pa = analysis.partitions[p];
    const double share =
        analysis.total_barrier_wait_ns > 0
            ? static_cast<double>(pa.blamed_wait_ns) /
                  static_cast<double>(analysis.total_barrier_wait_ns)
            : 0.0;
    parts.addRow({std::to_string(p), TextTable::fmtDouble(nsToMs(pa.busy_ns), 3),
                  std::to_string(pa.straggler_supersteps),
                  TextTable::fmtDouble(nsToMs(pa.blamed_wait_ns), 3),
                  TextTable::fmtPercent(share, 1)});
  }
  out << parts.render();

  // Per-timestep straggler histogram: which partition gated each timestep.
  if (!analysis.straggler_by_timestep.empty()) {
    std::vector<std::string> header{"timestep"};
    const std::size_t k = analysis.partitions.size();
    for (std::size_t p = 0; p < k; ++p) {
      header.push_back("part" + std::to_string(p));
    }
    TextTable straggle(std::move(header));
    for (std::size_t t = 0; t < analysis.straggler_by_timestep.size(); ++t) {
      const auto& row = analysis.straggler_by_timestep[t];
      bool any = false;
      for (const auto c : row) {
        any = any || c != 0;
      }
      if (!any) {
        continue;
      }
      std::vector<std::string> cells{std::to_string(t)};
      for (const auto c : row) {
        cells.push_back(std::to_string(c));
      }
      straggle.addRow(std::move(cells));
    }
    out << "-- supersteps gated per (timestep, partition) --\n"
        << straggle.render();
  }

  // The worst supersteps by imposed barrier wait.
  std::vector<const CriticalPathAnalysis::SuperstepPath*> worst;
  worst.reserve(analysis.path.size());
  for (const auto& step : analysis.path) {
    worst.push_back(&step);
  }
  std::sort(worst.begin(), worst.end(),
            [](const auto* a, const auto* b) {
              return a->barrier_wait_ns > b->barrier_wait_ns;
            });
  const std::size_t top = std::min<std::size_t>(5, worst.size());
  if (top > 0 && worst[0]->barrier_wait_ns > 0) {
    TextTable table({"timestep", "superstep", "straggler", "max_busy_ms",
                     "barrier_wait_ms"});
    for (std::size_t i = 0; i < top; ++i) {
      const auto& step = *worst[i];
      if (step.barrier_wait_ns == 0) {
        break;
      }
      table.addRow({std::to_string(step.timestep),
                    std::to_string(step.superstep),
                    std::to_string(step.straggler),
                    TextTable::fmtDouble(nsToMs(step.max_busy_ns), 3),
                    TextTable::fmtDouble(nsToMs(step.barrier_wait_ns), 3)});
    }
    out << "-- worst supersteps by imposed barrier wait --\n"
        << table.render();
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Run comparison.
// ---------------------------------------------------------------------------

namespace {

// Sum of a counter across all partitions in a run's registry delta (0 when
// the run predates the counter or never touched it).
std::int64_t metricTotal(const RunStats& stats, std::string_view name) {
  std::int64_t total = 0;
  for (const auto& point : stats.metrics()) {
    if (point.name == name && !point.is_gauge) {
      total += point.value;
    }
  }
  return total;
}

MetricComparison compareMetric(std::string name, std::int64_t base,
                               std::int64_t candidate, bool gated,
                               double max_regress_pct) {
  MetricComparison cmp;
  cmp.metric = std::move(name);
  cmp.base = base;
  cmp.candidate = candidate;
  if (base != 0) {
    cmp.delta_pct = (static_cast<double>(candidate - base) /
                     static_cast<double>(base)) *
                    100.0;
  } else if (candidate != 0) {
    cmp.delta_pct = std::numeric_limits<double>::infinity();
  }
  cmp.gated = gated;
  cmp.regressed = gated && cmp.delta_pct > max_regress_pct;
  return cmp;
}

}  // namespace

CompareResult compareRuns(const LoadedRunStats& base,
                          const LoadedRunStats& candidate,
                          const CompareThresholds& thresholds) {
  CompareResult result;
  result.base_label = base.label;
  result.candidate_label = candidate.label;
  const double pct = thresholds.max_regress_pct;

  auto add = [&result](MetricComparison cmp) {
    result.pass = result.pass && !cmp.regressed;
    result.metrics.push_back(std::move(cmp));
  };

  // The primary gate: modelled parallel time as stamped by the writer (the
  // paper's critical-path metric, and deterministic enough at bench-smoke
  // scale because the barrier model dominates).
  add(compareMetric("modelled_parallel_ns", base.modelled_parallel_ns,
                    candidate.modelled_parallel_ns, /*gated=*/true, pct));
  // Work-shape gates: for seeded runs these are exactly reproducible, so
  // any above-threshold growth is a real algorithmic regression.
  add(compareMetric(
      "supersteps", static_cast<std::int64_t>(base.stats.totalSupersteps()),
      static_cast<std::int64_t>(candidate.stats.totalSupersteps()),
      /*gated=*/true, pct));
  add(compareMetric(
      "delivered_messages",
      static_cast<std::int64_t>(base.stats.totalMessages()),
      static_cast<std::int64_t>(candidate.stats.totalMessages()),
      /*gated=*/true, pct));
  add(compareMetric("delivered_bytes",
                    static_cast<std::int64_t>(base.stats.totalBytes()),
                    static_cast<std::int64_t>(candidate.stats.totalBytes()),
                    /*gated=*/true, pct));
  add(compareMetric(
      "cross_partition_messages",
      static_cast<std::int64_t>(base.stats.totalCrossPartitionMessages()),
      static_cast<std::int64_t>(
          candidate.stats.totalCrossPartitionMessages()),
      /*gated=*/true, pct));
  add(compareMetric(
      "cross_partition_bytes",
      static_cast<std::int64_t>(base.stats.totalCrossPartitionBytes()),
      static_cast<std::int64_t>(candidate.stats.totalCrossPartitionBytes()),
      /*gated=*/true, pct));
  // Informational: wall clock on a shared CI runner is too noisy to gate.
  add(compareMetric("wall_clock_ns", base.stats.wallClockNs(),
                    candidate.stats.wallClockNs(), /*gated=*/false, pct));
  // Scheduler wait attribution, also informational (timing-derived): the
  // barrier wait a BSP run paid vs the ready wait an async run paid, plus
  // the async schedule's work-stealing and skip activity. Comparing a BSP
  // base against an async candidate, these rows show where the barrier
  // time went.
  for (const char* name :
       {"cluster.barrier_wait_ns", "engine.ready_wait_ns", "cluster.steals",
        "cluster.barrier_skips"}) {
    const std::int64_t base_total = metricTotal(base.stats, name);
    const std::int64_t cand_total = metricTotal(candidate.stats, name);
    if (base_total != 0 || cand_total != 0) {
      add(compareMetric(name, base_total, cand_total, /*gated=*/false, pct));
    }
  }
  return result;
}

std::string renderCompare(const CompareResult& result) {
  std::ostringstream out;
  out << "== compare: base '" << result.base_label << "' vs candidate '"
      << result.candidate_label << "' ==\n";
  TextTable table({"metric", "base", "candidate", "delta", "gate"});
  for (const auto& cmp : result.metrics) {
    std::string delta;
    if (std::isinf(cmp.delta_pct)) {
      delta = "+inf%";
    } else {
      delta = (cmp.delta_pct >= 0 ? "+" : "") +
              TextTable::fmtDouble(cmp.delta_pct, 2) + "%";
    }
    const std::string gate =
        !cmp.gated ? "info" : (cmp.regressed ? "REGRESSED" : "ok");
    table.addRow({cmp.metric, std::to_string(cmp.base),
                  std::to_string(cmp.candidate), delta, gate});
  }
  out << table.render();
  out << (result.pass ? "PASS" : "FAIL") << "\n";
  return out.str();
}

}  // namespace tsg
