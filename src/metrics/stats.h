// RunStats — execution metering for TI-BSP and vertex-centric runs.
//
// The engine appends one SuperstepRecord per (timestep, superstep) with the
// per-partition breakdown the paper analyses: compute time, message send
// time ("partition overhead"), barrier wait ("sync overhead") and instance
// load time. Aggregations reproduce the evaluation's derived series:
//   * per-timestep time (Fig. 6),
//   * per-partition utilization split (Fig. 7b/7d),
//   * modelled parallel time — the critical-path wall-clock a real k-VM
//     deployment would see (this host has one core, so partitions
//     time-slice; see DESIGN.md §1).
//
// User counters (e.g. "vertices finalized") are accumulated per
// (counter, timestep, partition) for Fig. 7a/7c.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "graph/types.h"
#include "metrics/attribution.h"

namespace tsg {

struct PartitionSuperstepStats {
  std::int64_t compute_ns = 0;
  std::int64_t send_ns = 0;
  std::int64_t sync_ns = 0;
  std::int64_t load_ns = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t subgraphs_computed = 0;
};

struct SuperstepRecord {
  Timestep timestep = 0;
  std::int32_t superstep = 0;
  bool is_merge_phase = false;
  std::vector<PartitionSuperstepStats> parts;
  std::uint64_t delivered_messages = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t cross_partition_bytes = 0;
  std::uint64_t cross_partition_messages = 0;
};

// Network model used ONLY for modelled parallel time: approximates the
// paper's 1 GbE interconnect between partition VMs.
struct NetworkModel {
  double bandwidth_bytes_per_sec = 125e6;  // 1 Gb/s
  std::int64_t per_message_ns = 2'000;     // serialization + framing
  std::int64_t per_superstep_barrier_ns = 500'000;  // 0.5 ms sync round
};

class RunStats {
 public:
  explicit RunStats(std::uint32_t num_partitions = 0)
      : num_partitions_(num_partitions) {}

  [[nodiscard]] std::uint32_t numPartitions() const { return num_partitions_; }

  void addSuperstep(SuperstepRecord record) {
    records_.push_back(std::move(record));
  }
  [[nodiscard]] const std::vector<SuperstepRecord>& supersteps() const {
    return records_;
  }

  void addCounter(const std::string& name, Timestep t, PartitionId p,
                  std::uint64_t value);
  // counters()[name][timestep][partition]; rows are sized lazily.
  [[nodiscard]] const std::map<std::string,
                               std::vector<std::vector<std::uint64_t>>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] std::uint64_t counterTotal(const std::string& name) const;

  void setWallClockNs(std::int64_t ns) { wall_clock_ns_ = ns; }
  [[nodiscard]] std::int64_t wallClockNs() const { return wall_clock_ns_; }

  // MetricsRegistry delta captured over this run (bus/cluster/gofs/engine
  // feeds); attached by the engines, exported by metrics/report JSON.
  void setMetrics(MetricsRegistry::Snapshot metrics) {
    metrics_ = std::move(metrics);
  }
  [[nodiscard]] const MetricsRegistry::Snapshot& metrics() const {
    return metrics_;
  }

  // Histogram deltas over this run (superstep phase durations,
  // delivered-batch sizes); attached by the engines alongside metrics().
  void setHistograms(MetricsRegistry::HistogramSnapshots histograms) {
    histograms_ = std::move(histograms);
  }
  [[nodiscard]] const MetricsRegistry::HistogramSnapshots& histograms() const {
    return histograms_;
  }

  // Cost-attribution table captured over this run (only when the profiler
  // was armed via --profile=); attached by the engines next to metrics().
  void setAttribution(AttributionTable table) {
    attribution_ = std::move(table);
  }
  [[nodiscard]] bool hasAttribution() const {
    return attribution_.has_value();
  }
  [[nodiscard]] const AttributionTable& attribution() const {
    return *attribution_;
  }

  // --- aggregations ---

  [[nodiscard]] std::int32_t numTimesteps() const;
  [[nodiscard]] std::uint64_t totalSupersteps() const {
    return records_.size();
  }
  [[nodiscard]] std::uint64_t totalMessages() const;
  [[nodiscard]] std::uint64_t totalBytes() const;
  // Cross-partition traffic totals — the paper's key overhead signal
  // (Fig. 7b/7d); summed from the per-superstep records.
  [[nodiscard]] std::uint64_t totalCrossPartitionMessages() const;
  [[nodiscard]] std::uint64_t totalCrossPartitionBytes() const;

  // Critical-path time of superstep records in [t, t] or all of them:
  // sum over supersteps of (max over partitions of busy) + modelled comms.
  [[nodiscard]] std::int64_t modelledParallelNs(
      const NetworkModel& net = {}) const;
  [[nodiscard]] std::int64_t modelledTimestepNs(
      Timestep t, const NetworkModel& net = {}) const;

  // Per-partition totals across the run (Fig. 7b/7d).
  struct PartitionUtilization {
    std::int64_t compute_ns = 0;
    std::int64_t send_ns = 0;   // partition overhead
    std::int64_t sync_ns = 0;   // sync overhead (incl. idle at barrier)
    std::int64_t load_ns = 0;
    [[nodiscard]] std::int64_t totalNs() const {
      return compute_ns + send_ns + sync_ns + load_ns;
    }
    [[nodiscard]] double computeFraction() const {
      const auto total = totalNs();
      return total == 0 ? 0.0
                        : static_cast<double>(compute_ns) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] std::vector<PartitionUtilization> partitionUtilization() const;

 private:
  std::uint32_t num_partitions_;
  std::vector<SuperstepRecord> records_;
  std::map<std::string, std::vector<std::vector<std::uint64_t>>> counters_;
  std::int64_t wall_clock_ns_ = 0;
  MetricsRegistry::Snapshot metrics_;
  MetricsRegistry::HistogramSnapshots histograms_;
  std::optional<AttributionTable> attribution_;
};

}  // namespace tsg
