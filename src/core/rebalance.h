// Subgraph rebalancing — the research direction the paper sketches in
// §IV-E: "Partitions which are active at a given timestep can pass some of
// their subgraphs to an idle partition if the potential improvements in
// average CPU utilization outweigh the cost of rebalancing. ... these small
// subgraphs could be candidates for moving."
//
// planRebalance() turns a finished run's metering into a migration plan:
// per-partition load comes from the observed compute time, per-subgraph
// load is apportioned by vertex count, and a greedy pass moves tail
// subgraphs (never a partition's largest) from the hottest partition to the
// coolest while the predicted imbalance improves. The plan reports the
// predicted imbalance and the edge-cut cost of the move so callers can
// apply the paper's "improvement vs rebalancing cost" judgement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "partition/partitioned_graph.h"
#include "metrics/stats.h"

namespace tsg {

struct RebalanceOptions {
  std::uint32_t max_moves = 16;
  // Stop when predicted (max load / mean load) falls below this.
  double target_imbalance = 1.05;
};

struct RebalanceMove {
  SubgraphId subgraph = kInvalidSubgraph;
  PartitionId from = kInvalidPartition;
  PartitionId to = kInvalidPartition;
  double load = 0.0;  // estimated share of compute time moved
};

struct RebalancePlan {
  PartitionAssignment new_assignment;
  std::vector<RebalanceMove> moves;
  double imbalance_before = 1.0;  // max partition load / mean load
  double imbalance_after = 1.0;   // predicted after the moves
  double cut_fraction_before = 0.0;
  double cut_fraction_after = 0.0;

  [[nodiscard]] bool hasMoves() const { return !moves.empty(); }
};

// Builds a migration plan from observed per-partition compute time.
// Requires stats recorded over the same partitioned graph.
Result<RebalancePlan> planRebalance(const PartitionedGraph& pg,
                                    const RunStats& stats,
                                    const RebalanceOptions& options = {});

}  // namespace tsg
