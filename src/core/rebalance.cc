#include "core/rebalance.h"

#include <algorithm>
#include <numeric>

namespace tsg {
namespace {

double imbalanceOf(const std::vector<double>& loads) {
  if (loads.empty()) {
    return 1.0;
  }
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double mean = total / static_cast<double>(loads.size());
  if (mean <= 0.0) {
    return 1.0;
  }
  return *std::max_element(loads.begin(), loads.end()) / mean;
}

}  // namespace

Result<RebalancePlan> planRebalance(const PartitionedGraph& pg,
                                    const RunStats& stats,
                                    const RebalanceOptions& options) {
  const auto k = pg.numPartitions();
  if (stats.numPartitions() != k) {
    return Status::invalidArgument(
        "stats partition count does not match the graph");
  }

  RebalancePlan plan;
  plan.new_assignment = pg.assignment();

  // Observed per-partition load: compute + send time across the run.
  const auto utilization = stats.partitionUtilization();
  std::vector<double> load(k, 0.0);
  for (PartitionId p = 0; p < k; ++p) {
    load[p] = static_cast<double>(utilization[p].compute_ns +
                                  utilization[p].send_ns);
  }
  plan.imbalance_before = imbalanceOf(load);
  plan.imbalance_after = plan.imbalance_before;
  plan.cut_fraction_before =
      evaluatePartition(pg.graphTemplate(), pg.assignment(), k).cut_fraction;
  plan.cut_fraction_after = plan.cut_fraction_before;
  if (k < 2) {
    return plan;
  }

  // Estimated load per subgraph: its partition's load apportioned by
  // vertex count (the runtime meters per partition, not per subgraph).
  struct Candidate {
    SubgraphId sg;
    PartitionId home;
    double load;
    std::size_t vertices;
  };
  std::vector<std::vector<Candidate>> movable(k);  // per partition, tail only
  for (PartitionId p = 0; p < k; ++p) {
    const Partition& part = pg.partition(p);
    const auto part_vertices = static_cast<double>(part.numVertices());
    if (part_vertices == 0 || part.subgraphs.size() < 2) {
      continue;  // never move a partition's only (or largest) subgraph
    }
    // Subgraphs are ordered largest-first; the tail after index 0 moves.
    for (std::size_t i = 1; i < part.subgraphs.size(); ++i) {
      const Subgraph& sg = part.subgraphs[i];
      movable[p].push_back(
          {sg.id, p,
           load[p] * static_cast<double>(sg.numVertices()) / part_vertices,
           sg.numVertices()});
    }
    // Biggest movable first: each move closes the largest possible gap.
    std::sort(movable[p].begin(), movable[p].end(),
              [](const Candidate& a, const Candidate& b) {
                return a.load > b.load;
              });
  }

  const double total_load = std::accumulate(load.begin(), load.end(), 0.0);
  const double mean_load = total_load / static_cast<double>(k);

  for (std::uint32_t step = 0; step < options.max_moves; ++step) {
    if (imbalanceOf(load) <= options.target_imbalance) {
      break;
    }
    const auto hottest = static_cast<PartitionId>(
        std::max_element(load.begin(), load.end()) - load.begin());
    const auto coolest = static_cast<PartitionId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    if (hottest == coolest || movable[hottest].empty()) {
      break;
    }
    // Largest candidate that does not overshoot: moving it must not push
    // the coolest partition above the mean by more than it relieves.
    const double gap = load[hottest] - load[coolest];
    auto& pool = movable[hottest];
    auto chosen = pool.end();
    for (auto it = pool.begin(); it != pool.end(); ++it) {
      if (it->load <= gap / 2.0 || chosen == pool.end()) {
        chosen = it;
        if (it->load <= gap / 2.0) {
          break;  // pool is sorted descending: first fit is the best fit
        }
      }
    }
    if (chosen == pool.end() || chosen->load >= gap) {
      break;  // any remaining move would worsen the balance
    }
    (void)mean_load;

    RebalanceMove move;
    move.subgraph = chosen->sg;
    move.from = hottest;
    move.to = coolest;
    move.load = chosen->load;
    plan.moves.push_back(move);
    load[hottest] -= chosen->load;
    load[coolest] += chosen->load;
    for (const VertexIndex v : pg.subgraph(chosen->sg).vertices) {
      plan.new_assignment[v] = coolest;
    }
    pool.erase(chosen);
  }

  plan.imbalance_after = imbalanceOf(load);
  plan.cut_fraction_after =
      evaluatePartition(pg.graphTemplate(), plan.new_assignment, k)
          .cut_fraction;
  return plan;
}

}  // namespace tsg
