#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define TSG_HAVE_MALLOC_TRIM 1
#endif

#include "check/bsp_checker.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "gofs/checkpoint.h"
#include "profile/profiler.h"
#include "runtime/cluster.h"
#include "runtime/fault_injector.h"
#include "runtime/message_bus.h"
#include "runtime/ready_tracker.h"

namespace tsg {
namespace core_detail {

// Per-partition execution state backing SubgraphContext. Each instance is
// touched only by its partition's worker thread during a round; the
// coordinator reads/drains it between rounds.
class WorkerState {
 public:
  WorkerState(const PartitionedGraph& pg, PartitionId p, MessageBus& bus,
              Pattern pattern, std::size_t planned_timesteps, std::int64_t t0,
              std::int64_t delta)
      : pg_(pg),
        partition_(p),
        bus_(bus),
        pattern_(pattern),
        planned_timesteps_(planned_timesteps),
        t0_(t0),
        delta_(delta) {
    const std::size_t n = pg.partition(p).subgraphs.size();
    sg_inbox.resize(n);
    route_counts.assign(n, 0);
    halted.assign(n, 0);
    halt_timestep.assign(n, 0);
  }

  SubgraphContext makeContext() { return SubgraphContext(*this); }

  // Immutable across the run.
  const PartitionedGraph& pg_;
  PartitionId partition_;
  MessageBus& bus_;
  Pattern pattern_;
  std::size_t planned_timesteps_;
  std::int64_t t0_;
  std::int64_t delta_;

  TiBspProgram* program = nullptr;

  // Per-timestep / per-superstep.
  const PartitionInstanceData* instance = nullptr;
  Timestep timestep = 0;
  std::int32_t superstep = 0;
  ExecPhase phase = ExecPhase::kCompute;

  std::vector<std::vector<Message>> sg_inbox;  // by subgraph local index
  std::vector<std::uint32_t> route_counts;     // inbox-routing scratch
  std::vector<std::uint8_t> halted;
  std::vector<std::uint8_t> halt_timestep;

  // Subgraph currently being served.
  std::uint32_t cur_local = 0;
  const Subgraph* cur_sg = nullptr;

  // Outgoing inter-timestep / merge traffic (drained by the coordinator).
  std::vector<Message> next_msgs;
  std::vector<Message> merge_msgs;

  // Metering accumulators, drained per superstep.
  std::int64_t send_ns = 0;
  std::int64_t load_ns = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t subgraphs_computed = 0;

  // Results.
  std::vector<std::string> outputs;
  std::vector<std::pair<std::string, std::uint64_t>> counter_events;

  // Aggregators: events raised this timestep; snapshot of last timestep's
  // sums (coordinator-maintained; serial temporal mode only).
  std::vector<std::pair<std::string, std::uint64_t>> agg_events;
  std::map<std::string, std::uint64_t> agg_prev;
};

}  // namespace core_detail

using core_detail::WorkerState;

// ---------------------------------------------------------------------------
// SubgraphContext — thin forwarding layer over WorkerState.
// ---------------------------------------------------------------------------

SubgraphId SubgraphContext::subgraphId() const {
  TSG_CHECK(state_.cur_sg != nullptr);
  return state_.cur_sg->id;
}
PartitionId SubgraphContext::partitionId() const { return state_.partition_; }
Timestep SubgraphContext::timestep() const { return state_.timestep; }
std::int32_t SubgraphContext::superstep() const { return state_.superstep; }
ExecPhase SubgraphContext::phase() const { return state_.phase; }
std::size_t SubgraphContext::numTimestepsPlanned() const {
  return state_.planned_timesteps_;
}
std::int64_t SubgraphContext::delta() const { return state_.delta_; }
std::int64_t SubgraphContext::timestampOf(Timestep t) const {
  return state_.t0_ + static_cast<std::int64_t>(t) * state_.delta_;
}

const GraphTemplate& SubgraphContext::graphTemplate() const {
  return state_.pg_.graphTemplate();
}
const PartitionedGraph& SubgraphContext::partitionedGraph() const {
  return state_.pg_;
}
const Subgraph& SubgraphContext::subgraph() const {
  TSG_CHECK(state_.cur_sg != nullptr);
  return *state_.cur_sg;
}
bool SubgraphContext::ownsVertex(VertexIndex v) const {
  return state_.pg_.partitionOfVertex(v) == state_.partition_;
}

namespace {

const PartitionInstanceData& instanceOf(const WorkerState& st) {
  TSG_CHECK_MSG(st.instance != nullptr,
                "instance values are unavailable in the Merge phase");
  return *st.instance;
}

std::uint32_t vertexSlot(const WorkerState& st, VertexIndex v) {
  TSG_CHECK_MSG(st.pg_.partitionOfVertex(v) == st.partition_,
                "vertex not owned by this partition");
  return st.pg_.localIndexOfVertex(v);
}

std::uint32_t edgeSlot(const WorkerState& st, EdgeIndex e) {
  TSG_CHECK_MSG(st.pg_.partitionOfVertex(st.pg_.graphTemplate().edgeSrc(e)) ==
                    st.partition_,
                "edge not owned by this partition");
  return st.pg_.localIndexOfEdge(e);
}

}  // namespace

std::int64_t SubgraphContext::vertexInt64(std::size_t attr,
                                          VertexIndex v) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.vertex_cols.size());
  return inst.vertex_cols[attr].asInt64()[vertexSlot(state_, v)];
}
double SubgraphContext::vertexDouble(std::size_t attr, VertexIndex v) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.vertex_cols.size());
  return inst.vertex_cols[attr].asDouble()[vertexSlot(state_, v)];
}
bool SubgraphContext::vertexBool(std::size_t attr, VertexIndex v) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.vertex_cols.size());
  return inst.vertex_cols[attr].asBool()[vertexSlot(state_, v)] != 0;
}
const std::string& SubgraphContext::vertexString(std::size_t attr,
                                                 VertexIndex v) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.vertex_cols.size());
  return inst.vertex_cols[attr].asString()[vertexSlot(state_, v)];
}
const std::vector<std::string>& SubgraphContext::vertexStringList(
    std::size_t attr, VertexIndex v) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.vertex_cols.size());
  return inst.vertex_cols[attr].asStringList()[vertexSlot(state_, v)];
}
std::int64_t SubgraphContext::edgeInt64(std::size_t attr, EdgeIndex e) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.edge_cols.size());
  return inst.edge_cols[attr].asInt64()[edgeSlot(state_, e)];
}
double SubgraphContext::edgeDouble(std::size_t attr, EdgeIndex e) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.edge_cols.size());
  return inst.edge_cols[attr].asDouble()[edgeSlot(state_, e)];
}
bool SubgraphContext::edgeBool(std::size_t attr, EdgeIndex e) const {
  const auto& inst = instanceOf(state_);
  TSG_CHECK(attr < inst.edge_cols.size());
  return inst.edge_cols[attr].asBool()[edgeSlot(state_, e)] != 0;
}

std::span<const Message> SubgraphContext::messages() const {
  TSG_CHECK(state_.cur_local < state_.sg_inbox.size());
  return state_.sg_inbox[state_.cur_local];
}

void SubgraphContext::sendToSubgraph(SubgraphId dst, PayloadBuffer payload) {
  auto& st = state_;
  TSG_CHECK_MSG(st.phase == ExecPhase::kCompute ||
                    st.phase == ExecPhase::kMerge,
                "sendToSubgraph is a Compute/Merge construct");
  ScopedCpuTimer timer(st.send_ns);
  Message msg;
  msg.src = st.cur_sg->id;
  msg.dst = dst;
  msg.payload = std::move(payload);
  ++st.msgs_sent;
  st.bytes_sent += msg.byteSize();
  if (Profiler::enabled()) [[unlikely]] {
    Profiler::global().recordSend(msg.src, dst, st.timestep, msg.byteSize());
  }
  st.bus_.send(st.partition_, st.pg_.partitionOfSubgraph(dst), std::move(msg));
}

void SubgraphContext::sendToNextTimestep(PayloadBuffer payload) {
  sendToSubgraphInNextTimestep(state_.cur_sg->id, std::move(payload));
}

void SubgraphContext::sendToSubgraphInNextTimestep(SubgraphId dst,
                                                   PayloadBuffer payload) {
  auto& st = state_;
  TSG_CHECK_MSG(st.pattern_ == Pattern::kSequentiallyDependent,
                "inter-timestep messaging requires the sequentially "
                "dependent pattern");
  TSG_CHECK(st.phase != ExecPhase::kMerge);
  ScopedCpuTimer timer(st.send_ns);
  Message msg;
  msg.src = st.cur_sg->id;
  msg.dst = dst;
  msg.origin_timestep = st.timestep;
  msg.payload = std::move(payload);
  ++st.msgs_sent;
  st.bytes_sent += msg.byteSize();
  if (Profiler::enabled()) [[unlikely]] {
    Profiler::global().recordSend(msg.src, dst, st.timestep, msg.byteSize());
  }
  st.next_msgs.push_back(std::move(msg));
}

void SubgraphContext::sendMessageToMerge(PayloadBuffer payload) {
  auto& st = state_;
  TSG_CHECK_MSG(st.pattern_ == Pattern::kEventuallyDependent,
                "sendMessageToMerge requires the eventually dependent "
                "pattern");
  TSG_CHECK(st.phase != ExecPhase::kMerge);
  ScopedCpuTimer timer(st.send_ns);
  Message msg;
  msg.src = st.cur_sg->id;
  msg.dst = st.cur_sg->id;
  msg.origin_timestep = st.timestep;
  msg.payload = std::move(payload);
  ++st.msgs_sent;
  st.bytes_sent += msg.byteSize();
  if (Profiler::enabled()) [[unlikely]] {
    Profiler::global().recordSend(msg.src, msg.dst, st.timestep,
                                  msg.byteSize());
  }
  st.merge_msgs.push_back(std::move(msg));
}

void SubgraphContext::voteToHalt() {
  state_.halted[state_.cur_local] = 1;
}

void SubgraphContext::voteToHaltTimestep() {
  TSG_CHECK(state_.phase != ExecPhase::kMerge);
  state_.halt_timestep[state_.cur_local] = 1;
}

void SubgraphContext::output(std::string line) {
  state_.outputs.push_back(std::move(line));
}

void SubgraphContext::addCounter(std::string_view name, std::uint64_t value) {
  state_.counter_events.emplace_back(std::string(name), value);
}

void SubgraphContext::aggregate(std::string_view name, std::uint64_t value) {
  TSG_CHECK(state_.phase != ExecPhase::kMerge);
  state_.agg_events.emplace_back(std::string(name), value);
}

std::uint64_t SubgraphContext::aggregatedU64(std::string_view name) const {
  const auto it = state_.agg_prev.find(std::string(name));
  return it == state_.agg_prev.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Engine internals.
// ---------------------------------------------------------------------------

namespace {

// Abstracts how a round is executed across partitions: a Cluster (spatial
// concurrency) or a sequential loop (inside a temporally concurrent task).
using RoundRunner = std::function<std::vector<Cluster::RoundTiming>(
    const std::function<void(PartitionId)>&)>;

RoundRunner makeClusterRunner(Cluster& cluster) {
  return [&cluster](const std::function<void(PartitionId)>& job) {
    std::vector<Cluster::RoundTiming> timings = cluster.run(job);
    if (cluster.hasFaults()) [[unlikely]] {
      // A worker died mid-round (fault::WorkerFault). The round itself
      // completed — the barrier never hangs — so the coordinator unwinds
      // here and the engine's recovery path takes over.
      std::string detail;
      for (const auto& f : cluster.takeFaults()) {
        if (!detail.empty()) {
          detail += "; ";
        }
        detail += f.detail;
      }
      throw fault::RecoveryNeeded(std::move(detail));
    }
    return timings;
  };
}

// Full-cluster rounds (maintenance, end-of-timestep) on the async
// substrate: every partition participates, faults unwind like the BSP
// runner's.
RoundRunner makeAsyncAllRunner(AsyncCluster& cluster) {
  return [&cluster](const std::function<void(PartitionId)>& job) {
    std::vector<Cluster::RoundTiming> timings = cluster.runAll(job);
    if (cluster.hasFaults()) [[unlikely]] {
      std::string detail;
      for (const auto& f : cluster.takeFaults()) {
        if (!detail.empty()) {
          detail += "; ";
        }
        detail += f.detail;
      }
      throw fault::RecoveryNeeded(std::move(detail));
    }
    return timings;
  };
}

RoundRunner makeSequentialRunner(std::uint32_t num_partitions) {
  return [num_partitions](const std::function<void(PartitionId)>& job) {
    std::vector<Cluster::RoundTiming> timings(num_partitions);
    for (PartitionId p = 0; p < num_partitions; ++p) {
      const std::int64_t start = steadyNowNs();
      job(p);
      timings[p].busy_ns = steadyNowNs() - start;
      timings[p].sync_ns = 0;
    }
    return timings;
  };
}

void routeBySubgraphPartition(const PartitionedGraph& pg,
                              std::vector<Message> msgs, MessageBus& bus) {
  std::vector<std::vector<Message>> grouped(pg.numPartitions());
  for (auto& msg : msgs) {
    TSG_CHECK_MSG(msg.dst < pg.numSubgraphs(), "message to unknown subgraph");
    grouped[pg.partitionOfSubgraph(msg.dst)].push_back(std::move(msg));
  }
  for (PartitionId p = 0; p < grouped.size(); ++p) {
    if (!grouped[p].empty()) {
      bus.inject(p, std::move(grouped[p]));
    }
  }
}

// Routes the partition's inbox batches into per-subgraph queues. Runs on the
// partition's worker thread at the start of the round (not on the serial
// coordinator path): first a counting pass so every destination bucket is
// reserve()d exactly once, then a move pass.
// tsg:hot — touches every delivered message once per superstep.
void distributeInbox(WorkerState& st) {
  auto& inbox = st.bus_.inbox(st.partition_);
  if (inbox.empty()) {
    return;
  }
  TraceSpan span("bus", "bus.drain", "partition", st.partition_, "messages",
                 static_cast<std::int64_t>(inbox.size()));
  auto& counts = st.route_counts;  // zeroed outside the hot path
  for (const auto& batch : inbox.batches()) {
    for (const auto& msg : batch) {
      TSG_CHECK(msg.dst != kInvalidSubgraph);
      TSG_CHECK(st.pg_.partitionOfSubgraph(msg.dst) == st.partition_);
      ++counts[st.pg_.subgraphIndexInPartition(msg.dst)];
    }
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0) {
      st.sg_inbox[i].reserve(st.sg_inbox[i].size() + counts[i]);
      counts[i] = 0;
    }
  }
  for (auto& batch : inbox.batches()) {
    for (auto& msg : batch) {
      st.sg_inbox[st.pg_.subgraphIndexInPartition(msg.dst)].push_back(
          std::move(msg));
    }
  }
  inbox.clear();
}

// Drains per-superstep meters from a state into a stats record entry.
void drainPartitionStats(WorkerState& st, PartitionSuperstepStats& ps,
                         const Cluster::RoundTiming& timing) {
  ps.send_ns = std::exchange(st.send_ns, 0);
  ps.load_ns = std::exchange(st.load_ns, 0);
  ps.compute_ns =
      std::max<std::int64_t>(0, timing.busy_ns - ps.send_ns - ps.load_ns);
  ps.sync_ns = timing.sync_ns;
  ps.messages_sent = std::exchange(st.msgs_sent, 0);
  ps.bytes_sent = std::exchange(st.bytes_sent, 0);
  ps.subgraphs_computed = std::exchange(st.subgraphs_computed, 0);
}

struct TimestepOutcome {
  bool all_halt_timestep = false;
  std::int32_t supersteps = 0;
};

struct ExecEnv;
bool runEndOfTimestep(ExecEnv& env, Timestep t, std::int32_t s);

struct ExecEnv {
  const PartitionedGraph& pg;
  InstanceProvider& provider;
  const TiBspConfig& config;
  std::vector<std::unique_ptr<WorkerState>>& states;
  MessageBus& bus;
  const RoundRunner& round;
  RunStats& stats;
  std::mutex* stats_mutex;  // null when single coordinator thread
  check::BspChecker* checker;  // null when protocol checking is off
};

void commitRecord(ExecEnv& env, SuperstepRecord rec, Timestep counter_t) {
  // Feed the process-wide registry (atomic cells; no lock needed).
  auto& registry = MetricsRegistry::global();
  registry.counter("engine.supersteps").increment();
  // Progress gauges for the live telemetry sampler: which (timestep,
  // superstep) the engine most recently committed. These are what `tsgcli
  // top` and the timeline's phase-aligned curves key on.
  registry.gauge("engine.current_timestep")
      .set(static_cast<std::int64_t>(rec.timestep));
  registry.gauge("engine.current_superstep")
      .set(static_cast<std::int64_t>(rec.superstep));
  // Phase-duration distributions across (superstep × partition) samples —
  // the spread the straggler analysis quantifies (p50/p99/max).
  auto& h_compute = registry.histogram("engine.superstep_compute_ns");
  auto& h_send = registry.histogram("engine.superstep_send_ns");
  auto& h_sync = registry.histogram("engine.superstep_sync_ns");
  for (PartitionId p = 0; p < rec.parts.size(); ++p) {
    const auto& ps = rec.parts[p];
    h_compute.record(static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, ps.compute_ns)));
    h_send.record(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, ps.send_ns)));
    h_sync.record(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, ps.sync_ns)));
    if (ps.subgraphs_computed != 0) {
      registry.counter("engine.subgraphs_computed", static_cast<std::int32_t>(p))
          .add(ps.subgraphs_computed);
    }
    if (ps.messages_sent != 0) {
      registry.counter("engine.messages_sent", static_cast<std::int32_t>(p))
          .add(ps.messages_sent);
    }
  }

  // Flush counters alongside the record; the lock covers temporally
  // concurrent tasks appending out of order.
  std::unique_lock<std::mutex> lock;
  if (env.stats_mutex != nullptr) {
    lock = std::unique_lock(*env.stats_mutex);
  }
  for (auto& st_ptr : env.states) {
    auto& st = *st_ptr;
    for (const auto& [name, value] : st.counter_events) {
      env.stats.addCounter(name, counter_t, st.partition_, value);
    }
    st.counter_events.clear();
  }
  env.stats.addSuperstep(std::move(rec));
}

// One full BSP over the instance at timestep t. seed_msgs are injected
// before superstep 0 (inter-timestep or application-input traffic).
TimestepOutcome runOneTimestep(ExecEnv& env, Timestep t,
                               std::vector<Message> seed_msgs) {
  TraceSpan timestep_span("tibsp", "tibsp.timestep", "t", t);
  if (env.checker != nullptr) {
    env.checker->beginTimestep(t);
  }
  const auto k = static_cast<std::uint32_t>(env.states.size());
  for (auto& st_ptr : env.states) {
    auto& st = *st_ptr;
    st.timestep = t;
    st.superstep = 0;
    st.phase = ExecPhase::kCompute;
    st.instance = nullptr;
    std::fill(st.halted.begin(), st.halted.end(), 0);
    std::fill(st.halt_timestep.begin(), st.halt_timestep.end(), 0);
  }
  routeBySubgraphPartition(env.pg, std::move(seed_msgs), env.bus);

  TimestepOutcome outcome;
  std::int32_t s = 0;
  while (true) {
    TraceSpan superstep_span("tibsp", "tibsp.superstep", "t", t, "s", s);
    if (env.checker != nullptr) {
      env.checker->beginSuperstep(s);
    }
    for (auto& st_ptr : env.states) {
      st_ptr->superstep = s;
    }
    const auto& timings = env.round([&env, t, s](PartitionId p) {
      auto& st = *env.states[p];
      auto& inj = fault::FaultInjector::global();
      if (env.checker != nullptr) {
        env.checker->enterCompute(p);
      }
      if (s == 0) {
        if (inj.armed() &&
            inj.fire(fault::Site::kSliceLoad, p, t, fault::Action::kKill))
            [[unlikely]] {
          throw fault::WorkerFault(p, t, fault::Site::kSliceLoad);
        }
        TraceSpan load_span("gofs", "gofs.instance_load", "partition", p,
                            "t", t);
        st.instance = &env.provider.instanceFor(p, t);
        st.load_ns += env.provider.takeLoadNs(p);
      }
      distributeInbox(st);
      if (inj.armed()) [[unlikely]] {
        if (const auto spec = inj.fire(fault::Site::kCompute, p, t)) {
          if (spec->action == fault::Action::kKill) {
            throw fault::WorkerFault(p, t, fault::Site::kCompute);
          }
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec->delay_us));
        }
      }
      const Partition& part = env.pg.partition(p);
      std::uint64_t skipped = 0;
      for (std::uint32_t i = 0; i < part.subgraphs.size(); ++i) {
        const bool has_msgs = !st.sg_inbox[i].empty();
        const bool active = s == 0 || has_msgs || st.halted[i] == 0;
        if (!active) {
          continue;
        }
        // Incremental skip (streaming runs): a message-free subgraph whose
        // instance values did not change this timestep, and whose program
        // opted in via skippableWhenClean(), halts without computing. Only
        // legal at superstep 0 of a non-first timestep — later supersteps
        // are driven by messages alone, and the first timestep has no
        // previous sealed instance to be clean against.
        if (s == 0 && env.config.stream != nullptr &&
            t > env.config.first_timestep && !has_msgs &&
            st.program->skippableWhenClean() &&
            !env.config.stream->subgraphDirty(t, part.subgraphs[i].id)) {
          st.halted[i] = 1;
          ++skipped;
          continue;
        }
        if (env.checker != nullptr) {
          env.checker->onComputeUnit(p, part.subgraphs[i].id,
                                     st.halted[i] != 0, s == 0 || has_msgs);
        }
        st.halted[i] = 0;  // must re-vote to stay halted
        st.cur_local = i;
        st.cur_sg = &part.subgraphs[i];
        auto ctx = st.makeContext();
        if (Profiler::enabled()) [[unlikely]] {
          const std::int64_t unit_start = steadyNowNs();
          st.program->compute(ctx);
          Profiler::global().recordCompute(st.cur_sg->id, t,
                                           steadyNowNs() - unit_start);
        } else {
          st.program->compute(ctx);
        }
        ++st.subgraphs_computed;
        st.sg_inbox[i].clear();
      }
      if (skipped > 0) {
        MetricsRegistry::global()
            .counter("engine.subgraphs_skipped_incremental")
            .add(skipped);
      }
      if (inj.armed() &&
          inj.fire(fault::Site::kBarrier, p, t, fault::Action::kKill))
          [[unlikely]] {
        // Dies with work done but the compute phase still open: the
        // checker would see an unpaired round if recovery didn't re-pair.
        throw fault::WorkerFault(p, t, fault::Site::kBarrier);
      }
      if (env.checker != nullptr) {
        env.checker->exitCompute(p);
      }
    });

    SuperstepRecord rec;
    rec.timestep = t;
    rec.superstep = s;
    rec.parts.resize(k);
    bool all_halted = true;
    for (PartitionId p = 0; p < k; ++p) {
      auto& st = *env.states[p];
      drainPartitionStats(st, rec.parts[p], timings[p]);
      all_halted = all_halted &&
                   std::all_of(st.halted.begin(), st.halted.end(),
                               [](std::uint8_t h) { return h != 0; });
    }
    {
      auto& inj = fault::FaultInjector::global();
      if (inj.armed()) [[unlikely]] {
        if (const auto spec =
                inj.fire(fault::Site::kDeliver, kInvalidPartition, t)) {
          if (spec->action == fault::Action::kDrop) {
            // The batch is lost in transit: clear the fabric and unwind
            // into the recovery path (the checker forgives via onReset).
            env.bus.clearAll();
            commitRecord(env, std::move(rec), t);
            throw fault::RecoveryNeeded(
                "delivery batch dropped at timestep " + std::to_string(t) +
                " superstep " + std::to_string(s));
          }
          // Transient delay: the barrier stretches, delivery then proceeds.
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec->delay_us));
          MetricsRegistry::global()
              .counter("fault.delivery_delays")
              .increment();
        }
      }
    }
    const auto delivery = env.bus.deliver();
    rec.delivered_messages = delivery.messages;
    rec.delivered_bytes = delivery.bytes;
    rec.cross_partition_messages = delivery.cross_partition_messages;
    rec.cross_partition_bytes = delivery.cross_partition_bytes;
    traceCounter("bus.delivered_messages",
                 static_cast<std::int64_t>(delivery.messages));
    traceCounter("bus.cross_partition_bytes",
                 static_cast<std::int64_t>(delivery.cross_partition_bytes));
    commitRecord(env, std::move(rec), t);

    ++s;
    if (all_halted && delivery.messages == 0) {
      break;
    }
    if (s >= env.config.max_supersteps_per_timestep) {
      TSG_LOG(Warn) << "timestep " << t << " hit the superstep cap ("
                    << s << "); aborting its BSP";
      env.bus.clearAll();
      break;
    }
  }
  outcome.supersteps = s;
  outcome.all_halt_timestep = runEndOfTimestep(env, t, s);
  return outcome;
}

// EndOfTimestep hook: every subgraph, one round (metered like a superstep).
// Runs as a full round on either substrate (all partitions participate
// regardless of halt state). Returns whether every subgraph voted to halt
// the timestep loop.
bool runEndOfTimestep(ExecEnv& env, Timestep t, std::int32_t s) {
  const auto k = static_cast<std::uint32_t>(env.states.size());
  TraceSpan eot_span("tibsp", "tibsp.end_of_timestep", "t", t);
  if (env.checker != nullptr) {
    env.checker->beginSuperstep(s);
  }
  for (auto& st_ptr : env.states) {
    st_ptr->superstep = s;
    st_ptr->phase = ExecPhase::kEndOfTimestep;
  }
  const auto& eot_timings = env.round([&env](PartitionId p) {
    auto& st = *env.states[p];
    if (env.checker != nullptr) {
      env.checker->enterCompute(p);
    }
    const Partition& part = env.pg.partition(p);
    for (std::uint32_t i = 0; i < part.subgraphs.size(); ++i) {
      st.cur_local = i;
      st.cur_sg = &part.subgraphs[i];
      auto ctx = st.makeContext();
      st.program->endOfTimestep(ctx);
    }
    if (env.checker != nullptr) {
      env.checker->exitCompute(p);
    }
  });
  SuperstepRecord eot_rec;
  eot_rec.timestep = t;
  eot_rec.superstep = s;
  eot_rec.parts.resize(k);
  bool all_halt_timestep = true;
  for (PartitionId p = 0; p < k; ++p) {
    auto& st = *env.states[p];
    drainPartitionStats(st, eot_rec.parts[p], eot_timings[p]);
    all_halt_timestep =
        all_halt_timestep &&
        std::all_of(st.halt_timestep.begin(), st.halt_timestep.end(),
                    [](std::uint8_t h) { return h != 0; });
  }
  commitRecord(env, std::move(eot_rec), t);
  return all_halt_timestep;
}

// The Merge BSP of the eventually dependent pattern (§II-D). Runs over the
// subgraph templates; instance values are unavailable.
void runMergePhase(ExecEnv& env, std::vector<Message> merge_pool,
                   Timestep stats_timestep) {
  TraceSpan merge_span("tibsp", "tibsp.merge");
  if (env.checker != nullptr) {
    env.checker->beginTimestep(stats_timestep);
  }
  const auto k = static_cast<std::uint32_t>(env.states.size());
  for (auto& st_ptr : env.states) {
    auto& st = *st_ptr;
    st.timestep = stats_timestep;
    st.phase = ExecPhase::kMerge;
    st.instance = nullptr;
    std::fill(st.halted.begin(), st.halted.end(), 0);
  }
  routeBySubgraphPartition(env.pg, std::move(merge_pool), env.bus);

  std::int32_t s = 0;
  while (true) {
    TraceSpan superstep_span("tibsp", "tibsp.merge_superstep", "s", s);
    if (env.checker != nullptr) {
      env.checker->beginSuperstep(s);
    }
    for (auto& st_ptr : env.states) {
      st_ptr->superstep = s;
    }
    const auto& timings = env.round([&env, s, stats_timestep](PartitionId p) {
      auto& st = *env.states[p];
      if (env.checker != nullptr) {
        env.checker->enterCompute(p);
      }
      distributeInbox(st);
      const Partition& part = env.pg.partition(p);
      for (std::uint32_t i = 0; i < part.subgraphs.size(); ++i) {
        const bool has_msgs = !st.sg_inbox[i].empty();
        const bool active = s == 0 || has_msgs || st.halted[i] == 0;
        if (!active) {
          continue;
        }
        if (env.checker != nullptr) {
          env.checker->onComputeUnit(p, part.subgraphs[i].id,
                                     st.halted[i] != 0, s == 0 || has_msgs);
        }
        st.halted[i] = 0;
        st.cur_local = i;
        st.cur_sg = &part.subgraphs[i];
        auto ctx = st.makeContext();
        if (Profiler::enabled()) [[unlikely]] {
          const std::int64_t unit_start = steadyNowNs();
          st.program->merge(ctx);
          Profiler::global().recordCompute(st.cur_sg->id, stats_timestep,
                                           steadyNowNs() - unit_start);
        } else {
          st.program->merge(ctx);
        }
        ++st.subgraphs_computed;
        st.sg_inbox[i].clear();
      }
      if (env.checker != nullptr) {
        env.checker->exitCompute(p);
      }
    });

    SuperstepRecord rec;
    rec.timestep = stats_timestep;
    rec.superstep = s;
    rec.is_merge_phase = true;
    rec.parts.resize(k);
    bool all_halted = true;
    for (PartitionId p = 0; p < k; ++p) {
      auto& st = *env.states[p];
      drainPartitionStats(st, rec.parts[p], timings[p]);
      all_halted = all_halted &&
                   std::all_of(st.halted.begin(), st.halted.end(),
                               [](std::uint8_t h) { return h != 0; });
    }
    const auto delivery = env.bus.deliver();
    rec.delivered_messages = delivery.messages;
    rec.delivered_bytes = delivery.bytes;
    rec.cross_partition_messages = delivery.cross_partition_messages;
    rec.cross_partition_bytes = delivery.cross_partition_bytes;
    commitRecord(env, std::move(rec), stats_timestep);

    ++s;
    if (all_halted && delivery.messages == 0) {
      break;
    }
    if (s >= env.config.max_supersteps_per_timestep) {
      TSG_LOG(Warn) << "merge phase hit the superstep cap; aborting";
      env.bus.clearAll();
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Dependency-driven (async) schedule — wave execution of one BSP phase.
// ---------------------------------------------------------------------------
//
// A wave is the async analogue of a superstep: only partitions the
// ReadyTracker deems eligible run, as whole (partition, superstep) tasks on
// AsyncCluster's steal-deques. The last finisher seals the wave — delivery,
// record commit, termination check and readiness advance all happen there,
// exclusively, replacing the global barrier + coordinator rendezvous.
// Because one thread runs all of a partition's subgraphs in local order,
// the send sequence (and therefore every digest) is identical to BSP.
class WaveDriver final : public AsyncCluster::Driver {
 public:
  WaveDriver(ExecEnv& env, Timestep t, bool is_merge)
      : env_(env),
        t_(t),
        is_merge_(is_merge),
        tracker_(static_cast<std::int32_t>(env.states.size())),
        busy_ns_(env.states.size(), 0),
        wait_ns_(env.states.size(), 0),
        m_skips_(
            MetricsRegistry::global().counter("cluster.barrier_skips")) {
    tracker_.beginTimestep();
  }

  [[nodiscard]] std::int32_t wavesRun() const { return waves_run_; }

  void runTask(PartitionId p, const AsyncCluster::TaskInfo& info) override {
    auto& st = *env_.states[p];
    const std::int32_t s = info.wave;
    st.superstep = s;
    auto& inj = fault::FaultInjector::global();
    const std::int64_t cpu_start = threadCpuNowNs();
    if (env_.checker != nullptr) {
      env_.checker->enterCompute(p);
    }
    if (!is_merge_ && s == 0) {
      if (inj.armed() &&
          inj.fire(fault::Site::kSliceLoad, p, t_, fault::Action::kKill))
          [[unlikely]] {
        throw fault::WorkerFault(p, t_, fault::Site::kSliceLoad);
      }
      TraceSpan load_span("gofs", "gofs.instance_load", "partition", p, "t",
                          t_);
      st.instance = &env_.provider.instanceFor(p, t_);
      st.load_ns += env_.provider.takeLoadNs(p);
    }
    distributeInbox(st);
    if (!is_merge_ && inj.armed()) [[unlikely]] {
      if (const auto spec = inj.fire(fault::Site::kCompute, p, t_)) {
        if (spec->action == fault::Action::kKill) {
          throw fault::WorkerFault(p, t_, fault::Site::kCompute);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(spec->delay_us));
      }
    }
    const Partition& part = env_.pg.partition(p);
    std::uint64_t skipped = 0;
    for (std::uint32_t i = 0; i < part.subgraphs.size(); ++i) {
      const bool has_msgs = !st.sg_inbox[i].empty();
      const bool active = s == 0 || has_msgs || st.halted[i] == 0;
      if (!active) {
        continue;
      }
      // Incremental skip — same rule as the BSP loop above; merge phases
      // never skip (they are not timestep compute).
      if (!is_merge_ && s == 0 && env_.config.stream != nullptr &&
          t_ > env_.config.first_timestep && !has_msgs &&
          st.program->skippableWhenClean() &&
          !env_.config.stream->subgraphDirty(t_, part.subgraphs[i].id)) {
        st.halted[i] = 1;
        ++skipped;
        continue;
      }
      if (env_.checker != nullptr) {
        env_.checker->onComputeUnit(p, part.subgraphs[i].id,
                                    st.halted[i] != 0, s == 0 || has_msgs);
      }
      st.halted[i] = 0;  // must re-vote to stay halted
      st.cur_local = i;
      st.cur_sg = &part.subgraphs[i];
      auto ctx = st.makeContext();
      if (Profiler::enabled()) [[unlikely]] {
        const std::int64_t unit_start = steadyNowNs();
        if (is_merge_) {
          st.program->merge(ctx);
        } else {
          st.program->compute(ctx);
        }
        Profiler::global().recordCompute(st.cur_sg->id, t_,
                                         steadyNowNs() - unit_start);
      } else if (is_merge_) {
        st.program->merge(ctx);
      } else {
        st.program->compute(ctx);
      }
      ++st.subgraphs_computed;
      st.sg_inbox[i].clear();
    }
    if (skipped > 0) {
      MetricsRegistry::global()
          .counter("engine.subgraphs_skipped_incremental")
          .add(skipped);
    }
    if (!is_merge_ && inj.armed() &&
        inj.fire(fault::Site::kBarrier, p, t_, fault::Action::kKill))
        [[unlikely]] {
      throw fault::WorkerFault(p, t_, fault::Site::kBarrier);
    }
    if (env_.checker != nullptr) {
      env_.checker->exitCompute(p);
    }
    busy_ns_[p] = threadCpuNowNs() - cpu_start;
    wait_ns_[p] = info.ready_wait_ns;
  }

  std::vector<PartitionId> sealWave(std::int32_t s) override {
    const auto k = static_cast<std::uint32_t>(env_.states.size());
    SuperstepRecord rec;
    rec.timestep = t_;
    rec.superstep = s;
    rec.is_merge_phase = is_merge_;
    rec.parts.resize(k);
    for (PartitionId p = 0; p < k; ++p) {
      auto& st = *env_.states[p];
      // Skipped partitions drained nothing: their meters are zero, so the
      // row stays a zero row — same record schema as BSP.
      Cluster::RoundTiming timing;
      timing.busy_ns = std::exchange(busy_ns_[p], 0);
      timing.sync_ns = std::exchange(wait_ns_[p], 0);
      drainPartitionStats(st, rec.parts[p], timing);
      tracker_.recordQuiesce(
          p, std::all_of(st.halted.begin(), st.halted.end(),
                         [](std::uint8_t h) { return h != 0; }));
    }
    if (!is_merge_) {
      auto& inj = fault::FaultInjector::global();
      if (inj.armed()) [[unlikely]] {
        if (const auto spec =
                inj.fire(fault::Site::kDeliver, kInvalidPartition, t_)) {
          if (spec->action == fault::Action::kDrop) {
            env_.bus.clearAll();
            commitRecord(env_, std::move(rec), t_);
            throw fault::RecoveryNeeded(
                "delivery batch dropped at timestep " + std::to_string(t_) +
                " superstep " + std::to_string(s));
          }
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec->delay_us));
          MetricsRegistry::global()
              .counter("fault.delivery_delays")
              .increment();
        }
      }
    }
    const auto delivery = env_.bus.deliver();
    rec.delivered_messages = delivery.messages;
    rec.delivered_bytes = delivery.bytes;
    rec.cross_partition_messages = delivery.cross_partition_messages;
    rec.cross_partition_bytes = delivery.cross_partition_bytes;
    if (!is_merge_) {
      traceCounter("bus.delivered_messages",
                   static_cast<std::int64_t>(delivery.messages));
      traceCounter("bus.cross_partition_bytes",
                   static_cast<std::int64_t>(delivery.cross_partition_bytes));
    }
    commitRecord(env_, std::move(rec), t_);
    waves_run_ = s + 1;

    // Readiness: what the bus just put in each inbox is the ground-truth
    // inbound set for wave s+1 (the conservation accounting, per
    // destination).
    for (PartitionId p = 0; p < k; ++p) {
      tracker_.recordDelivery(
          p, static_cast<std::uint64_t>(env_.bus.inbox(p).size()));
    }
    if (tracker_.terminated()) {
      return {};
    }
    if (s + 1 >= env_.config.max_supersteps_per_timestep) {
      TSG_LOG(Warn) << (is_merge_ ? "merge phase" : "timestep")
                    << " hit the superstep cap (" << (s + 1)
                    << ") under the async schedule; aborting its BSP";
      env_.bus.clearAll();
      return {};
    }
    std::vector<PartitionId> next = tracker_.advance();
    if (next.size() < k) {
      m_skips_.add(k - static_cast<std::uint32_t>(next.size()));
      if (env_.checker != nullptr) {
        // Cross-check every skip against the bus: `next` is ascending, so
        // a two-pointer sweep finds the complement.
        std::size_t j = 0;
        for (PartitionId p = 0; p < k; ++p) {
          if (j < next.size() && next[j] == p) {
            ++j;
            continue;
          }
          env_.checker->onSkipRound(
              p, static_cast<std::uint64_t>(env_.bus.inbox(p).size()));
        }
      }
    }
    if (env_.checker != nullptr) {
      env_.checker->beginSuperstep(s + 1);
    }
    return next;
  }

 private:
  ExecEnv& env_;
  Timestep t_;
  bool is_merge_;
  ReadyTracker tracker_;
  std::vector<std::int64_t> busy_ns_;
  std::vector<std::int64_t> wait_ns_;
  std::int32_t waves_run_ = 0;
  MetricsRegistry::Counter& m_skips_;
};

// Async analogue of runOneTimestep: supersteps run as waves, then the
// end-of-timestep hook runs as a full round (it must reach every partition
// regardless of halt state, exactly like BSP).
TimestepOutcome runOneTimestepAsync(ExecEnv& env, AsyncCluster& cluster,
                                    Timestep t,
                                    std::vector<Message> seed_msgs) {
  TraceSpan timestep_span("tibsp", "tibsp.timestep", "t", t);
  if (env.checker != nullptr) {
    env.checker->beginTimestep(t);
    env.checker->beginSuperstep(0);
  }
  for (auto& st_ptr : env.states) {
    auto& st = *st_ptr;
    st.timestep = t;
    st.superstep = 0;
    st.phase = ExecPhase::kCompute;
    st.instance = nullptr;
    std::fill(st.halted.begin(), st.halted.end(), 0);
    std::fill(st.halt_timestep.begin(), st.halt_timestep.end(), 0);
  }
  routeBySubgraphPartition(env.pg, std::move(seed_msgs), env.bus);

  WaveDriver driver(env, t, /*is_merge=*/false);
  std::vector<PartitionId> all(env.states.size());
  std::iota(all.begin(), all.end(), PartitionId{0});
  cluster.runWaves(driver, all, /*first_wave=*/0);

  TimestepOutcome outcome;
  outcome.supersteps = driver.wavesRun();
  outcome.all_halt_timestep = runEndOfTimestep(env, t, outcome.supersteps);
  return outcome;
}

// Async analogue of runMergePhase.
void runMergePhaseAsync(ExecEnv& env, AsyncCluster& cluster,
                        std::vector<Message> merge_pool,
                        Timestep stats_timestep) {
  TraceSpan merge_span("tibsp", "tibsp.merge");
  if (env.checker != nullptr) {
    env.checker->beginTimestep(stats_timestep);
    env.checker->beginSuperstep(0);
  }
  for (auto& st_ptr : env.states) {
    auto& st = *st_ptr;
    st.timestep = stats_timestep;
    st.superstep = 0;
    st.phase = ExecPhase::kMerge;
    st.instance = nullptr;
    std::fill(st.halted.begin(), st.halted.end(), 0);
  }
  routeBySubgraphPartition(env.pg, std::move(merge_pool), env.bus);

  WaveDriver driver(env, stats_timestep, /*is_merge=*/true);
  std::vector<PartitionId> all(env.states.size());
  std::iota(all.begin(), all.end(), PartitionId{0});
  cluster.runWaves(driver, all, /*first_wave=*/0);
}

// Synchronized maintenance pause: the structural stand-in for the paper's
// forced System.gc() every 20 timesteps (§IV-D). Each partition trims its
// allocator arenas; the round is recorded so it shows in per-timestep time.
void runMaintenance(ExecEnv& env, Timestep t) {
  TraceSpan span("tibsp", "tibsp.maintenance", "t", t);
  const auto k = static_cast<std::uint32_t>(env.states.size());
  const auto& timings = env.round([&env](PartitionId p) {
    if (env.checker != nullptr) {
      env.checker->enterCompute(p);
    }
#if defined(TSG_HAVE_MALLOC_TRIM)
    malloc_trim(0);
#endif
    if (env.checker != nullptr) {
      env.checker->exitCompute(p);
    }
  });
  SuperstepRecord rec;
  rec.timestep = t;
  rec.superstep = -1;  // marks a maintenance round
  rec.parts.resize(k);
  for (PartitionId p = 0; p < k; ++p) {
    rec.parts[p].compute_ns = timings[p].busy_ns;
    rec.parts[p].sync_ns = timings[p].sync_ns;
  }
  commitRecord(env, std::move(rec), t);
}

std::vector<std::unique_ptr<WorkerState>> makeStates(
    const PartitionedGraph& pg, MessageBus& bus, Pattern pattern,
    std::size_t planned, std::int64_t t0, std::int64_t delta) {
  std::vector<std::unique_ptr<WorkerState>> states;
  states.reserve(pg.numPartitions());
  for (PartitionId p = 0; p < pg.numPartitions(); ++p) {
    states.push_back(std::make_unique<WorkerState>(pg, p, bus, pattern,
                                                   planned, t0, delta));
  }
  return states;
}

}  // namespace

TiBspEngine::TiBspEngine(const PartitionedGraph& pg,
                         InstanceProvider& provider)
    : pg_(pg), provider_(provider) {}

TiBspResult TiBspEngine::run(const ProgramFactory& factory,
                             const TiBspConfig& config) {
  const Timestep first = config.first_timestep;
  TSG_CHECK(first >= 0);
  const auto available =
      static_cast<std::int64_t>(provider_.numInstances()) - first;
  TSG_CHECK_MSG(available >= 0, "first_timestep beyond available instances");
  const auto count = static_cast<std::int32_t>(
      config.num_timesteps < 0
          ? available
          : std::min<std::int64_t>(config.num_timesteps, available));
  const auto k = pg_.numPartitions();

  TiBspResult result;
  result.stats = RunStats(k);
  Tracer::setCurrentThreadName("coordinator");
  TraceSpan run_span("tibsp", "tibsp.run", "timesteps", count);
  if (Profiler::enabled()) {
    Profiler::global().beginRun(pg_, first, count);
  }
  const auto metrics_before = MetricsRegistry::global().snapshot();
  const auto hists_before = MetricsRegistry::global().histogramSnapshot();
  Stopwatch wall;

  const bool use_async = config.schedule == Schedule::kAsync;
  // Timestep overlap (async × independent/eventually-dependent × serial):
  // whole timesteps become the work units of the steal scheduler — t+1 runs
  // while t's straggler finishes. Checkpointing pins execution to the
  // serial wave path (concurrent tasks have no consistent cut), and a
  // single timestep has nothing to overlap.
  const bool overlap = use_async &&
                       config.temporal_mode == TemporalMode::kSerial &&
                       config.pattern != Pattern::kSequentiallyDependent &&
                       config.checkpoint_store == nullptr &&
                       config.stream == nullptr && count > 1;
  const bool concurrent =
      (config.temporal_mode == TemporalMode::kConcurrent || overlap) &&
      config.pattern != Pattern::kSequentiallyDependent;

  if (!concurrent) {
    std::unique_ptr<Cluster> bsp_cluster;
    std::unique_ptr<AsyncCluster> async_cluster;
    RoundRunner round;
    if (use_async) {
      async_cluster = std::make_unique<AsyncCluster>(k);
      round = makeAsyncAllRunner(*async_cluster);
    } else {
      bsp_cluster = std::make_unique<Cluster>(k);
      round = makeClusterRunner(*bsp_cluster);
    }
    MessageBus bus(k);
    auto states = makeStates(pg_, bus, config.pattern,
                             static_cast<std::size_t>(count), provider_.t0(),
                             provider_.delta());
    std::vector<std::unique_ptr<TiBspProgram>> programs;
    programs.reserve(k);
    for (PartitionId p = 0; p < k; ++p) {
      programs.push_back(factory(p));
      TSG_CHECK(programs.back() != nullptr);
      states[p]->program = programs.back().get();
    }
    // Protocol checking: one checker per run, attached to the sole bus.
    // Registry reconciliation is valid here because no other bus is live.
    std::unique_ptr<check::BspChecker> checker;
    if (check::enabled()) {
      checker = std::make_unique<check::BspChecker>(k);
      checker->enableRegistryReconciliation();
      if (use_async) {
        checker->enableAsyncMode();
      }
      bus.attachChecker(checker.get());
    }
    ExecEnv env{pg_,  provider_,   config, states,
                bus,  round,       result.stats, nullptr, checker.get()};

    std::vector<Message> pending_next;
    std::vector<Message> merge_pool;
    CheckpointStore* const store = config.checkpoint_store;
    std::int32_t recoveries = 0;

    // Snapshot the consistent cut after `completed` finished (workers parked,
    // fabric empty): program state, outputs, carried messages, aggregates.
    const auto saveCheckpoint = [&](Timestep completed,
                                    std::int32_t executed) {
      TraceSpan ckpt_span("tibsp", "tibsp.checkpoint", "t", completed);
      Checkpoint ckpt;
      ckpt.timestep = completed;
      ckpt.timesteps_executed = executed;
      ckpt.partitions.resize(k);
      for (PartitionId p = 0; p < k; ++p) {
        BinaryWriter w;
        states[p]->program->saveState(w);
        ckpt.partitions[p].program_state = w.takeBuffer();
        ckpt.partitions[p].outputs = states[p]->outputs;
      }
      ckpt.pending_next = pending_next;
      ckpt.merge_pool = merge_pool;
      ckpt.aggregates = states[0]->agg_prev;
      const Status saved = store->save(ckpt);
      TSG_CHECK_MSG(saved.isOk(), saved.toString());
      MetricsRegistry::global().counter("engine.checkpoints").increment();
    };

    std::int32_t i = 0;
    bool stop = false;   // While-mode requested an early end
    bool done = false;
    if (store != nullptr) {
      TSG_CHECK_MSG(config.checkpoint_period > 0,
                    "checkpoint_period must be >= 1");
      // Initial checkpoint (pristine programs, timestep first-1): every
      // recovery uniformly loads a checkpoint — no "restart from scratch"
      // special case, which would silently mis-restore stateful programs.
      saveCheckpoint(first - 1, 0);
    }
    while (!done) {
      try {
        while (i < count && !stop) {
          const Timestep t = first + i;
          // Streaming: block until timestep t is sealed. A false return
          // means the source ended early — finish with what we have.
          // Re-entry after a fault rollback is safe: already-sealed
          // timesteps return true immediately.
          if (config.stream != nullptr && !config.stream->awaitTimestep(t)) {
            break;
          }
          if (config.maintenance_period > 0 && i > 0 &&
              i % config.maintenance_period == 0) {
            runMaintenance(env, t);
          }
          std::vector<Message> seed;
          if (config.pattern == Pattern::kSequentiallyDependent) {
            seed = std::move(pending_next);
            pending_next.clear();
            if (i == 0) {
              seed.insert(seed.end(), config.input_messages.begin(),
                          config.input_messages.end());
            }
          } else {
            seed = config.input_messages;  // every instance gets the inputs
          }
          const auto outcome =
              use_async
                  ? runOneTimestepAsync(env, *async_cluster, t,
                                        std::move(seed))
                  : runOneTimestep(env, t, std::move(seed));
          ++result.timesteps_executed;

          std::map<std::string, std::uint64_t> agg_now;
          for (auto& st_ptr : states) {
            auto& st = *st_ptr;
            std::move(st.next_msgs.begin(), st.next_msgs.end(),
                      std::back_inserter(pending_next));
            st.next_msgs.clear();
            std::move(st.merge_msgs.begin(), st.merge_msgs.end(),
                      std::back_inserter(merge_pool));
            st.merge_msgs.clear();
            for (const auto& [name, value] : st.agg_events) {
              agg_now[name] += value;
            }
            st.agg_events.clear();
          }
          for (auto& st_ptr : states) {
            st_ptr->agg_prev = agg_now;
          }

          if (config.pattern == Pattern::kSequentiallyDependent &&
              config.while_mode && outcome.all_halt_timestep &&
              pending_next.empty()) {
            stop = true;
          }
          if (store != nullptr &&
              ((i + 1) % config.checkpoint_period == 0 || i == count - 1 ||
               stop)) {
            saveCheckpoint(t, result.timesteps_executed);
          }
          ++i;
        }

        if (config.pattern == Pattern::kEventuallyDependent) {
          if (use_async) {
            runMergePhaseAsync(env, *async_cluster, std::move(merge_pool),
                               first + count);
          } else {
            runMergePhase(env, std::move(merge_pool), first + count);
          }
        }
        done = true;
      } catch (const fault::RecoveryNeeded& fault_cause) {
        // Rollback: respawn dead workers, forgive in-flight traffic, reload
        // every partition from the newest checkpoint (all partitions mutate
        // mid-timestep, so a partial rollback would be inconsistent), then
        // resume from the timestep after the cut.
        TSG_CHECK_MSG(store != nullptr,
                      std::string("worker fault without a checkpoint "
                                  "store: ") +
                          fault_cause.what());
        ++recoveries;
        TSG_CHECK_MSG(recoveries <= config.max_recoveries,
                      "recovery limit exhausted; last fault: " +
                          std::string(fault_cause.what()));
        TraceSpan rec_span("tibsp", "tibsp.recovery");
        TSG_LOG(Warn) << "recovering from fault (" << recoveries << "/"
                      << config.max_recoveries
                      << "): " << fault_cause.what();
        MetricsRegistry::global().counter("engine.recoveries").increment();
        if (checker != nullptr) {
          checker->onRecovery();
        }
        bus.clearAll();
        if (use_async) {
          async_cluster->respawnDead();
        } else {
          bsp_cluster->respawnDead();
        }

        auto loaded = store->loadLatest();
        TSG_CHECK_MSG(loaded.isOk(), loaded.status().toString());
        Checkpoint ckpt = std::move(loaded).value();
        TSG_CHECK(ckpt.partitions.size() == k);
        for (PartitionId p = 0; p < k; ++p) {
          programs[p] = factory(p);
          TSG_CHECK(programs[p] != nullptr);
          auto& st = *states[p];
          st.program = programs[p].get();
          BinaryReader state_reader(ckpt.partitions[p].program_state);
          const Status restored = st.program->loadState(state_reader);
          TSG_CHECK_MSG(restored.isOk(), restored.toString());
          st.outputs = std::move(ckpt.partitions[p].outputs);
          st.next_msgs.clear();
          st.merge_msgs.clear();
          st.agg_events.clear();
          st.counter_events.clear();
          for (auto& q : st.sg_inbox) {
            q.clear();
          }
          st.send_ns = 0;
          st.load_ns = 0;
          st.msgs_sent = 0;
          st.bytes_sent = 0;
          st.subgraphs_computed = 0;
          st.agg_prev = ckpt.aggregates;
          st.instance = nullptr;
        }
        pending_next = std::move(ckpt.pending_next);
        merge_pool = std::move(ckpt.merge_pool);
        result.timesteps_executed = ckpt.timesteps_executed;
        if (Profiler::enabled()) {
          // Rolled-back timesteps re-run from the cut; drop their rows so
          // attributed costs are not double-counted on the replay.
          Profiler::global().resetRowsFrom(ckpt.timestep + 1);
        }
        i = (ckpt.timestep - first) + 1;
        stop = false;
      }
    }
    if (checker != nullptr) {
      checker->endRun();
      bus.attachChecker(nullptr);
    }
    for (const auto& st_ptr : states) {
      result.outputs.insert(result.outputs.end(), st_ptr->outputs.begin(),
                            st_ptr->outputs.end());
    }
  } else {
    // Temporal concurrency: each timestep runs as one task with its own
    // states, programs and bus; spatial execution inside a task is
    // sequential. Merge (if any) runs afterwards on a spatial cluster.
    // Recovery is a serial-mode feature: concurrent tasks have no cluster
    // to respawn and independent timesteps can simply be re-run whole.
    TSG_CHECK_MSG(config.checkpoint_store == nullptr,
                  "checkpointing requires TemporalMode::kSerial");
    // Streaming seals timesteps in order; concurrent tasks would race
    // ahead of the watermark.
    TSG_CHECK_MSG(config.stream == nullptr,
                  "streaming requires TemporalMode::kSerial");
    std::mutex stats_mutex;
    std::vector<std::vector<std::string>> outputs_by_t(
        static_cast<std::size_t>(count));
    std::vector<std::vector<Message>> merge_by_t(
        static_cast<std::size_t>(count));
    std::mutex provider_mutex;  // providers are not concurrent-safe

    // A private provider view is not available per task; serialize access
    // and copy the data out under the lock.
    ThreadPool pool(k);
    const auto run_timestep_task = [&](std::size_t i) {
      const Timestep t = first + static_cast<Timestep>(i);
      MessageBus bus(k);
      auto states = makeStates(pg_, bus, config.pattern,
                               static_cast<std::size_t>(count),
                               provider_.t0(), provider_.delta());
      std::vector<std::unique_ptr<TiBspProgram>> programs;
      programs.reserve(k);
      for (PartitionId p = 0; p < k; ++p) {
        programs.push_back(factory(p));
        states[p]->program = programs.back().get();
      }
      // Copy this timestep's partition data under the provider lock, then
      // serve it from the copy.
      std::vector<PartitionInstanceData> local_data(k);
      {
        std::lock_guard lock(provider_mutex);
        for (PartitionId p = 0; p < k; ++p) {
          local_data[p] = provider_.instanceFor(p, t);
          (void)provider_.takeLoadNs(p);
        }
      }
      struct LocalProvider final : InstanceProvider {
        std::vector<PartitionInstanceData>* data;
        std::size_t n;
        std::int64_t t0_v, delta_v;
        std::size_t numInstances() const override { return n; }
        std::int64_t t0() const override { return t0_v; }
        std::int64_t delta() const override { return delta_v; }
        const PartitionInstanceData& instanceFor(PartitionId p,
                                                 Timestep) override {
          return (*data)[p];
        }
        std::int64_t takeLoadNs(PartitionId) override { return 0; }
      };
      LocalProvider local;
      local.data = &local_data;
      local.n = provider_.numInstances();
      local.t0_v = provider_.t0();
      local.delta_v = provider_.delta();

      // Per-task checker: several buses are live at once, so no registry
      // reconciliation (the process-wide counters mix all tasks' traffic).
      std::unique_ptr<check::BspChecker> task_checker;
      if (check::enabled()) {
        task_checker = std::make_unique<check::BspChecker>(k);
        bus.attachChecker(task_checker.get());
      }
      const RoundRunner round = makeSequentialRunner(k);
      ExecEnv env{pg_, local,  config,       states,
                  bus, round,  result.stats, &stats_mutex,
                  task_checker.get()};
      (void)runOneTimestep(env, t, config.input_messages);
      if (task_checker != nullptr) {
        task_checker->endRun();
        bus.attachChecker(nullptr);
      }

      auto& out = outputs_by_t[i];
      for (auto& st_ptr : states) {
        auto& st = *st_ptr;
        std::move(st.outputs.begin(), st.outputs.end(),
                  std::back_inserter(out));
        std::move(st.merge_msgs.begin(), st.merge_msgs.end(),
                  std::back_inserter(merge_by_t[i]));
        TSG_CHECK_MSG(st.next_msgs.empty(),
                      "inter-timestep messages in a temporally concurrent run");
        TSG_CHECK_MSG(st.agg_events.empty(),
                      "aggregators require the serial temporal mode");
      }
    };
    if (use_async) {
      // Timestep tasks on steal-deques: a straggling timestep never strands
      // the ones dealt behind it.
      std::size_t stolen = 0;
      pool.parallelForStealing(static_cast<std::size_t>(count),
                               run_timestep_task, &stolen);
      MetricsRegistry::global().counter("cluster.steals").add(stolen);
    } else {
      pool.parallelFor(static_cast<std::size_t>(count), run_timestep_task);
    }
    result.timesteps_executed = count;
    for (auto& out : outputs_by_t) {
      std::move(out.begin(), out.end(), std::back_inserter(result.outputs));
    }

    if (config.pattern == Pattern::kEventuallyDependent) {
      std::vector<Message> merge_pool;
      for (auto& msgs : merge_by_t) {
        std::move(msgs.begin(), msgs.end(), std::back_inserter(merge_pool));
      }
      std::unique_ptr<Cluster> bsp_cluster;
      std::unique_ptr<AsyncCluster> async_cluster;
      RoundRunner round;
      if (use_async) {
        async_cluster = std::make_unique<AsyncCluster>(k);
        round = makeAsyncAllRunner(*async_cluster);
      } else {
        bsp_cluster = std::make_unique<Cluster>(k);
        round = makeClusterRunner(*bsp_cluster);
      }
      MessageBus bus(k);
      auto states = makeStates(pg_, bus, config.pattern,
                               static_cast<std::size_t>(count),
                               provider_.t0(), provider_.delta());
      std::vector<std::unique_ptr<TiBspProgram>> programs;
      programs.reserve(k);
      for (PartitionId p = 0; p < k; ++p) {
        programs.push_back(factory(p));
        states[p]->program = programs.back().get();
      }
      std::unique_ptr<check::BspChecker> merge_checker;
      if (check::enabled()) {
        merge_checker = std::make_unique<check::BspChecker>(k);
        if (use_async) {
          merge_checker->enableAsyncMode();
        }
        bus.attachChecker(merge_checker.get());
      }
      ExecEnv env{pg_, provider_, config,       states,
                  bus, round,     result.stats, nullptr,
                  merge_checker.get()};
      if (use_async) {
        runMergePhaseAsync(env, *async_cluster, std::move(merge_pool),
                           first + count);
      } else {
        runMergePhase(env, std::move(merge_pool), first + count);
      }
      if (merge_checker != nullptr) {
        merge_checker->endRun();
        bus.attachChecker(nullptr);
      }
      for (const auto& st_ptr : states) {
        result.outputs.insert(result.outputs.end(), st_ptr->outputs.begin(),
                              st_ptr->outputs.end());
      }
    }
  }

  result.stats.setWallClockNs(wall.elapsedNs());
  result.stats.setMetrics(
      snapshotDelta(metrics_before, MetricsRegistry::global().snapshot()));
  result.stats.setHistograms(histogramDelta(
      hists_before, MetricsRegistry::global().histogramSnapshot()));
  if (Profiler::enabled()) {
    result.stats.setAttribution(Profiler::global().take());
  }
  return result;
}

}  // namespace tsg
