// TI-BSP programming abstraction (§II-C/§II-D of the paper).
//
// Users implement TiBspProgram:
//   compute(ctx)        — invoked per subgraph, per superstep, per timestep
//                         (the paper's Compute(sg, timestep, superstep, msgs))
//   endOfTimestep(ctx)  — invoked per subgraph when a timestep's BSP ends
//   merge(ctx)          — eventually-dependent pattern: BSP over subgraph
//                         templates after all timesteps complete
//
// The SubgraphContext carries everything the paper passes via parameters or
// framework calls: the subgraph and its instance values, timestep/superstep,
// incoming messages, SendToSubgraph / SendToNextTimestep /
// SendToSubgraphInNextTimestep / SendMessageToMerge, VoteToHalt and
// VoteToHaltTimestep, plus result output and per-timestep counters.
//
// One program instance is created per partition (see ProgramFactory) and
// handles all subgraphs of that partition, so per-partition algorithm state
// (e.g. TDSP labels) lives naturally in program members. Sequentially
// dependent runs keep program instances alive across all timesteps;
// temporally concurrent runs create them per timestep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "gofs/instance_provider.h"
#include "graph/types.h"
#include "partition/partitioned_graph.h"
#include "runtime/message.h"

namespace tsg {
namespace core_detail {
class WorkerState;  // engine-internal backing store for contexts
}  // namespace core_detail

// Which user hook the context is currently serving; gates which sends are
// legal (e.g. sendToSubgraph is a Compute/Merge-phase construct).
enum class ExecPhase : std::uint8_t { kCompute, kEndOfTimestep, kMerge };

class SubgraphContext {
 public:
  // --- identity & progress ---
  [[nodiscard]] SubgraphId subgraphId() const;
  [[nodiscard]] PartitionId partitionId() const;
  [[nodiscard]] Timestep timestep() const;
  [[nodiscard]] std::int32_t superstep() const;
  [[nodiscard]] ExecPhase phase() const;
  [[nodiscard]] std::size_t numTimestepsPlanned() const;
  [[nodiscard]] std::int64_t delta() const;
  [[nodiscard]] std::int64_t timestampOf(Timestep t) const;

  // --- topology (time-invariant) ---
  [[nodiscard]] const GraphTemplate& graphTemplate() const;
  [[nodiscard]] const PartitionedGraph& partitionedGraph() const;
  [[nodiscard]] const Subgraph& subgraph() const;
  // True if template vertex v belongs to this context's partition.
  [[nodiscard]] bool ownsVertex(VertexIndex v) const;

  // --- instance attribute values (this partition's slice of gᵗ) ---
  // Valid in kCompute / kEndOfTimestep phases; v (e) must be owned by this
  // partition. Attribute indices come from the template schemas.
  [[nodiscard]] std::int64_t vertexInt64(std::size_t attr, VertexIndex v) const;
  [[nodiscard]] double vertexDouble(std::size_t attr, VertexIndex v) const;
  [[nodiscard]] bool vertexBool(std::size_t attr, VertexIndex v) const;
  [[nodiscard]] const std::string& vertexString(std::size_t attr,
                                                VertexIndex v) const;
  [[nodiscard]] const std::vector<std::string>& vertexStringList(
      std::size_t attr, VertexIndex v) const;
  [[nodiscard]] std::int64_t edgeInt64(std::size_t attr, EdgeIndex e) const;
  [[nodiscard]] double edgeDouble(std::size_t attr, EdgeIndex e) const;
  [[nodiscard]] bool edgeBool(std::size_t attr, EdgeIndex e) const;

  // --- messages delivered to this subgraph this superstep ---
  [[nodiscard]] std::span<const Message> messages() const;

  // --- message passing (§II-D constructs) ---
  // Payloads are PayloadBuffers (see runtime/payload_buffer.h): a byte
  // vector converts implicitly, small payloads stay inline, and sending the
  // same buffer to many destinations shares one heap block instead of
  // deep-copying per destination.
  // Between subgraphs within the current BSP (compute or merge phase).
  void sendToSubgraph(SubgraphId dst, PayloadBuffer payload);
  // To this same subgraph at superstep 0 of the next timestep.
  void sendToNextTimestep(PayloadBuffer payload);
  // To another subgraph at superstep 0 of the next timestep.
  void sendToSubgraphInNextTimestep(SubgraphId dst, PayloadBuffer payload);
  // To this subgraph's Merge invocation (eventually dependent pattern).
  void sendMessageToMerge(PayloadBuffer payload);

  // --- termination ---
  void voteToHalt();          // end this subgraph's BSP participation
  void voteToHaltTimestep();  // While-mode: request end of the TI loop

  // --- results & metrics ---
  void output(std::string line);  // the paper's Output/PrintHorizon
  void addCounter(std::string_view name, std::uint64_t value);

  // --- aggregators (Pregel-style, serial temporal mode only) ---
  // Values aggregated (summed) during timestep t are readable by every
  // subgraph during timestep t+1. TDSP uses this for While-mode global
  // termination ("have all |V̂| vertices been finalized?").
  void aggregate(std::string_view name, std::uint64_t value);
  [[nodiscard]] std::uint64_t aggregatedU64(std::string_view name) const;

 private:
  friend class core_detail::WorkerState;
  explicit SubgraphContext(core_detail::WorkerState& state) : state_(state) {}
  core_detail::WorkerState& state_;
};

class TiBspProgram {
 public:
  virtual ~TiBspProgram() = default;

  virtual void compute(SubgraphContext& ctx) = 0;
  virtual void endOfTimestep(SubgraphContext& ctx) { (void)ctx; }
  virtual void merge(SubgraphContext& ctx) { (void)ctx; }

  // Incremental-skip contract (streaming runs). Returning true asserts: "if
  // this subgraph enters a timestep with no pending messages and none of its
  // instance values changed versus the previous timestep, then running my
  // compute/superstep loop would send nothing, output nothing and leave all
  // my per-subgraph state exactly as it was" — so the engine may halt it at
  // superstep 0 without calling compute. endOfTimestep still runs for
  // skipped subgraphs (its effects must therefore be derived from state, not
  // from "compute ran this timestep"). Programs whose superstep 0 does
  // unconditional work (e.g. TDSP label resets) must keep the default.
  [[nodiscard]] virtual bool skippableWhenClean() const { return false; }

  // Checkpoint hooks. A program whose members carry state across timesteps
  // (TDSP labels, Meme stamps, ...) must serialize all of it here, or a
  // fault recovery restarts it from whatever loadState leaves behind. The
  // defaults suit stateless programs (PageRank, SSSP, WCC, Hashtag): there
  // is nothing to save, and a recovery re-creates the program fresh.
  virtual void saveState(BinaryWriter& w) const { (void)w; }
  virtual Status loadState(BinaryReader& r) {
    (void)r;
    return Status::ok();
  }
};

// Creates the program instance that will serve partition p.
using ProgramFactory =
    std::function<std::unique_ptr<TiBspProgram>(PartitionId p)>;

}  // namespace tsg
