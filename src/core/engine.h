// TiBspEngine — executes a TI-BSP application over a time-series graph
// collection (§II-D, Fig. 3).
//
// The outer loop iterates timesteps (one BSP per graph instance); the inner
// loop iterates barriered supersteps over subgraphs. The configured design
// pattern decides ordering and messaging:
//   * kSequentiallyDependent — timesteps run strictly in order; messages
//     sent with SendToNextTimestep arrive at superstep 0 of the next
//     timestep. Optional While-mode stops when every subgraph
//     VoteToHaltTimestep()s and no inter-timestep messages are in flight.
//   * kIndependent — each timestep's BSP is self-contained; with
//     TemporalMode::kConcurrent, timesteps execute in parallel ("pleasingly
//     temporally parallel", §II-B).
//   * kEventuallyDependent — like kIndependent plus a Merge BSP after all
//     timesteps, seeded with SendMessageToMerge traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.h"
#include "gofs/instance_provider.h"
#include "partition/partitioned_graph.h"
#include "metrics/stats.h"

namespace tsg {

class CheckpointStore;  // gofs/checkpoint.h

enum class Pattern : std::uint8_t {
  kIndependent,
  kEventuallyDependent,
  kSequentiallyDependent,
};

enum class TemporalMode : std::uint8_t {
  kSerial,      // timesteps one after another (what GoFFish did; §IV-B)
  kConcurrent,  // temporal parallelism for independent/eventually patterns
};

enum class Schedule : std::uint8_t {
  // Global per-superstep barrier (the paper's model; the checked reference).
  kBsp,
  // Dependency-driven waves: only ready partitions run each superstep,
  // idle workers steal straggler partitions' tasks, halted partitions skip
  // rounds, and independent/eventually-dependent patterns overlap
  // timesteps. Output is identical to kBsp by construction (whole-partition
  // tasks replay the BSP send order); see DESIGN.md "Scheduling".
  kAsync,
};

struct TiBspConfig {
  Pattern pattern = Pattern::kSequentiallyDependent;
  TemporalMode temporal_mode = TemporalMode::kSerial;
  Schedule schedule = Schedule::kBsp;

  Timestep first_timestep = 0;
  // Number of instances to process; -1 = all remaining in the provider.
  std::int32_t num_timesteps = -1;
  // Sequentially dependent only: stop early once all subgraphs vote to halt
  // the timestep loop and no next-timestep messages exist (While-loop mode).
  bool while_mode = false;

  // Safety valve against non-terminating programs.
  std::int32_t max_supersteps_per_timestep = 100000;

  // If > 0, a synchronized maintenance pause (allocator trim — the stand-in
  // for the paper's forced System.gc(), §IV-D) runs every N timesteps.
  std::int32_t maintenance_period = 0;

  // Application inputs, delivered at superstep 0: of the first timestep for
  // the sequentially dependent pattern, of every timestep otherwise (§II-D).
  std::vector<Message> input_messages;

  // Fault tolerance (serial temporal mode only; see gofs/checkpoint.h).
  // When set, the engine writes an initial checkpoint before the timestep
  // loop, then one per `checkpoint_period` completed timesteps; a worker
  // fault (thrown fault::WorkerFault / fault::RecoveryNeeded) triggers a
  // respawn + rollback to the newest checkpoint instead of an abort. Null
  // (the default) keeps the hot path fault-oblivious: faults abort.
  CheckpointStore* checkpoint_store = nullptr;
  std::int32_t checkpoint_period = 1;
  // Hard cap on rollbacks per run; exceeding it is a contract failure (a
  // fault plan that never lets the run finish is a test bug, not a crash
  // to paper over).
  std::int32_t max_recoveries = 8;

  // Streaming ingestion (serial temporal mode only; see src/stream/). When
  // set, the timestep loop blocks on stream->awaitTimestep(t) before running
  // t, and subgraphs whose program is skippableWhenClean() are halted at
  // superstep 0 when they are message-free and stream->subgraphDirty says
  // nothing of theirs changed. Null (the default) is the batch path.
  TimestepStream* stream = nullptr;
};

struct TiBspResult {
  RunStats stats;
  // Lines emitted via SubgraphContext::output, ordered by
  // (timestep-of-emission stability, partition, emission order).
  std::vector<std::string> outputs;
  Timestep timesteps_executed = 0;
};

class TiBspEngine {
 public:
  // Both referents must outlive the engine.
  TiBspEngine(const PartitionedGraph& pg, InstanceProvider& provider);

  // Runs one application to completion. The factory is called once per
  // partition (serial/seq-dep) or once per (timestep, partition) when
  // temporally concurrent.
  TiBspResult run(const ProgramFactory& factory, const TiBspConfig& config);

 private:
  const PartitionedGraph& pg_;
  InstanceProvider& provider_;
};

}  // namespace tsg
