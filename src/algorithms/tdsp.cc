#include "algorithms/tdsp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "algorithms/codec.h"

namespace tsg {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr const char* kTotalFinalizedAgg = "tdsp_total_finalized";

using HeapEntry = std::pair<double, VertexIndex>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

class TdspProgram final : public TiBspProgram {
 public:
  TdspProgram(const PartitionedGraph& pg, PartitionId partition,
              const TdspOptions& options, std::vector<double>& tdsp,
              std::vector<Timestep>& finalized_at)
      : pg_(pg),
        partition_(partition),
        options_(options),
        tdsp_(tdsp),
        finalized_at_(finalized_at),
        label_(pg.graphTemplate().numVertices(), kInf) {}

  // Checkpoint hooks: the frontier F and done_ flag carry across timesteps,
  // and endOfTimestep writes this partition's slice of the shared tdsp_/
  // finalized_at_ results — all of it must roll back with the engine, or a
  // replayed timestep would skip vertices the aborted attempt finalized.
  // label_ stays out: compute rebuilds it at superstep 0 of every timestep.
  void saveState(BinaryWriter& w) const override {
    w.writeBool(done_);
    for (const VertexIndex v : pg_.partition(partition_).vertices) {
      w.writeDouble(tdsp_[v]);
      w.writeI32(finalized_at_[v]);
    }
    std::vector<SubgraphId> ids;
    ids.reserve(finalized_by_sg_.size());
    for (const auto& [sg, frontier] : finalized_by_sg_) {
      ids.push_back(sg);
    }
    std::sort(ids.begin(), ids.end());  // deterministic checkpoint bytes
    w.writeVarint(ids.size());
    for (const SubgraphId sg : ids) {
      w.writeU32(sg);
      w.writePodVector(finalized_by_sg_.at(sg));
    }
  }

  Status loadState(BinaryReader& r) override {
    TSG_RETURN_IF_ERROR(r.readBool(done_));
    for (const VertexIndex v : pg_.partition(partition_).vertices) {
      TSG_RETURN_IF_ERROR(r.readDouble(tdsp_[v]));
      TSG_RETURN_IF_ERROR(r.readI32(finalized_at_[v]));
    }
    std::uint64_t entries = 0;
    TSG_RETURN_IF_ERROR(r.readVarint(entries));
    finalized_by_sg_.clear();
    for (std::uint64_t i = 0; i < entries; ++i) {
      SubgraphId sg = kInvalidSubgraph;
      TSG_RETURN_IF_ERROR(r.readU32(sg));
      TSG_RETURN_IF_ERROR(r.readPodVector(finalized_by_sg_[sg]));
    }
    return Status::ok();
  }

  void compute(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    const Timestep t = ctx.timestep();
    const double delta = static_cast<double>(ctx.delta());
    const double horizon = delta * static_cast<double>(t + 1);
    const auto& pg = ctx.partitionedGraph();

    // Global-completion check (While-mode): aggregated total from the
    // previous timestep covers all vertices -> nothing left to do.
    if (options_.while_mode && ctx.superstep() == 0 &&
        ctx.aggregatedU64(kTotalFinalizedAgg) >=
            ctx.graphTemplate().numVertices()) {
      done_ = true;
    }
    if (done_) {
      ctx.voteToHaltTimestep();
      ctx.voteToHalt();
      return;
    }

    MinHeap heap;
    if (ctx.superstep() == 0) {
      // Fresh tentative labels for this instance; finalized vertices keep
      // their arrival in tdsp_ and re-enter as roots at t·δ (idling edges).
      for (const VertexIndex v : sg.vertices) {
        label_[v] = kInf;
      }
      if (t == options_.first_timestep) {
        if (pg.subgraphOfVertex(options_.source) == sg.id) {
          label_[options_.source] = 0.0;
          heap.push({0.0, options_.source});
        }
      }
      // Roots from the previous timestep's frontier (messages carry the
      // accumulated finalized set F of this subgraph; Alg. 2 line 9-11).
      const double root_label = delta * static_cast<double>(t);
      for (const Message& msg : ctx.messages()) {
        for (const VertexIndex v : decodeVertexList(msg.payload)) {
          if (root_label < label_[v]) {
            label_[v] = root_label;
            heap.push({root_label, v});
          }
        }
      }
    } else {
      // Relaxations arriving over remote edges (Alg. 2 line 13-18).
      for (const Message& msg : ctx.messages()) {
        for (const auto& item : decodeVertexLabels(msg.payload)) {
          if (item.label < label_[item.vertex]) {
            label_[item.vertex] = item.label;
            heap.push({item.label, item.vertex});
          }
        }
      }
    }

    // ModifiedSSSP: horizon-bounded Dijkstra inside the subgraph.
    std::unordered_map<SubgraphId, std::unordered_map<VertexIndex, double>>
        remote_best;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > label_[v]) {
        continue;
      }
      for (const auto& oe : ctx.graphTemplate().outEdges(v)) {
        if (options_.exists_attr != TdspOptions::kNoExistsAttr &&
            !ctx.edgeBool(options_.exists_attr, oe.edge)) {
          continue;  // road closed during this instance (isExists == false)
        }
        const double candidate =
            d + ctx.edgeDouble(options_.latency_attr, oe.edge);
        if (candidate > horizon) {
          continue;  // unknowable beyond this instance's validity window
        }
        const SubgraphId dst_sg = pg.subgraphOfVertex(oe.dst);
        if (dst_sg == sg.id) {
          if (candidate < label_[oe.dst]) {
            label_[oe.dst] = candidate;
            heap.push({candidate, oe.dst});
          }
        } else {
          auto& best = remote_best[dst_sg];
          const auto it = best.find(oe.dst);
          if (it == best.end() || candidate < it->second) {
            best[oe.dst] = candidate;
          }
        }
      }
    }

    for (const auto& [dst_sg, candidates] : remote_best) {
      std::vector<VertexLabel> batch;
      batch.reserve(candidates.size());
      for (const auto& [v, lbl] : candidates) {
        batch.push_back({v, lbl});
      }
      ctx.sendToSubgraph(dst_sg, encodeVertexLabels(batch));
    }
    ctx.voteToHalt();
  }

  void endOfTimestep(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    const Timestep t = ctx.timestep();

    if (done_) {
      // Global completion confirmed last timestep: keep quiet so the
      // engine's While-loop drains (no F resend; Alg. 2's termination).
      ctx.aggregate(kTotalFinalizedAgg, finalizedOf(sg).size());
      return;
    }

    // Finalize everything that arrived within this timestep's horizon
    // (Alg. 2 line 27-28) and grow F.
    auto& finalized = finalizedOf(sg);
    std::uint64_t newly = 0;
    for (const VertexIndex v : sg.vertices) {
      if (finalized_at_[v] < 0 && label_[v] < kInf) {
        finalized_at_[v] = t;
        tdsp_[v] = label_[v];
        finalized.push_back(v);
        ++newly;
        if (options_.emit_outputs) {
          ctx.output("tdsp," +
                     std::to_string(ctx.graphTemplate().vertexId(v)) + "," +
                     std::to_string(t) + "," + std::to_string(label_[v]));
        }
      }
    }
    ctx.addCounter(kTdspFinalizedCounter, newly);
    ctx.aggregate(kTotalFinalizedAgg, finalized.size());

    // Pass the whole frontier to the same subgraph in the next instance
    // (Alg. 2 line 29-30), unless this is the final planned timestep.
    const bool last_planned =
        t + 1 >= options_.first_timestep +
                     static_cast<Timestep>(ctx.numTimestepsPlanned());
    if (!finalized.empty() && !last_planned) {
      ctx.sendToNextTimestep(encodeVertexList(finalized));
    }
  }

 private:
  std::vector<VertexIndex>& finalizedOf(const Subgraph& sg) {
    return finalized_by_sg_[sg.id];
  }

  const PartitionedGraph& pg_;
  const PartitionId partition_;
  const TdspOptions& options_;
  std::vector<double>& tdsp_;
  std::vector<Timestep>& finalized_at_;
  std::vector<double> label_;  // tentative labels, this partition's vertices
  std::unordered_map<SubgraphId, std::vector<VertexIndex>> finalized_by_sg_;
  bool done_ = false;
};

}  // namespace

TdspRun runTdsp(const PartitionedGraph& pg, InstanceProvider& provider,
                const TdspOptions& options) {
  TSG_CHECK(options.source < pg.graphTemplate().numVertices());
  TdspRun run;
  run.tdsp.assign(pg.graphTemplate().numVertices(), kInf);
  run.finalized_at.assign(pg.graphTemplate().numVertices(), -1);

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.first_timestep = options.first_timestep;
  config.num_timesteps = options.num_timesteps;
  config.while_mode = options.while_mode;
  config.maintenance_period = options.maintenance_period;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId p) {
        return std::make_unique<TdspProgram>(pg, p, options, run.tdsp,
                                             run.finalized_at);
      },
      config);
  return run;
}

}  // namespace tsg
