// Per-instance Top-N most active vertices — the paper's independent-pattern
// example ("finding the daily Top-N central vertices in a year ... in a
// pleasingly temporally parallel manner", §II-B).
//
// Every timestep runs a self-contained two-superstep BSP: subgraphs compute
// local candidates (activity = out-degree × (1 + tweet count)), ship them to
// the largest subgraph of partition 0, which selects the global Top-N for
// that instance. With TemporalMode::kConcurrent the timesteps execute in
// parallel.
#pragma once

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct TopNOptions {
  std::size_t tweets_attr = 0;
  std::size_t n = 10;
  Timestep first_timestep = 0;
  std::int32_t num_timesteps = -1;
  TemporalMode temporal_mode = TemporalMode::kConcurrent;
  // Fault tolerance: requires temporal_mode == kSerial (the engine rejects
  // concurrent checkpointing). Replayed timesteps rewrite their top[] slot
  // deterministically, so no program state is checkpointed.
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct TopNRun {
  // top[i] = Top-N vertex indices of timestep first_timestep + i,
  // descending activity, ties by ascending vertex index.
  std::vector<std::vector<VertexIndex>> top;
  TiBspResult exec;
};

TopNRun runTopActiveVertices(const PartitionedGraph& pg,
                             InstanceProvider& provider,
                             const TopNOptions& options);

}  // namespace tsg
