// Vertex-centric TDSP — Algorithm 2 re-expressed for the vertex-centric
// TI-BSP engine (the "Giraph port" of §IV-C).
//
// Semantics are identical to the subgraph-centric runTdsp: per timestep a
// horizon-bounded relaxation runs from the source (t = first) and from all
// previously finalized vertices re-labelled t·δ; arrivals ≤ (t+1)·δ
// finalize at the end of the timestep. The execution differs exactly the
// way the paper predicts: relaxation proceeds one vertex-hop per superstep
// (Bellman-Ford) instead of whole-subgraph Dijkstra sweeps, multiplying
// superstep counts and message volume.
#pragma once

#include <cstddef>
#include <vector>

#include "vertexcentric/ti_engine.h"

namespace tsg {

struct VertexTdspOptions {
  VertexIndex source = 0;
  std::size_t latency_attr = 0;
  Timestep first_timestep = 0;
  std::int32_t num_timesteps = -1;
  // Fault tolerance: when set, the engine checkpoints at every timestep
  // boundary and recovers from injected worker faults (gofs/checkpoint.h).
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct VertexTdspRun {
  std::vector<double> tdsp;
  std::vector<Timestep> finalized_at;
  vertexcentric::TemporalVcResult exec;
};

VertexTdspRun runVertexTdsp(const PartitionedGraph& pg,
                            InstanceProvider& provider,
                            const VertexTdspOptions& options);

}  // namespace tsg
