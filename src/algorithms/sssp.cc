#include "algorithms/sssp.h"

#include <limits>
#include <queue>
#include <unordered_map>

#include "algorithms/codec.h"

namespace tsg {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using HeapEntry = std::pair<double, VertexIndex>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

class SsspProgram final : public TiBspProgram {
 public:
  SsspProgram(const SsspOptions& options, std::vector<double>& distances)
      : options_(options), distances_(distances) {}

  void compute(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    MinHeap heap;

    if (ctx.superstep() == 0) {
      for (const VertexIndex v : sg.vertices) {
        distances_[v] = kInf;
      }
      if (ctx.ownsVertex(options_.source) &&
          ctx.partitionedGraph().subgraphOfVertex(options_.source) == sg.id) {
        distances_[options_.source] = 0.0;
        heap.push({0.0, options_.source});
      }
    } else {
      for (const Message& msg : ctx.messages()) {
        for (const auto& item : decodeVertexLabels(msg.payload)) {
          if (item.label < distances_[item.vertex]) {
            distances_[item.vertex] = item.label;
            heap.push({item.label, item.vertex});
          }
        }
      }
    }

    // Dijkstra inside the subgraph; candidates crossing a remote edge are
    // batched per destination subgraph (best candidate per vertex).
    std::unordered_map<SubgraphId, std::unordered_map<VertexIndex, double>>
        remote_best;
    const auto& pg = ctx.partitionedGraph();
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > distances_[v]) {
        continue;
      }
      for (const auto& oe : ctx.graphTemplate().outEdges(v)) {
        const double w =
            options_.latency_attr == SsspOptions::kUnweighted
                ? 1.0
                : ctx.edgeDouble(options_.latency_attr, oe.edge);
        const double candidate = d + w;
        const SubgraphId dst_sg = pg.subgraphOfVertex(oe.dst);
        if (dst_sg == sg.id) {
          if (candidate < distances_[oe.dst]) {
            distances_[oe.dst] = candidate;
            heap.push({candidate, oe.dst});
          }
        } else {
          auto& best = remote_best[dst_sg];
          const auto it = best.find(oe.dst);
          if (it == best.end() || candidate < it->second) {
            best[oe.dst] = candidate;
          }
        }
      }
    }

    for (const auto& [dst_sg, candidates] : remote_best) {
      std::vector<VertexLabel> batch;
      batch.reserve(candidates.size());
      for (const auto& [v, label] : candidates) {
        batch.push_back({v, label});
      }
      ctx.sendToSubgraph(dst_sg, encodeVertexLabels(batch));
    }
    ctx.voteToHalt();
  }

 private:
  const SsspOptions& options_;
  std::vector<double>& distances_;  // shared; this partition's vertices only
};

}  // namespace

SsspRun runSubgraphSssp(const PartitionedGraph& pg, InstanceProvider& provider,
                        const SsspOptions& options) {
  TSG_CHECK(options.source < pg.graphTemplate().numVertices());
  SsspRun run;
  run.distances.assign(pg.graphTemplate().numVertices(), kInf);

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.first_timestep = options.timestep;
  config.num_timesteps = 1;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId) {
        return std::make_unique<SsspProgram>(options, run.distances);
      },
      config);
  return run;
}

}  // namespace tsg
