#include "algorithms/topn.h"

#include <algorithm>

#include "algorithms/codec.h"

namespace tsg {
namespace {

class TopNProgram final : public TiBspProgram {
 public:
  TopNProgram(const PartitionedGraph& pg, const TopNOptions& options,
              std::vector<std::vector<VertexIndex>>& top)
      : options_(options), top_(top), master_(pg.largestSubgraphOf(0)) {}

  void compute(SubgraphContext& ctx) override {
    if (ctx.superstep() == 0) {
      // Local Top-N candidates; only the best n can matter globally.
      std::vector<VertexLabel> scored;
      scored.reserve(ctx.subgraph().vertices.size());
      for (const VertexIndex v : ctx.subgraph().vertices) {
        const auto& tweets = ctx.vertexStringList(options_.tweets_attr, v);
        const double activity =
            static_cast<double>(ctx.graphTemplate().outDegree(v)) *
            static_cast<double>(1 + tweets.size());
        scored.push_back({v, activity});
      }
      const std::size_t keep = std::min(options_.n, scored.size());
      std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                        [](const VertexLabel& a, const VertexLabel& b) {
                          if (a.label != b.label) {
                            return a.label > b.label;
                          }
                          return a.vertex < b.vertex;
                        });
      scored.resize(keep);
      ctx.sendToSubgraph(master_, encodeVertexLabels(scored));
    } else if (ctx.subgraphId() == master_) {
      std::vector<VertexLabel> all;
      for (const Message& msg : ctx.messages()) {
        const auto batch = decodeVertexLabels(msg.payload);
        all.insert(all.end(), batch.begin(), batch.end());
      }
      std::sort(all.begin(), all.end(),
                [](const VertexLabel& a, const VertexLabel& b) {
                  if (a.label != b.label) {
                    return a.label > b.label;
                  }
                  return a.vertex < b.vertex;
                });
      const std::size_t keep = std::min(options_.n, all.size());
      auto& slot = top_[static_cast<std::size_t>(ctx.timestep() -
                                                 options_.first_timestep)];
      slot.clear();
      for (std::size_t i = 0; i < keep; ++i) {
        slot.push_back(all[i].vertex);
      }
    }
    ctx.voteToHalt();
  }

 private:
  const TopNOptions& options_;
  // Indexed by (timestep - first); each concurrent timestep task writes a
  // distinct slot, so no lock is needed.
  std::vector<std::vector<VertexIndex>>& top_;
  SubgraphId master_;
};

}  // namespace

TopNRun runTopActiveVertices(const PartitionedGraph& pg,
                             InstanceProvider& provider,
                             const TopNOptions& options) {
  const auto count = static_cast<std::size_t>(
      options.num_timesteps < 0
          ? static_cast<std::int64_t>(provider.numInstances()) -
                options.first_timestep
          : options.num_timesteps);

  TopNRun run;
  run.top.resize(count);

  TiBspConfig config;
  config.pattern = Pattern::kIndependent;
  config.temporal_mode = options.temporal_mode;
  config.first_timestep = options.first_timestep;
  config.num_timesteps = options.num_timesteps;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId) {
        return std::make_unique<TopNProgram>(pg, options, run.top);
      },
      config);
  return run;
}

}  // namespace tsg
