#include "algorithms/wcc.h"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "algorithms/codec.h"

namespace tsg {
namespace {

class WccProgram final : public TiBspProgram {
 public:
  WccProgram(std::vector<VertexIndex>& component) : component_(component) {}

  void compute(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    auto [it, inserted] = label_.try_emplace(sg.id, kInvalidVertexIndex);
    VertexIndex& label = it->second;

    bool improved = false;
    if (ctx.superstep() == 0) {
      // Vertices are ascending, so the subgraph's seed label is the front.
      label = sg.vertices.front();
      improved = true;
    } else {
      for (const Message& msg : ctx.messages()) {
        for (const VertexIndex candidate : decodeVertexList(msg.payload)) {
          if (candidate < label) {
            label = candidate;
            improved = true;
          }
        }
      }
    }

    if (improved) {
      const auto payload = encodeVertexList({label});
      for (const SubgraphId neighbor : sg.neighbor_subgraphs) {
        ctx.sendToSubgraph(neighbor, payload);
      }
    }
    ctx.voteToHalt();
  }

  void endOfTimestep(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    const VertexIndex label = label_.at(sg.id);
    for (const VertexIndex v : sg.vertices) {
      component_[v] = label;
    }
  }

 private:
  std::vector<VertexIndex>& component_;  // shared result (own vertices)
  std::unordered_map<SubgraphId, VertexIndex> label_;
};

}  // namespace

WccRun runSubgraphWcc(const PartitionedGraph& pg, InstanceProvider& provider,
                      const WccOptions& options) {
  WccRun run;
  run.component.assign(pg.graphTemplate().numVertices(), kInvalidVertexIndex);

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.first_timestep = options.timestep;
  config.num_timesteps = 1;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId) { return std::make_unique<WccProgram>(run.component); },
      config);

  std::unordered_set<VertexIndex> roots(run.component.begin(),
                                        run.component.end());
  roots.erase(kInvalidVertexIndex);
  run.num_components = roots.size();
  return run;
}

namespace reference {

std::vector<VertexIndex> weaklyConnectedComponents(const GraphTemplate& tmpl) {
  const std::size_t n = tmpl.numVertices();
  std::vector<VertexIndex> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](VertexIndex x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (EdgeIndex e = 0; e < tmpl.numEdges(); ++e) {
    const VertexIndex a = find(tmpl.edgeSrc(e));
    const VertexIndex b = find(tmpl.edgeDst(e));
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<VertexIndex> component(n);
  for (VertexIndex v = 0; v < n; ++v) {
    component[v] = find(v);
  }
  return component;
}

}  // namespace reference
}  // namespace tsg
