// Meme Tracking — Algorithm 1 of the paper (sequentially dependent
// pattern, §III-B): a temporal BFS for a meme µ over space and time.
//
// At t=0 the roots are the vertices whose tweets contain µ; the BFS then
// traverses contiguous meme-carrying vertices inside each subgraph,
// notifying neighbor subgraphs across remote edges. The accumulated colored
// set C* is passed to the same subgraph in the next timestep and seeds the
// next instance's traversal, so each timestep only explores the new
// frontier rather than the whole graph.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct MemeOptions {
  std::string meme = "#meme";
  std::size_t tweets_attr = 0;
  Timestep first_timestep = 0;
  std::int32_t num_timesteps = -1;  // -1 = all instances
  std::int32_t maintenance_period = 0;
  // Emit "meme,<vertex_id>,<timestep>" per newly colored vertex (the
  // paper's PrintHorizon; off by default).
  bool emit_outputs = false;
  // Fault tolerance: when set, the engine checkpoints at every timestep
  // boundary and recovers from injected worker faults (gofs/checkpoint.h).
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct MemeRun {
  // First timestep each vertex was colored; -1 = never reached.
  std::vector<Timestep> colored_at;
  TiBspResult exec;
};

// Counter name: newly colored vertices per (timestep, partition) — Fig 7c.
inline constexpr const char* kMemeColoredCounter = "meme_colored";

MemeRun runMemeTracking(const PartitionedGraph& pg, InstanceProvider& provider,
                        const MemeOptions& options);

}  // namespace tsg
