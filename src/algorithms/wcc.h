// Subgraph-centric weakly connected components on the graph template.
//
// The textbook GoFFish example of why coarse granularity wins: every
// subgraph is internally connected by construction, so it carries ONE
// component label (the minimum template vertex index seen so far) and the
// BSP is label propagation over the subgraph meta-graph — supersteps scale
// with the meta-graph diameter (a handful) instead of the vertex-graph
// diameter.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct WccOptions {
  Timestep timestep = 0;  // instance to bind (topology-only algorithm)
  // Fault tolerance: recovery replays the single timestep from scratch
  // (superstep 0 re-seeds every label), so no program state is checkpointed.
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct WccRun {
  // component[v] = smallest template vertex index in v's weak component.
  std::vector<VertexIndex> component;
  std::size_t num_components = 0;
  TiBspResult exec;
};

WccRun runSubgraphWcc(const PartitionedGraph& pg, InstanceProvider& provider,
                      const WccOptions& options = {});

namespace reference {
// Sequential union-find ground truth (same labeling convention).
std::vector<VertexIndex> weaklyConnectedComponents(const GraphTemplate& tmpl);
}  // namespace reference

}  // namespace tsg
