// Time-Dependent single-source Shortest Path — Algorithm 2 of the paper
// (sequentially dependent pattern, §III-C).
//
// Per timestep t the program runs a horizon-bounded SSSP on instance t's
// latencies: roots are the source (t == 0) and every already-finalized
// vertex re-labelled t·δ (the uni-directional "idling" edges); only arrivals
// ≤ (t+1)·δ may finalize; tentative labels beyond the horizon are discarded
// because future edge latencies are unknowable. The finalized frontier F is
// passed to the same subgraph in the next timestep via SendToNextTimestep.
//
// While-mode: a global aggregator tracks the total finalized count; once it
// reaches |V̂| every subgraph votes to halt the timestep loop — this is why
// the paper's WIKI run converges in 4 timesteps vs 47 for CARN (§IV-B).
#pragma once

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct TdspOptions {
  static constexpr std::size_t kNoExistsAttr = static_cast<std::size_t>(-1);

  VertexIndex source = 0;
  std::size_t latency_attr = 0;
  // Optional bool edge attribute (the paper's isExists convention): edges
  // whose value is false at a timestep are closed and cannot be traversed
  // during that instance.
  std::size_t exists_attr = kNoExistsAttr;
  Timestep first_timestep = 0;
  std::int32_t num_timesteps = -1;  // -1 = all instances
  bool while_mode = true;           // stop once every vertex is finalized
  std::int32_t maintenance_period = 0;
  // Emit one "tdsp,<vertex_id>,<timestep>,<arrival>" output line per
  // finalized vertex (the paper's OUTPUT; off by default — large).
  bool emit_outputs = false;
  // Fault tolerance: when set, the engine checkpoints at every timestep
  // boundary and recovers from injected worker faults (gofs/checkpoint.h).
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct TdspRun {
  std::vector<double> tdsp;            // earliest arrival; +inf = never
  std::vector<Timestep> finalized_at;  // -1 = never
  TiBspResult exec;
};

// Counter name: newly finalized vertices per (timestep, partition) — Fig 7a.
inline constexpr const char* kTdspFinalizedCounter = "tdsp_finalized";

TdspRun runTdsp(const PartitionedGraph& pg, InstanceProvider& provider,
                const TdspOptions& options);

}  // namespace tsg
