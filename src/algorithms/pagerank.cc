#include "algorithms/pagerank.h"

#include <unordered_map>

#include "algorithms/codec.h"

namespace tsg {
namespace {

class PageRankProgram final : public TiBspProgram {
 public:
  PageRankProgram(const PartitionedGraph& pg, const PageRankOptions& options,
                  std::vector<double>& ranks)
      : options_(options),
        ranks_(ranks),
        acc_(pg.graphTemplate().numVertices(), 0.0) {}

  void compute(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    const GraphTemplate& tmpl = ctx.graphTemplate();
    const auto n = static_cast<double>(tmpl.numVertices());
    const std::int32_t s = ctx.superstep();

    if (s == 0) {
      for (const VertexIndex v : sg.vertices) {
        ranks_[v] = 1.0 / n;
        acc_[v] = 0.0;
      }
    } else {
      // Fold remote contributions into the accumulator (local ones were
      // added by the emitting pass of the previous superstep).
      for (const Message& msg : ctx.messages()) {
        for (const auto& item : decodeVertexLabels(msg.payload)) {
          acc_[item.vertex] += item.label;
        }
      }
      for (const VertexIndex v : sg.vertices) {
        ranks_[v] = (1.0 - options_.damping) / n + options_.damping * acc_[v];
        acc_[v] = 0.0;  // ready for the next iteration's contributions
      }
    }

    if (s < options_.iterations) {
      // Emit this iteration's contributions: local neighbors accumulate
      // directly, remote ones are summed per (subgraph, vertex) and sent.
      const auto& pg = ctx.partitionedGraph();
      std::unordered_map<SubgraphId, std::unordered_map<VertexIndex, double>>
          remote_sum;
      for (const VertexIndex v : sg.vertices) {
        const auto degree = tmpl.outDegree(v);
        if (degree == 0) {
          continue;  // dangling mass is dropped (matches the reference)
        }
        const double contribution =
            ranks_[v] / static_cast<double>(degree);
        for (const auto& oe : tmpl.outEdges(v)) {
          const SubgraphId dst_sg = pg.subgraphOfVertex(oe.dst);
          if (dst_sg == sg.id) {
            acc_[oe.dst] += contribution;
          } else {
            remote_sum[dst_sg][oe.dst] += contribution;
          }
        }
      }
      for (const auto& [dst_sg, items] : remote_sum) {
        std::vector<VertexLabel> batch;
        batch.reserve(items.size());
        for (const auto& [v, c] : items) {
          batch.push_back({v, c});
        }
        ctx.sendToSubgraph(dst_sg, encodeVertexLabels(batch));
      }
      // Stay active: the next superstep applies what we just emitted.
    } else {
      ctx.voteToHalt();
    }
  }

 private:
  const PageRankOptions& options_;
  std::vector<double>& ranks_;  // shared result (own vertices only)
  std::vector<double> acc_;     // next iteration's incoming contributions
};

}  // namespace

PageRankRun runSubgraphPageRank(const PartitionedGraph& pg,
                                InstanceProvider& provider,
                                const PageRankOptions& options) {
  TSG_CHECK(options.iterations >= 0);
  PageRankRun run;
  run.ranks.assign(pg.graphTemplate().numVertices(), 0.0);

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.first_timestep = options.timestep;
  config.num_timesteps = 1;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId) {
        return std::make_unique<PageRankProgram>(pg, options, run.ranks);
      },
      config);
  return run;
}

namespace reference {

std::vector<double> pageRank(const GraphTemplate& tmpl, double damping,
                             std::int32_t iterations) {
  const std::size_t n = tmpl.numVertices();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::int32_t i = 0; i < iterations; ++i) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexIndex v = 0; v < n; ++v) {
      const auto degree = tmpl.outDegree(v);
      if (degree == 0) {
        continue;
      }
      const double contribution = rank[v] / static_cast<double>(degree);
      for (const auto& oe : tmpl.outEdges(v)) {
        next[oe.dst] += contribution;
      }
    }
    for (VertexIndex v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / static_cast<double>(n) +
                damping * next[v];
    }
  }
  return rank;
}

}  // namespace reference
}  // namespace tsg
