// Payload encodings shared by the TI-BSP algorithm programs.
//
// The paper's algorithms conceptually send one message per vertex; we batch
// all vertices targeted at the same subgraph into one payload, which is what
// a production framework does at the transport layer. Decoders are
// bounds-checked; a malformed payload aborts (it can only come from this
// process).
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "graph/types.h"
#include "runtime/payload_buffer.h"

namespace tsg {

// [count][vertex]... — e.g. the colored set C* passed between timesteps.
inline PayloadBuffer encodeVertexList(
    const std::vector<VertexIndex>& vertices) {
  BinaryWriter w(vertices.size() * 5 + 4);
  w.writePodVector(vertices);
  return w.takeBuffer();
}

inline std::vector<VertexIndex> decodeVertexList(
    std::span<const std::uint8_t> payload) {
  BinaryReader r(payload);
  std::vector<VertexIndex> vertices;
  const Status s = r.readPodVector(vertices);
  TSG_CHECK_MSG(s.isOk(), s.toString());
  return vertices;
}

// [count][(vertex, label)]... — e.g. TDSP frontier relaxations.
struct VertexLabel {
  VertexIndex vertex;
  double label;
};

inline PayloadBuffer encodeVertexLabels(
    const std::vector<VertexLabel>& items) {
  BinaryWriter w(items.size() * 12 + 4);
  w.writeVarint(items.size());
  for (const auto& item : items) {
    w.writeU32(item.vertex);
    w.writeDouble(item.label);
  }
  return w.takeBuffer();
}

inline std::vector<VertexLabel> decodeVertexLabels(
    std::span<const std::uint8_t> payload) {
  BinaryReader r(payload);
  std::uint64_t count = 0;
  Status s = r.readVarint(count);
  TSG_CHECK_MSG(s.isOk(), s.toString());
  std::vector<VertexLabel> items(static_cast<std::size_t>(count));
  for (auto& item : items) {
    s = r.readU32(item.vertex);
    TSG_CHECK_MSG(s.isOk(), s.toString());
    s = r.readDouble(item.label);
    TSG_CHECK_MSG(s.isOk(), s.toString());
  }
  return items;
}

// A single unsigned counter (hashtag per-timestep counts).
inline PayloadBuffer encodeU64(std::uint64_t value) {
  BinaryWriter w(9);
  w.writeVarint(value);
  return w.takeBuffer();
}

inline std::uint64_t decodeU64(std::span<const std::uint8_t> payload) {
  BinaryReader r(payload);
  std::uint64_t value = 0;
  const Status s = r.readVarint(value);
  TSG_CHECK_MSG(s.isOk(), s.toString());
  return value;
}

// [count][u64]... — aggregated per-timestep series in the Hashtag Merge.
inline PayloadBuffer encodeU64List(
    const std::vector<std::uint64_t>& values) {
  BinaryWriter w(values.size() * 9 + 4);
  w.writePodVector(values);
  return w.takeBuffer();
}

inline std::vector<std::uint64_t> decodeU64List(
    std::span<const std::uint8_t> payload) {
  BinaryReader r(payload);
  std::vector<std::uint64_t> values;
  const Status s = r.readPodVector(values);
  TSG_CHECK_MSG(s.isOk(), s.toString());
  return values;
}

}  // namespace tsg
