#include "algorithms/tdsp_vertex.h"

#include <limits>

namespace tsg {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class VertexTdspProgram final : public vertexcentric::TemporalVertexProgram {
 public:
  VertexTdspProgram(const VertexTdspOptions& options, std::size_t num_vertices,
                    std::vector<double>& tdsp,
                    std::vector<Timestep>& finalized_at)
      : options_(options),
        tdsp_(tdsp),
        finalized_at_(finalized_at),
        label_(num_vertices, kInf) {}

  void compute(vertexcentric::TemporalVertexContext& ctx) override {
    const VertexIndex v = ctx.vertex();
    const Timestep t = ctx.timestep();
    const auto delta = static_cast<double>(ctx.delta());
    const double horizon = delta * static_cast<double>(t + 1);

    double best = kInf;
    if (ctx.superstep() == 0) {
      // Fresh tentative label; re-seed finalized vertices at t·δ (idling
      // edges) and the source at 0 in the first timestep.
      label_[v] = kInf;
      if (t == options_.first_timestep && v == options_.source) {
        best = 0.0;
      } else if (finalized_at_[v] >= 0) {
        best = delta * static_cast<double>(t);
      }
    } else {
      for (const double m : ctx.messages()) {
        best = std::min(best, m);
      }
    }

    if (best < label_[v] && best <= horizon) {
      label_[v] = best;
      for (const auto& oe : ctx.graphTemplate().outEdges(v)) {
        const double candidate =
            best + ctx.edgeDouble(options_.latency_attr, oe.edge);
        if (candidate <= horizon) {
          ctx.sendTo(oe.dst, candidate);
        }
      }
    }
    ctx.voteToHalt();
  }

  void endOfTimestep(VertexIndex v, Timestep t) override {
    // Disjoint-by-ownership writes: each vertex belongs to one partition.
    if (finalized_at_[v] < 0 && label_[v] < kInf) {
      finalized_at_[v] = t;
      tdsp_[v] = label_[v];
    }
  }

  // Checkpoint hooks: the single shared program owns all vertices, so the
  // whole result vectors round-trip. label_ rides along too — replay resets
  // it at superstep 0, but the restore keeps the rollback unconditional.
  void saveState(BinaryWriter& w) const override {
    w.writePodVector(tdsp_);
    w.writePodVector(finalized_at_);
    w.writePodVector(label_);
  }

  Status loadState(BinaryReader& r) override {
    TSG_RETURN_IF_ERROR(r.readPodVector(tdsp_));
    TSG_RETURN_IF_ERROR(r.readPodVector(finalized_at_));
    return r.readPodVector(label_);
  }

 private:
  const VertexTdspOptions& options_;
  std::vector<double>& tdsp_;
  std::vector<Timestep>& finalized_at_;
  std::vector<double> label_;
};

}  // namespace

VertexTdspRun runVertexTdsp(const PartitionedGraph& pg,
                            InstanceProvider& provider,
                            const VertexTdspOptions& options) {
  const std::size_t n = pg.graphTemplate().numVertices();
  TSG_CHECK(options.source < n);
  VertexTdspRun run;
  run.tdsp.assign(n, kInf);
  run.finalized_at.assign(n, -1);

  VertexTdspProgram program(options, n, run.tdsp, run.finalized_at);
  vertexcentric::TemporalVcConfig config;
  config.first_timestep = options.first_timestep;
  config.num_timesteps = options.num_timesteps;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  vertexcentric::TemporalVertexEngine engine(pg, provider);
  run.exec = engine.run(program, config);
  return run;
}

}  // namespace tsg
