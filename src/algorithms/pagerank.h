// Subgraph-centric PageRank over the graph template ("SubgraphRank", the
// companion algorithm the paper cites as [12]).
//
// Each superstep is one PageRank iteration: a subgraph updates the ranks of
// all its vertices from the incoming contributions, then ships the
// contributions that cross remote edges, batched per destination subgraph.
// Because a subgraph applies contributions from its own vertices in the
// same pass, intra-subgraph propagation costs no messages — the
// subgraph-centric win over per-vertex PageRank.
//
// Runs as a single-timestep TI-BSP application on the topology (instance
// values are not consulted); per-instance rank analyses can run it under
// the independent pattern once per timestep.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct PageRankOptions {
  double damping = 0.85;
  std::int32_t iterations = 30;
  Timestep timestep = 0;  // instance to bind (topology-only algorithm)
  // Fault tolerance: recovery replays the single timestep from scratch
  // (superstep 0 re-seeds every rank), so no program state is checkpointed.
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct PageRankRun {
  std::vector<double> ranks;  // sums to ~1 over all vertices
  TiBspResult exec;
};

PageRankRun runSubgraphPageRank(const PartitionedGraph& pg,
                                InstanceProvider& provider,
                                const PageRankOptions& options);

namespace reference {
// Sequential power iteration with the same dangling-mass redistribution.
std::vector<double> pageRank(const GraphTemplate& tmpl, double damping,
                             std::int32_t iterations);
}  // namespace reference

}  // namespace tsg
