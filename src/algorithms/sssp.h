// Subgraph-centric single-source shortest path on ONE graph instance.
//
// The classic GoFFish SSSP (and our Fig. 5b subject): each superstep runs a
// full Dijkstra inside every active subgraph, then relaxations that cross
// remote edges travel as messages. Superstep count scales with the number of
// partition-boundary hops on shortest paths — far below the graph diameter
// that a vertex-centric SSSP needs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct SsspOptions {
  VertexIndex source = 0;
  // Edge attribute holding the weight; kUnweighted = every edge costs 1.
  static constexpr std::size_t kUnweighted = static_cast<std::size_t>(-1);
  std::size_t latency_attr = kUnweighted;
  // Which instance to run on.
  Timestep timestep = 0;
  // Fault tolerance: recovery replays the single timestep from scratch
  // (superstep 0 resets every distance), so no program state is checkpointed.
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct SsspRun {
  // Distance from the source per template vertex; +inf if unreachable.
  std::vector<double> distances;
  TiBspResult exec;
};

SsspRun runSubgraphSssp(const PartitionedGraph& pg, InstanceProvider& provider,
                        const SsspOptions& options);

}  // namespace tsg
