// Sequential single-machine reference implementations.
//
// These define the ground-truth semantics the distributed TI-BSP programs
// must match; the test suite compares both on randomized inputs. They use
// the same recurrences the paper defines (§III) executed globally, with no
// partitioning or message passing involved.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/collection.h"
#include "graph/graph_template.h"

namespace tsg {
namespace reference {

inline constexpr double kInf = std::numeric_limits<double>::infinity();
inline constexpr Timestep kNever = -1;

// Plain Dijkstra over one set of edge weights (by template edge index).
// Empty weights = unweighted (1.0 per edge). Unreachable => +inf.
std::vector<double> dijkstra(const GraphTemplate& tmpl,
                             const std::vector<double>& edge_weights,
                             VertexIndex source);

// BFS hop distance; unreachable => -1.
std::vector<std::int32_t> bfsLevels(const GraphTemplate& tmpl,
                                    VertexIndex source);

struct TdspResult {
  std::vector<double> tdsp;            // earliest arrival; +inf = never
  std::vector<Timestep> finalized_at;  // timestep of finalization; -1 = never
};

// Discrete-time TDSP (§III-C): per timestep t, run Dijkstra on instance t's
// latencies from the source (t == 0) plus all previously finalized vertices
// re-labelled t*δ (the idling edges), settling only vertices with arrival
// <= (t+1)*δ; tentative labels beyond the horizon are discarded.
// exists_attr: optional bool edge attribute (isExists); edges false at a
// timestep are untraversable during it. npos-like SIZE_MAX = all edges open.
TdspResult timeDependentShortestPath(
    const GraphTemplate& tmpl, const TimeSeriesCollection& collection,
    std::size_t latency_attr, VertexIndex source,
    std::size_t exists_attr = static_cast<std::size_t>(-1));

// Temporal meme BFS (§III-B): colored_at[v] = first timestep at which v is
// reached. At t=0 the roots are all vertices whose tweets contain the meme.
// At each t, newly colored vertices are those containing the meme at t and
// reachable from the colored set through vertices that all contain the meme
// at t.
std::vector<Timestep> memeSpread(const GraphTemplate& tmpl,
                                 const TimeSeriesCollection& collection,
                                 std::size_t tweets_attr,
                                 const std::string& meme);

// Per-timestep occurrence counts of a hashtag across all vertices (§III-A):
// counts[t] = number of tweets at timestep t containing the tag.
std::vector<std::uint64_t> hashtagCounts(
    const TimeSeriesCollection& collection, std::size_t tweets_attr,
    const std::string& tag);

// Per-instance Top-N most active vertices (independent pattern example):
// activity = out-degree * (1 + tweet count at t); ties by smaller vertex id.
std::vector<std::vector<VertexIndex>> topActiveVertices(
    const GraphTemplate& tmpl, const TimeSeriesCollection& collection,
    std::size_t tweets_attr, std::size_t n);

}  // namespace reference
}  // namespace tsg
