#include "algorithms/meme.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "algorithms/codec.h"

namespace tsg {
namespace {

class MemeProgram final : public TiBspProgram {
 public:
  MemeProgram(const PartitionedGraph& pg, PartitionId partition,
              const MemeOptions& options, std::vector<Timestep>& colored_at)
      : pg_(pg),
        partition_(partition),
        options_(options),
        colored_at_(colored_at),
        visited_at_(pg.graphTemplate().numVertices(), -1),
        remote_sent_at_(pg.graphTemplate().numVertices(), -1) {}

  // Checkpoint hooks: C* and this partition's slice of the shared
  // colored_at_ result carry across timesteps and must roll back together.
  // The visited/remote-sent stamps compare against the current timestep, so
  // a fresh -1 fill (the constructor default) is already correct on replay.
  void saveState(BinaryWriter& w) const override {
    for (const VertexIndex v : pg_.partition(partition_).vertices) {
      w.writeI32(colored_at_[v]);
    }
    std::vector<SubgraphId> ids;
    ids.reserve(colored_by_sg_.size());
    for (const auto& [sg, colored] : colored_by_sg_) {
      ids.push_back(sg);
    }
    std::sort(ids.begin(), ids.end());  // deterministic checkpoint bytes
    w.writeVarint(ids.size());
    for (const SubgraphId sg : ids) {
      w.writeU32(sg);
      w.writePodVector(colored_by_sg_.at(sg));
    }
  }

  Status loadState(BinaryReader& r) override {
    for (const VertexIndex v : pg_.partition(partition_).vertices) {
      TSG_RETURN_IF_ERROR(r.readI32(colored_at_[v]));
    }
    std::uint64_t entries = 0;
    TSG_RETURN_IF_ERROR(r.readVarint(entries));
    colored_by_sg_.clear();
    for (std::uint64_t i = 0; i < entries; ++i) {
      SubgraphId sg = kInvalidSubgraph;
      TSG_RETURN_IF_ERROR(r.readU32(sg));
      TSG_RETURN_IF_ERROR(r.readPodVector(colored_by_sg_[sg]));
    }
    return Status::ok();
  }

  // At t > first, superstep-0 roots come only from the previous timestep's
  // C* messages (Alg. 1 line 6): with an empty inbox the queue stays empty,
  // compute sends/colors nothing and votes to halt — exactly the state the
  // engine's incremental skip leaves behind. endOfTimestep re-sends C* for
  // any subgraph with colored vertices, so those keep receiving messages
  // and are never skipped.
  [[nodiscard]] bool skippableWhenClean() const override { return true; }

  void compute(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    const Timestep t = ctx.timestep();

    auto hasMeme = [&](VertexIndex v) {
      const auto& tweets = ctx.vertexStringList(options_.tweets_attr, v);
      return std::find(tweets.begin(), tweets.end(), options_.meme) !=
             tweets.end();
    };

    std::deque<VertexIndex> queue;
    auto enqueueRoot = [&](VertexIndex v) {
      if (visited_at_[v] != t) {
        visited_at_[v] = t;
        queue.push_back(v);
      }
    };
    auto color = [&](VertexIndex v) {
      if (colored_at_[v] < 0) {
        colored_at_[v] = t;
        coloredOf(sg).push_back(v);
        ++newly_colored_[sg.id];
      }
    };

    if (ctx.superstep() == 0) {
      if (t == options_.first_timestep) {
        // Alg. 1 line 4: vertices already carrying the meme are the roots.
        for (const VertexIndex v : sg.vertices) {
          if (hasMeme(v)) {
            color(v);
            enqueueRoot(v);
          }
        }
      } else {
        // Alg. 1 line 6: C* arrives from this subgraph's previous instance.
        for (const Message& msg : ctx.messages()) {
          for (const VertexIndex v : decodeVertexList(msg.payload)) {
            enqueueRoot(v);
          }
        }
      }
    } else {
      // Alg. 1 line 8: remote notifications — accept only carriers.
      for (const Message& msg : ctx.messages()) {
        for (const VertexIndex v : decodeVertexList(msg.payload)) {
          if (hasMeme(v)) {
            color(v);
            enqueueRoot(v);
          }
        }
      }
    }

    // MemeBFS (Alg. 1 line 10): traverse contiguous meme carriers; remote
    // edges produce notifications batched per destination subgraph.
    std::unordered_map<SubgraphId, std::vector<VertexIndex>> remote_touched;
    const auto& pg = ctx.partitionedGraph();
    while (!queue.empty()) {
      const VertexIndex v = queue.front();
      queue.pop_front();
      for (const auto& oe : ctx.graphTemplate().outEdges(v)) {
        const SubgraphId dst_sg = pg.subgraphOfVertex(oe.dst);
        if (dst_sg == sg.id) {
          if (visited_at_[oe.dst] != t && hasMeme(oe.dst)) {
            visited_at_[oe.dst] = t;
            color(oe.dst);
            queue.push_back(oe.dst);
          }
        } else if (remote_sent_at_[oe.dst] != t) {
          remote_sent_at_[oe.dst] = t;
          remote_touched[dst_sg].push_back(oe.dst);
        }
      }
    }
    for (auto& [dst_sg, vertices] : remote_touched) {
      ctx.sendToSubgraph(dst_sg, encodeVertexList(vertices));
    }
    ctx.voteToHalt();
  }

  void endOfTimestep(SubgraphContext& ctx) override {
    const Subgraph& sg = ctx.subgraph();
    const Timestep t = ctx.timestep();
    const std::uint64_t newly =
        std::exchange(newly_colored_[sg.id], 0);
    ctx.addCounter(kMemeColoredCounter, newly);
    if (options_.emit_outputs && newly > 0) {
      // The paper prints the frontier Cₜ (Alg. 1 line 18); newly colored
      // vertices are the tail of the accumulated list.
      const auto& colored = coloredOf(sg);
      for (std::size_t i = colored.size() - newly; i < colored.size(); ++i) {
        ctx.output("meme," +
                   std::to_string(ctx.graphTemplate().vertexId(colored[i])) +
                   "," + std::to_string(t));
      }
    }
    // Alg. 1 line 19-20: pass C* to the next instance of this subgraph.
    const bool last_planned =
        t + 1 >= options_.first_timestep +
                     static_cast<Timestep>(ctx.numTimestepsPlanned());
    const auto& colored = coloredOf(sg);
    if (!colored.empty() && !last_planned) {
      ctx.sendToNextTimestep(encodeVertexList(colored));
    }
  }

 private:
  std::vector<VertexIndex>& coloredOf(const Subgraph& sg) {
    return colored_by_sg_[sg.id];
  }

  const PartitionedGraph& pg_;
  const PartitionId partition_;
  const MemeOptions& options_;
  std::vector<Timestep>& colored_at_;       // shared result (own vertices)
  std::vector<Timestep> visited_at_;        // BFS stamp per timestep
  std::vector<Timestep> remote_sent_at_;    // dedup of remote notifications
  std::unordered_map<SubgraphId, std::vector<VertexIndex>> colored_by_sg_;
  std::unordered_map<SubgraphId, std::uint64_t> newly_colored_;
};

}  // namespace

MemeRun runMemeTracking(const PartitionedGraph& pg, InstanceProvider& provider,
                        const MemeOptions& options) {
  MemeRun run;
  run.colored_at.assign(pg.graphTemplate().numVertices(), -1);

  TiBspConfig config;
  config.pattern = Pattern::kSequentiallyDependent;
  config.first_timestep = options.first_timestep;
  config.num_timesteps = options.num_timesteps;
  config.maintenance_period = options.maintenance_period;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId p) {
        return std::make_unique<MemeProgram>(pg, p, options, run.colored_at);
      },
      config);
  return run;
}

}  // namespace tsg
