#include "algorithms/hashtag.h"

#include <algorithm>
#include <mutex>

#include "algorithms/codec.h"

namespace tsg {
namespace {

class HashtagProgram final : public TiBspProgram {
 public:
  HashtagProgram(const PartitionedGraph& pg, const HashtagOptions& options,
                 std::vector<std::uint64_t>& counts, std::mutex& counts_mutex)
      : options_(options),
        counts_(counts),
        counts_mutex_(counts_mutex),
        master_(pg.largestSubgraphOf(0)) {}

  void compute(SubgraphContext& ctx) override {
    if (ctx.superstep() == 0) {
      std::uint64_t count = 0;
      for (const VertexIndex v : ctx.subgraph().vertices) {
        const auto& tweets = ctx.vertexStringList(options_.tweets_attr, v);
        count += static_cast<std::uint64_t>(
            std::count(tweets.begin(), tweets.end(), options_.tag));
      }
      ctx.sendMessageToMerge(encodeU64(count));
    }
    ctx.voteToHalt();
  }

  void merge(SubgraphContext& ctx) override {
    if (ctx.superstep() == 0) {
      // Assemble hash[]: one slot per timestep, filled from the messages
      // this subgraph sent itself across the timesteps (§III-A).
      std::vector<std::uint64_t> series(ctx.numTimestepsPlanned(), 0);
      for (const Message& msg : ctx.messages()) {
        const auto slot = static_cast<std::size_t>(msg.origin_timestep -
                                                   options_.first_timestep);
        TSG_CHECK(slot < series.size());
        series[slot] += decodeU64(msg.payload);
      }
      ctx.sendToSubgraph(master_, encodeU64List(series));
    } else if (ctx.subgraphId() == master_) {
      // Master.Compute: element-wise aggregation of every subgraph's series.
      std::vector<std::uint64_t> total(ctx.numTimestepsPlanned(), 0);
      for (const Message& msg : ctx.messages()) {
        const auto series = decodeU64List(msg.payload);
        TSG_CHECK(series.size() == total.size());
        for (std::size_t i = 0; i < series.size(); ++i) {
          total[i] += series[i];
        }
      }
      {
        std::lock_guard lock(counts_mutex_);
        counts_ = total;
      }
      for (std::size_t i = 0; i < total.size(); ++i) {
        ctx.output("hashtag," + options_.tag + "," +
                   std::to_string(options_.first_timestep +
                                  static_cast<Timestep>(i)) +
                   "," + std::to_string(total[i]));
      }
    }
    ctx.voteToHalt();
  }

 private:
  const HashtagOptions& options_;
  std::vector<std::uint64_t>& counts_;
  std::mutex& counts_mutex_;
  SubgraphId master_;
};

}  // namespace

HashtagRun runHashtagAggregation(const PartitionedGraph& pg,
                                 InstanceProvider& provider,
                                 const HashtagOptions& options) {
  HashtagRun run;
  std::mutex counts_mutex;

  TiBspConfig config;
  config.pattern = Pattern::kEventuallyDependent;
  config.temporal_mode = options.temporal_mode;
  config.first_timestep = options.first_timestep;
  config.num_timesteps = options.num_timesteps;
  config.maintenance_period = options.maintenance_period;
  config.checkpoint_store = options.checkpoint_store;
  config.schedule = options.schedule;
  config.stream = options.stream;

  TiBspEngine engine(pg, provider);
  run.exec = engine.run(
      [&](PartitionId) {
        return std::make_unique<HashtagProgram>(pg, options, run.counts,
                                                counts_mutex);
      },
      config);

  run.rate_of_change.assign(run.counts.size(), 0);
  for (std::size_t i = 1; i < run.counts.size(); ++i) {
    run.rate_of_change[i] = static_cast<std::int64_t>(run.counts[i]) -
                            static_cast<std::int64_t>(run.counts[i - 1]);
  }
  return run;
}

}  // namespace tsg
