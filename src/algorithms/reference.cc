#include "algorithms/reference.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/status.h"

namespace tsg {
namespace reference {
namespace {

using HeapEntry = std::pair<double, VertexIndex>;  // (dist, vertex), min-heap
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

std::vector<double> dijkstra(const GraphTemplate& tmpl,
                             const std::vector<double>& edge_weights,
                             VertexIndex source) {
  TSG_CHECK(source < tmpl.numVertices());
  TSG_CHECK(edge_weights.empty() || edge_weights.size() == tmpl.numEdges());
  std::vector<double> dist(tmpl.numVertices(), kInf);
  dist[source] = 0.0;
  MinHeap heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) {
      continue;  // stale entry
    }
    for (const auto& oe : tmpl.outEdges(v)) {
      const double w = edge_weights.empty() ? 1.0 : edge_weights[oe.edge];
      TSG_CHECK_MSG(w >= 0.0, "negative edge weight");
      const double candidate = d + w;
      if (candidate < dist[oe.dst]) {
        dist[oe.dst] = candidate;
        heap.push({candidate, oe.dst});
      }
    }
  }
  return dist;
}

std::vector<std::int32_t> bfsLevels(const GraphTemplate& tmpl,
                                    VertexIndex source) {
  TSG_CHECK(source < tmpl.numVertices());
  std::vector<std::int32_t> level(tmpl.numVertices(), -1);
  std::deque<VertexIndex> queue;
  level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexIndex v = queue.front();
    queue.pop_front();
    for (const auto& oe : tmpl.outEdges(v)) {
      if (level[oe.dst] < 0) {
        level[oe.dst] = level[v] + 1;
        queue.push_back(oe.dst);
      }
    }
  }
  return level;
}

TdspResult timeDependentShortestPath(const GraphTemplate& tmpl,
                                     const TimeSeriesCollection& collection,
                                     std::size_t latency_attr,
                                     VertexIndex source,
                                     std::size_t exists_attr) {
  TSG_CHECK(source < tmpl.numVertices());
  const std::size_t n = tmpl.numVertices();
  const auto delta = static_cast<double>(collection.delta());

  TdspResult result;
  result.tdsp.assign(n, kInf);
  result.finalized_at.assign(n, kNever);

  for (std::size_t t = 0; t < collection.numInstances(); ++t) {
    const double horizon = delta * static_cast<double>(t + 1);
    const auto& inst = collection.instance(static_cast<Timestep>(t));
    const auto& weights = inst.edgeCol(latency_attr).asDouble();
    const AttributeColumn::BoolVec* exists =
        exists_attr == static_cast<std::size_t>(-1)
            ? nullptr
            : &inst.edgeCol(exists_attr).asBool();

    // Labels for this timestep's bounded Dijkstra: finalized vertices act as
    // roots at t*δ (idling), the source at 0 when t == 0.
    std::vector<double> label(n, kInf);
    MinHeap heap;
    auto seed = [&](VertexIndex v, double d) {
      if (d < label[v]) {
        label[v] = d;
        heap.push({d, v});
      }
    };
    if (t == 0) {
      seed(source, 0.0);
    }
    for (VertexIndex v = 0; v < n; ++v) {
      if (result.finalized_at[v] != kNever) {
        seed(v, delta * static_cast<double>(t));
      }
    }

    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > label[v]) {
        continue;
      }
      if (d > horizon) {
        break;  // beyond the horizon — discard (unknowable future edges)
      }
      if (result.finalized_at[v] == kNever) {
        result.finalized_at[v] = static_cast<Timestep>(t);
        result.tdsp[v] = d;
      }
      for (const auto& oe : tmpl.outEdges(v)) {
        if (exists != nullptr && (*exists)[oe.edge] == 0) {
          continue;  // closed during this instance
        }
        const double candidate = d + weights[oe.edge];
        if (candidate <= horizon && candidate < label[oe.dst]) {
          label[oe.dst] = candidate;
          heap.push({candidate, oe.dst});
        }
      }
    }
  }
  return result;
}

std::vector<Timestep> memeSpread(const GraphTemplate& tmpl,
                                 const TimeSeriesCollection& collection,
                                 std::size_t tweets_attr,
                                 const std::string& meme) {
  const std::size_t n = tmpl.numVertices();
  std::vector<Timestep> colored_at(n, kNever);

  auto hasMeme = [&](const GraphInstance& inst, VertexIndex v) {
    const auto& tweets = inst.vertexCol(tweets_attr).asStringList()[v];
    return std::find(tweets.begin(), tweets.end(), meme) != tweets.end();
  };

  for (std::size_t t = 0; t < collection.numInstances(); ++t) {
    const auto& inst = collection.instance(static_cast<Timestep>(t));
    std::deque<VertexIndex> queue;
    std::vector<std::uint8_t> visited(n, 0);

    // Roots: at t=0, fresh meme carriers; at any t, the colored set.
    for (VertexIndex v = 0; v < n; ++v) {
      const bool already_colored = colored_at[v] != kNever;
      const bool fresh_root = t == 0 && hasMeme(inst, v);
      if (already_colored || fresh_root) {
        if (fresh_root && !already_colored) {
          colored_at[v] = static_cast<Timestep>(t);
        }
        visited[v] = 1;
        queue.push_back(v);
      }
    }

    // Traverse only through vertices carrying the meme at t.
    while (!queue.empty()) {
      const VertexIndex v = queue.front();
      queue.pop_front();
      for (const auto& oe : tmpl.outEdges(v)) {
        if (visited[oe.dst] == 0 && hasMeme(inst, oe.dst)) {
          visited[oe.dst] = 1;
          if (colored_at[oe.dst] == kNever) {
            colored_at[oe.dst] = static_cast<Timestep>(t);
          }
          queue.push_back(oe.dst);
        }
      }
    }
  }
  return colored_at;
}

std::vector<std::uint64_t> hashtagCounts(
    const TimeSeriesCollection& collection, std::size_t tweets_attr,
    const std::string& tag) {
  std::vector<std::uint64_t> counts(collection.numInstances(), 0);
  for (std::size_t t = 0; t < collection.numInstances(); ++t) {
    const auto& lists = collection.instance(static_cast<Timestep>(t))
                            .vertexCol(tweets_attr)
                            .asStringList();
    for (const auto& tweets : lists) {
      for (const auto& tweet : tweets) {
        if (tweet == tag) {
          ++counts[t];
        }
      }
    }
  }
  return counts;
}

std::vector<std::vector<VertexIndex>> topActiveVertices(
    const GraphTemplate& tmpl, const TimeSeriesCollection& collection,
    std::size_t tweets_attr, std::size_t n) {
  std::vector<std::vector<VertexIndex>> top(collection.numInstances());
  for (std::size_t t = 0; t < collection.numInstances(); ++t) {
    const auto& lists = collection.instance(static_cast<Timestep>(t))
                            .vertexCol(tweets_attr)
                            .asStringList();
    // (activity, vertex): sort descending by activity, ascending by id.
    std::vector<std::pair<std::uint64_t, VertexIndex>> scored;
    scored.reserve(tmpl.numVertices());
    for (VertexIndex v = 0; v < tmpl.numVertices(); ++v) {
      const std::uint64_t activity =
          tmpl.outDegree(v) * (1 + lists[v].size());
      scored.emplace_back(activity, v);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) {
                  return a.first > b.first;
                }
                return a.second < b.second;
              });
    auto& row = top[t];
    for (std::size_t i = 0; i < std::min(n, scored.size()); ++i) {
      row.push_back(scored[i].second);
    }
  }
  return top;
}

}  // namespace reference
}  // namespace tsg
