// Hashtag Aggregation — the paper's eventually dependent example (§III-A).
//
// Per timestep each subgraph counts the hashtag's occurrences among its
// vertices' tweets and ships the count to the Merge step. In the Merge BSP
// every subgraph assembles its per-timestep series hash[] from the merge
// messages (indexed by origin timestep) and sends it to the largest
// subgraph of partition 0, which aggregates element-wise — the paper's
// Master.Compute mimicry — and emits the totals plus the rate of change.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/engine.h"

namespace tsg {

struct HashtagOptions {
  std::string tag = "#meme";
  std::size_t tweets_attr = 0;
  Timestep first_timestep = 0;
  std::int32_t num_timesteps = -1;  // -1 = all instances
  TemporalMode temporal_mode = TemporalMode::kSerial;
  std::int32_t maintenance_period = 0;
  // Fault tolerance (serial mode only): checkpoints every timestep boundary,
  // including the accumulated merge pool (gofs/checkpoint.h).
  CheckpointStore* checkpoint_store = nullptr;
  // Superstep scheduling: kBsp (global barrier, the default) or kAsync
  // (dependency-driven waves; identical output, see DESIGN.md).
  Schedule schedule = Schedule::kBsp;
  // Streaming ingestion (see TiBspConfig::stream); null = batch run.
  TimestepStream* stream = nullptr;
};

struct HashtagRun {
  // counts[i] = occurrences at timestep first_timestep + i.
  std::vector<std::uint64_t> counts;
  // rate_of_change[i] = counts[i] - counts[i-1] (0 for i == 0).
  std::vector<std::int64_t> rate_of_change;
  TiBspResult exec;
};

HashtagRun runHashtagAggregation(const PartitionedGraph& pg,
                                 InstanceProvider& provider,
                                 const HashtagOptions& options);

}  // namespace tsg
